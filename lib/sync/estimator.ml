(** Per-peer clock-offset estimation from probe samples.

    Two sample sources feed the same per-peer slot:

    - {b two-way} ping/pong probes (NTP-style): the prober records [t0]
      at send and [t1] at pong receipt; the peer echoes its receive and
      transmit readings [t_rx]/[t_tx].  The classic midpoint estimate
      θ = ((t_rx − t0) + (t_tx − t1)) / 2 errs by at most half the RTT
      asymmetry, so the sample's own uncertainty is
      ((t1 − t0) − (t_tx − t_rx)) / 2 — measured, not assumed;
    - {b one-way} heartbeat piggybacks: a timestamped heartbeat gives the
      Lundelius–Lynch midpoint estimate
      {!Clocksync.Lundelius_lynch.midpoint_estimate} (assumed delay
      d − u/2, error ≤ u/2).

    A new sample replaces the stored one when its uncertainty is no worse
    than the stored sample's *age-widened* uncertainty: every stored
    sample's error bound grows by [drift_ppm] of its age, which is what
    makes a partitioned peer's contribution to the achieved-ε estimate
    widen honestly while fresh peers stay tight.

    The correction fed to the slewed clock is the Lundelius–Lynch average
    ({!Clocksync.Lundelius_lynch.average_correction}) over all n slots
    with self = 0 and peers without a sample counted as 0, which degrades
    to "trust the configured epoch" when nothing has been heard. *)

type sample = {
  offset : int;  (* estimated peer_clock − my_clock at [at], µs *)
  uncertainty : int;  (* error bound of [offset] when taken, µs *)
  at : int;  (* local raw time the sample was taken, µs *)
}

type t = {
  n : int;
  me : int;
  drift_ppm : int;
  samples : sample option array;  (* index = peer pid; [me] stays None *)
}

(* 250 ppm of relative drift allowance: a sample cut off by a partition
   widens by 250 µs per second of staleness — visible within one fault
   window, negligible between 50 ms probe rounds. *)
let default_drift_ppm = 250

let create ?(drift_ppm = default_drift_ppm) ~n ~me () =
  if n <= 0 || me < 0 || me >= n then invalid_arg "Sync.Estimator.create";
  if drift_ppm < 0 then invalid_arg "Sync.Estimator.create: drift_ppm < 0";
  { n; me; drift_ppm; samples = Array.make n None }

let widened t (s : sample) ~now =
  s.uncertainty + (max 0 (now - s.at) * t.drift_ppm / 1_000_000)

let store t ~peer ~now (candidate : sample) =
  if peer <> t.me && peer >= 0 && peer < t.n then
    match t.samples.(peer) with
    | None -> t.samples.(peer) <- Some candidate
    | Some old ->
        if candidate.uncertainty <= widened t old ~now then
          t.samples.(peer) <- Some candidate

let observe_two_way t ~peer ~now ~t0 ~t1 ~t_rx ~t_tx =
  let rtt = (t1 - t0) - (t_tx - t_rx) in
  if rtt >= 0 then
    let offset = ((t_rx - t0) + (t_tx - t1)) / 2 in
    store t ~peer ~now { offset; uncertainty = (rtt + 1) / 2; at = now }

let observe_one_way t ~peer ~now ~d ~u ~sent ~clock =
  let offset = Clocksync.Lundelius_lynch.midpoint_estimate ~d ~u ~sent ~clock in
  store t ~peer ~now { offset; uncertainty = (u + 1) / 2; at = now }

let correction t =
  let estimates =
    Array.to_list t.samples
    |> List.filter_map (Option.map (fun s -> s.offset))
  in
  Clocksync.Lundelius_lynch.average_correction ~n:t.n ~estimates

(* The clock absorbed a correction of [c]: stored offsets were measured
   against the pre-correction clock, so shift them to stay consistent and
   avoid re-applying the same correction next round. *)
let shift t ~by:c =
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some s -> t.samples.(i) <- Some { s with offset = s.offset - c })
    t.samples

let peer_bound t ~now = function
  | None -> None
  | Some s -> Some (abs s.offset + widened t s ~now)

let achieved_eps t ~now =
  Array.fold_left
    (fun acc s ->
      match peer_bound t ~now s with None -> acc | Some b -> max acc b)
    0 t.samples

let peers t =
  Array.fold_left (fun k s -> if s = None then k else k + 1) 0 t.samples

let view t ~now =
  Array.mapi
    (fun i s ->
      if i = t.me then None
      else
        Option.map
          (fun smp ->
            (smp.offset, widened t smp ~now, max 0 (now - smp.at)))
          s)
    t.samples
