(** Per-peer clock-offset and uncertainty estimation.

    Feeds on two-way ping/pong probes (uncertainty measured from the RTT
    asymmetry bound) and one-way heartbeat piggybacks (uncertainty u/2,
    via the shared {!Clocksync.Lundelius_lynch.midpoint_estimate}).  A
    stored sample's error bound widens by [drift_ppm] of its age, so a
    peer cut off by a partition honestly inflates the achieved-ε estimate
    until probes flow again.  Single-owner; not thread-safe. *)

type t

val default_drift_ppm : int
(** 250 ppm: staleness widening per second ≈ 250 µs. *)

val create : ?drift_ppm:int -> n:int -> me:int -> unit -> t

val observe_two_way :
  t -> peer:int -> now:int -> t0:int -> t1:int -> t_rx:int -> t_tx:int -> unit
(** A completed ping/pong exchange: [t0]/[t1] are our corrected-clock
    readings at ping send and pong receipt; [t_rx]/[t_tx] the peer's at
    ping receipt and pong send.  Negative round trips (clock anomaly) are
    discarded.  [now] is our raw local time, used for sample aging. *)

val observe_one_way :
  t -> peer:int -> now:int -> d:int -> u:int -> sent:int -> clock:int -> unit
(** A timestamped heartbeat from [peer] carrying reading [sent], received
    when our corrected clock read [clock]: the Lundelius–Lynch midpoint
    sample with uncertainty u/2. *)

val correction : t -> int
(** The Lundelius–Lynch correction to apply to our clock: the average of
    per-peer offset estimates over all n slots (self and unheard peers
    count 0). *)

val shift : t -> by:int -> unit
(** Record that the clock absorbed a correction of [by] µs: stored
    offsets shift by −[by] so the next round doesn't re-apply it. *)

val achieved_eps : t -> now:int -> int
(** Achieved-ε estimate: max over sampled peers of
    |offset| + age-widened uncertainty.  0 when nothing sampled yet. *)

val peers : t -> int
(** Number of peers with a stored sample. *)

val view : t -> now:int -> (int * int * int) option array
(** Per-peer [(offset, widened_uncertainty, age_us)] snapshot, [None] for
    self and unheard peers. *)
