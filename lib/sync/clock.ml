(** A smoothly-slewed, never-backward logical clock.

    The replica's raw local clock (monotonic µs since the shared epoch,
    plus its fixed configured offset) is corrected by an [applied] term
    that chases a [target] set by the estimator.  The correction is never
    stepped: each read moves [applied] toward [target] by at most
    [slew_ppm] parts-per-million of the raw time elapsed since the
    previous read, so the corrected clock's rate stays within
    (1 ± slew_ppm/10⁶) of real time.  A final clamp guarantees readings
    are non-decreasing even if the slew bound is ever misconfigured past
    10⁶ ppm.

    Single-owner: the replica event loop is the only caller, so no lock.
    All arithmetic is on OCaml's 63-bit ints — µs quantities cannot
    overflow it. *)

type t = {
  slew_ppm : int;
  mutable applied : int;  (* correction currently reflected in readings *)
  mutable target : int;  (* correction the estimator wants *)
  mutable last_raw : int;  (* raw clock at the previous read *)
  mutable last_reading : int;  (* monotonicity clamp *)
  mutable initialized : bool;
}

(* 10% — fast enough to absorb a 2 ms skew in 20 ms of real time, gentle
   enough that timestamps drawn during the slew stay within the paper's
   rate model. *)
let default_slew_ppm = 100_000

let create ?(slew_ppm = default_slew_ppm) () =
  if slew_ppm <= 0 then invalid_arg "Sync.Clock.create: slew_ppm <= 0";
  {
    slew_ppm;
    applied = 0;
    target = 0;
    last_raw = 0;
    last_reading = min_int;
    initialized = false;
  }

let read t ~now =
  if not t.initialized then begin
    t.last_raw <- now;
    t.initialized <- true
  end;
  let dt = max 0 (now - t.last_raw) in
  let budget = dt * t.slew_ppm / 1_000_000 in
  let diff = t.target - t.applied in
  let move = if diff >= 0 then min diff budget else -(min (-diff) budget) in
  t.applied <- t.applied + move;
  t.last_raw <- max t.last_raw now;
  let reading = max (now + t.applied) t.last_reading in
  t.last_reading <- reading;
  reading

let adjust t ~delta = t.target <- t.target + delta
let applied t = t.applied
let pending t = t.target - t.applied
