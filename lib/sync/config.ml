(** Configuration for the live clock-synchronization subsystem.

    [d] and [u] are the *assumed* one-way delay bound and uncertainty
    (µs) used only for the coarse one-way heartbeat-piggyback samples —
    the two-way ping/pong samples measure their own uncertainty from the
    RTT and need neither.  [interval_us] is the probe-round period.

    [on_eps] is invoked once per round with the freshly computed
    achieved-ε estimate and the number of peers contributing; [Net.Serve]
    composes its own logging on top, the same way it does for the quorum
    fallback hooks. *)

type t = {
  interval_us : int;  (** probe-round period, µs (default 50 000) *)
  d : int;  (** assumed one-way delay bound for piggyback samples, µs *)
  u : int;  (** assumed one-way delay uncertainty, µs *)
  on_eps : eps_us:int -> peers:int -> unit;
}

let default_interval_us = 50_000

let make ?(interval_us = default_interval_us) ~d ~u
    ?(on_eps = fun ~eps_us:_ ~peers:_ -> ()) () =
  if interval_us <= 0 then invalid_arg "Sync.Config.make: interval_us <= 0";
  if u < 0 || d < u then invalid_arg "Sync.Config.make: need 0 <= u <= d";
  { interval_us; d; u; on_eps }
