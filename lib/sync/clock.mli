(** A smoothly-slewed logical clock that is never stepped backward.

    Corrections requested with {!adjust} are applied gradually: each
    {!read} moves the applied correction toward the target by at most
    [slew_ppm] parts-per-million of the raw time elapsed since the
    previous read, and readings are clamped to be non-decreasing.
    Single-owner by design (the replica event loop); not thread-safe. *)

type t

val default_slew_ppm : int
(** 100 000 ppm (10%): a 2 ms correction completes in 20 ms. *)

val create : ?slew_ppm:int -> unit -> t
(** Raises [Invalid_argument] if [slew_ppm <= 0]. *)

val read : t -> now:int -> int
(** Corrected reading for raw local clock [now] (µs).  Advances the slew
    by the raw time elapsed since the previous read.  Monotone
    non-decreasing across any sequence of reads and {!adjust}s, even when
    [now] itself jumps backward. *)

val adjust : t -> delta:int -> unit
(** Shift the target correction by [delta] µs (positive or negative);
    subsequent reads slew toward it. *)

val applied : t -> int
(** Correction currently reflected in readings, µs. *)

val pending : t -> int
(** Correction still to be slewed in, µs ([target − applied]). *)
