(** Client-side key→shard→replica resolution for the sharded namespace.

    The directory is a pure computation over two {!Ring}s rebuilt from
    three integers — [(ring seed, shard count, replica count)] — that every
    process of a cluster already carries in its config:

    - the {e key ring} maps a key to one of the [shards] independent
      Algorithm 1 instances;
    - the {e home ring} maps a shard to its {e home} replica — the replica
      a client contacts first for that shard's operations, so client load
      spreads over the replica set instead of hammering replica 0.

    There is no directory {e service process}: resolution happens in the
    caller, which is what keeps the hot path free of a central hop.  Every
    shard is fully replicated on all [n] replicas (each replica hosts one
    Algorithm 1 instance per shard), so [replicas] is the whole set and any
    replica can serve any shard — the home is a load-spreading preference,
    not a correctness requirement. *)

type t

type location = {
  shard : int;  (** which Algorithm 1 instance owns the key *)
  home : int;  (** preferred replica pid for client traffic *)
  replicas : int list;  (** every replica hosting the shard (all of them) *)
}

val make : ?vnodes:int -> seed:int -> shards:int -> n:int -> unit -> t
(** [shards] ≥ 1 namespace partitions over [n] ≥ 1 replicas; [vnodes]
    (default 64) and [seed] parameterise both rings.
    @raise Invalid_argument on a non-positive count. *)

val locate : t -> key:int -> location
(** Resolve a key.  O(log(shards·vnodes)). *)

val shard_of : t -> key:int -> int
val home_of : t -> shard:int -> int

val shards : t -> int
val n : t -> int
val seed : t -> int
val key_ring : t -> Ring.t
(** The underlying key→shard ring, exposed for balance diagnostics. *)
