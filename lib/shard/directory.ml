(** See the interface.  The two rings use derived seeds so the shard
    placement of keys and the replica placement of shards are independent
    hash streams of the one configured seed. *)

type t = {
  shards : int;
  n : int;
  seed : int;
  key_ring : Ring.t;
  home_ring : Ring.t;
  all_replicas : int list;
}

type location = { shard : int; home : int; replicas : int list }

let make ?(vnodes = 64) ~seed ~shards ~n () =
  if shards < 1 then invalid_arg "Directory.make: shards must be >= 1";
  if n < 1 then invalid_arg "Directory.make: n must be >= 1";
  {
    shards;
    n;
    seed;
    key_ring = Ring.make ~vnodes ~seed ~members:(List.init shards Fun.id) ();
    home_ring =
      Ring.make ~vnodes ~seed:(seed lxor 0x686f6d65 (* "home" *))
        ~members:(List.init n Fun.id) ();
    all_replicas = List.init n Fun.id;
  }

let shard_of t ~key = Ring.route t.key_ring key
let home_of t ~shard = Ring.route t.home_ring shard

let locate t ~key =
  let shard = shard_of t ~key in
  { shard; home = home_of t ~shard; replicas = t.all_replicas }

let shards t = t.shards
let n t = t.n
let seed t = t.seed
let key_ring t = t.key_ring
