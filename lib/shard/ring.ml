(** See the interface.  Points live in one sorted array; [route] is a
    binary search for the successor point, wrapping to index 0 past the
    top of the circle. *)

(* Splitmix64 finalizer, as in [Fault.Fault_plan]: a pure function of its
   inputs, folded over (seed, a, b).  The logical shift by 2 clears bits
   63 *and* 62, so the result is a non-negative OCaml int. *)
let mix (z : int64) =
  let open Int64 in
  let z = add z 0x9e3779b97f4a7c15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash2 ~seed a b =
  let h =
    List.fold_left
      (fun acc v -> mix (Int64.add acc (Int64.of_int v)))
      (mix (Int64.of_int seed))
      [ a; b ]
  in
  Int64.to_int (Int64.shift_right_logical h 2)

(* Distinct salts keep point hashes and key hashes off each other's
   streams: a key must not be biased toward (or away from) the point of
   the member sharing its integer value. *)
let point_salt = 0x706f696e74 (* "point" *)
let key_salt = 0x6b6579 (* "key" *)

type t = {
  seed : int;
  vnodes : int;
  members : int list;  (** ascending *)
  points : (int * int) array;  (** (hash, member), ascending by hash *)
}

let hash_point ~seed member vnode = hash2 ~seed:(seed lxor point_salt) member vnode
let hash_key ~seed key = hash2 ~seed:(seed lxor key_salt) key 0

let build ~seed ~vnodes ~members =
  let points =
    List.concat_map
      (fun m -> List.init vnodes (fun v -> (hash_point ~seed m v, m)))
      members
    |> Array.of_list
  in
  (* Ties (astronomically unlikely) break by member id, keeping the ring a
     pure function of (seed, vnodes, member set). *)
  Array.sort compare points;
  { seed; vnodes; members; points }

let make ?(vnodes = 64) ~seed ~members () =
  if vnodes < 1 then invalid_arg "Ring.make: vnodes must be >= 1";
  if members = [] then invalid_arg "Ring.make: members must be non-empty";
  let uniq = List.sort_uniq compare members in
  if List.length uniq <> List.length members then
    invalid_arg "Ring.make: duplicate members";
  build ~seed ~vnodes ~members:uniq

let route t key =
  let kh = hash_key ~seed:t.seed key in
  let n = Array.length t.points in
  (* First point with hash >= kh; past the last point the circle wraps. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < kh then lo := mid + 1 else hi := mid
  done;
  snd t.points.(if !lo = n then 0 else !lo)

let add t m =
  if List.mem m t.members then invalid_arg "Ring.add: member already present";
  build ~seed:t.seed ~vnodes:t.vnodes
    ~members:(List.sort compare (m :: t.members))

let remove t m =
  if not (List.mem m t.members) then invalid_arg "Ring.remove: no such member";
  match List.filter (fun x -> x <> m) t.members with
  | [] -> invalid_arg "Ring.remove: cannot remove the last member"
  | members -> build ~seed:t.seed ~vnodes:t.vnodes ~members

let members t = t.members
let seed t = t.seed
let vnodes t = t.vnodes

let spread t ~keys =
  let tbl = Hashtbl.create (List.length t.members) in
  List.iter (fun m -> Hashtbl.replace tbl m 0) t.members;
  for k = 0 to keys - 1 do
    let m = route t k in
    Hashtbl.replace tbl m (1 + Option.value ~default:0 (Hashtbl.find_opt tbl m))
  done;
  t.members |> List.map (fun m -> (m, Hashtbl.find tbl m)) |> Array.of_list
