(** Multi-process sharded-cluster orchestrator and zipfian load generator —
    the bodies of [timebounds shards cluster] (fork [n] host processes,
    drive, verify, tear down) and [timebounds shards loadgen] (drive an
    already-running cluster).

    The namespace is the sharded KV map: a zipfian rank sampler
    ({!Runtime.Workloads.Zipf}) draws hot keys, the {!Directory} resolves
    each key to its shard and the shard's home replica, and the worker
    invokes there with the shard id riding the codec-v4 [Invoke] frame.
    Workers keep one lazy connection per replica, so an operation for a
    shard homed elsewhere reuses the existing socket rather than paying a
    connect — the client-side realisation of "no hot central hop".

    Measurement is keyed by {e shard} × class: a zipfian mix makes some
    shards much hotter than others, and an aggregate histogram would
    average exactly the skew this subsystem exists to expose.  The same
    split carries into verification — each shard's history is checked
    independently with the segmented Wing–Gong checker (linearizability
    composes, so per-shard PASS is namespace PASS), sharing the global
    quiescent cuts, which are quiescent for every shard at once. *)

module T = Runtime.Transport_intf
module W = Net.Wire.Kv_wired
module Cl = Net.Client.Make (W)
module Gen = Runtime.Loadgen.Make (W.L)
module P = Net.Persist.Make (W.C)

type child = { child_pid : int; os_pid : int; port : int }

type report = {
  params : Core.Params.t;  (** effective (slack included in [d], [u]) *)
  cfg_d : int;
  cfg_u : int;
  slack : int;
  shards : int;
  keys : int;
  theta : float;
  vnodes : int;
  ring_seed : int;
  mix : int * int * int;
  workers : int;
  seed : int;
  ops : int;
  completed : int;
  failed : int;
  wall_us : int;
  throughput : float;
  classes : Runtime.Loadgen.class_report list;  (** aggregate over shards *)
  per_shard : Runtime.Loadgen.shard_report list;
      (** one per shard that saw traffic, hottest first *)
  replica_stats : (int * T.stats) list;
  offsets : int array;
  cuts : int list;
  aborted : string option;
  verdict : Runtime.Loadgen.verdict;
      (** namespace verdict: conjunction of the per-shard checks *)
}

let ok r =
  r.failed = 0 && r.aborted = None
  && match r.verdict with Runtime.Loadgen.Linearizable _ -> true | _ -> false

let pp_report fmt r =
  let m, a, o = r.mix in
  Format.fprintf fmt
    "@[<v>shards %s: %a (net d=%d u=%d, slack=%d) shards=%d keys=%d \
     theta=%.2f vnodes=%d ring-seed=%d@,\
     mix=%d:%d:%d workers=%d seed=%d@,\
     %d/%d ops in %.3f s (%.0f ops/s)%s@,"
    W.L.label Core.Params.pp r.params r.cfg_d r.cfg_u r.slack r.shards r.keys
    r.theta r.vnodes r.ring_seed m a o r.workers r.seed r.completed r.ops
    (float_of_int r.wall_us /. 1e6)
    r.throughput
    (if r.failed > 0 then Printf.sprintf "; %d FAILED" r.failed else "");
  (match r.aborted with
  | Some why -> Format.fprintf fmt "aborted: %s@," why
  | None -> ());
  List.iter
    (fun (c : Runtime.Loadgen.class_report) ->
      Format.fprintf fmt "  %-3s %a  (target %s %dµs)@,"
        c.Runtime.Loadgen.class_name Runtime.Histogram.pp
        c.Runtime.Loadgen.hist
        (if String.equal c.Runtime.Loadgen.class_name "OOP" then "≤" else "≈")
        c.Runtime.Loadgen.target_us;
      match c.Runtime.Loadgen.faulty with
      | None -> ()
      | Some h ->
          Format.fprintf fmt "      in fault windows: %a@," Runtime.Histogram.pp
            h)
    r.classes;
  List.iter
    (fun s -> Format.fprintf fmt "  %a@," Runtime.Loadgen.pp_shard_report s)
    r.per_shard;
  List.iter
    (fun (pid, stats) ->
      Format.fprintf fmt "  replica %d: %a@," pid T.pp_stats stats)
    r.replica_stats;
  Format.fprintf fmt "namespace linearizability: %a@]"
    Runtime.Loadgen.pp_verdict r.verdict

(* ---- drawing sharded operations ---- *)

(* The key's popularity rank IS the key: Zipf hands back rank r with
   probability ∝ 1/(r+1)^θ, and the ring hashes ranks uniformly, so hot
   ranks pile onto whichever shards their hashes pick — real, measurable
   hot-shard skew from a one-line sampler. *)
let draw_op rng zipf dir (m, a, _o) total =
  let key = Runtime.Workloads.Zipf.sample zipf rng in
  let shard = Directory.shard_of dir ~key in
  let op =
    let toss = Prelude.Rng.int rng total in
    if toss < m then
      if Prelude.Rng.int rng 10 < 8 then
        Spec.Kv_map.Put (key, Prelude.Rng.int rng 1000)
      else Spec.Kv_map.Del key
    else if toss < m + a then Spec.Kv_map.Get key
    else Spec.Kv_map.Swap (key, Prelude.Rng.int rng 1000)
  in
  (shard, op)

let classify op =
  match W.L.D.classify op with
  | Spec.Data_type.Pure_mutator -> 0
  | Spec.Data_type.Pure_accessor -> 1
  | Spec.Data_type.Other -> 2

(* ---- one worker's share of a round ---- *)

type worker_out = {
  w_entries : (int * Gen.Lin.entry) list;  (** (shard, entry), reverse order *)
  w_hists : (int, Runtime.Histogram.t array) Hashtbl.t;
      (** shard → 6 histograms (3 classes × clean/faulty) *)
  w_failed : int;
  w_error : string option;
}

let worker_round ~host ~ports ~dir ~zipf ~origin_us ~abort ?(resilient = false)
    ?(traced = false) ?(windows = []) ?mint ?timeout_us
    ?(deadline_budget_us = 0) rng ~mix ~total ~quota ~wid =
  let hists : (int, Runtime.Histogram.t array) Hashtbl.t = Hashtbl.create 16 in
  let hists_for shard =
    match Hashtbl.find_opt hists shard with
    | Some hs -> hs
    | None ->
        let hs = Array.init 6 (fun _ -> Runtime.Histogram.create ()) in
        Hashtbl.replace hists shard hs;
        hs
  in
  let n = Array.length ports in
  (* One lazy connection per replica: shard routing picks the target, the
     socket is reused across every shard homed there. *)
  let conns = Array.make n None in
  let attempts = if resilient then 40 else 3 in
  let connect pid =
    Cl.connect ~host ~port:ports.(pid) ~attempts ~retry_delay_us:50_000 ()
  in
  let get_conn pid =
    match conns.(pid) with
    | Some c -> Ok c
    | None -> (
        match connect pid with
        | Ok c ->
            conns.(pid) <- Some c;
            Ok c
        | Error e -> Error e)
  in
  let drop_conn pid =
    (match conns.(pid) with Some c -> Cl.close c | None -> ());
    conns.(pid) <- None
  in
  let in_windows t = List.exists (fun (f, u) -> f <= t && t < u) windows in
  let entries = ref [] in
  let failed = ref 0 in
  let error = ref None in
  let note_error e = match !error with None -> error := Some e | Some _ -> () in
  let gave_up = ref false in
  let i = ref 0 in
  while !i < quota && (not !gave_up) && not (Atomic.get abort) do
    incr i;
    let shard, op = draw_op rng zipf dir mix total in
    let home = Directory.home_of dir ~shard in
    let slot = classify op in
    (* The trace id's origin bits carry the shard, so per-shard bound
       attribution falls out of the merged trace files for free. *)
    let trace = if traced then Obs.Trace_id.fresh ~origin:shard else 0 in
    let op_id = match mint with None -> 0 | Some m -> m () in
    let t0 = Prelude.Mclock.now_us () in
    (* Minted once per operation, re-sent unchanged on every retry. *)
    let deadline =
      if deadline_budget_us > 0 then t0 + deadline_budget_us else 0
    in
    let shed e = String.length e >= 4 && String.sub e 0 4 = "shed" in
    let rec attempt pid backoff tries =
      match get_conn pid with
      | Error e ->
          if op_id <> 0 && tries < 25 && not (Atomic.get abort) then begin
            Prelude.Mclock.sleep_us
              (backoff + Prelude.Rng.int rng (1 + (backoff / 2)));
            attempt pid (min (2 * backoff) 400_000) (tries + 1)
          end
          else Error e
      | Ok c -> (
          match Cl.invoke ~trace ~op_id ~shard ~deadline ?timeout_us c op with
          | Ok r -> Ok r
          | Error e
            when op_id <> 0 && Cl.retryable e && tries < 25
                 && ((not (shed e))
                    || deadline = 0
                    || Prelude.Mclock.now_us () < deadline)
                 && not (Atomic.get abort) ->
              drop_conn pid;
              Prelude.Mclock.sleep_us
                (backoff + Prelude.Rng.int rng (1 + (backoff / 2)));
              attempt pid (min (2 * backoff) 400_000) (tries + 1)
          | Error e -> Error e)
    in
    match attempt home 20_000 0 with
    | Ok result ->
        let t1 = Prelude.Mclock.now_us () in
        let hs = hists_for shard in
        let slot = if in_windows (t0 - origin_us) then slot + 3 else slot in
        Runtime.Histogram.add hs.(slot) (t1 - t0);
        entries :=
          ( shard,
            {
              Gen.Lin.pid = wid;
              op;
              result;
              invoke = t0 - origin_us;
              response = t1 - origin_us;
            } )
          :: !entries
    | Error e ->
        incr failed;
        note_error e;
        if resilient then drop_conn home
        else begin
          gave_up := true;
          Atomic.set abort true
        end
  done;
  Array.iteri (fun pid _ -> drop_conn pid) conns;
  { w_entries = !entries; w_hists = hists; w_failed = !failed; w_error = !error }

(* ---- the drive loop, shared by cluster and loadgen modes ---- *)

type drive_out = {
  d_entries : (int * Gen.Lin.entry) list;
  d_matrix : (int, Runtime.Histogram.t array) Hashtbl.t;  (** shard → 6 *)
  d_cuts : int list;
  d_failed : int;
  d_first_error : string option;
  d_wall_us : int;
}

let drive_rounds ~host ~ports ~dir ~zipf ~epoch ~abort ~resilient ~traced
    ~windows ~mint ~timeout_us ?(deadline_budget_us = 0) ~workers ~round ~mix
    ~total ~ops rng_workers =
  let t0 = Prelude.Mclock.now_us () in
  let matrix : (int, Runtime.Histogram.t array) Hashtbl.t = Hashtbl.create 64 in
  let entries = ref [] in
  let cuts = ref [] in
  let failed = ref 0 in
  let first_error = ref None in
  let rng_workers = ref rng_workers in
  let remaining = ref ops in
  while !remaining > 0 && not (Atomic.get abort) do
    let quota = min round !remaining in
    remaining := !remaining - quota;
    let spawned =
      List.init workers (fun wid ->
          let mine, rest = Prelude.Rng.split !rng_workers in
          rng_workers := rest;
          let share =
            (quota / workers) + if wid < quota mod workers then 1 else 0
          in
          Domain.spawn (fun () ->
              worker_round ~host ~ports ~dir ~zipf ~origin_us:epoch ~abort
                ~resilient ~traced ~windows ?mint ?timeout_us
                ~deadline_budget_us mine ~mix ~total ~quota:share ~wid))
    in
    List.iter
      (fun dom ->
        let out = Domain.join dom in
        entries := List.rev_append out.w_entries !entries;
        failed := !failed + out.w_failed;
        (match (out.w_error, !first_error) with
        | Some e, None -> first_error := Some e
        | _ -> ());
        Hashtbl.iter
          (fun shard hs ->
            let into =
              match Hashtbl.find_opt matrix shard with
              | Some m -> m
              | None ->
                  let m =
                    Array.init 6 (fun _ -> Runtime.Histogram.create ())
                  in
                  Hashtbl.replace matrix shard m;
                  m
            in
            Array.iteri
              (fun i h -> Runtime.Histogram.merge_into ~into:into.(i) h)
              hs)
          out.w_hists)
      spawned;
    (* Every in-flight operation has responded: one cut, quiescent for
       every shard at once — each per-shard checker segments at it. *)
    cuts := Prelude.Mclock.now_us () - epoch :: !cuts
  done;
  {
    d_entries = !entries;
    d_matrix = matrix;
    d_cuts = !cuts;
    d_failed = !failed;
    d_first_error = !first_error;
    d_wall_us = Prelude.Mclock.now_us () - t0;
  }

(* ---- per-shard verification and report assembly ---- *)

let verdict_and_shards ~shards ~initials ~params ~windowed ~matrix ~cuts
    ~entries ~expected ~failed ~first_error ~aborted =
  let by_shard = Array.make shards [] in
  List.iter
    (fun (s, e) ->
      if s >= 0 && s < shards then by_shard.(s) <- e :: by_shard.(s))
    entries;
  let cuts = List.sort compare cuts in
  let shard_checks =
    Array.mapi
      (fun k rev ->
        match rev with
        | [] -> None
        | _ ->
            let sorted =
              List.sort
                (fun (a : Gen.Lin.entry) (b : Gen.Lin.entry) ->
                  compare (a.Gen.Lin.invoke, a.Gen.Lin.pid)
                    (b.Gen.Lin.invoke, b.Gen.Lin.pid))
                rev
            in
            Some (Gen.check_history ?initial:initials.(k) sorted cuts))
      by_shard
  in
  let completed = List.length entries in
  let namespace =
    if failed > 0 then
      Runtime.Loadgen.Unchecked
        (Printf.sprintf "%d invocation%s failed (%s)" failed
           (if failed = 1 then "" else "s")
           (Option.value first_error ~default:"unknown error"))
    else if aborted <> None then
      Runtime.Loadgen.Unchecked (Option.value aborted ~default:"run aborted")
    else if completed <> expected then
      Runtime.Loadgen.Unchecked
        (Printf.sprintf "expected %d completed ops, recorded %d" expected
           completed)
    else
      (* Linearizability composes across independent objects: the
         namespace passes iff every shard's own history does. *)
      Array.to_seq shard_checks
      |> Seq.fold_lefti
           (fun acc k check ->
             match (acc, check) with
             | (Runtime.Loadgen.Violation _ | Runtime.Loadgen.Unchecked _), _
               ->
                 acc
             | _, None -> acc
             | Runtime.Loadgen.Linearizable total, Some v -> (
                 match v with
                 | Runtime.Loadgen.Linearizable segs ->
                     Runtime.Loadgen.Linearizable (total + segs)
                 | Runtime.Loadgen.Violation { segment; reason } ->
                     Runtime.Loadgen.Violation
                       {
                         segment;
                         reason = Printf.sprintf "shard %d: %s" k reason;
                       }
                 | Runtime.Loadgen.Unchecked why ->
                     Runtime.Loadgen.Unchecked
                       (Printf.sprintf "shard %d: %s" k why)))
           (Runtime.Loadgen.Linearizable 0)
  in
  let per_shard =
    List.init shards Fun.id
    |> List.filter_map (fun k ->
           match Hashtbl.find_opt matrix k with
           | None -> None
           | Some hs ->
               Some
                 {
                   Runtime.Loadgen.shard = k;
                   shard_ops = List.length by_shard.(k);
                   shard_classes =
                     Runtime.Loadgen.classes_of ~params ~windowed hs;
                   shard_verdict =
                     (match shard_checks.(k) with
                     | Some v -> v
                     | None -> Runtime.Loadgen.Linearizable 0);
                 })
    |> List.sort (fun a b ->
           compare b.Runtime.Loadgen.shard_ops a.Runtime.Loadgen.shard_ops)
  in
  let aggregate =
    let merged = Array.init 6 (fun _ -> Runtime.Histogram.create ()) in
    Hashtbl.iter
      (fun _ hs ->
        Array.iteri
          (fun i h -> Runtime.Histogram.merge_into ~into:merged.(i) h)
          hs)
      matrix;
    Runtime.Loadgen.classes_of ~params ~windowed merged
  in
  (namespace, per_shard, aggregate)

(* ---- spawning [timebounds shards serve] children ---- *)

(* The children never see the ring: key→shard→replica resolution is the
   {e clients'} pure computation, so a host only needs to know how many
   shard instances to run. *)
let serve_argv ~exe ~peers ~pid ~shards ~d ~u ~eps ~x ~slack ~offset ~epoch
    ~chaos ~trace ~durable ~fsync ~snapshot_every =
  let base =
    [
      exe; "shards"; "serve";
      "--pid"; string_of_int pid;
      "--peers"; peers;
      "--shards"; string_of_int shards;
      "--object"; W.L.label;
      "--d"; string_of_int d;
      "--u"; string_of_int u;
      "--eps"; string_of_int eps;
      "--x"; string_of_int x;
      "--slack"; string_of_int slack;
      "--offset"; string_of_int offset;
      "--epoch"; string_of_int epoch;
      "--watch-parent"; string_of_int (Unix.getpid ());
    ]
  in
  let extra =
    (match chaos with
    | None -> []
    | Some (spec, cseed) ->
        [ "--chaos"; spec; "--chaos-seed"; string_of_int cseed ])
    @ (match trace with None -> [] | Some path -> [ "--trace"; path ])
    @
    match durable with
    | None -> []
    | Some dir ->
        [
          "--durable"; dir;
          "--fsync"; fsync;
          "--snapshot-every"; string_of_int snapshot_every;
        ]
  in
  Array.of_list (base @ extra)

let peers_of ~host ~ports =
  String.concat ","
    (Array.to_list (Array.map (fun p -> Printf.sprintf "%s:%d" host p) ports))

let trace_path trace_dir i =
  Option.map
    (fun dir -> Filename.concat dir (Printf.sprintf "replica-%d.trace" i))
    trace_dir

let durable_path durable_dir i =
  Option.map
    (fun dir -> Filename.concat dir (Printf.sprintf "replica-%d" i))
    durable_dir

let shard_store_dir replica_dir k =
  Filename.concat replica_dir (Printf.sprintf "shard-%d" k)

let status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

(* Minimal monitor (no supervised restarts here — chaos crash rules are
   realised {e inside} the hosts as per-shard transport isolation): reap
   children, raise the abort flag on an unexpected mid-run death. *)
type monitor = {
  mutable reaped : (int * Unix.process_status) list;
  mutable left : int;
  lock : Mutex.t;
  expected : bool Atomic.t;
  mutable abort_why : string option;
  mutable thread : Thread.t option;
}

let start_monitor children ~abort ~log =
  let mon =
    {
      reaped = [];
      left = Array.length children;
      lock = Mutex.create ();
      expected = Atomic.make false;
      abort_why = None;
      thread = None;
    }
  in
  let live () =
    Mutex.lock mon.lock;
    let l = mon.left in
    Mutex.unlock mon.lock;
    l
  in
  let thread =
    Thread.create
      (fun () ->
        while live () > 0 do
          match Unix.waitpid [] (-1) with
          | os_pid, status ->
              Mutex.lock mon.lock;
              mon.left <- mon.left - 1;
              mon.reaped <- (os_pid, status) :: mon.reaped;
              Mutex.unlock mon.lock;
              let who =
                match
                  Array.find_opt (fun c -> c.os_pid = os_pid) children
                with
                | Some c -> Printf.sprintf "replica %d" c.child_pid
                | None -> Printf.sprintf "child %d" os_pid
              in
              if not (Atomic.get mon.expected) then begin
                let why =
                  Printf.sprintf "%s %s mid-run" who (status_string status)
                in
                log ("shards: " ^ why);
                if mon.abort_why = None then mon.abort_why <- Some why;
                Atomic.set abort true
              end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
              if Atomic.get mon.expected then begin
                Mutex.lock mon.lock;
                mon.left <- 0;
                Mutex.unlock mon.lock
              end
              else Prelude.Mclock.sleep_us 20_000
        done)
      ()
  in
  mon.thread <- Some thread;
  mon

let reaped mon os_pid =
  Mutex.lock mon.lock;
  let r = List.mem_assoc os_pid mon.reaped in
  Mutex.unlock mon.lock;
  r

let teardown mon children ~log =
  Atomic.set mon.expected true;
  Array.iter
    (fun c ->
      if not (reaped mon c.os_pid) then
        try Unix.kill c.os_pid Sys.sigterm with Unix.Unix_error _ -> ())
    children;
  let deadline = Prelude.Mclock.now_us () + 5_000_000 in
  let all_reaped () = Array.for_all (fun c -> reaped mon c.os_pid) children in
  while (not (all_reaped ())) && Prelude.Mclock.now_us () < deadline do
    Prelude.Mclock.sleep_us 20_000
  done;
  Array.iter
    (fun c ->
      if not (reaped mon c.os_pid) then begin
        log
          (Printf.sprintf "shards: replica %d unresponsive, SIGKILL"
             c.child_pid);
        try Unix.kill c.os_pid Sys.sigkill with Unix.Unix_error _ -> ()
      end)
    children;
  match mon.thread with Some t -> Thread.join t | None -> ()

(* A restart over existing durable roots serves each shard's persisted
   history, so shard k's checker starts from shard k's recovered state:
   the replicas' applied lists for that shard, merged by ⟨time, pid⟩
   stamp.  Read before the children reopen the stores. *)
let durable_initials durable_dir ~n ~shards =
  let initials = Array.make shards None in
  (match durable_dir with
  | None -> ()
  | Some _ ->
      for k = 0 to shards - 1 do
        let tbl = Hashtbl.create 64 in
        for i = 0 to n - 1 do
          match durable_path durable_dir i with
          | None -> ()
          | Some replica_dir -> (
              match
                Durable.Store.inspect ~dir:(shard_store_dir replica_dir k)
              with
              | Error _ -> ()
              | Ok (_meta, view) ->
                  List.iter
                    (fun (a : P.applied) ->
                      Hashtbl.replace tbl (a.P.time, a.P.pid) a.P.op)
                    (P.recovered_of view).P.s_applied)
        done;
        if Hashtbl.length tbl > 0 then
          initials.(k) <-
            Some
              (Hashtbl.fold (fun key op acc -> (key, op) :: acc) tbl []
              |> List.sort compare
              |> List.fold_left
                   (fun st (_, op) -> fst (W.L.D.apply st op))
                   W.L.D.initial)
      done);
  initials

(* ---- loadgen mode: drive an already-running sharded cluster ---- *)

let drive ~n ~shards ~keys ~theta ~vnodes ~ring_seed ~d ~u ?eps ?(x = 0)
    ?(slack = 5000) ?workers ?(round = 24) ?(mix = (50, 40, 10))
    ?(host = "127.0.0.1") ?(base_port = 7800) ?(log = fun _ -> ()) ?abort
    ?(traced = false) ~ops ~seed () =
  ignore log;
  if n < 1 then invalid_arg "Shard_cluster.drive: n must be >= 1";
  if round < 1 || round > 62 then
    invalid_arg "Shard_cluster.drive: round must be in [1, 62]";
  let m, a, o = mix in
  let total = m + a + o in
  if m < 0 || a < 0 || o < 0 || total = 0 then
    invalid_arg "Shard_cluster.drive: mix weights must be non-negative";
  let eps =
    match eps with Some e -> e | None -> Core.Params.optimal_eps ~n ~u
  in
  let workers = match workers with Some w -> w | None -> n in
  let params = Core.Params.make ~n ~d:(d + slack) ~u:(u + slack) ~eps ~x () in
  let dir = Directory.make ~vnodes ~seed:ring_seed ~shards ~n () in
  let zipf = Runtime.Workloads.Zipf.make ~n:keys ~theta in
  let rng = Prelude.Rng.make seed in
  let _rng_offsets, rng_workers = Prelude.Rng.split rng in
  let abort = match abort with Some a -> a | None -> Atomic.make false in
  let epoch = Prelude.Mclock.now_us () in
  let ports = Array.init n (fun i -> base_port + i) in
  let out =
    drive_rounds ~host ~ports ~dir ~zipf ~epoch ~abort ~resilient:false
      ~traced ~windows:[] ~mint:None ~timeout_us:None ~workers ~round ~mix
      ~total ~ops rng_workers
  in
  let initials = Array.make shards None in
  let aborted = if Atomic.get abort then Some "aborted" else None in
  let verdict, per_shard, classes =
    verdict_and_shards ~shards ~initials ~params ~windowed:false
      ~matrix:out.d_matrix ~cuts:out.d_cuts ~entries:out.d_entries
      ~expected:ops ~failed:out.d_failed ~first_error:out.d_first_error
      ~aborted
  in
  {
    params;
    cfg_d = d;
    cfg_u = u;
    slack;
    shards;
    keys;
    theta;
    vnodes;
    ring_seed;
    mix;
    workers;
    seed;
    ops;
    completed = List.length out.d_entries;
    failed = out.d_failed;
    wall_us = out.d_wall_us;
    throughput =
      (if out.d_wall_us = 0 then 0.
       else
         float_of_int (List.length out.d_entries)
         /. (float_of_int out.d_wall_us /. 1e6));
    classes;
    per_shard;
    replica_stats = [];
    offsets = [||];
    cuts = List.sort compare out.d_cuts;
    aborted;
    verdict;
  }

(* ---- cluster mode: fork, drive, verify, tear down ---- *)

let run ~n ~shards ~keys ~theta ~vnodes ~ring_seed ~d ~u ?eps ?(x = 0)
    ?(slack = 5000) ?workers ?(round = 24) ?(mix = (50, 40, 10))
    ?(host = "127.0.0.1") ?(base_port = 7800) ?(exe = Sys.executable_name)
    ?(log = fun _ -> ()) ?abort ?plan ?trace_dir ?durable_dir
    ?(fsync = "interval") ?(snapshot_every = 1024) ~ops ~seed () =
  if n < 1 then invalid_arg "Shard_cluster.run: n must be >= 1";
  if shards < 1 then invalid_arg "Shard_cluster.run: shards must be >= 1";
  if keys < 1 then invalid_arg "Shard_cluster.run: keys must be >= 1";
  if round < 1 || round > 62 then
    invalid_arg "Shard_cluster.run: round must be in [1, 62]";
  let m, a, o = mix in
  let total = m + a + o in
  if m < 0 || a < 0 || o < 0 || total = 0 then
    invalid_arg "Shard_cluster.run: mix weights must be non-negative";
  let eps =
    match eps with Some e -> e | None -> Core.Params.optimal_eps ~n ~u
  in
  let workers = match workers with Some w -> w | None -> n in
  let params = Core.Params.make ~n ~d:(d + slack) ~u:(u + slack) ~eps ~x () in
  let dir = Directory.make ~vnodes ~seed:ring_seed ~shards ~n () in
  let zipf = Runtime.Workloads.Zipf.make ~n:keys ~theta in
  let rng = Prelude.Rng.make seed in
  let rng_offsets, rng_workers = Prelude.Rng.split rng in
  let offsets =
    Array.init n (fun i ->
        if i = 0 || eps = 0 then 0
        else Prelude.Rng.int_in rng_offsets ~lo:0 ~hi:eps)
  in
  let plan =
    match plan with
    | Some p when not (Fault.Fault_plan.is_empty p) -> Some p
    | _ -> None
  in
  let chaos =
    Option.map
      (fun p -> (Fault.Fault_plan.spec_text p, Fault.Fault_plan.seed p))
      plan
  in
  let fault_windows =
    match plan with
    | None -> []
    | Some p -> List.map (fun (_, f, u) -> (f, u)) (Fault.Fault_plan.windows p)
  in
  (match plan with
  | None -> ()
  | Some p ->
      Array.iteri
        (fun i k -> offsets.(i) <- offsets.(i) + k)
        (Fault.Fault_plan.skews p ~n));
  let resilient = plan <> None in
  let ports = Array.init n (fun i -> base_port + i) in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let abort = match abort with Some a -> a | None -> Atomic.make false in
  let epoch = Prelude.Mclock.now_us () in
  (match trace_dir with
  | Some tdir -> (
      try Unix.mkdir tdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | None -> ());
  let traced = trace_dir <> None in
  let op_ids = Atomic.make (((epoch land ((1 lsl 38) - 1)) lsl 24) lor 1) in
  (* Chaos runs are idempotent like durable ones: a [flood]'s overload
     sheds are survivable only if the client replays (same op id, same
     deadline) once the pressure clears. *)
  let idempotent = durable_dir <> None || plan <> None in
  let mint =
    if idempotent then Some (fun () -> Atomic.fetch_and_add op_ids 1) else None
  in
  let timeout_us =
    if idempotent then Some ((2 * (d + slack + eps)) + 2_000_000) else None
  in
  let deadline_budget_us =
    if idempotent then (2 * (d + slack + eps)) + 4_000_000 else 0
  in
  let initials = durable_initials durable_dir ~n ~shards in
  let children =
    Array.init n (fun i ->
        let argv =
          serve_argv ~exe ~peers:(peers_of ~host ~ports) ~pid:i ~shards ~d ~u
            ~eps ~x ~slack ~offset:offsets.(i) ~epoch ~chaos
            ~trace:(trace_path trace_dir i)
            ~durable:(durable_path durable_dir i) ~fsync ~snapshot_every
        in
        let os_pid =
          Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
        in
        log
          (Printf.sprintf "shards: spawned replica %d (os pid %d, port %d)" i
             os_pid ports.(i));
        { child_pid = i; os_pid; port = ports.(i) })
  in
  let mon = start_monitor children ~abort ~log in
  (* Readiness + final stats: one admin connection per replica. *)
  let admin =
    Array.map
      (fun c ->
        match Cl.connect ~host ~port:c.port ~attempts:100 () with
        | Ok conn -> Some conn
        | Error e ->
            log
              (Printf.sprintf "shards: replica %d not reachable: %s"
                 c.child_pid e);
            Atomic.set abort true;
            None)
      children
  in
  let out =
    drive_rounds ~host ~ports ~dir ~zipf ~epoch ~abort ~resilient ~traced
      ~windows:fault_windows ~mint ~timeout_us ~deadline_budget_us ~workers
      ~round ~mix ~total ~ops rng_workers
  in
  let replica_stats =
    Array.to_list admin
    |> List.mapi (fun i conn ->
           match conn with
           | None -> None
           | Some conn -> (
               match Cl.stats conn with
               | Ok s ->
                   Cl.close conn;
                   Some (i, s)
               | Error _ ->
                   Cl.close conn;
                   None))
    |> List.filter_map Fun.id
  in
  teardown mon children ~log;
  let aborted =
    match (mon.abort_why, out.d_first_error) with
    | Some why, _ -> Some why
    | None, Some e when Atomic.get abort -> Some e
    | None, _ -> if Atomic.get abort then Some "aborted" else None
  in
  let verdict, per_shard, classes =
    verdict_and_shards ~shards ~initials ~params
      ~windowed:(fault_windows <> []) ~matrix:out.d_matrix ~cuts:out.d_cuts
      ~entries:out.d_entries ~expected:ops ~failed:out.d_failed
      ~first_error:out.d_first_error ~aborted
  in
  {
    params;
    cfg_d = d;
    cfg_u = u;
    slack;
    shards;
    keys;
    theta;
    vnodes;
    ring_seed;
    mix;
    workers;
    seed;
    ops;
    completed = List.length out.d_entries;
    failed = out.d_failed;
    wall_us = out.d_wall_us;
    throughput =
      (if out.d_wall_us = 0 then 0.
       else
         float_of_int (List.length out.d_entries)
         /. (float_of_int out.d_wall_us /. 1e6));
    classes;
    per_shard;
    replica_stats;
    offsets;
    cuts = List.sort compare out.d_cuts;
    aborted;
    verdict;
  }
