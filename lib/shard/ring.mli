(** Seeded consistent-hash ring — the key→member map under the sharded
    namespace.

    Each member owns [vnodes] points on a 62-bit hash circle; a key routes
    to the owner of the first point at or clockwise of the key's hash.
    Every point is a {e stateless} hash of [(seed, member, vnode)] — no
    RNG stream — so two rings built from the same seed and member set are
    identical regardless of construction order, and every process of a
    cluster (clients included) can rebuild the routing table locally from
    the three integers in its config.  That is what lets the {!Directory}
    resolve key→shard→replica without a central hop.

    The properties the qcheck suite pins down:

    - {e balance}: with the default 64 vnodes per member, no member owns
      more than ~2× its fair share of uniformly-hashed keys;
    - {e minimal remapping}: adding a member moves only keys that now route
      to it, and removing one moves only the keys it owned — both are
      consequences of points being per-member and independent of the rest
      of the ring, checked against explicit before/after routing. *)

type t

val make : ?vnodes:int -> seed:int -> members:int list -> unit -> t
(** Build the ring. [vnodes] (default 64) is points per member; [members]
    must be non-empty and duplicate-free.  @raise Invalid_argument
    otherwise. *)

val route : t -> int -> int
(** [route t key] is the member owning [key]'s hash.  Total: every key
    routes somewhere as long as the ring has members. *)

val add : t -> int -> t
(** Ring with one more member (same seed and vnodes).
    @raise Invalid_argument if already present. *)

val remove : t -> int -> t
(** Ring with a member removed.  @raise Invalid_argument if absent or if
    it is the last member. *)

val members : t -> int list
(** Ascending. *)

val seed : t -> int
val vnodes : t -> int

val spread : t -> keys:int -> (int * int) array
(** [(member, owned)] census over keys [0..keys-1] — the balance
    diagnostic the bench group and the qcheck property both read. *)
