(** One replica of a {e sharded} namespace as an OS process: [shards]
    independent Algorithm 1 instances multiplexed over the {e same}
    per-peer TCP links — the body of [timebounds shards serve].

    The multiplexing is the whole trick.  A host opens exactly the link
    topology an unsharded [Net.Serve] stack does (one outgoing connection
    per peer), and every codec-v4 frame carries its shard id; a dispatcher
    thread drains the TCP transport's mailbox and routes each decoded
    message into the owning shard's own {!Runtime.Mailbox}.  Each shard
    then runs behind a {e facade} transport — send tags outgoing frames
    with the shard id, recv/post/depth operate on the shard's mailbox —
    so [Runtime.Replica] hosts it unchanged: the shard neither knows nor
    cares that it shares its sockets with 63 siblings.

    Shard replicas run on systhreads ([R.node ~threaded:true]), not
    domains: an idle event loop blocks in [Mailbox.take] releasing the
    runtime lock, so a host carries far more shards than the OCaml domain
    ceiling would allow, at the cost of serialising CPU bursts.

    Per-shard isolation elsewhere:
    - durable state lives under [root/shard-<k>/], each its own
      {!Durable.Store} whose META names the shard — a mixed-up directory
      handoff fails loudly;
    - a chaos plan is projected per shard ({!Fault.Fault_plan.for_shard}):
      shard [k]'s facade is wrapped only when the projection is non-empty,
      so a [%k]-scoped fault never touches a sibling;
    - correctness is per shard by construction: linearizability is
      compositional, so [shards] independently linearizable instances are
      a linearizable namespace (checked shard-by-shard post hoc). *)

module T = Runtime.Transport_intf

type config = {
  pid : int;
  shards : int;
  addrs : (string * int) array;  (** every replica's address, index = pid *)
  params : Core.Params.t;  (** effective (slack already folded into d, u) *)
  offset : int;  (** this replica's clock offset, µs *)
  start_us : int option;  (** shared cluster epoch (see [Net.Serve]) *)
  trace : string option;  (** observability trace file for this process *)
  durable : string option;  (** durable {e root}; shards get subdirs *)
  fsync : Durable.Wal.fsync;
  snapshot_every : int;
  chaos : Fault.Fault_plan.t option;  (** projected per shard *)
  fallback : Quorum.Config.t option;
      (** arm the adaptive quorum fallback on every shard: each Algorithm 1
          instance runs its own failure detector and mode controller, so
          shards degrade (and recover) independently *)
  log : string -> unit;
}

let catchup_grace_us = 1_500_000

module Make (W : Net.Wire.WIRED) = struct
  module C = Net.Codec.Make (W.C)
  module R = Runtime.Replica.Make (W.L.D)
  module P = Net.Persist.Make (W.C)

  type handle = {
    config : config;
    transport : (int * R.event) T.t;  (** the shared TCP transport *)
    facades : R.event T.t array;  (** per-shard views, index = shard *)
    nodes : R.node array;
    dispatcher : Thread.t;
    dispatcher_on : bool Atomic.t;
    recorder : (Obs.Recorder.t * (unit -> unit)) option;
    stores : Durable.Store.t option array;
    snap_stop : bool Atomic.t;
    snap_thread : Thread.t option;
    mutable handle_stopped : bool;
  }

  let hello_of cfg =
    {
      Net.Codec.pid = cfg.pid;
      n = cfg.params.Core.Params.n;
      d = cfg.params.Core.Params.d;
      u = cfg.params.Core.Params.u;
      eps = cfg.params.Core.Params.eps;
      x = cfg.params.Core.Params.x;
      obj_tag = W.C.obj_tag;
      shards = cfg.shards;
    }

  (* Same peer admission as [Net.Serve] plus the shard-topology check: two
     hosts disagreeing on the shard count would route frames to the wrong
     instances, so the handshake rejects the pairing outright. *)
  let classify_hello cfg frame =
    match C.decode_payload frame with
    | Ok (C.Hello h) ->
        let mine = hello_of cfg in
        if h.Net.Codec.obj_tag <> mine.Net.Codec.obj_tag then
          Net.Tcp_transport.Reject
            (Printf.sprintf "object mismatch (peer %d, ours %d)"
               h.Net.Codec.obj_tag mine.Net.Codec.obj_tag)
        else if
          h.Net.Codec.n <> mine.Net.Codec.n
          || h.Net.Codec.d <> mine.Net.Codec.d
          || h.Net.Codec.u <> mine.Net.Codec.u
          || h.Net.Codec.eps <> mine.Net.Codec.eps
          || h.Net.Codec.x <> mine.Net.Codec.x
        then
          Net.Tcp_transport.Reject
            (Printf.sprintf
               "parameter mismatch: peer %d has (n=%d d=%d u=%d eps=%d x=%d)"
               h.Net.Codec.pid h.Net.Codec.n h.Net.Codec.d h.Net.Codec.u
               h.Net.Codec.eps h.Net.Codec.x)
        else if h.Net.Codec.shards <> mine.Net.Codec.shards then
          Net.Tcp_transport.Reject
            (Printf.sprintf "shard topology mismatch (peer %d, ours %d)"
               h.Net.Codec.shards mine.Net.Codec.shards)
        else if h.Net.Codec.pid < 0 || h.Net.Codec.pid >= mine.Net.Codec.n then
          Net.Tcp_transport.Reject
            (Printf.sprintf "bad peer pid %d" h.Net.Codec.pid)
        else Net.Tcp_transport.Peer h.Net.Codec.pid
    | Ok _ -> Net.Tcp_transport.Client
    | Error e -> Net.Tcp_transport.Reject ("bad handshake: " ^ e)

  let entry_of ~op ~time ~pid =
    { R.Alg.op; ts = Prelude.Stamp.make ~time ~pid }

  (* Frames decode to (shard, event); the handshake guarantees matching
     topologies, so an out-of-range shard id is a corrupt/foreign frame
     and is skipped like any other undecodable one. *)
  let decode_peer ~shards ~me ~src frame =
    let ok shard = shard >= 0 && shard < shards in
    match C.decode_payload frame with
    | Ok (C.Entry { op; time; pid; trace; op_id; shard }) when ok shard ->
        Obs.Recorder.emit ~pid:me ~kind:Obs.Event.Recv ~trace ~a:src ();
        Some
          ( shard,
            R.of_wire (R.Wire_entry (entry_of ~op ~time ~pid, trace, op_id)) )
    | Ok (C.Catchup_req { time; cpid; shard }) when ok shard ->
        Some (shard, R.of_wire (R.Wire_catchup_req { time; cpid }))
    | Ok (C.Catchup_rep { entries; time; cpid; shard }) when ok shard ->
        let entries =
          List.map
            (fun (op, time, pid, op_id) -> (entry_of ~op ~time ~pid, op_id))
            entries
        in
        Some (shard, R.of_wire (R.Wire_catchup_rep { entries; time; cpid }))
    | Ok (C.Hb { stamp; epoch; qmode; seq; floor; shard }) when ok shard ->
        Some
          ( shard,
            R.of_wire (R.Wire_quorum (R.Hb { stamp; epoch; qmode; seq; floor }))
          )
    | Ok (C.Forward { qid; origin; op; op_id; trace; shard }) when ok shard ->
        Some
          ( shard,
            R.of_wire
              (R.Wire_quorum (R.Forward { qid; origin; op; op_id; trace })) )
    | Ok (C.Propose { epoch; qseq; time; origin; qid; op; op_id; trace; shard })
      when ok shard ->
        Some
          ( shard,
            R.of_wire
              (R.Wire_quorum
                 (R.Propose
                    {
                      epoch;
                      qseq;
                      p =
                        {
                          R.q_time = time;
                          q_op = op;
                          q_origin = origin;
                          q_qid = qid;
                          q_op_id = op_id;
                          q_trace = trace;
                        };
                    })) )
    | Ok (C.Qack { epoch; qseq; shard }) when ok shard ->
        Some (shard, R.of_wire (R.Wire_quorum (R.Qack { epoch; qseq })))
    | Ok (C.Qcommit { epoch; qseq; shard }) when ok shard ->
        Some (shard, R.of_wire (R.Wire_quorum (R.Qcommit { epoch; qseq })))
    | Ok (C.Fnack { qid; shard }) when ok shard ->
        Some (shard, R.of_wire (R.Wire_quorum (R.Fnack { qid })))
    | Ok (C.Qfill { epoch; from_seq; shard }) when ok shard ->
        Some (shard, R.of_wire (R.Wire_quorum (R.Qfill { epoch; from_seq })))
    | Ok (C.Ping { seq; t0; shard }) when ok shard ->
        Some (shard, R.of_wire (R.Wire_sync (R.Sping { seq; t0 })))
    | Ok (C.Pong { seq; t0; t_rx; t_tx; shard }) when ok shard ->
        Some (shard, R.of_wire (R.Wire_sync (R.Spong { seq; t0; t_rx; t_tx })))
    | Ok _ | Error _ -> None

  let encode_peer (shard, ev) =
    match R.wire_view ev with
    | Some (R.Wire_entry ((e : R.Alg.entry), trace, op_id)) ->
        C.encode
          (C.Entry
             {
               op = e.R.Alg.op;
               time = e.R.Alg.ts.Prelude.Stamp.time;
               pid = e.R.Alg.ts.Prelude.Stamp.pid;
               trace;
               op_id;
               shard;
             })
    | Some (R.Wire_catchup_req { time; cpid }) ->
        C.encode (C.Catchup_req { time; cpid; shard })
    | Some (R.Wire_catchup_rep { entries; time; cpid }) ->
        let entries =
          List.map
            (fun ((e : R.Alg.entry), op_id) ->
              ( e.R.Alg.op,
                e.R.Alg.ts.Prelude.Stamp.time,
                e.R.Alg.ts.Prelude.Stamp.pid,
                op_id ))
            entries
        in
        C.encode (C.Catchup_rep { entries; time; cpid; shard })
    | Some (R.Wire_quorum q) ->
        C.encode
          (match q with
          | R.Hb { stamp; epoch; qmode; seq; floor } ->
              C.Hb { stamp; epoch; qmode; seq; floor; shard }
          | R.Forward { qid; origin; op; op_id; trace } ->
              C.Forward { qid; origin; op; op_id; trace; shard }
          | R.Propose { epoch; qseq; p } ->
              C.Propose
                {
                  epoch;
                  qseq;
                  time = p.R.q_time;
                  origin = p.R.q_origin;
                  qid = p.R.q_qid;
                  op = p.R.q_op;
                  op_id = p.R.q_op_id;
                  trace = p.R.q_trace;
                  shard;
                }
          | R.Qack { epoch; qseq } -> C.Qack { epoch; qseq; shard }
          | R.Qcommit { epoch; qseq } -> C.Qcommit { epoch; qseq; shard }
          | R.Fnack { qid } -> C.Fnack { qid; shard }
          | R.Qfill { epoch; from_seq } -> C.Qfill { epoch; from_seq; shard })
    | Some (R.Wire_sync s) ->
        C.encode
          (match s with
          | R.Sping { seq; t0 } -> C.Ping { seq; t0; shard }
          | R.Spong { seq; t0; t_rx; t_tx } ->
              C.Pong { seq; t0; t_rx; t_tx; shard })
    | None -> invalid_arg "Host.encode_peer: local event on the wire"

  (* Same lane policy as [Net.Serve], applied to the multiplexed (shard,
     event) frames: control traffic (heartbeats, sync probes, catch-up)
     preempts data so every shard's failure detector stays live when one
     shard's load saturates the shared links. *)
  let lane_of (_shard, ev) =
    match R.wire_view ev with
    | Some (R.Wire_quorum (R.Hb _))
    | Some (R.Wire_sync _)
    | Some (R.Wire_catchup_req _)
    | Some (R.Wire_catchup_rep _) ->
        Net.Lanes.Ctrl
    | Some _ | None -> Net.Lanes.Data

  (* Shard [k]'s view of the shared transport.  [send] rides the real
     links with the shard tag; [post]/[recv]/[depth] are the shard's own
     mailbox (the dispatcher feeds it); [close] is a no-op — the host owns
     the one real close. *)
  let facade_of ~real ~mbox ~shard =
    {
      T.n = real.T.n;
      send = (fun ~src ~dst ~trace ev -> real.T.send ~src ~dst ~trace (shard, ev));
      post =
        (fun ~src ~dst:_ ev ->
          Runtime.Mailbox.put mbox ~deliver_at:(Prelude.Mclock.now_us ())
            (src, ev));
      recv = (fun ~me:_ ~deadline -> Runtime.Mailbox.take mbox ~deadline);
      depth = (fun ~me:_ -> Runtime.Mailbox.length mbox);
      stats = real.T.stats;
      close = (fun () -> ());
    }

  let wrap_chaos cfg shard facade =
    match cfg.chaos with
    | None -> facade
    | Some plan ->
        let scoped = Fault.Fault_plan.for_shard plan shard in
        if Fault.Fault_plan.is_empty scoped then facade
        else
          let w =
            Fault.Chaos_transport.wrapper (Fault.Chaos_transport.create scoped)
          in
          let start_us =
            match cfg.start_us with
            | Some s -> s
            | None -> Prelude.Mclock.now_us ()
          in
          w.T.wrap ~start_us facade

  let shard_dir root k = Filename.concat root (Printf.sprintf "shard-%d" k)

  let start ?(listener : Net.Tcp_transport.listener option) (cfg : config) =
    if cfg.shards < 1 then invalid_arg "Host.start: shards must be >= 1";
    let host, port = cfg.addrs.(cfg.pid) in
    let listener =
      match listener with
      | Some l -> l
      | None -> Net.Tcp_transport.listen ~host ~port
    in
    let facades_ref = ref None in
    let rec the_facades () =
      match !facades_ref with
      | Some f -> f
      | None ->
          Prelude.Mclock.sleep_us 1_000;
          the_facades ()
    in
    (* One admission controller per shard: shards have independent service
       rates (their own nodes, stores, quorum modes), so one saturated
       shard sheds without starving its siblings' budgets. *)
    let admissions =
      Array.init cfg.shards (fun _ -> Net.Admission.create ())
    in
    let on_client ~first conn =
      let reply msg = Net.Tcp_transport.conn_write conn (C.encode msg) in
      let handle_frame frame =
        match C.decode_payload frame with
        | Ok (C.Invoke { op; trace; op_id; shard; deadline }) -> (
            if shard < 0 || shard >= cfg.shards then
              reply
                (C.Error_msg
                   (Printf.sprintf "no shard %d here (host has %d)" shard
                      cfg.shards))
            else
              let now = Prelude.Mclock.now_us () in
              if deadline > 0 && now > deadline then begin
                Obs.Recorder.emit ~pid:cfg.pid ~kind:Obs.Event.Shed ~trace
                  ~a:Obs.Event.shed_deadline ~b:shard ();
                reply (C.Shed { reason = "shed: deadline passed"; shard })
              end
              else
                match
                  Net.Admission.try_admit admissions.(shard) ~now_us:now
                    ~deadline_us:deadline
                with
                | Net.Admission.Shed reason ->
                    Obs.Recorder.emit ~pid:cfg.pid ~kind:Obs.Event.Shed ~trace
                      ~a:Obs.Event.shed_admission ~b:shard ();
                    reply (C.Shed { reason; shard })
                | Net.Admission.Admitted -> (
                    let facades = the_facades () in
                    let finish () =
                      Net.Admission.finish admissions.(shard)
                        ~elapsed_us:(Prelude.Mclock.now_us () - now)
                    in
                    match
                      R.invoke_on ~trace ~op_id ~deadline facades.(shard)
                        ~pid:cfg.pid op
                    with
                    | r ->
                        finish ();
                        reply (C.Result { result = r; shard })
                    | exception R.Stopped ->
                        finish ();
                        reply (C.Error_msg "replica stopped")
                    | exception R.Retry_later why ->
                        finish ();
                        if
                          String.length why >= 4
                          && String.sub why 0 4 = "shed"
                        then reply (C.Shed { reason = why; shard })
                        else reply (C.Error_msg ("retry: " ^ why))))
        | Ok C.Stats_req ->
            let stats =
              match !facades_ref with
              | Some facades when Array.length facades > 0 ->
                  T.stats facades.(0)
              | _ -> { T.sent = 0; dropped = 0; link = Some T.no_links }
            in
            reply (C.Stats stats)
        | Ok m ->
            ignore
              (reply
                 (C.Error_msg (Format.asprintf "unexpected frame %a" C.pp_msg m)));
            false
        | Error e ->
            ignore (reply (C.Error_msg ("bad frame: " ^ e)));
            false
      in
      let rec loop frame =
        if handle_frame frame then
          match Net.Tcp_transport.conn_read_frame conn with
          | Some next -> loop next
          | None -> ()
      in
      loop first
    in
    let recorder =
      match cfg.trace with
      | None -> None
      | Some path ->
          let epoch_us =
            match cfg.start_us with
            | Some s -> s
            | None -> Prelude.Mclock.now_us ()
          in
          let sink, flush, close = Obs.Recorder.file_sink path in
          let r = Obs.Recorder.start ~epoch_us ~sink ~flush () in
          Obs.Recorder.install r;
          Some (r, close)
    in
    let transport =
      Net.Tcp_transport.create ~me:cfg.pid ~addrs:cfg.addrs ~listener
        ~hello:(C.encode (C.Hello (hello_of cfg)))
        ~classify_hello:(classify_hello cfg)
        ~decode_peer:(decode_peer ~shards:cfg.shards ~me:cfg.pid)
        ~encode_peer ~on_client ~lane_of ~log:cfg.log ()
    in
    let mboxes = Array.init cfg.shards (fun _ -> Runtime.Mailbox.create ()) in
    (* The dispatcher is the only consumer of the shared transport's
       mailbox: it fans decoded (shard, event) messages out to the owning
       shard.  Bounded-deadline recv keeps it responsive to shutdown. *)
    let dispatcher_on = Atomic.make true in
    let dispatcher =
      Thread.create
        (fun () ->
          while Atomic.get dispatcher_on do
            let deadline = Some (Prelude.Mclock.now_us () + 50_000) in
            match T.recv transport ~me:cfg.pid ~deadline with
            | Some (src, (shard, ev)) when shard >= 0 && shard < cfg.shards ->
                Runtime.Mailbox.put mboxes.(shard)
                  ~deliver_at:(Prelude.Mclock.now_us ())
                  (src, ev)
            | _ -> ()
          done)
        ()
    in
    let facades =
      Array.init cfg.shards (fun k ->
          wrap_chaos cfg k (facade_of ~real:transport ~mbox:mboxes.(k) ~shard:k))
    in
    (* Durable state per shard, recovered before its node exists.  The
       whole-host restart then announces each non-fresh shard to the peers
       through its own facade — catch-up traffic is shard-tagged like any
       other frame. *)
    let durable =
      Array.init cfg.shards (fun k ->
          match cfg.durable with
          | None -> None
          | Some root ->
              let dir = shard_dir root k in
              let meta =
                Printf.sprintf
                  "timebounds replica=%d shard=%d obj=%d n=%d shards=%d"
                  cfg.pid k W.C.obj_tag cfg.params.Core.Params.n cfg.shards
              in
              (match Durable.Store.open_ ~dir ~meta ~fsync:cfg.fsync with
              | Error e ->
                  cfg.log
                    (Printf.sprintf "replica %d shard %d: %s" cfg.pid k e);
                  failwith e
              | Ok (store, recovered) ->
                  let snap = P.recovered_of recovered in
                  let rs =
                    {
                      R.r_obj = snap.P.s_obj;
                      r_applied =
                        List.map
                          (fun (a : P.applied) ->
                            ( entry_of ~op:a.P.op ~time:a.P.time ~pid:a.P.pid,
                              a.P.result,
                              a.P.op_id ))
                          snap.P.s_applied;
                    }
                  in
                  let on_apply (e : R.Alg.entry) result op_id =
                    Durable.Store.append store
                      (P.encode_record
                         {
                           P.op = e.R.Alg.op;
                           time = e.R.Alg.ts.Prelude.Stamp.time;
                           pid = e.R.Alg.ts.Prelude.Stamp.pid;
                           op_id;
                           result;
                         })
                  in
                  let recovery =
                    {
                      R.catchup_wait_us =
                        cfg.params.Core.Params.d + cfg.params.Core.Params.eps
                        + catchup_grace_us;
                      on_apply;
                      recovered = Some rs;
                    }
                  in
                  Some
                    ( store,
                      recovery,
                      recovered.Durable.Store.r_fresh,
                      List.length snap.P.s_applied )))
    in
    let nodes =
      Array.init cfg.shards (fun k ->
          let recovery = Option.map (fun (_, r, _, _) -> r) durable.(k) in
          let fallback =
            Option.map
              (fun (q : Quorum.Config.t) ->
                {
                  q with
                  Quorum.Config.on_mode =
                    (fun ~quorum ~epoch ~seq ->
                      cfg.log
                        (Printf.sprintf
                           "replica %d shard %d: mode: %s(epoch=%d seq=%d)"
                           cfg.pid k
                           (if quorum then "quorum" else "fast")
                           epoch seq);
                      q.Quorum.Config.on_mode ~quorum ~epoch ~seq);
                })
              cfg.fallback
          in
          R.node ~params:cfg.params ~transport:facades.(k) ~pid:cfg.pid
            ~offset:cfg.offset ?start_us:cfg.start_us ~threaded:true ?recovery
            ?fallback ())
    in
    facades_ref := Some facades;
    let stores =
      Array.mapi
        (fun k entry ->
          match entry with
          | None -> None
          | Some (store, _, fresh, replayed) ->
              if not fresh then begin
                R.post_recover facades.(k) ~pid:cfg.pid;
                cfg.log
                  (Printf.sprintf
                     "replica %d shard %d: recovered %d mutations; catching up"
                     cfg.pid k replayed);
                Obs.Recorder.emit ~pid:cfg.pid ~kind:Obs.Event.Recover
                  ~a:replayed ~b:k ()
              end;
              Some store)
        durable
    in
    let snap_stop = Atomic.make false in
    let snap_thread =
      if cfg.snapshot_every > 0 && Array.exists Option.is_some stores then
        (* One cadence thread sweeps every shard's store — 200 ms per
           sweep bounds checkpoint lag without a thread per shard. *)
        Some
          (Thread.create
             (fun () ->
               while not (Atomic.get snap_stop) do
                 Prelude.Mclock.sleep_us 200_000;
                 if not (Atomic.get snap_stop) then
                   Array.iteri
                     (fun k store ->
                       match store with
                       | Some store
                         when Durable.Store.records_since_snapshot store
                              >= cfg.snapshot_every ->
                           R.request_snapshot facades.(k) ~pid:cfg.pid
                             (fun view ->
                               let folded =
                                 Durable.Store.records_since_snapshot store
                               in
                               Durable.Store.snapshot store
                                 (P.encode_snapshot
                                    {
                                      P.s_obj = view.R.v_obj;
                                      s_hwm_time = view.R.v_hwm_time;
                                      s_hwm_pid = view.R.v_hwm_pid;
                                      s_applied =
                                        List.map
                                          (fun ((e : R.Alg.entry), result,
                                                op_id) ->
                                            {
                                              P.op = e.R.Alg.op;
                                              time =
                                                e.R.Alg.ts.Prelude.Stamp.time;
                                              pid =
                                                e.R.Alg.ts.Prelude.Stamp.pid;
                                              op_id;
                                              result;
                                            })
                                          view.R.v_applied;
                                    });
                               Obs.Recorder.emit ~pid:cfg.pid
                                 ~kind:Obs.Event.Checkpoint ~a:folded
                                 ~b:(Durable.Store.generation store)
                                 ())
                       | _ -> ())
                     stores
               done)
             ())
      else None
    in
    {
      config = cfg;
      transport;
      facades;
      nodes;
      dispatcher;
      dispatcher_on;
      recorder;
      stores;
      snap_stop;
      snap_thread;
      handle_stopped = false;
    }

  (* Stop order: shard nodes first (wakes any client handler blocked on an
     invocation cell), then the dispatcher and the shared transport, then
     the stores, the recorder last.  Returns per-shard completed-operation
     records. *)
  let stop handle =
    if not handle.handle_stopped then begin
      handle.handle_stopped <- true;
      Atomic.set handle.snap_stop true;
      let records = Array.map R.node_stop handle.nodes in
      Option.iter Thread.join handle.snap_thread;
      Atomic.set handle.dispatcher_on false;
      Thread.join handle.dispatcher;
      let stats = T.stats handle.transport in
      T.close handle.transport;
      Array.iter
        (Option.iter (fun store ->
             Durable.Store.sync store;
             Durable.Store.close store))
        handle.stores;
      (match handle.recorder with
      | None -> ()
      | Some (r, close) ->
          Obs.Recorder.uninstall ();
          Obs.Recorder.stop r;
          close ());
      (records, stats)
    end
    else ([||], T.stats handle.transport)

  let stats handle = T.stats handle.transport

  (* ---- the [timebounds shards serve] process body ---- *)

  let run (cfg : config) =
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let handle = start cfg in
    let host, port = cfg.addrs.(cfg.pid) in
    cfg.log
      (Printf.sprintf "replica %d: hosting %d shards on %s:%d (%s, n=%d)"
         cfg.pid cfg.shards host port W.L.label cfg.params.Core.Params.n);
    let watched_parent = ref None in
    let set_watch pid = watched_parent := Some pid in
    let parent_alive () =
      match !watched_parent with
      | None -> true
      | Some pid -> (
          match Unix.kill pid 0 with () -> true | exception _ -> false)
    in
    let rec wait () =
      if Atomic.get stop_requested then ()
      else if not (parent_alive ()) then
        cfg.log (Printf.sprintf "replica %d: parent gone, exiting" cfg.pid)
      else begin
        Prelude.Mclock.sleep_us 100_000;
        wait ()
      end
    in
    (set_watch, wait, handle)

  let run_until_signalled ?watch_parent (cfg : config) =
    let set_watch, wait, handle = run cfg in
    (match watch_parent with Some p -> set_watch p | None -> ());
    wait ();
    let records, stats = stop handle in
    let total = Array.fold_left (fun k rs -> k + List.length rs) 0 records in
    cfg.log
      (Printf.sprintf "replica %d: stopped after %d ops over %d shards; %s"
         cfg.pid total cfg.shards
         (Format.asprintf "%a" T.pp_stats stats))
end
