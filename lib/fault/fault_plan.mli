(** Deterministic, seed-driven fault schedules.

    A plan is compiled from a small declarative spec and an integer seed.
    Every probabilistic choice (does rule [r] drop message [k] on link
    [i → j]?) is a {e stateless} hash of [(seed, rule, src, dst, index)] —
    not a stateful RNG stream — so a decision does not depend on the wall
    clock, on the order links are asked in, or on how many other links
    exist.  Same seed ⇒ same per-link fault sequence, which is what makes a
    chaos run reproducible (the acceptance bar for the whole layer).

    {2 Spec grammar}

    {v
    plan    := rule (';' rule)*
    rule    := name '(' args ')' [ '/' link ] [ '%' shard ] [ '@' window ]
    name    := drop | dup | spike | jitter | partition | crash | restart
             | skew | flood
    link    := src '>' dst          src, dst := pid | '*'
    shard   := shard id (sharded hosts only; see {!for_shard})
    window  := time [ '-' time ]    time := number ['us'|'ms'|'s']
    v}

    - [drop(P)] — lose each matching message with probability P % ;
    - [dup(P)] — deliver a second copy with probability P % ;
    - [spike(E)] — add E µs of delay to every matching message (E > 0
      breaks the [≤ d] bound by construction);
    - [jitter(M)] — add a hash-uniform delay in [[0, M]] µs (reorders
      messages across a link, and breaks [≤ d] when it fires > 0);
    - [partition(a,b|c,d)] — drop every message between the two replica
      groups (both directions);
    - [crash(P)] — replica P crashes at the window start.  In-process
      transports realise this as total isolation (every message to or from
      P is dropped) until the matching [restart(P)]; the process cluster
      SIGKILLs the replica's OS process;
    - [restart(P)] — replica P comes back at the window start (supervised
      respawn in the process cluster, end of isolation in-process);
    - [skew(P,O)] — add O µs to replica P's clock offset for the whole run
      (windows are ignored: clocks do not jump in the model);
    - [flood(K)] — deliver K copies of {e every} matching message while the
      window is active: a deterministic K× saturation attack (not a coin
      flip) on the receiver's links, mailbox and admission budget.  The
      overload-protection layer must keep control traffic (heartbeats, sync
      probes) flowing and shed data visibly — see DESIGN.md §15.

    A rule without [@window] is active for the whole run; [@t] alone marks
    an instant (used by crash/restart).  Times are run-relative µs. *)

type link_filter = { from_ : int option; to_ : int option }
(** [None] = any endpoint. *)

type kind =
  | Drop of int  (** percent *)
  | Duplicate of int  (** percent *)
  | Delay_spike of int  (** extra µs added to every matching message *)
  | Jitter of int  (** extra µs drawn hash-uniformly in [[0, max]] *)
  | Partition of int list * int list
  | Crash of int  (** replica pid *)
  | Restart of int  (** replica pid *)
  | Skew of int * int  (** pid, extra clock offset µs *)
  | Flood of int  (** amplification factor K ≥ 1; every message ×K *)

type rule = {
  id : int;  (** position in the spec, part of the hash salt *)
  kind : kind;
  link : link_filter;
  shard : int option;
      (** [%k] scope: the rule only applies to shard [k]'s transport on a
          sharded host; [None] = every shard (and every unsharded run) *)
  from_us : int;
  until_us : int;  (** [max_int] = open-ended *)
}

type t
(** A compiled plan: rules + seed (+ the crash/restart pairing). *)

val parse : string -> (rule list, string) result
(** Parse a spec; never raises.  The empty string is the empty plan. *)

val compile : seed:int -> spec:string -> (t, string) result
val empty : seed:int -> t

val seed : t -> int
val spec_text : t -> string
val rules : t -> rule list
val is_empty : t -> bool

val rule_label : rule -> string
(** Short stable label, e.g. ["drop(30%)#0"] — used in fault logs and
    violation windows. *)

val for_shard : t -> int -> t
(** The plan as seen by shard [k] of a sharded host: unscoped rules plus
    those scoped [%k], with rule ids (the hash salt) preserved so the
    surviving rules flip the same per-message coins as in the full plan.
    A sharded host wraps shard [k]'s transport with
    [Chaos_transport.create (for_shard plan k)] — and skips the wrapper
    entirely when the projection {!is_empty}. *)

type decision = {
  drop : string option;  (** [Some label] when the message must be lost *)
  extra_us : int;  (** total injected extra delay (0 = on time) *)
  copies : int;  (** ≥ 1; > 1 when a duplication rule fired *)
}

val deliver : decision
(** The no-fault decision. *)

val decide : t -> now_us:int -> src:int -> dst:int -> index:int -> decision
(** What happens to the [index]-th message ever offered on link
    [src → dst] at run time [now_us].  Pure: same arguments ⇒ same
    decision. *)

val skews : t -> n:int -> int array
(** Per-replica injected clock offsets (sum of matching [skew] rules). *)

val crash_schedule : t -> (int * int * int) list
(** [(pid, crash_at, restart_at)] per crash rule, in crash order;
    [restart_at = max_int] when no later [restart(pid)] exists. *)

val windows : t -> (string * int * int) list
(** Every rule's activity window as [(label, from, until)] — delay rules
    are extended by their injected maximum so a message {e sent} at the
    window edge is still attributed to it.  Feed these to
    [Runtime.Loadgen]'s [fault_windows] and to the assumption monitor. *)

val pp : Format.formatter -> t -> unit
