(** See the interface.  Parsing is hand-rolled (the grammar is one line per
    rule) and total; compilation resolves each [crash] to its matching
    [restart] so [decide] can treat a crashed replica as isolated for
    exactly the outage window. *)

type link_filter = { from_ : int option; to_ : int option }

type kind =
  | Drop of int
  | Duplicate of int
  | Delay_spike of int
  | Jitter of int
  | Partition of int list * int list
  | Crash of int
  | Restart of int
  | Skew of int * int
  | Flood of int
      (** amplify every matching message ×K: a deterministic overload
          generator — the receiver sees K copies of the real traffic, so a
          [flood(10)] window is a 10× saturation attack on its mailbox,
          links and admission budget *)

type rule = {
  id : int;
  kind : kind;
  link : link_filter;
  shard : int option;  (** [%k] scope: [None] = every shard *)
  from_us : int;
  until_us : int;
}

type t = {
  plan_seed : int;
  text : string;
  plan_rules : rule list;  (** crash rules already capped at their restart *)
  crashes : (int * int * int) list;
}

let any_link = { from_ = None; to_ = None }

let label r =
  match r.kind with
  | Drop p -> Printf.sprintf "drop(%d%%)#%d" p r.id
  | Duplicate p -> Printf.sprintf "dup(%d%%)#%d" p r.id
  | Delay_spike e -> Printf.sprintf "spike(+%dus)#%d" e r.id
  | Jitter m -> Printf.sprintf "jitter(%dus)#%d" m r.id
  | Partition (a, b) ->
      Printf.sprintf "partition(%s|%s)#%d"
        (String.concat "," (List.map string_of_int a))
        (String.concat "," (List.map string_of_int b))
        r.id
  | Crash p -> Printf.sprintf "crash(%d)#%d" p r.id
  | Restart p -> Printf.sprintf "restart(%d)#%d" p r.id
  | Skew (p, o) -> Printf.sprintf "skew(%d,+%dus)#%d" p o r.id
  | Flood k -> Printf.sprintf "flood(x%d)#%d" k r.id

(* ---- stateless pseudo-randomness (splitmix64 finalizer) ---- *)

let mix (z : int64) =
  let open Int64 in
  let z = add z 0x9e3779b97f4a7c15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* Non-negative, independent of evaluation order: a pure function of the
   five integers — the whole reproducibility story rests here.  The logical
   shift must clear bit 62 too: [Int64.to_int] keeps the low 63 bits, so a
   value that only has bit 63 cleared can still come out negative. *)
let hash t ~rule_id ~src ~dst ~index =
  let h =
    List.fold_left
      (fun acc v -> mix (Int64.add acc (Int64.of_int v)))
      (mix (Int64.of_int t.plan_seed))
      [ rule_id; src; dst; index ]
  in
  Int64.to_int (Int64.shift_right_logical h 2)

let chance t r ~src ~dst ~index ~percent =
  hash t ~rule_id:r.id ~src ~dst ~index mod 100 < percent

(* ---- parsing ---- *)

let parse_time tok =
  let tok = String.trim tok in
  let len = String.length tok in
  let num, scale =
    if len >= 2 && String.sub tok (len - 2) 2 = "us" then
      (String.sub tok 0 (len - 2), 1.)
    else if len >= 2 && String.sub tok (len - 2) 2 = "ms" then
      (String.sub tok 0 (len - 2), 1e3)
    else if len >= 1 && tok.[len - 1] = 's' then
      (String.sub tok 0 (len - 1), 1e6)
    else (tok, 1.)
  in
  match float_of_string_opt (String.trim num) with
  | Some f when f >= 0. -> Ok (int_of_float ((f *. scale) +. 0.5))
  | _ -> Error (Printf.sprintf "bad time %S" tok)

let parse_window s =
  match String.index_opt s '-' with
  | None -> (
      match parse_time s with
      | Ok t -> Ok (t, max_int)
      | Error e -> Error e)
  | Some i -> (
      let a = String.sub s 0 i in
      let b = String.sub s (i + 1) (String.length s - i - 1) in
      match (parse_time a, parse_time b) with
      | Ok f, Ok u when f <= u -> Ok (f, u)
      | Ok _, Ok _ -> Error (Printf.sprintf "window %S ends before it starts" s)
      | Error e, _ | _, Error e -> Error e)

let parse_endpoint s =
  let s = String.trim s in
  if s = "*" then Ok None
  else
    match int_of_string_opt s with
    | Some p when p >= 0 -> Ok (Some p)
    | _ -> Error (Printf.sprintf "bad link endpoint %S" s)

let parse_link s =
  match String.index_opt s '>' with
  | None -> Error (Printf.sprintf "bad link %S (want SRC>DST)" s)
  | Some i -> (
      let a = String.sub s 0 i in
      let b = String.sub s (i + 1) (String.length s - i - 1) in
      match (parse_endpoint a, parse_endpoint b) with
      | Ok from_, Ok to_ -> Ok { from_; to_ }
      | Error e, _ | _, Error e -> Error e)

let parse_pid s =
  match int_of_string_opt (String.trim s) with
  | Some p when p >= 0 -> Ok p
  | _ -> Error (Printf.sprintf "bad replica pid %S" s)

let parse_percent name s =
  match int_of_string_opt (String.trim s) with
  | Some p when p >= 0 && p <= 100 -> Ok p
  | _ -> Error (Printf.sprintf "%s: percentage out of [0, 100]: %S" name s)

let parse_group s =
  let parts = String.split_on_char ',' s |> List.map String.trim in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> (
        match parse_pid p with Ok v -> go (v :: acc) rest | Error e -> Error e)
  in
  match parts with [ "" ] | [] -> Error "empty partition group" | _ -> go [] parts

let parse_kind name args =
  match name with
  | "drop" -> Result.map (fun p -> Drop p) (parse_percent "drop" args)
  | "dup" -> Result.map (fun p -> Duplicate p) (parse_percent "dup" args)
  | "spike" -> Result.map (fun e -> Delay_spike e) (parse_time args)
  | "jitter" -> Result.map (fun m -> Jitter m) (parse_time args)
  | "partition" -> (
      match String.split_on_char '|' args with
      | [ a; b ] -> (
          match (parse_group a, parse_group b) with
          | Ok ga, Ok gb ->
              if List.exists (fun p -> List.mem p gb) ga then
                Error "partition groups overlap"
              else Ok (Partition (ga, gb))
          | Error e, _ | _, Error e -> Error e)
      | _ -> Error "partition wants exactly two groups: partition(a,b|c)")
  | "flood" -> (
      match int_of_string_opt (String.trim args) with
      | Some k when k >= 1 -> Ok (Flood k)
      | _ -> Error (Printf.sprintf "flood: factor must be >= 1: %S" args))
  | "crash" -> Result.map (fun p -> Crash p) (parse_pid args)
  | "restart" -> Result.map (fun p -> Restart p) (parse_pid args)
  | "skew" -> (
      match String.index_opt args ',' with
      | None -> Error "skew wants skew(PID,OFFSET)"
      | Some i -> (
          let p = String.sub args 0 i in
          let o = String.sub args (i + 1) (String.length args - i - 1) in
          match (parse_pid p, parse_time o) with
          | Ok pid, Ok off -> Ok (Skew (pid, off))
          | Error e, _ | _, Error e -> Error e))
  | other -> Error (Printf.sprintf "unknown fault %S" other)

let parse_rule id s =
  let s = String.trim s in
  match (String.index_opt s '(', String.index_opt s ')') with
  | Some op, Some cl when op < cl -> (
      let name = String.trim (String.sub s 0 op) in
      let args = String.sub s (op + 1) (cl - op - 1) in
      let rest = String.sub s (cl + 1) (String.length s - cl - 1) in
      let link_part, window_part =
        match String.index_opt rest '@' with
        | None -> (rest, None)
        | Some i ->
            ( String.sub rest 0 i,
              Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
      in
      (* The shard scope sits between the link and the window:
         name(args)[/link][%shard][@window]. *)
      let link_part, shard_part =
        match String.index_opt link_part '%' with
        | None -> (link_part, None)
        | Some i ->
            ( String.sub link_part 0 i,
              Some
                (String.sub link_part (i + 1) (String.length link_part - i - 1))
            )
      in
      let link_part = String.trim link_part in
      let link =
        if link_part = "" then Ok any_link
        else if link_part.[0] = '/' then
          parse_link (String.sub link_part 1 (String.length link_part - 1))
        else Error (Printf.sprintf "unexpected %S after %s(...)" link_part name)
      in
      let shard =
        match shard_part with
        | None -> Ok None
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some k when k >= 0 -> Ok (Some k)
            | _ -> Error (Printf.sprintf "bad shard scope %%%s" s))
      in
      let window =
        match window_part with
        | None -> Ok (0, max_int)
        | Some w -> parse_window w
      in
      match (parse_kind name args, link, shard, window) with
      | Ok kind, Ok link, Ok shard, Ok (from_us, until_us) ->
          Ok { id; kind; link; shard; from_us; until_us }
      | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e
        ->
          Error (Printf.sprintf "rule %d (%s): %s" (id + 1) s e))
  | _ -> Error (Printf.sprintf "rule %d: missing (...) in %S" (id + 1) s)

let parse spec =
  let parts =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go id acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match parse_rule id s with
        | Ok r -> go (id + 1) (r :: acc) rest
        | Error e -> Error e)
  in
  go 0 [] parts

(* ---- compilation ---- *)

(* A crash with an open window ends at the first later restart of the same
   pid; the restart rule itself injects nothing. *)
let resolve_crashes rules =
  List.map
    (fun r ->
      match r.kind with
      | Crash p when r.until_us = max_int ->
          let restart_at =
            List.fold_left
              (fun best r' ->
                match r'.kind with
                | Restart p' when p' = p && r'.from_us >= r.from_us ->
                    min best r'.from_us
                | _ -> best)
              max_int rules
          in
          { r with until_us = restart_at }
      | _ -> r)
    rules

let compile ~seed ~spec =
  match parse spec with
  | Error e -> Error e
  | Ok rules ->
      let rules = resolve_crashes rules in
      let crashes =
        List.filter_map
          (fun r ->
            match r.kind with
            | Crash p -> Some (p, r.from_us, r.until_us)
            | _ -> None)
          rules
        |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
      in
      Ok { plan_seed = seed; text = spec; plan_rules = rules; crashes }

let empty ~seed =
  { plan_seed = seed; text = ""; plan_rules = []; crashes = [] }

let seed t = t.plan_seed
let spec_text t = t.text
let rules t = t.plan_rules
let is_empty t = t.plan_rules = []
let crash_schedule t = t.crashes
let rule_label = label

(* Project the plan onto one shard of a sharded host: keep unscoped rules
   and those scoped [%k].  Rule ids are preserved — they are hash salt, so
   shard k's surviving rules make the same per-message coin flips they
   would in the full plan — and the crash schedule is recomputed from the
   survivors. *)
let for_shard t k =
  let plan_rules =
    List.filter
      (fun r -> match r.shard with None -> true | Some s -> s = k)
      t.plan_rules
  in
  let crashes =
    List.filter_map
      (fun r ->
        match r.kind with
        | Crash p -> Some (p, r.from_us, r.until_us)
        | _ -> None)
      plan_rules
    |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
  in
  { t with plan_rules; crashes }

(* ---- the decision function ---- *)

type decision = { drop : string option; extra_us : int; copies : int }

let deliver = { drop = None; extra_us = 0; copies = 1 }

let link_matches f ~src ~dst =
  (match f.from_ with None -> true | Some p -> p = src)
  && match f.to_ with None -> true | Some p -> p = dst

let active r now = r.from_us <= now && now < r.until_us

let decide t ~now_us ~src ~dst ~index =
  if src = dst then deliver
  else
    List.fold_left
      (fun acc r ->
        if not (active r now_us && link_matches r.link ~src ~dst) then acc
        else
          let lose () =
            match acc.drop with
            | Some _ -> acc
            | None -> { acc with drop = Some (label r) }
          in
          match r.kind with
          | Drop p ->
              if chance t r ~src ~dst ~index ~percent:p then lose () else acc
          | Duplicate p ->
              if chance t r ~src ~dst ~index ~percent:p then
                { acc with copies = acc.copies + 1 }
              else acc
          | Delay_spike e -> { acc with extra_us = acc.extra_us + e }
          | Jitter m ->
              let extra =
                if m = 0 then 0
                else hash t ~rule_id:r.id ~src ~dst ~index mod (m + 1)
              in
              { acc with extra_us = acc.extra_us + extra }
          | Partition (a, b) ->
              if
                (List.mem src a && List.mem dst b)
                || (List.mem src b && List.mem dst a)
              then lose ()
              else acc
          | Crash p -> if src = p || dst = p then lose () else acc
          | Flood k ->
              (* Unconditional while active: every matching message fans
                 out to K copies — saturation, not a coin flip. *)
              { acc with copies = acc.copies + (k - 1) }
          | Restart _ | Skew _ -> acc)
      deliver t.plan_rules

let skews t ~n =
  let a = Array.make n 0 in
  List.iter
    (fun r ->
      match r.kind with
      | Skew (p, o) when p < n -> a.(p) <- a.(p) + o
      | _ -> ())
    t.plan_rules;
  a

(* Delay rules stretch their window by the injected maximum: a message sent
   at the last active instant is still late afterwards. *)
let windows t =
  List.filter_map
    (fun r ->
      let stretch e =
        if r.until_us >= max_int - e then max_int else r.until_us + e
      in
      match r.kind with
      | Restart _ -> None
      | Delay_spike e -> Some (label r, r.from_us, stretch e)
      | Jitter m -> Some (label r, r.from_us, stretch m)
      | Skew _ -> Some (label r, 0, max_int)
      | Drop _ | Duplicate _ | Partition _ | Crash _ | Flood _ ->
          Some (label r, r.from_us, r.until_us))
    t.plan_rules

let pp fmt t =
  if is_empty t then Format.fprintf fmt "empty plan (seed %d)" t.plan_seed
  else begin
    Format.fprintf fmt "@[<v>plan (seed %d):@," t.plan_seed;
    List.iter
      (fun r ->
        let link =
          match (r.link.from_, r.link.to_) with
          | None, None -> ""
          | f, to_ ->
              Printf.sprintf " on %s>%s"
                (match f with None -> "*" | Some p -> string_of_int p)
                (match to_ with None -> "*" | Some p -> string_of_int p)
        in
        let scope =
          match r.shard with
          | None -> ""
          | Some k -> Printf.sprintf " shard %d only" k
        in
        let window =
          if r.from_us = 0 && r.until_us = max_int then " (whole run)"
          else if r.until_us = max_int then
            Printf.sprintf " @ %dµs.." r.from_us
          else Printf.sprintf " @ %d..%dµs" r.from_us r.until_us
        in
        Format.fprintf fmt "  %s%s%s%s@," (label r) link scope window)
      t.plan_rules;
    Format.fprintf fmt "@]"
  end
