type violation = { label : string; v_from_us : int; v_until_us : int }

type assessment =
  | Safety_held of { faulted : bool }
  | Excused of { segment : int; reason : string; window : violation }
  | Genuine of { segment : int; reason : string }
  | Inconclusive of string

(* Which rules break which assumption:

   - drop / partition / crash lose messages outright — delivery within [d]
     fails for the affected links while active;
   - dup re-delivers: the model sends each message once, and Algorithm 1
     replays a duplicated update, so treat it as a violation window too;
   - spike(e) / jitter(m) only violate if the worst case net_d + extra
     exceeds the [d] the replicas assume (params already include slack);
   - skew only violates if the *effective* offsets spread past ε — decided
     here from the drawn-plus-injected offsets, not from the rule alone. *)
let violations ?(recovery = false) ~plan ~params ~net_d ~offsets () =
  let assumed_d = params.Core.Params.d in
  let eps = params.Core.Params.eps in
  let from_rules =
    Fault_plan.rules plan
    |> List.filter_map (fun (r : Fault_plan.rule) ->
           let window label =
             Some { label; v_from_us = r.from_us; v_until_us = r.until_us }
           in
           let stretched label extra =
             (* a message *sent* at the window edge lands late after it *)
             let until =
               if r.until_us >= max_int - extra then max_int
               else r.until_us + extra
             in
             Some { label; v_from_us = r.from_us; v_until_us = until }
           in
           let label () = Fault_plan.rule_label r in
           match r.kind with
           | Fault_plan.Drop p -> if p > 0 then window (label ()) else None
           | Fault_plan.Duplicate p -> if p > 0 then window (label ()) else None
           | Fault_plan.Partition _ -> window (label ())
           | Fault_plan.Crash _ ->
               if recovery && r.until_us < max_int then
                 (* With durable recovery the replica replays its prefix
                    and catches up from peers after the restart; catch-up
                    traffic is still in flight for up to d + ε past the
                    thaw, so the window extends by that allowance — and
                    the label records by when clean state was
                    re-established. *)
                 let allowance = assumed_d + eps in
                 let until =
                   if r.until_us >= max_int - allowance then max_int
                   else r.until_us + allowance
                 in
                 Some
                   {
                     label =
                       Printf.sprintf "%s (recovered by %dµs)" (label ())
                         until;
                     v_from_us = r.from_us;
                     v_until_us = until;
                   }
               else window (label ())
           | Fault_plan.Delay_spike e ->
               if net_d + e > assumed_d then stretched (label ()) e else None
           | Fault_plan.Jitter m ->
               if net_d + m > assumed_d then stretched (label ()) m else None
           | Fault_plan.Flood k ->
               (* K× traffic saturates queues and mailboxes: deliveries can
                  run arbitrarily late within the window, so the whole
                  window is an assumption violation (like a partition, the
                  model's admissibility simply does not hold there). *)
               if k > 1 then window (label ()) else None
           | Fault_plan.Restart _ | Fault_plan.Skew _ -> None)
  in
  let skew_violation =
    if Array.length offsets = 0 then None
    else
      let lo = Array.fold_left min offsets.(0) offsets in
      let hi = Array.fold_left max offsets.(0) offsets in
      if hi - lo > eps then
        Some
          {
            label = Printf.sprintf "skew spread %dµs > ε=%dµs" (hi - lo) eps;
            v_from_us = 0;
            v_until_us = max_int;
          }
      else None
  in
  let all =
    match skew_violation with
    | None -> from_rules
    | Some v -> v :: from_rules
  in
  List.sort (fun a b -> compare (a.v_from_us, a.v_until_us) (b.v_from_us, b.v_until_us)) all

let assess ~violations ~cuts ~verdict =
  match (verdict : Runtime.Loadgen.verdict) with
  | Runtime.Loadgen.Linearizable _ -> Safety_held { faulted = violations <> [] }
  | Runtime.Loadgen.Unchecked reason -> Inconclusive reason
  | Runtime.Loadgen.Violation { segment; reason } -> (
      match violations with
      | [] -> Genuine { segment; reason }
      | first :: _ ->
          (* segment [i] ends at cut [i]; the last segment never ends *)
          let seg_end =
            match List.nth_opt cuts segment with
            | Some c -> c
            | None -> max_int
          in
          if seg_end > first.v_from_us then
            Excused { segment; reason; window = first }
          else Genuine { segment; reason })

let pp_window fmt (from_us, until_us) =
  if until_us = max_int then Format.fprintf fmt "[%dµs, ∞)" from_us
  else Format.fprintf fmt "[%dµs, %dµs)" from_us until_us

let pp_violation fmt v =
  Format.fprintf fmt "%s over %a" v.label pp_window (v.v_from_us, v.v_until_us)

let pp_assessment fmt = function
  | Safety_held { faulted = false } ->
      Format.fprintf fmt "OK: linearizable, assumptions held throughout"
  | Safety_held { faulted = true } ->
      Format.fprintf fmt
        "OK: linearizable even though assumptions were violated (Algorithm 1 \
         got lucky, or the faults missed the decisive messages)"
  | Excused { segment; reason; window } ->
      Format.fprintf fmt
        "EXCUSED: segment %d not linearizable (%s) — inside the suffix \
         tainted by %a; safety held while assumptions held"
        segment reason pp_violation window
  | Genuine { segment; reason } ->
      Format.fprintf fmt
        "GENUINE VIOLATION: segment %d (%s) completed before any assumption \
         was violated — this is a bug, not chaos fallout"
        segment reason
  | Inconclusive reason -> Format.fprintf fmt "INCONCLUSIVE: %s" reason
