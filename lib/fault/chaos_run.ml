type report = {
  run : Runtime.Loadgen.report;
  plan : Fault_plan.t;
  events : Chaos_transport.event list;
  canonical : string list;
  injected : int * int * int;
  violations : Assumption_monitor.violation list;
  assessment : Assumption_monitor.assessment;
}

let ok r =
  match r.assessment with
  | Assumption_monitor.Genuine _ -> false
  | Assumption_monitor.Safety_held _ | Assumption_monitor.Excused _
  | Assumption_monitor.Inconclusive _ ->
      true

let run ~workload:(module L : Runtime.Workloads.LIVE) ~n ~d ~u ?eps ?x ?slack
    ?workers ?round ?mix ?(recovery = false) ?fallback ?sync ~plan ~ops ~seed
    () =
  let module G = Runtime.Loadgen.Make (L) in
  let chaos = Chaos_transport.create plan in
  let skews = Fault_plan.skews plan ~n in
  let fault_windows =
    List.map (fun (_, f, u) -> (f, u)) (Fault_plan.windows plan)
  in
  (* The fallback needs the crash schedule too: a permanent kill
     ([restart_at = max_int]) is exactly the fault the degraded mode is
     for, so it must actually be realised against the replicas. *)
  let crashes =
    if recovery || fallback <> None then Fault_plan.crash_schedule plan
    else []
  in
  let run =
    G.run ~n ~d ~u ?eps ?x ?slack ?workers ?round ?mix ~skews
      ~wrap:(Chaos_transport.wrapper chaos)
      ~fault_windows ~recovery ~crashes ?fallback ?sync ~ops ~seed ()
  in
  let violations =
    Assumption_monitor.violations ~recovery ~plan
      ~params:run.Runtime.Loadgen.params ~net_d:d
      ~offsets:run.Runtime.Loadgen.offsets ()
  in
  let assessment =
    Assumption_monitor.assess ~violations ~cuts:run.Runtime.Loadgen.cuts
      ~verdict:run.Runtime.Loadgen.verdict
  in
  {
    run;
    plan;
    events = Chaos_transport.events chaos;
    canonical = Chaos_transport.canonical_log chaos;
    injected = Chaos_transport.injected chaos;
    violations;
    assessment;
  }

let pp_report fmt r =
  let drops, dups, delays = r.injected in
  Format.fprintf fmt "@[<v>%a@,%a@,injected: %d dropped, %d duplicated, %d delayed@,"
    Fault_plan.pp r.plan Runtime.Loadgen.pp_report r.run drops dups delays;
  (* Availability under the fallback: when did the cluster first degrade
     relative to the first planned kill (time-to-switch), and did it get
     back to the fast path? *)
  (match r.run.Runtime.Loadgen.mode_switches with
  | [] -> ()
  | switches ->
      let entered = List.filter (fun (_, q, _) -> q) switches in
      let first_crash =
        List.fold_left
          (fun acc (_, crash_at, _) -> min acc crash_at)
          max_int
          (Fault_plan.crash_schedule r.plan)
      in
      Format.fprintf fmt "availability: %d mode switch%s" (List.length switches)
        (if List.length switches = 1 then "" else "es");
      (match (entered, first_crash) with
      | (at, _, _) :: _, c when c < max_int && at >= c ->
          Format.fprintf fmt "; first quorum entry %dµs after the kill"
            (at - c)
      | (at, _, _) :: _, _ ->
          Format.fprintf fmt "; first quorum entry at t=%dµs" at
      | [], _ -> ());
      let last_fast =
        match List.rev switches with (_, q, _) :: _ -> not q | [] -> false
      in
      if last_fast then Format.fprintf fmt "; fast path re-entered";
      Format.fprintf fmt "@,");
  (match r.violations with
  | [] -> Format.fprintf fmt "assumption violations: none@,"
  | vs ->
      Format.fprintf fmt "assumption violations:@,";
      List.iter
        (fun v -> Format.fprintf fmt "  %a@," Assumption_monitor.pp_violation v)
        vs);
  Format.fprintf fmt "chaos verdict: %a@]" Assumption_monitor.pp_assessment
    r.assessment
