(** One seeded chaos experiment against the in-process cluster: compile a
    plan, run {!Runtime.Loadgen} under a {!Chaos_transport}, and correlate
    the linearizability verdict with the assumption-violation windows via
    {!Assumption_monitor}.

    Crash/restart rules are realised in-process as total network isolation
    of the replica during the outage (see {!Fault_plan}); the real
    SIGKILL-and-respawn variant lives in [Net.Cluster].

    [ok r] is the chaos harness's pass criterion: the run is acceptable
    unless the monitor found a {e genuine} violation — one whose segment
    completed before any assumption was broken.  Linearizable, excused and
    inconclusive runs all pass (the CLI exits 0 for them). *)

type report = {
  run : Runtime.Loadgen.report;
  plan : Fault_plan.t;
  events : Chaos_transport.event list;  (** injected faults, in order *)
  canonical : string list;  (** {!Chaos_transport.canonical_log} *)
  injected : int * int * int;  (** drops, duplicates, delays *)
  violations : Assumption_monitor.violation list;
  assessment : Assumption_monitor.assessment;
}

val ok : report -> bool

val run :
  workload:(module Runtime.Workloads.LIVE) ->
  n:int ->
  d:int ->
  u:int ->
  ?eps:int ->
  ?x:int ->
  ?slack:int ->
  ?workers:int ->
  ?round:int ->
  ?mix:int * int * int ->
  ?recovery:bool ->
  ?fallback:Quorum.Config.t ->
  ?sync:Sync.Config.t ->
  plan:Fault_plan.t ->
  ops:int ->
  seed:int ->
  unit ->
  report
(** Parameters mirror {!Runtime.Loadgen.Make.run}; the plan supplies the
    skews, the transport wrapper and the fault windows.  [seed] drives the
    load generator; the plan carries its own seed.

    [recovery] (default false) arms the replicas' durable-recovery
    machinery: the plan's crash/restart instants additionally freeze and
    thaw the replica itself (not just its links), workers retry
    idempotently, and the monitor labels crash windows with their
    recovery deadline.  A crash/restart plan that is merely [Excused]
    without recovery is expected to come back [Safety_held] with it.

    [fallback] arms the adaptive quorum fallback on every replica (see
    {!Runtime.Loadgen.Make.run}).  Unlike [recovery] alone, the plan's
    {e permanent} kills ([restart_at = max_int]) are then realised too —
    the surviving majority degrades to quorum mode and the run is expected
    to stay linearizable and complete.  [pp_report] prints the resulting
    availability line (mode switches, time-to-switch after the kill).

    [sync] arms live clock synchronization on every replica (see
    {!Runtime.Loadgen.Make.run}): a plan's [skew] rules then inject
    exactly the clock error the estimator must measure — cut peers'
    achieved ε widens with sample age under a partition while the
    majority's stays tight. *)

val pp_report : Format.formatter -> report -> unit
