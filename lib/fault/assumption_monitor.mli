(** Did the run's misbehaviour stay within the model's assumptions — and if
    not, does that excuse an observed safety violation?

    Algorithm 1's guarantees hold only while (a) every message between
    correct processes is delivered within [[d − u, d]] µs and (b) clock
    offsets stay within ε.  A chaos plan breaks those on purpose; this
    module derives the {e violation windows} a plan implies and correlates
    them with the post-hoc linearizability verdict.

    Deriving windows from the plan (not from per-message observation) is
    deliberate: the plan is ground truth for {e injected} misbehaviour, and
    the question the chaos harness answers is "given that we broke the
    assumptions exactly here, was safety lost only there?".  Two checks are
    observational on top: the effective clock-offset spread is compared
    against ε (a [skew] rule may or may not push past ε depending on the
    seeded base draw), and a [spike]/[jitter] rule only yields a violation
    window if the injected extra can push a delay beyond the [d] the
    replicas assume (net delay ceiling + extra > assumed [d]).

    {2 Correlation semantics}

    Violations taint the {e suffix} of the history: Algorithm 1 has no
    resynchronisation, so state corrupted by a dropped or late message stays
    corrupted — a linearizability failure in any segment that ends at or
    after the first violation window opens is {!Excused}.  Only a failure in
    a segment that completed strictly before any assumption was violated is
    {!Genuine} (a real bug, not chaos fallout). *)

type violation = {
  label : string;  (** the offending rule, via {!Fault_plan.windows} *)
  v_from_us : int;
  v_until_us : int;
}

type assessment =
  | Safety_held of { faulted : bool }
      (** verdict was linearizable; [faulted] says whether assumptions were
          violated at all (the headline "safety held {e while} assumptions
          held" vs plain "safety held") *)
  | Excused of { segment : int; reason : string; window : violation }
      (** the violating segment overlaps the tainted suffix *)
  | Genuine of { segment : int; reason : string }
      (** the violation predates every assumption violation *)
  | Inconclusive of string  (** the checker could not decide (UNCHECKED) *)

val violations :
  ?recovery:bool ->
  plan:Fault_plan.t ->
  params:Core.Params.t ->
  net_d:int ->
  offsets:int array ->
  unit ->
  violation list
(** The windows in which the plan (plus the effective [offsets]) violated
    the assumptions encoded in [params] ([d] and ε as the replicas assume
    them); [net_d] is the injected network-delay ceiling.  Sorted by start
    time.  Empty ⇔ the run stayed admissible.

    [recovery] (default false) records that the run had durable recovery
    armed: a crash window then extends one catch-up allowance ([d + ε])
    past the restart (catch-up traffic is still in flight right after the
    thaw) and its label states by when clean state was re-established —
    the report-level distinction between "recovered cleanly by T" and a
    plain outage window. *)

val assess :
  violations:violation list ->
  cuts:int list ->
  verdict:Runtime.Loadgen.verdict ->
  assessment
(** Correlate.  [cuts] are the quiescent cut times (µs, run timeline) that
    delimit the checker's segments: segment [i] ends at [List.nth cuts i]
    (the last segment never ends). *)

val pp_violation : Format.formatter -> violation -> unit
val pp_assessment : Format.formatter -> assessment -> unit
