(** Fault-injecting transport decorator.

    A {!t} is the {e controller}: it owns the compiled {!Fault_plan.t} and
    the log of every fault actually injected.  {!wrapper} turns it into a
    {!Runtime.Transport_intf.wrapper}, the polymorphic hook accepted by
    [Runtime.Replica.start] and [Net.Serve] — one controller can therefore
    sit under the in-process bus and the TCP transport alike.

    What the wrapped transport does per {!Runtime.Transport_intf.send}:

    - asks [Fault_plan.decide] with the message's run-relative send time and
      its per-link sequence index;
    - a {e drop} never reaches the inner transport (counted in the wrapped
      [stats] as both sent and dropped, so loss remains visible);
    - a {e duplicate} is forwarded twice;
    - injected {e delay} parks the message in a {!Runtime.Mailbox} until its
      stretched delivery time; a single drainer thread then forwards it, so
      per-link FIFO order is preserved among equally-delayed messages but a
      spike does reorder against later undelayed traffic — exactly the
      misbehaviour the plan asked for.

    [post] (the local client port) and [recv] pass through untouched:
    faults model the {e network}, not the co-located application layer.

    Reproducibility: the {e decisions} are pure functions of the plan
    (see {!Fault_plan.decide}), so {!canonical_log} — the timestamp-free
    view of the injected-fault log — is identical across runs with the same
    seed, spec and per-link message sequence. *)

type action =
  | Dropped of string  (** rule label that lost the message *)
  | Duplicated  (** one extra copy was forwarded *)
  | Delayed of int  (** extra µs added to the delivery time *)

type event = {
  at_us : int;  (** run-relative send time (µs) *)
  src : int;
  dst : int;
  index : int;  (** per-link sequence number of the message *)
  trace : int;  (** trace id of the faulted message (0 when untraced) *)
  action : action;
}

type t

val create : Fault_plan.t -> t
val plan : t -> Fault_plan.t

val wrapper : t -> Runtime.Transport_intf.wrapper
(** The decorator.  May be applied to several transports (e.g. one per
    replica process); all of them feed the same controller log. *)

val events : t -> event list
(** Injected faults so far, in injection order. *)

val canonical_log : t -> string list
(** [(src, dst, index, action)] rendered and sorted, timestamps excluded —
    the bit-for-bit reproducibility key for seeded runs. *)

val injected : t -> int * int * int
(** [(drops, duplicates, delays)] injected so far. *)

val pp_event : Format.formatter -> event -> unit
