type action = Dropped of string | Duplicated | Delayed of int

type event = {
  at_us : int;
  src : int;
  dst : int;
  index : int;
  trace : int;
  action : action;
}

type t = {
  plan : Fault_plan.t;
  log : event list Atomic.t;  (** newest first *)
  drops : int Atomic.t;
  dups : int Atomic.t;
  delays : int Atomic.t;
}

let create plan =
  {
    plan;
    log = Atomic.make [];
    drops = Atomic.make 0;
    dups = Atomic.make 0;
    delays = Atomic.make 0;
  }

let plan t = t.plan

let record t ev =
  (match ev.action with
  | Dropped _ -> Atomic.incr t.drops
  | Duplicated -> Atomic.incr t.dups
  | Delayed _ -> Atomic.incr t.delays);
  let rec push () =
    let old = Atomic.get t.log in
    if not (Atomic.compare_and_set t.log old (ev :: old)) then push ()
  in
  push ()

let events t = List.rev (Atomic.get t.log)

let action_string = function
  | Dropped label -> "drop:" ^ label
  | Duplicated -> "dup"
  | Delayed e -> Printf.sprintf "delay:+%dus" e

let canonical_log t =
  Atomic.get t.log
  |> List.map (fun ev ->
         Printf.sprintf "%d>%d #%d %s" ev.src ev.dst ev.index
           (action_string ev.action))
  |> List.sort compare

let injected t = (Atomic.get t.drops, Atomic.get t.dups, Atomic.get t.delays)

let pp_event fmt ev =
  Format.fprintf fmt "@[t=%dµs %d>%d #%d %s@]" ev.at_us ev.src ev.dst ev.index
    (action_string ev.action)

(* ---- the decorator ---- *)

(* The drainer wakes at least every [park_poll_us] to notice [stop]. *)
let park_poll_us = 50_000

let wrap_transport (t : t) ~start_us (inner : 'msg Runtime.Transport_intf.t) :
    'msg Runtime.Transport_intf.t =
  if Fault_plan.is_empty t.plan then inner
  else begin
    let n = inner.Runtime.Transport_intf.n in
    (* Per-link send counters: the [index] fed to the pure decision
       function.  Local to this wrap so two wrapped transports (one per
       process) number their own links independently, matching what each
       would see in a separate OS process. *)
    let indices = Array.init (n * n) (fun _ -> Atomic.make 0) in
    let parked : (int * int * int * 'msg) Runtime.Mailbox.t =
      Runtime.Mailbox.create ()
    in
    let chaos_dropped = Atomic.make 0 in
    let stop = Atomic.make false in
    let drainer =
      Thread.create
        (fun () ->
          while not (Atomic.get stop) do
            let deadline = Prelude.Mclock.now_us () + park_poll_us in
            match Runtime.Mailbox.take parked ~deadline:(Some deadline) with
            | Some (src, dst, trace, msg) ->
                inner.Runtime.Transport_intf.send ~src ~dst ~trace msg
            | None -> ()
          done)
        ()
    in
    (* Obs payload convention for fault events: a = action code
       (0 drop, 1 dup, 2 delay), b = extra delay µs (delays only). *)
    let obs_fault ~src ~trace a b =
      Obs.Recorder.emit ~pid:src ~kind:Obs.Event.Fault ~trace ~a ~b ()
    in
    let send ~src ~dst ~trace msg =
      let now = Prelude.Mclock.now_us () in
      let at_us = now - start_us in
      let index =
        if src >= 0 && src < n && dst >= 0 && dst < n then
          Atomic.fetch_and_add indices.((src * n) + dst) 1
        else 0
      in
      let d = Fault_plan.decide t.plan ~now_us:at_us ~src ~dst ~index in
      match d.Fault_plan.drop with
      | Some label ->
          Atomic.incr chaos_dropped;
          obs_fault ~src ~trace 0 0;
          record t { at_us; src; dst; index; trace; action = Dropped label }
      | None ->
          for _ = 2 to d.Fault_plan.copies do
            obs_fault ~src ~trace 1 0;
            record t { at_us; src; dst; index; trace; action = Duplicated };
            inner.Runtime.Transport_intf.send ~src ~dst ~trace msg
          done;
          if d.Fault_plan.extra_us > 0 then begin
            obs_fault ~src ~trace 2 d.Fault_plan.extra_us;
            record t
              { at_us; src; dst; index; trace;
                action = Delayed d.Fault_plan.extra_us };
            Runtime.Mailbox.put parked
              ~deliver_at:(now + d.Fault_plan.extra_us)
              (src, dst, trace, msg)
          end
          else inner.Runtime.Transport_intf.send ~src ~dst ~trace msg
    in
    let stats () =
      let s = inner.Runtime.Transport_intf.stats () in
      let injected = Atomic.get chaos_dropped in
      {
        s with
        Runtime.Transport_intf.sent = s.Runtime.Transport_intf.sent + injected;
        dropped = s.Runtime.Transport_intf.dropped + injected;
      }
    in
    let close () =
      Atomic.set stop true;
      Thread.join drainer;
      (* Forward anything still parked: closing the chaos layer must not
         silently lose messages the plan decided to merely delay.  Parked
         items ripen at their stretched delivery time, so wait them out —
         but never longer than 2 s, in case a plan injected a huge spike. *)
      let give_up = Prelude.Mclock.now_us () + 2_000_000 in
      let rec drain () =
        if Runtime.Mailbox.length parked > 0 && Prelude.Mclock.now_us () < give_up
        then begin
          (match
             Runtime.Mailbox.take parked
               ~deadline:(Some (min give_up (Prelude.Mclock.now_us () + park_poll_us)))
           with
          | Some (src, dst, trace, msg) ->
              inner.Runtime.Transport_intf.send ~src ~dst ~trace msg
          | None -> ());
          drain ()
        end
      in
      drain ();
      inner.Runtime.Transport_intf.close ()
    in
    { inner with Runtime.Transport_intf.send; stats; close }
  end

let wrapper t =
  { Runtime.Transport_intf.wrap = (fun ~start_us inner -> wrap_transport t ~start_us inner) }
