(** Monotonic wall-clock shim for the live runtime.

    The simulator measures time in abstract integer ticks; the live runtime
    ({!Runtime}) needs a real clock with the same integer arithmetic.  We
    standardise on **microseconds**, matching the "think microseconds"
    convention of {!Ticks}, so the [d]/[u]/[ε]/[X] parameters of
    {!Core.Params} carry over unchanged between simulated and live runs.

    OCaml's stdlib exposes no monotonic clock without external packages
    ([Mtime]), so this is a shim over [Unix.gettimeofday] that is
    *monotonized*: concurrent readers in any domain observe non-decreasing
    values even if the wall clock steps backwards (NTP adjustment); after a
    backward step the clock holds still until real time catches up. *)

val now_us : unit -> int
(** Current time in microseconds since the Unix epoch, monotonized across
    all domains. *)

val sleep_us : int -> unit
(** Block the calling domain for (at least) the given number of
    microseconds; no-op when non-positive.  Actual resolution is the OS
    scheduler's (tens of microseconds on Linux). *)
