(** Deterministic splittable PRNG (splitmix64).

    Every randomized component of the simulator (delay policies, workload
    generators, adversarial schedule search) draws from one of these, so any
    run is reproducible from its integer seed. *)

type t

val make : int -> t
(** Create a generator from a seed. *)

val split : t -> t * t
(** Two independent generators derived from one. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Advances the generator state. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. *)

val bool : t -> bool
val float : t -> float -> float
val pick : t -> 'a list -> 'a
val shuffle : t -> 'a list -> 'a list

val hash : int list -> int
(** Pure splitmix64 fold over the ints: the same deterministic-jitter
    derivation [Fault.Fault_plan] uses, exposed so other layers (client
    retry backoff, for one) can derive per-site randomness from a run
    seed without sharing generator state.  Always non-negative. *)
