type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let make seed = { state = Int64.of_int seed }

let split t =
  let a = next t and b = next t in
  ({ state = a }, { state = b })

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's 63-bit int and stays positive *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0)

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let hash ints =
  let z =
    List.fold_left
      (fun acc v -> mix (Int64.add (Int64.logxor acc (Int64.of_int v)) golden))
      golden ints
  in
  Int64.to_int (Int64.shift_right_logical z 2)

let shuffle t xs =
  let arr = Array.of_list xs in
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr
