(** Monotonized [Unix.gettimeofday] in microseconds — see the interface for
    why this exists.  The monotonization is a single global atomic
    max-register shared by every domain: a reader publishes the raw reading
    with a CAS loop and returns the largest value ever published. *)

let last = Atomic.make 0

let now_us () =
  let raw = int_of_float (Unix.gettimeofday () *. 1e6) in
  let rec publish () =
    let prev = Atomic.get last in
    if raw <= prev then prev
    else if Atomic.compare_and_set last prev raw then raw
    else publish ()
  in
  publish ()

let sleep_us us = if us > 0 then Unix.sleepf (float_of_int us *. 1e-6)
