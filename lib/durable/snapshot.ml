(* Layout: 8-byte magic, 4-byte big-endian CRC-32 of the payload, 4-byte
   big-endian payload length, payload.  The explicit length (rather than
   "rest of file") catches truncation without relying on the CRC alone. *)

let magic = "TBSNAP1\n"

let u32_be_put buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let u32_be_get s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let write ~path payload =
  let buf = Buffer.create (String.length payload + 16) in
  Buffer.add_string buf magic;
  u32_be_put buf (Wal.crc32 payload);
  u32_be_put buf (String.length payload);
  Buffer.add_string buf payload;
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let s = Buffer.contents buf in
      let b = Bytes.unsafe_of_string s in
      let rec go off =
        if off < String.length s then
          go (off + Unix.write fd b off (String.length s - off))
      in
      go 0;
      Unix.fsync fd);
  Unix.rename tmp path

let read path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | contents ->
      let hdr = String.length magic + 8 in
      if String.length contents < hdr then None
      else if not (String.equal (String.sub contents 0 (String.length magic)) magic)
      then None
      else
        let crc = u32_be_get contents (String.length magic) in
        let len = u32_be_get contents (String.length magic + 4) in
        if len < 0 || String.length contents < hdr + len then None
        else
          let payload = String.sub contents hdr len in
          if Wal.crc32 payload <> crc then None else Some payload
