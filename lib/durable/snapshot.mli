(** Checkpoint files: one opaque payload, written atomically.

    A snapshot is written to [path ^ ".tmp"] and renamed into place, so a
    crash mid-write leaves either the old snapshot or none — never a
    half-written file that parses.  The payload is guarded by the same
    CRC-32 as WAL records; a corrupt or truncated snapshot reads as
    absent, and recovery falls back to an older generation (or the empty
    state) plus WAL replay. *)

val write : path:string -> string -> unit
(** Write [payload] atomically (tmp + fsync + rename). *)

val read : string -> string option
(** The payload, or [None] if the file is missing, truncated, corrupt or
    not a snapshot.  Never raises. *)
