(** Append-only write-ahead log of opaque records.

    The WAL is the durability primitive under [Durable.Store]: each record
    is an arbitrary byte string (the typed encoding lives above, in
    [Net.Persist], because the object codecs do).  The on-disk format
    follows the [Obs.Event] discipline — self-delimiting records, no
    global index, damage truncates instead of failing:

    {v
    record := len (unsigned LEB128, payload bytes)
              crc32 (4 bytes big-endian, IEEE, over the payload)
              payload
    v}

    The reader walks records from the start and stops at the {e first}
    sign of damage — truncated length, oversized length, short payload or
    CRC mismatch — returning the clean prefix.  It never raises: a torn
    tail (crash mid-append) or a flipped bit costs the damaged suffix,
    nothing more.  That is exactly the crash-recovery contract: everything
    fsync'd before the crash is replayed, a partial final append is
    discarded. *)

type fsync =
  | Always  (** fsync after every append — every acked record survives *)
  | Interval of int
      (** fsync at most once per this many µs (and on [close]/[sync]) —
          bounded loss window, near-[Never] throughput *)
  | Never  (** leave flushing to the OS — fastest, crash loses the tail *)

val fsync_of_string : string -> (fsync, string) result
(** ["always"], ["never"], ["interval"] (default 5000 µs) or
    ["interval:N"] with N in µs. *)

val fsync_to_string : fsync -> string

(** {2 Writer} *)

type t

val create : path:string -> fsync:fsync -> t
(** Open [path] for appending (created if absent). *)

val append : t -> string -> unit
(** Append one record and apply the fsync policy.  Not thread-safe; the
    store serialises callers. *)

val sync : t -> unit
(** Force an fsync now (no-op on an already-clean log). *)

val records_written : t -> int
(** Appends since [create] — the store's snapshot-cadence input. *)

val close : t -> unit
(** Sync (unless policy is [Never]) and close.  Idempotent. *)

(** {2 Reader} *)

val read_file : string -> string list
(** The longest clean prefix of records in [path], oldest first.  A
    missing file is the empty log.  Never raises on damage: reading stops
    at the first corrupt or torn record. *)

val of_string : string -> string list
(** [read_file] over in-memory bytes — the qcheck corruption suite's
    entry point: corrupt the encoding however you like, the result is
    always a clean prefix of the original records. *)

val encode_record : Buffer.t -> string -> unit
(** Append one record's on-disk encoding to [buf] (what {!append}
    writes). *)

val crc32 : string -> int
(** The IEEE CRC-32 used for records (exposed for tests and for
    [Snapshot], which shares the checksum). *)
