(** A replica's durable directory: WAL generations, snapshots and an
    identity file, glued into one recovery story.

    {v
    dir/
      META            identity line; mismatch refuses to open
      wal-<g>.log     appended mutations since snapshot generation g
      snap-<g>.snap   checkpoint covering every generation < g
    v}

    Invariant: [snap-g] is written {e after} [wal-g] is opened and covers
    exactly the records of generations [< g], so recovery is "load the
    highest valid snapshot [G], then replay [wal-G], [wal-G+1], … in
    order".  A crash between rotation and snapshot write merely leaves an
    extra WAL generation to replay; a crash mid-snapshot leaves a [.tmp]
    that recovery ignores.  GC deletes generations [< G] only after
    [snap-G] is safely in place.

    The store serialises {!append} and {!snapshot} behind one mutex: the
    replica loop appends, the snapshot cadence may run on another
    thread. *)

type t

type recovered = {
  r_snapshot : string option;  (** highest valid checkpoint payload *)
  r_records : string list;  (** WAL records after it, oldest first *)
  r_generation : int;  (** generation appends go to now *)
  r_fresh : bool;
      (** [open_] created the directory this call (no prior [META]): a
          genesis boot, not a restart — the caller should skip peer
          catch-up.  Always [false] from {!inspect}. *)
}

val open_ :
  dir:string ->
  meta:string ->
  fsync:Wal.fsync ->
  (t * recovered, string) result
(** Open (creating the directory if needed), verify identity and read
    back everything that survived.  [meta] is the identity line (replica
    id, epoch, object tag — the caller formats it); if the directory
    already has a [META] that differs, the store {e refuses to open}: a
    supervised restart handed the wrong directory must fail loudly, not
    silently adopt another replica's history. *)

val append : t -> string -> unit
(** Durably append one record to the current WAL generation (fsync per
    the open policy). *)

val snapshot : t -> string -> unit
(** Rotate to a fresh WAL generation, checkpoint [payload] (which must
    cover every record appended so far) and GC older generations. *)

val generation : t -> int

val records_since_snapshot : t -> int
(** Appends into the current generation — the snapshot-cadence input. *)

val sync : t -> unit
val close : t -> unit

val inspect : dir:string -> (string * recovered, string) result
(** Read-only view for [timebounds recover]: the META line plus what
    recovery would reconstruct.  Does not touch the files. *)
