type t = {
  dir : string;
  fsync : Wal.fsync;
  lock : Mutex.t;
  mutable wal : Wal.t;
  mutable generation : int;
  mutable closed : bool;
}

type recovered = {
  r_snapshot : string option;
  r_records : string list;
  r_generation : int;
  r_fresh : bool;
}

let wal_path dir g = Filename.concat dir (Printf.sprintf "wal-%d.log" g)
let snap_path dir g = Filename.concat dir (Printf.sprintf "snap-%d.snap" g)
let meta_path dir = Filename.concat dir "META"

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* Parse "wal-<g>.log" / "snap-<g>.snap" names; anything else is ignored
   (the .tmp of an interrupted snapshot in particular). *)
let generations dir =
  let scan prefix suffix name =
    let plen = String.length prefix and slen = String.length suffix in
    if
      String.length name > plen + slen
      && String.sub name 0 plen = prefix
      && String.sub name (String.length name - slen) slen = suffix
    then int_of_string_opt (String.sub name plen (String.length name - plen - slen))
    else None
  in
  let wals = ref [] and snaps = ref [] in
  (match Sys.readdir dir with
  | names ->
      Array.iter
        (fun name ->
          (match scan "wal-" ".log" name with
          | Some g -> wals := g :: !wals
          | None -> ());
          match scan "snap-" ".snap" name with
          | Some g -> snaps := g :: !snaps
          | None -> ())
        names
  | exception Sys_error _ -> ());
  (List.sort compare !wals, List.sort compare !snaps)

let read_meta dir =
  match
    let ic = open_in_bin (meta_path dir) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> Some (String.trim contents)
  | exception Sys_error _ -> None

let write_meta dir meta =
  let tmp = meta_path dir ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (meta ^ "\n");
  close_out oc;
  Unix.rename tmp (meta_path dir)

(* Recovery plan: highest generation with a valid snapshot (validity means
   [Snapshot.read] accepts it), then every WAL generation >= it, in
   order.  With no valid snapshot, replay every WAL from generation 0. *)
let recover_view dir =
  let wals, snaps = generations dir in
  let snap =
    List.fold_left
      (fun best g ->
        match Snapshot.read (snap_path dir g) with
        | Some payload -> Some (g, payload)
        | None -> best)
      None snaps
  in
  let base = match snap with Some (g, _) -> g | None -> 0 in
  let records =
    wals
    |> List.filter (fun g -> g >= base)
    |> List.concat_map (fun g -> Wal.read_file (wal_path dir g))
  in
  let top = List.fold_left max base wals in
  {
    r_snapshot = Option.map snd snap;
    r_records = records;
    r_generation = top;
    r_fresh = false;
  }

let open_ ~dir ~meta ~fsync =
  mkdir_p dir;
  match read_meta dir with
  | Some existing when not (String.equal existing meta) ->
      Error
        (Printf.sprintf
           "durable dir %s belongs to %S, refusing to open as %S" dir existing
           meta)
  | existing ->
      if existing = None then write_meta dir meta;
      let view = { (recover_view dir) with r_fresh = existing = None } in
      let wal = Wal.create ~path:(wal_path dir view.r_generation) ~fsync in
      Ok
        ( {
            dir;
            fsync;
            lock = Mutex.create ();
            wal;
            generation = view.r_generation;
            closed = false;
          },
          view )

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let append t record = locked t (fun () -> Wal.append t.wal record)

let snapshot t payload =
  locked t (fun () ->
      if not t.closed then begin
        (* Order matters: open the next generation first so every record
           not covered by [payload] lands in a file the GC spares, then
           checkpoint, then GC.  A crash at any point loses no acked
           record — at worst it leaves an extra WAL to replay. *)
        Wal.close t.wal;
        let g = t.generation + 1 in
        t.wal <- Wal.create ~path:(wal_path t.dir g) ~fsync:t.fsync;
        t.generation <- g;
        Snapshot.write ~path:(snap_path t.dir g) payload;
        let wals, snaps = generations t.dir in
        List.iter
          (fun k -> if k < g then try Sys.remove (wal_path t.dir k) with Sys_error _ -> ())
          wals;
        List.iter
          (fun k -> if k < g then try Sys.remove (snap_path t.dir k) with Sys_error _ -> ())
          snaps
      end)

let generation t = t.generation
let records_since_snapshot t = Wal.records_written t.wal
let sync t = locked t (fun () -> if not t.closed then Wal.sync t.wal)

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Wal.close t.wal
      end)

let inspect ~dir =
  match read_meta dir with
  | None -> Error (Printf.sprintf "%s: no META (not a durable dir)" dir)
  | Some meta -> Ok (meta, recover_view dir)
