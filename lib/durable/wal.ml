(** See the interface for the record format.  The length prefix is an
    {e unsigned} LEB128 (lengths are never negative, and an unsigned
    varint cannot alias a plausible huge value through zigzag folding);
    the CRC is fixed-width so a flipped bit in the checksum itself is as
    detectable as one in the payload. *)

type fsync = Always | Interval of int | Never

let default_interval_us = 5_000

let fsync_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval default_interval_us)
  | s -> (
      match String.index_opt s ':' with
      | Some i
        when String.sub s 0 i = "interval" -> (
          let v = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt v with
          | Some n when n > 0 -> Ok (Interval n)
          | _ -> Error (Printf.sprintf "bad fsync interval %S" v))
      | _ ->
          Error
            (Printf.sprintf
               "bad fsync policy %S (want always|interval[:US]|never)" s))

let fsync_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval n -> Printf.sprintf "interval:%d" n

(* ---- CRC-32 (IEEE 802.3, reflected), same table as the wire codec ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let crc = ref 0xffffffff in
  String.iter
    (fun ch -> crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xffffffff

(* A record longer than this is damage, not data: the length prefix of a
   real record is bounded by what [append] accepts. *)
let max_record = 1 lsl 24

let put_uleb buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let get_uleb s ~pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len || shift > 56 then None
    else
      let byte = Char.code s.[pos] in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then Some (acc, pos + 1) else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let encode_record buf payload =
  put_uleb buf (String.length payload);
  let crc = crc32 payload in
  Buffer.add_char buf (Char.chr ((crc lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (crc land 0xff));
  Buffer.add_string buf payload

(* ---- writer ---- *)

type t = {
  fd : Unix.file_descr;
  policy : fsync;
  mutable dirty : bool;  (** bytes written since the last fsync *)
  mutable last_sync_us : int;
  mutable written : int;
  mutable closed : bool;
}

let create ~path ~fsync =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  { fd; policy = fsync; dirty = false; last_sync_us = 0; written = 0; closed = false }

let do_sync t =
  if t.dirty then begin
    Unix.fsync t.fd;
    t.dirty <- false;
    t.last_sync_us <- Prelude.Mclock.now_us ()
  end

let sync t = if not t.closed then do_sync t

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < String.length s then
      go (off + Unix.write fd b off (String.length s - off))
  in
  go 0

let append t payload =
  if t.closed then invalid_arg "Wal.append: closed";
  if String.length payload > max_record then invalid_arg "Wal.append: record too large";
  let buf = Buffer.create (String.length payload + 8) in
  encode_record buf payload;
  write_all t.fd (Buffer.contents buf);
  t.written <- t.written + 1;
  t.dirty <- true;
  match t.policy with
  | Always -> do_sync t
  | Never -> ()
  | Interval us ->
      if Prelude.Mclock.now_us () - t.last_sync_us >= us then do_sync t

let records_written t = t.written

let close t =
  if not t.closed then begin
    (match t.policy with Never -> () | Always | Interval _ -> do_sync t);
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ---- reader ---- *)

let of_string s =
  let len = String.length s in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else
      match get_uleb s ~pos with
      | None -> List.rev acc
      | Some (rlen, pos) ->
          if rlen < 0 || rlen > max_record || pos + 4 + rlen > len then
            List.rev acc
          else
            let crc =
              (Char.code s.[pos] lsl 24)
              lor (Char.code s.[pos + 1] lsl 16)
              lor (Char.code s.[pos + 2] lsl 8)
              lor Char.code s.[pos + 3]
            in
            let payload = String.sub s (pos + 4) rlen in
            if crc32 payload <> crc then List.rev acc
            else go (pos + 4 + rlen) (payload :: acc)
  in
  go 0 []

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error _ -> []
