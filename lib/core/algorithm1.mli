(** Algorithm 1 of Chapter V: a linearizable implementation of an arbitrary
    deterministic data type with sub-2d operation latencies.

    Every process keeps a full copy of the object; operations are handled
    by {!Spec.Data_type.kind}:

    - **OOP** (read-modify-write, dequeue, pop, …): timestamped
      ⟨clock, pid⟩, broadcast, buffered in the [To_Execute] priority queue
      everywhere and executed in global timestamp order; the invoker
      responds when its own copy executes the operation — within d + ε.
    - **MOP** (write, push, enqueue, insert, …): disseminated the same way
      but acknowledged by a timer ε + X after invocation — a pure mutator's
      return value carries no information, only its ordering matters.
    - **AOP** (read, peek, search, …): never broadcast; timestamped X
      *earlier* than the invocation, the invoker waits d + ε − X, applies
      every buffered smaller-timestamped operation and answers locally.

    With {!Params.standard_timing} this is a faithful transcription of the
    paper's pseudocode; the experiments also run it with weakened timing to
    exhibit the lower bounds. *)

open Spec

module Make (D : Data_type.S) : sig
  type entry = { op : D.op; ts : Prelude.Stamp.t }

  module Queue : module type of Prelude.Heap.Make (struct
    type t = entry

    let compare a b = Prelude.Stamp.compare a.ts b.ts
  end)

  type pending =
    | Idle
    | Waiting_oop of entry
    | Waiting_mop of entry
    | Waiting_aop of entry

  type state = {
    pid : int;
    local_obj : D.state;  (** this process's replica of the object *)
    to_execute : Queue.t;  (** received but not yet executed, keyed by ts *)
    pending : pending;
    applied : (entry * D.result) list;
        (** every mutation executed on [local_obj], newest first.  This is
            the replayable history Algorithm 1's (timestamp, origin) total
            order yields for free: replaying it from the initial state
            reproduces [local_obj] exactly, which is what the durability
            layer's WAL records and what peer catch-up serves to a
            restarted replica. *)
  }

  type timer =
    | Add of entry  (** d − u after broadcasting one's own op: self-delivery *)
    | Execute of entry  (** u + ε after an entry joined [to_execute] *)
    | Respond_mutator of entry
    | Respond_accessor of entry
  (** Concrete so hosts can treat timer classes differently: the runtime's
      crash freeze defers [Execute]/[Respond_*] (nothing may apply or
      answer while "down") but still fires [Add], which only mirrors an
      already-broadcast entry into the local queue. *)

  include
    Sim.Protocol.S
      with type config = Params.t
       and type state := state
       and type op = D.op
       and type result = D.result
       and type msg = entry
       and type timer := timer

  val execute_through :
    state ->
    upto:Prelude.Stamp.t ->
    inclusive:bool ->
    state * (D.result, entry, timer) Sim.Action.t list
  (** Pop every queued entry with timestamp ≤ [upto] ([<] when [inclusive]
      is false) and execute it on the local copy in timestamp order; a
      [Respond] action is returned if one of them was the pending OOP.
      Exposed for hosts that impose their own execution barriers — the
      quorum fallback applies committed entries through this so every
      straggler below them executes first, in order. *)
end
