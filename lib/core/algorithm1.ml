(** Algorithm 1 of Chapter V: a linearizable implementation of an arbitrary
    deterministic data type with sub-2d operation latencies.

    Every process keeps a full copy of the object.  Operations are grouped
    by {!Spec.Data_type.kind}:

    - **OOP** (neither pure accessor nor pure mutator — e.g.
      read-modify-write, dequeue, pop): timestamped ⟨local clock, pid⟩,
      broadcast, buffered in the [To_Execute] priority queue on every
      process, and executed in global timestamp order once it is certain no
      smaller-timestamped operation can still arrive.  The invoker responds
      when its own copy executes the operation — within d + ε.

    - **MOP** (pure mutators — write, push, enqueue, insert): disseminated
      exactly like OOPs, but the response is issued by a timer ε + X after
      invocation, long before the local execution: a pure mutator's return
      value carries no information about the object, so only the *ordering*
      of its effect must be right, not its execution time.

    - **AOP** (pure accessors — read, peek, search, depth): never broadcast.
      The invoker timestamps them X *earlier* than the invocation clock
      time, waits d + ε − X, executes every buffered operation with a
      smaller timestamp on the local copy, applies the accessor and responds.

    The waiting periods live in {!Params.timing} so that the lower-bound
    experiments can build deliberately too-fast variants; with the standard
    timing this is a faithful transcription of the paper's pseudocode. *)

open Spec

module Make (D : Data_type.S) = struct
  type config = Params.t

  type entry = { op : D.op; ts : Prelude.Stamp.t }

  module Queue = Prelude.Heap.Make (struct
    type t = entry

    let compare a b = Prelude.Stamp.compare a.ts b.ts
  end)

  (* The invoker-side record of its single pending operation. *)
  type pending =
    | Idle
    | Waiting_oop of entry  (** respond when the local copy executes it *)
    | Waiting_mop of entry  (** respond on the ε + X timer *)
    | Waiting_aop of entry  (** respond on the d + ε − X timer *)

  type state = {
    pid : int;
    local_obj : D.state;  (** this process's copy of the object *)
    to_execute : Queue.t;  (** received but not yet executed, keyed by ts *)
    pending : pending;
    applied : (entry * D.result) list;
        (** every mutation executed on [local_obj], newest first — the
            replayable totally-ordered history (timestamp order) that the
            durability layer logs and peer catch-up serves *)
  }

  type op = D.op
  type result = D.result
  type msg = entry

  type timer =
    | Add of entry  (** d − u after broadcasting one's own op: self-delivery *)
    | Execute of entry  (** u + ε after an entry joined [to_execute] *)
    | Respond_mutator of entry
    | Respond_accessor of entry

  let name = "algorithm1"

  let init (_ : config) ~n:_ ~pid =
    {
      pid;
      local_obj = D.initial;
      to_execute = Queue.empty;
      pending = Idle;
      applied = [];
    }

  let equal_timer (a : timer) (b : timer) =
    match (a, b) with
    | Add x, Add y
    | Execute x, Execute y
    | Respond_mutator x, Respond_mutator y
    | Respond_accessor x, Respond_accessor y ->
        D.equal_op x.op y.op && Prelude.Stamp.equal x.ts y.ts
    | _ -> false

  (* Pop every queued entry with timestamp ≤ [upto] ([< upto] when
     [inclusive] is false) and execute it on the local copy, in timestamp
     order.  If one of them is this process's own pending OOP, the response
     becomes due: return its result. *)
  let execute_through st ~upto ~inclusive =
    let keep (e : entry) =
      if inclusive then Prelude.Stamp.( <= ) e.ts upto
      else Prelude.Stamp.( < ) e.ts upto
    in
    let batch, rest = Queue.pop_while keep st.to_execute in
    let obj, applied, response =
      List.fold_left
        (fun (obj, applied, response) (e : entry) ->
          let obj', r = D.apply obj e.op in
          let response =
            match st.pending with
            | Waiting_oop own when Prelude.Stamp.equal own.ts e.ts -> Some r
            | _ -> response
          in
          (obj', (e, r) :: applied, response))
        (st.local_obj, st.applied, None)
        batch
    in
    let st = { st with local_obj = obj; to_execute = rest; applied } in
    match response with
    | Some r -> ({ st with pending = Idle }, [ Sim.Action.Respond r ])
    | None -> (st, [])

  let on_invoke (cfg : config) st ~clock op =
    let t = cfg.timing in
    match D.classify op with
    | Data_type.Pure_accessor ->
        let ts = Prelude.Stamp.make ~time:(clock - t.accessor_ts_back) ~pid:st.pid in
        let e = { op; ts } in
        ( { st with pending = Waiting_aop e },
          [ Sim.Action.Set_timer (t.accessor_wait, Respond_accessor e) ] )
    | Data_type.Pure_mutator ->
        let ts = Prelude.Stamp.make ~time:clock ~pid:st.pid in
        let e = { op; ts } in
        ( { st with pending = Waiting_mop e },
          [
            Sim.Action.Broadcast e;
            Sim.Action.Set_timer (t.add_wait, Add e);
            Sim.Action.Set_timer (t.mutator_wait, Respond_mutator e);
          ] )
    | Data_type.Other ->
        let ts = Prelude.Stamp.make ~time:clock ~pid:st.pid in
        let e = { op; ts } in
        ( { st with pending = Waiting_oop e },
          [ Sim.Action.Broadcast e; Sim.Action.Set_timer (t.add_wait, Add e) ] )

  let enqueue (cfg : config) st (e : entry) =
    ( { st with to_execute = Queue.insert e st.to_execute },
      [ Sim.Action.Set_timer (cfg.timing.execute_wait, Execute e) ] )

  let on_message cfg st ~clock:_ ~src:_ (e : msg) = enqueue cfg st e

  let on_timer cfg st ~clock:_ = function
    | Add e -> enqueue cfg st e
    | Execute e -> execute_through st ~upto:e.ts ~inclusive:true
    | Respond_mutator e -> (
        match st.pending with
        | Waiting_mop own when Prelude.Stamp.equal own.ts e.ts ->
            (* A pure mutator's return value is state-independent, so the
               current copy gives the right answer even though the
               operation's effect is applied later in timestamp order. *)
            let _, r = D.apply st.local_obj e.op in
            ({ st with pending = Idle }, [ Sim.Action.Respond r ])
        | _ -> (st, []))
    | Respond_accessor e -> (
        match st.pending with
        | Waiting_aop own when Prelude.Stamp.equal own.ts e.ts ->
            let st, due = execute_through st ~upto:e.ts ~inclusive:false in
            assert (due = []);
            let _, r = D.apply st.local_obj e.op in
            ({ st with pending = Idle }, [ Sim.Action.Respond r ])
        | _ -> (st, []))
end
