(** Linearizability checking (the correctness condition of Chapter III.B.4).

    Given a complete history of operations — invocation and response real
    times plus results — decide whether there is a permutation π of the
    operations such that (a) π is legal for the sequential specification and
    (b) π respects the real-time precedence order: if op1 responds before
    op2 is invoked, op1 appears first.  This is the classic Wing–Gong
    search, memoized on (set of linearized operations, object state).

    Precedence is strict ([response < invoke]); additionally operations of
    the same process are always ordered by program order (they never
    overlap, but may touch when an invocation follows a response within the
    same tick). *)

open Spec

module Make (D : Data_type.S) = struct
  type entry = {
    pid : int;
    op : D.op;
    result : D.result;
    invoke : Prelude.Ticks.t;
    response : Prelude.Ticks.t;
  }

  let pp_entry fmt e =
    Format.fprintf fmt "p%d:%a→%a[%a,%a]" e.pid D.pp_op e.op D.pp_result
      e.result Prelude.Ticks.pp e.invoke Prelude.Ticks.pp e.response

  type verdict =
    | Linearizable of entry list  (** a witness permutation *)
    | Not_linearizable of string

  let is_linearizable = function Linearizable _ -> true | Not_linearizable _ -> false

  (* Does [a] precede [b] in the partial order the permutation must respect?
     For operations of the same process, program order (position in the
     history, which lists operations in invocation order) decides — one
     process's operations never overlap but an invocation may share a tick
     with the previous response.  Across processes, strict real-time
     precedence applies — unless we are checking the weaker *sequential
     consistency* (the condition of Lipton–Sandberg [5] and Attiya–Welch
     [1] that the thesis' Chapter I contrasts with linearizability), which
     keeps only program order. *)
  let precedes ~sequential_only (a, ia) (b, ib) =
    if a.pid = b.pid then ia < ib
    else (not sequential_only) && Prelude.Ticks.( < ) a.response b.invoke

  module Memo_key = struct
    type t = int * D.state

    let compare (m1, s1) (m2, s2) =
      match Int.compare m1 m2 with 0 -> D.compare_state s1 s2 | c -> c
  end

  module Memo = Set.Make (Memo_key)

  let check_gen ~sequential_only ?(initial = D.initial) (entries : entry list)
      : verdict =
    let arr = Array.of_list entries in
    let n = Array.length arr in
    if n > 62 then
      invalid_arg "Linearize.check: histories are limited to 62 operations";
    (* pred_mask.(i) = bitmask of entries that must precede entry i *)
    let pred_mask = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && precedes ~sequential_only (arr.(j), j) (arr.(i), i) then
          pred_mask.(i) <- pred_mask.(i) lor (1 lsl j)
      done
    done;
    let full = (1 lsl n) - 1 in
    let failed = ref Memo.empty in
    (* DFS over (set of already linearized ops, object state). *)
    let rec go done_mask state acc =
      if done_mask = full then Some (List.rev acc)
      else if Memo.mem (done_mask, state) !failed then None
      else
        let result = ref None in
        let i = ref 0 in
        while !result = None && !i < n do
          let idx = !i in
          incr i;
          let bit = 1 lsl idx in
          if done_mask land bit = 0 && pred_mask.(idx) land lnot done_mask = 0
          then begin
            let e = arr.(idx) in
            let state', r = D.apply state e.op in
            if D.equal_result r e.result then
              result := go (done_mask lor bit) state' (e :: acc)
          end
        done;
        if !result = None then failed := Memo.add (done_mask, state) !failed;
        !result
    in
    match go 0 initial [] with
    | Some witness -> Linearizable witness
    | None ->
        Not_linearizable
          (Format.asprintf "no legal %s permutation of {%a}"
             (if sequential_only then "program-order-respecting"
              else "real-time-respecting")
             (Format.pp_print_list
                ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
                pp_entry)
             entries)

  let check ?initial entries = check_gen ~sequential_only:false ?initial entries

  (* Like [check], but exhaustive: visit the whole (linearized set, state)
     graph and collect every state reached with all operations linearized.
     The memo set makes each (mask, state) pair expand at most once, so
     the traversal stays polynomial in the number of reachable pairs. *)
  let final_states ?(initial = D.initial) (entries : entry list) =
    let arr = Array.of_list entries in
    let n = Array.length arr in
    if n > 62 then
      invalid_arg "Linearize.final_states: histories are limited to 62 operations";
    let pred_mask = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && precedes ~sequential_only:false (arr.(j), j) (arr.(i), i)
        then pred_mask.(i) <- pred_mask.(i) lor (1 lsl j)
      done
    done;
    let full = (1 lsl n) - 1 in
    let visited = ref Memo.empty in
    let finals = ref [] in
    let rec go done_mask state =
      if Memo.mem (done_mask, state) !visited then ()
      else begin
        visited := Memo.add (done_mask, state) !visited;
        if done_mask = full then begin
          if
            not (List.exists (fun s -> D.compare_state s state = 0) !finals)
          then finals := state :: !finals
        end
        else
          for idx = 0 to n - 1 do
            let bit = 1 lsl idx in
            if done_mask land bit = 0 && pred_mask.(idx) land lnot done_mask = 0
            then begin
              let e = arr.(idx) in
              let state', r = D.apply state e.op in
              if D.equal_result r e.result then go (done_mask lor bit) state'
            end
          done
      end
    in
    go 0 initial;
    !finals

  module State_set = Set.Make (struct
    type t = D.state

    let compare = D.compare_state
  end)

  (* One segment's precomputed search space plus its failure memo.  The
     memo records (mask, state) pairs from which no completion of the
     segment leads to a successful continuation into the later segments —
     sound because continuations are deterministic in the final state and
     their own failure memos only grow. *)
  type prepared = {
    seg_arr : entry array;
    seg_pred : int array;
    seg_order : int array;
        (** candidate iteration order: earliest response first.  In a
            correct history operations linearize roughly in response
            order, so the first DFS path is usually a witness and
            backtracking stays rare. *)
    seg_full : int;
    mutable seg_failed : Memo.t;
  }

  let prepare entries =
    let arr = Array.of_list entries in
    let n = Array.length arr in
    if n > 62 then
      invalid_arg "Linearize.check_segmented: segments are limited to 62 operations";
    let pred = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && precedes ~sequential_only:false (arr.(j), j) (arr.(i), i)
        then pred.(i) <- pred.(i) lor (1 lsl j)
      done
    done;
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b -> Prelude.Ticks.compare arr.(a).response arr.(b).response)
      order;
    { seg_arr = arr; seg_pred = pred; seg_order = order;
      seg_full = (1 lsl n) - 1; seg_failed = Memo.empty }

  exception Budget_exhausted

  let check_segmented ?(initial = D.initial) ?budget
      (segments : entry list array) =
    let pre = Array.map prepare segments in
    let nsegs = Array.length pre in
    let credit = ref (match budget with Some b -> b | None -> max_int) in
    (* States from which segments i.. cannot linearize, per i. *)
    let failed_from = Array.make nsegs State_set.empty in
    let rec seg i state =
      if i >= nsegs then true
      else if State_set.mem state failed_from.(i) then false
      else begin
        let p = pre.(i) in
        let n = Array.length p.seg_arr in
        let rec go mask st =
          if mask = p.seg_full then seg (i + 1) st
          else if Memo.mem (mask, st) p.seg_failed then false
          else begin
            decr credit;
            if !credit < 0 then raise Budget_exhausted;
            let ok = ref false in
            let pos = ref 0 in
            while (not !ok) && !pos < n do
              let k = p.seg_order.(!pos) in
              incr pos;
              let bit = 1 lsl k in
              if mask land bit = 0 && p.seg_pred.(k) land lnot mask = 0
              then begin
                let e = p.seg_arr.(k) in
                let st', r = D.apply st e.op in
                if D.equal_result r e.result && go (mask lor bit) st' then
                  ok := true
              end
            done;
            if not !ok then p.seg_failed <- Memo.add (mask, st) p.seg_failed;
            !ok
          end
        in
        let ok = go 0 state in
        if not ok then failed_from.(i) <- State_set.add state failed_from.(i);
        ok
      end
    in
    match seg 0 initial with
    | true -> `Linearizable
    | false -> `Not_linearizable
    | exception Budget_exhausted -> `Budget_exhausted

  (** Sequential consistency: a legal permutation need only respect each
      process's program order, not real time.  Strictly weaker than
      linearizability; the thesis' opening example (our Fig. 1(a)
      experiment) violates linearizability while satisfying this. *)
  let check_sequentially_consistent entries =
    check_gen ~sequential_only:true entries

  (** Build a history from a simulation trace whose operations/results are
      already of this data type.  [include_pending]=false (default) ignores
      operations that never responded — use only on traces where every
      scripted operation completed (the engine's normal mode) or on
      deliberately chopped runs where pending operations took no effect
      visible to others within the kept prefix. *)
  let of_trace ?(include_pending = false)
      (trace : (D.op, D.result, 'msg) Sim.Trace.t) : entry list =
    List.filter_map
      (fun (r : (D.op, D.result) Sim.Trace.op_record) ->
        match (r.result, r.response_real) with
        | Some result, Some response ->
            Some { pid = r.pid; op = r.op; result; invoke = r.invoke_real; response }
        | _ ->
            if include_pending then
              invalid_arg "Linearize.of_trace: pending operations unsupported"
            else None)
      trace.ops

  let check_trace ?include_pending trace = check (of_trace ?include_pending trace)
end
