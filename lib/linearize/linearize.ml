(** Linearizability checking (the correctness condition of Chapter III.B.4).

    Given a complete history of operations — invocation and response real
    times plus results — decide whether there is a permutation π of the
    operations such that (a) π is legal for the sequential specification and
    (b) π respects the real-time precedence order: if op1 responds before
    op2 is invoked, op1 appears first.  This is the classic Wing–Gong
    search, memoized on (set of linearized operations, object state).

    Precedence is strict ([response < invoke]); additionally operations of
    the same process are always ordered by program order (they never
    overlap, but may touch when an invocation follows a response within the
    same tick). *)

open Spec

module Make (D : Data_type.S) = struct
  type entry = {
    pid : int;
    op : D.op;
    result : D.result;
    invoke : Prelude.Ticks.t;
    response : Prelude.Ticks.t;
  }

  let pp_entry fmt e =
    Format.fprintf fmt "p%d:%a→%a[%a,%a]" e.pid D.pp_op e.op D.pp_result
      e.result Prelude.Ticks.pp e.invoke Prelude.Ticks.pp e.response

  type verdict =
    | Linearizable of entry list  (** a witness permutation *)
    | Not_linearizable of string

  let is_linearizable = function Linearizable _ -> true | Not_linearizable _ -> false

  (* Does [a] precede [b] in the partial order the permutation must respect?
     For operations of the same process, program order (position in the
     history, which lists operations in invocation order) decides — one
     process's operations never overlap but an invocation may share a tick
     with the previous response.  Across processes, strict real-time
     precedence applies — unless we are checking the weaker *sequential
     consistency* (the condition of Lipton–Sandberg [5] and Attiya–Welch
     [1] that the thesis' Chapter I contrasts with linearizability), which
     keeps only program order. *)
  let precedes ~sequential_only (a, ia) (b, ib) =
    if a.pid = b.pid then ia < ib
    else (not sequential_only) && Prelude.Ticks.( < ) a.response b.invoke

  module Memo_key = struct
    type t = int * D.state

    let compare (m1, s1) (m2, s2) =
      match Int.compare m1 m2 with 0 -> D.compare_state s1 s2 | c -> c
  end

  module Memo = Set.Make (Memo_key)

  let check_gen ~sequential_only ?(initial = D.initial) (entries : entry list)
      : verdict =
    let arr = Array.of_list entries in
    let n = Array.length arr in
    if n > 62 then
      invalid_arg "Linearize.check: histories are limited to 62 operations";
    (* pred_mask.(i) = bitmask of entries that must precede entry i *)
    let pred_mask = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && precedes ~sequential_only (arr.(j), j) (arr.(i), i) then
          pred_mask.(i) <- pred_mask.(i) lor (1 lsl j)
      done
    done;
    let full = (1 lsl n) - 1 in
    let failed = ref Memo.empty in
    (* DFS over (set of already linearized ops, object state). *)
    let rec go done_mask state acc =
      if done_mask = full then Some (List.rev acc)
      else if Memo.mem (done_mask, state) !failed then None
      else
        let result = ref None in
        let i = ref 0 in
        while !result = None && !i < n do
          let idx = !i in
          incr i;
          let bit = 1 lsl idx in
          if done_mask land bit = 0 && pred_mask.(idx) land lnot done_mask = 0
          then begin
            let e = arr.(idx) in
            let state', r = D.apply state e.op in
            if D.equal_result r e.result then
              result := go (done_mask lor bit) state' (e :: acc)
          end
        done;
        if !result = None then failed := Memo.add (done_mask, state) !failed;
        !result
    in
    match go 0 initial [] with
    | Some witness -> Linearizable witness
    | None ->
        Not_linearizable
          (Format.asprintf "no legal %s permutation of {%a}"
             (if sequential_only then "program-order-respecting"
              else "real-time-respecting")
             (Format.pp_print_list
                ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
                pp_entry)
             entries)

  let check ?initial entries = check_gen ~sequential_only:false ?initial entries

  (** Sequential consistency: a legal permutation need only respect each
      process's program order, not real time.  Strictly weaker than
      linearizability; the thesis' opening example (our Fig. 1(a)
      experiment) violates linearizability while satisfying this. *)
  let check_sequentially_consistent entries =
    check_gen ~sequential_only:true entries

  (** Build a history from a simulation trace whose operations/results are
      already of this data type.  [include_pending]=false (default) ignores
      operations that never responded — use only on traces where every
      scripted operation completed (the engine's normal mode) or on
      deliberately chopped runs where pending operations took no effect
      visible to others within the kept prefix. *)
  let of_trace ?(include_pending = false)
      (trace : (D.op, D.result, 'msg) Sim.Trace.t) : entry list =
    List.filter_map
      (fun (r : (D.op, D.result) Sim.Trace.op_record) ->
        match (r.result, r.response_real) with
        | Some result, Some response ->
            Some { pid = r.pid; op = r.op; result; invoke = r.invoke_real; response }
        | _ ->
            if include_pending then
              invalid_arg "Linearize.of_trace: pending operations unsupported"
            else None)
      trace.ops

  let check_trace ?include_pending trace = check (of_trace ?include_pending trace)
end
