(** Linearizability checking (the correctness condition of Chapter
    III.B.4): is there a permutation of a completed history that is legal
    for the sequential specification and respects real-time precedence?
    Wing–Gong search, memoized on (linearized set, object state). *)

module Make (D : Spec.Data_type.S) : sig
  type entry = {
    pid : int;
    op : D.op;
    result : D.result;
    invoke : Prelude.Ticks.t;
    response : Prelude.Ticks.t;
  }

  val pp_entry : Format.formatter -> entry -> unit

  type verdict =
    | Linearizable of entry list  (** a witness permutation *)
    | Not_linearizable of string

  val is_linearizable : verdict -> bool

  val check : ?initial:D.state -> entry list -> verdict
  (** Histories must list each process's operations in invocation order
      (program order breaks same-process time ties) and are limited to 62
      operations.  [initial] (default [D.initial]) is the object state the
      history starts from — used by the live runtime to check long
      histories segment by segment across quiescent cuts. *)

  val check_sequentially_consistent : entry list -> verdict
  (** The weaker condition of Lipton–Sandberg/Attiya–Welch that the thesis'
      Chapter I contrasts with linearizability: the permutation need only
      respect per-process program order, not real time. *)

  val of_trace :
    ?include_pending:bool -> (D.op, D.result, 'msg) Sim.Trace.t -> entry list
  (** Entries of a simulation trace; operations that never responded are
      skipped (default) — pending operations are not supported. *)

  val check_trace :
    ?include_pending:bool -> (D.op, D.result, 'msg) Sim.Trace.t -> verdict
end
