(** Linearizability checking (the correctness condition of Chapter
    III.B.4): is there a permutation of a completed history that is legal
    for the sequential specification and respects real-time precedence?
    Wing–Gong search, memoized on (linearized set, object state). *)

module Make (D : Spec.Data_type.S) : sig
  type entry = {
    pid : int;
    op : D.op;
    result : D.result;
    invoke : Prelude.Ticks.t;
    response : Prelude.Ticks.t;
  }

  val pp_entry : Format.formatter -> entry -> unit

  type verdict =
    | Linearizable of entry list  (** a witness permutation *)
    | Not_linearizable of string

  val is_linearizable : verdict -> bool

  val check : ?initial:D.state -> entry list -> verdict
  (** Histories must list each process's operations in invocation order
      (program order breaks same-process time ties) and are limited to 62
      operations.  [initial] (default [D.initial]) is the object state the
      history starts from — used by the live runtime to check long
      histories segment by segment across quiescent cuts. *)

  val final_states : ?initial:D.state -> entry list -> D.state list
  (** Every object state reachable as the final state of {e some} valid
      linearization of the history (empty iff not linearizable from
      [initial]).  Segmented checking needs the full set, not one
      witness: concurrent mutators whose results don't reveal their
      relative order (two [enqueue→ack]s, say) leave the end-of-segment
      state ambiguous, and committing to a single witness's state can
      make a later — perfectly linearizable — segment unsatisfiable.
      Same 62-operation limit and memoization as {!check}. *)

  val check_segmented :
    ?initial:D.state ->
    ?budget:int ->
    entry list array ->
    [ `Linearizable | `Not_linearizable | `Budget_exhausted ]
  (** Is the concatenation of the segments linearizable from [initial]?
      The segments must be separated in real time (every operation of
      segment i responds before any operation of segment i+1 is invoked —
      quiescent cuts guarantee this), so a linearization of the whole is
      exactly a chain of per-segment linearizations whose states connect.
      Unlike threading one witness's state, this backtracks across
      segments, so it is complete; failure memoization per segment keeps
      re-exploration polynomial in reachable (set, state) pairs.  Each
      segment is limited to 62 operations.

      Ambiguity can still be exponential in principle (concurrent
      mutators whose results hide their order, as in a FIFO queue's
      enqueue→acks): [budget] caps the number of search-node expansions,
      returning [`Budget_exhausted] instead of running away — report such
      histories as unchecked, not as violations. *)

  val check_sequentially_consistent : entry list -> verdict
  (** The weaker condition of Lipton–Sandberg/Attiya–Welch that the thesis'
      Chapter I contrasts with linearizability: the permutation need only
      respect per-process program order, not real time. *)

  val of_trace :
    ?include_pending:bool -> (D.op, D.result, 'msg) Sim.Trace.t -> entry list
  (** Entries of a simulation trace; operations that never responded are
      skipped (default) — pending operations are not supported. *)

  val check_trace :
    ?include_pending:bool -> (D.op, D.result, 'msg) Sim.Trace.t -> verdict
end
