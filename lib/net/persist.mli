(** Typed durable formats on top of {!Durable}'s untyped bytes: what one
    WAL record and one snapshot payload {e mean} for a given object.

    - a {e WAL record} is one applied mutation — operation, ⟨time, pid⟩
      stamp, client op id (0 = none) and the result it produced — in the
      order Algorithm 1 applied it, which is timestamp order.  Replaying
      records from a known state therefore reproduces the object exactly.
    - a {e snapshot payload} is a checkpoint: the object, the high-water
      mark, and the applied history with op ids (so a restarted replica
      can serve catch-up and recognise client retries from before the
      crash).

    Both use the codec's varint primitives and the object's
    {!Codec.OBJ_CODEC}, and both decode totally: corrupt input yields
    [None], never an exception — the durability layer's
    longest-clean-prefix discipline extends through the typed layer. *)

module Make (O : Codec.OBJ_CODEC) : sig
  type applied = {
    op : O.D.op;
    time : int;
    pid : int;
    op_id : int;
    result : O.D.result;
  }

  type snapshot = {
    s_obj : O.D.state;
    s_hwm_time : int;  (** −1 = nothing applied *)
    s_hwm_pid : int;
    s_applied : applied list;  (** oldest first *)
  }

  val empty_snapshot : snapshot
  (** The fresh-boot state: initial object, empty history, hwm −1. *)

  val encode_record : applied -> string
  val decode_record : string -> applied option

  val encode_snapshot : snapshot -> string

  val decode_snapshot : string -> snapshot option
  (** [None] on a payload for another object (tag mismatch) or malformed
      bytes. *)

  val replay : snapshot -> string list -> snapshot
  (** Fold raw WAL records (oldest first) into a checkpoint: decode,
      apply, advance the high-water mark.  Stops at the first undecodable
      record; skips records at or below the base high-water mark. *)

  val recovered_of : Durable.Store.recovered -> snapshot
  (** The full recovery pipeline: decode the store's snapshot payload
      (falling back to {!empty_snapshot} when absent or undecodable) and
      {!replay} the WAL tail onto it. *)
end
