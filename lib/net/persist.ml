(** See the interface.  Both encodings reuse the codec's payload
    primitives (zigzag varints via {!Codec.Wr}/{!Codec.Rd}) and the
    per-object serialisers, so the durable format evolves with the wire
    format's object codecs and needs no parallel machinery. *)

module Make (O : Codec.OBJ_CODEC) = struct
  type applied = {
    op : O.D.op;
    time : int;
    pid : int;
    op_id : int;
    result : O.D.result;
  }

  type snapshot = {
    s_obj : O.D.state;
    s_hwm_time : int;
    s_hwm_pid : int;
    s_applied : applied list;
  }

  let empty_snapshot =
    { s_obj = O.D.initial; s_hwm_time = -1; s_hwm_pid = 0; s_applied = [] }

  let write_applied b a =
    O.write_op b a.op;
    Codec.Wr.int b a.time;
    Codec.Wr.int b a.pid;
    Codec.Wr.int b a.op_id;
    O.write_result b a.result

  let read_applied r =
    let op = O.read_op r in
    let time = Codec.Rd.int r in
    let pid = Codec.Rd.int r in
    let op_id = Codec.Rd.int r in
    let result = O.read_result r in
    { op; time; pid; op_id; result }

  let encode_record a =
    let b = Buffer.create 32 in
    write_applied b a;
    Buffer.contents b

  let decode_record s =
    match
      let r = Codec.Rd.of_string s in
      let a = read_applied r in
      if Codec.Rd.at_end r then Some a else None
    with
    | v -> v
    | exception Codec.Bad_payload _ -> None

  let encode_snapshot s =
    let b = Buffer.create 256 in
    Codec.Wr.int b O.obj_tag;
    O.write_state b s.s_obj;
    Codec.Wr.int b s.s_hwm_time;
    Codec.Wr.int b s.s_hwm_pid;
    Codec.Wr.int b (List.length s.s_applied);
    List.iter (write_applied b) s.s_applied;
    Buffer.contents b

  let decode_snapshot s =
    match
      let r = Codec.Rd.of_string s in
      let tag = Codec.Rd.int r in
      if tag <> O.obj_tag then None
      else
        let s_obj = O.read_state r in
        let s_hwm_time = Codec.Rd.int r in
        let s_hwm_pid = Codec.Rd.int r in
        let count = Codec.Rd.int r in
        if count < 0 then None
        else begin
          let acc = ref [] in
          for _ = 1 to count do
            acc := read_applied r :: !acc
          done;
          if Codec.Rd.at_end r then
            Some
              { s_obj; s_hwm_time; s_hwm_pid; s_applied = List.rev !acc }
          else None
        end
    with
    | v -> v
    | exception Codec.Bad_payload _ -> None

  (* Fold the WAL tail into the checkpoint.  Records below the
     checkpoint's high-water mark are skipped (belt-and-braces: the
     store's rotation order should make them impossible) and the fold
     stops at the first undecodable record, extending the WAL layer's
     longest-clean-prefix discipline to the typed layer. *)
  let replay base records =
    let after_hwm s a =
      a.time > s.s_hwm_time || (a.time = s.s_hwm_time && a.pid > s.s_hwm_pid)
    in
    let rec go s rev_extra = function
      | [] -> (s, rev_extra)
      | raw :: rest -> (
          match decode_record raw with
          | None -> (s, rev_extra)
          | Some a ->
              if after_hwm s a then
                let obj, _ = O.D.apply s.s_obj a.op in
                go
                  {
                    s with
                    s_obj = obj;
                    s_hwm_time = a.time;
                    s_hwm_pid = a.pid;
                  }
                  (a :: rev_extra) rest
              else go s rev_extra rest)
    in
    let s, rev_extra = go base [] records in
    { s with s_applied = s.s_applied @ List.rev rev_extra }

  let recovered_of (r : Durable.Store.recovered) =
    let base =
      match r.Durable.Store.r_snapshot with
      | None -> empty_snapshot
      | Some payload -> (
          match decode_snapshot payload with
          | Some s -> s
          | None -> empty_snapshot)
    in
    replay base r.Durable.Store.r_records
end
