type t = {
  budget : int;
  alpha : float;
  lock : Mutex.t;
  mutable inflight : int;
  mutable ewma_us : float;
  mutable admitted : int;
  mutable shed_budget : int;
  mutable shed_deadline : int;
}

let create ?(budget = 64) ?(alpha = 0.2) () =
  if budget < 1 then invalid_arg "Admission.create: budget < 1";
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Admission.create: alpha outside (0, 1]";
  {
    budget;
    alpha;
    lock = Mutex.create ();
    inflight = 0;
    ewma_us = 0.0;
    admitted = 0;
    shed_budget = 0;
    shed_deadline = 0;
  }

type verdict = Admitted | Shed of string

let try_admit t ~now_us ~deadline_us =
  Mutex.lock t.lock;
  let v =
    if t.inflight >= t.budget then begin
      t.shed_budget <- t.shed_budget + 1;
      Shed
        (Printf.sprintf "shed: inflight budget full (%d/%d)" t.inflight
           t.budget)
    end
    else if
      (* Predicted completion = now + queue-ahead-of-us service time + our
         own; a fresh estimator (no completions yet) predicts 0 and admits
         everything — it learns the real service time from the first few
         completions instead of guessing. *)
      deadline_us > 0
      && now_us
         + int_of_float (t.ewma_us *. float_of_int (t.inflight + 1))
         > deadline_us
    then begin
      t.shed_deadline <- t.shed_deadline + 1;
      Shed
        (Printf.sprintf
           "shed: deadline unmeetable (est %dus, %dus left)"
           (int_of_float (t.ewma_us *. float_of_int (t.inflight + 1)))
           (deadline_us - now_us))
    end
    else begin
      t.inflight <- t.inflight + 1;
      t.admitted <- t.admitted + 1;
      Admitted
    end
  in
  Mutex.unlock t.lock;
  v

let finish t ~elapsed_us =
  Mutex.lock t.lock;
  if t.inflight > 0 then t.inflight <- t.inflight - 1;
  let e = float_of_int (max 0 elapsed_us) in
  t.ewma_us <-
    (if t.ewma_us = 0.0 then e
     else (t.alpha *. e) +. ((1.0 -. t.alpha) *. t.ewma_us));
  Mutex.unlock t.lock

let inflight t =
  Mutex.lock t.lock;
  let v = t.inflight in
  Mutex.unlock t.lock;
  v

let ewma_us t =
  Mutex.lock t.lock;
  let v = int_of_float t.ewma_us in
  Mutex.unlock t.lock;
  v

type totals = { admitted : int; shed_budget : int; shed_deadline : int }

let totals t =
  Mutex.lock t.lock;
  let v =
    {
      admitted = t.admitted;
      shed_budget = t.shed_budget;
      shed_deadline = t.shed_deadline;
    }
  in
  Mutex.unlock t.lock;
  v
