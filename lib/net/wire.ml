(** Per-object wire serialisers for the registered live workloads, and the
    registry pairing each workload with its codec.

    A {!WIRED} bundle is what every networked component is generic over: the
    workload (data type + op samplers, from {!Runtime.Workloads}) plus the
    {!Codec.OBJ_CODEC} that puts its operations and results on the wire.
    The [register] and [counter] workloads share {!Spec.Register} and hence
    one codec/tag: the wire identity is the *object*, not the op mix. *)

module type WIRED = sig
  module L : Runtime.Workloads.LIVE
  module C : Codec.OBJ_CODEC with module D = L.D
end

(* ---- object codecs ---- *)

module Register_codec = struct
  module D = Spec.Register

  let obj_tag = 1

  let write_op b = function
    | Spec.Register.Read -> Codec.Wr.int b 0
    | Spec.Register.Write v ->
        Codec.Wr.int b 1;
        Codec.Wr.int b v
    | Spec.Register.Rmw v ->
        Codec.Wr.int b 2;
        Codec.Wr.int b v
    | Spec.Register.Add k ->
        Codec.Wr.int b 3;
        Codec.Wr.int b k

  let read_op r =
    match Codec.Rd.int r with
    | 0 -> Spec.Register.Read
    | 1 -> Spec.Register.Write (Codec.Rd.int r)
    | 2 -> Spec.Register.Rmw (Codec.Rd.int r)
    | 3 -> Spec.Register.Add (Codec.Rd.int r)
    | t -> Codec.Rd.fail (Printf.sprintf "register: unknown op tag %d" t)

  let write_result b = function
    | Spec.Register.Value v ->
        Codec.Wr.int b 0;
        Codec.Wr.int b v
    | Spec.Register.Ack -> Codec.Wr.int b 1

  let read_result r =
    match Codec.Rd.int r with
    | 0 -> Spec.Register.Value (Codec.Rd.int r)
    | 1 -> Spec.Register.Ack
    | t -> Codec.Rd.fail (Printf.sprintf "register: unknown result tag %d" t)

  let write_state b (s : Spec.Register.state) = Codec.Wr.int b s
  let read_state r : Spec.Register.state = Codec.Rd.int r
end

module Kv_codec = struct
  module D = Spec.Kv_map

  let obj_tag = 2

  let write_op b = function
    | Spec.Kv_map.Put (k, v) ->
        Codec.Wr.int b 0;
        Codec.Wr.int b k;
        Codec.Wr.int b v
    | Spec.Kv_map.Del k ->
        Codec.Wr.int b 1;
        Codec.Wr.int b k
    | Spec.Kv_map.Get k ->
        Codec.Wr.int b 2;
        Codec.Wr.int b k
    | Spec.Kv_map.Swap (k, v) ->
        Codec.Wr.int b 3;
        Codec.Wr.int b k;
        Codec.Wr.int b v

  let read_op r =
    match Codec.Rd.int r with
    | 0 ->
        let k = Codec.Rd.int r in
        Spec.Kv_map.Put (k, Codec.Rd.int r)
    | 1 -> Spec.Kv_map.Del (Codec.Rd.int r)
    | 2 -> Spec.Kv_map.Get (Codec.Rd.int r)
    | 3 ->
        let k = Codec.Rd.int r in
        Spec.Kv_map.Swap (k, Codec.Rd.int r)
    | t -> Codec.Rd.fail (Printf.sprintf "kv: unknown op tag %d" t)

  let write_result b = function
    | Spec.Kv_map.Found v ->
        Codec.Wr.int b 0;
        Codec.Wr.int b v
    | Spec.Kv_map.Absent -> Codec.Wr.int b 1
    | Spec.Kv_map.Ack -> Codec.Wr.int b 2

  let read_result r =
    match Codec.Rd.int r with
    | 0 -> Spec.Kv_map.Found (Codec.Rd.int r)
    | 1 -> Spec.Kv_map.Absent
    | 2 -> Spec.Kv_map.Ack
    | t -> Codec.Rd.fail (Printf.sprintf "kv: unknown result tag %d" t)

  let write_state b (s : Spec.Kv_map.state) =
    Codec.Wr.int b (Spec.Kv_map.M.cardinal s);
    Spec.Kv_map.M.iter
      (fun k v ->
        Codec.Wr.int b k;
        Codec.Wr.int b v)
      s

  let read_state r : Spec.Kv_map.state =
    let count = Codec.Rd.int r in
    if count < 0 then Codec.Rd.fail "kv: negative state cardinality";
    let rec go acc k =
      if k = 0 then acc
      else
        let key = Codec.Rd.int r in
        let v = Codec.Rd.int r in
        go (Spec.Kv_map.M.add key v acc) (k - 1)
    in
    go Spec.Kv_map.M.empty count
end

module Queue_codec = struct
  module D = Spec.Fifo_queue

  let obj_tag = 3

  let write_op b = function
    | Spec.Fifo_queue.Enqueue v ->
        Codec.Wr.int b 0;
        Codec.Wr.int b v
    | Spec.Fifo_queue.Dequeue -> Codec.Wr.int b 1
    | Spec.Fifo_queue.Peek -> Codec.Wr.int b 2

  let read_op r =
    match Codec.Rd.int r with
    | 0 -> Spec.Fifo_queue.Enqueue (Codec.Rd.int r)
    | 1 -> Spec.Fifo_queue.Dequeue
    | 2 -> Spec.Fifo_queue.Peek
    | t -> Codec.Rd.fail (Printf.sprintf "queue: unknown op tag %d" t)

  let write_result b = function
    | Spec.Fifo_queue.Value v ->
        Codec.Wr.int b 0;
        Codec.Wr.int b v
    | Spec.Fifo_queue.Empty -> Codec.Wr.int b 1
    | Spec.Fifo_queue.Ack -> Codec.Wr.int b 2

  let read_result r =
    match Codec.Rd.int r with
    | 0 -> Spec.Fifo_queue.Value (Codec.Rd.int r)
    | 1 -> Spec.Fifo_queue.Empty
    | 2 -> Spec.Fifo_queue.Ack
    | t -> Codec.Rd.fail (Printf.sprintf "queue: unknown result tag %d" t)

  (* oldest-first, as the state lists it *)
  let write_state b (s : Spec.Fifo_queue.state) =
    Codec.Wr.int b (List.length s);
    List.iter (Codec.Wr.int b) s

  let read_state r : Spec.Fifo_queue.state =
    let count = Codec.Rd.int r in
    if count < 0 then Codec.Rd.fail "queue: negative state length";
    let rec go acc k =
      if k = 0 then List.rev acc else go (Codec.Rd.int r :: acc) (k - 1)
    in
    go [] count
end

(* ---- registry ---- *)

module Register_wired = struct
  module L = Runtime.Workloads.Register_live
  module C = Register_codec
end

module Counter_wired = struct
  module L = Runtime.Workloads.Counter_live
  module C = Register_codec
end

module Kv_wired = struct
  module L = Runtime.Workloads.Kv_map_live
  module C = Kv_codec
end

module Queue_wired = struct
  module L = Runtime.Workloads.Fifo_queue_live
  module C = Queue_codec
end

let register = (module Register_wired : WIRED)
let counter = (module Counter_wired : WIRED)
let kv_map = (module Kv_wired : WIRED)
let fifo_queue = (module Queue_wired : WIRED)
let all = [ register; counter; kv_map; fifo_queue ]
let names = List.map (fun (module W : WIRED) -> W.L.label) all

let find name =
  List.find_opt (fun (module W : WIRED) -> String.equal W.L.label name) all
