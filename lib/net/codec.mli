(** Versioned, length-prefixed binary wire format for Algorithm 1
    clusters.

    Two layers:

    - an {e untyped framing layer} ({!encode_frame}/{!decode_frame}): every
      frame is [magic "TB" | version | kind | payload length (u32 BE) |
      CRC-32 | payload].  The CRC (IEEE 802.3, over version, kind, length
      and payload) makes corruption — truncation aside — a detected error:
      any single bit flip in the covered region is caught by construction,
      and a flip in the magic or a truncating flip in the length field
      surfaces as {!Corrupt} or {!Need_more}.  Decoding {e never raises}:
      a stream reader can feed arbitrary bytes and always gets a
      three-valued verdict.
    - a {e typed message layer} ({!Make}): the Algorithm 1 / client
      protocol messages, generic over a per-object (de)serialiser
      ({!OBJ_CODEC}; the registered objects live in {!Wire}).  Payloads
      use zigzag-varint integers and length-prefixed strings; a malformed
      payload inside a well-framed frame decodes to {!Corrupt}, not an
      exception.

    The wire protocol (who sends which message) is documented in
    [Tcp_transport] and README "Wire format". *)

val version : int
(** Current wire version (7 — v2 added the trace id to [Entry]/[Invoke]
    payloads; v3 added the client operation id to both, plus the
    catch-up request/reply frames for post-crash peer anti-entropy; v4
    added the shard id to every op/ack/catch-up payload and the shard
    count to the handshake, so a sharded namespace multiplexes many
    Algorithm 1 instances over one per-peer link; v5 added the quorum
    fallback's frames — the heartbeat doubling as the mode announcement
    plus forward/propose/ack/commit/nack/fill, all shard-tagged; v6
    added the clock-synchronization probe frames [Ping]/[Pong]; v7 added
    overload protection — the client deadline on [Invoke], the [Shed]
    refusal frame, and the two-lane queue counters on [Stats]).  A
    decoder rejects every other version, so incompatible formats — older
    peers included — fail the handshake cleanly instead of misparsing. *)

val header_len : int
val max_payload : int

type frame = { kind : int; payload : string }

type 'a progress =
  | Got of 'a * int  (** decoded value, offset of the next byte to read *)
  | Need_more of int  (** how many more bytes (at least) must arrive *)
  | Corrupt of string

val encode_frame : kind:int -> payload:string -> string
(** @raise Invalid_argument if [kind] is not a byte or the payload exceeds
    {!max_payload}. *)

val decode_frame : ?pos:int -> string -> frame progress
(** Decode one frame starting at [pos] (default 0).  Total function: bad
    magic, bad version, oversized length and checksum mismatch are
    {!Corrupt}; an incomplete frame is {!Need_more}. *)

val crc32 : string -> pos:int -> len:int -> int
(** IEEE CRC-32 of a substring (exposed for tests). *)

(** {2 Payload primitives} *)

exception Bad_payload of string
(** Raised by {!Rd} accessors and {!OBJ_CODEC} readers on malformed
    payloads; confined to the codec — {!Make.decode} catches it and
    returns {!Corrupt}. *)

module Wr : sig
  val int : Buffer.t -> int -> unit  (** zigzag LEB128 varint *)

  val string : Buffer.t -> string -> unit  (** varint length + bytes *)
end

module Rd : sig
  type t

  val of_string : string -> t
  val int : t -> int
  val string : t -> string
  val at_end : t -> bool

  val fail : string -> 'a
  (** [raise (Bad_payload _)] — for object codecs rejecting bad tags. *)
end

(** {2 Typed messages} *)

(** Per-object (de)serialiser: how one registered data type's operations
    and results travel.  Readers raise {!Bad_payload} on malformed input
    and nothing else. *)
module type OBJ_CODEC = sig
  module D : Spec.Data_type.S

  val obj_tag : int
  (** Wire identity of the object, carried in the handshake so a register
      replica never deserialises queue operations. *)

  val write_op : Buffer.t -> D.op -> unit
  val read_op : Rd.t -> D.op
  val write_result : Buffer.t -> D.result -> unit
  val read_result : Rd.t -> D.result

  val write_state : Buffer.t -> D.state -> unit
  (** Serialise a whole object state — used by the durability layer's
      snapshots ({!Persist}), never by wire frames. *)

  val read_state : Rd.t -> D.state
end

type hello = {
  pid : int;
  n : int;
  d : int;
  u : int;
  eps : int;
  x : int;
  obj_tag : int;
  shards : int;  (** shard count of the sender's namespace; 0 = unsharded *)
}
(** The connect handshake: the sender's identity plus the parameters it
    runs Algorithm 1 with.  Receivers reject mismatches — a cluster whose
    members disagree on [(n, d, u, ε, X)], on the object, or on the shard
    topology would silently violate the model's admissibility assumptions
    (or route operations to the wrong object) instead. *)

module Make (O : OBJ_CODEC) : sig
  type msg =
    | Hello of hello  (** first frame on a replica→replica connection *)
    | Entry of {
        op : O.D.op;
        time : int;
        pid : int;
        trace : int;
        op_id : int;
        shard : int;
      }
        (** an Algorithm 1 protocol message: operation + ⟨time, pid⟩ stamp
            + originating trace id (0 when untraced) + client operation id
            (0 when the client did not ask for idempotence) + shard id of
            the instance it belongs to (0 = the only shard) *)
    | Invoke of {
        op : O.D.op;
        trace : int;
        op_id : int;
        shard : int;
        deadline : int;
            (** client-minted absolute deadline, µs on the shared
                monotonic timeline ({!Prelude.Mclock}); 0 = none.  A
                server sheds the op instead of starting work it cannot
                finish in time. *)
      }
        (** client → replica; a retry re-sends the same [op_id] (and the
            same deadline — the deadline belongs to the operation, not
            the attempt) *)
    | Result of { result : O.D.result; shard : int }
        (** replica → client, echoing the invoking shard *)
    | Stats_req  (** client → replica: transport stats probe *)
    | Stats of Runtime.Transport_intf.stats  (** replica → client *)
    | Error_msg of string  (** replica → client: invocation failed *)
    | Catchup_req of { time : int; cpid : int; shard : int }
        (** restarted replica → peers: "send me everything above my
            high-water mark ⟨time, cpid⟩" (time −1 = empty), per shard *)
    | Catchup_rep of {
        entries : (O.D.op * int * int * int) list;
            (** (op, time, pid, op id) in stamp order *)
        time : int;
        cpid : int;  (** the replier's own high-water mark *)
        shard : int;
      }
    | Hb of {
        stamp : int;
        epoch : int;
        qmode : bool;
        seq : int;
        floor : int;
        shard : int;
      }
        (** replica → replicas: failure-detector heartbeat carrying the
            sender's clock, doubling as the mode announcement (epoch,
            fast/quorum, sequencer pid, stamp floor) — see DESIGN.md §13 *)
    | Forward of {
        qid : int;
        origin : int;
        op : O.D.op;
        op_id : int;
        trace : int;
        shard : int;
      }  (** origin replica → sequencer: order this op in the quorum log *)
    | Propose of {
        epoch : int;
        qseq : int;
        time : int;  (** assigned stamp time; the stamp pid is [origin] *)
        origin : int;
        qid : int;
        op : O.D.op;
        op_id : int;
        trace : int;
        shard : int;
      }  (** sequencer → replicas: slot [qseq] of era [epoch] holds this *)
    | Qack of { epoch : int; qseq : int; shard : int }
        (** follower → sequencer: slot stored *)
    | Qcommit of { epoch : int; qseq : int; shard : int }
        (** sequencer → replicas: majority reached; apply in slot order *)
    | Fnack of { qid : int; shard : int }
        (** addressee was not the sequencer: re-route the forward *)
    | Qfill of { epoch : int; from_seq : int; shard : int }
        (** follower → sequencer: re-send payloads from [from_seq] up *)
    | Ping of { seq : int; t0 : int; shard : int }
        (** replica → replicas: sync probe; [t0] is the prober's corrected
            clock at send (µs) *)
    | Pong of { seq : int; t0 : int; t_rx : int; t_tx : int; shard : int }
        (** probe echo: [seq]/[t0] copied from the ping, [t_rx]/[t_tx] the
            responder's corrected clock at receipt and reply — the four
            NTP timestamps of a two-way offset sample *)
    | Shed of { reason : string; shard : int }
        (** replica → client: the op was refused (or abandoned) by
            overload protection — deadline already passed, admission
            control predicted a miss, or the inflight budget was full.
            A distinct retryable class: the op was {e not} executed, so
            an idempotent retry with capped backoff is always safe. *)

  val equal_msg : msg -> msg -> bool
  val pp_msg : Format.formatter -> msg -> unit

  val encode : msg -> string
  (** Full frame bytes, ready for the wire. *)

  val decode_payload : frame -> (msg, string) result
  (** Interpret an already-framed payload; [Error] on unknown kind,
      malformed payload, or trailing bytes. *)

  val decode : ?pos:int -> string -> msg progress
  (** {!decode_frame} followed by {!decode_payload}; total. *)
end
