(** One Algorithm 1 replica as an OS process: the TCP transport, a single
    {!Runtime.Replica} node on its own domain, and a client port — the
    body of [timebounds serve].

    Wiring: the replica's event type is opaque ([Replica.Make(D).event]);
    only its [net] (protocol entry) events cross the wire, encoded as
    {!Codec} [Entry] frames.  Client connections (first frame [Invoke]
    rather than [Hello]) are served on their accepting thread: each
    [Invoke] becomes a synchronous [node_invoke], each [Stats_req] a
    transport-stats snapshot, so invocations block the connection — not
    the replica loop — exactly like the in-process client cells.

    A {!handle} is separable from the CLI so an in-process caller (the
    [tcp_cluster] example, the tests) can run several replica stacks in
    one process on ephemeral ports. *)

type config = {
  pid : int;
  addrs : (string * int) array;  (** every replica's address, index = pid *)
  params : Core.Params.t;  (** effective (slack already folded into d, u) *)
  offset : int;  (** this replica's clock offset, µs *)
  start_us : int option;
      (** shared clock epoch (µs on {!Prelude.Mclock}'s timeline, which is
          wall-clock based and hence comparable across local processes).
          Every replica of a cluster must use the same epoch: replica
          clocks read [now − start_us + offset], so per-process epochs
          would skew them by the process spawn deltas — far beyond the ε
          the algorithm assumes.  [None] means "now" (single-replica or
          in-process use). *)
  trace : string option;
      (** when set, install an [Obs.Recorder] writing this process's trace
          file, timestamped from [start_us] — the same epoch in every
          replica makes the per-process files merge onto one timeline. *)
  durable : string option;
      (** this replica's durable directory ({!Durable.Store}): WAL every
          applied mutation, checkpoint periodically, and on start recover
          the prefix and catch up from peers.  [None] = memory-only (the
          pre-PR-5 behaviour). *)
  fsync : Durable.Wal.fsync;  (** WAL durability policy (when [durable]) *)
  snapshot_every : int;
      (** checkpoint after this many WAL records (≤ 0 = never snapshot) *)
  fallback : Quorum.Config.t option;
      (** arm the adaptive quorum fallback ([--fallback quorum]): the
          replica heartbeats its peers, runs the fast path behind the
          response release gate while timing holds, and degrades to the
          sequencer/majority mode when a peer is suspected dead.  The
          configured [on_mode]/[on_suspect] hooks are composed with this
          stack's own logging (the "mode: quorum(...)" lines CI greps). *)
  sync : Sync.Config.t option;
      (** arm live clock synchronization ([--sync on]): the replica
          exchanges timestamped ping/pong probes with its peers, slews a
          corrected clock toward the Lundelius–Lynch midpoint average, and
          publishes its achieved ε each round.  The configured [on_eps]
          hook is composed with this stack's own logging (the
          "sync eps=..." lines the CI sync smoke greps). *)
  log : string -> unit;
}

(* How long a restarted replica waits for peer catch-up replies before
   giving up on the missing ones: the algorithm's own propagation bound
   plus a generous allowance for TCP reconnection — peers may themselves
   be mid-restart.  The freeze ends as soon as every peer answers, so the
   constant only caps the unresponsive-peer case. *)
let catchup_grace_us = 1_500_000

module Make (W : Wire.WIRED) = struct
  module C = Codec.Make (W.C)
  module R = Runtime.Replica.Make (W.L.D)
  module P = Persist.Make (W.C)

  type handle = {
    config : config;
    transport : R.event Runtime.Transport_intf.t;
    node : R.node;
    recorder : (Obs.Recorder.t * (unit -> unit)) option;
        (** installed recorder and its trace-file closer *)
    store : Durable.Store.t option;
    snap_stop : bool Atomic.t;
    snap_thread : Thread.t option;  (** checkpoint cadence *)
    mutable handle_stopped : bool;
  }

  let hello_of cfg =
    {
      Codec.pid = cfg.pid;
      n = cfg.params.Core.Params.n;
      d = cfg.params.Core.Params.d;
      u = cfg.params.Core.Params.u;
      eps = cfg.params.Core.Params.eps;
      x = cfg.params.Core.Params.x;
      obj_tag = W.C.obj_tag;
      shards = 0;
    }

  (* Accept a peer iff it runs the same protocol instance: same object,
     same (n, d, u, ε, X).  A mismatched peer would silently break the
     admissibility assumptions, so it is rejected loudly instead. *)
  let classify_hello cfg frame =
    match C.decode_payload frame with
    | Ok (C.Hello h) ->
        let mine = hello_of cfg in
        if h.Codec.obj_tag <> mine.Codec.obj_tag then
          Tcp_transport.Reject
            (Printf.sprintf "object mismatch (peer %d, ours %d)"
               h.Codec.obj_tag mine.Codec.obj_tag)
        else if
          h.Codec.n <> mine.Codec.n
          || h.Codec.d <> mine.Codec.d
          || h.Codec.u <> mine.Codec.u
          || h.Codec.eps <> mine.Codec.eps
          || h.Codec.x <> mine.Codec.x
        then
          Tcp_transport.Reject
            (Printf.sprintf
               "parameter mismatch: peer %d has (n=%d d=%d u=%d eps=%d x=%d)"
               h.Codec.pid h.Codec.n h.Codec.d h.Codec.u h.Codec.eps h.Codec.x)
        else if h.Codec.shards <> mine.Codec.shards then
          Tcp_transport.Reject
            (Printf.sprintf "shard topology mismatch (peer %d, ours %d)"
               h.Codec.shards mine.Codec.shards)
        else if h.Codec.pid < 0 || h.Codec.pid >= mine.Codec.n then
          Tcp_transport.Reject (Printf.sprintf "bad peer pid %d" h.Codec.pid)
        else Tcp_transport.Peer h.Codec.pid
    | Ok _ -> Tcp_transport.Client
    | Error e -> Tcp_transport.Reject ("bad handshake: " ^ e)

  let entry_of ~op ~time ~pid =
    { R.Alg.op; ts = Prelude.Stamp.make ~time ~pid }

  (* An unsharded serve stack only hosts shard 0; frames tagged for any
     other shard indicate a topology mismatch upstream and are dropped. *)
  let decode_peer ~me ~src frame =
    match C.decode_payload frame with
    | Ok (C.Entry { op; time; pid; trace; op_id; shard = 0 }) ->
        Obs.Recorder.emit ~pid:me ~kind:Obs.Event.Recv ~trace ~a:src ();
        Some (R.of_wire (R.Wire_entry (entry_of ~op ~time ~pid, trace, op_id)))
    | Ok (C.Catchup_req { time; cpid; shard = 0 }) ->
        Some (R.of_wire (R.Wire_catchup_req { time; cpid }))
    | Ok (C.Catchup_rep { entries; time; cpid; shard = 0 }) ->
        let entries =
          List.map
            (fun (op, time, pid, op_id) -> (entry_of ~op ~time ~pid, op_id))
            entries
        in
        Some (R.of_wire (R.Wire_catchup_rep { entries; time; cpid }))
    | Ok (C.Hb { stamp; epoch; qmode; seq; floor; shard = 0 }) ->
        Some (R.of_wire (R.Wire_quorum (R.Hb { stamp; epoch; qmode; seq; floor })))
    | Ok (C.Forward { qid; origin; op; op_id; trace; shard = 0 }) ->
        Some (R.of_wire (R.Wire_quorum (R.Forward { qid; origin; op; op_id; trace })))
    | Ok (C.Propose { epoch; qseq; time; origin; qid; op; op_id; trace; shard = 0 })
      ->
        Some
          (R.of_wire
             (R.Wire_quorum
                (R.Propose
                   {
                     epoch;
                     qseq;
                     p =
                       {
                         R.q_time = time;
                         q_op = op;
                         q_origin = origin;
                         q_qid = qid;
                         q_op_id = op_id;
                         q_trace = trace;
                       };
                   })))
    | Ok (C.Qack { epoch; qseq; shard = 0 }) ->
        Some (R.of_wire (R.Wire_quorum (R.Qack { epoch; qseq })))
    | Ok (C.Qcommit { epoch; qseq; shard = 0 }) ->
        Some (R.of_wire (R.Wire_quorum (R.Qcommit { epoch; qseq })))
    | Ok (C.Fnack { qid; shard = 0 }) ->
        Some (R.of_wire (R.Wire_quorum (R.Fnack { qid })))
    | Ok (C.Qfill { epoch; from_seq; shard = 0 }) ->
        Some (R.of_wire (R.Wire_quorum (R.Qfill { epoch; from_seq })))
    | Ok (C.Ping { seq; t0; shard = 0 }) ->
        Some (R.of_wire (R.Wire_sync (R.Sping { seq; t0 })))
    | Ok (C.Pong { seq; t0; t_rx; t_tx; shard = 0 }) ->
        Some (R.of_wire (R.Wire_sync (R.Spong { seq; t0; t_rx; t_tx })))
    | Ok _ | Error _ -> None

  let encode_peer ev =
    match R.wire_view ev with
    | Some (R.Wire_entry ((e : R.Alg.entry), trace, op_id)) ->
        C.encode
          (C.Entry
             {
               op = e.R.Alg.op;
               time = e.R.Alg.ts.Prelude.Stamp.time;
               pid = e.R.Alg.ts.Prelude.Stamp.pid;
               trace;
               op_id;
               shard = 0;
             })
    | Some (R.Wire_catchup_req { time; cpid }) ->
        C.encode (C.Catchup_req { time; cpid; shard = 0 })
    | Some (R.Wire_catchup_rep { entries; time; cpid }) ->
        let entries =
          List.map
            (fun ((e : R.Alg.entry), op_id) ->
              ( e.R.Alg.op,
                e.R.Alg.ts.Prelude.Stamp.time,
                e.R.Alg.ts.Prelude.Stamp.pid,
                op_id ))
            entries
        in
        C.encode (C.Catchup_rep { entries; time; cpid; shard = 0 })
    | Some (R.Wire_quorum q) ->
        C.encode
          (match q with
          | R.Hb { stamp; epoch; qmode; seq; floor } ->
              C.Hb { stamp; epoch; qmode; seq; floor; shard = 0 }
          | R.Forward { qid; origin; op; op_id; trace } ->
              C.Forward { qid; origin; op; op_id; trace; shard = 0 }
          | R.Propose { epoch; qseq; p } ->
              C.Propose
                {
                  epoch;
                  qseq;
                  time = p.R.q_time;
                  origin = p.R.q_origin;
                  qid = p.R.q_qid;
                  op = p.R.q_op;
                  op_id = p.R.q_op_id;
                  trace = p.R.q_trace;
                  shard = 0;
                }
          | R.Qack { epoch; qseq } -> C.Qack { epoch; qseq; shard = 0 }
          | R.Qcommit { epoch; qseq } -> C.Qcommit { epoch; qseq; shard = 0 }
          | R.Fnack { qid } -> C.Fnack { qid; shard = 0 }
          | R.Qfill { epoch; from_seq } ->
              C.Qfill { epoch; from_seq; shard = 0 })
    | Some (R.Wire_sync s) ->
        C.encode
          (match s with
          | R.Sping { seq; t0 } -> C.Ping { seq; t0; shard = 0 }
          | R.Spong { seq; t0; t_rx; t_tx } ->
              C.Pong { seq; t0; t_rx; t_tx; shard = 0 })
    | None ->
        (* Invoke/Stop/… are local-only events; the replica never sends
           them, so reaching here is a wiring bug. *)
        invalid_arg "Serve.encode_peer: local event on the wire"

  (* Wire-lane classification: heartbeats (doubling as mode announcements),
     sync probes, and catch-up frames ride the control lane so the failure
     detector and ε estimator stay live when data load saturates a link;
     everything else (entries, quorum ordering traffic) is data and may be
     shed under overload. *)
  let lane_of ev =
    match R.wire_view ev with
    | Some (R.Wire_quorum (R.Hb _))
    | Some (R.Wire_sync _)
    | Some (R.Wire_catchup_req _)
    | Some (R.Wire_catchup_rep _) ->
        Lanes.Ctrl
    | Some _ | None -> Lanes.Data

  (* [wrap] is the chaos layer's hook ({!Runtime.Transport_intf.wrapper}):
     applied outermost, around the TCP transport, with the cluster's shared
     clock epoch as the fault-window origin. *)
  let start ?(listener : Tcp_transport.listener option)
      ?(wrap : Runtime.Transport_intf.wrapper option) (cfg : config) =
    let host, port = cfg.addrs.(cfg.pid) in
    let listener =
      match listener with Some l -> l | None -> Tcp_transport.listen ~host ~port
    in
    (* The node is created after the transport, so client connections that
       race startup briefly spin on [node_ref]. *)
    let node_ref = ref None in
    let transport_ref = ref None in
    let rec the_node () =
      match !node_ref with
      | Some node -> node
      | None ->
          Prelude.Mclock.sleep_us 1_000;
          the_node ()
    in
    let admission = Admission.create () in
    let on_client ~first conn =
      let reply msg = Tcp_transport.conn_write conn (C.encode msg) in
      let handle_frame frame =
        match C.decode_payload frame with
        | Ok (C.Invoke { op; trace; op_id; shard; deadline }) -> (
            let now = Prelude.Mclock.now_us () in
            if deadline > 0 && now > deadline then begin
              (* Already late at the door: executing it would be dead work
                 the client stopped waiting for. *)
              Obs.Recorder.emit ~pid:cfg.pid ~kind:Obs.Event.Shed ~trace
                ~a:Obs.Event.shed_deadline ~b:shard ();
              reply (C.Shed { reason = "shed: deadline passed"; shard })
            end
            else
              match
                Admission.try_admit admission ~now_us:now ~deadline_us:deadline
              with
              | Admission.Shed reason ->
                  Obs.Recorder.emit ~pid:cfg.pid ~kind:Obs.Event.Shed ~trace
                    ~a:Obs.Event.shed_admission ~b:shard ();
                  reply (C.Shed { reason; shard })
              | Admission.Admitted -> (
                  let finish () =
                    Admission.finish admission
                      ~elapsed_us:(Prelude.Mclock.now_us () - now)
                  in
                  match
                    R.node_invoke ~trace ~op_id ~deadline (the_node ()) op
                  with
                  | r ->
                      finish ();
                      reply (C.Result { result = r; shard })
                  | exception R.Stopped ->
                      finish ();
                      reply (C.Error_msg "replica stopped")
                  | exception R.Retry_later why ->
                      finish ();
                      (* The client must back off and retry with the same op
                         id; [Client.retryable] recognises both answers.  A
                         "shed: ..." refusal (replica-side deadline check)
                         travels as the dedicated frame — the replica already
                         emitted its own [Shed] event. *)
                      if String.length why >= 4 && String.sub why 0 4 = "shed"
                      then reply (C.Shed { reason = why; shard })
                      else reply (C.Error_msg ("retry: " ^ why))))
        | Ok C.Stats_req ->
            let stats =
              match !transport_ref with
              | Some t -> Runtime.Transport_intf.stats t
              | None ->
                  {
                    Runtime.Transport_intf.sent = 0;
                    dropped = 0;
                    link = Some Runtime.Transport_intf.no_links;
                  }
            in
            reply (C.Stats stats)
        | Ok m ->
            ignore
              (reply
                 (C.Error_msg
                    (Format.asprintf "unexpected frame %a" C.pp_msg m)));
            false
        | Error e ->
            ignore (reply (C.Error_msg ("bad frame: " ^ e)));
            false
      in
      let rec loop frame =
        if handle_frame frame then
          match Tcp_transport.conn_read_frame conn with
          | Some next -> loop next
          | None -> ()
      in
      loop first
    in
    (* The recorder goes in before the transport so connection races at
       startup are already traced.  It is process-global: one traced serve
       stack per process (the in-process test harness passes [trace =
       None]). *)
    let recorder =
      match cfg.trace with
      | None -> None
      | Some path ->
          let epoch_us =
            match cfg.start_us with
            | Some s -> s
            | None -> Prelude.Mclock.now_us ()
          in
          let sink, flush, close = Obs.Recorder.file_sink path in
          let r = Obs.Recorder.start ~epoch_us ~sink ~flush () in
          Obs.Recorder.install r;
          Some (r, close)
    in
    let transport =
      Tcp_transport.create ~me:cfg.pid ~addrs:cfg.addrs ~listener
        ~hello:(C.encode (C.Hello (hello_of cfg)))
        ~classify_hello:(classify_hello cfg)
        ~decode_peer:(decode_peer ~me:cfg.pid) ~encode_peer ~on_client
        ~lane_of ~log:cfg.log ()
    in
    let transport =
      match wrap with
      | None -> transport
      | Some w ->
          let start_us =
            match cfg.start_us with
            | Some s -> s
            | None -> Prelude.Mclock.now_us ()
          in
          w.Runtime.Transport_intf.wrap ~start_us transport
    in
    transport_ref := Some transport;
    (* Durable state loads before the node exists: the node seeds its
       object, dedup tables and high-water mark from the recovered prefix,
       then (if this is a restart rather than genesis) catches up from
       peers once the transport is live. *)
    let durable =
      match cfg.durable with
      | None -> None
      | Some dir ->
          let t0 = Prelude.Mclock.now_us () in
          let meta =
            Printf.sprintf "timebounds replica=%d obj=%d n=%d" cfg.pid
              W.C.obj_tag cfg.params.Core.Params.n
          in
          (match Durable.Store.open_ ~dir ~meta ~fsync:cfg.fsync with
          | Error e ->
              cfg.log (Printf.sprintf "replica %d: %s" cfg.pid e);
              failwith e
          | Ok (store, recovered) ->
              let snap = P.recovered_of recovered in
              let rs =
                {
                  R.r_obj = snap.P.s_obj;
                  r_applied =
                    List.map
                      (fun (a : P.applied) ->
                        ( entry_of ~op:a.P.op ~time:a.P.time ~pid:a.P.pid,
                          a.P.result,
                          a.P.op_id ))
                      snap.P.s_applied;
                }
              in
              let on_apply (e : R.Alg.entry) result op_id =
                Durable.Store.append store
                  (P.encode_record
                     {
                       P.op = e.R.Alg.op;
                       time = e.R.Alg.ts.Prelude.Stamp.time;
                       pid = e.R.Alg.ts.Prelude.Stamp.pid;
                       op_id;
                       result;
                     })
              in
              let recovery =
                {
                  R.catchup_wait_us =
                    cfg.params.Core.Params.d + cfg.params.Core.Params.eps
                    + catchup_grace_us;
                  on_apply;
                  recovered = Some rs;
                }
              in
              let replayed = List.length snap.P.s_applied in
              let took = Prelude.Mclock.now_us () - t0 in
              Some (store, recovery, recovered.Durable.Store.r_fresh, replayed, took))
    in
    let recovery = Option.map (fun (_, r, _, _, _) -> r) durable in
    (* Compose the caller's fallback hooks with this stack's own logging —
       the "mode: quorum(...)" / "mode: fast(...)" lines are what the CI
       permanent-kill smoke greps for. *)
    let fallback =
      Option.map
        (fun (q : Quorum.Config.t) ->
          {
            q with
            Quorum.Config.on_mode =
              (fun ~quorum ~epoch ~seq ->
                cfg.log
                  (Printf.sprintf "replica %d: mode: %s(epoch=%d seq=%d)"
                     cfg.pid
                     (if quorum then "quorum" else "fast")
                     epoch seq);
                q.Quorum.Config.on_mode ~quorum ~epoch ~seq);
            on_suspect =
              (fun ~peer ~suspected ->
                cfg.log
                  (Printf.sprintf "replica %d: %s peer %d" cfg.pid
                     (if suspected then "suspecting" else "cleared")
                     peer);
                q.Quorum.Config.on_suspect ~peer ~suspected);
          })
        cfg.fallback
    in
    (* Likewise for the sync hook — the "sync eps=..." line is what the CI
       sync smoke greps for. *)
    let sync =
      Option.map
        (fun (s : Sync.Config.t) ->
          {
            s with
            Sync.Config.on_eps =
              (fun ~eps_us ~peers ->
                cfg.log
                  (Printf.sprintf "replica %d: sync eps=%dus peers=%d"
                     cfg.pid eps_us peers);
                s.Sync.Config.on_eps ~eps_us ~peers);
          })
        cfg.sync
    in
    let node =
      R.node ~params:cfg.params ~transport ~pid:cfg.pid ~offset:cfg.offset
        ?start_us:cfg.start_us ?recovery ?fallback ?sync ()
    in
    node_ref := Some node;
    let store =
      match durable with
      | None -> None
      | Some (store, _, fresh, replayed, took) ->
          if not fresh then begin
            (* Restart, not genesis: announce the disk prefix and ask the
               peers for whatever landed while we were down. *)
            R.post_recover transport ~pid:cfg.pid;
            cfg.log
              (Printf.sprintf
                 "replica %d: recovered %d mutations from %s in %dµs; \
                  catching up"
                 cfg.pid replayed (Option.get cfg.durable) took);
            Obs.Recorder.emit ~pid:cfg.pid ~kind:Obs.Event.Recover ~a:replayed
              ~b:took ()
          end;
          Some store
    in
    let snap_stop = Atomic.make false in
    let snap_thread =
      match store with
      | Some store when cfg.snapshot_every > 0 ->
          (* Checkpoint cadence: poll the WAL length and, past the
             threshold, ask the replica loop for a consistent cut.  The
             callback runs inside the loop — the same thread as the
             [on_apply] appends — so capture and rotation cannot race an
             append. *)
          let body () =
            while not (Atomic.get snap_stop) do
              Prelude.Mclock.sleep_us 200_000;
              if
                (not (Atomic.get snap_stop))
                && Durable.Store.records_since_snapshot store
                   >= cfg.snapshot_every
              then
                R.request_snapshot transport ~pid:cfg.pid (fun view ->
                    let folded =
                      Durable.Store.records_since_snapshot store
                    in
                    Durable.Store.snapshot store
                      (P.encode_snapshot
                         {
                           P.s_obj = view.R.v_obj;
                           s_hwm_time = view.R.v_hwm_time;
                           s_hwm_pid = view.R.v_hwm_pid;
                           s_applied =
                             List.map
                               (fun ((e : R.Alg.entry), result, op_id) ->
                                 {
                                   P.op = e.R.Alg.op;
                                   time = e.R.Alg.ts.Prelude.Stamp.time;
                                   pid = e.R.Alg.ts.Prelude.Stamp.pid;
                                   op_id;
                                   result;
                                 })
                               view.R.v_applied;
                         });
                    Obs.Recorder.emit ~pid:cfg.pid ~kind:Obs.Event.Checkpoint
                      ~a:folded
                      ~b:(Durable.Store.generation store)
                      ())
            done
          in
          Some (Thread.create body ())
      | _ -> None
    in
    {
      config = cfg;
      transport;
      node;
      recorder;
      store;
      snap_stop;
      snap_thread;
      handle_stopped = false;
    }

  (* Stop order matters: cancelling the node first wakes client-handler
     threads blocked on invocation cells, so closing the transport (which
     joins its threads) cannot hang behind them.  The recorder is torn
     down last, after every emitting thread is gone. *)
  let stop handle =
    if not handle.handle_stopped then begin
      handle.handle_stopped <- true;
      Atomic.set handle.snap_stop true;
      let records = R.node_stop handle.node in
      Option.iter Thread.join handle.snap_thread;
      let stats = Runtime.Transport_intf.stats handle.transport in
      Runtime.Transport_intf.close handle.transport;
      (* The node is joined, so no more [on_apply] appends: sync what the
         fsync policy may still be buffering, then close. *)
      Option.iter
        (fun store ->
          Durable.Store.sync store;
          Durable.Store.close store)
        handle.store;
      (match handle.recorder with
      | None -> ()
      | Some (r, close) ->
          Obs.Recorder.uninstall ();
          Obs.Recorder.stop r;
          close ());
      (records, stats)
    end
    else ([], Runtime.Transport_intf.stats handle.transport)

  let stats handle = Runtime.Transport_intf.stats handle.transport

  (* ---- the [timebounds serve] process body ---- *)

  let run ?wrap (cfg : config) =
    let stop_requested = Atomic.make false in
    let request_stop _ = Atomic.set stop_requested true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
    (* Ignore SIGPIPE: a dead peer must surface as EPIPE on the write, not
       kill the process. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let handle = start ?wrap cfg in
    let host, port = cfg.addrs.(cfg.pid) in
    cfg.log
      (Printf.sprintf "replica %d: listening on %s:%d (%s, n=%d)" cfg.pid host
         port W.L.label cfg.params.Core.Params.n);
    let watched_parent = ref None in
    let set_watch pid = watched_parent := Some pid in
    let parent_alive () =
      match !watched_parent with
      | None -> true
      | Some pid -> ( match Unix.kill pid 0 with () -> true | exception _ -> false)
    in
    let rec wait () =
      if Atomic.get stop_requested then ()
      else if not (parent_alive ()) then
        cfg.log (Printf.sprintf "replica %d: parent gone, exiting" cfg.pid)
      else begin
        Prelude.Mclock.sleep_us 100_000;
        wait ()
      end
    in
    (set_watch, wait, handle)

  let run_until_signalled ?watch_parent ?wrap (cfg : config) =
    let set_watch, wait, handle = run ?wrap cfg in
    (match watch_parent with Some p -> set_watch p | None -> ());
    wait ();
    let records, stats = stop handle in
    cfg.log
      (Printf.sprintf "replica %d: stopped after %d ops; %s" cfg.pid
         (List.length records)
         (Format.asprintf "%a" Runtime.Transport_intf.pp_stats stats))
end
