(** Synchronous TCP client for a replica's client port — what the cluster
    load generator (and any external tool) speaks.

    A client connection opens with an [Invoke] frame (no [Hello]): the
    replica's acceptor classifies it as a client and serves it for the
    connection's lifetime.  The protocol is strict request/response —
    [Invoke op → Result r | Error_msg e] and [Stats_req → Stats s] — so a
    blocking read after each request is a complete client. *)

module Make (W : Wire.WIRED) = struct
  module C = Codec.Make (W.C)

  type t = {
    fd : Unix.file_descr;
    mutable residual : string;  (** bytes read past the last frame *)
  }

  let connect ~host ~port ?(attempts = 50) ?(retry_delay_us = 100_000) () =
    let addr =
      try Unix.ADDR_INET (Tcp_transport.resolve host, port)
      with Failure e -> failwith e
    in
    let rec go k =
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match
        Unix.connect fd addr;
        Unix.setsockopt fd Unix.TCP_NODELAY true
      with
      | () -> Ok { fd; residual = "" }
      | exception Unix.Unix_error (err, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if k <= 1 then
            Error
              (Printf.sprintf "connect %s:%d: %s" host port
                 (Unix.error_message err))
          else begin
            Prelude.Mclock.sleep_us retry_delay_us;
            go (k - 1)
          end
    in
    go (max 1 attempts)

  let send t msg =
    let s = C.encode msg in
    match
      let b = Bytes.unsafe_of_string s in
      let rec go off =
        if off < String.length s then
          go (off + Unix.write t.fd b off (String.length s - off))
      in
      go 0
    with
    | () -> Ok ()
    | exception (Unix.Unix_error _ | Sys_error _) -> Error "connection lost"

  (* [timeout_us]: bound the wait for a reply via [SO_RCVTIMEO].  A
     timed-out request leaves the connection in an unknown state (the
     reply may still be in flight), so callers should close and reconnect
     before retrying — which is exactly what the idempotent-retry loop in
     [Cluster] does. *)
  let set_timeout t us =
    try
      Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO
        (match us with
        | None -> 0.
        | Some us -> float_of_int (max 1 us) /. 1e6)
    with Unix.Unix_error _ -> ()

  let recv t =
    let chunk = Bytes.create 8192 in
    let rec go acc =
      match C.decode acc with
      | Codec.Got (msg, next) ->
          t.residual <- String.sub acc next (String.length acc - next);
          Ok msg
      | Codec.Corrupt e -> Error ("corrupt reply: " ^ e)
      | Codec.Need_more _ -> (
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error "connection closed by replica"
          | n -> go (acc ^ Bytes.sub_string chunk 0 n)
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              Error "timeout waiting for reply"
          | exception (Unix.Unix_error _ | Sys_error _) ->
              Error "connection lost")
    in
    go t.residual

  let rpc t msg =
    match send t msg with Error e -> Error e | Ok () -> recv t

  let invoke ?(trace = 0) ?(op_id = 0) ?(shard = 0) ?(deadline = 0) ?timeout_us
      t op =
    set_timeout t timeout_us;
    match rpc t (C.Invoke { op; trace; op_id; shard; deadline }) with
    | Ok (C.Result { result; shard = rs }) ->
        if rs = shard then Ok result
        else
          Error
            (Printf.sprintf "replica error: shard mismatch (sent %d, got %d)"
               shard rs)
    | Ok (C.Shed { reason; _ }) ->
        (* Overload refusal: the op was *not* executed, so retrying (same
           op id, same deadline, capped backoff) is always safe. *)
        Error reason
    | Ok (C.Error_msg e) -> Error ("replica error: " ^ e)
    | Ok m -> Error (Format.asprintf "unexpected reply %a" C.pp_msg m)
    | Error e -> Error e

  (* Which invocation errors are safe and useful to retry (with the same
     op id)?  Timeouts and lost/closed connections — the op may or may not
     have landed, which is what idempotence is for — the replica's explicit
     back-off answer for an in-flight replay, and overload sheds (the op
     was refused before execution). *)
  let retryable e =
    let has_sub sub =
      let ls = String.length sub and le = String.length e in
      let rec go i = i + ls <= le && (String.sub e i ls = sub || go (i + 1)) in
      go 0
    in
    has_sub "timeout" || has_sub "connection" || has_sub "retry"
    || has_sub "shed"

  let stats t =
    match rpc t C.Stats_req with
    | Ok (C.Stats s) -> Ok s
    | Ok (C.Error_msg e) -> Error ("replica error: " ^ e)
    | Ok m -> Error (Format.asprintf "unexpected reply %a" C.pp_msg m)
    | Error e -> Error e

  let close t =
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
end
