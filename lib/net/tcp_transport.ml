(** See the interface.  Thread structure per process:

    - 1 acceptor (select loop, so [close] can interrupt it);
    - 1 reader per accepted connection (peer entries → local mailbox,
      client connections → [on_client]);
    - 1 writer per outgoing peer link (bounded queue, reconnect/backoff).

    The replica's event loop only ever touches the mailbox; all socket IO
    happens on these helper threads. *)

type listener = { listen_fd : Unix.file_descr; host : string; port : int }

let resolve host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } -> failwith ("cannot resolve " ^ host)
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found -> failwith ("cannot resolve " ^ host))

let listen ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (resolve host, port));
  Unix.listen fd 64;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { listen_fd = fd; host; port }

type hello_verdict = Peer of int | Client | Reject of string

(* ---- outgoing peer links ---- *)

type link = {
  dst : int;
  lanes : string Lanes.t;
      (** two-lane write queue: control frames (heartbeats, sync probes,
          catch-up) always preempt data frames, and the data lane sheds —
          counted — instead of buffering without bound *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable fd : Unix.file_descr option;
  mutable attempts : int;  (** connect attempts so far (for reconnects) *)
  mutable backoff : int;
      (** next reconnect delay, µs; doubles per failure up to the cap and
          resets to the minimum once a connect + Hello succeeds, so a healed
          link probes at full cadence again instead of staying pinned at the
          maximum backoff (which would starve failure-detector recovery) *)
}

type counters = {
  sent : int Atomic.t;
  dropped : int Atomic.t;
  reconnects : int Atomic.t;
  bytes_out : int Atomic.t;
  bytes_in : int Atomic.t;
  disconnected_us : int Atomic.t;
      (** cumulative µs links spent wanting a connection they did not have *)
  queue_hwm : int Atomic.t;
      (** data-lane write-queue high-water mark, max over links *)
  ctrl_hwm : int Atomic.t;
      (** control-lane high-water mark, max over links *)
  lane_shed : int Atomic.t;
      (** frames shed from full data lanes, summed over links *)
}

let atomic_max a v =
  let rec go () =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then go ()
  in
  go ()

type client_conn = {
  conn_fd : Unix.file_descr;
  mutable residual : string;  (** bytes read past the frame last returned *)
  ctrs : counters;
}

(* Sockets carry SO_SNDTIMEO, so a blocking [write] to a wedged peer
   returns [EAGAIN] every slice instead of parking the thread on the
   kernel's send buffer indefinitely.  [write_all] resumes from the same
   offset (never restarting the frame mid-stream) and converts a stall
   longer than [stall_after_us] into [ETIMEDOUT], which callers already
   treat as a dead connection — the frame is retransmitted whole on the
   next connection, and a stopping transport's writer gets back to its
   loop head (where it checks the flag) within one slice. *)
let write_all ?(stall_after_us = max_int) fd s =
  let len = String.length s in
  let b = Bytes.unsafe_of_string s in
  let started = Prelude.Mclock.now_us () in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          if Prelude.Mclock.now_us () - started >= stall_after_us then
            raise (Unix.Unix_error (Unix.ETIMEDOUT, "write", ""))
          else go off
  in
  go 0

let send_timeout_slice_s = 0.25

let set_send_timeout fd =
  try Unix.setsockopt_float fd Unix.SO_SNDTIMEO send_timeout_slice_s
  with Unix.Unix_error _ -> ()

let conn_write conn s =
  match write_all ~stall_after_us:2_000_000 conn.conn_fd s with
  | () ->
      ignore (Atomic.fetch_and_add conn.ctrs.bytes_out (String.length s));
      true
  | exception (Unix.Unix_error _ | Sys_error _) -> false

let conn_read_frame conn =
  let chunk = Bytes.create 8192 in
  let rec go acc =
    match Codec.decode_frame acc with
    | Codec.Got (frame, next) ->
        conn.residual <- String.sub acc next (String.length acc - next);
        Some frame
    | Codec.Corrupt _ -> None
    | Codec.Need_more _ -> (
        match Unix.read conn.conn_fd chunk 0 (Bytes.length chunk) with
        | 0 -> None
        | n ->
            ignore (Atomic.fetch_and_add conn.ctrs.bytes_in n);
            go (acc ^ Bytes.sub_string chunk 0 n)
        | exception (Unix.Unix_error _ | Sys_error _) -> None)
  in
  go conn.residual

(* ---- transport state ---- *)

type 'msg state = {
  me : int;
  n : int;
  addrs : (string * int) array;
  hello : string;
  listener : listener;
  box : (int * 'msg) Runtime.Mailbox.t;
  links : link array;
  ctrs : counters;
  stopping : bool Atomic.t;
  accepted : Unix.file_descr list ref;
  accepted_lock : Mutex.t;
  write_stall_us : int;
  backoff_min_us : int;
  backoff_max_us : int;
  log : string -> unit;
}

let quiet_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let quiet_shutdown fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* Sleep in short slices so a stopping transport is never stuck in a long
   backoff pause. *)
let backoff_sleep st us =
  let slice = 50_000 in
  let rec go left =
    if left > 0 && not (Atomic.get st.stopping) then begin
      Prelude.Mclock.sleep_us (min slice left);
      go (left - slice)
    end
  in
  go us

let try_connect st link =
  let host, port = st.addrs.(link.dst) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_INET (resolve host, port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    set_send_timeout fd;
    write_all ~stall_after_us:st.write_stall_us fd st.hello
  with
  | () ->
      ignore (Atomic.fetch_and_add st.ctrs.bytes_out (String.length st.hello));
      Some fd
  | exception (Unix.Unix_error _ | Sys_error _ | Failure _) ->
      quiet_close fd;
      None

(* Connect (or reconnect) [link], sleeping with capped exponential backoff
   between attempts; every attempt beyond the link's first counts as a
   reconnect.  [None] only when the transport is stopping.  Time spent
   inside here without a connection is charged to [disconnected_us] — the
   raw material for attributing a verdict to a partition. *)
let ensure_connected st link =
  let entered = Prelude.Mclock.now_us () in
  let charge () =
    let waited = Prelude.Mclock.now_us () - entered in
    if waited > 0 then
      ignore (Atomic.fetch_and_add st.ctrs.disconnected_us waited)
  in
  let rec go () =
    if Atomic.get st.stopping then begin
      charge ();
      None
    end
    else
      match link.fd with
      | Some fd -> Some fd
      | None ->
          if link.attempts > 0 then Atomic.incr st.ctrs.reconnects;
          link.attempts <- link.attempts + 1;
          (match try_connect st link with
          | Some fd ->
              Mutex.lock link.lock;
              link.fd <- Some fd;
              link.backoff <- st.backoff_min_us;
              Mutex.unlock link.lock;
              charge ();
              Some fd
          | None ->
              let backoff = link.backoff in
              link.backoff <- min (2 * backoff) st.backoff_max_us;
              backoff_sleep st backoff;
              go ())
  in
  go ()

let drop_connection link =
  Mutex.lock link.lock;
  (match link.fd with
  | Some fd ->
      link.fd <- None;
      quiet_shutdown fd;
      quiet_close fd
  | None -> ());
  Mutex.unlock link.lock

let writer_loop st link =
  let rec loop () =
    Mutex.lock link.lock;
    while Lanes.is_empty link.lanes && not (Atomic.get st.stopping) do
      Condition.wait link.cond link.lock
    done;
    if Atomic.get st.stopping then Mutex.unlock link.lock
    else begin
      (* Peek, write, then drop: a frame interrupted by a connection
         failure is retransmitted on the fresh connection (the receiver
         discarded the truncated copy at EOF).  The drop names the lane the
         peek returned, so a control frame arriving during the write never
         gets removed in place of the data frame just written. *)
      let lane, frame =
        match Lanes.peek link.lanes with
        | Some lf -> lf
        | None -> assert false
      in
      Mutex.unlock link.lock;
      (match ensure_connected st link with
      | None -> ()
      | Some fd -> (
          match write_all ~stall_after_us:st.write_stall_us fd frame with
          | () ->
              ignore
                (Atomic.fetch_and_add st.ctrs.bytes_out (String.length frame));
              Mutex.lock link.lock;
              Lanes.drop link.lanes lane;
              Mutex.unlock link.lock
          | exception (Unix.Unix_error _ | Sys_error _) ->
              drop_connection link));
      if not (Atomic.get st.stopping) then loop ()
    end
  in
  loop ();
  drop_connection link

(* ---- incoming connections ---- *)

(* Incremental frame stream over a connection; calls [on_frame] until EOF
   or corruption.  Returns the leftover bytes past the last frame handed
   out (for handing a client connection over mid-buffer). *)
let read_frames st fd ~(on_frame : Codec.frame -> rest:string -> bool) =
  let chunk = Bytes.create 8192 in
  let rec go acc =
    match Codec.decode_frame acc with
    | Codec.Got (frame, next) ->
        let rest = String.sub acc next (String.length acc - next) in
        if on_frame frame ~rest then go rest else ()
    | Codec.Corrupt e ->
        st.log (Printf.sprintf "replica %d: corrupt frame: %s" st.me e)
    | Codec.Need_more _ -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            ignore (Atomic.fetch_and_add st.ctrs.bytes_in n);
            go (acc ^ Bytes.sub_string chunk 0 n)
        | exception (Unix.Unix_error _ | Sys_error _) -> ())
  in
  go ""

(* Deregister and close an accepted fd exactly once: whoever removes it
   from the list (this reader on exit, or [close] draining it) owns the
   actual [Unix.close], so a reused descriptor number is never closed by a
   stale reference. *)
let release_conn st fd =
  Mutex.lock st.accepted_lock;
  let mine = List.exists (fun f -> f == fd) !(st.accepted) in
  st.accepted := List.filter (fun f -> f != fd) !(st.accepted);
  Mutex.unlock st.accepted_lock;
  if mine then begin
    quiet_shutdown fd;
    quiet_close fd
  end

let reader st classify_hello decode_peer on_client fd =
  let role = ref `Unknown in
  read_frames st fd ~on_frame:(fun frame ~rest ->
      match !role with
      | `Peer src ->
          (match decode_peer ~src frame with
          | Some msg ->
              Runtime.Mailbox.put st.box
                ~deliver_at:(Prelude.Mclock.now_us ())
                (src, msg)
          | None -> ());
          true
      | `Unknown -> (
          match classify_hello frame with
          | Peer src ->
              role := `Peer src;
              true
          | Reject why ->
              st.log
                (Printf.sprintf "replica %d: rejected connection: %s" st.me why);
              false
          | Client ->
              (match on_client with
              | Some handler ->
                  handler ~first:frame
                    { conn_fd = fd; residual = rest; ctrs = st.ctrs }
              | None ->
                  st.log
                    (Printf.sprintf
                       "replica %d: unexpected client connection" st.me));
              false));
  release_conn st fd

let acceptor_loop st classify_hello decode_peer on_client =
  let rec loop () =
    if not (Atomic.get st.stopping) then begin
      match Unix.select [ st.listener.listen_fd ] [] [] 0.2 with
      | [], _, _ -> loop ()
      | _ :: _, _, _ -> (
          match Unix.accept st.listener.listen_fd with
          | fd, _ ->
              (try Unix.setsockopt fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              set_send_timeout fd;
              Mutex.lock st.accepted_lock;
              st.accepted := fd :: !(st.accepted);
              Mutex.unlock st.accepted_lock;
              ignore
                (Thread.create
                   (reader st classify_hello decode_peer on_client)
                   fd);
              loop ()
          | exception Unix.Unix_error _ -> if Atomic.get st.stopping then () else loop ())
      | exception Unix.Unix_error _ -> if Atomic.get st.stopping then () else loop ()
    end
  in
  loop ()

(* ---- assembly ---- *)

let create (type msg) ~me ~addrs ~listener ~hello ~classify_hello
    ~(decode_peer : src:int -> Codec.frame -> msg option)
    ~(encode_peer : msg -> string) ?on_client ?(max_queue = 4096)
    ?(max_lane_bytes = 4 lsl 20) ?(lane_of : (msg -> Lanes.lane) option)
    ?(write_stall_us = 2_000_000) ?(backoff_min_us = 20_000)
    ?(backoff_max_us = 1_000_000) ?(log = fun s -> prerr_endline s) () :
    msg Runtime.Transport_intf.t =
  let n = Array.length addrs in
  if me < 0 || me >= n then invalid_arg "Tcp_transport.create: me out of range";
  let lane_of = match lane_of with Some f -> f | None -> fun _ -> Lanes.Data in
  let st =
    {
      me;
      n;
      addrs;
      hello;
      listener;
      box = Runtime.Mailbox.create ();
      links =
        Array.init n (fun dst ->
            {
              dst;
              lanes =
                Lanes.create ~max_data_frames:max_queue
                  ~max_data_bytes:max_lane_bytes ~size_of:String.length ();
              lock = Mutex.create ();
              cond = Condition.create ();
              fd = None;
              attempts = 0;
              backoff = backoff_min_us;
            });
      ctrs =
        {
          sent = Atomic.make 0;
          dropped = Atomic.make 0;
          reconnects = Atomic.make 0;
          bytes_out = Atomic.make 0;
          bytes_in = Atomic.make 0;
          disconnected_us = Atomic.make 0;
          queue_hwm = Atomic.make 0;
          ctrl_hwm = Atomic.make 0;
          lane_shed = Atomic.make 0;
        };
      stopping = Atomic.make false;
      accepted = ref [];
      accepted_lock = Mutex.create ();
      write_stall_us;
      backoff_min_us;
      backoff_max_us;
      log;
    }
  in
  let acceptor =
    Thread.create (fun () -> acceptor_loop st classify_hello decode_peer on_client) ()
  in
  let writers =
    Array.to_list st.links
    |> List.filter_map (fun link ->
           if link.dst = me then None
           else Some (Thread.create (fun () -> writer_loop st link) ()))
  in
  let send ~src:_ ~dst ~trace msg =
    Atomic.incr st.ctrs.sent;
    Obs.Recorder.emit ~pid:me ~kind:Obs.Event.Send ~trace ~a:dst ();
    if dst = me then
      Runtime.Mailbox.put st.box ~deliver_at:(Prelude.Mclock.now_us ()) (me, msg)
    else if dst < 0 || dst >= n then
      invalid_arg "Tcp_transport.send: dst out of range"
    else begin
      let frame = encode_peer msg in
      let lane = lane_of msg in
      let link = st.links.(dst) in
      Mutex.lock link.lock;
      let shed = Lanes.push link.lanes lane frame in
      let ctrl_depth = Lanes.ctrl_length link.lanes in
      let data_depth = Lanes.data_length link.lanes in
      Condition.signal link.cond;
      Mutex.unlock link.lock;
      if shed > 0 then begin
        ignore (Atomic.fetch_and_add st.ctrs.dropped shed);
        ignore (Atomic.fetch_and_add st.ctrs.lane_shed shed);
        if Obs.Recorder.active () then
          for _ = 1 to shed do
            Obs.Recorder.emit ~pid:me ~kind:Obs.Event.Shed ~trace
              ~a:Obs.Event.shed_queue ~b:dst ()
          done
      end;
      let prev_ctrl = Atomic.get st.ctrs.ctrl_hwm in
      let prev_data = Atomic.get st.ctrs.queue_hwm in
      atomic_max st.ctrs.ctrl_hwm ctrl_depth;
      atomic_max st.ctrs.queue_hwm data_depth;
      (* Sample lane depths into the trace only when a lane sets a new
         high-water mark — a counter per send would double event volume. *)
      if Obs.Recorder.active () then begin
        if ctrl_depth > prev_ctrl then
          Obs.Recorder.emit ~pid:me ~kind:Obs.Event.Queue_depth
            ~a:Obs.Event.lane_ctrl ~b:ctrl_depth ();
        if data_depth > prev_data then
          Obs.Recorder.emit ~pid:me ~kind:Obs.Event.Queue_depth
            ~a:Obs.Event.lane_data ~b:data_depth ()
      end
    end
  in
  let post ~src ~dst:_ msg =
    Runtime.Mailbox.put st.box ~deliver_at:(Prelude.Mclock.now_us ()) (src, msg)
  in
  let recv ~me:_ ~deadline = Runtime.Mailbox.take st.box ~deadline in
  let depth ~me:_ = Runtime.Mailbox.length st.box in
  let stats () =
    {
      Runtime.Transport_intf.sent = Atomic.get st.ctrs.sent;
      dropped = Atomic.get st.ctrs.dropped;
      link =
        Some
          {
            Runtime.Transport_intf.reconnects = Atomic.get st.ctrs.reconnects;
            bytes_out = Atomic.get st.ctrs.bytes_out;
            bytes_in = Atomic.get st.ctrs.bytes_in;
            disconnected_us = Atomic.get st.ctrs.disconnected_us;
            queue_hwm = Atomic.get st.ctrs.queue_hwm;
            ctrl_hwm = Atomic.get st.ctrs.ctrl_hwm;
            lane_shed = Atomic.get st.ctrs.lane_shed;
          };
    }
  in
  let close () =
    if not (Atomic.exchange st.stopping true) then begin
      (* Wake writers (blocked on their condition) and break any write in
         progress, then interrupt the acceptor and all readers. *)
      Array.iter
        (fun link ->
          Mutex.lock link.lock;
          (match link.fd with Some fd -> quiet_shutdown fd | None -> ());
          Condition.broadcast link.cond;
          Mutex.unlock link.lock)
        st.links;
      quiet_close st.listener.listen_fd;
      Thread.join acceptor;
      List.iter Thread.join writers;
      Mutex.lock st.accepted_lock;
      let conns = !(st.accepted) in
      st.accepted := [];
      Mutex.unlock st.accepted_lock;
      (* Readers exit on the shutdown-induced EOF; they are not joined —
         they only touch their own fd, the mailbox and atomic counters. *)
      List.iter
        (fun fd ->
          quiet_shutdown fd;
          quiet_close fd)
        conns
    end
  in
  { Runtime.Transport_intf.n; send; post; recv; depth; stats; close }
