(** Multi-process cluster orchestrator: forks [n] [timebounds serve]
    processes on loopback TCP, drives them with the closed-loop load
    generator over the client port, and verifies the merged history with
    the same segmented Wing–Gong check as the in-process runtime.

    Timeline: all client-observed invoke/response times are stamped on the
    {e parent's} monotonic clock, so the history is on one timeline even
    though the replicas are separate processes.  History entries use the
    {e worker} id as the linearizability pid — two workers sharing a
    replica have overlapping intervals, and labelling them with the
    replica's pid would impose false same-process precedence constraints.

    Unlike the in-process load generator there is no replica-side history:
    the client-observed intervals are a superset of the replica-side ones
    ([invoke ≤ execute ≤ response]), so a history linearizable on the wider
    intervals is sound evidence (the converse — a violation — is always
    real).

    Failure handling: a monitor thread owns all [waitpid] reaping; an
    unexpected child exit (e.g. a replica killed mid-run) raises the abort
    flag, workers cut their rounds short, and the run reports a clean
    failure instead of hanging. *)

type child = {
  child_pid : int;  (** replica pid (0..n-1) *)
  mutable os_pid : int;  (** updated in place on supervised restart *)
  port : int;
}

type report = {
  label : string;
  params : Core.Params.t;  (** effective (slack included in [d], [u]) *)
  cfg_d : int;
  cfg_u : int;
  slack : int;
  mix : int * int * int;
  workers : int;
  seed : int;
  ops : int;
  completed : int;
  failed : int;  (** invocations that errored (connection lost, …) *)
  sheds : int;
      (** overload refusals observed by clients (then retried under the
          same op id and deadline) — the visible cost of protection *)
  wall_us : int;
  throughput : float;
  classes : Runtime.Loadgen.class_report list;
  replica_stats : (int * Runtime.Transport_intf.stats) list;
      (** per replica pid; missing replicas (died) are absent *)
  offsets : int array;
      (** effective per-replica clock offsets (seeded draw + injected skew) *)
  cuts : int list;  (** quiescent cut times, µs since the cluster epoch *)
  restarts : (int * int) list;
      (** supervised restarts as [(replica pid, µs since epoch)] *)
  aborted : string option;  (** why the run was cut short, if it was *)
  verdict : Runtime.Loadgen.verdict;
}

let ok r =
  r.failed = 0 && r.aborted = None
  && match r.verdict with Runtime.Loadgen.Linearizable _ -> true | _ -> false

let pp_report fmt r =
  let m, a, o = r.mix in
  Format.fprintf fmt
    "@[<v>cluster %s: %a (net d=%d u=%d, slack=%d) mix=%d:%d:%d workers=%d \
     seed=%d@,\
     %d/%d ops in %.3f s (%.0f ops/s)%s@,"
    r.label Core.Params.pp r.params r.cfg_d r.cfg_u r.slack m a o r.workers
    r.seed r.completed r.ops
    (float_of_int r.wall_us /. 1e6)
    r.throughput
    (if r.failed > 0 then Printf.sprintf "; %d FAILED" r.failed else "");
  if r.sheds > 0 then
    Format.fprintf fmt "overload: %d shed repl%s observed by clients@,"
      r.sheds
      (if r.sheds = 1 then "y" else "ies");
  (match r.aborted with
  | Some why -> Format.fprintf fmt "aborted: %s@," why
  | None -> ());
  List.iter
    (fun (c : Runtime.Loadgen.class_report) ->
      Format.fprintf fmt "  %-3s %a  (target %s %dµs)@,"
        c.Runtime.Loadgen.class_name Runtime.Histogram.pp
        c.Runtime.Loadgen.hist
        (if String.equal c.Runtime.Loadgen.class_name "OOP" then "≤" else "≈")
        c.Runtime.Loadgen.target_us;
      match c.Runtime.Loadgen.faulty with
      | None -> ()
      | Some h ->
          Format.fprintf fmt "      in fault windows: %a@," Runtime.Histogram.pp
            h)
    r.classes;
  List.iter
    (fun (pid, stats) ->
      Format.fprintf fmt "  replica %d: %a@," pid
        Runtime.Transport_intf.pp_stats stats)
    r.replica_stats;
  List.iter
    (fun (pid, at) ->
      Format.fprintf fmt "  replica %d restarted at t=%dµs@," pid at)
    r.restarts;
  Format.fprintf fmt "post-hoc linearizability: %a@]"
    Runtime.Loadgen.pp_verdict r.verdict

module Make (W : Wire.WIRED) = struct
  module Cl = Client.Make (W)
  module Gen = Runtime.Loadgen.Make (W.L)
  module P = Persist.Make (W.C)

  (* Argv contract with [timebounds serve] (bin/cli.ml parses both
     [--flag v] and [-flag v]).  [chaos] forwards the fault plan so each
     replica process wraps its own transport with the same seeded plan;
     [trace] is the per-process trace file (appended across supervised
     restarts, so one file covers a replica's whole life). *)
  let serve_argv ~exe ~peers ~pid ~d ~u ~eps ~x ~slack ~offset ~epoch ~chaos
      ~trace ~durable ~fsync ~snapshot_every ~fallback ~sync =
    let base =
      [
        exe; "serve";
        "--pid"; string_of_int pid;
        "--peers"; peers;
        "--object"; W.L.label;
        "--d"; string_of_int d;
        "--u"; string_of_int u;
        "--eps"; string_of_int eps;
        "--x"; string_of_int x;
        "--slack"; string_of_int slack;
        "--offset"; string_of_int offset;
        "--epoch"; string_of_int epoch;
        "--watch-parent"; string_of_int (Unix.getpid ());
      ]
    in
    let extra =
      (match chaos with
      | None -> []
      | Some (spec, cseed) ->
          [ "--chaos"; spec; "--chaos-seed"; string_of_int cseed ])
      @ (match trace with None -> [] | Some path -> [ "--trace"; path ])
      @ (match fallback with
        | None -> []
        | Some (cfg : Quorum.Config.t) ->
            [
              "--fallback"; "quorum";
              "--hb-us"; string_of_int cfg.Quorum.Config.hb_us;
              "--suspect-after"; string_of_int cfg.Quorum.Config.suspect_after;
            ])
      @ (match sync with
        | None -> []
        | Some (cfg : Sync.Config.t) ->
            [
              "--sync"; "on";
              "--sync-interval-us"; string_of_int cfg.Sync.Config.interval_us;
              "--sync-u"; string_of_int cfg.Sync.Config.u;
            ])
      @
      match durable with
      | None -> []
      | Some dir ->
          [
            "--durable"; dir;
            "--fsync"; fsync;
            "--snapshot-every"; string_of_int snapshot_every;
          ]
    in
    Array.of_list (base @ extra)

  let draw rng (m, a, _o) total =
    let toss = Prelude.Rng.int rng total in
    if toss < m then W.L.sample_mutator rng
    else if toss < m + a then W.L.sample_accessor rng
    else W.L.sample_other rng

  type worker_out = {
    w_entries : Gen.Lin.entry list;  (** reverse invocation order *)
    w_hists : Runtime.Histogram.t array;  (** 6: 3 classes × clean/faulty *)
    w_failed : int;
    w_sheds : int;  (** shed replies seen (each followed by a retry) *)
    w_error : string option;
  }

  (* In [resilient] mode (chaos runs) an invocation error costs the op but
     not the round: the worker drops the connection, re-establishes it with
     the client's capped retries, and carries on — the path a crashed
     replica's clients take through its supervised restart.  Only a failed
     reconnect (replica still gone after ~2 s of retries) aborts.

     In [rotate] mode (quorum fallback armed) the worker additionally fails
     over: a replica that refuses a retryable op (permanently dead, or a
     stalled minority asking clients to go elsewhere) rotates the worker to
     the next port, and only exhausting every replica gives up. *)
  let worker_round ~host ~ports ~origin_us ~abort ?(resilient = false)
      ?(rotate = false) ?(traced = false) ?(windows = []) ?mint ?timeout_us
      ?(deadline_budget_us = 0) rng ~seed ~mix ~total ~quota ~wid =
    let hists = Array.init 6 (fun _ -> Runtime.Histogram.create ()) in
    let nports = Array.length ports in
    let shift = ref 0 in
    (* Rotation keeps per-port retries short: failing over to a live
       replica beats waiting ~2 s for a dead one to answer. *)
    let attempts = if rotate then 10 else if resilient then 40 else 3 in
    let connect () =
      let rec go k =
        let port = ports.((wid + !shift) mod nports) in
        match Cl.connect ~host ~port ~attempts ~retry_delay_us:50_000 () with
        | Ok c -> Ok c
        | Error e ->
            if rotate && k + 1 < nports then begin
              incr shift;
              go (k + 1)
            end
            else Error e
      in
      go 0
    in
    let in_windows t = List.exists (fun (f, u) -> f <= t && t < u) windows in
    match connect () with
    | Error e ->
        {
          w_entries = [];
          w_hists = hists;
          w_failed = quota;
          w_sheds = 0;
          w_error = Some e;
        }
    | Ok first_conn ->
        let conn = ref (Some first_conn) in
        let entries = ref [] in
        let failed = ref 0 in
        let shed_count = ref 0 in
        let error = ref None in
        let gave_up = ref false in
        let i = ref 0 in
        while !i < quota && (not !gave_up) && not (Atomic.get abort) do
          incr i;
          match !conn with
          | None -> (
              match connect () with
              | Ok c ->
                  conn := Some c;
                  decr i (* the reconnect consumed no operation *)
              | Error e ->
                  (match !error with None -> error := Some e | Some _ -> ());
                  failed := !failed + (quota - !i + 1);
                  gave_up := true;
                  Atomic.set abort true)
          | Some c -> (
              let op = draw rng mix total in
              let slot =
                match W.L.D.classify op with
                | Spec.Data_type.Pure_mutator -> 0
                | Spec.Data_type.Pure_accessor -> 1
                | Spec.Data_type.Other -> 2
              in
              let trace =
                if traced then Obs.Trace_id.fresh ~origin:wid else 0
              in
              let op_id = match mint with None -> 0 | Some m -> m () in
              let t0 = Prelude.Mclock.now_us () in
              (* The deadline belongs to the operation, not the attempt:
                 minted once, at first invocation, as the client's total
                 willingness to wait — every retry re-sends it unchanged,
                 so an overloaded replica's admission check measures real
                 remaining patience, not a sliding window. *)
              let deadline =
                if deadline_budget_us > 0 then t0 + deadline_budget_us else 0
              in
              let shed e =
                String.length e >= 4 && String.sub e 0 4 = "shed"
              in
              (* Idempotent path (durable or fallback clusters): a timed-out
                 or dropped invocation is replayed with the {e same} op id
                 on a fresh connection, with capped exponential backoff +
                 jitter.  The replica dedups the replay, so the history
                 records one operation spanning invoke at first attempt to
                 response at the successful one — exactly the interval the
                 client observed.  The jitter is hashed from the run seed
                 and the retry site ([wid], [op_id], attempt), not drawn
                 from the worker's generator: a retry must not perturb the
                 op-draw sequence, so chaos runs replay bit-for-bit. *)
              let rec attempt c backoff tries =
                match Cl.invoke ~trace ~op_id ~deadline ?timeout_us c op with
                | Ok r -> (Some c, Ok r)
                | Error e
                  when op_id <> 0 && Cl.retryable e && tries < 25
                       && (* a shed past the op's own deadline is final:
                             every further attempt would be shed again *)
                       ((not (shed e))
                       || deadline = 0
                       || Prelude.Mclock.now_us () < deadline)
                       && not (Atomic.get abort) -> (
                    if shed e then incr shed_count;
                    Cl.close c;
                    let jitter =
                      Prelude.Rng.hash [ seed; wid; op_id; tries ]
                      mod (1 + (backoff / 2))
                    in
                    Prelude.Mclock.sleep_us (backoff + jitter);
                    (* The refusing replica may be dead or a stalled
                       minority — under the fallback, fail over. *)
                    if rotate then incr shift;
                    match connect () with
                    | Ok c' -> attempt c' (min (2 * backoff) 400_000) (tries + 1)
                    | Error e' -> (None, Error e'))
                | Error e ->
                    if shed e then incr shed_count;
                    (Some c, Error e)
              in
              let conn', outcome = attempt c 20_000 0 in
              conn := conn';
              match outcome with
              | Ok result ->
                  let t1 = Prelude.Mclock.now_us () in
                  let slot =
                    if in_windows (t0 - origin_us) then slot + 3 else slot
                  in
                  Runtime.Histogram.add hists.(slot) (t1 - t0);
                  entries :=
                    {
                      Gen.Lin.pid = wid;
                      op;
                      result;
                      invoke = t0 - origin_us;
                      response = t1 - origin_us;
                    }
                    :: !entries
              | Error e ->
                  incr failed;
                  (match !error with None -> error := Some e | Some _ -> ());
                  if resilient then begin
                    (match !conn with Some c -> Cl.close c | None -> ());
                    conn := None
                  end
                  else begin
                    gave_up := true;
                    Atomic.set abort true
                  end)
        done;
        (match !conn with Some c -> Cl.close c | None -> ());
        {
          w_entries = !entries;
          w_hists = hists;
          w_failed = !failed;
          w_sheds = !shed_count;
          w_error = !error;
        }

  let peers_of ~host ~ports =
    String.concat ","
      (Array.to_list (Array.map (fun p -> Printf.sprintf "%s:%d" host p) ports))

  (* Also the supervised-restart path: a respawned replica reuses its pid,
     port, offset and the cluster epoch, so it rejoins with the same clock
     the algorithm assumed before the crash (SO_REUSEADDR lets it rebind
     immediately). *)
  let trace_path trace_dir i =
    Option.map (fun dir -> Filename.concat dir (Printf.sprintf "replica-%d.trace" i))
      trace_dir

  (* Each replica owns durable_dir/replica-<i>.  A supervised restart goes
     through the same argv, so the respawned process is handed the same
     directory — that is the recovery path; the store's META check makes a
     mixed-up handoff fail loudly. *)
  let durable_path durable_dir i =
    Option.map (fun dir -> Filename.concat dir (Printf.sprintf "replica-%d" i))
      durable_dir

  let spawn_one ~exe ~host ~ports ~d ~u ~eps ~x ~slack ~offsets ~epoch ~chaos
      ~trace_dir ~durable_dir ~fsync ~snapshot_every ~fallback ~sync ~log i =
    let argv =
      serve_argv ~exe ~peers:(peers_of ~host ~ports) ~pid:i ~d ~u ~eps ~x
        ~slack ~offset:offsets.(i) ~epoch ~chaos ~trace:(trace_path trace_dir i)
        ~durable:(durable_path durable_dir i) ~fsync ~snapshot_every ~fallback
        ~sync
    in
    let os_pid =
      Unix.create_process argv.(0) argv Unix.stdin Unix.stdout Unix.stderr
    in
    log
      (Printf.sprintf "cluster: spawned replica %d (os pid %d, port %d)" i
         os_pid ports.(i));
    { child_pid = i; os_pid; port = ports.(i) }

  let spawn_children ~exe ~host ~ports ~d ~u ~eps ~x ~slack ~offsets ~epoch
      ~chaos ~trace_dir ~durable_dir ~fsync ~snapshot_every ~fallback ~sync
      ~log =
    Array.init (Array.length ports)
      (spawn_one ~exe ~host ~ports ~d ~u ~eps ~x ~slack ~offsets ~epoch ~chaos
         ~trace_dir ~durable_dir ~fsync ~snapshot_every ~fallback ~sync ~log)

  (* The monitor thread is the sole reaper: everyone else consults the
     table.  [expected] is flipped before teardown so deliberate
     terminations don't raise the abort flag; individual planned kills (the
     chaos crash schedule) are announced via [plan_kill] instead, and a
     supervised respawn re-registers the new process with [adopt]. *)
  type monitor = {
    mutable reaped : (int * Unix.process_status) list;
    mutable left : int;  (** live (unreaped) children *)
    mutable planned : int list;  (** os pids whose death is scheduled chaos *)
    lock : Mutex.t;
    expected : bool Atomic.t;
    abort : bool Atomic.t;
    mutable abort_why : string option;
    mutable thread : Thread.t option;
  }

  let plan_kill mon os_pid =
    Mutex.lock mon.lock;
    mon.planned <- os_pid :: mon.planned;
    Mutex.unlock mon.lock

  let adopt mon =
    Mutex.lock mon.lock;
    mon.left <- mon.left + 1;
    Mutex.unlock mon.lock

  (* OCaml signal numbers are internal (Sys.sigkill = -7); name the usual
     suspects rather than leak them. *)
  let signal_name s =
    if s = Sys.sigkill then "SIGKILL"
    else if s = Sys.sigterm then "SIGTERM"
    else if s = Sys.sigint then "SIGINT"
    else if s = Sys.sigsegv then "SIGSEGV"
    else if s = Sys.sigabrt then "SIGABRT"
    else Printf.sprintf "signal %d" s

  let status_string = function
    | Unix.WEXITED c -> Printf.sprintf "exited %d" c
    | Unix.WSIGNALED s -> Printf.sprintf "killed by %s" (signal_name s)
    | Unix.WSTOPPED s -> Printf.sprintf "stopped by %s" (signal_name s)

  let start_monitor children ~abort ~log =
    let mon =
      {
        reaped = [];
        left = Array.length children;
        planned = [];
        lock = Mutex.create ();
        expected = Atomic.make false;
        abort;
        abort_why = None;
        thread = None;
      }
    in
    let live () =
      Mutex.lock mon.lock;
      let l = mon.left in
      Mutex.unlock mon.lock;
      l
    in
    let thread =
      Thread.create
        (fun () ->
          while live () > 0 do
            match Unix.waitpid [] (-1) with
            | os_pid, status ->
                Mutex.lock mon.lock;
                mon.left <- mon.left - 1;
                mon.reaped <- (os_pid, status) :: mon.reaped;
                let was_planned = List.mem os_pid mon.planned in
                if was_planned then
                  mon.planned <- List.filter (fun p -> p <> os_pid) mon.planned;
                Mutex.unlock mon.lock;
                let who =
                  match
                    Array.find_opt (fun c -> c.os_pid = os_pid) children
                  with
                  | Some c -> Printf.sprintf "replica %d" c.child_pid
                  | None -> Printf.sprintf "child %d" os_pid
                in
                if was_planned then
                  log
                    (Printf.sprintf "cluster: %s %s (scheduled chaos)" who
                       (status_string status))
                else if not (Atomic.get mon.expected) then begin
                  let why =
                    Printf.sprintf "%s %s mid-run" who (status_string status)
                  in
                  log ("cluster: " ^ why);
                  if mon.abort_why = None then mon.abort_why <- Some why;
                  Atomic.set mon.abort true
                end
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                (* No children right now.  Mid-run that can only mean every
                   replica is inside a crash window awaiting respawn, so
                   keep watching; during teardown it means we are done. *)
                if Atomic.get mon.expected then begin
                  Mutex.lock mon.lock;
                  mon.left <- 0;
                  Mutex.unlock mon.lock
                end
                else Prelude.Mclock.sleep_us 20_000
          done)
        ()
    in
    mon.thread <- Some thread;
    mon

  let reaped mon os_pid =
    Mutex.lock mon.lock;
    let r = List.mem_assoc os_pid mon.reaped in
    Mutex.unlock mon.lock;
    r

  let teardown mon children ~log =
    Atomic.set mon.expected true;
    Array.iter
      (fun c ->
        if not (reaped mon c.os_pid) then
          try Unix.kill c.os_pid Sys.sigterm with Unix.Unix_error _ -> ())
      children;
    (* Give children 5 s to exit cleanly, then SIGKILL stragglers. *)
    let deadline = Prelude.Mclock.now_us () + 5_000_000 in
    let all_reaped () =
      Array.for_all (fun c -> reaped mon c.os_pid) children
    in
    while (not (all_reaped ())) && Prelude.Mclock.now_us () < deadline do
      Prelude.Mclock.sleep_us 20_000
    done;
    Array.iter
      (fun c ->
        if not (reaped mon c.os_pid) then begin
          log
            (Printf.sprintf "cluster: replica %d unresponsive, SIGKILL"
               c.child_pid);
          try Unix.kill c.os_pid Sys.sigkill with Unix.Unix_error _ -> ()
        end)
      children;
    match mon.thread with Some t -> Thread.join t | None -> ()

  (* Default round of 24 (not the in-process generator's 48): shorter
     segments cut concurrent-mutator ambiguity windows sooner, which keeps
     the cross-segment backtracking in [Linearize.check_segmented] cheap —
     order-sensitive objects (queue) go from minutes to milliseconds. *)
  let run ~n ~d ~u ?eps ?(x = 0) ?(slack = 5000) ?workers ?(round = 24)
      ?(mix = (50, 40, 10)) ?(host = "127.0.0.1") ?(base_port = 7600)
      ?(exe = Sys.executable_name) ?(log = fun _ -> ()) ?abort ?plan ?trace_dir
      ?durable_dir ?(fsync = "interval") ?(snapshot_every = 1024) ?fallback
      ?sync ~ops ~seed () =
    if n < 1 then invalid_arg "Cluster.run: n must be >= 1";
    if round < 1 || round > 62 then
      invalid_arg "Cluster.run: round must be in [1, 62]";
    let m, a, o = mix in
    let total = m + a + o in
    if m < 0 || a < 0 || o < 0 || total = 0 then
      invalid_arg "Cluster.run: mix weights must be non-negative, not all 0";
    let eps =
      match eps with Some e -> e | None -> Core.Params.optimal_eps ~n ~u
    in
    let workers = match workers with Some w -> w | None -> n in
    let params = Core.Params.make ~n ~d:(d + slack) ~u:(u + slack) ~eps ~x () in
    let rng = Prelude.Rng.make seed in
    let rng_offsets, rng_workers = Prelude.Rng.split rng in
    let offsets =
      Array.init n (fun i ->
          if i = 0 || eps = 0 then 0
          else Prelude.Rng.int_in rng_offsets ~lo:0 ~hi:eps)
    in
    (* Chaos mode: every replica process applies the same seeded plan to
       its transport; the parent realises crash/restart rules as real
       SIGKILLs plus supervised respawns, and splits latency histograms at
       the plan's fault windows. *)
    let plan =
      match plan with
      | Some p when not (Fault.Fault_plan.is_empty p) -> Some p
      | _ -> None
    in
    let chaos =
      Option.map
        (fun p -> (Fault.Fault_plan.spec_text p, Fault.Fault_plan.seed p))
        plan
    in
    let fault_windows =
      match plan with
      | None -> []
      | Some p -> List.map (fun (_, f, u) -> (f, u)) (Fault.Fault_plan.windows p)
    in
    (match plan with
    | None -> ()
    | Some p ->
        Array.iteri
          (fun i k -> offsets.(i) <- offsets.(i) + k)
          (Fault.Fault_plan.skews p ~n));
    let resilient = plan <> None in
    let ports = Array.init n (fun i -> base_port + i) in
    (* A dead parent must not leave orphan replicas: each child also
       watches our pid (see [serve_argv]). *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    (* [?abort] lets the CLI share the flag with a SIGINT handler: raising
       it cuts the round loop short and falls through to teardown. *)
    let abort = match abort with Some a -> a | None -> Atomic.make false in
    (* One clock epoch for the whole cluster: replica clocks must differ
       only by the drawn offsets (≤ ε), not by process spawn deltas.  The
       epoch is also the run-time origin — history entries, quiescent cuts,
       fault windows and the crash schedule all measure from it. *)
    let epoch = Prelude.Mclock.now_us () in
    (* Tracing: each replica writes trace_dir/replica-<i>.trace (appended
       across supervised restarts); workers mint trace ids so client fan-out
       is reconstructible from the merged per-process files. *)
    (match trace_dir with
    | Some dir ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    | None -> ());
    let traced = trace_dir <> None in
    (* Durable clusters run idempotent clients: every invocation carries a
       cluster-unique op id and a reply deadline, so an op lost to a crash
       is replayed rather than failed.  The id's high bits are the cluster
       epoch, not a constant: a replica's dedup table survives restarts,
       so a later run over the same durable directory minting from 1 again
       would have its fresh operations answered with the *previous* run's
       recorded results.  38 epoch bits (µs, wraps every ~76 h) over a
       24-bit counter keep ids unique across every run that can share a
       directory, and never 0 (the "no id" sentinel). *)
    let op_ids =
      Atomic.make (((epoch land ((1 lsl 38) - 1)) lsl 24) lor 1)
    in
    (* Fallback clusters run the same idempotent-client protocol as durable
       ones: an op refused by a dying (or degrading) replica is replayed —
       possibly against a different replica — under one id.  Chaos runs are
       idempotent too: overload protection sheds ops under a [flood], and a
       shed is only survivable if the client can replay it (same id, same
       deadline) once the pressure clears. *)
    let idempotent = durable_dir <> None || fallback <> None || plan <> None in
    let mint =
      if idempotent then Some (fun () -> Atomic.fetch_and_add op_ids 1)
      else None
    in
    let timeout_us =
      if idempotent then Some ((2 * (d + slack + eps)) + 2_000_000) else None
    in
    (* The op deadline covers the whole retry horizon (per-attempt timeout
       plus the capped-backoff budget), so admission only sheds ops that
       genuinely cannot make it — not every op that needed one retry. *)
    let deadline_budget_us =
      if idempotent then (2 * (d + slack + eps)) + 4_000_000 else 0
    in
    (* A restart over existing durable directories serves the *persisted*
       history: the first [get] of the run may legitimately return a value
       written by the previous run.  The post-hoc checker must therefore
       start Wing–Gong from the recovered object, not the fresh one.  The
       replicas' applied lists are merged by ⟨time, pid⟩ stamp (every
       replica applies in stamp order, so the union replayed in stamp
       order is the cluster state) — read before the children reopen the
       stores. *)
    let durable_initial =
      match durable_dir with
      | None -> None
      | Some _ ->
          let tbl = Hashtbl.create 1024 in
          for i = 0 to n - 1 do
            match durable_path durable_dir i with
            | None -> ()
            | Some dir -> (
                match Durable.Store.inspect ~dir with
                | Error _ -> ()
                | Ok (_meta, view) ->
                    List.iter
                      (fun (a : P.applied) ->
                        Hashtbl.replace tbl (a.P.time, a.P.pid) a.P.op)
                      (P.recovered_of view).P.s_applied)
          done;
          if Hashtbl.length tbl = 0 then None
          else
            Hashtbl.fold (fun k op acc -> (k, op) :: acc) tbl []
            |> List.sort compare
            |> List.fold_left
                 (fun st (_, op) -> fst (W.L.D.apply st op))
                 W.L.D.initial
            |> Option.some
    in
    let children =
      spawn_children ~exe ~host ~ports ~d ~u ~eps ~x ~slack ~offsets ~epoch
        ~chaos ~trace_dir ~durable_dir ~fsync ~snapshot_every ~fallback ~sync
        ~log
    in
    let mon = start_monitor children ~abort ~log in
    (* The crash scheduler: one supervisor thread per crash rule.  It
       SIGKILLs at the planned time (announced to the monitor first, so the
       death does not abort the run) and, when the rule has a restart,
       respawns the replica — same pid, port, offset and epoch — with
       capped-backoff retries, then re-registers it with the reaper. *)
    let finished = Atomic.make false in
    let restarts = ref [] in
    let restarts_lock = Mutex.create () in
    let sleep_until t =
      while
        Prelude.Mclock.now_us () < t
        && (not (Atomic.get abort))
        && not (Atomic.get finished)
      do
        Prelude.Mclock.sleep_us
          (min 20_000 (max 1 (t - Prelude.Mclock.now_us ())))
      done;
      (not (Atomic.get abort)) && not (Atomic.get finished)
    in
    let supervisors =
      match plan with
      | None -> []
      | Some p ->
          Fault.Fault_plan.crash_schedule p
          |> List.map (fun (pid, crash_at, restart_at) ->
                 Thread.create
                   (fun () ->
                     if pid >= 0 && pid < n && sleep_until (epoch + crash_at)
                     then begin
                       let c = children.(pid) in
                       plan_kill mon c.os_pid;
                       (try Unix.kill c.os_pid Sys.sigkill
                        with Unix.Unix_error _ -> ());
                       log
                         (Printf.sprintf
                            "cluster: chaos killed replica %d at t=%dµs" pid
                            (Prelude.Mclock.now_us () - epoch));
                       if
                         restart_at < max_int
                         && sleep_until (epoch + restart_at)
                       then begin
                         let rec respawn backoff attempt =
                           match
                             spawn_one ~exe ~host ~ports ~d ~u ~eps ~x ~slack
                               ~offsets ~epoch ~chaos ~trace_dir ~durable_dir
                               ~fsync ~snapshot_every ~fallback ~sync ~log pid
                           with
                           | fresh -> Some fresh
                           | exception (Unix.Unix_error _ | Sys_error _) ->
                               if attempt >= 5 then None
                               else begin
                                 Prelude.Mclock.sleep_us backoff;
                                 respawn
                                   (min (2 * backoff) 1_000_000)
                                   (attempt + 1)
                               end
                         in
                         match respawn 50_000 0 with
                         | Some fresh ->
                             adopt mon;
                             children.(pid).os_pid <- fresh.os_pid;
                             let at = Prelude.Mclock.now_us () - epoch in
                             Mutex.lock restarts_lock;
                             restarts := (pid, at) :: !restarts;
                             Mutex.unlock restarts_lock;
                             log
                               (Printf.sprintf
                                  "cluster: supervised restart of replica %d \
                                   at t=%dµs"
                                  pid at)
                         | None ->
                             log
                               (Printf.sprintf
                                  "cluster: could not respawn replica %d" pid);
                             Atomic.set abort true
                       end
                     end)
                   ())
    in
    (* Readiness: one admin connection per replica, retried while the
       children bind their ports; kept open for the final Stats_req. *)
    let admin =
      Array.map
        (fun c ->
          match Cl.connect ~host ~port:c.port ~attempts:100 () with
          | Ok conn -> Some conn
          | Error e ->
              log
                (Printf.sprintf "cluster: replica %d not reachable: %s"
                   c.child_pid e);
              Atomic.set abort true;
              None)
        children
    in
    let start_us = Prelude.Mclock.now_us () in
    let merged = Array.init 6 (fun _ -> Runtime.Histogram.create ()) in
    let entries = ref [] in
    let cuts = ref [] in
    let failed = ref 0 in
    let sheds = ref 0 in
    let first_error = ref None in
    let rng_workers = ref rng_workers in
    let remaining = ref ops in
    while !remaining > 0 && not (Atomic.get abort) do
      let quota = min round !remaining in
      remaining := !remaining - quota;
      let spawned =
        List.init workers (fun wid ->
            let mine, rest = Prelude.Rng.split !rng_workers in
            rng_workers := rest;
            let share =
              (quota / workers) + if wid < quota mod workers then 1 else 0
            in
            Domain.spawn (fun () ->
                worker_round ~host ~ports ~origin_us:epoch ~abort ~resilient
                  ~rotate:(fallback <> None) ~traced ~windows:fault_windows
                  ?mint ?timeout_us ~deadline_budget_us mine ~seed ~mix ~total
                  ~quota:share ~wid))
      in
      List.iter
        (fun dom ->
          let out = Domain.join dom in
          entries := List.rev_append out.w_entries !entries;
          failed := !failed + out.w_failed;
          sheds := !sheds + out.w_sheds;
          (match (out.w_error, !first_error) with
          | Some e, None -> first_error := Some e
          | _ -> ());
          Array.iteri
            (fun i h -> Runtime.Histogram.merge_into ~into:merged.(i) h)
            out.w_hists)
        spawned;
      cuts := Prelude.Mclock.now_us () - epoch :: !cuts
    done;
    let wall_us = Prelude.Mclock.now_us () - start_us in
    Atomic.set finished true;
    List.iter Thread.join supervisors;
    let replica_stats =
      Array.to_list admin
      |> List.mapi (fun i conn ->
             match conn with
             | None -> None
             | Some conn -> (
                 match Cl.stats conn with
                 | Ok s ->
                     Cl.close conn;
                     Some (i, s)
                 | Error _ ->
                     Cl.close conn;
                     None))
      |> List.filter_map Fun.id
    in
    teardown mon children ~log;
    let completed = List.length !entries in
    let aborted =
      match (mon.abort_why, !first_error) with
      | Some why, _ -> Some why
      | None, Some e when Atomic.get abort -> Some e
      | None, _ -> if Atomic.get abort then Some "aborted" else None
    in
    let verdict =
      if !failed > 0 then
        Runtime.Loadgen.Unchecked
          (Printf.sprintf "%d invocation%s failed (%s)" !failed
             (if !failed = 1 then "" else "s")
             (Option.value !first_error ~default:"unknown error"))
      else if aborted <> None then
        Runtime.Loadgen.Unchecked
          (Option.value aborted ~default:"run aborted")
      else if completed <> ops then
        Runtime.Loadgen.Unchecked
          (Printf.sprintf "expected %d completed ops, recorded %d" ops
             completed)
      else
        let sorted =
          List.sort
            (fun (a : Gen.Lin.entry) (b : Gen.Lin.entry) ->
              compare (a.Gen.Lin.invoke, a.Gen.Lin.pid)
                (b.Gen.Lin.invoke, b.Gen.Lin.pid))
            !entries
        in
        Gen.check_history ?initial:durable_initial sorted
          (List.sort compare !cuts)
    in
    let classes =
      Runtime.Loadgen.classes_of ~params ~windowed:(fault_windows <> []) merged
    in
    {
      label = W.L.label;
      params;
      cfg_d = d;
      cfg_u = u;
      slack;
      mix;
      workers;
      seed;
      ops;
      completed;
      failed = !failed;
      sheds = !sheds;
      wall_us;
      throughput =
        (if wall_us = 0 then 0.
         else float_of_int completed /. (float_of_int wall_us /. 1e6));
      classes;
      replica_stats;
      offsets;
      cuts = List.sort compare !cuts;
      restarts = List.sort compare !restarts;
      aborted;
      verdict;
    }
end
