(** A {!Runtime.Transport_intf.t} over real TCP sockets — the transport
    that puts each Algorithm 1 replica in its own OS process.

    Topology: every replica listens on one address ([addrs.(pid)]) and
    maintains one {e outgoing} connection per peer, used only for sending;
    incoming connections are used only for receiving.  Each outgoing link
    has a dedicated writer thread draining a bounded frame queue, so
    [send] never blocks the replica's event loop on the network.

    Connect/accept handshake: the first frame on an outgoing connection is
    the caller-supplied [hello] (carrying [(pid, n, params)] and the object
    tag — see {!Codec.hello}); the accepting side classifies it via
    [classify_hello] and either registers the connection as a peer link,
    hands it to [on_client] (a load-generator/client connection opens with
    an [Invoke] frame instead of a [Hello]), or rejects it.

    Reconnect: when a link's connection fails, its writer reconnects with
    capped exponential backoff ([backoff_min_us] doubling up to
    [backoff_max_us], per link, reset to the minimum whenever a connect +
    Hello succeeds so a healed link probes at full cadence again); every
    attempt beyond a link's first is counted in
    {!Runtime.Transport_intf.link_stats.reconnects}.  The frame being
    written when a connection fails is retransmitted after reconnecting
    (the receiver discards the truncated copy at EOF).

    Overload: each link's write queue is a two-lane priority queue
    ({!Lanes}).  [lane_of] classifies each outgoing message; control
    frames (heartbeats, sync probes, catch-up) always preempt data frames,
    so the failure detector and ε estimator stay live at saturation.  The
    data lane is bounded ([max_queue] frames and [max_lane_bytes] bytes
    per link); overflow sheds oldest-first, counted in [dropped] and
    [lane_shed] and emitted as [Obs.Event.Shed] events — never silent.
    Within a lane the links stay FIFO, as in the paper's model; across a
    crash/reconnect or a shed, delivery is not guaranteed — Algorithm 1
    assumes reliable links, and a run that loses frames is caught by the
    post-hoc linearizability check.

    Every socket carries a bounded send timeout, so a writer blocked
    against a dead peer's full kernel buffer observes transport shutdown
    within one timeout slice (and gives up on the connection after
    [write_stall_us], falling back to the reconnect path) instead of
    relying on reconnect backoff alone.

    [post] and [recv] are purely local (the process's own mailbox), as in
    the bus transport. *)

type listener = private {
  listen_fd : Unix.file_descr;
  host : string;
  port : int;  (** actual port — useful with [~port:0] *)
}

val resolve : string -> Unix.inet_addr
(** Dotted-quad or name lookup.  @raise Failure if unresolvable. *)

val listen : host:string -> port:int -> listener
(** Bind and listen ([SO_REUSEADDR]); [port = 0] picks an ephemeral port,
    reported back in the result.  @raise Unix.Unix_error on bind
    failure. *)

(** A connection handed to the [on_client] callback: the raw socket plus
    any bytes that were read past the first frame. *)
type client_conn

val conn_read_frame : client_conn -> Codec.frame option
(** Next frame on a client connection (blocking); [None] on EOF, error or
    a corrupt stream. *)

val conn_write : client_conn -> string -> bool
(** Write bytes (a pre-encoded frame); [false] if the connection died. *)

type hello_verdict =
  | Peer of int  (** a replica with this pid; receive entries from it *)
  | Client  (** not a handshake — hand the connection to [on_client] *)
  | Reject of string  (** incompatible handshake: log and drop *)

val create :
  me:int ->
  addrs:(string * int) array ->
  listener:listener ->
  hello:string ->
  classify_hello:(Codec.frame -> hello_verdict) ->
  decode_peer:(src:int -> Codec.frame -> 'msg option) ->
  encode_peer:('msg -> string) ->
  ?on_client:(first:Codec.frame -> client_conn -> unit) ->
  ?max_queue:int ->
  ?max_lane_bytes:int ->
  ?lane_of:('msg -> Lanes.lane) ->
  ?write_stall_us:int ->
  ?backoff_min_us:int ->
  ?backoff_max_us:int ->
  ?log:(string -> unit) ->
  unit ->
  'msg Runtime.Transport_intf.t
(** Start the acceptor and per-peer writer threads and return the
    transport.  [addrs] lists every replica's listen address (index =
    pid); [listener] must already be bound to [addrs.(me)] (possibly with
    an ephemeral port — pass the rebound address in [addrs]).

    [decode_peer] turns a received frame from peer [src] into a message
    (typically [Replica.net] of a decoded entry); [None] skips the frame.
    [encode_peer] is its inverse for {!Runtime.Transport_intf.send}.
    [on_client] runs in the accepting connection's own thread and owns the
    connection until it returns; invocations may block there without
    stalling peer traffic.

    [lane_of] assigns each message a {!Lanes.lane}; when omitted every
    message rides the (bounded) data lane.

    Defaults: [max_queue] 4096 frames/link, [max_lane_bytes] 4 MiB/link,
    [write_stall_us] 2 s, backoff 20 ms → 1 s, [log] writes to [stderr].
    [close] shuts down every socket and joins the acceptor and writer
    threads. *)
