(** Two-lane priority write queue for the TCP transport.

    The overload-protection invariant the paper's bounds rely on: control
    traffic (heartbeats, mode announcements, sync probes, catch-up) must
    stay live even when offered data load pushes real queueing past [d].
    A single FIFO cannot promise that — a burst of data frames ahead of a
    heartbeat delays it by the whole backlog.  This queue keeps two FIFOs
    per link and always serves the control lane first:

    - the {b control} lane is unbounded (control traffic is cadence-bounded
      by construction — one heartbeat per [hb_us], one probe per sync
      round) and is never shed;
    - the {b data} lane is bounded in both frames and bytes; pushing past
      either bound sheds the oldest queued frames (counted, never silent)
      until the arrival fits.

    Within a lane, FIFO order is preserved; across lanes, a control frame
    is never ordered behind a data frame.  Not thread-safe — the caller
    (one lock per link) serialises access. *)

type lane = Ctrl | Data

val lane_code : lane -> int
(** 0 for [Ctrl], 1 for [Data] — matches [Obs.Event.lane_ctrl]/[lane_data]. *)

val lane_name : lane -> string

type 'a t

val create :
  ?max_data_frames:int -> ?max_data_bytes:int -> size_of:('a -> int) ->
  unit -> 'a t
(** [size_of] prices a frame for the byte bound (defaults: 4096 frames,
    4 MiB).  Raises [Invalid_argument] on a non-positive bound. *)

val push : 'a t -> lane -> 'a -> int
(** Enqueue on [lane]; returns how many frames were shed to make room
    (always 0 on the control lane).  A data frame larger than the whole
    byte budget is itself shed (returns 1) rather than emptying the lane
    for a frame that can never fit. *)

val peek : 'a t -> (lane * 'a) option
(** Front of the queue in service order: control lane first. *)

val drop : 'a t -> lane -> unit
(** Remove the front of [lane] — pairs with {!peek}'s (lane, frame) so a
    writer that released the lock between peek and drop removes exactly
    the frame it wrote, even if the other lane grew meanwhile.
    Raises [Queue.Empty] if the lane is empty. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val ctrl_length : 'a t -> int
val data_length : 'a t -> int

val data_bytes : 'a t -> int
(** Bytes currently queued on the data lane (invariant: ≤ the byte bound). *)

val shed : 'a t -> int
(** Frames shed from the data lane since creation. *)

val ctrl_hwm : 'a t -> int
val data_hwm : 'a t -> int

val clear : 'a t -> unit
