(** See the interface.  Layout of a frame:

    {v
    offset  size  field
    0       2     magic "TB"
    2       1     version
    3       1     kind
    4       4     payload length, u32 big-endian
    8       4     CRC-32 (IEEE) over bytes 2..7 and the payload
    12      len   payload
    v} *)

(* v1: initial framing.  v2: Entry and Invoke payloads carry the
   originating operation's trace id (one varint) so per-process [Obs]
   traces reassemble into cross-replica spans.  v3: Entry and Invoke also
   carry the client operation id (one varint, 0 = none) for idempotent
   retries, and two catch-up frame kinds (7, 8) implement peer
   anti-entropy after a crash.  v4: every op/ack/catch-up payload gains a
   trailing shard id (one varint, 0 = the only shard) so many Algorithm 1
   instances multiplex over one per-peer link, and the hello carries the
   sender's shard count for handshake-time topology agreement.  v5: seven
   quorum-fallback frame kinds (9–15) — the heartbeat/mode announcement
   and the forward/propose/ack/commit/nack/fill frames of the degraded
   ABD mode — all shard-tagged like every other op frame.  v6: two
   clock-synchronization frame kinds (16, 17) — the timestamped Ping and
   its echo Pong carrying the receiver's rx/tx readings, from which the
   prober estimates per-peer offset and uncertainty (NTP-style RTT
   halves).  v7: overload protection — the Invoke payload gains a trailing
   absolute deadline (one varint µs on the shared monotonic timeline, 0 =
   none) so servers can shed work that can no longer meet it, a Shed frame
   kind (18) carries the refusal reason back to the client as a distinct
   retryable class, and the Stats link payload gains the two-lane queue
   counters (ctrl_hwm, lane_shed).  Peers speaking older versions are
   rejected at decode ("unsupported version N"), which the handshake turns
   into a clean [Error_msg] rather than a crash. *)
let version = 7
let header_len = 12
let max_payload = 1 lsl 24  (* 16 MiB: far above any entry, guards length bombs *)
let magic0 = 'T'
let magic1 = 'B'

type frame = { kind : int; payload : string }

type 'a progress =
  | Got of 'a * int
  | Need_more of int
  | Corrupt of string

(* ---- CRC-32 (IEEE 802.3, reflected, poly 0xedb88320) ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc s ~pos ~len =
  let table = Lazy.force crc_table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xff) lxor (!crc lsr 8)
  done;
  !crc

let crc32 s ~pos ~len = crc32_update 0xffffffff s ~pos ~len lxor 0xffffffff

let frame_crc ~kind ~payload =
  (* Cover version, kind and length exactly as laid out on the wire, then
     the payload — so any single-bit flip in bytes 2.. is detected. *)
  let hdr = Bytes.create 6 in
  Bytes.set hdr 0 (Char.chr version);
  Bytes.set hdr 1 (Char.chr kind);
  let len = String.length payload in
  Bytes.set hdr 2 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set hdr 3 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set hdr 4 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set hdr 5 (Char.chr (len land 0xff));
  let crc = crc32_update 0xffffffff (Bytes.unsafe_to_string hdr) ~pos:0 ~len:6 in
  crc32_update crc payload ~pos:0 ~len lxor 0xffffffff

let u32_be s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let encode_frame ~kind ~payload =
  if kind < 0 || kind > 0xff then invalid_arg "Codec.encode_frame: kind";
  let len = String.length payload in
  if len > max_payload then invalid_arg "Codec.encode_frame: payload too large";
  let crc = frame_crc ~kind ~payload in
  let b = Buffer.create (header_len + len) in
  Buffer.add_char b magic0;
  Buffer.add_char b magic1;
  Buffer.add_char b (Char.chr version);
  Buffer.add_char b (Char.chr kind);
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (len land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (crc land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let decode_frame ?(pos = 0) s =
  let avail = String.length s - pos in
  if pos < 0 || avail < 0 then Corrupt "negative offset"
  else if avail < header_len then Need_more (header_len - avail)
  else if s.[pos] <> magic0 || s.[pos + 1] <> magic1 then Corrupt "bad magic"
  else if Char.code s.[pos + 2] <> version then
    Corrupt (Printf.sprintf "unsupported version %d" (Char.code s.[pos + 2]))
  else
    let kind = Char.code s.[pos + 3] in
    let len = u32_be s (pos + 4) in
    if len > max_payload then
      Corrupt (Printf.sprintf "oversized frame (%d bytes)" len)
    else if avail < header_len + len then Need_more (header_len + len - avail)
    else
      let payload = String.sub s (pos + header_len) len in
      let crc = u32_be s (pos + 8) in
      if frame_crc ~kind ~payload <> crc then Corrupt "checksum mismatch"
      else Got ({ kind; payload }, pos + header_len + len)

(* ---- payload primitives ---- *)

exception Bad_payload of string

module Wr = struct
  let rec uint b n =
    if n land lnot 0x7f = 0 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      uint b (n lsr 7)
    end

  let int b i = uint b ((i lsl 1) lxor (i asr 62))

  let string b s =
    uint b (String.length s);
    Buffer.add_string b s
end

module Rd = struct
  type t = { buf : string; mutable pos : int }

  let of_string s = { buf = s; pos = 0 }
  let fail msg = raise (Bad_payload msg)

  let byte t =
    if t.pos >= String.length t.buf then fail "truncated payload"
    else begin
      let c = Char.code t.buf.[t.pos] in
      t.pos <- t.pos + 1;
      c
    end

  let uint t =
    let rec go shift acc =
      if shift > 62 then fail "varint overflow"
      else
        let c = byte t in
        let acc = acc lor ((c land 0x7f) lsl shift) in
        if c land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int t =
    let n = uint t in
    (n lsr 1) lxor (-(n land 1))

  let string t =
    let len = uint t in
    if len < 0 || t.pos + len > String.length t.buf then
      fail "truncated string"
    else begin
      let s = String.sub t.buf t.pos len in
      t.pos <- t.pos + len;
      s
    end

  let at_end t = t.pos = String.length t.buf
end

(* ---- typed messages ---- *)

module type OBJ_CODEC = sig
  module D : Spec.Data_type.S

  val obj_tag : int
  val write_op : Buffer.t -> D.op -> unit
  val read_op : Rd.t -> D.op
  val write_result : Buffer.t -> D.result -> unit
  val read_result : Rd.t -> D.result
  val write_state : Buffer.t -> D.state -> unit
  val read_state : Rd.t -> D.state
end

type hello = {
  pid : int;
  n : int;
  d : int;
  u : int;
  eps : int;
  x : int;
  obj_tag : int;
  shards : int;
}

(* frame kinds *)
let k_hello = 0
let k_entry = 1
let k_invoke = 2
let k_result = 3
let k_stats_req = 4
let k_stats = 5
let k_error = 6
let k_catchup_req = 7
let k_catchup_rep = 8
let k_hb = 9
let k_forward = 10
let k_propose = 11
let k_qack = 12
let k_qcommit = 13
let k_fnack = 14
let k_qfill = 15
let k_ping = 16
let k_pong = 17
let k_shed = 18

module Make (O : OBJ_CODEC) = struct
  type msg =
    | Hello of hello
    | Entry of {
        op : O.D.op;
        time : int;
        pid : int;
        trace : int;
        op_id : int;
        shard : int;
      }
    | Invoke of {
        op : O.D.op;
        trace : int;
        op_id : int;
        shard : int;
        deadline : int;
            (** absolute µs on the shared monotonic timeline; 0 = none *)
      }
    | Result of { result : O.D.result; shard : int }
    | Stats_req
    | Stats of Runtime.Transport_intf.stats
    | Error_msg of string
    | Catchup_req of { time : int; cpid : int; shard : int }
    | Catchup_rep of {
        entries : (O.D.op * int * int * int) list;
            (** op, time, pid, op id — stamp order *)
        time : int;
        cpid : int;
        shard : int;
      }
    | Hb of {
        stamp : int;
        epoch : int;
        qmode : bool;
        seq : int;
        floor : int;
        shard : int;
      }
    | Forward of {
        qid : int;
        origin : int;
        op : O.D.op;
        op_id : int;
        trace : int;
        shard : int;
      }
    | Propose of {
        epoch : int;
        qseq : int;
        time : int;
        origin : int;
        qid : int;
        op : O.D.op;
        op_id : int;
        trace : int;
        shard : int;
      }
    | Qack of { epoch : int; qseq : int; shard : int }
    | Qcommit of { epoch : int; qseq : int; shard : int }
    | Fnack of { qid : int; shard : int }
    | Qfill of { epoch : int; from_seq : int; shard : int }
    | Ping of { seq : int; t0 : int; shard : int }
    | Pong of { seq : int; t0 : int; t_rx : int; t_tx : int; shard : int }
    | Shed of { reason : string; shard : int }

  let equal_msg a b =
    match (a, b) with
    | Hello h1, Hello h2 -> h1 = h2
    | Entry e1, Entry e2 ->
        O.D.equal_op e1.op e2.op && e1.time = e2.time && e1.pid = e2.pid
        && e1.trace = e2.trace && e1.op_id = e2.op_id && e1.shard = e2.shard
    | Invoke i1, Invoke i2 ->
        O.D.equal_op i1.op i2.op && i1.trace = i2.trace && i1.op_id = i2.op_id
        && i1.shard = i2.shard && i1.deadline = i2.deadline
    | Result r1, Result r2 ->
        O.D.equal_result r1.result r2.result && r1.shard = r2.shard
    | Stats_req, Stats_req -> true
    | Stats s1, Stats s2 -> s1 = s2
    | Error_msg e1, Error_msg e2 -> String.equal e1 e2
    | Catchup_req q1, Catchup_req q2 ->
        q1.time = q2.time && q1.cpid = q2.cpid && q1.shard = q2.shard
    | Catchup_rep p1, Catchup_rep p2 ->
        p1.time = p2.time && p1.cpid = p2.cpid && p1.shard = p2.shard
        && List.length p1.entries = List.length p2.entries
        && List.for_all2
             (fun (o1, t1, p1, i1) (o2, t2, p2, i2) ->
               O.D.equal_op o1 o2 && t1 = t2 && p1 = p2 && i1 = i2)
             p1.entries p2.entries
    | Hb h1, Hb h2 ->
        h1.stamp = h2.stamp && h1.epoch = h2.epoch && h1.qmode = h2.qmode
        && h1.seq = h2.seq && h1.floor = h2.floor && h1.shard = h2.shard
    | Forward f1, Forward f2 ->
        f1.qid = f2.qid && f1.origin = f2.origin && O.D.equal_op f1.op f2.op
        && f1.op_id = f2.op_id && f1.trace = f2.trace && f1.shard = f2.shard
    | Propose p1, Propose p2 ->
        p1.epoch = p2.epoch && p1.qseq = p2.qseq && p1.time = p2.time
        && p1.origin = p2.origin && p1.qid = p2.qid
        && O.D.equal_op p1.op p2.op && p1.op_id = p2.op_id
        && p1.trace = p2.trace && p1.shard = p2.shard
    | Qack a1, Qack a2 ->
        a1.epoch = a2.epoch && a1.qseq = a2.qseq && a1.shard = a2.shard
    | Qcommit c1, Qcommit c2 ->
        c1.epoch = c2.epoch && c1.qseq = c2.qseq && c1.shard = c2.shard
    | Fnack n1, Fnack n2 -> n1.qid = n2.qid && n1.shard = n2.shard
    | Qfill q1, Qfill q2 ->
        q1.epoch = q2.epoch && q1.from_seq = q2.from_seq
        && q1.shard = q2.shard
    | Ping p1, Ping p2 ->
        p1.seq = p2.seq && p1.t0 = p2.t0 && p1.shard = p2.shard
    | Pong p1, Pong p2 ->
        p1.seq = p2.seq && p1.t0 = p2.t0 && p1.t_rx = p2.t_rx
        && p1.t_tx = p2.t_tx && p1.shard = p2.shard
    | Shed s1, Shed s2 ->
        String.equal s1.reason s2.reason && s1.shard = s2.shard
    | _ -> false

  let pp_msg fmt = function
    | Hello h ->
        Format.fprintf fmt
          "hello{pid=%d n=%d d=%d u=%d eps=%d x=%d obj=%d shards=%d}" h.pid
          h.n h.d h.u h.eps h.x h.obj_tag h.shards
    | Entry e ->
        Format.fprintf fmt "entry{%a @@ ⟨%d,%d⟩ t=%x id=%d s=%d}" O.D.pp_op
          e.op e.time e.pid e.trace e.op_id e.shard
    | Invoke i ->
        Format.fprintf fmt "invoke{%a t=%x id=%d s=%d dl=%d}" O.D.pp_op i.op
          i.trace i.op_id i.shard i.deadline
    | Result r ->
        Format.fprintf fmt "result{%a s=%d}" O.D.pp_result r.result r.shard
    | Stats_req -> Format.pp_print_string fmt "stats?"
    | Stats s ->
        Format.fprintf fmt "stats{%a}" Runtime.Transport_intf.pp_stats s
    | Error_msg e -> Format.fprintf fmt "error{%s}" e
    | Catchup_req q ->
        Format.fprintf fmt "catchup?{hwm=⟨%d,%d⟩ s=%d}" q.time q.cpid q.shard
    | Catchup_rep p ->
        Format.fprintf fmt "catchup{%d entries, hwm=⟨%d,%d⟩ s=%d}"
          (List.length p.entries) p.time p.cpid p.shard
    | Hb h ->
        Format.fprintf fmt "hb{clk=%d e=%d %s seq=%d floor=%d s=%d}" h.stamp
          h.epoch
          (if h.qmode then "quorum" else "fast")
          h.seq h.floor h.shard
    | Forward f ->
        Format.fprintf fmt "fwd{%a qid=%d from=%d id=%d t=%x s=%d}" O.D.pp_op
          f.op f.qid f.origin f.op_id f.trace f.shard
    | Propose p ->
        Format.fprintf fmt "propose{e=%d #%d %a @@ ⟨%d,%d⟩ qid=%d id=%d s=%d}"
          p.epoch p.qseq O.D.pp_op p.op p.time p.origin p.qid p.op_id p.shard
    | Qack a -> Format.fprintf fmt "qack{e=%d #%d s=%d}" a.epoch a.qseq a.shard
    | Qcommit c ->
        Format.fprintf fmt "qcommit{e=%d #%d s=%d}" c.epoch c.qseq c.shard
    | Fnack n -> Format.fprintf fmt "fnack{qid=%d s=%d}" n.qid n.shard
    | Qfill q ->
        Format.fprintf fmt "qfill{e=%d from=%d s=%d}" q.epoch q.from_seq
          q.shard
    | Ping p -> Format.fprintf fmt "ping{#%d t0=%d s=%d}" p.seq p.t0 p.shard
    | Pong p ->
        Format.fprintf fmt "pong{#%d t0=%d rx=%d tx=%d s=%d}" p.seq p.t0
          p.t_rx p.t_tx p.shard
    | Shed s -> Format.fprintf fmt "shed{%s s=%d}" s.reason s.shard

  let encode msg =
    let b = Buffer.create 32 in
    let kind =
      match msg with
      | Hello h ->
          Wr.int b h.pid;
          Wr.int b h.n;
          Wr.int b h.d;
          Wr.int b h.u;
          Wr.int b h.eps;
          Wr.int b h.x;
          Wr.int b h.obj_tag;
          Wr.int b h.shards;
          k_hello
      | Entry e ->
          O.write_op b e.op;
          Wr.int b e.time;
          Wr.int b e.pid;
          Wr.int b e.trace;
          Wr.int b e.op_id;
          Wr.int b e.shard;
          k_entry
      | Invoke i ->
          O.write_op b i.op;
          Wr.int b i.trace;
          Wr.int b i.op_id;
          Wr.int b i.shard;
          Wr.int b i.deadline;
          k_invoke
      | Result r ->
          O.write_result b r.result;
          Wr.int b r.shard;
          k_result
      | Stats_req -> k_stats_req
      | Stats s ->
          Wr.int b s.Runtime.Transport_intf.sent;
          Wr.int b s.dropped;
          (match s.link with
          | None -> Wr.int b 0
          | Some l ->
              Wr.int b 1;
              Wr.int b l.reconnects;
              Wr.int b l.bytes_out;
              Wr.int b l.bytes_in;
              Wr.int b l.disconnected_us;
              Wr.int b l.queue_hwm;
              Wr.int b l.ctrl_hwm;
              Wr.int b l.lane_shed);
          k_stats
      | Error_msg e ->
          Wr.string b e;
          k_error
      | Catchup_req q ->
          Wr.int b q.time;
          Wr.int b q.cpid;
          Wr.int b q.shard;
          k_catchup_req
      | Catchup_rep p ->
          Wr.int b (List.length p.entries);
          List.iter
            (fun (op, time, pid, op_id) ->
              O.write_op b op;
              Wr.int b time;
              Wr.int b pid;
              Wr.int b op_id)
            p.entries;
          Wr.int b p.time;
          Wr.int b p.cpid;
          Wr.int b p.shard;
          k_catchup_rep
      | Hb h ->
          Wr.int b h.stamp;
          Wr.int b h.epoch;
          Wr.int b (if h.qmode then 1 else 0);
          Wr.int b h.seq;
          Wr.int b h.floor;
          Wr.int b h.shard;
          k_hb
      | Forward f ->
          Wr.int b f.qid;
          Wr.int b f.origin;
          O.write_op b f.op;
          Wr.int b f.op_id;
          Wr.int b f.trace;
          Wr.int b f.shard;
          k_forward
      | Propose p ->
          Wr.int b p.epoch;
          Wr.int b p.qseq;
          Wr.int b p.time;
          Wr.int b p.origin;
          Wr.int b p.qid;
          O.write_op b p.op;
          Wr.int b p.op_id;
          Wr.int b p.trace;
          Wr.int b p.shard;
          k_propose
      | Qack a ->
          Wr.int b a.epoch;
          Wr.int b a.qseq;
          Wr.int b a.shard;
          k_qack
      | Qcommit c ->
          Wr.int b c.epoch;
          Wr.int b c.qseq;
          Wr.int b c.shard;
          k_qcommit
      | Fnack n ->
          Wr.int b n.qid;
          Wr.int b n.shard;
          k_fnack
      | Qfill q ->
          Wr.int b q.epoch;
          Wr.int b q.from_seq;
          Wr.int b q.shard;
          k_qfill
      | Ping p ->
          Wr.int b p.seq;
          Wr.int b p.t0;
          Wr.int b p.shard;
          k_ping
      | Pong p ->
          Wr.int b p.seq;
          Wr.int b p.t0;
          Wr.int b p.t_rx;
          Wr.int b p.t_tx;
          Wr.int b p.shard;
          k_pong
      | Shed s ->
          Wr.string b s.reason;
          Wr.int b s.shard;
          k_shed
    in
    encode_frame ~kind ~payload:(Buffer.contents b)

  let decode_payload frame =
    match
      let r = Rd.of_string frame.payload in
      let msg =
        if frame.kind = k_hello then
          let pid = Rd.int r in
          let n = Rd.int r in
          let d = Rd.int r in
          let u = Rd.int r in
          let eps = Rd.int r in
          let x = Rd.int r in
          let obj_tag = Rd.int r in
          let shards = Rd.int r in
          Hello { pid; n; d; u; eps; x; obj_tag; shards }
        else if frame.kind = k_entry then begin
          let op = O.read_op r in
          let time = Rd.int r in
          let pid = Rd.int r in
          let trace = Rd.int r in
          let op_id = Rd.int r in
          let shard = Rd.int r in
          Entry { op; time; pid; trace; op_id; shard }
        end
        else if frame.kind = k_invoke then begin
          let op = O.read_op r in
          let trace = Rd.int r in
          let op_id = Rd.int r in
          let shard = Rd.int r in
          let deadline = Rd.int r in
          Invoke { op; trace; op_id; shard; deadline }
        end
        else if frame.kind = k_result then begin
          let result = O.read_result r in
          let shard = Rd.int r in
          Result { result; shard }
        end
        else if frame.kind = k_stats_req then Stats_req
        else if frame.kind = k_stats then begin
          let sent = Rd.int r in
          let dropped = Rd.int r in
          let link =
            match Rd.int r with
            | 0 -> None
            | 1 ->
                let reconnects = Rd.int r in
                let bytes_out = Rd.int r in
                let bytes_in = Rd.int r in
                let disconnected_us = Rd.int r in
                let queue_hwm = Rd.int r in
                let ctrl_hwm = Rd.int r in
                let lane_shed = Rd.int r in
                Some
                  {
                    Runtime.Transport_intf.reconnects;
                    bytes_out;
                    bytes_in;
                    disconnected_us;
                    queue_hwm;
                    ctrl_hwm;
                    lane_shed;
                  }
            | t -> Rd.fail (Printf.sprintf "stats: bad link tag %d" t)
          in
          Stats { Runtime.Transport_intf.sent; dropped; link }
        end
        else if frame.kind = k_error then Error_msg (Rd.string r)
        else if frame.kind = k_catchup_req then begin
          let time = Rd.int r in
          let cpid = Rd.int r in
          let shard = Rd.int r in
          Catchup_req { time; cpid; shard }
        end
        else if frame.kind = k_catchup_rep then begin
          let count = Rd.int r in
          if count < 0 || count > max_payload then
            Rd.fail (Printf.sprintf "catchup: bad entry count %d" count);
          let entries = ref [] in
          for _ = 1 to count do
            let op = O.read_op r in
            let time = Rd.int r in
            let pid = Rd.int r in
            let op_id = Rd.int r in
            entries := (op, time, pid, op_id) :: !entries
          done;
          let entries = List.rev !entries in
          let time = Rd.int r in
          let cpid = Rd.int r in
          let shard = Rd.int r in
          Catchup_rep { entries; time; cpid; shard }
        end
        else if frame.kind = k_hb then begin
          let stamp = Rd.int r in
          let epoch = Rd.int r in
          let qmode =
            match Rd.int r with
            | 0 -> false
            | 1 -> true
            | t -> Rd.fail (Printf.sprintf "hb: bad mode tag %d" t)
          in
          let seq = Rd.int r in
          let floor = Rd.int r in
          let shard = Rd.int r in
          Hb { stamp; epoch; qmode; seq; floor; shard }
        end
        else if frame.kind = k_forward then begin
          let qid = Rd.int r in
          let origin = Rd.int r in
          let op = O.read_op r in
          let op_id = Rd.int r in
          let trace = Rd.int r in
          let shard = Rd.int r in
          Forward { qid; origin; op; op_id; trace; shard }
        end
        else if frame.kind = k_propose then begin
          let epoch = Rd.int r in
          let qseq = Rd.int r in
          let time = Rd.int r in
          let origin = Rd.int r in
          let qid = Rd.int r in
          let op = O.read_op r in
          let op_id = Rd.int r in
          let trace = Rd.int r in
          let shard = Rd.int r in
          Propose { epoch; qseq; time; origin; qid; op; op_id; trace; shard }
        end
        else if frame.kind = k_qack then begin
          let epoch = Rd.int r in
          let qseq = Rd.int r in
          let shard = Rd.int r in
          Qack { epoch; qseq; shard }
        end
        else if frame.kind = k_qcommit then begin
          let epoch = Rd.int r in
          let qseq = Rd.int r in
          let shard = Rd.int r in
          Qcommit { epoch; qseq; shard }
        end
        else if frame.kind = k_fnack then begin
          let qid = Rd.int r in
          let shard = Rd.int r in
          Fnack { qid; shard }
        end
        else if frame.kind = k_qfill then begin
          let epoch = Rd.int r in
          let from_seq = Rd.int r in
          let shard = Rd.int r in
          Qfill { epoch; from_seq; shard }
        end
        else if frame.kind = k_ping then begin
          let seq = Rd.int r in
          let t0 = Rd.int r in
          let shard = Rd.int r in
          Ping { seq; t0; shard }
        end
        else if frame.kind = k_pong then begin
          let seq = Rd.int r in
          let t0 = Rd.int r in
          let t_rx = Rd.int r in
          let t_tx = Rd.int r in
          let shard = Rd.int r in
          Pong { seq; t0; t_rx; t_tx; shard }
        end
        else if frame.kind = k_shed then begin
          let reason = Rd.string r in
          let shard = Rd.int r in
          Shed { reason; shard }
        end
        else Rd.fail (Printf.sprintf "unknown frame kind %d" frame.kind)
      in
      if Rd.at_end r then Ok msg else Error "trailing payload bytes"
    with
    | verdict -> verdict
    | exception Bad_payload msg -> Error msg

  let decode ?(pos = 0) s =
    match decode_frame ~pos s with
    | Need_more k -> Need_more k
    | Corrupt e -> Corrupt e
    | Got (frame, next) -> (
        match decode_payload frame with
        | Ok msg -> Got (msg, next)
        | Error e -> Corrupt e)
end
