(** See the interface.  Layout of a frame:

    {v
    offset  size  field
    0       2     magic "TB"
    2       1     version
    3       1     kind
    4       4     payload length, u32 big-endian
    8       4     CRC-32 (IEEE) over bytes 2..7 and the payload
    12      len   payload
    v} *)

(* v1: initial framing.  v2: Entry and Invoke payloads carry the
   originating operation's trace id (one varint) so per-process [Obs]
   traces reassemble into cross-replica spans.  v3: Entry and Invoke also
   carry the client operation id (one varint, 0 = none) for idempotent
   retries, and two catch-up frame kinds (7, 8) implement peer
   anti-entropy after a crash.  v4: every op/ack/catch-up payload gains a
   trailing shard id (one varint, 0 = the only shard) so many Algorithm 1
   instances multiplex over one per-peer link, and the hello carries the
   sender's shard count for handshake-time topology agreement.  Peers
   speaking older versions are rejected at decode ("unsupported version
   N"), which the handshake turns into a clean [Error_msg] rather than a
   crash. *)
let version = 4
let header_len = 12
let max_payload = 1 lsl 24  (* 16 MiB: far above any entry, guards length bombs *)
let magic0 = 'T'
let magic1 = 'B'

type frame = { kind : int; payload : string }

type 'a progress =
  | Got of 'a * int
  | Need_more of int
  | Corrupt of string

(* ---- CRC-32 (IEEE 802.3, reflected, poly 0xedb88320) ---- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc s ~pos ~len =
  let table = Lazy.force crc_table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xff) lxor (!crc lsr 8)
  done;
  !crc

let crc32 s ~pos ~len = crc32_update 0xffffffff s ~pos ~len lxor 0xffffffff

let frame_crc ~kind ~payload =
  (* Cover version, kind and length exactly as laid out on the wire, then
     the payload — so any single-bit flip in bytes 2.. is detected. *)
  let hdr = Bytes.create 6 in
  Bytes.set hdr 0 (Char.chr version);
  Bytes.set hdr 1 (Char.chr kind);
  let len = String.length payload in
  Bytes.set hdr 2 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set hdr 3 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set hdr 4 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set hdr 5 (Char.chr (len land 0xff));
  let crc = crc32_update 0xffffffff (Bytes.unsafe_to_string hdr) ~pos:0 ~len:6 in
  crc32_update crc payload ~pos:0 ~len lxor 0xffffffff

let u32_be s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let encode_frame ~kind ~payload =
  if kind < 0 || kind > 0xff then invalid_arg "Codec.encode_frame: kind";
  let len = String.length payload in
  if len > max_payload then invalid_arg "Codec.encode_frame: payload too large";
  let crc = frame_crc ~kind ~payload in
  let b = Buffer.create (header_len + len) in
  Buffer.add_char b magic0;
  Buffer.add_char b magic1;
  Buffer.add_char b (Char.chr version);
  Buffer.add_char b (Char.chr kind);
  Buffer.add_char b (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (len land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((crc lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (crc land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let decode_frame ?(pos = 0) s =
  let avail = String.length s - pos in
  if pos < 0 || avail < 0 then Corrupt "negative offset"
  else if avail < header_len then Need_more (header_len - avail)
  else if s.[pos] <> magic0 || s.[pos + 1] <> magic1 then Corrupt "bad magic"
  else if Char.code s.[pos + 2] <> version then
    Corrupt (Printf.sprintf "unsupported version %d" (Char.code s.[pos + 2]))
  else
    let kind = Char.code s.[pos + 3] in
    let len = u32_be s (pos + 4) in
    if len > max_payload then
      Corrupt (Printf.sprintf "oversized frame (%d bytes)" len)
    else if avail < header_len + len then Need_more (header_len + len - avail)
    else
      let payload = String.sub s (pos + header_len) len in
      let crc = u32_be s (pos + 8) in
      if frame_crc ~kind ~payload <> crc then Corrupt "checksum mismatch"
      else Got ({ kind; payload }, pos + header_len + len)

(* ---- payload primitives ---- *)

exception Bad_payload of string

module Wr = struct
  let rec uint b n =
    if n land lnot 0x7f = 0 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      uint b (n lsr 7)
    end

  let int b i = uint b ((i lsl 1) lxor (i asr 62))

  let string b s =
    uint b (String.length s);
    Buffer.add_string b s
end

module Rd = struct
  type t = { buf : string; mutable pos : int }

  let of_string s = { buf = s; pos = 0 }
  let fail msg = raise (Bad_payload msg)

  let byte t =
    if t.pos >= String.length t.buf then fail "truncated payload"
    else begin
      let c = Char.code t.buf.[t.pos] in
      t.pos <- t.pos + 1;
      c
    end

  let uint t =
    let rec go shift acc =
      if shift > 62 then fail "varint overflow"
      else
        let c = byte t in
        let acc = acc lor ((c land 0x7f) lsl shift) in
        if c land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let int t =
    let n = uint t in
    (n lsr 1) lxor (-(n land 1))

  let string t =
    let len = uint t in
    if len < 0 || t.pos + len > String.length t.buf then
      fail "truncated string"
    else begin
      let s = String.sub t.buf t.pos len in
      t.pos <- t.pos + len;
      s
    end

  let at_end t = t.pos = String.length t.buf
end

(* ---- typed messages ---- *)

module type OBJ_CODEC = sig
  module D : Spec.Data_type.S

  val obj_tag : int
  val write_op : Buffer.t -> D.op -> unit
  val read_op : Rd.t -> D.op
  val write_result : Buffer.t -> D.result -> unit
  val read_result : Rd.t -> D.result
  val write_state : Buffer.t -> D.state -> unit
  val read_state : Rd.t -> D.state
end

type hello = {
  pid : int;
  n : int;
  d : int;
  u : int;
  eps : int;
  x : int;
  obj_tag : int;
  shards : int;
}

(* frame kinds *)
let k_hello = 0
let k_entry = 1
let k_invoke = 2
let k_result = 3
let k_stats_req = 4
let k_stats = 5
let k_error = 6
let k_catchup_req = 7
let k_catchup_rep = 8

module Make (O : OBJ_CODEC) = struct
  type msg =
    | Hello of hello
    | Entry of {
        op : O.D.op;
        time : int;
        pid : int;
        trace : int;
        op_id : int;
        shard : int;
      }
    | Invoke of { op : O.D.op; trace : int; op_id : int; shard : int }
    | Result of { result : O.D.result; shard : int }
    | Stats_req
    | Stats of Runtime.Transport_intf.stats
    | Error_msg of string
    | Catchup_req of { time : int; cpid : int; shard : int }
    | Catchup_rep of {
        entries : (O.D.op * int * int * int) list;
            (** op, time, pid, op id — stamp order *)
        time : int;
        cpid : int;
        shard : int;
      }

  let equal_msg a b =
    match (a, b) with
    | Hello h1, Hello h2 -> h1 = h2
    | Entry e1, Entry e2 ->
        O.D.equal_op e1.op e2.op && e1.time = e2.time && e1.pid = e2.pid
        && e1.trace = e2.trace && e1.op_id = e2.op_id && e1.shard = e2.shard
    | Invoke i1, Invoke i2 ->
        O.D.equal_op i1.op i2.op && i1.trace = i2.trace && i1.op_id = i2.op_id
        && i1.shard = i2.shard
    | Result r1, Result r2 ->
        O.D.equal_result r1.result r2.result && r1.shard = r2.shard
    | Stats_req, Stats_req -> true
    | Stats s1, Stats s2 -> s1 = s2
    | Error_msg e1, Error_msg e2 -> String.equal e1 e2
    | Catchup_req q1, Catchup_req q2 ->
        q1.time = q2.time && q1.cpid = q2.cpid && q1.shard = q2.shard
    | Catchup_rep p1, Catchup_rep p2 ->
        p1.time = p2.time && p1.cpid = p2.cpid && p1.shard = p2.shard
        && List.length p1.entries = List.length p2.entries
        && List.for_all2
             (fun (o1, t1, p1, i1) (o2, t2, p2, i2) ->
               O.D.equal_op o1 o2 && t1 = t2 && p1 = p2 && i1 = i2)
             p1.entries p2.entries
    | _ -> false

  let pp_msg fmt = function
    | Hello h ->
        Format.fprintf fmt
          "hello{pid=%d n=%d d=%d u=%d eps=%d x=%d obj=%d shards=%d}" h.pid
          h.n h.d h.u h.eps h.x h.obj_tag h.shards
    | Entry e ->
        Format.fprintf fmt "entry{%a @@ ⟨%d,%d⟩ t=%x id=%d s=%d}" O.D.pp_op
          e.op e.time e.pid e.trace e.op_id e.shard
    | Invoke i ->
        Format.fprintf fmt "invoke{%a t=%x id=%d s=%d}" O.D.pp_op i.op i.trace
          i.op_id i.shard
    | Result r ->
        Format.fprintf fmt "result{%a s=%d}" O.D.pp_result r.result r.shard
    | Stats_req -> Format.pp_print_string fmt "stats?"
    | Stats s ->
        Format.fprintf fmt "stats{%a}" Runtime.Transport_intf.pp_stats s
    | Error_msg e -> Format.fprintf fmt "error{%s}" e
    | Catchup_req q ->
        Format.fprintf fmt "catchup?{hwm=⟨%d,%d⟩ s=%d}" q.time q.cpid q.shard
    | Catchup_rep p ->
        Format.fprintf fmt "catchup{%d entries, hwm=⟨%d,%d⟩ s=%d}"
          (List.length p.entries) p.time p.cpid p.shard

  let encode msg =
    let b = Buffer.create 32 in
    let kind =
      match msg with
      | Hello h ->
          Wr.int b h.pid;
          Wr.int b h.n;
          Wr.int b h.d;
          Wr.int b h.u;
          Wr.int b h.eps;
          Wr.int b h.x;
          Wr.int b h.obj_tag;
          Wr.int b h.shards;
          k_hello
      | Entry e ->
          O.write_op b e.op;
          Wr.int b e.time;
          Wr.int b e.pid;
          Wr.int b e.trace;
          Wr.int b e.op_id;
          Wr.int b e.shard;
          k_entry
      | Invoke i ->
          O.write_op b i.op;
          Wr.int b i.trace;
          Wr.int b i.op_id;
          Wr.int b i.shard;
          k_invoke
      | Result r ->
          O.write_result b r.result;
          Wr.int b r.shard;
          k_result
      | Stats_req -> k_stats_req
      | Stats s ->
          Wr.int b s.Runtime.Transport_intf.sent;
          Wr.int b s.dropped;
          (match s.link with
          | None -> Wr.int b 0
          | Some l ->
              Wr.int b 1;
              Wr.int b l.reconnects;
              Wr.int b l.bytes_out;
              Wr.int b l.bytes_in;
              Wr.int b l.disconnected_us;
              Wr.int b l.queue_hwm);
          k_stats
      | Error_msg e ->
          Wr.string b e;
          k_error
      | Catchup_req q ->
          Wr.int b q.time;
          Wr.int b q.cpid;
          Wr.int b q.shard;
          k_catchup_req
      | Catchup_rep p ->
          Wr.int b (List.length p.entries);
          List.iter
            (fun (op, time, pid, op_id) ->
              O.write_op b op;
              Wr.int b time;
              Wr.int b pid;
              Wr.int b op_id)
            p.entries;
          Wr.int b p.time;
          Wr.int b p.cpid;
          Wr.int b p.shard;
          k_catchup_rep
    in
    encode_frame ~kind ~payload:(Buffer.contents b)

  let decode_payload frame =
    match
      let r = Rd.of_string frame.payload in
      let msg =
        if frame.kind = k_hello then
          let pid = Rd.int r in
          let n = Rd.int r in
          let d = Rd.int r in
          let u = Rd.int r in
          let eps = Rd.int r in
          let x = Rd.int r in
          let obj_tag = Rd.int r in
          let shards = Rd.int r in
          Hello { pid; n; d; u; eps; x; obj_tag; shards }
        else if frame.kind = k_entry then begin
          let op = O.read_op r in
          let time = Rd.int r in
          let pid = Rd.int r in
          let trace = Rd.int r in
          let op_id = Rd.int r in
          let shard = Rd.int r in
          Entry { op; time; pid; trace; op_id; shard }
        end
        else if frame.kind = k_invoke then begin
          let op = O.read_op r in
          let trace = Rd.int r in
          let op_id = Rd.int r in
          let shard = Rd.int r in
          Invoke { op; trace; op_id; shard }
        end
        else if frame.kind = k_result then begin
          let result = O.read_result r in
          let shard = Rd.int r in
          Result { result; shard }
        end
        else if frame.kind = k_stats_req then Stats_req
        else if frame.kind = k_stats then begin
          let sent = Rd.int r in
          let dropped = Rd.int r in
          let link =
            match Rd.int r with
            | 0 -> None
            | 1 ->
                let reconnects = Rd.int r in
                let bytes_out = Rd.int r in
                let bytes_in = Rd.int r in
                let disconnected_us = Rd.int r in
                let queue_hwm = Rd.int r in
                Some
                  {
                    Runtime.Transport_intf.reconnects;
                    bytes_out;
                    bytes_in;
                    disconnected_us;
                    queue_hwm;
                  }
            | t -> Rd.fail (Printf.sprintf "stats: bad link tag %d" t)
          in
          Stats { Runtime.Transport_intf.sent; dropped; link }
        end
        else if frame.kind = k_error then Error_msg (Rd.string r)
        else if frame.kind = k_catchup_req then begin
          let time = Rd.int r in
          let cpid = Rd.int r in
          let shard = Rd.int r in
          Catchup_req { time; cpid; shard }
        end
        else if frame.kind = k_catchup_rep then begin
          let count = Rd.int r in
          if count < 0 || count > max_payload then
            Rd.fail (Printf.sprintf "catchup: bad entry count %d" count);
          let entries = ref [] in
          for _ = 1 to count do
            let op = O.read_op r in
            let time = Rd.int r in
            let pid = Rd.int r in
            let op_id = Rd.int r in
            entries := (op, time, pid, op_id) :: !entries
          done;
          let entries = List.rev !entries in
          let time = Rd.int r in
          let cpid = Rd.int r in
          let shard = Rd.int r in
          Catchup_rep { entries; time; cpid; shard }
        end
        else Rd.fail (Printf.sprintf "unknown frame kind %d" frame.kind)
      in
      if Rd.at_end r then Ok msg else Error "trailing payload bytes"
    with
    | verdict -> verdict
    | exception Bad_payload msg -> Error msg

  let decode ?(pos = 0) s =
    match decode_frame ~pos s with
    | Need_more k -> Need_more k
    | Corrupt e -> Corrupt e
    | Got (frame, next) -> (
        match decode_payload frame with
        | Ok msg -> Got (msg, next)
        | Error e -> Corrupt e)
end
