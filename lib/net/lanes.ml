type lane = Ctrl | Data

let lane_code = function Ctrl -> 0 | Data -> 1
let lane_name = function Ctrl -> "ctrl" | Data -> "data"

type 'a t = {
  ctrl : 'a Queue.t;
  data : 'a Queue.t;
  size_of : 'a -> int;
  max_data_frames : int;
  max_data_bytes : int;
  mutable data_bytes : int;
  mutable shed : int;
  mutable ctrl_hwm : int;
  mutable data_hwm : int;
}

let create ?(max_data_frames = 4096) ?(max_data_bytes = 4 lsl 20) ~size_of ()
    =
  if max_data_frames < 1 then invalid_arg "Lanes.create: max_data_frames < 1";
  if max_data_bytes < 1 then invalid_arg "Lanes.create: max_data_bytes < 1";
  {
    ctrl = Queue.create ();
    data = Queue.create ();
    size_of;
    max_data_frames;
    max_data_bytes;
    data_bytes = 0;
    shed = 0;
    ctrl_hwm = 0;
    data_hwm = 0;
  }

let length t = Queue.length t.ctrl + Queue.length t.data
let is_empty t = Queue.is_empty t.ctrl && Queue.is_empty t.data
let data_bytes t = t.data_bytes
let shed t = t.shed
let ctrl_hwm t = t.ctrl_hwm
let data_hwm t = t.data_hwm
let ctrl_length t = Queue.length t.ctrl
let data_length t = Queue.length t.data

let push t lane x =
  match lane with
  | Ctrl ->
      Queue.push x t.ctrl;
      let d = Queue.length t.ctrl in
      if d > t.ctrl_hwm then t.ctrl_hwm <- d;
      0
  | Data ->
      let sz = t.size_of x in
      if sz > t.max_data_bytes then begin
        (* Larger than the whole budget: shed the arrival itself rather
           than empty the lane for a frame that can never fit. *)
        t.shed <- t.shed + 1;
        1
      end
      else begin
        let dropped = ref 0 in
        while
          (not (Queue.is_empty t.data))
          && (Queue.length t.data >= t.max_data_frames
             || t.data_bytes + sz > t.max_data_bytes)
        do
          let old = Queue.pop t.data in
          t.data_bytes <- t.data_bytes - t.size_of old;
          t.shed <- t.shed + 1;
          incr dropped
        done;
        Queue.push x t.data;
        t.data_bytes <- t.data_bytes + sz;
        let d = Queue.length t.data in
        if d > t.data_hwm then t.data_hwm <- d;
        !dropped
      end

let peek t =
  match Queue.peek_opt t.ctrl with
  | Some x -> Some (Ctrl, x)
  | None -> (
      match Queue.peek_opt t.data with
      | Some x -> Some (Data, x)
      | None -> None)

let drop t lane =
  match lane with
  | Ctrl -> ignore (Queue.pop t.ctrl)
  | Data ->
      let x = Queue.pop t.data in
      t.data_bytes <- t.data_bytes - t.size_of x

let clear t =
  Queue.clear t.ctrl;
  Queue.clear t.data;
  t.data_bytes <- 0
