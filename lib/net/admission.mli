(** Server-side admission control: an inflight budget plus an EWMA
    service-time estimate.

    Deadlines make dead work visible {e before} it is done: an op that
    cannot complete before its client-minted deadline should be refused at
    the door (cheap, and the client's capped-backoff retry may land on a
    less loaded replica) rather than executed late (wasted service time
    that also delays every queued op behind it).  [try_admit] refuses when
    the inflight budget is full, or when the expected completion time —
    now + EWMA service time × (queue ahead + 1) — exceeds the op's
    deadline.

    Thread-safe: client connections admit from their own reader threads. *)

type t

val create : ?budget:int -> ?alpha:float -> unit -> t
(** [budget] is the max concurrently admitted ops (default 64); [alpha]
    the EWMA weight of the newest completion (default 0.2).
    @raise Invalid_argument on a non-positive budget or alpha ∉ (0, 1]. *)

type verdict =
  | Admitted  (** proceed; pair with exactly one {!finish} *)
  | Shed of string  (** refusal reason, ready for a [Codec] Shed reply *)

val try_admit : t -> now_us:int -> deadline_us:int -> verdict
(** [deadline_us] is the op's absolute deadline on the
    {!Prelude.Mclock} timeline; 0 = none (only the budget applies).
    A fresh estimator (no completions yet) admits everything and learns
    from the first completions. *)

val finish : t -> elapsed_us:int -> unit
(** Completion (success or failure) of an admitted op: releases its
    budget slot and folds its service time into the EWMA. *)

val inflight : t -> int
val ewma_us : t -> int

type totals = { admitted : int; shed_budget : int; shed_deadline : int }

val totals : t -> totals
