(** Tuning knobs for the quorum fallback, shared by every layer that arms
    it (in-process clusters, [Net.Serve] processes, shard hosts).

    The defaults aim CI-sized clusters: heartbeats every 2.5 ms and
    suspicion after 40 consecutive missed intervals put the failure
    detector's timeout at 100 ms — far above any scheduler stall a loaded
    2-core runner produces, far below the seconds a load run lasts. *)

type t = {
  hb_us : int;  (** heartbeat period, µs *)
  suspect_after : int;
      (** consecutive missed heartbeat intervals before a peer is
          suspected; the detector's timeout is [hb_us * suspect_after] *)
  on_mode : quorum:bool -> epoch:int -> seq:int -> unit;
      (** called from inside the replica's event loop on every mode
          transition — the hook [Net.Serve] logs (and CI greps) and the
          chaos harness turns into an availability report *)
  on_suspect : peer:int -> suspected:bool -> unit;
      (** called on every suspicion transition of the failure detector *)
}

let default =
  {
    hb_us = 2_500;
    suspect_after = 40;
    on_mode = (fun ~quorum:_ ~epoch:_ ~seq:_ -> ());
    on_suspect = (fun ~peer:_ ~suspected:_ -> ());
  }

let timeout_us t = t.hb_us * t.suspect_after
