(** The per-object mode state machine: Algorithm-1 fast path vs ABD-style
    quorum fallback.

    Eras are numbered by a monotone [epoch].  Every switch — into quorum
    mode or back to the fast path — bumps the epoch, and the switch is
    {e announced} by piggybacking (epoch, mode, sequencer, floor) on every
    heartbeat.  A replica adopts any announcement with a strictly higher
    epoch than its own; ties and lower epochs are stale and ignored.  That
    makes the protocol safe under the single-initiator rule used here (the
    lowest non-suspected pid initiates switches), because two initiators
    can only race when the failure detector disagrees, and then the higher
    epoch deterministically wins on every replica that can still talk to
    both.

    The controller itself is pure bookkeeping: the replica feeds it
    failure-detector summaries and announcements, and acts on the returned
    decisions (draining in-flight fast-path ops before entering quorum
    mode, draining the commit log before leaving it — those barriers live
    in [Runtime.Replica], not here). *)

type mode = Fast | Quorum

type t = {
  n : int;
  me : int;
  mutable epoch : int;
  mutable mode : mode;
  mutable seq_pid : int;  (** sequencer of the current quorum era *)
  mutable floor : int;
      (** largest quorum-assigned stamp of the last quorum era; after a
          switch back, fast-path invocation stamps must clear this *)
  mutable stalled : bool;  (** alive < majority: refuse client ops *)
  mutable max_seen_epoch : int;
}

let make ~n ~me =
  {
    n;
    me;
    epoch = 0;
    mode = Fast;
    seq_pid = 0;
    floor = min_int;
    stalled = false;
    max_seen_epoch = 0;
  }

let majority t = (t.n / 2) + 1
let mode t = t.mode
let epoch t = t.epoch
let seq_pid t = t.seq_pid
let floor t = t.floor
let stalled t = t.stalled
let is_sequencer t = t.mode = Quorum && t.seq_pid = t.me

(** What this replica announces on each heartbeat. *)
let announcement t = (t.epoch, t.mode = Quorum, t.seq_pid, t.floor)

type observed = Adopted | Ignored

(* An announcement arrived (piggybacked on a heartbeat).  Strictly higher
   epochs win; everything else is stale. *)
let observe t ~epoch ~quorum ~seq ~floor =
  if epoch > t.max_seen_epoch then t.max_seen_epoch <- epoch;
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    t.mode <- (if quorum then Quorum else Fast);
    t.seq_pid <- seq;
    if floor > t.floor then t.floor <- floor;
    Adopted
  end
  else Ignored

type decision =
  | Initiate_quorum  (** this replica should start a quorum era *)
  | Initiate_fast  (** this replica (the sequencer) should end it *)
  | Stall  (** alive < majority: stop serving *)
  | Unstall  (** quorum of peers back: resume serving *)

(* Poll after every failure-detector transition.  At most one decision per
   call; the replica acts on it and polls again. *)
let consider t ~alive ~all_alive ~suspects_any ~lowest =
  if alive < majority t then if t.stalled then None else Some Stall
  else if t.stalled then
    (* Resuming from a stall must not fork history: in quorum mode a
       majority suffices, but resuming the fast path is only safe once
       every replica is back *and* no era we missed is in flight — a
       higher announced epoch means our idea of the mode is stale, so we
       wait for its announcement to adopt instead. *)
    if t.mode = Quorum || (all_alive && t.max_seen_epoch = t.epoch) then
      Some Unstall
    else None
  else
    match t.mode with
    | Fast when suspects_any && lowest = t.me -> Some Initiate_quorum
    | Quorum when all_alive && t.seq_pid = t.me -> Some Initiate_fast
    | _ -> None

let stall t = t.stalled <- true
let unstall t = t.stalled <- false

(* Begin a quorum era with this replica as sequencer.  Bumping past
   [max_seen_epoch] guarantees the announcement beats anything already in
   flight. *)
let initiate_quorum t =
  t.epoch <- max t.epoch t.max_seen_epoch + 1;
  t.max_seen_epoch <- t.epoch;
  t.mode <- Quorum;
  t.seq_pid <- t.me;
  t.epoch

(* End the quorum era (sequencer only, once the log is drained and every
   replica is alive).  [floor] is the largest stamp the era assigned. *)
let initiate_fast t ~floor =
  t.epoch <- max t.epoch t.max_seen_epoch + 1;
  t.max_seen_epoch <- t.epoch;
  t.mode <- Fast;
  if floor > t.floor then t.floor <- floor;
  t.epoch
