(** φ-style heartbeat failure detector.

    Every peer broadcasts a stamped heartbeat each interval; the detector
    keeps, per peer, the receive time of the last frame and a suspicion
    counter — the number of consecutive heartbeat intervals that have
    elapsed since.  A peer whose counter reaches [suspect_after] is
    {e suspected}; any frame from it clears the suspicion (the detector is
    eventually perfect only while partial synchrony holds, which is all
    the mode controller needs: suspicion triggers the quorum fallback, and
    a false suspicion merely costs a round trip through the slow mode).

    The detector also tracks the largest {e sender-clock stamp} received
    from each peer.  Over FIFO links this is the replica's knowledge
    horizon: everything peer [q] sent with a stamp below [heard_stamp q]
    has been received — the fact the fast path's response gate is built
    on. *)

type t = {
  n : int;
  me : int;
  hb_us : int;
  suspect_after : int;
  last_rx : int array;  (** real time of the last frame from q, µs *)
  heard_stamp : int array;  (** max sender-clock stamp received from q *)
  suspected : bool array;
}

let make ~n ~me ~hb_us ~suspect_after ~now_us =
  if n < 1 then invalid_arg "Failure_detector.make: n must be >= 1";
  {
    n;
    me;
    hb_us;
    suspect_after;
    (* One extra timeout of boot grace: peers whose TCP links are still
       handshaking must not be suspected before they ever had a chance to
       beat. *)
    last_rx = Array.make n (now_us + (hb_us * suspect_after));
    heard_stamp = Array.make n min_int;
    suspected = Array.make n false;
  }

(* A frame from [peer] arrived, carrying its sender-clock [stamp].
   Returns [true] if the peer was suspected and is now cleared. *)
let heard t ~peer ~stamp ~now_us =
  if peer < 0 || peer >= t.n || peer = t.me then false
  else begin
    t.last_rx.(peer) <- now_us;
    if stamp > t.heard_stamp.(peer) then t.heard_stamp.(peer) <- stamp;
    if t.suspected.(peer) then begin
      t.suspected.(peer) <- false;
      true
    end
    else false
  end

let suspicion t peer =
  if peer = t.me then 0 else max 0 ((Prelude.Mclock.now_us () - t.last_rx.(peer)) / t.hb_us)

(* Advance the detector to [now_us]; returns the peers that just crossed
   the suspicion threshold (oldest silence first). *)
let tick t ~now_us =
  let fresh = ref [] in
  for peer = t.n - 1 downto 0 do
    if peer <> t.me && not t.suspected.(peer) then begin
      let missed = (now_us - t.last_rx.(peer)) / t.hb_us in
      if missed >= t.suspect_after then begin
        t.suspected.(peer) <- true;
        fresh := peer :: !fresh
      end
    end
  done;
  !fresh

let suspected t peer = peer <> t.me && t.suspected.(peer)
let suspects_any t = Array.exists Fun.id t.suspected

let alive t =
  let c = ref 0 in
  for p = 0 to t.n - 1 do
    if p = t.me || not t.suspected.(p) then incr c
  done;
  !c

let all_alive t = alive t = t.n

let lowest_alive t =
  let rec go p = if p = t.me || not t.suspected.(p) then p else go (p + 1) in
  go 0

(* The smallest knowledge horizon over every peer: a response whose stamp
   threshold is below this is releasable (see the replica's gate). *)
let min_heard_stamp t =
  let m = ref max_int in
  for p = 0 to t.n - 1 do
    if p <> t.me && t.heard_stamp.(p) < !m then m := t.heard_stamp.(p)
  done;
  if !m = max_int then max_int (* n = 1: the gate is vacuous *) else !m

let heard_stamp t peer = t.heard_stamp.(peer)
