(** Ordered-commit log for the quorum era.

    The sequencer assigns consecutive sequence numbers ([qseq]) to
    operations and proposes them; followers store each proposal and ack
    it back; a proposal acked by a majority commits, and every replica
    applies the committed prefix {e in qseq order, with no gaps}.  The
    log is generic in the payload so the no-drop / no-duplicate property
    can be tested in isolation (see the qcheck suite): however stores,
    acks and commits interleave, [applyable] yields each committed
    sequence number exactly once, in order, and never before its
    payload is present. *)

type 'p slot = {
  mutable payload : 'p option;
  mutable acks : int list;
  mutable committed : bool;
}

type 'p t = {
  n : int;
  mutable epoch : int;
  slots : (int, 'p slot) Hashtbl.t;
  mutable next : int;  (** sequencer: next qseq to assign *)
  mutable applied : int;  (** highest qseq handed out by [applyable] *)
  mutable max_known : int;  (** highest qseq ever mentioned *)
}

let create ~n ~epoch =
  { n; epoch; slots = Hashtbl.create 64; next = 0; applied = -1; max_known = -1 }

(* A new era invalidates everything uncommitted from the old one. *)
let reset t ~epoch =
  Hashtbl.reset t.slots;
  t.epoch <- epoch;
  t.next <- 0;
  t.applied <- -1;
  t.max_known <- -1

let epoch t = t.epoch
let majority t = (t.n / 2) + 1

let slot t qseq =
  match Hashtbl.find_opt t.slots qseq with
  | Some s -> s
  | None ->
      let s = { payload = None; acks = []; committed = false } in
      Hashtbl.replace t.slots qseq s;
      if qseq > t.max_known then t.max_known <- qseq;
      s

(* Sequencer: assign the next qseq to [p], self-acknowledged. *)
let append t ~me p =
  let qseq = t.next in
  t.next <- qseq + 1;
  let s = slot t qseq in
  s.payload <- Some p;
  s.acks <- [ me ];
  qseq

(* Follower: store a proposal (idempotent — re-proposals after Qfill keep
   the first payload). *)
let store t ~qseq p =
  let s = slot t qseq in
  if s.payload = None then s.payload <- Some p

(* Sequencer: record an ack.  Returns [true] exactly when this ack is the
   one that reaches a majority — the caller then broadcasts Commit. *)
let ack t ~qseq ~from =
  let s = slot t qseq in
  if s.committed || List.mem from s.acks then false
  else begin
    s.acks <- from :: s.acks;
    List.length s.acks >= majority t
  end

let commit t ~qseq =
  let s = slot t qseq in
  s.committed <- true

let committed t ~qseq =
  match Hashtbl.find_opt t.slots qseq with
  | Some s -> s.committed
  | None -> false

let payload t ~qseq =
  match Hashtbl.find_opt t.slots qseq with
  | Some s -> s.payload
  | None -> None

(* The committed contiguous prefix past the apply cursor, in order.  Each
   qseq is yielded exactly once across the log's lifetime. *)
let applyable t =
  let rec go acc =
    let nxt = t.applied + 1 in
    match Hashtbl.find_opt t.slots nxt with
    | Some { payload = Some p; committed = true; _ } ->
        t.applied <- nxt;
        go ((nxt, p) :: acc)
    | _ -> List.rev acc
  in
  go []

let applied t = t.applied
let highest t = t.max_known

(* Sequence numbers at or below something known but whose payload we lack
   — the holes a follower asks the sequencer to Qfill. *)
let missing t =
  let rec go qseq acc =
    if qseq > t.max_known then List.rev acc
    else
      let acc =
        match Hashtbl.find_opt t.slots qseq with
        | Some { payload = Some _; _ } -> acc
        | _ -> qseq :: acc
      in
      go (qseq + 1) acc
  in
  go (t.applied + 1) []

(* Is every assigned slot committed and applied?  The sequencer's
   switch-back barrier. *)
let drained t = t.applied = t.max_known
