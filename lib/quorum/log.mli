(** Ordered-commit log for the quorum era: sequencer-assigned sequence
    numbers, majority acknowledgement, gap-free in-order apply.  Generic
    in the payload so the no-drop / no-duplicate property is qcheck-able
    in isolation. *)

type 'p t

val create : n:int -> epoch:int -> 'p t

val reset : 'p t -> epoch:int -> unit
(** Start a new era: drop every slot and restart sequencing at 0. *)

val epoch : 'p t -> int
val majority : 'p t -> int

val append : 'p t -> me:int -> 'p -> int
(** Sequencer: assign the next qseq, self-acknowledged; returns it. *)

val store : 'p t -> qseq:int -> 'p -> unit
(** Follower: store a proposal (idempotent; first payload wins). *)

val ack : 'p t -> qseq:int -> from:int -> bool
(** Sequencer: record an ack.  [true] exactly when this ack reaches the
    majority threshold — broadcast Commit then. *)

val commit : 'p t -> qseq:int -> unit
val committed : 'p t -> qseq:int -> bool
val payload : 'p t -> qseq:int -> 'p option

val applyable : 'p t -> (int * 'p) list
(** Committed contiguous prefix past the apply cursor, in qseq order.
    Advances the cursor: each qseq is yielded exactly once, ever. *)

val applied : 'p t -> int
(** Highest qseq handed out by [applyable] (-1 initially). *)

val highest : 'p t -> int
(** Highest qseq ever mentioned (-1 initially). *)

val missing : 'p t -> int list
(** Known sequence numbers whose payload we lack — the holes to Qfill. *)

val drained : 'p t -> bool
(** Every assigned slot applied — the sequencer's switch-back barrier. *)
