(** Heartbeat failure detector with φ-style suspicion counters.

    Tracks, per peer, the arrival time of the last frame and the largest
    sender-clock stamp it carried.  A peer that stays silent for
    [suspect_after] heartbeat intervals becomes suspected; any later frame
    clears the suspicion. *)

type t

val make : n:int -> me:int -> hb_us:int -> suspect_after:int -> now_us:int -> t
(** Fresh detector for [n] replicas, observing as replica [me].  Every
    peer starts with one full timeout of boot grace. *)

val heard : t -> peer:int -> stamp:int -> now_us:int -> bool
(** Record a frame from [peer] carrying its sender-clock [stamp].  Returns
    [true] iff the peer was suspected and is now cleared. *)

val tick : t -> now_us:int -> int list
(** Advance to [now_us]; returns peers that just became suspected. *)

val suspicion : t -> int -> int
(** Current suspicion counter for a peer: consecutive heartbeat intervals
    elapsed since its last frame (0 for [me]). *)

val suspected : t -> int -> bool
val suspects_any : t -> bool

val alive : t -> int
(** Number of non-suspected replicas, counting [me]. *)

val all_alive : t -> bool

val lowest_alive : t -> int
(** Smallest pid not currently suspected (the deterministic sequencer
    choice in quorum mode). *)

val min_heard_stamp : t -> int
(** Smallest knowledge horizon over all peers: every peer has sent a frame
    stamped at least this value.  [max_int] when there are no peers. *)

val heard_stamp : t -> int -> int
(** Largest sender-clock stamp received from a given peer ([min_int] until
    its first frame). *)
