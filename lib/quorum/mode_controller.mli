(** Fast-path / quorum-mode state machine (see DESIGN.md §13).

    Eras are numbered by a monotone epoch; switches are announced on
    heartbeats and strictly higher epochs win.  The controller is pure
    bookkeeping — the drain barriers around a switch live in
    [Runtime.Replica]. *)

type mode = Fast | Quorum
type t

val make : n:int -> me:int -> t
val majority : t -> int
val mode : t -> mode
val epoch : t -> int
val seq_pid : t -> int

val floor : t -> int
(** Largest stamp assigned by any quorum era so far; fast-path invocation
    stamps after a switch back must clear it. *)

val stalled : t -> bool
val is_sequencer : t -> bool

val announcement : t -> int * bool * int * int
(** [(epoch, quorum?, seq_pid, floor)] to piggyback on heartbeats. *)

type observed = Adopted | Ignored

val observe : t -> epoch:int -> quorum:bool -> seq:int -> floor:int -> observed
(** Fold in a peer's announcement; [Adopted] iff its epoch was strictly
    higher than ours (the caller must then run its switch barrier). *)

type decision =
  | Initiate_quorum  (** this replica should start a quorum era *)
  | Initiate_fast  (** this replica (the sequencer) should end it *)
  | Stall  (** alive < majority: stop serving *)
  | Unstall  (** quorum of peers back: resume serving *)

val consider :
  t -> alive:int -> all_alive:bool -> suspects_any:bool -> lowest:int ->
  decision option
(** Poll after a failure-detector transition; at most one decision per
    call.  Resuming the fast path from a stall additionally requires that
    no higher epoch was ever observed (our mode might be stale). *)

val stall : t -> unit
val unstall : t -> unit

val initiate_quorum : t -> int
(** Enter quorum mode with this replica as sequencer; returns the new
    epoch (strictly above every epoch ever seen). *)

val initiate_fast : t -> floor:int -> int
(** Leave quorum mode (sequencer only, log drained, all replicas alive);
    [floor] is the largest stamp the era assigned. *)
