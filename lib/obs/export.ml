let add_event buf ~first fields =
  if not !first then Buffer.add_string buf ",\n";
  first := false;
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%s" k v))
    fields;
  Buffer.add_char buf '}'

let str s = "\"" ^ Json.escape s ^ "\""

let verdict_str = function
  | Analyze.Within -> "ok"
  | Analyze.Violated ex -> Printf.sprintf "violated(+%dus)" ex
  | Analyze.Excused label -> "excused(" ^ label ^ ")"
  | Analyze.Incomplete -> "incomplete"

let chrome ~(report : Analyze.report) ~events =
  let buf = Buffer.create 65536 in
  let first = ref true in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iter
    (fun (c : Analyze.checked) ->
      let s = c.span in
      match s.Span.latency_us with
      | None -> ()
      | Some dur ->
          add_event buf ~first
            [
              ("name", str (Event.class_name s.Span.cls));
              ("cat", str "op");
              ("ph", str "X");
              ("ts", string_of_int s.Span.t_inv);
              ("dur", string_of_int dur);
              ("pid", string_of_int s.Span.origin);
              ("tid", string_of_int 0);
              ( "args",
                Printf.sprintf
                  "{\"trace\":%s,\"hold_us\":%d,\"bound_us\":%d,\"verdict\":%s}"
                  (str (Printf.sprintf "%x" s.Span.trace))
                  s.Span.hold_us c.bound_us
                  (str (verdict_str c.verdict)) );
            ];
          List.iter
            (fun (leg : Span.leg) ->
              match (leg.send_us, Span.wire_us leg) with
              | Some send, Some wire when wire >= 0 ->
                  add_event buf ~first
                    [
                      ( "name",
                        str
                          (Printf.sprintf "wire %d>%d" s.Span.origin leg.dst) );
                      ("cat", str "wire");
                      ("ph", str "X");
                      ("ts", string_of_int send);
                      ("dur", string_of_int wire);
                      ("pid", string_of_int leg.dst);
                      ("tid", string_of_int 1);
                      ( "args",
                        Printf.sprintf "{\"trace\":%s}"
                          (str (Printf.sprintf "%x" s.Span.trace)) );
                    ]
              | _ -> ())
            s.Span.legs)
    report.Analyze.spans;
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Fault ->
          let action =
            match e.a with 0 -> "drop" | 1 -> "dup" | _ -> "delay"
          in
          add_event buf ~first
            [
              ("name", str ("fault:" ^ action));
              ("cat", str "fault");
              ("ph", str "i");
              ("ts", string_of_int e.t_us);
              ("pid", string_of_int e.pid);
              ("tid", string_of_int 2);
              ("s", str "p");
              ( "args",
                Printf.sprintf "{\"extra_us\":%d}" e.b );
            ]
      | Event.Shed ->
          add_event buf ~first
            [
              ("name", str ("shed:" ^ Event.shed_reason_name e.a));
              ("cat", str "overload");
              ("ph", str "i");
              ("ts", string_of_int e.t_us);
              ("pid", string_of_int e.pid);
              ("tid", string_of_int 2);
              ("s", str "p");
              ( "args",
                Printf.sprintf "{\"trace\":%s,\"target\":%d}"
                  (str (Printf.sprintf "%x" e.trace))
                  e.b );
            ]
      | Event.Queue_depth ->
          add_event buf ~first
            [
              ("name", str ("lane:" ^ Event.lane_name e.a));
              ("cat", str "overload");
              ("ph", str "C");
              ("ts", string_of_int e.t_us);
              ("pid", string_of_int e.pid);
              ("args", Printf.sprintf "{\"depth\":%d}" e.b);
            ]
      | Event.Mbox_depth | Event.Deliver ->
          add_event buf ~first
            [
              ("name", str "mailbox");
              ("cat", str "mbox");
              ("ph", str "C");
              ("ts", string_of_int e.t_us);
              ("pid", string_of_int e.pid);
              ( "args",
                Printf.sprintf "{\"depth\":%d}"
                  (if e.kind = Event.Mbox_depth then e.a else e.b) );
            ]
      | _ -> ())
    events;
  Buffer.add_string buf "\n]}";
  Buffer.contents buf

let prometheus ~(report : Analyze.report) ?recorder () =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let header name typ help =
    line "# HELP %s %s" name help;
    line "# TYPE %s %s" name typ
  in
  header "timebounds_ops_total" "counter" "operations traced, by class";
  List.iter
    (fun (c : Analyze.class_stats) ->
      line "timebounds_ops_total{class=\"%s\"} %d" (Event.class_name c.cls)
        c.count)
    report.Analyze.classes;
  header "timebounds_op_latency_us" "summary"
    "end-to-end operation latency quantiles";
  List.iter
    (fun (c : Analyze.class_stats) ->
      let cls = Event.class_name c.cls in
      line "timebounds_op_latency_us{class=\"%s\",quantile=\"0.5\"} %d" cls
        c.p50_us;
      line "timebounds_op_latency_us{class=\"%s\",quantile=\"0.99\"} %d" cls
        c.p99_us;
      line "timebounds_op_latency_us{class=\"%s\",quantile=\"1\"} %d" cls
        c.max_us)
    report.Analyze.classes;
  header "timebounds_bound_us" "gauge"
    "paper bound per class (mutator e+X, accessor d+e-X, other d+e)";
  List.iter
    (fun (c : Analyze.class_stats) ->
      line "timebounds_bound_us{class=\"%s\"} %d" (Event.class_name c.cls)
        c.bound_us)
    report.Analyze.classes;
  header "timebounds_bound_violations_total" "counter"
    "operations over bound+grace, by excusal";
  List.iter
    (fun (c : Analyze.class_stats) ->
      let cls = Event.class_name c.cls in
      line "timebounds_bound_violations_total{class=\"%s\",excused=\"false\"} %d"
        cls c.violations;
      line "timebounds_bound_violations_total{class=\"%s\",excused=\"true\"} %d"
        cls c.excused)
    report.Analyze.classes;
  header "timebounds_hold_us_mean" "gauge"
    "mean deliberate local hold per class";
  List.iter
    (fun (c : Analyze.class_stats) ->
      line "timebounds_hold_us_mean{class=\"%s\"} %.1f" (Event.class_name c.cls)
        c.mean_hold_us)
    report.Analyze.classes;
  header "timebounds_wire_us_mean" "gauge" "mean send-to-remote-receipt";
  List.iter
    (fun (c : Analyze.class_stats) ->
      match c.mean_wire_us with
      | Some w ->
          line "timebounds_wire_us_mean{class=\"%s\"} %.1f"
            (Event.class_name c.cls) w
      | None -> ())
    report.Analyze.classes;
  header "timebounds_fault_injections_total" "counter" "chaos injections seen";
  line "timebounds_fault_injections_total %d" report.Analyze.faults;
  header "timebounds_mode_switches_total" "counter"
    "quorum fallback mode transitions";
  line "timebounds_mode_switches_total %d" report.Analyze.mode_switches;
  header "timebounds_suspect_transitions_total" "counter"
    "failure-detector suspicion flips (suspect or clear)";
  line "timebounds_suspect_transitions_total %d"
    report.Analyze.suspect_transitions;
  header "timebounds_quorum_ops_total" "counter"
    "operations invoked while quorum mode was active";
  line "timebounds_quorum_ops_total %d" report.Analyze.quorum_spans;
  header "timebounds_sync_rounds_total" "counter"
    "clock-sync rounds published (Sync_eps events)";
  line "timebounds_sync_rounds_total %d" report.Analyze.sync_rounds;
  header "timebounds_sync_eps_us" "gauge"
    "clock-skew bound: configured vs max achieved over the wire";
  line "timebounds_sync_eps_us{source=\"configured\"} %d"
    report.Analyze.params.Core.Params.eps;
  (match report.Analyze.measured_eps_us with
  | Some m -> line "timebounds_sync_eps_us{source=\"measured\"} %d" m
  | None -> ());
  header "timebounds_shed_total" "counter"
    "operations refused by overload protection, by reason";
  List.iter
    (fun (reason, count) ->
      line "timebounds_shed_total{reason=\"%s\"} %d" reason count)
    report.Analyze.sheds;
  if report.Analyze.sheds = [] then line "timebounds_shed_total 0";
  header "timebounds_queue_depth" "gauge"
    "peak transport write-queue depth per lane (frames)";
  List.iter
    (fun (lane, depth) ->
      line "timebounds_queue_depth{lane=\"%s\"} %d" lane depth)
    report.Analyze.lane_hwm;
  header "timebounds_recorder_events_total" "counter"
    "events recorded and dropped by the ring";
  (match recorder with
  | Some (recorded, dropped) ->
      line "timebounds_recorder_events_total{outcome=\"recorded\"} %d" recorded;
      line "timebounds_recorder_events_total{outcome=\"dropped\"} %d" dropped
  | None ->
      line "timebounds_recorder_events_total{outcome=\"dropped\"} %d"
        report.Analyze.ring_drops);
  Buffer.contents buf
