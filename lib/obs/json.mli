(** Minimal JSON validation (no parse tree).

    The repo carries no JSON library; the Chrome-trace exporter builds its
    output by hand, and CI must be able to prove that output well-formed.
    This is a strict RFC 8259 recognizer: one value, surrounded by
    whitespace only. *)

val validate : string -> (unit, string) result
(** [Error msg] includes the byte offset of the first problem. *)

val escape : string -> string
(** Escape a string for embedding inside JSON quotes (adds no quotes). *)
