type leg = {
  dst : int;
  send_us : int option;
  recv_us : int option;
  deliver_us : int option;
  apply_us : int option;
}

type t = {
  trace : int;
  origin : int;
  cls : int;
  t_inv : int;
  t_resp : int option;
  latency_us : int option;
  hold_us : int;
  legs : leg list;
  events : Event.t list;
}

let complete s = s.t_resp <> None
let shard s = Trace_id.origin s.trace

let wire_us leg =
  match (leg.send_us, leg.recv_us, leg.deliver_us) with
  | Some s, Some r, _ -> Some (r - s)
  | Some s, None, Some d -> Some (d - s)
  | _ -> None

let remote_queue_us leg =
  match (leg.recv_us, leg.deliver_us) with
  | Some r, Some d -> Some (d - r)
  | _ -> None

let empty_leg dst =
  { dst; send_us = None; recv_us = None; deliver_us = None; apply_us = None }

(* First observation wins: duplicates (chaos dup rule, reconnect replays)
   must not overwrite the timestamps of the copy that actually raced. *)
let keep old now = match old with Some _ -> old | None -> Some now

let of_events trace evs =
  let evs =
    List.stable_sort (fun (a : Event.t) b -> compare a.t_us b.t_us) evs
  in
  match
    List.find_opt (fun (e : Event.t) -> e.kind = Event.Invoke) evs
  with
  | None -> None
  | Some inv ->
      let origin = inv.pid in
      let legs : (int, leg) Hashtbl.t = Hashtbl.create 8 in
      let leg dst =
        match Hashtbl.find_opt legs dst with
        | Some l -> l
        | None ->
            let l = empty_leg dst in
            Hashtbl.add legs dst l;
            l
      in
      let set dst f = Hashtbl.replace legs dst (f (leg dst)) in
      let t_resp = ref None in
      let hold = ref 0 in
      List.iter
        (fun (e : Event.t) ->
          match e.kind with
          | Event.Hold_set when e.pid = origin -> hold := !hold + e.a
          | Event.Respond when e.pid = origin && !t_resp = None ->
              t_resp := Some e.t_us
          | Event.Send when e.pid = origin ->
              set e.a (fun l -> { l with send_us = keep l.send_us e.t_us })
          | Event.Recv when e.pid <> origin ->
              set e.pid (fun l -> { l with recv_us = keep l.recv_us e.t_us })
          | Event.Deliver when e.pid <> origin ->
              set e.pid (fun l ->
                  { l with deliver_us = keep l.deliver_us e.t_us })
          | Event.Apply when e.pid <> origin ->
              set e.pid (fun l -> { l with apply_us = keep l.apply_us e.t_us })
          | _ -> ())
        evs;
      let legs =
        Hashtbl.fold (fun _ l acc -> l :: acc) legs []
        |> List.sort (fun a b -> compare a.dst b.dst)
      in
      Some
        {
          trace;
          origin;
          cls = inv.a;
          t_inv = inv.t_us;
          t_resp = !t_resp;
          latency_us = Option.map (fun r -> r - inv.t_us) !t_resp;
          hold_us = !hold;
          legs;
          events = evs;
        }

let assemble events =
  let by_trace : (int, Event.t list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (e : Event.t) ->
      if e.trace <> 0 then
        Hashtbl.replace by_trace e.trace
          (e :: (Option.value ~default:[] (Hashtbl.find_opt by_trace e.trace))))
    events;
  Hashtbl.fold
    (fun trace evs acc ->
      match of_events trace (List.rev evs) with
      | Some s -> s :: acc
      | None -> acc)
    by_trace []
  |> List.sort (fun a b -> compare (a.t_inv, a.trace) (b.t_inv, b.trace))
