type kind =
  | Invoke
  | Hold_set
  | Broadcast
  | Send
  | Recv
  | Deliver
  | Apply
  | Respond
  | Mbox_depth
  | Fault
  | Drops
  | Recover
  | Catchup
  | Checkpoint
  | Mode_switch
  | Suspect
  | Sync_probe
  | Sync_eps
  | Shed
  | Queue_depth

let kind_code = function
  | Invoke -> 0
  | Hold_set -> 1
  | Broadcast -> 2
  | Send -> 3
  | Recv -> 4
  | Deliver -> 5
  | Apply -> 6
  | Respond -> 7
  | Mbox_depth -> 8
  | Fault -> 9
  | Drops -> 10
  | Recover -> 11
  | Catchup -> 12
  | Checkpoint -> 13
  | Mode_switch -> 14
  | Suspect -> 15
  | Sync_probe -> 16
  | Sync_eps -> 17
  | Shed -> 18
  | Queue_depth -> 19

let kind_of_code = function
  | 0 -> Some Invoke
  | 1 -> Some Hold_set
  | 2 -> Some Broadcast
  | 3 -> Some Send
  | 4 -> Some Recv
  | 5 -> Some Deliver
  | 6 -> Some Apply
  | 7 -> Some Respond
  | 8 -> Some Mbox_depth
  | 9 -> Some Fault
  | 10 -> Some Drops
  | 11 -> Some Recover
  | 12 -> Some Catchup
  | 13 -> Some Checkpoint
  | 14 -> Some Mode_switch
  | 15 -> Some Suspect
  | 16 -> Some Sync_probe
  | 17 -> Some Sync_eps
  | 18 -> Some Shed
  | 19 -> Some Queue_depth
  | _ -> None

let kind_name = function
  | Invoke -> "invoke"
  | Hold_set -> "hold_set"
  | Broadcast -> "broadcast"
  | Send -> "send"
  | Recv -> "recv"
  | Deliver -> "deliver"
  | Apply -> "apply"
  | Respond -> "respond"
  | Mbox_depth -> "mbox_depth"
  | Fault -> "fault"
  | Drops -> "drops"
  | Recover -> "recover"
  | Catchup -> "catchup"
  | Checkpoint -> "checkpoint"
  | Mode_switch -> "mode_switch"
  | Suspect -> "suspect"
  | Sync_probe -> "sync_probe"
  | Sync_eps -> "sync_eps"
  | Shed -> "shed"
  | Queue_depth -> "queue_depth"

let class_mutator = 0
let class_accessor = 1
let class_other = 2

let class_code : Spec.Data_type.kind -> int = function
  | Spec.Data_type.Pure_mutator -> class_mutator
  | Spec.Data_type.Pure_accessor -> class_accessor
  | Spec.Data_type.Other -> class_other

let class_name = function
  | 0 -> "mutator"
  | 1 -> "accessor"
  | _ -> "other"

let shed_deadline = 0
let shed_admission = 1
let shed_queue = 2

let shed_reason_name = function
  | 0 -> "deadline"
  | 1 -> "admission"
  | _ -> "queue"

let lane_ctrl = 0
let lane_data = 1
let lane_name = function 0 -> "ctrl" | _ -> "data"

type t = { t_us : int; pid : int; kind : kind; trace : int; a : int; b : int }

let equal x y =
  x.t_us = y.t_us && x.pid = y.pid && x.kind = y.kind && x.trace = y.trace
  && x.a = y.a && x.b = y.b

let pp ppf e =
  Format.fprintf ppf "@[%8dus p%d %-10s trace=%x a=%d b=%d@]" e.t_us e.pid
    (kind_name e.kind) e.trace e.a e.b

(* Zigzag LEB128, same scheme as the wire codec but self-contained: obs sits
   below lib/net in the dependency order. *)

let zigzag v = (v lsl 1) lxor (v asr 62)
let unzigzag v = (v lsr 1) lxor (-(v land 1))

let put_varint buf v =
  let v = ref (zigzag v) in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then (
      Buffer.add_char buf (Char.chr byte);
      continue := false)
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let get_varint s ~pos =
  let len = String.length s in
  let rec go pos shift acc =
    if pos >= len || shift > 62 then None
    else
      let byte = Char.code s.[pos] in
      let acc = acc lor ((byte land 0x7f) lsl shift) in
      if byte land 0x80 = 0 then Some (unzigzag acc, pos + 1)
      else go (pos + 1) (shift + 7) acc
  in
  go pos 0 0

let encode buf e =
  Buffer.add_char buf (Char.chr (kind_code e.kind));
  put_varint buf e.t_us;
  put_varint buf e.pid;
  put_varint buf e.trace;
  put_varint buf e.a;
  put_varint buf e.b

let decode s ~pos =
  if pos >= String.length s then None
  else
    match kind_of_code (Char.code s.[pos]) with
    | None -> None
    | Some kind -> (
        match get_varint s ~pos:(pos + 1) with
        | None -> None
        | Some (t_us, pos) -> (
            match get_varint s ~pos with
            | None -> None
            | Some (pid, pos) -> (
                match get_varint s ~pos with
                | None -> None
                | Some (trace, pos) -> (
                    match get_varint s ~pos with
                    | None -> None
                    | Some (a, pos) -> (
                        match get_varint s ~pos with
                        | None -> None
                        | Some (b, pos) ->
                            Some ({ t_us; pid; kind; trace; a; b }, pos))))))
