(** Structured trace events.

    One event is one interesting instant in the life of an operation (or of
    the replica processing it): invocation, hold-deadline armed, broadcast
    fan-out, per-link send/recv, mailbox delivery, state-machine apply,
    response, plus ambient samples (mailbox depth) and chaos-layer fault
    injections.  Events are tiny fixed records — no strings on the hot path —
    and serialize to a compact varint binary form so a replica can log
    hundreds of thousands per second into {!Obs.Recorder} without feeling
    it.

    The two payload words [a] and [b] are kind-specific (documented on each
    constructor); unused words are 0. *)

type kind =
  | Invoke  (** operation accepted by a replica. [a] = class code. *)
  | Hold_set
      (** local hold/timer armed for the in-flight op. [a] = delay in µs. *)
  | Broadcast  (** entry fanned out to peers. [a] = number of destinations. *)
  | Send  (** one link-level send. [a] = destination pid. *)
  | Recv  (** link-level receive (wire decoded). [a] = source pid. *)
  | Deliver
      (** mailbox handed the message to the replica loop. [a] = source pid,
          [b] = mailbox depth after removal. *)
  | Apply  (** entry applied to the local copy. [a] = source pid. *)
  | Respond
      (** response released to the caller. [a] = class code, [b] = latency
          in µs as measured by the replica. *)
  | Mbox_depth  (** ambient mailbox-depth sample. [a] = depth. *)
  | Fault
      (** chaos-layer injection on a send. [a] = action code
          (0 drop, 1 duplicate, 2 delay), [b] = extra delay in µs. *)
  | Drops
      (** drainer-emitted accounting record: [a] events were lost to
          ring-buffer wrap-around since the previous [Drops] (or start). *)
  | Recover
      (** replica recovered its durable prefix at boot. [a] = mutations
          replayed (snapshot + WAL tail), [b] = recovery wall time in µs. *)
  | Catchup
      (** one anti-entropy exchange leg: emitted when a catch-up reply is
          served or absorbed. [a] = entries transferred, [b] = peer pid. *)
  | Checkpoint
      (** durable snapshot written. [a] = WAL records folded into it,
          [b] = new generation number. *)
  | Mode_switch
      (** quorum fallback transition. [a] = 1 entering quorum mode,
          0 returning to the fast path, [b] = new epoch. *)
  | Suspect
      (** failure-detector suspicion transition. [a] = peer pid,
          [b] = 1 suspected, 0 cleared. *)
  | Sync_probe
      (** one two-way sync sample completed. [a] = peer pid, [b] = raw
          offset estimate in µs (peer clock − ours; may be negative). *)
  | Sync_eps
      (** per-round achieved-ε estimate published by the sync subsystem.
          [a] = achieved ε in µs (max over sampled peers of |offset| +
          age-widened uncertainty), [b] = peers contributing.  The
          analyzer interpolates these per pid to attribute bounds against
          the measured skew instead of the configured one. *)
  | Shed
      (** overload protection refused or abandoned work instead of doing
          it late. [a] = reason code ({!shed_deadline} the op's deadline
          had already passed, {!shed_admission} the admission controller
          predicted a deadline miss or the inflight budget was full,
          {!shed_queue} a full data-lane write queue dropped a frame),
          [b] = shard (deadline/admission) or destination pid (queue). *)
  | Queue_depth
      (** ambient write-queue depth sample from the two-lane transport.
          [a] = lane code ({!lane_ctrl} or {!lane_data}), [b] = depth in
          frames. *)

val kind_code : kind -> int
val kind_of_code : int -> kind option
val kind_name : kind -> string

(** Class codes used in [Invoke]/[Respond] payloads. *)

val class_mutator : int
val class_accessor : int
val class_other : int

val class_code : Spec.Data_type.kind -> int
val class_name : int -> string

(** Reason codes carried in [Shed.a] and lane codes in [Queue_depth.a]. *)

val shed_deadline : int
val shed_admission : int
val shed_queue : int
val shed_reason_name : int -> string
val lane_ctrl : int
val lane_data : int
val lane_name : int -> string

type t = {
  t_us : int;  (** microseconds since the recorder's epoch *)
  pid : int;  (** replica (or process) id that recorded the event *)
  kind : kind;
  trace : int;  (** operation trace id; 0 = not tied to an operation *)
  a : int;  (** kind-specific payload, see {!kind} *)
  b : int;  (** kind-specific payload, see {!kind} *)
}

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Binary codec}

    Events serialize as [kind byte] followed by five zigzag LEB128 varints
    ([t_us], [pid], [trace], [a], [b]).  The encoding is self-delimiting;
    [decode] returns the event and the position one past it. *)

val encode : Buffer.t -> t -> unit

val decode : string -> pos:int -> (t * int) option
(** [None] on truncation or an unknown kind byte. *)
