(** Offline span assembly.

    A {e span} is everything one operation did, reconstructed from the
    merged event stream of every process: the invocation and response at the
    origin replica, the deliberate local hold, and one {e leg} per remote
    replica the entry fanned out to (link send, wire receive, mailbox
    delivery, state-machine apply).  Assembly is purely offline — group by
    trace id, sort by timestamp — so it costs the replicas nothing. *)

type leg = {
  dst : int;
  send_us : int option;  (** link-level send at the origin *)
  recv_us : int option;  (** wire decode at [dst] (absent on the bus) *)
  deliver_us : int option;  (** mailbox handed it to [dst]'s loop *)
  apply_us : int option;  (** applied to [dst]'s local copy *)
}

type t = {
  trace : int;
  origin : int;  (** replica pid that accepted the invocation *)
  cls : int;  (** class code, see {!Event.class_code} *)
  t_inv : int;
  t_resp : int option;  (** [None] = never responded (crash, cut short) *)
  latency_us : int option;
  hold_us : int;  (** sum of deliberate local holds (ε+X / d+ε−X timers) *)
  legs : leg list;  (** sorted by [dst] *)
  events : Event.t list;  (** this trace's events, time-sorted *)
}

val complete : t -> bool

val shard : t -> int
(** The shard label riding in the span's trace id: {!Trace_id.fresh}'s
    [origin] bits, which the sharded load generator mints as the target
    shard (unsharded tooling mints the worker id there instead — only
    interpret this as a shard when the run was sharded).  Per-shard bound
    attribution partitions a merged event stream on this label and runs
    {!Analyze.check} per group. *)

val wire_us : leg -> int option
(** Receive (or, on the bus, delivery) minus send. *)

val remote_queue_us : leg -> int option
(** Delivery minus wire receive: time spent in the remote mailbox. *)

val assemble : Event.t list -> t list
(** Group trace-tagged events into spans, sorted by invocation time.
    Untagged events (trace 0) and traces with no [Invoke] are ignored. *)
