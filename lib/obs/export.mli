(** Trace exports.

    {!chrome} renders the merged event stream as Chrome trace-event JSON
    (open in Perfetto / [chrome://tracing]): one "X" complete event per
    operation span on its origin replica's row, one per wire leg on the
    destination's row, instant events for chaos injections and counter
    tracks for mailbox depth.  {!prometheus} renders the analysis report in
    the Prometheus text exposition format — a scrape-shaped snapshot of a
    finished run. *)

val chrome : report:Analyze.report -> events:Event.t list -> string

val prometheus :
  report:Analyze.report -> ?recorder:int * int -> unit -> string
(** [recorder] is the [(recorded, dropped)] pair from {!Recorder.stats}. *)
