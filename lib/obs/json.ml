let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

exception Bad of int * string

let validate s =
  let len = String.length s in
  let peek pos = if pos < len then Some s.[pos] else None in
  let fail pos msg = raise (Bad (pos, msg)) in
  let rec skip_ws pos =
    match peek pos with
    | Some (' ' | '\t' | '\n' | '\r') -> skip_ws (pos + 1)
    | _ -> pos
  in
  let expect pos c =
    if peek pos = Some c then pos + 1
    else fail pos (Printf.sprintf "expected '%c'" c)
  in
  let lit pos word =
    let n = String.length word in
    if pos + n <= len && String.sub s pos n = word then pos + n
    else fail pos ("expected " ^ word)
  in
  let is_digit = function '0' .. '9' -> true | _ -> false in
  let is_hex = function
    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
    | _ -> false
  in
  let rec digits pos =
    match peek pos with Some c when is_digit c -> digits (pos + 1) | _ -> pos
  in
  let digits1 pos =
    let p = digits pos in
    if p = pos then fail pos "expected digit" else p
  in
  let number pos =
    let pos = if peek pos = Some '-' then pos + 1 else pos in
    let pos =
      match peek pos with
      | Some '0' -> pos + 1
      | Some c when is_digit c -> digits (pos + 1)
      | _ -> fail pos "expected digit"
    in
    let pos =
      if peek pos = Some '.' then digits1 (pos + 1) else pos
    in
    match peek pos with
    | Some ('e' | 'E') ->
        let pos = pos + 1 in
        let pos =
          match peek pos with Some ('+' | '-') -> pos + 1 | _ -> pos
        in
        digits1 pos
    | _ -> pos
  in
  let string_body pos =
    let rec go pos =
      match peek pos with
      | None -> fail pos "unterminated string"
      | Some '"' -> pos + 1
      | Some '\\' -> (
          match peek (pos + 1) with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> go (pos + 2)
          | Some 'u' ->
              if
                pos + 5 < len
                && is_hex s.[pos + 2] && is_hex s.[pos + 3]
                && is_hex s.[pos + 4] && is_hex s.[pos + 5]
              then go (pos + 6)
              else fail pos "bad \\u escape"
          | _ -> fail pos "bad escape")
      | Some c when Char.code c < 0x20 -> fail pos "raw control char in string"
      | Some _ -> go (pos + 1)
    in
    go pos
  in
  let rec value pos =
    let pos = skip_ws pos in
    match peek pos with
    | Some '{' -> obj (skip_ws (pos + 1))
    | Some '[' -> arr (skip_ws (pos + 1))
    | Some '"' -> string_body (pos + 1)
    | Some 't' -> lit pos "true"
    | Some 'f' -> lit pos "false"
    | Some 'n' -> lit pos "null"
    | Some ('-' | '0' .. '9') -> number pos
    | _ -> fail pos "expected value"
  and obj pos =
    if peek pos = Some '}' then pos + 1
    else
      let rec members pos =
        let pos = skip_ws pos in
        let pos = expect pos '"' in
        let pos = string_body pos in
        let pos = expect (skip_ws pos) ':' in
        let pos = skip_ws (value pos) in
        match peek pos with
        | Some ',' -> members (pos + 1)
        | Some '}' -> pos + 1
        | _ -> fail pos "expected ',' or '}'"
      in
      members pos
  and arr pos =
    if peek pos = Some ']' then pos + 1
    else
      let rec elems pos =
        let pos = skip_ws (value pos) in
        match peek pos with
        | Some ',' -> elems (pos + 1)
        | Some ']' -> pos + 1
        | _ -> fail pos "expected ',' or ']'"
      in
      elems pos
  in
  match skip_ws (value 0) with
  | pos when pos = len -> Ok ()
  | pos -> Error (Printf.sprintf "trailing garbage at byte %d" pos)
  | exception Bad (pos, msg) ->
      Error (Printf.sprintf "%s at byte %d" msg pos)
