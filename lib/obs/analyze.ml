type verdict = Within | Violated of int | Excused of string | Incomplete
type checked = { span : Span.t; bound_us : int; verdict : verdict }

type class_stats = {
  cls : int;
  bound_us : int;
  count : int;
  complete : int;
  p50_us : int;
  p99_us : int;
  max_us : int;
  mean_us : float;
  mean_hold_us : float;
  mean_wire_us : float option;
  mean_rqueue_us : float option;
  max_overshoot_us : int;
  violations : int;
  excused : int;
}

type report = {
  params : Core.Params.t;
  grace_us : int;
  spans : checked list;
  classes : class_stats list;
  total : int;
  incomplete : int;
  violations : int;
  excused : int;
  ring_drops : int;
  faults : int;
  mode_switches : int;
  suspect_transitions : int;
  quorum_spans : int;
  sync_rounds : int;
  measured_eps_us : int option;
  sheds : (string * int) list;
  shed_spans : int;
  lane_hwm : (string * int) list;
}

let bound_us (p : Core.Params.t) cls =
  if cls = Event.class_mutator then p.timing.mutator_wait
  else if cls = Event.class_accessor then p.timing.accessor_wait
  else p.d + p.eps

(* The same three formulas with a measured skew substituted for the
   configured ε — what the sync subsystem's [Sync_eps] stream attributes
   against.  The waits in [p.timing] are ε-affine (mutator ε + X,
   accessor d + ε − X), so substituting is a constant shift. *)
let bound_with_eps (p : Core.Params.t) cls eps =
  if cls = Event.class_mutator then p.timing.mutator_wait - p.eps + eps
  else if cls = Event.class_accessor then p.timing.accessor_wait - p.eps + eps
  else p.d + eps

(* Per-pid achieved-ε timelines from the [Sync_eps] stream: each replica
   publishes one sample per sync round; the checker interpolates between
   adjacent samples to price the skew at a span's invocation instant. *)
let sync_eps_timelines events =
  let tbl : (int, (int * int) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      if e.kind = Event.Sync_eps then
        let prev = try Hashtbl.find tbl e.pid with Not_found -> [] in
        Hashtbl.replace tbl e.pid ((e.t_us, e.a) :: prev))
    events;
  Hashtbl.fold
    (fun pid samples acc ->
      let arr = Array.of_list samples in
      Array.sort compare arr;
      (pid, arr) :: acc)
    tbl []
  |> List.sort compare

let measured_eps_at timelines ~pid ~t_us =
  match List.assoc_opt pid timelines with
  | None -> None
  | Some samples when Array.length samples = 0 -> None
  | Some samples ->
      let n = Array.length samples in
      let t0, e0 = samples.(0) and tn, en = samples.(n - 1) in
      if t_us <= t0 then Some e0
      else if t_us >= tn then Some en
      else begin
        (* Largest index with sample time ≤ t_us (n ≥ 2 here). *)
        let lo = ref 0 and hi = ref (n - 1) in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if fst samples.(mid) <= t_us then lo := mid else hi := mid
        done;
        let ta, ea = samples.(!lo) and tb, eb = samples.(!hi) in
        if tb = ta then Some ea
        else Some (ea + ((eb - ea) * (t_us - ta) / (tb - ta)))
      end

(* In quorum mode every operation costs two round trips — forward to the
   sequencer plus propose/ack — so the expectation is 4δ (δ ≤ d while the
   link bound holds), not the paper's fast-path bounds. *)
let quorum_bound_us (p : Core.Params.t) = (4 * p.d) + p.eps

(* Intervals during which the recording replicas ran in quorum mode,
   reconstructed from [Mode_switch] events.  Any replica being in quorum
   mode opens the window: spans route through the sequencer then, whatever
   pid recorded their invocation. *)
let quorum_windows events =
  let switches =
    List.filter (fun (e : Event.t) -> e.kind = Event.Mode_switch) events
    |> List.sort (fun (a : Event.t) b -> compare a.t_us b.t_us)
  in
  let rec go depth opened acc = function
    | [] -> if depth > 0 then List.rev ((opened, max_int) :: acc) else List.rev acc
    | (e : Event.t) :: rest ->
        if e.a = 1 then
          go (depth + 1) (if depth = 0 then e.t_us else opened) acc rest
        else if depth > 1 then go (depth - 1) opened acc rest
        else if depth = 1 then go 0 0 ((opened, e.t_us) :: acc) rest
        else go 0 0 acc rest
  in
  go 0 0 [] switches

let overlaps ~t_inv ~t_resp (_, from_us, until_us) =
  t_inv <= until_us && t_resp >= from_us

(* Traces that were shed at least once: the op still completed (the client
   replayed it), but its interval includes refusal round-trips and backoff
   the model's bounds never priced in — the lateness is the protection
   layer working, not a timing violation.  The sheds themselves are counted
   separately in the report, so nothing is silently dropped. *)
let shed_traces events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Event.t) ->
      if e.kind = Event.Shed && e.trace <> 0 then
        Hashtbl.replace tbl e.trace ())
    events;
  tbl

let check_span ~params ~grace_us ~windows ~qwindows ~timelines ~shed (s : Span.t)
    =
  let inside (from_us, until_us) = s.t_inv >= from_us && s.t_inv <= until_us in
  let in_quorum = List.exists inside qwindows in
  (* Measured skew takes precedence over the configured ε whenever the
     origin replica published sync rounds; replicas without sync events
     (sync off, or a pre-v6 trace) keep the configured bound. *)
  let eps =
    match measured_eps_at timelines ~pid:s.origin ~t_us:s.t_inv with
    | Some e -> e
    | None -> params.Core.Params.eps
  in
  let bound =
    if in_quorum then (4 * params.Core.Params.d) + eps
    else bound_with_eps params s.cls eps
  in
  let verdict =
    match (s.t_resp, s.latency_us) with
    | None, _ | _, None -> Incomplete
    | Some t_resp, Some lat ->
        if lat <= bound + grace_us then Within
        else if
          (* A span that straddles a mode boundary paid the switch barrier
             (drain + re-route); neither mode's bound applies to it. *)
          (not in_quorum)
          && List.exists
               (fun (from_us, until_us) ->
                 t_resp >= from_us && s.t_inv <= until_us)
               qwindows
        then Excused "mode switch"
        else (
          match
            List.find_opt (overlaps ~t_inv:s.t_inv ~t_resp) windows
          with
          | Some (label, _, _) -> Excused label
          | None ->
              if Hashtbl.mem shed s.trace then Excused "shed"
              else Violated (lat - bound - grace_us))
  in
  { span = s; bound_us = bound; verdict }

let nearest_rank p sorted =
  let n = Array.length sorted in
  if n = 0 then 0
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n /. 100.)))

let mean_opt = function
  | [] -> None
  | xs ->
      Some
        (float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs))

let class_stats_of cls checked =
  let mine = List.filter (fun c -> c.span.Span.cls = cls) checked in
  let complete = List.filter (fun c -> Span.complete c.span) mine in
  let lats =
    List.filter_map (fun c -> c.span.Span.latency_us) complete
    |> List.sort compare |> Array.of_list
  in
  let holds = List.map (fun c -> c.span.Span.hold_us) complete in
  let legs = List.concat_map (fun c -> c.span.Span.legs) complete in
  let bound = match mine with c :: _ -> c.bound_us | [] -> 0 in
  {
    cls;
    bound_us = bound;
    count = List.length mine;
    complete = List.length complete;
    p50_us = nearest_rank 50. lats;
    p99_us = nearest_rank 99. lats;
    max_us = (if Array.length lats = 0 then 0 else lats.(Array.length lats - 1));
    mean_us = Option.value ~default:0. (mean_opt (Array.to_list lats));
    mean_hold_us = Option.value ~default:0. (mean_opt holds);
    mean_wire_us = mean_opt (List.filter_map Span.wire_us legs);
    mean_rqueue_us = mean_opt (List.filter_map Span.remote_queue_us legs);
    max_overshoot_us =
      List.fold_left
        (fun acc c ->
          match c.span.Span.latency_us with
          | Some l -> max acc (l - c.span.Span.hold_us)
          | None -> acc)
        0 complete;
    violations =
      List.length
        (List.filter (fun c -> match c.verdict with Violated _ -> true | _ -> false) mine);
    excused =
      List.length
        (List.filter (fun c -> match c.verdict with Excused _ -> true | _ -> false) mine);
  }

let check ~params ?(grace_us = 0) ?(windows = []) events =
  let spans = Span.assemble events in
  let qwindows = quorum_windows events in
  let timelines = sync_eps_timelines events in
  let shed = shed_traces events in
  let checked =
    List.map
      (check_span ~params ~grace_us ~windows ~qwindows ~timelines ~shed)
      spans
  in
  let classes =
    List.sort_uniq compare (List.map (fun (s : Span.t) -> s.cls) spans)
    |> List.map (fun cls -> class_stats_of cls checked)
  in
  let count f = List.length (List.filter f checked) in
  {
    params;
    grace_us;
    spans = checked;
    classes;
    total = List.length checked;
    incomplete = count (fun c -> c.verdict = Incomplete);
    violations =
      count (fun c -> match c.verdict with Violated _ -> true | _ -> false);
    excused =
      count (fun c -> match c.verdict with Excused _ -> true | _ -> false);
    ring_drops =
      List.fold_left
        (fun acc (e : Event.t) ->
          if e.kind = Event.Drops then acc + e.a else acc)
        0 events;
    faults =
      List.length
        (List.filter (fun (e : Event.t) -> e.kind = Event.Fault) events);
    mode_switches =
      List.length
        (List.filter (fun (e : Event.t) -> e.kind = Event.Mode_switch) events);
    suspect_transitions =
      List.length
        (List.filter (fun (e : Event.t) -> e.kind = Event.Suspect) events);
    quorum_spans =
      List.length
        (List.filter
           (fun (c : checked) ->
             List.exists
               (fun (from_us, until_us) ->
                 c.span.Span.t_inv >= from_us && c.span.Span.t_inv <= until_us)
               qwindows)
           checked);
    sync_rounds =
      List.length
        (List.filter (fun (e : Event.t) -> e.kind = Event.Sync_eps) events);
    measured_eps_us =
      List.fold_left
        (fun acc (_, samples) ->
          Array.fold_left
            (fun acc (_, e) ->
              match acc with None -> Some e | Some m -> Some (max m e))
            acc samples)
        None timelines;
    sheds =
      (let per_reason = Array.make 3 0 in
       List.iter
         (fun (e : Event.t) ->
           if e.kind = Event.Shed then
             let r = if e.a >= 0 && e.a < 3 then e.a else 2 in
             per_reason.(r) <- per_reason.(r) + 1)
         events;
       List.filter_map
         (fun r ->
           if per_reason.(r) = 0 then None
           else Some (Event.shed_reason_name r, per_reason.(r)))
         [ 0; 1; 2 ]);
    shed_spans =
      List.length (List.filter (fun c -> c.verdict = Excused "shed") checked);
    lane_hwm =
      (let hwm = Array.make 2 0 in
       List.iter
         (fun (e : Event.t) ->
           if e.kind = Event.Queue_depth then
             let l = if e.a = Event.lane_ctrl then 0 else 1 in
             hwm.(l) <- max hwm.(l) e.b)
         events;
       List.filter_map
         (fun l ->
           if hwm.(l) = 0 then None else Some (Event.lane_name l, hwm.(l)))
         [ 0; 1 ]);
  }

let pp_verdict ppf = function
  | Within -> Format.pp_print_string ppf "ok"
  | Violated ex -> Format.fprintf ppf "VIOLATED(+%dus)" ex
  | Excused label -> Format.fprintf ppf "excused(%s)" label
  | Incomplete -> Format.pp_print_string ppf "incomplete"

let pp_checked ppf c =
  let s = c.span in
  Format.fprintf ppf
    "@[trace=%x p%d %-8s inv=%dus lat=%s hold=%dus legs=%d bound=%dus %a@]"
    s.Span.trace s.Span.origin
    (Event.class_name s.Span.cls)
    s.Span.t_inv
    (match s.Span.latency_us with Some l -> string_of_int l ^ "us" | None -> "-")
    s.Span.hold_us (List.length s.Span.legs) c.bound_us pp_verdict c.verdict

let pp_f_opt ppf = function
  | Some f -> Format.fprintf ppf "%7.0fus" f
  | None -> Format.fprintf ppf "%7s  " "-"

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>trace report: %d ops (%d incomplete), %d unexcused violation%s, %d \
     excused, %d ring-dropped event%s, %d fault injection%s@,\
     grace %dus on top of each bound (scheduler jitter allowance)@,"
    r.total r.incomplete r.violations
    (if r.violations = 1 then "" else "s")
    r.excused r.ring_drops
    (if r.ring_drops = 1 then "" else "s")
    r.faults
    (if r.faults = 1 then "" else "s")
    r.grace_us;
  if r.mode_switches > 0 then
    Format.fprintf ppf
      "quorum fallback: %d mode switch%s, %d suspicion transition%s, %d \
       op%s checked against the 4d+eps quorum bound@,"
      r.mode_switches
      (if r.mode_switches = 1 then "" else "es")
      r.suspect_transitions
      (if r.suspect_transitions = 1 then "" else "s")
      r.quorum_spans
      (if r.quorum_spans = 1 then "" else "s");
  (if r.sheds <> [] || r.lane_hwm <> [] then
     let total = List.fold_left (fun k (_, c) -> k + c) 0 r.sheds in
     Format.fprintf ppf
       "overload: %d shed event%s (%s)%s; %d completed span%s excused as \
        shed-then-retried@,"
       total
       (if total = 1 then "" else "s")
       (String.concat ", "
          (List.map (fun (w, c) -> Printf.sprintf "%s=%d" w c) r.sheds))
       (match r.lane_hwm with
       | [] -> ""
       | hwm ->
           "; lane hwm "
           ^ String.concat ", "
               (List.map (fun (l, d) -> Printf.sprintf "%s=%d" l d) hwm))
       r.shed_spans
       (if r.shed_spans = 1 then "" else "s"));
  (match r.measured_eps_us with
  | None -> ()
  | Some m ->
      Format.fprintf ppf
        "clock sync: %d round%s, measured eps max=%dus (configured %dus); \
         bounds attributed against the measured skew@,"
        r.sync_rounds
        (if r.sync_rounds = 1 then "" else "s")
        m r.params.Core.Params.eps;
      if m > r.params.Core.Params.eps then
        Format.fprintf ppf
          "WARNING: measured eps exceeds the configured bound — the \
           cluster ran outside its admissibility assumption@,");
  Format.fprintf ppf
    "  %-9s %5s %9s %8s %8s %8s %9s %9s %10s %10s %5s %7s@," "class" "ops"
    "bound" "p50" "p99" "max" "hold" "wire" "rqueue" "overshoot" "viol"
    "excused";
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %-9s %5d %7dus %6dus %6dus %6dus %7.0fus %a %a %8dus %5d %7d@,"
        (Event.class_name c.cls) c.count c.bound_us c.p50_us c.p99_us c.max_us
        c.mean_hold_us pp_f_opt c.mean_wire_us pp_f_opt c.mean_rqueue_us
        c.max_overshoot_us c.violations c.excused)
    r.classes;
  Format.fprintf ppf "@]"
