(* Trace ids are minted by whoever originates an operation (a loadgen
   worker, a TCP client).  The top bits carry the origin so ids minted by
   independent processes never collide; the low 40 bits are a process-local
   counter.  0 is reserved for "no trace". *)

let counter = Atomic.make 1

let fresh ~origin =
  let c = Atomic.fetch_and_add counter 1 in
  ((origin land 0xffff) lsl 40) lor (c land ((1 lsl 40) - 1))

let origin id = (id lsr 40) land 0xffff
let none = 0
