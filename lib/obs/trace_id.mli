(** Operation trace ids.

    An id encodes its origin (worker/process id, 16 bits) in the high bits
    and a process-local counter below, so independently minted ids never
    collide across the processes of one cluster run.  [none] (0) marks
    events not tied to any operation. *)

val fresh : origin:int -> int
val origin : int -> int
val none : int
