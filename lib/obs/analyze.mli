(** Latency decomposition and bound attribution.

    Every complete span is checked against its class's paper bound —
    pure mutators against ε + X, pure accessors against d + ε − X, other
    operations against d + ε — plus a [grace_us] allowance for scheduler
    jitter (the live runtime folds its [slack] into d and u for the same
    reason; the bounds themselves are model-time statements).  Under chaos,
    a violation whose span overlaps an assumption-violation window (as
    computed by [Fault.Assumption_monitor]) is {e excused} rather than
    counted: the model's premises did not hold while it ran.

    {2 Measured ε}

    When the trace carries [Sync_eps] events (live clock synchronization
    armed, DESIGN.md §14), the {e measured} skew takes precedence over
    the configured ε: each span's bound substitutes the origin replica's
    achieved-ε — interpolated between the sync rounds bracketing the
    invocation — into the same formulas (mutator ε+X, accessor d+ε−X,
    other d+ε, quorum 4d+ε).  Replicas that published no sync rounds
    keep the configured bound.  Precedence with [grace_us]: the grace is
    a scheduler-jitter allowance added {e on top of} whichever bound was
    selected — it neither affects which ε is used nor is it scaled by
    it.  When the measured ε exceeds the configured one the report
    prints a warning: the cluster ran outside its admissibility
    assumption, so the configured bounds were never targets. *)

type verdict =
  | Within
  | Violated of int  (** µs in excess of bound + grace *)
  | Excused of string  (** overlapping violation window's label *)
  | Incomplete  (** never responded — not checked *)

type checked = { span : Span.t; bound_us : int; verdict : verdict }

type class_stats = {
  cls : int;
  bound_us : int;
  count : int;
  complete : int;
  p50_us : int;
  p99_us : int;
  max_us : int;
  mean_us : float;
  mean_hold_us : float;  (** deliberate local wait *)
  mean_wire_us : float option;  (** send → remote receipt, across legs *)
  mean_rqueue_us : float option;  (** remote receipt → mailbox delivery *)
  max_overshoot_us : int;  (** max latency − hold: scheduling + processing *)
  violations : int;
  excused : int;
}

type report = {
  params : Core.Params.t;
  grace_us : int;
  spans : checked list;  (** by invocation time *)
  classes : class_stats list;  (** classes that appeared, by class code *)
  total : int;
  incomplete : int;
  violations : int;  (** unexcused *)
  excused : int;
  ring_drops : int;  (** events lost to recorder wrap-around *)
  faults : int;  (** chaos injections seen in the stream *)
  mode_switches : int;  (** [Mode_switch] events in the stream *)
  suspect_transitions : int;  (** [Suspect] events in the stream *)
  quorum_spans : int;  (** spans invoked while quorum mode was active *)
  sync_rounds : int;  (** [Sync_eps] events in the stream *)
  measured_eps_us : int option;
      (** max achieved ε over every replica's sync rounds; [None] when the
          stream carries no [Sync_eps] events (bounds then use the
          configured ε) *)
  sheds : (string * int) list;
      (** [Shed] events by reason ("deadline" / "admission" / "queue");
          only non-zero reasons appear.  Sheds are refusals, not losses:
          the op was never executed, and an idempotent client replays it *)
  shed_spans : int;
      (** completed spans excused from bound checks because their trace was
          shed at least once — the interval includes refusal round-trips
          and client backoff the model's bounds never priced in *)
  lane_hwm : (string * int) list;
      (** per-lane ("ctrl" / "data") peak transport queue depth, from
          [Queue_depth] events; empty when the transport emitted none *)
}

val bound_us : Core.Params.t -> int -> int
(** The paper bound for a class code: mutator ↦ ε+X, accessor ↦ d+ε−X,
    other ↦ d+ε. *)

val bound_with_eps : Core.Params.t -> int -> int -> int
(** [bound_with_eps p cls eps] — the same formulas with [eps] substituted
    for the configured skew: what a span is checked against when the sync
    subsystem measured the actual ε at its invocation. *)

val sync_eps_timelines : Event.t list -> (int * (int * int) array) list
(** Per-pid achieved-ε timelines from the [Sync_eps] stream: [(pid,
    samples)] with each sample [(t_us, eps_us)], time-sorted.  Empty when
    sync was off. *)

val measured_eps_at :
  (int * (int * int) array) list -> pid:int -> t_us:int -> int option
(** The replica's achieved ε at an instant, linearly interpolated between
    the bracketing sync rounds (clamped to the first/last sample outside
    them); [None] if the replica published no rounds. *)

val quorum_bound_us : Core.Params.t -> int
(** The round-trip expectation while in quorum mode: 4d + ε (forward to
    the sequencer plus propose/ack, two δ-bounded round trips). *)

val quorum_windows : Event.t list -> (int * int) list
(** Intervals during which any replica ran in quorum mode, reconstructed
    from [Mode_switch] events; an unmatched entry switch yields an
    interval closed at [max_int].  Spans invoked inside one are checked
    against {!quorum_bound_us}; spans straddling a boundary are excused
    as ["mode switch"]. *)

val check :
  params:Core.Params.t ->
  ?grace_us:int ->
  ?windows:(string * int * int) list ->
  Event.t list ->
  report
(** [windows] are assumption-violation intervals [(label, from_us,
    until_us)] on the same timeline as the events. *)

val pp_checked : Format.formatter -> checked -> unit
val pp_report : Format.formatter -> report -> unit
