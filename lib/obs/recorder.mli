(** Lock-free event recorder.

    A bounded multi-producer single-consumer ring (Vyukov-style: one atomic
    sequence word per slot) sits between the replica domains and a drainer
    thread.  Producers claim a slot with one CAS and two atomic stores —
    nanoseconds, no locks, no allocation beyond the event record — and when
    the ring is full the event is {e dropped and counted}, never blocking a
    replica.  The drainer empties the ring into a pluggable sink (an
    in-memory list for in-process runs, an append-mode binary file for
    cluster processes) and emits a [Drops] accounting event whenever the
    drop counter advanced, so lost events are visible in the trace itself.

    One recorder is installed process-globally ({!install}); emission sites
    all over the runtime call {!emit}, which is a single atomic load when no
    recorder is installed. *)

type t

val start :
  ?capacity:int ->
  epoch_us:int ->
  sink:(Event.t -> unit) ->
  ?flush:(unit -> unit) ->
  unit ->
  t
(** Spawn the drainer.  [capacity] (default 65536) is rounded up to a power
    of two.  Event timestamps are [Mclock.now_us () - epoch_us]; passing the
    same epoch to every process of a cluster makes their trace files merge
    onto one timeline.  [flush] is called after each drain batch and on
    {!stop}. *)

val stop : t -> unit
(** Drain everything still buffered, emit a final [Drops] record if needed,
    stop the drainer thread and call [flush].  Idempotent. *)

val stats : t -> int * int
(** [(recorded, dropped)] so far. *)

(** {1 The process-global recorder} *)

val install : t -> unit
val uninstall : unit -> unit
val active : unit -> bool
val installed_stats : unit -> (int * int) option

val emit :
  pid:int -> kind:Event.kind -> ?trace:int -> ?a:int -> ?b:int -> unit -> unit
(** Record into the installed recorder; a no-op (one atomic load) when none
    is installed. *)

(** {1 Sinks} *)

val memory_sink : unit -> (Event.t -> unit) * (unit -> Event.t list)
(** [(sink, contents)] — [contents ()] returns events drained so far in
    drain order.  The sink is only ever called from the drainer thread. *)

val file_magic : string

val file_sink : string -> (Event.t -> unit) * (unit -> unit) * (unit -> unit)
(** [file_sink path] is [(sink, flush, close)].  The file is opened in
    append mode and stamped with {!file_magic} when empty, so a restarted
    replica process appends to its predecessor's trace. *)

val read_file : string -> Event.t list
(** Decode a trace file.  Raises [Failure] on a bad magic; a truncated tail
    (a replica killed mid-write) silently ends the list. *)

(** {1 Direct ring access (tests)} *)

val push : t -> Event.t -> bool
(** Enqueue without going through {!emit} (so tests control timestamps).
    [false] = ring full, drop counted. *)
