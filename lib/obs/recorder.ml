let dummy_event =
  { Event.t_us = 0; pid = 0; kind = Event.Invoke; trace = 0; a = 0; b = 0 }

(* One atomic sequence word per slot (Vyukov bounded MPSC).  Invariants, for
   slot index [i = pos land mask]:
     seq = pos                -> slot free, a producer may claim ticket [pos]
     seq = pos + 1            -> slot published, consumer may read ticket [pos]
     seq = pos + capacity     -> slot consumed, free for ticket [pos + capacity]
   Producers race on [head] with CAS; the single consumer owns [tail]. *)
type slot = { seq : int Atomic.t; mutable ev : Event.t }

type t = {
  slots : slot array;
  mask : int;
  head : int Atomic.t;
  mutable tail : int; (* drainer-owned *)
  recorded : int Atomic.t;
  dropped : int Atomic.t;
  reported_drops : int Atomic.t; (* drops already accounted by a Drops event *)
  epoch_us : int;
  sink : Event.t -> unit;
  flush : unit -> unit;
  running : bool Atomic.t;
  mutable thread : Thread.t option;
  mutable stopped : bool;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let push t ev =
  let rec claim pos =
    let slot = t.slots.(pos land t.mask) in
    let seq = Atomic.get slot.seq in
    let diff = seq - pos in
    if diff = 0 then
      if Atomic.compare_and_set t.head pos (pos + 1) then (
        slot.ev <- ev;
        Atomic.set slot.seq (pos + 1);
        Atomic.incr t.recorded;
        true)
      else claim (Atomic.get t.head)
    else if diff < 0 then (
      (* consumer hasn't freed this slot yet: ring full *)
      Atomic.incr t.dropped;
      false)
    else claim (Atomic.get t.head)
  in
  claim (Atomic.get t.head)

(* Single consumer only (drainer thread, or [stop] after the join). *)
let pop t =
  let pos = t.tail in
  let slot = t.slots.(pos land t.mask) in
  if Atomic.get slot.seq = pos + 1 then (
    let ev = slot.ev in
    Atomic.set slot.seq (pos + Array.length t.slots);
    t.tail <- pos + 1;
    Some ev)
  else None

let account_drops t =
  let d = Atomic.get t.dropped in
  let seen = Atomic.get t.reported_drops in
  if d > seen then (
    Atomic.set t.reported_drops d;
    t.sink
      {
        Event.t_us = Prelude.Mclock.now_us () - t.epoch_us;
        pid = -1;
        kind = Event.Drops;
        trace = 0;
        a = d - seen;
        b = 0;
      })

let drain_once t =
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match pop t with
    | Some ev ->
        t.sink ev;
        incr n
    | None -> continue := false
  done;
  account_drops t;
  if !n > 0 then t.flush ();
  !n

let drainer t () =
  while Atomic.get t.running do
    if drain_once t = 0 then Thread.delay 0.001
  done

let start ?(capacity = 65536) ~epoch_us ~sink ?(flush = fun () -> ()) () =
  let capacity = next_pow2 (max 2 capacity) in
  let t =
    {
      slots =
        Array.init capacity (fun i ->
            { seq = Atomic.make i; ev = dummy_event });
      mask = capacity - 1;
      head = Atomic.make 0;
      tail = 0;
      recorded = Atomic.make 0;
      dropped = Atomic.make 0;
      reported_drops = Atomic.make 0;
      epoch_us;
      sink;
      flush;
      running = Atomic.make true;
      thread = None;
      stopped = false;
    }
  in
  t.thread <- Some (Thread.create (drainer t) ());
  t

let stop t =
  if not t.stopped then (
    t.stopped <- true;
    Atomic.set t.running false;
    (match t.thread with Some th -> Thread.join th | None -> ());
    (* drainer is gone: we are the single consumer now *)
    ignore (drain_once t);
    t.flush ())

let stats t = (Atomic.get t.recorded, Atomic.get t.dropped)

(* Process-global instance *)

let state : t option Atomic.t = Atomic.make None
let install t = Atomic.set state (Some t)
let uninstall () = Atomic.set state None
let active () = Atomic.get state <> None

let installed_stats () =
  match Atomic.get state with Some t -> Some (stats t) | None -> None

let emit ~pid ~kind ?(trace = 0) ?(a = 0) ?(b = 0) () =
  match Atomic.get state with
  | None -> ()
  | Some t ->
      let t_us = Prelude.Mclock.now_us () - t.epoch_us in
      ignore (push t { Event.t_us; pid; kind; trace; a; b })

(* Sinks *)

let memory_sink () =
  let acc = ref [] in
  let lock = Mutex.create () in
  let sink ev =
    Mutex.lock lock;
    acc := ev :: !acc;
    Mutex.unlock lock
  in
  let contents () =
    Mutex.lock lock;
    let evs = List.rev !acc in
    Mutex.unlock lock;
    evs
  in
  (sink, contents)

let file_magic = "TBTRACE1"

let file_sink path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  if (Unix.fstat fd).Unix.st_size = 0 then (
    let n = Unix.write_substring fd file_magic 0 (String.length file_magic) in
    assert (n = String.length file_magic));
  let buf = Buffer.create 4096 in
  let sink ev = Event.encode buf ev in
  let flush () =
    if Buffer.length buf > 0 then (
      let s = Buffer.contents buf in
      Buffer.clear buf;
      let rec write pos =
        if pos < String.length s then
          let n = Unix.write_substring fd s pos (String.length s - pos) in
          write (pos + n)
      in
      write 0)
  in
  let close () =
    flush ();
    Unix.close fd
  in
  (sink, flush, close)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let mlen = String.length file_magic in
  if len < mlen || String.sub s 0 mlen <> file_magic then
    failwith (Printf.sprintf "obs: %s is not a trace file" path);
  let rec go pos acc =
    match Event.decode s ~pos with
    | Some (ev, next) -> go next (ev :: acc)
    | None -> List.rev acc
  in
  go mlen []
