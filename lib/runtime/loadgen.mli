(** Closed-loop load generator with post-hoc linearizability verification.

    Worker domains drive a live {!Replica} cluster: each worker repeatedly
    draws an operation (mutator/accessor/other, per the configured mix),
    invokes it synchronously and records the client-observed wall-clock
    latency into a per-class {!Histogram}.

    The run proceeds in {e rounds} of at most [round] operations: after
    each round every worker quiesces (domain join) before the next starts.
    The quiescent cuts let the ≤ 62-operation Wing–Gong checker
    ({!Linearize.Make}) verify the full history exactly, segment by
    segment, carrying the witness state across cuts — so live executions
    are linearizability-verified post hoc exactly like simulated ones.

    Timing: the network-facing delays are drawn in [[d − u, d]] µs, but the
    replicas run Algorithm 1 with [d + slack] and [u + slack]: [slack] is
    scheduling-jitter headroom (mailbox poll quantum, OS preemption) that
    the discrete-event simulator does not need but a real executor does.
    The simulator's tick bounds thus become latency {e targets}; whether a
    run met the model's guarantees is decided by the post-hoc check. *)

type verdict =
  | Linearizable of int  (** number of verified history segments *)
  | Violation of { segment : int; reason : string }
  | Unchecked of string

type class_report = {
  class_name : string;  (** ["MOP"], ["AOP"] or ["OOP"] *)
  target_us : int;  (** the paper's bound for this class under the run's params *)
  hist : Histogram.t;  (** fault-free latencies (all of them when no windows) *)
  faulty : Histogram.t option;
      (** latencies of ops {e invoked} inside a declared fault window;
          [None] when the run declared no windows *)
}

val classes_of :
  params:Core.Params.t -> windowed:bool -> Histogram.t array -> class_report list
(** Name the 6-histogram worker layout (slots 0–2 = clean MOP/AOP/OOP,
    3–5 = their fault-window halves) and attach each class's paper target
    under [params].  [windowed = false] drops the faulty halves.  Shared
    by this module, [Net.Cluster] and the sharded cluster — which calls it
    once per shard, so hot-shard latency is keyed by shard rather than
    averaged away. *)

type shard_report = {
  shard : int;
  shard_ops : int;  (** completed operations routed to this shard *)
  shard_classes : class_report list;
  shard_verdict : verdict;
      (** this shard's own segmented Wing–Gong check — linearizability is
          compositional, so the namespace verdict is the conjunction of
          these *)
}
(** Per-shard slice of a sharded run's report ([Shard.Shard_cluster]). *)

val pp_shard_report : Format.formatter -> shard_report -> unit
(** One line: ops routed there, per-class p99 against target, verdict —
    compact enough to print all 64 shards. *)

type report = {
  label : string;
  params : Core.Params.t;  (** effective (slack included in [d], [u]) *)
  net_d : int;
  net_u : int;
  slack : int;
  mix : int * int * int;
  workers : int;
  seed : int;
  loss : int;
  ops : int;
  wall_us : int;
  throughput : float;  (** completed operations per second *)
  classes : class_report list;
  net : Transport.stats;
  offsets : int array;
      (** effective per-replica clock offsets (seeded draw + any injected
          skew) — spread > ε means the skew assumption was violated *)
  cuts : int list;  (** quiescent cut times, µs since cluster start *)
  mode_switches : (int * bool * int) list;
      (** fallback availability log: [(µs since start, entered quorum?,
          epoch)] per replica-local mode transition, in time order; empty
          when no fallback was armed (or no replica switched) *)
  verdict : verdict;
}

val is_linearizable : report -> bool

val pp_verdict : Format.formatter -> verdict -> unit
val pp_report : Format.formatter -> report -> unit

module Make (L : Workloads.LIVE) : sig
  module Lin : module type of Linearize.Make (L.D)

  val check_history : ?initial:L.D.state -> Lin.entry list -> int list -> verdict
  (** [check_history entries cuts] splits the history (in invocation
      order, times on one µs timeline) at the quiescent [cuts] and runs
      Wing–Gong segment by segment, threading the witness state across
      cuts — shared by the in-process load generator and the TCP cluster
      orchestrator ([Net.Cluster]).  [initial] is the object state the
      history starts from (default: fresh) — a durable cluster restarted
      over existing directories serves the persisted history, so its
      checker must start from the recovered state. *)

  val run :
    n:int ->
    d:int ->
    u:int ->
    ?eps:int ->
    ?x:int ->
    ?slack:int ->
    ?workers:int ->
    ?round:int ->
    ?mix:int * int * int ->
    ?loss:int ->
    ?skews:int array ->
    ?wrap:Transport_intf.wrapper ->
    ?fault_windows:(int * int) list ->
    ?recovery:bool ->
    ?crashes:(int * int * int) list ->
    ?fallback:Quorum.Config.t ->
    ?sync:Sync.Config.t ->
    ops:int ->
    seed:int ->
    unit ->
    report
  (** Run [ops] operations against a fresh [n]-replica cluster.

      - [d], [u] (µs): injected network delays lie in [[d − u, d]];
      - [eps] (default [(1 − 1/n)·u]): clock-offset spread, drawn seeded;
      - [x]: Algorithm 1's trade-off knob, [0 ≤ X ≤ d + ε − u];
      - [slack] (µs, default 5000): jitter headroom added to the [d]/[u]
        the replicas assume (see module doc);
      - [workers] (default [n]): closed-loop client domains;
      - [round] (default 48, max 62): operations per quiescent round;
      - [mix] (default [(50, 40, 10)]): percentage weights for
        mutators/accessors/others, normalised over their sum;
      - [loss]: percentage of messages dropped — Algorithm 1 has no
        retransmission layer, so expect a [Violation] verdict;
      - [skews]: per-replica extra clock offsets added to the seeded draw
        (the chaos layer's skew injection); length must be [n];
      - [wrap]: transport decorator applied outermost (see
        {!Replica.Make.start}) — the chaos layer's fault-injection hook;
      - [fault_windows]: [(from, until)] µs intervals on the run timeline;
        ops invoked inside any of them are recorded into the [faulty]
        histograms so degraded latency is reported separately;
      - [recovery]: arm the replicas' crash/recover/catch-up machinery
        (see {!Replica.Make}); workers then mint per-operation ids and
        retry idempotently (capped exponential backoff) when a replica
        asks them to back off;
      - [crashes]: [(pid, crash_at, restart_at)] µs instants on the run
        timeline (the plan's {!Fault.Fault_plan.crash_schedule}): freeze
        the replica at the crash, thaw it through peer catch-up at the
        restart.  Entries with [restart_at = max_int] (permanent kills) are
        skipped unless [fallback] is armed — without a degraded mode a
        replica that never thaws would wedge its workers.  Only effective
        together with [recovery] or [fallback];
      - [fallback]: arm the adaptive quorum fallback ({!Replica.Make.node})
        on every replica.  Workers then mint op ids, retry idempotently and
        rotate to the next replica when one asks them to back off (it may
        be permanently dead), and the report's [mode_switches] log records
        every fast↔quorum transition;
      - [sync]: arm live clock synchronization ({!Replica.Make.node}) on
        every replica — each reads a slew-corrected clock and publishes
        its achieved ε per round;
      - [seed]: all randomness (delays, offsets, op draws, backoff). *)
end
