(** Pluggable message transport between [n] endpoints — the live runtime's
    replacement for the simulator's message-passing layer.

    A transport is a first-class value (polymorphic in the message type, so
    one implementation serves every [Replica.Make] instantiation):

    - {!bus} is the base implementation: an in-process *domain bus*, one
      mutex/condition {!Mailbox} per endpoint, delivering immediately.
      Endpoints are OCaml 5 domains; sends are lock-free handoffs into the
      receiver's mailbox.
    - {!with_delays} is a delay-injecting wrapper: every {!send} is
      assigned a delay by a {!Sim.Delay.t} policy — the same policy
      vocabulary the simulator uses, so [Sim.Delay.random ~d ~u] enforces
      the model's [[d − u, d]] window and [Sim.Delay.lossy] drops messages
      (the {!Sim.Delay.dropped} sentinel).  The message is then parked in
      the receiver's mailbox until its delivery time.

    {!post} bypasses the delay policy: it is the local client/control port
    (operation invocations, shutdown), which in the system model reach a
    process from its co-located application layer, not over the network. *)

type 'msg t

type stats = Transport_intf.stats = {
  sent : int;
  dropped : int;
  link : Transport_intf.link_stats option;
}
(** [sent] counts messages handed to {!send} (including later-dropped
    ones); [dropped] those the delay policy marked lost.  [link] is always
    [None] for the in-process bus — only socket transports have link-level
    counters. *)

val bus : n:int -> unit -> 'msg t
(** In-process domain bus: [send] delivers into the destination's mailbox
    with no injected delay. *)

val with_delays : policy:Sim.Delay.t -> 'msg t -> 'msg t
(** Wrap a transport so every {!send} is delayed by [policy ~src ~dst
    ~send_time ~index] microseconds (negative ⇒ dropped).  [send_time] is
    µs since the wrapped transport's creation; [index] is the per-link
    message sequence number, as in the simulator.  Policy state (its RNG,
    the index counters) is guarded by one lock, so concurrent senders see a
    consistent stream. *)

val n : 'msg t -> int

val send : ?trace:int -> 'msg t -> src:int -> dst:int -> 'msg -> unit
(** [trace] (default none) tags the [Obs] send event this emits when a
    recorder is installed; routing is unaffected. *)

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** {!send} to every endpoint except [src] — the system model's broadcast. *)

val post : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Immediate local delivery, never delayed or dropped (client port). *)

val recv : 'msg t -> me:int -> deadline:int option -> (int * 'msg) option
(** Blocking receive on endpoint [me]'s mailbox: [Some (src, msg)], or
    [None] once [deadline] (µs, {!Prelude.Mclock} timeline) passes —
    deadline semantics as in {!Mailbox.take}. *)

val stats : 'msg t -> stats

val intf : 'msg t -> 'msg Transport_intf.t
(** Pack the bus as a first-class {!Transport_intf.t}, the representation
    {!Replica} consumes — so in-process and TCP clusters share one replica
    event loop. *)
