(** The transport *interface*, factored out of {!Transport} so that the
    in-process bus (PR 1) and the TCP transport ([Net.Tcp_transport]) are
    interchangeable behind {!Replica}.

    A transport is a first-class record of closures, polymorphic in the
    message type: one value serves every [Replica.Make] instantiation, and
    implementations live wherever their dependencies do (the bus here, the
    socket one in [lib/net] which may depend on [unix]).

    Contract, shared by all implementations:

    - {!send} is the network: it may delay, reorder across links, or drop
      (counted in {!stats}); per-link FIFO order is preserved.
    - {!post} is the local client/control port: immediate, reliable,
      in-process delivery to [dst]'s mailbox — in the system model this is
      the co-located application layer invoking an operation, not a
      network hop.
    - {!recv} blocks on endpoint [me]'s mailbox with {!Mailbox.take}
      deadline semantics.
    - {!close} releases any OS resources (threads, sockets); the bus
      transport has none, so there it is a no-op. *)

type link_stats = {
  reconnects : int;
      (** connection attempts beyond the first on each link — every retry
          of the capped-backoff reconnect loop counts *)
  bytes_out : int;  (** wire bytes successfully written *)
  bytes_in : int;  (** wire bytes received and fed to the decoder *)
  disconnected_us : int;
      (** cumulative µs any outgoing link spent wanting a connection it did
          not have, summed over links — the raw material for attributing an
          UNCHECKED verdict to a partition rather than to checker limits *)
  queue_hwm : int;
      (** high-water mark of the per-link data-lane write queues (frames),
          max over links — how close a wedged peer came to the shed cap *)
  ctrl_hwm : int;
      (** high-water mark of the per-link control-lane write queues
          (frames), max over links — the lane heartbeats, mode
          announcements, sync probes, and catch-up ride; it preempts the
          data lane so this should stay near zero even at saturation *)
  lane_shed : int;
      (** frames shed from full data lanes, summed over links — counted
          overload, never silent (each shed also emits an Obs event) *)
}

type stats = {
  sent : int;  (** messages handed to {!send} (including later-dropped) *)
  dropped : int;
      (** messages lost: marked by the delay policy (bus) or shed from a
          full/disconnected peer queue (TCP) *)
  link : link_stats option;
      (** socket-level counters; [None] for in-process transports *)
}

type 'msg t = {
  n : int;
  send : src:int -> dst:int -> trace:int -> 'msg -> unit;
      (** [trace] is the id of the operation this message belongs to
          ([Obs.Trace_id.none] when untraced) — transports and their
          wrappers emit [Send]/[Fault] observability events against it
          without inspecting the opaque message. *)
  post : src:int -> dst:int -> 'msg -> unit;
  recv : me:int -> deadline:int option -> (int * 'msg) option;
  depth : me:int -> int;
      (** Current queue depth of endpoint [me]'s inbound mailbox — sampled
          into [Deliver]/[Mbox_depth] observability events. *)
  stats : unit -> stats;
  close : unit -> unit;
}

type wrapper = { wrap : 'msg. start_us:int -> 'msg t -> 'msg t }
(** A transport decorator that is polymorphic in the message type, so one
    value (e.g. [Fault.Chaos_transport]'s) can wrap the in-process bus and
    the TCP transport alike.  [start_us] is the run's clock epoch on the
    {!Prelude.Mclock} timeline — wrappers that schedule behaviour in run
    time (fault windows) measure from it. *)

let n t = t.n
let send t ?(trace = 0) ~src ~dst msg = t.send ~src ~dst ~trace msg

(** {!send} to every endpoint except [src] — the system model's broadcast
    (a process never sends to itself; its own copy is handled locally). *)
let broadcast t ?(trace = 0) ~src msg =
  for dst = 0 to t.n - 1 do
    if dst <> src then t.send ~src ~dst ~trace msg
  done

let post t ~src ~dst msg = t.post ~src ~dst msg
let recv t ~me ~deadline = t.recv ~me ~deadline
let depth t ~me = t.depth ~me
let stats t = t.stats ()
let close t = t.close ()

let no_links =
  {
    reconnects = 0;
    bytes_out = 0;
    bytes_in = 0;
    disconnected_us = 0;
    queue_hwm = 0;
    ctrl_hwm = 0;
    lane_shed = 0;
  }

let pp_stats fmt s =
  Format.fprintf fmt "sent=%d dropped=%d" s.sent s.dropped;
  match s.link with
  | None -> ()
  | Some l ->
      Format.fprintf fmt " reconnects=%d bytes_out=%d bytes_in=%d"
        l.reconnects l.bytes_out l.bytes_in;
      if l.disconnected_us > 0 then
        Format.fprintf fmt " disconnected=%dµs" l.disconnected_us;
      if l.queue_hwm > 0 then Format.fprintf fmt " queue_hwm=%d" l.queue_hwm;
      if l.ctrl_hwm > 0 then Format.fprintf fmt " ctrl_hwm=%d" l.ctrl_hwm;
      if l.lane_shed > 0 then Format.fprintf fmt " lane_shed=%d" l.lane_shed
