(** See the interface for the contract.  The queue is a sorted association
    list keyed by ([deliver_at], sequence) — mailboxes hold at most a few
    in-flight messages per peer, so O(n) insertion beats the constant
    factors of a heap and keeps same-time items in insertion order. *)

let poll_quantum_us = 100

type 'a item = { at : int; seq : int; v : 'a }

type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable items : 'a item list;  (** sorted by [(at, seq)] *)
  mutable next_seq : int;
}

let create () =
  { mutex = Mutex.create (); cond = Condition.create (); items = []; next_seq = 0 }

let rec insert it = function
  | [] -> [ it ]
  | hd :: tl ->
      if it.at < hd.at || (it.at = hd.at && it.seq < hd.seq) then it :: hd :: tl
      else hd :: insert it tl

let put t ~deliver_at v =
  Mutex.lock t.mutex;
  let it = { at = deliver_at; seq = t.next_seq; v } in
  t.next_seq <- t.next_seq + 1;
  t.items <- insert it t.items;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let take t ~deadline =
  Mutex.lock t.mutex;
  let rec loop () =
    let now = Prelude.Mclock.now_us () in
    match t.items with
    | hd :: tl
      when hd.at <= now
           && (match deadline with None -> true | Some d -> hd.at <= d) ->
        t.items <- tl;
        Mutex.unlock t.mutex;
        Some hd.v
    | items -> (
        let head_at = match items with [] -> None | hd :: _ -> Some hd.at in
        match deadline with
        | Some d when now >= d ->
            Mutex.unlock t.mutex;
            None
        | _ -> (
            (* Earliest future instant anything can change on its own. *)
            let target =
              match (head_at, deadline) with
              | None, None -> None
              | Some a, None | None, Some a -> Some a
              | Some a, Some b -> Some (min a b)
            in
            match target with
            | None ->
                (* Nothing queued, no deadline: sleep until a [put]. *)
                Condition.wait t.cond t.mutex;
                loop ()
            | Some tgt ->
                (* Bounded wait: sleep-poll so late [put]s (which we cannot
                   be woken from while sleeping outside the condition) are
                   noticed within a quantum. *)
                Mutex.unlock t.mutex;
                Prelude.Mclock.sleep_us (min poll_quantum_us (tgt - now));
                Mutex.lock t.mutex;
                loop ()))
  in
  loop ()

let length t =
  Mutex.lock t.mutex;
  let n = List.length t.items in
  Mutex.unlock t.mutex;
  n
