(** Live-workload bundles: a data type together with seeded op samplers for
    each of the paper's three operation classes — what the load generator
    draws from when asked for a given MOP/AOP/OOP mix.  The samplers agree
    with [D.classify] by construction (asserted in the tests). *)

module type LIVE = sig
  module D : Spec.Data_type.S

  val label : string
  (** CLI name of the workload. *)

  val sample_mutator : Prelude.Rng.t -> D.op
  val sample_accessor : Prelude.Rng.t -> D.op
  val sample_other : Prelude.Rng.t -> D.op
end

module Register_live = struct
  module D = Spec.Register

  let label = "register"
  let sample_mutator rng = Spec.Register.Write (Prelude.Rng.int rng 1000)
  let sample_accessor _ = Spec.Register.Read
  let sample_other rng = Spec.Register.Rmw (Prelude.Rng.int rng 1000)
end

module Counter_live = struct
  module D = Spec.Register

  let label = "counter"

  (* [Add] is the Chapter II increment: a self-commuting pure mutator, the
     cleanest showcase for the ε + X mutator path. *)
  let sample_mutator rng = Spec.Register.Add (1 + Prelude.Rng.int rng 3)
  let sample_accessor _ = Spec.Register.Read
  let sample_other rng = Spec.Register.Rmw (Prelude.Rng.int rng 1000)
end

module Kv_map_live = struct
  module D = Spec.Kv_map

  let keys = 16

  let label = "kv"

  let sample_mutator rng =
    let k = Prelude.Rng.int rng keys in
    if Prelude.Rng.int rng 10 < 8 then Spec.Kv_map.Put (k, Prelude.Rng.int rng 1000)
    else Spec.Kv_map.Del k

  let sample_accessor rng = Spec.Kv_map.Get (Prelude.Rng.int rng keys)

  let sample_other rng =
    Spec.Kv_map.Swap (Prelude.Rng.int rng keys, Prelude.Rng.int rng 1000)
end

module Fifo_queue_live = struct
  module D = Spec.Fifo_queue

  let label = "queue"
  let sample_mutator rng = Spec.Fifo_queue.Enqueue (Prelude.Rng.int rng 1000)
  let sample_accessor _ = Spec.Fifo_queue.Peek
  let sample_other _ = Spec.Fifo_queue.Dequeue
end

(* Zipfian key popularity (Gray et al., "Quickly generating billion-record
   synthetic databases"): rank r ∈ [0, n) is drawn with probability
   ∝ 1/(r+1)^θ.  The ζ(n, θ) normaliser is the only O(n) part and is paid
   once at [make]; each [sample] is O(1).  θ = 0 degenerates to uniform,
   θ ≈ 0.99 is the YCSB default hot-key skew.  The sharded load generator
   feeds sampled ranks straight into the consistent-hash ring: popular
   ranks land on whichever shards their hashes pick, which is exactly the
   hot-shard skew the per-shard histograms are there to expose. *)
module Zipf = struct
  type t = {
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
  }

  let zeta ~n ~theta =
    let z = ref 0. in
    for i = 1 to n do
      z := !z +. (1. /. Float.pow (float_of_int i) theta)
    done;
    !z

  let make ~n ~theta =
    if n <= 0 then invalid_arg "Zipf.make: n must be positive";
    if theta < 0. || theta >= 1. then
      invalid_arg "Zipf.make: theta must be in [0, 1)";
    let zetan = zeta ~n ~theta in
    let zeta2 = zeta ~n:(min n 2) ~theta in
    let alpha = 1. /. (1. -. theta) in
    let eta =
      (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
      /. (1. -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta }

  let sample t rng =
    let u = Prelude.Rng.float rng 1. in
    let uz = u *. t.zetan in
    if uz < 1. then 0
    else if uz < 1. +. Float.pow 0.5 t.theta then 1
    else
      let r =
        float_of_int t.n
        *. Float.pow ((t.eta *. u) -. t.eta +. 1.) t.alpha
      in
      min (t.n - 1) (int_of_float r)

  let size t = t.n
end

let register = (module Register_live : LIVE)
let counter = (module Counter_live : LIVE)
let kv_map = (module Kv_map_live : LIVE)
let fifo_queue = (module Fifo_queue_live : LIVE)

let all = [ register; counter; kv_map; fifo_queue ]
let names = List.map (fun (module L : LIVE) -> L.label) all

let find name =
  List.find_opt (fun (module L : LIVE) -> String.equal L.label name) all
