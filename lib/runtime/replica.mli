(** Live Algorithm 1 replicas: the paper's protocol state machine
    ({!Core.Algorithm1}) hosted on real OCaml 5 domains behind a real
    clock, exchanging messages over a {!Transport_intf.t}.

    Each replica is one domain running an event loop over a single
    {!Mailbox}: network messages (possibly delay-injected), client
    invocations and a shutdown signal all arrive there, and an internal
    timer wheel realises the algorithm's [Set_timer] actions.  Ripe
    messages and due timers are processed in global chronological order
    (see {!Mailbox.take}), so a replica that falls behind (scheduling) still
    handles events in the order the model prescribes.

    The building block is a {e node} — one replica on one domain over an
    arbitrary transport.  [Net.Serve] runs a single node per OS process
    over TCP; {!start} below assembles the PR 1 in-process cluster by
    pointing [n] nodes at one shared bus transport.

    Clocks: replica [i] reads [Mclock.now_us () − start + offset] — real
    time plus a fixed per-replica offset, exactly the thesis' clock model
    with skew [ε = max offset spread].  Timer delays are clock-time
    delays, and clocks run at the rate of real time, as in the model.
    With a {!Sync.Config.t} (the [?sync] argument below) the replica
    instead reads a {e corrected} clock: the raw clock plus a correction
    earned over the wire by the clock-synchronization subsystem
    (DESIGN.md §14).  Every [interval_us] the replica broadcasts
    timestamped pings, folds the pong echoes into a per-peer offset
    estimator ({!Sync.Estimator}), and slews the correction toward the
    Lundelius–Lynch midpoint average ({!Sync.Clock} — rate-limited and
    never stepped backward, so timer arithmetic stays monotone).  Each
    round it publishes the achieved skew bound ε as an
    {!Obs.Event.Sync_eps} event and through the config's [on_eps] hook.

    The cluster records every completed operation with its replica-side
    invocation/response times (µs since cluster start); these feed the
    post-hoc linearizability check.  Replica-side intervals are contained
    in the client-observed ones, so a history that passes the check with
    them is also linearizable from the clients' point of view.

    {2 Crash recovery (PR 5)}

    With a {!recovery} configuration a replica becomes restartable:

    - Algorithm 1's (timestamp, origin) total order makes the applied
      history replayable; the [on_apply] hook sees every mutation in
      exactly that order, which is what [Net.Serve] appends to the WAL.
    - A restarted replica seeds itself from {!recovered_state} (decoded
      snapshot + WAL), then {e catches up from peers}: it freezes,
      broadcasts a catch-up request carrying its high-water mark (the
      largest applied stamp), absorbs replies, and thaws when every peer
      answered or [catchup_wait_us] expires.  At thaw it also pushes back
      anything it holds above each replier's own high-water mark, so
      anti-entropy converges both ways.
    - Operation ids ride on every broadcast entry.  A client replaying an
      operation id the replica already applied gets the recorded result; a
      replay of a still-queued pure mutator is answered immediately (its
      result is state-independent); a replay of a still-queued OOP raises
      {!Retry_later}.  Accessors have no effect and are never deduped.
    - While frozen, [Execute]/[Respond] timers are deferred (nothing
      applies, keeping the high-water mark contiguous) and invokes are
      backlogged; [Add] timers still fire, since they only mirror an
      already-broadcast entry into the local queue.

    {2 Adaptive quorum fallback (DESIGN.md §13)}

    With a {!Quorum.Config.t} a replica runs the adaptive degraded mode:
    it exchanges heartbeats (doubling as mode announcements), feeds a
    per-peer failure detector, and — while timing is intact — keeps
    running Algorithm 1's fast path with one addition, the {e release
    gate}: a response stamped [ts] is withheld until every peer's
    heartbeat clock passed [ts + d + ε], proving the peer received the
    entry's broadcast (or sits behind a partition that also ate its
    heartbeats, in which case the gate stalls until the detector excuses
    it).  When a peer is suspected dead, the lowest live pid bumps the
    epoch and announces {e quorum mode}: operations are forwarded to that
    sequencer, ordered into a majority-replicated log (Propose / Qack /
    Qcommit — ABD-style two round trips, 4d + ε), and applied through an
    execution barrier that first drains every straggling fast-path entry
    below the committed stamp.  When the detector sees every peer again,
    the sequencer drains its log and announces fast mode with a stamp
    {e floor}; fast-path clocks clamp above the floor so the two eras
    never interleave.  A minority partition {e stalls}: clients are
    bounced with ["retry: …"] until quorum returns — safety over
    availability on the minority side, availability on the majority's.

    Known gap, documented in DESIGN.md §11: a MOP is acknowledged ε + X
    after invocation but applied (and therefore logged) only at d + ε, so
    a whole-cluster crash inside that window can lose an acked mutator —
    single-replica crashes cannot, because the broadcast survives on
    peers.  Likewise, an origin that dies {e mid}-broadcast can leave an
    entry at a strict subset of peers; catch-up re-spreads it unless every
    holder already applied past its stamp (a sub-µs window). *)

module Make (D : Spec.Data_type.S) : sig
  module Alg : module type of Core.Algorithm1.Make (D)

  exception Stopped
  (** Raised by {!invoke}/{!node_invoke} when the replica shut down before
      responding (the operation is lost, not retried). *)

  exception Retry_later of string
  (** Raised by {!invoke_on} when a replayed operation id is still in
      flight and its result is state-dependent: the client must back off
      and retry — the first attempt will land, and the retry will then be
      answered from the recorded result. *)

  type record = {
    pid : int;
    seq : int;  (** per-replica invocation sequence number *)
    op : D.op;
    result : D.result;
    invoke_us : int;  (** µs since cluster start, replica-side *)
    response_us : int;
  }

  type event
  (** What flows through a replica's transport: network entries, catch-up
      requests/replies, local client invocations (which carry an
      unserialisable completion cell), crash/recover injections, snapshot
      requests and the stop signal.  Only events with a {!wire_view} ever
      cross a wire. *)

  type snapshot_view = {
    v_obj : D.state;  (** the object right now *)
    v_hwm_time : int;  (** high-water mark stamp (−1 = nothing applied) *)
    v_hwm_pid : int;
    v_applied : (Alg.entry * D.result * int) list;
        (** applied history with op ids, oldest first *)
  }
  (** A consistent cut of a replica's durable state, taken inside its own
      event loop (see {!request_snapshot}) — what a checkpoint encodes. *)

  type recovered_state = {
    r_obj : D.state;
    r_applied : (Alg.entry * D.result * int) list;  (** oldest first *)
  }
  (** The durable prefix a restarted replica seeds itself from: decoded
      snapshot fast-forwarded by the WAL tail. *)

  type recovery = {
    catchup_wait_us : int;
        (** freeze at most this long waiting for peer catch-up replies;
            thaws early once every peer answered *)
    on_apply : Alg.entry -> D.result -> int -> unit;
        (** called for every mutation, in applied (timestamp) order, with
            its op id (0 = none), {e before} the same protocol step's
            response is released — the WAL-append hook *)
    recovered : recovered_state option;  (** [None] = fresh boot *)
  }

  (** {2 Wire mapping}

      The codec sees events through {!wire}: protocol entries (now
      carrying the op id), the two catch-up frames and the quorum
      frames.  Local-only events have no wire view and must never reach
      an encoder. *)

  type qpayload = {
    q_time : int;  (** assigned stamp time (stamp pid is [q_origin]) *)
    q_op : D.op;
    q_origin : int;
    q_qid : int;  (** origin-local forward id, stable across retries *)
    q_op_id : int;
    q_trace : int;
  }
  (** One operation as the quorum era's replicated log carries it. *)

  (** Clock-synchronization probe frames (DESIGN.md §14): a ping carries
      the prober's corrected clock at send; the pong echoes it plus the
      responder's receive/reply clocks — the four NTP timestamps of one
      two-way offset sample. *)
  type swire =
    | Sping of { seq : int; t0 : int }
    | Spong of { seq : int; t0 : int; t_rx : int; t_tx : int }

  type qwire =
    | Hb of { stamp : int; epoch : int; qmode : bool; seq : int; floor : int }
        (** heartbeat doubling as the mode announcement: the sender's
            clock plus its (epoch, mode, sequencer pid, stamp floor) *)
    | Forward of { qid : int; origin : int; op : D.op; op_id : int; trace : int }
        (** origin → sequencer: please order this op *)
    | Propose of { epoch : int; qseq : int; p : qpayload }
        (** sequencer → all: slot [qseq] of the era holds [p] *)
    | Qack of { epoch : int; qseq : int }  (** follower → sequencer *)
    | Qcommit of { epoch : int; qseq : int }
        (** sequencer → all: a majority stored [qseq]; apply in order *)
    | Fnack of { qid : int }
        (** addressee is not the sequencer (or left quorum mode): re-route *)
    | Qfill of { epoch : int; from_seq : int }
        (** follower → sequencer: re-send payloads from [from_seq] up *)

  type wire =
    | Wire_entry of Alg.entry * int * int  (** entry, trace, op id *)
    | Wire_catchup_req of { time : int; cpid : int }
        (** asker's high-water mark *)
    | Wire_catchup_rep of {
        entries : (Alg.entry * int) list;  (** (entry, op id), stamp order *)
        time : int;
        cpid : int;  (** replier's high-water mark *)
      }
    | Wire_quorum of qwire
    | Wire_sync of swire

  val wire_view : event -> wire option
  val of_wire : wire -> event

  val net : ?trace:int -> Alg.entry -> event
  (** Wrap a protocol message — what a TCP transport's decoder builds.
      [trace] (default none) is the originating operation's id, carried in
      the wire format since codec v2 so cross-process spans reassemble.
      Equivalent to [of_wire (Wire_entry (e, trace, 0))]. *)

  val net_entry : event -> (Alg.entry * int) option
  (** The protocol message and trace id of a {!net} event; [None]
      otherwise. *)

  (** {2 Single node (one replica, any transport)} *)

  type node

  val node :
    params:Core.Params.t ->
    transport:event Transport_intf.t ->
    pid:int ->
    ?offset:int ->
    ?start_us:int ->
    ?threaded:bool ->
    ?recovery:recovery ->
    ?fallback:Quorum.Config.t ->
    ?sync:Sync.Config.t ->
    unit ->
    node
  (** Spawn one replica domain with identity [pid] over [transport].
      [offset] (default 0) is its clock offset in µs; [start_us] (default
      now) is the origin of its record timeline — the in-process cluster
      passes one shared origin so all records are comparable.  [threaded]
      (default false) runs the event loop on a systhread instead of its
      own domain: the loop blocks in [Mailbox.take] (releasing the runtime
      lock) whenever idle, so a sharded host can run hundreds of replicas
      in one process — far past the OCaml domain ceiling — at the cost of
      serialising their CPU bursts.  [recovery] enables the durability
      machinery (see the module docs); pass {!post_recover} after the
      transport is connected to trigger peer catch-up.  [fallback] arms
      the adaptive quorum fallback (heartbeats, failure detection, the
      degraded ABD mode — see the module docs and DESIGN.md §13).
      [sync] arms live clock synchronization: the replica reads a
      slew-corrected clock and measures its achieved ε over the wire
      (see the module docs and DESIGN.md §14). *)

  val node_invoke :
    ?trace:int -> ?op_id:int -> ?deadline:int -> node -> D.op -> D.result
  (** Synchronous client call on this node; queued behind any pending
      operation (the model allows one per process).  [trace] tags every
      [Obs] event and outgoing message of this operation; [op_id] is the
      idempotence key (see {!invoke_on}); [deadline] the op's absolute
      deadline (see {!invoke_on}).  @raise Stopped if the node
      shuts down first.  @raise Retry_later if a replay must back off. *)

  val node_stop : node -> record list
  (** Post the stop signal, join the domain, and return the node's
      completed-operation records (invocation order).  Clients still
      waiting are woken with {!Stopped}.  Idempotent ([[]] thereafter). *)

  val node_elapsed_us : node -> int

  val invoke_on :
    ?trace:int -> ?op_id:int -> ?deadline:int -> event Transport_intf.t ->
    pid:int -> D.op -> D.result
  (** Synchronous client call posted straight to a transport — what
      [Net.Serve] uses.  [op_id] (default 0 = none) identifies the client
      operation for idempotent retries: invoking twice with the same id
      executes once.  [deadline] (default 0 = none) is the op's absolute
      deadline in µs on the {!Prelude.Mclock} timeline: a replica sheds
      an op whose deadline already passed — at arrival or when it surfaces
      from the backlog — with [Retry_later "shed: ..."] and a counted
      [Obs.Event.Shed] event, instead of doing dead work.
      @raise Retry_later if a replay must back off or the op was shed;
      @raise Stopped if the replica shuts down first. *)

  val post_crash : event Transport_intf.t -> pid:int -> unit
  (** Freeze replica [pid] as if it crashed: it drops network traffic,
      defers its response/execute timers and backlogs invokes until
      {!post_recover}.  The in-process realisation of a crash fault —
      pair it with the chaos layer's transport isolation. *)

  val post_recover : event Transport_intf.t -> pid:int -> unit
  (** Thaw replica [pid] through the catch-up protocol (no-op without a
      [recovery] config, or if already catching up). *)

  val request_snapshot :
    event Transport_intf.t -> pid:int -> (snapshot_view -> unit) -> unit
  (** Ask replica [pid] for a consistent cut; the callback runs inside the
      replica's own event loop, so it must be quick and may not invoke. *)

  (** {2 In-process cluster (n nodes on one bus)} *)

  type cluster

  val start :
    params:Core.Params.t ->
    ?policy:Sim.Delay.t ->
    ?offsets:int array ->
    ?wrap:Transport_intf.wrapper ->
    ?recovery:recovery ->
    ?fallback:Quorum.Config.t ->
    ?sync:Sync.Config.t ->
    unit ->
    cluster
  (** Spawn [params.n] replica domains connected by an in-process bus —
      wrapped in a delay-injecting transport when [policy] is given (delays
      in µs; negative = loss).  [offsets] (default all 0) are the
      per-replica clock offsets; their spread must be ≤ [params.eps] for
      the timing guarantees to be targets.  [wrap] decorates the assembled
      transport (applied outermost, after the delay policy) — the hook the
      chaos layer ([Fault.Chaos_transport]) uses to inject faults; the
      cluster's start time is passed as the wrapper's [start_us].
      [recovery] (shared by all nodes; [recovered] should be [None]) arms
      the crash/recover/catch-up machinery for {!crash}/{!recover};
      [fallback] (shared by all nodes) arms the quorum fallback; [sync]
      (shared by all nodes) arms live clock synchronization, letting the
      cluster measure and shrink the very skew [offsets] injects. *)

  val invoke : ?trace:int -> ?op_id:int -> cluster -> pid:int -> D.op -> D.result
  (** Synchronous client call: block until replica [pid] responds.
      Concurrent invocations on one replica are queued — the model allows
      one pending operation per process.  See {!invoke_on} for [op_id]. *)

  val crash : cluster -> pid:int -> unit
  (** {!post_crash} on replica [pid]. *)

  val recover : cluster -> pid:int -> unit
  (** {!post_recover} on replica [pid]. *)

  module Client : sig
    val invoke : ?trace:int -> cluster -> pid:int -> D.op -> D.result
  end

  val stop : cluster -> unit
  (** Shut every replica down and join its domain.  Idempotent. *)

  val history : cluster -> record list
  (** Completed operations of a {e stopped} cluster, sorted by invocation
      time (ties by [(pid, seq)], preserving per-replica program order). *)

  val elapsed_us : cluster -> int
  (** µs since cluster start — the timeline {!record} times live on. *)

  val transport_stats : cluster -> Transport_intf.stats
end
