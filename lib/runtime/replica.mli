(** Live Algorithm 1 replicas: the paper's protocol state machine
    ({!Core.Algorithm1}) hosted on real OCaml 5 domains behind a real
    clock, exchanging messages over a {!Transport_intf.t}.

    Each replica is one domain running an event loop over a single
    {!Mailbox}: network messages (possibly delay-injected), client
    invocations and a shutdown signal all arrive there, and an internal
    timer wheel realises the algorithm's [Set_timer] actions.  Ripe
    messages and due timers are processed in global chronological order
    (see {!Mailbox.take}), so a replica that falls behind (scheduling) still
    handles events in the order the model prescribes.

    The building block is a {e node} — one replica on one domain over an
    arbitrary transport.  [Net.Serve] runs a single node per OS process
    over TCP; {!start} below assembles the PR 1 in-process cluster by
    pointing [n] nodes at one shared bus transport.

    Clocks: replica [i] reads [Mclock.now_us () − start + offset] — real
    time plus a fixed per-replica offset, exactly the thesis' clock model
    with skew [ε = max offset spread].  Timer delays are clock-time
    delays, and clocks run at the rate of real time, as in the model.

    The cluster records every completed operation with its replica-side
    invocation/response times (µs since cluster start); these feed the
    post-hoc linearizability check.  Replica-side intervals are contained
    in the client-observed ones, so a history that passes the check with
    them is also linearizable from the clients' point of view. *)

module Make (D : Spec.Data_type.S) : sig
  module Alg : module type of Core.Algorithm1.Make (D)

  exception Stopped
  (** Raised by {!invoke}/{!node_invoke} when the replica shut down before
      responding (the operation is lost, not retried). *)

  type record = {
    pid : int;
    seq : int;  (** per-replica invocation sequence number *)
    op : D.op;
    result : D.result;
    invoke_us : int;  (** µs since cluster start, replica-side *)
    response_us : int;
  }

  type event
  (** What flows through a replica's transport: network entries, local
      client invocations (which carry an unserialisable completion cell)
      and the stop signal.  Only {!net} events ever cross a wire. *)

  val net : ?trace:int -> Alg.entry -> event
  (** Wrap a protocol message — what a TCP transport's decoder builds.
      [trace] (default none) is the originating operation's id, carried in
      the wire format since codec v2 so cross-process spans reassemble. *)

  val net_entry : event -> (Alg.entry * int) option
  (** The protocol message and trace id of a {!net} event; [None] for the
      local-only invocation/stop events (which must never reach an
      encoder). *)

  (** {2 Single node (one replica, any transport)} *)

  type node

  val node :
    params:Core.Params.t ->
    transport:event Transport_intf.t ->
    pid:int ->
    ?offset:int ->
    ?start_us:int ->
    unit ->
    node
  (** Spawn one replica domain with identity [pid] over [transport].
      [offset] (default 0) is its clock offset in µs; [start_us] (default
      now) is the origin of its record timeline — the in-process cluster
      passes one shared origin so all records are comparable. *)

  val node_invoke : ?trace:int -> node -> D.op -> D.result
  (** Synchronous client call on this node; queued behind any pending
      operation (the model allows one per process).  [trace] tags every
      [Obs] event and outgoing message of this operation.  @raise Stopped
      if the node shuts down first. *)

  val node_stop : node -> record list
  (** Post the stop signal, join the domain, and return the node's
      completed-operation records (invocation order).  Clients still
      waiting are woken with {!Stopped}.  Idempotent ([[]] thereafter). *)

  val node_elapsed_us : node -> int

  (** {2 In-process cluster (n nodes on one bus)} *)

  type cluster

  val start :
    params:Core.Params.t ->
    ?policy:Sim.Delay.t ->
    ?offsets:int array ->
    ?wrap:Transport_intf.wrapper ->
    unit ->
    cluster
  (** Spawn [params.n] replica domains connected by an in-process bus —
      wrapped in a delay-injecting transport when [policy] is given (delays
      in µs; negative = loss).  [offsets] (default all 0) are the
      per-replica clock offsets; their spread must be ≤ [params.eps] for
      the timing guarantees to be targets.  [wrap] decorates the assembled
      transport (applied outermost, after the delay policy) — the hook the
      chaos layer ([Fault.Chaos_transport]) uses to inject faults; the
      cluster's start time is passed as the wrapper's [start_us]. *)

  val invoke : ?trace:int -> cluster -> pid:int -> D.op -> D.result
  (** Synchronous client call: block until replica [pid] responds.
      Concurrent invocations on one replica are queued — the model allows
      one pending operation per process. *)

  module Client : sig
    val invoke : ?trace:int -> cluster -> pid:int -> D.op -> D.result
  end

  val stop : cluster -> unit
  (** Shut every replica down and join its domain.  Idempotent. *)

  val history : cluster -> record list
  (** Completed operations of a {e stopped} cluster, sorted by invocation
      time (ties by [(pid, seq)], preserving per-replica program order). *)

  val elapsed_us : cluster -> int
  (** µs since cluster start — the timeline {!record} times live on. *)

  val transport_stats : cluster -> Transport_intf.stats
end
