(** See the interface for the run structure.  Per-worker histograms are
    domain-local and merged after each round's join, so no measurement path
    takes a lock while an operation is being timed. *)

type verdict =
  | Linearizable of int
  | Violation of { segment : int; reason : string }
  | Unchecked of string

type class_report = {
  class_name : string;
  target_us : int;
  hist : Histogram.t;
  faulty : Histogram.t option;
}

(* The one place the 6-histogram worker layout (3 classes × clean/faulty)
   is turned into named class reports with their paper targets — shared by
   the in-process generator, the TCP cluster orchestrator and the sharded
   cluster (which builds one list per shard). *)
let classes_of ~(params : Core.Params.t) ~windowed hists =
  let t = params.Core.Params.timing in
  let faulty i = if windowed then Some hists.(i + 3) else None in
  [
    {
      class_name = "MOP";
      target_us = t.Core.Params.mutator_wait;
      hist = hists.(0);
      faulty = faulty 0;
    };
    {
      class_name = "AOP";
      target_us = t.Core.Params.accessor_wait;
      hist = hists.(1);
      faulty = faulty 1;
    };
    {
      class_name = "OOP";
      target_us = params.Core.Params.d + params.Core.Params.eps;
      hist = hists.(2);
      faulty = faulty 2;
    };
  ]

type shard_report = {
  shard : int;
  shard_ops : int;  (** completed operations routed to this shard *)
  shard_classes : class_report list;
  shard_verdict : verdict;
      (** this shard's own segmented Wing–Gong check — linearizability
          composes, so the namespace verdict is the conjunction *)
}

type report = {
  label : string;
  params : Core.Params.t;
  net_d : int;
  net_u : int;
  slack : int;
  mix : int * int * int;
  workers : int;
  seed : int;
  loss : int;
  ops : int;
  wall_us : int;
  throughput : float;
  classes : class_report list;
  net : Transport.stats;
  offsets : int array;
  cuts : int list;
  mode_switches : (int * bool * int) list;
      (** fallback availability log: [(µs since start, entered quorum?,
          epoch)] per replica-local mode transition, in time order; empty
          when no fallback was armed (or none switched) *)
  verdict : verdict;
}

let is_linearizable r = match r.verdict with Linearizable _ -> true | _ -> false

(* One line per shard: enough to eyeball zipfian skew (ops column) and
   per-shard bound health (p99 vs target per class) across 64 shards
   without drowning the aggregate report. *)
let pp_shard_report fmt s =
  let pp_class fmt (c : class_report) =
    if Histogram.count c.hist = 0 then
      Format.fprintf fmt "%s —" c.class_name
    else
      Format.fprintf fmt "%s p99=%d/%dµs" c.class_name
        (Histogram.percentile c.hist 99.)
        c.target_us
  in
  let verdict_tag =
    match s.shard_verdict with
    | Linearizable _ -> "LINEARIZABLE"
    | Violation { segment; _ } -> Printf.sprintf "VIOLATION(seg %d)" segment
    | Unchecked _ -> "UNCHECKED"
  in
  Format.fprintf fmt "shard %3d: %6d ops  %a  %s" s.shard s.shard_ops
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "  ")
       pp_class)
    s.shard_classes verdict_tag

let pp_verdict fmt = function
  | Linearizable segments ->
      Format.fprintf fmt "PASS (%d segment%s verified)" segments
        (if segments = 1 then "" else "s")
  | Violation { segment; reason } ->
      Format.fprintf fmt "VIOLATION in segment %d: %s" segment reason
  | Unchecked reason -> Format.fprintf fmt "UNCHECKED (%s)" reason

let pp_report fmt r =
  let m, a, o = r.mix in
  Format.fprintf fmt
    "@[<v>live %s: %a (net d=%d u=%d, slack=%d) mix=%d:%d:%d workers=%d \
     seed=%d%s@,\
     %d ops in %.3f s (%.0f ops/s); messages %a@,"
    r.label Core.Params.pp r.params r.net_d r.net_u r.slack m a o r.workers
    r.seed
    (if r.loss > 0 then Printf.sprintf " loss=%d%%" r.loss else "")
    r.ops
    (float_of_int r.wall_us /. 1e6)
    r.throughput Transport_intf.pp_stats r.net;
  List.iter
    (fun c ->
      Format.fprintf fmt "  %-3s %a  (target %s %dµs)@," c.class_name
        Histogram.pp c.hist
        (if String.equal c.class_name "OOP" then "≤" else "≈")
        c.target_us;
      match c.faulty with
      | None -> ()
      | Some h ->
          Format.fprintf fmt "      in fault windows: %a@," Histogram.pp h)
    r.classes;
  (match r.mode_switches with
  | [] -> ()
  | switches ->
      Format.fprintf fmt "  mode switches:";
      List.iter
        (fun (at, quorum, epoch) ->
          Format.fprintf fmt " %s(e%d) t=%dµs"
            (if quorum then "quorum" else "fast")
            epoch at)
        switches;
      Format.fprintf fmt "@,");
  Format.fprintf fmt "post-hoc linearizability: %a@]" pp_verdict r.verdict

module Make (L : Workloads.LIVE) = struct
  module R = Replica.Make (L.D)
  module Lin = Linearize.Make (L.D)
  module Seq = Spec.Data_type.Run (L.D)

  let kind_of op = L.D.classify op

  (* Draw one operation according to the (mutator, accessor, other) weights. *)
  let draw rng (m, a, _o) total =
    let toss = Prelude.Rng.int rng total in
    if toss < m then L.sample_mutator rng
    else if toss < m + a then L.sample_accessor rng
    else L.sample_other rng

  (* ---- post-hoc check: segment the history at the quiescent cuts and run
     Wing–Gong on each segment, threading the witness state through. ---- *)

  let check_history ?initial entries cuts =
    let segment_of (e : Lin.entry) =
      let rec go i = function
        | [] -> i
        | c :: rest -> if e.Lin.invoke < c then i else go (i + 1) rest
      in
      go 0 cuts
    in
    let n_segments = List.length cuts + 1 in
    let segments = Array.make n_segments [] in
    List.iter
      (fun e -> segments.(segment_of e) <- e :: segments.(segment_of e))
      (List.rev entries);
    (* each [segments.(i)] is now in original (invocation) order *)
    let oversized = ref None in
    Array.iteri
      (fun i s ->
        if !oversized = None && List.length s > 62 then
          oversized := Some (i, List.length s))
      segments;
    match !oversized with
    | Some (i, len) ->
        Unchecked
          (Printf.sprintf "segment %d has %d ops (> 62, no quiescent cut)" i
             len)
    | None -> (
        match Lin.check_segmented ?initial ~budget:2_000_000 segments with
        | `Budget_exhausted ->
            Unchecked
              "checker budget exhausted (too much concurrent-mutator \
               ambiguity to decide)"
        | `Linearizable ->
            Linearizable
              (Array.fold_left
                 (fun k s -> if s = [] then k else k + 1)
                 0 segments)
        | `Not_linearizable ->
          (* Not linearizable.  For the report, re-run the greedy
             one-witness-per-segment scan: it follows a single path of the
             search the complete check just exhausted, so it must fail
             too, and it fails with a concrete segment and reason. *)
          let rec blame i state =
            if i >= n_segments then
              Violation
                { segment = 0; reason = "no linearization of any segment chain" }
            else
              match segments.(i) with
              | [] -> blame (i + 1) state
              | seg -> (
                  match Lin.check ~initial:state seg with
                  | Lin.Linearizable witness ->
                      let state' =
                        List.fold_left
                          (fun s (e : Lin.entry) -> fst (L.D.apply s e.Lin.op))
                          state witness
                      in
                      blame (i + 1) state'
                  | Lin.Not_linearizable reason ->
                      Violation { segment = i; reason })
          in
          blame 0 L.D.initial)

  (* ---- one worker's share of a round (runs in its own domain) ---- *)

  (* Six histograms per worker: three op classes × (clean, fault-window).
     An op lands in the fault-window half when its *invocation* fell inside
     any declared fault window — the chaos layer's latency split. *)
  let in_windows windows t =
    List.exists (fun (from_us, until_us) -> from_us <= t && t < until_us) windows

  let worker_body cluster rng ~n ~mix ~total ~quota ~wid ~windows ~mint
      ~rotate =
    let hists = Array.init 6 (fun _ -> Histogram.create ()) in
    for _ = 1 to quota do
      let op = draw rng mix total in
      let slot =
        match kind_of op with
        | Spec.Data_type.Pure_mutator -> 0
        | Spec.Data_type.Pure_accessor -> 1
        | Spec.Data_type.Other -> 2
      in
      let t0_rel = R.elapsed_us cluster in
      let t0 = Prelude.Mclock.now_us () in
      let trace =
        if Obs.Recorder.active () then Obs.Trace_id.fresh ~origin:wid else 0
      in
      (* In recovery mode each attempt carries the same op id, so a replay
         the replica already holds is answered idempotently; a replay it
         cannot answer yet asks us to back off (capped exponential, with
         seeded jitter) and retry. *)
      let op_id = mint () in
      (* Under a quorum fallback a rejected replay also rotates to the next
         replica: the one it was talking to may be permanently dead (or a
         stalled minority), and the op id makes the hand-off idempotent. *)
      let rec attempt backoff k =
        match R.invoke ~trace ~op_id cluster ~pid:((wid + k) mod n) op with
        | r -> r
        | exception R.Retry_later _ ->
            let pause = backoff + Prelude.Rng.int rng (backoff + 1) in
            Unix.sleepf (float_of_int pause /. 1e6);
            attempt (min (backoff * 2) 200_000) (if rotate then k + 1 else k)
      in
      ignore (attempt 1_000 0);
      let slot = if in_windows windows t0_rel then slot + 3 else slot in
      Histogram.add hists.(slot) (Prelude.Mclock.now_us () - t0)
    done;
    hists

  (* Replay the plan's crash/restart instants against a live cluster:
     freeze the replica at the crash time (so it stops applying — the
     in-process realisation of the process path's SIGKILL) and thaw it
     through peer catch-up at the restart time.  Pairs without a restart
     are skipped: an in-process replica that never recovers would wedge
     its workers forever. *)
  let crash_scheduler cluster ~permanent crashes =
    match
      List.concat_map
        (fun (pid, crash_at, restart_at) ->
          if restart_at = max_int then
            (* Permanent kills only make sense when the survivors can take
               over (quorum fallback armed): without one, a replica that
               never recovers would wedge its workers forever. *)
            if permanent then [ (crash_at, `Crash pid) ] else []
          else [ (crash_at, `Crash pid); (restart_at, `Recover pid) ])
        crashes
      |> List.sort compare
    with
    | [] -> None
    | events ->
        Some
          (Domain.spawn (fun () ->
               List.iter
                 (fun (at, action) ->
                   let rec wait () =
                     let now = R.elapsed_us cluster in
                     if now < at then begin
                       Unix.sleepf
                         (float_of_int (min 2_000 (at - now)) /. 1e6);
                       wait ()
                     end
                   in
                   wait ();
                   match action with
                   | `Crash pid -> R.crash cluster ~pid
                   | `Recover pid -> R.recover cluster ~pid)
                 events))

  let run ~n ~d ~u ?eps ?(x = 0) ?(slack = 5000) ?workers ?(round = 48)
      ?(mix = (50, 40, 10)) ?(loss = 0) ?skews ?wrap ?(fault_windows = [])
      ?(recovery = false) ?(crashes = []) ?fallback ?sync ~ops ~seed () =
    if round < 1 || round > 62 then
      invalid_arg "Loadgen.run: round must be in [1, 62]";
    let m, a, o = mix in
    let total = m + a + o in
    if m < 0 || a < 0 || o < 0 || total = 0 then
      invalid_arg "Loadgen.run: mix weights must be non-negative, not all 0";
    let eps = match eps with Some e -> e | None -> Core.Params.optimal_eps ~n ~u in
    let workers = match workers with Some w -> w | None -> n in
    (* The replicas assume d+slack / u+slack: the injected delays stay in
       [d − u, d], and the slack absorbs mailbox-poll and scheduling jitter
       (which the admissibility condition of the model does not know about).
       Note (d+slack) − (u+slack) = d − u: the self-delivery wait is
       unchanged; only the execute hold and the accessor wait stretch. *)
    let params = Core.Params.make ~n ~d:(d + slack) ~u:(u + slack) ~eps ~x () in
    let rng = Prelude.Rng.make seed in
    let rng_delay, rng = Prelude.Rng.split rng in
    let rng_offsets, rng_workers = Prelude.Rng.split rng in
    let offsets =
      Array.init n (fun i ->
          if i = 0 || eps = 0 then 0
          else Prelude.Rng.int_in rng_offsets ~lo:0 ~hi:eps)
    in
    (* [skews] are chaos-injected extra clock offsets, added on top of the
       seeded draw — how a plan pushes a replica's clock beyond the ε the
       cluster assumes.  The effective offsets are reported so the caller
       can judge the actual spread against ε. *)
    (match skews with
    | None -> ()
    | Some s ->
        if Array.length s <> n then
          invalid_arg "Loadgen.run: skews length must be n";
        Array.iteri (fun i k -> offsets.(i) <- offsets.(i) + k) s);
    let policy =
      let base = Sim.Delay.random rng_delay ~d ~u in
      if loss > 0 then Sim.Delay.lossy base ~rng:rng_delay ~percent:loss
      else base
    in
    let recovery_cfg =
      if not recovery then None
      else
        Some
          {
            R.catchup_wait_us =
              params.Core.Params.d + params.Core.Params.eps;
            on_apply = (fun _ _ _ -> ());
            recovered = None;
          }
    in
    (* The fallback's mode hook also feeds the availability log: every
       replica-local transition is timestamped on the run timeline (the
       cluster ref is filled right after [start]; transitions only fire
       once the event loops run, well after). *)
    let switches = ref [] in
    let switches_lock = Mutex.create () in
    let cluster_ref = ref None in
    let fallback =
      Option.map
        (fun (cfg : Quorum.Config.t) ->
          let outer = cfg.Quorum.Config.on_mode in
          {
            cfg with
            Quorum.Config.on_mode =
              (fun ~quorum ~epoch ~seq ->
                let at =
                  match !cluster_ref with
                  | Some c -> R.elapsed_us c
                  | None -> 0
                in
                Mutex.lock switches_lock;
                switches := (at, quorum, epoch) :: !switches;
                Mutex.unlock switches_lock;
                outer ~quorum ~epoch ~seq);
          })
        fallback
    in
    let cluster =
      R.start ~params ~policy ~offsets ?wrap ?recovery:recovery_cfg ?fallback
        ?sync ()
    in
    cluster_ref := Some cluster;
    let scheduler =
      crash_scheduler cluster ~permanent:(fallback <> None) crashes
    in
    let op_ids = Atomic.make 1 in
    let mint () =
      if recovery || fallback <> None then Atomic.fetch_and_add op_ids 1 else 0
    in
    let t0 = Prelude.Mclock.now_us () in
    let merged = Array.init 6 (fun _ -> Histogram.create ()) in
    let cuts = ref [] in
    let rng_workers = ref rng_workers in
    let remaining = ref ops in
    while !remaining > 0 do
      let quota = min round !remaining in
      remaining := !remaining - quota;
      let spawned =
        List.init workers (fun wid ->
            let mine, rest = Prelude.Rng.split !rng_workers in
            rng_workers := rest;
            (* spread the round's quota over the workers *)
            let share =
              (quota / workers) + (if wid < quota mod workers then 1 else 0)
            in
            Domain.spawn (fun () ->
                worker_body cluster mine ~n ~mix ~total ~quota:share ~wid
                  ~windows:fault_windows ~mint ~rotate:(fallback <> None)))
      in
      List.iter
        (fun dom ->
          let hists = Domain.join dom in
          Array.iteri (fun i h -> Histogram.merge_into ~into:merged.(i) h) hists)
        spawned;
      (* All of this round's operations have responded: a quiescent cut,
         recorded on the history timeline (µs since cluster start). *)
      cuts := R.elapsed_us cluster :: !cuts
    done;
    let wall_us = Prelude.Mclock.now_us () - t0 in
    Option.iter Domain.join scheduler;
    R.stop cluster;
    let entries =
      List.map
        (fun (r : R.record) ->
          {
            Lin.pid = r.R.pid;
            op = r.R.op;
            result = r.R.result;
            invoke = r.R.invoke_us;
            response = r.R.response_us;
          })
        (R.history cluster)
    in
    let cuts = List.rev !cuts in
    let verdict =
      if List.length entries <> ops then
        Unchecked
          (Printf.sprintf "expected %d completed ops, recorded %d" ops
             (List.length entries))
      else check_history entries (List.sort compare cuts)
    in
    let classes =
      classes_of ~params ~windowed:(fault_windows <> []) merged
    in
    {
      label = L.label;
      params;
      net_d = d;
      net_u = u;
      slack;
      mix;
      workers;
      seed;
      loss;
      ops;
      wall_us;
      throughput =
        (if wall_us = 0 then 0.
         else float_of_int ops /. (float_of_int wall_us /. 1e6));
      classes;
      net = R.transport_stats cluster;
      offsets;
      cuts = List.sort compare cuts;
      mode_switches = List.sort compare (List.rev !switches);
      verdict;
    }
end
