(** See the interface for the model mapping.  One domain per replica; all
    inter-domain communication goes through the transport's mailboxes and
    the per-invocation result cells — replica state itself is only ever
    touched by its own domain. *)

module Make (D : Spec.Data_type.S) = struct
  module Alg = Core.Algorithm1.Make (D)

  exception Stopped

  type record = {
    pid : int;
    seq : int;
    op : D.op;
    result : D.result;
    invoke_us : int;
    response_us : int;
  }

  (* A one-shot synchronisation cell the invoking client blocks on. *)
  type cell_state = Pending | Done of D.result | Cancelled

  type cell = {
    mutex : Mutex.t;
    cond : Condition.t;
    mutable value : cell_state;
  }

  type event = Net of Alg.entry * int | Invoke of D.op * int * cell | Stop

  let net ?(trace = 0) e = Net (e, trace)
  let net_entry = function
    | Net (e, trace) -> Some (e, trace)
    | Invoke _ | Stop -> None

  let class_of op = Obs.Event.class_code (D.classify op)

  let fill cell v =
    Mutex.lock cell.mutex;
    cell.value <- v;
    Condition.signal cell.cond;
    Mutex.unlock cell.mutex

  (* ---- the per-replica event loop (runs inside the replica's domain) ---- *)

  type timer_entry = { due : int; tseq : int; timer : Alg.timer; ttrace : int }

  type loop_state = {
    pid : int;
    mutable st : Alg.state;
    mutable timers : timer_entry list;  (** sorted by [(due, tseq)] *)
    mutable tseq : int;
    mutable inflight : (cell * D.op * int * int * int) option;
        (** cell, op, invoke_us, seq, trace *)
    backlog : (D.op * int * cell) Queue.t;  (** op, trace, cell *)
    mutable next_seq : int;
    mutable records : record list;  (** reversed *)
  }

  let rec insert_timer e = function
    | [] -> [ e ]
    | hd :: tl ->
        if e.due < hd.due || (e.due = hd.due && e.tseq < hd.tseq) then
          e :: hd :: tl
        else hd :: insert_timer e tl

  let run_replica ~(params : Core.Params.t)
      ~(transport : event Transport_intf.t) ~start_us ~offset pid =
    let cfg = params in
    let now_rel () = Prelude.Mclock.now_us () - start_us in
    let clock () = now_rel () + offset in
    let ls =
      {
        pid;
        st = Alg.init cfg ~n:cfg.n ~pid;
        timers = [];
        tseq = 0;
        inflight = None;
        backlog = Queue.create ();
        next_seq = 0;
        records = [];
      }
    in
    let respond r =
      match ls.inflight with
      | None -> ()  (* cannot happen: Algorithm 1 responds only when pending *)
      | Some (cell, op, invoke_us, seq, trace) ->
          let response_us = now_rel () in
          ls.records <-
            { pid; seq; op; result = r; invoke_us; response_us }
            :: ls.records;
          ls.inflight <- None;
          Obs.Recorder.emit ~pid ~kind:Obs.Event.Respond ~trace
            ~a:(class_of op) ~b:(response_us - invoke_us) ();
          fill cell (Done r)
    in
    let rec handle_actions ~trace actions =
      List.iter
        (fun (a : (D.result, Alg.entry, Alg.timer) Sim.Action.t) ->
          match a with
          | Sim.Action.Respond r ->
              respond r;
              (* The model allows one pending operation per process;
                 queued client calls start once the previous responds. *)
              if ls.inflight = None && not (Queue.is_empty ls.backlog) then begin
                let op, qtrace, cell = Queue.pop ls.backlog in
                start_invoke op qtrace cell
              end
          | Sim.Action.Send (dst, m) ->
              Transport_intf.send transport ~trace ~src:pid ~dst (Net (m, trace))
          | Sim.Action.Broadcast m ->
              Obs.Recorder.emit ~pid ~kind:Obs.Event.Broadcast ~trace
                ~a:(cfg.Core.Params.n - 1) ();
              Transport_intf.broadcast transport ~trace ~src:pid (Net (m, trace))
          | Sim.Action.Set_timer (delay, t) ->
              (* Timer delays are clock-time delays; clocks advance at the
                 rate of real time, so a [δ]-delay timer is due at
                 [now + δ] on the real timeline. *)
              Obs.Recorder.emit ~pid ~kind:Obs.Event.Hold_set ~trace ~a:delay ();
              let e =
                { due = Prelude.Mclock.now_us () + delay; tseq = ls.tseq;
                  timer = t; ttrace = trace }
              in
              ls.tseq <- ls.tseq + 1;
              ls.timers <- insert_timer e ls.timers
          | Sim.Action.Cancel_timer t ->
              ls.timers <-
                List.filter (fun e -> not (Alg.equal_timer e.timer t)) ls.timers)
        actions
    and start_invoke op trace cell =
      let invoke_us = now_rel () in
      let seq = ls.next_seq in
      ls.next_seq <- ls.next_seq + 1;
      ls.inflight <- Some (cell, op, invoke_us, seq, trace);
      Obs.Recorder.emit ~pid ~kind:Obs.Event.Invoke ~trace ~a:(class_of op) ();
      let st', actions = Alg.on_invoke cfg ls.st ~clock:(clock ()) op in
      ls.st <- st';
      handle_actions ~trace actions
    in
    let drain_on_stop () =
      (* Wake every client still waiting: their operations will never
         respond (the replica is gone), and a blocked client handler would
         otherwise hang teardown. *)
      (match ls.inflight with
      | None -> ()
      | Some (cell, _, _, _, _) -> fill cell Cancelled);
      ls.inflight <- None;
      Queue.iter (fun (_, _, cell) -> fill cell Cancelled) ls.backlog;
      Queue.clear ls.backlog;
      List.rev ls.records
    in
    let rec loop () =
      let deadline = match ls.timers with [] -> None | e :: _ -> Some e.due in
      match Transport_intf.recv transport ~me:pid ~deadline with
      | Some (src, Net (m, trace)) ->
          if Obs.Recorder.active () then
            Obs.Recorder.emit ~pid ~kind:Obs.Event.Deliver ~trace ~a:src
              ~b:(Transport_intf.depth transport ~me:pid) ();
          let st', actions = Alg.on_message cfg ls.st ~clock:(clock ()) ~src m in
          ls.st <- st';
          (* [Apply] marks the entry's hand-off to the protocol state
             machine; Algorithm 1 may defer its execution to ts order. *)
          Obs.Recorder.emit ~pid ~kind:Obs.Event.Apply ~trace ~a:src ();
          handle_actions ~trace actions;
          loop ()
      | Some (_, Invoke (op, trace, cell)) ->
          if ls.inflight = None then start_invoke op trace cell
          else Queue.push (op, trace, cell) ls.backlog;
          loop ()
      | Some (_, Stop) -> drain_on_stop ()
      | None -> (
          (* The earliest timer is due, and (per [Mailbox.take]) no ripe
             message predates it: fire exactly one and re-merge. *)
          match ls.timers with
          | [] -> loop ()
          | e :: rest ->
              ls.timers <- rest;
              let st', actions = Alg.on_timer cfg ls.st ~clock:(clock ()) e.timer in
              ls.st <- st';
              handle_actions ~trace:e.ttrace actions;
              loop ())
    in
    loop ()

  (* ---- single node: one replica on one domain, any transport ---- *)

  type node = {
    node_pid : int;
    node_transport : event Transport_intf.t;
    node_start_us : int;
    node_domain : record list Domain.t;
    mutable node_stopped : bool;
  }

  let node ~params ~transport ~pid ?(offset = 0) ?start_us () =
    let start_us =
      match start_us with Some s -> s | None -> Prelude.Mclock.now_us ()
    in
    {
      node_pid = pid;
      node_transport = transport;
      node_start_us = start_us;
      node_domain =
        Domain.spawn (fun () ->
            run_replica ~params ~transport ~start_us ~offset pid);
      node_stopped = false;
    }

  let invoke_on ?(trace = 0) transport ~pid op =
    let cell =
      { mutex = Mutex.create (); cond = Condition.create (); value = Pending }
    in
    Transport_intf.post transport ~src:pid ~dst:pid (Invoke (op, trace, cell));
    Mutex.lock cell.mutex;
    while cell.value = Pending do
      Condition.wait cell.cond cell.mutex
    done;
    let v = cell.value in
    Mutex.unlock cell.mutex;
    match v with
    | Done r -> r
    | Cancelled -> raise Stopped
    | Pending -> assert false

  let node_invoke ?trace node op =
    invoke_on ?trace node.node_transport ~pid:node.node_pid op

  let node_stop node =
    if node.node_stopped then []
    else begin
      node.node_stopped <- true;
      Transport_intf.post node.node_transport ~src:node.node_pid
        ~dst:node.node_pid Stop;
      Domain.join node.node_domain
    end

  let node_elapsed_us node = Prelude.Mclock.now_us () - node.node_start_us

  (* ---- in-process cluster: n nodes sharing one bus transport ---- *)

  type cluster = {
    params : Core.Params.t;
    transport : event Transport_intf.t;
    start_us : int;
    nodes : node array;
    mutable stopped : bool;
    mutable records : record list;
  }

  let start ~params ?policy ?offsets ?wrap () =
    let n = params.Core.Params.n in
    let offsets =
      match offsets with Some o -> Array.copy o | None -> Array.make n 0
    in
    if Array.length offsets <> n then
      invalid_arg "Replica.start: offsets length must be n";
    let start_us = Prelude.Mclock.now_us () in
    let transport =
      let bus = Transport.bus ~n () in
      let base =
        Transport.intf
          (match policy with
          | None -> bus
          | Some policy -> Transport.with_delays ~policy bus)
      in
      match wrap with
      | None -> base
      | Some (w : Transport_intf.wrapper) -> w.Transport_intf.wrap ~start_us base
    in
    {
      params;
      transport;
      start_us;
      nodes =
        Array.init n (fun pid ->
            node ~params ~transport ~pid ~offset:offsets.(pid) ~start_us ());
      stopped = false;
      records = [];
    }

  let invoke ?trace cluster ~pid op = node_invoke ?trace cluster.nodes.(pid) op

  module Client = struct
    let invoke = invoke
  end

  let stop cluster =
    if not cluster.stopped then begin
      cluster.stopped <- true;
      let records =
        Array.to_list cluster.nodes |> List.concat_map node_stop
      in
      cluster.records <-
        List.sort
          (fun (a : record) b ->
            match compare a.invoke_us b.invoke_us with
            | 0 -> compare (a.pid, a.seq) (b.pid, b.seq)
            | c -> c)
          records
    end

  let history cluster =
    if not cluster.stopped then
      invalid_arg "Replica.history: stop the cluster first";
    cluster.records

  let elapsed_us cluster = Prelude.Mclock.now_us () - cluster.start_us
  let transport_stats cluster = Transport_intf.stats cluster.transport
end
