(** See the interface for the model mapping.  One domain per replica; all
    inter-domain communication goes through the transport's mailboxes and
    the per-invocation result cells — replica state itself is only ever
    touched by its own domain.

    Recovery additions (PR 5): a replica can be {e frozen} — either [Down]
    (an injected crash: it processes nothing, realising the fault the
    process path realises with SIGKILL) or [Catching_up] (just restarted:
    it broadcasts a catch-up request carrying its high-water mark, absorbs
    replies, and thaws when every peer answered or a timeout fires).
    While frozen, [Execute]/[Respond_*] timers are deferred (nothing
    applies, so the high-water mark stays contiguous) and client invokes
    are backlogged.  Operation ids ride on every broadcast entry, so a
    replica can recognise a client's replay of an operation it already
    holds and answer idempotently. *)

module Make (D : Spec.Data_type.S) = struct
  module Alg = Core.Algorithm1.Make (D)

  exception Stopped
  exception Retry_later of string

  type record = {
    pid : int;
    seq : int;
    op : D.op;
    result : D.result;
    invoke_us : int;
    response_us : int;
  }

  (* A one-shot synchronisation cell the invoking client blocks on. *)
  type cell_state = Pending | Done of D.result | Cancelled | Rejected of string

  type cell = {
    mutex : Mutex.t;
    cond : Condition.t;
    mutable value : cell_state;
  }

  type snapshot_view = {
    v_obj : D.state;
    v_hwm_time : int;
    v_hwm_pid : int;
    v_applied : (Alg.entry * D.result * int) list;  (** oldest first *)
  }

  type recovered_state = {
    r_obj : D.state;
    r_applied : (Alg.entry * D.result * int) list;  (** oldest first *)
  }

  type recovery = {
    catchup_wait_us : int;
    on_apply : Alg.entry -> D.result -> int -> unit;
    recovered : recovered_state option;
  }

  (* ---- quorum fallback wire protocol (DESIGN.md §13) ---- *)

  (* One operation as the quorum era carries it: the sequencer fills
     [q_time] (the assigned stamp time; the stamp pid is [q_origin]), the
     rest identifies the op and its invoking replica. *)
  type qpayload = {
    q_time : int;
    q_op : D.op;
    q_origin : int;
    q_qid : int;  (** origin-local forward id, stable across retries *)
    q_op_id : int;
    q_trace : int;
  }

  type qwire =
    | Hb of { stamp : int; epoch : int; qmode : bool; seq : int; floor : int }
        (** heartbeat doubling as the mode announcement: sender clock
            stamp plus the sender's (epoch, mode, sequencer, floor) *)
    | Forward of { qid : int; origin : int; op : D.op; op_id : int; trace : int }
        (** origin → sequencer: please order this op *)
    | Propose of { epoch : int; qseq : int; p : qpayload }
        (** sequencer → all: slot [qseq] of the era holds [p] *)
    | Qack of { epoch : int; qseq : int }  (** follower → sequencer *)
    | Qcommit of { epoch : int; qseq : int }
        (** sequencer → all: a majority stored [qseq]; apply in order *)
    | Fnack of { qid : int }
        (** not the sequencer (or not in quorum mode): re-route *)
    | Qfill of { epoch : int; from_seq : int }
        (** follower → sequencer: re-send payloads from [from_seq] up *)

  (* ---- clock-synchronization wire protocol (DESIGN.md §14) ---- *)

  type swire =
    | Sping of { seq : int; t0 : int }
        (** prober → all: [t0] = the prober's corrected clock at send *)
    | Spong of { seq : int; t0 : int; t_rx : int; t_tx : int }
        (** echo: [seq]/[t0] copied back, [t_rx]/[t_tx] = the responder's
            corrected clock at receipt and reply *)

  type event =
    | Net of Alg.entry * int * int  (** entry, trace, op id (0 = none) *)
    | Catchup_req of { time : int; cpid : int }  (** asker's high-water mark *)
    | Catchup_rep of {
        entries : (Alg.entry * int) list;
        time : int;
        cpid : int;  (** replier's high-water mark *)
      }
    | Quorum_msg of qwire
    | Sync_msg of swire
    | Invoke of D.op * int * int * int * cell
        (** op, trace, op id, deadline (absolute µs, 0 = none), cell *)
    | Crash_now
    | Recover_now
    | Snap_req of (snapshot_view -> unit)
    | Stop

  type wire =
    | Wire_entry of Alg.entry * int * int
    | Wire_catchup_req of { time : int; cpid : int }
    | Wire_catchup_rep of { entries : (Alg.entry * int) list; time : int; cpid : int }
    | Wire_quorum of qwire
    | Wire_sync of swire

  let wire_view = function
    | Net (e, trace, op_id) -> Some (Wire_entry (e, trace, op_id))
    | Catchup_req { time; cpid } -> Some (Wire_catchup_req { time; cpid })
    | Catchup_rep { entries; time; cpid } ->
        Some (Wire_catchup_rep { entries; time; cpid })
    | Quorum_msg q -> Some (Wire_quorum q)
    | Sync_msg s -> Some (Wire_sync s)
    | Invoke _ | Crash_now | Recover_now | Snap_req _ | Stop -> None

  let of_wire = function
    | Wire_entry (e, trace, op_id) -> Net (e, trace, op_id)
    | Wire_catchup_req { time; cpid } -> Catchup_req { time; cpid }
    | Wire_catchup_rep { entries; time; cpid } ->
        Catchup_rep { entries; time; cpid }
    | Wire_quorum q -> Quorum_msg q
    | Wire_sync s -> Sync_msg s

  let net ?(trace = 0) e = Net (e, trace, 0)

  let net_entry = function
    | Net (e, trace, _) -> Some (e, trace)
    | Catchup_req _ | Catchup_rep _ | Quorum_msg _ | Sync_msg _ | Invoke _
    | Crash_now | Recover_now | Snap_req _ | Stop ->
        None

  let class_of op = Obs.Event.class_code (D.classify op)

  let fill cell v =
    Mutex.lock cell.mutex;
    cell.value <- v;
    Condition.signal cell.cond;
    Mutex.unlock cell.mutex

  (* ---- the per-replica event loop (runs inside the replica's domain) ---- *)

  (* [Catchup_retry_t] re-asks the peers that still owe a catch-up reply:
     over TCP the first write onto a connection whose remote died is
     accepted by the kernel and lost (the error only surfaces on the next
     write), so a one-shot request/reply exchange straddling a crash can
     vanish silently — retrying until every peer answers (or the unfreeze
     timeout lapses) makes anti-entropy immune to it. *)
  type rtimer =
    | A of Alg.timer
    | Unfreeze_t
    | Catchup_retry_t
    | Heartbeat_t  (** fallback: send a heartbeat, tick the detector *)
    | Qdrain_t  (** fallback: the sequencer's switch barrier elapsed *)
    | Qtick_t  (** fallback: re-send forwards, request Qfills *)
    | Sync_t  (** sync: apply the round's correction, broadcast pings *)

  type timer_entry = { due : int; tseq : int; timer : rtimer; ttrace : int }

  type mode = Up | Down | Catching_up

  type id_state =
    | Queued
    | Applied_id of D.result * int
        (** recorded result and the µs-since-start instant it applied, so a
            replay served from the table can log a history interval that
            still brackets the original linearization point *)

  (* The origin-side record of an operation routed through the quorum
     path: enough to re-send the forward (same [f_qid], so the sequencer
     recognises retries) or re-dispatch it down the fast path. *)
  type fwd = {
    f_qid : int;
    f_op : D.op;
    f_op_id : int;
    f_trace : int;
    mutable f_sent_us : int;
    mutable f_proposed : bool;  (** a Propose for it was seen *)
    mutable f_nacks : int;
  }

  type fallback_state = {
    qcfg : Quorum.Config.t;
    fd : Quorum.Failure_detector.t;
    mc : Quorum.Mode_controller.t;
    qlog : qpayload Quorum.Log.t;
    fwd_seen : (int * int, int) Hashtbl.t;  (** (origin, qid) → qseq *)
    mutable draining_until : int option;
        (** sequencer only: switch barrier deadline (absolute µs) *)
    mutable next_time : int;  (** sequencer: next stamp time to assign *)
    mutable last_q_applied : int;  (** max quorum-applied stamp time *)
    mutable pending_fwd : fwd option;
    mutable buffered : qpayload list;
        (** forwards held during the drain, reversed *)
    mutable gated : (D.result * Prelude.Stamp.t) option;
        (** a fast-path response the release gate is withholding *)
    mutable next_qid : int;
    mutable must_reconcile : bool;
        (** this replica skipped at least one whole era (its announcements
            never reached us), so the next switch back to the fast path
            must resynchronise through catch-up even if the current era's
            log looks drained *)
  }

  type loop_state = {
    pid : int;
    mutable st : Alg.state;
    mutable timers : timer_entry list;  (** sorted by [(due, tseq)] *)
    mutable tseq : int;
    mutable inflight : (cell * D.op * int * int * int) option;
        (** cell, op, invoke_us, seq, trace *)
    mutable inflight_ts : Prelude.Stamp.t;
        (** stamp of the in-flight fast-path op (what the gate keys on) *)
    backlog : (D.op * int * int * int * cell) Queue.t;
        (** op, trace, op id, deadline, cell *)
    mutable next_seq : int;
    mutable records : record list;  (** reversed *)
    (* -- recovery machinery (only exercised when [rec_mode] is [Some]) -- *)
    rec_mode : recovery option;
    mutable mode : mode;
    mutable deferred : timer_entry list;  (** newest first; replayed on thaw *)
    mutable awaiting : int list;  (** peers owing a catch-up reply *)
    mutable reply_hwms : (int * Prelude.Stamp.t) list;
        (** replier high-water marks, pushed back to at thaw *)
    seen : (Prelude.Stamp.t, unit) Hashtbl.t;
    stamp_ids : (Prelude.Stamp.t, int) Hashtbl.t;
    id_index : (int, id_state) Hashtbl.t;
    mutable hwm : Prelude.Stamp.t;  (** max applied stamp; time −1 = none *)
    mutable last_applied : (Alg.entry * D.result) list;
        (** physical-equality cursor into [st.applied] *)
  }

  let rec insert_timer e = function
    | [] -> [ e ]
    | hd :: tl ->
        if e.due < hd.due || (e.due = hd.due && e.tseq < hd.tseq) then
          e :: hd :: tl
        else hd :: insert_timer e tl

  let no_hwm = Prelude.Stamp.make ~time:(-1) ~pid:0

  (* Live clock synchronization (armed by [?sync]): the slewed corrected
     clock every timestamp is drawn from, plus the per-peer estimator the
     probe rounds feed. *)
  type sync_state = {
    scfg : Sync.Config.t;
    sclock : Sync.Clock.t;
    sest : Sync.Estimator.t;
    mutable sseq : int;  (** probe sequence number *)
  }

  let run_replica ~(params : Core.Params.t) ?recovery ?fallback ?sync
      ~(transport : event Transport_intf.t) ~start_us ~offset pid =
    let cfg = params in
    let now_rel () = Prelude.Mclock.now_us () - start_us in
    let raw_clock () = now_rel () + offset in
    let sy =
      Option.map
        (fun (scfg : Sync.Config.t) ->
          {
            scfg;
            sclock = Sync.Clock.create ();
            sest = Sync.Estimator.create ~n:cfg.Core.Params.n ~me:pid ();
            sseq = 0;
          })
        sync
    in
    (* With sync on, every timestamp the replica draws — invocation stamps,
       heartbeat stamps, probe timestamps — comes from the slewed corrected
       clock, which is monotone across corrections by construction. *)
    let clock () =
      match sy with
      | None -> raw_clock ()
      | Some s -> Sync.Clock.read s.sclock ~now:(raw_clock ())
    in
    let ls =
      {
        pid;
        st = Alg.init cfg ~n:cfg.n ~pid;
        timers = [];
        tseq = 0;
        inflight = None;
        inflight_ts = Prelude.Stamp.make ~time:(-1) ~pid:0;
        backlog = Queue.create ();
        next_seq = 0;
        records = [];
        rec_mode = recovery;
        mode = Up;
        deferred = [];
        awaiting = [];
        reply_hwms = [];
        seen = Hashtbl.create 256;
        stamp_ids = Hashtbl.create 256;
        id_index = Hashtbl.create 256;
        hwm = no_hwm;
        last_applied = [];
      }
    in
    (* Seed the protocol state from the durable prefix, if any: the object,
       its applied history (so catch-up can serve it), the stamp/id tables
       (so replayed broadcasts and retried clients are recognised) and the
       high-water mark. *)
    (match recovery with
    | Some { recovered = Some rs; _ } ->
        ls.st <-
          {
            ls.st with
            Alg.local_obj = rs.r_obj;
            applied = List.rev_map (fun (e, r, _) -> (e, r)) rs.r_applied;
          };
        List.iter
          (fun ((e : Alg.entry), r, op_id) ->
            Hashtbl.replace ls.seen e.ts ();
            if op_id <> 0 then begin
              Hashtbl.replace ls.stamp_ids e.ts op_id;
              Hashtbl.replace ls.id_index op_id (Applied_id (r, 0))
            end;
            if Prelude.Stamp.( < ) ls.hwm e.ts then ls.hwm <- e.ts)
          rs.r_applied
    | _ -> ());
    ls.last_applied <- ls.st.Alg.applied;
    let fb =
      Option.map
        (fun (qcfg : Quorum.Config.t) ->
          {
            qcfg;
            fd =
              Quorum.Failure_detector.make ~n:cfg.Core.Params.n ~me:pid
                ~hb_us:qcfg.hb_us ~suspect_after:qcfg.suspect_after
                ~now_us:(Prelude.Mclock.now_us ());
            mc = Quorum.Mode_controller.make ~n:cfg.Core.Params.n ~me:pid;
            qlog = Quorum.Log.create ~n:cfg.Core.Params.n ~epoch:0;
            fwd_seen = Hashtbl.create 64;
            draining_until = None;
            next_time = 0;
            last_q_applied = min_int;
            pending_fwd = None;
            buffered = [];
            gated = None;
            next_qid = 1;
            must_reconcile = false;
          })
        fallback
    in
    (* The fallback leans on the same dedup tables recovery uses: op ids
       are how a re-routed (or re-proposed) operation is recognised. *)
    let dedup = Option.is_some recovery || Option.is_some fb in
    (* Clocks feeding invocation stamps clear the last quorum era's stamp
       floor: a fast-path op stamped below a quorum-ordered one would sort
       into already-executed history. *)
    let eff_clock () =
      let c = clock () in
      match fb with
      | Some f ->
          let fl = Quorum.Mode_controller.floor f.mc in
          if fl = min_int then c
          else Stdlib.max c (fl + cfg.Core.Params.timing.accessor_ts_back + 1)
      | None -> c
    in
    let register ts op_id =
      if op_id <> 0 then begin
        Hashtbl.replace ls.stamp_ids ts op_id;
        if not (Hashtbl.mem ls.id_index op_id) then
          Hashtbl.replace ls.id_index op_id Queued
      end
    in
    (* Every mutation the algorithm applied since the last call, oldest
       first: mark it seen, resolve its op id, advance the high-water mark
       and hand it to the durability hook — before any action (a response
       in particular) from the same protocol step is released. *)
    let drain_applied () =
      if dedup && not (ls.st.Alg.applied == ls.last_applied) then begin
        let rec fresh acc = function
          | l when l == ls.last_applied -> acc
          | [] -> acc
          | (e, r) :: tl -> fresh ((e, r) :: acc) tl
        in
        List.iter
          (fun ((e : Alg.entry), r) ->
            Hashtbl.replace ls.seen e.ts ();
            let op_id =
              Option.value ~default:0 (Hashtbl.find_opt ls.stamp_ids e.ts)
            in
            if op_id <> 0 then
              Hashtbl.replace ls.id_index op_id (Applied_id (r, now_rel ()));
            if Prelude.Stamp.( < ) ls.hwm e.ts then ls.hwm <- e.ts;
            match ls.rec_mode with
            | Some rc -> rc.on_apply e r op_id
            | None -> ())
          (fresh [] ls.st.Alg.applied);
        ls.last_applied <- ls.st.Alg.applied
      end
    in
    (* Applied and still-queued entries with a stamp above [after], in
       stamp order, each with its op id — what catch-up serves. *)
    let entries_after after =
      let keep (e : Alg.entry) = Prelude.Stamp.( < ) after e.ts in
      let applied =
        List.filter_map
          (fun ((e : Alg.entry), _) -> if keep e then Some e else None)
          ls.st.Alg.applied
      in
      let queued =
        List.filter keep (Alg.Queue.to_sorted_list ls.st.Alg.to_execute)
      in
      List.sort
        (fun (a : Alg.entry) b -> Prelude.Stamp.compare a.ts b.ts)
        (List.rev_append applied queued)
      |> List.map (fun (e : Alg.entry) ->
             (e, Option.value ~default:0 (Hashtbl.find_opt ls.stamp_ids e.ts)))
    in
    let push_back peer after =
      let missing = entries_after after in
      if missing <> [] then begin
        Obs.Recorder.emit ~pid ~kind:Obs.Event.Catchup
          ~a:(List.length missing) ~b:peer ();
        List.iter
          (fun ((e : Alg.entry), op_id) ->
            Transport_intf.send transport ~trace:0 ~src:pid ~dst:peer
              (Net (e, 0, op_id)))
          missing
      end
    in
    let respond r =
      match ls.inflight with
      | None -> ()  (* cannot happen: Algorithm 1 responds only when pending *)
      | Some (cell, op, invoke_us, seq, trace) ->
          let response_us = now_rel () in
          ls.records <-
            { pid; seq; op; result = r; invoke_us; response_us }
            :: ls.records;
          ls.inflight <- None;
          Obs.Recorder.emit ~pid ~kind:Obs.Event.Respond ~trace
            ~a:(class_of op) ~b:(response_us - invoke_us) ();
          fill cell (Done r)
    in
    (* A client replaying an operation id this replica already knows must
       not be executed twice.  Applied → answer from the recorded result;
       still queued → a pure mutator's reply is state-independent (answer
       now), anything else must wait for the first attempt (tell the
       client to retry).  Accessors have no effect and are never deduped. *)
    (* Each [Done] comes with the invoke instant a history record for the
       replayed completion should carry: the apply time for an applied op
       (its linearization point lies between then and now), now for a
       queued pure mutator (stamp order places it before anything invoked
       later). *)
    let dedup_check op op_id =
      if (not dedup) || op_id = 0 then None
      else
        match D.classify op with
        | Spec.Data_type.Pure_accessor -> None
        | cls -> (
            match Hashtbl.find_opt ls.id_index op_id with
            | Some (Applied_id (r, at)) -> Some (Done r, at)
            | Some Queued -> (
                match cls with
                | Spec.Data_type.Pure_mutator ->
                    let _, r = D.apply ls.st.Alg.local_obj op in
                    Some (Done r, now_rel ())
                | _ -> Some (Rejected "in flight; retry", 0))
            | None -> None)
    in
    let arm_timer timer delay_us =
      let e =
        { due = Prelude.Mclock.now_us () + delay_us; tseq = ls.tseq; timer;
          ttrace = 0 }
      in
      ls.tseq <- ls.tseq + 1;
      ls.timers <- insert_timer e ls.timers
    in
    (* The fast path's response release gate (armed only under fallback,
       in fast mode): a response stamped [ts] may be released once every
       peer's heartbeat clock has passed [ts + d + ε].  A peer whose
       heartbeat carries that stamp either received our broadcast (its
       clock reached ts+d+ε at least d after our send, links FIFO) or sits
       behind a partition that would also have eaten the heartbeat — so a
       released response is never lost to a peer we later abandon.  A dead
       or partitioned peer stalls the gate until the failure detector
       excuses it by switching the object into quorum mode. *)
    let gate_passes f (ts : Prelude.Stamp.t) =
      Quorum.Failure_detector.min_heard_stamp f.fd
      >= ts.Prelude.Stamp.time + cfg.Core.Params.d + cfg.Core.Params.eps
    in
    let in_quorum f =
      Quorum.Mode_controller.mode f.mc = Quorum.Mode_controller.Quorum
    in
    let rec handle_actions ~trace actions =
      List.iter
        (fun (a : (D.result, Alg.entry, Alg.timer) Sim.Action.t) ->
          match a with
          | Sim.Action.Respond r -> (
              match fb with
              | Some f
                when ls.inflight <> None
                     && (not (in_quorum f))
                     && (not (Quorum.Mode_controller.stalled f.mc))
                     && not (gate_passes f ls.inflight_ts) ->
                  (* Withhold until the gate passes (or a mode switch
                     supersedes it); the single-inflight invariant means at
                     most one response is ever held. *)
                  f.gated <- Some (r, ls.inflight_ts)
              | _ ->
                  respond r;
                  (* The model allows one pending operation per process;
                     queued client calls start once the previous responds. *)
                  next_from_backlog ())
          | Sim.Action.Send (dst, m) ->
              let op_id =
                Option.value ~default:0
                  (Hashtbl.find_opt ls.stamp_ids m.Alg.ts)
              in
              Transport_intf.send transport ~trace ~src:pid ~dst
                (Net (m, trace, op_id))
          | Sim.Action.Broadcast m ->
              Obs.Recorder.emit ~pid ~kind:Obs.Event.Broadcast ~trace
                ~a:(cfg.Core.Params.n - 1) ();
              let op_id =
                Option.value ~default:0
                  (Hashtbl.find_opt ls.stamp_ids m.Alg.ts)
              in
              Transport_intf.broadcast transport ~trace ~src:pid
                (Net (m, trace, op_id))
          | Sim.Action.Set_timer (delay, t) ->
              (* Timer delays are clock-time delays; clocks advance at the
                 rate of real time, so a [δ]-delay timer is due at
                 [now + δ] on the real timeline. *)
              Obs.Recorder.emit ~pid ~kind:Obs.Event.Hold_set ~trace ~a:delay ();
              let e =
                { due = Prelude.Mclock.now_us () + delay; tseq = ls.tseq;
                  timer = A t; ttrace = trace }
              in
              ls.tseq <- ls.tseq + 1;
              ls.timers <- insert_timer e ls.timers
          | Sim.Action.Cancel_timer t ->
              ls.timers <-
                List.filter
                  (fun e ->
                    match e.timer with
                    | A t' -> not (Alg.equal_timer t' t)
                    | Unfreeze_t | Catchup_retry_t | Heartbeat_t | Qdrain_t
                    | Qtick_t | Sync_t ->
                        true)
                  ls.timers)
        actions
    and try_release_gate ~force f =
      match f.gated with
      | Some (r, ts) when ls.inflight <> None && (force || gate_passes f ts) ->
          f.gated <- None;
          respond r;
          next_from_backlog ()
      | _ -> ()
    and dispatch_alg_invoke op trace op_id =
      let st', actions = Alg.on_invoke cfg ls.st ~clock:(eff_clock ()) op in
      ls.st <- st';
      (match ls.st.Alg.pending with
      | Alg.Waiting_mop e | Alg.Waiting_oop e | Alg.Waiting_aop e ->
          ls.inflight_ts <- e.ts
      | Alg.Idle -> ());
      (* The broadcast below carries the op id, so every replica can tie
         the entry's stamp back to the client's operation. *)
      (if dedup then
         match ls.st.Alg.pending with
         | Alg.Waiting_mop e | Alg.Waiting_oop e ->
             Hashtbl.replace ls.seen e.ts ();
             register e.ts op_id
         | Alg.Waiting_aop _ | Alg.Idle -> ());
      handle_actions ~trace actions
    and start_invoke op trace op_id cell =
      let invoke_us = now_rel () in
      let seq = ls.next_seq in
      ls.next_seq <- ls.next_seq + 1;
      ls.inflight <- Some (cell, op, invoke_us, seq, trace);
      Obs.Recorder.emit ~pid ~kind:Obs.Event.Invoke ~trace ~a:(class_of op) ();
      dispatch_alg_invoke op trace op_id
    and start_quorum_invoke f op trace op_id cell =
      let invoke_us = now_rel () in
      let seq = ls.next_seq in
      ls.next_seq <- ls.next_seq + 1;
      ls.inflight <- Some (cell, op, invoke_us, seq, trace);
      Obs.Recorder.emit ~pid ~kind:Obs.Event.Invoke ~trace ~a:(class_of op) ();
      let qid = f.next_qid in
      f.next_qid <- qid + 1;
      f.pending_fwd <-
        Some
          { f_qid = qid; f_op = op; f_op_id = op_id; f_trace = trace;
            f_sent_us = Prelude.Mclock.now_us (); f_proposed = false;
            f_nacks = 0 };
      dispatch_fwd f
    and dispatch_fwd f =
      match f.pending_fwd with
      | None -> ()
      | Some w ->
          w.f_sent_us <- Prelude.Mclock.now_us ();
          let p =
            { q_time = 0; q_op = w.f_op; q_origin = pid; q_qid = w.f_qid;
              q_op_id = w.f_op_id; q_trace = w.f_trace }
          in
          if Quorum.Mode_controller.is_sequencer f.mc then
            sequencer_admit f p
          else
            Transport_intf.send transport ~trace:w.f_trace ~src:pid
              ~dst:(Quorum.Mode_controller.seq_pid f.mc)
              (Quorum_msg
                 (Forward
                    { qid = w.f_qid; origin = pid; op = w.f_op;
                      op_id = w.f_op_id; trace = w.f_trace }))
    and broadcast_propose f qseq p =
      Transport_intf.broadcast transport ~trace:p.q_trace ~src:pid
        (Quorum_msg (Propose { epoch = Quorum.Log.epoch f.qlog; qseq; p }))
    and sequencer_admit f p =
      match Hashtbl.find_opt f.fwd_seen (p.q_origin, p.q_qid) with
      | Some qseq -> (
          (* A retried forward for a slot we already assigned: re-send the
             Propose (and the Qcommit, if it got that far) so a lost frame
             cannot wedge the origin. *)
          match Quorum.Log.payload f.qlog ~qseq with
          | Some p' ->
              broadcast_propose f qseq p';
              if Quorum.Log.committed f.qlog ~qseq then
                Transport_intf.broadcast transport ~trace:0 ~src:pid
                  (Quorum_msg
                     (Qcommit { epoch = Quorum.Log.epoch f.qlog; qseq }))
          | None -> ())
      | None ->
          if f.draining_until <> None then f.buffered <- p :: f.buffered
          else if
            p.q_op_id <> 0
            && Hashtbl.mem ls.id_index p.q_op_id
            && D.classify p.q_op <> Spec.Data_type.Pure_accessor
          then begin
            (* The op already entered history under another stamp (fast
               path before the switch, or an earlier era): never order it
               twice — bounce it back through the origin's dedup tables. *)
            if p.q_origin <> pid then
              Transport_intf.send transport ~trace:p.q_trace ~src:pid
                ~dst:p.q_origin (Quorum_msg (Fnack { qid = p.q_qid }))
          end
          else propose f p
    and propose f p =
      let time =
        List.fold_left max
          (eff_clock ())
          [ f.next_time; f.last_q_applied + 1;
            ls.hwm.Prelude.Stamp.time + 1 ]
      in
      f.next_time <- time + 1;
      let p = { p with q_time = time } in
      let qseq = Quorum.Log.append f.qlog ~me:pid p in
      Hashtbl.replace f.fwd_seen (p.q_origin, p.q_qid) qseq;
      register (Prelude.Stamp.make ~time ~pid:p.q_origin) p.q_op_id;
      (if p.q_origin = pid then
         match f.pending_fwd with
         | Some w when w.f_qid = p.q_qid -> w.f_proposed <- true
         | _ -> ());
      broadcast_propose f qseq p;
      if Quorum.Log.majority f.qlog <= 1 then do_commit f qseq
    and do_commit f qseq =
      Quorum.Log.commit f.qlog ~qseq;
      Transport_intf.broadcast transport ~trace:0 ~src:pid
        (Quorum_msg (Qcommit { epoch = Quorum.Log.epoch f.qlog; qseq }));
      apply_committed f
    and apply_committed f =
      List.iter
        (fun (_qseq, p) ->
          let ts = Prelude.Stamp.make ~time:p.q_time ~pid:p.q_origin in
          let st = ls.st in
          let st =
            if Hashtbl.mem ls.seen ts then st
            else begin
              register ts p.q_op_id;
              {
                st with
                Alg.to_execute =
                  Alg.Queue.insert { Alg.op = p.q_op; ts } st.Alg.to_execute;
              }
            end
          in
          (* Executing *through* the committed stamp is the follower
             barrier: any straggler fast-path entry below it executes
             first, in stamp order. *)
          let st, actions = Alg.execute_through st ~upto:ts ~inclusive:true in
          ls.st <- st;
          f.last_q_applied <- max f.last_q_applied p.q_time;
          drain_applied ();
          handle_actions ~trace:p.q_trace actions;
          match (f.pending_fwd, ls.inflight) with
          | Some w, Some _ when p.q_origin = pid && w.f_qid = p.q_qid -> (
              match
                List.find_map
                  (fun ((e : Alg.entry), r) ->
                    if Prelude.Stamp.equal e.ts ts then Some r else None)
                  ls.st.Alg.applied
              with
              | Some r ->
                  f.pending_fwd <- None;
                  respond r;
                  next_from_backlog ()
              | None -> ())
          | _ -> ())
        (Quorum.Log.applyable f.qlog)
    and cancel_clients why =
      (match fb with
      | Some f ->
          f.gated <- None;
          f.pending_fwd <- None
      | None -> ());
      (match ls.inflight with
      | None -> ()
      | Some (cell, _, _, _, _) -> fill cell (Rejected why));
      ls.inflight <- None;
      Queue.iter (fun (_, _, _, _, cell) -> fill cell (Rejected why)) ls.backlog;
      Queue.clear ls.backlog
    and enter_quorum f ~epoch ~sequencer =
      Quorum.Log.reset f.qlog ~epoch;
      Hashtbl.reset f.fwd_seen;
      f.buffered <- [];
      Obs.Recorder.emit ~pid ~kind:Obs.Event.Mode_switch ~a:1 ~b:epoch ();
      f.qcfg.Quorum.Config.on_mode ~quorum:true ~epoch
        ~seq:(Quorum.Mode_controller.seq_pid f.mc);
      (* A gate-held response is safe now: its entry was broadcast to every
         live peer and sorts below the new era's base. *)
      try_release_gate ~force:true f;
      if sequencer then begin
        let barrier = (2 * cfg.Core.Params.d) + cfg.Core.Params.eps in
        f.draining_until <- Some (Prelude.Mclock.now_us () + barrier);
        arm_timer Qdrain_t barrier
      end
      else begin
        f.draining_until <- None;
        (* Re-route an op forwarded to a previous era's sequencer. *)
        dispatch_fwd f
      end
    and leave_quorum f ~epoch =
      Obs.Recorder.emit ~pid ~kind:Obs.Event.Mode_switch ~a:0 ~b:epoch ();
      f.qcfg.Quorum.Config.on_mode ~quorum:false ~epoch
        ~seq:(Quorum.Mode_controller.seq_pid f.mc);
      f.draining_until <- None;
      (* A forward the old era never ordered re-enters the fast path; one
         it did order completes when the (retained) log's commit arrives. *)
      match f.pending_fwd with
      | Some w when not w.f_proposed ->
          f.pending_fwd <- None;
          dispatch_alg_invoke w.f_op w.f_trace w.f_op_id
      | _ -> ()
    and run_decisions f =
      let fd = f.fd in
      if ls.mode <> Up then ()
      else
      match
        Quorum.Mode_controller.consider f.mc
          ~alive:(Quorum.Failure_detector.alive fd)
          ~all_alive:(Quorum.Failure_detector.all_alive fd)
          ~suspects_any:(Quorum.Failure_detector.suspects_any fd)
          ~lowest:(Quorum.Failure_detector.lowest_alive fd)
      with
      | None -> ()
      | Some Quorum.Mode_controller.Stall ->
          Quorum.Mode_controller.stall f.mc;
          cancel_clients "retry: minority stall";
          run_decisions f
      | Some Quorum.Mode_controller.Unstall ->
          Quorum.Mode_controller.unstall f.mc;
          next_from_backlog ();
          run_decisions f
      | Some Quorum.Mode_controller.Initiate_quorum ->
          let epoch = Quorum.Mode_controller.initiate_quorum f.mc in
          enter_quorum f ~epoch ~sequencer:true;
          run_decisions f
      | Some Quorum.Mode_controller.Initiate_fast ->
          (* Only once the era is fully drained: every slot committed and
             applied, no forward buffered or pending anywhere we know of.
             Until then the decision simply re-fires on a later tick. *)
          if
            Quorum.Log.drained f.qlog
            && f.buffered = []
            && f.pending_fwd = None
            && f.draining_until = None
          then begin
            let epoch =
              Quorum.Mode_controller.initiate_fast f.mc ~floor:(f.next_time - 1)
            in
            leave_quorum f ~epoch
          end
    and submit op trace op_id deadline cell =
      match dedup_check op op_id with
      | Some ((Done r as outcome), invoke_us) ->
          (* A replay answered from the dedup table is a client-visible
             completion like any other: without a record the history would
             come up one op short (the bounced first attempt recorded
             nothing).  The record rides a fresh virtual pid (≥ n, unique
             per record): its [applied-at, now] interval overlaps this
             replica's one-inflight-at-a-time sequence, so putting it on
             [pid] would fabricate program-order constraints the checker
             must not see — only real time orders a replayed completion. *)
          let seq = ls.next_seq in
          ls.next_seq <- ls.next_seq + 1;
          ls.records <-
            { pid = (cfg.Core.Params.n * (1 + seq)) + pid; seq; op;
              result = r; invoke_us; response_us = now_rel () }
            :: ls.records;
          fill cell outcome
      | Some (outcome, _) -> fill cell outcome
      | None ->
          if ls.inflight <> None then
            Queue.push (op, trace, op_id, deadline, cell) ls.backlog
          else (
            match fb with
            | Some f when in_quorum f -> start_quorum_invoke f op trace op_id cell
            | _ -> start_invoke op trace op_id cell)
    and shed_expired trace cell =
      (* The deadline already passed: doing the work now is dead work the
         client stopped waiting for — refuse it (visibly, as a counted
         [Shed] event) instead of adding it to the queue ahead of ops that
         can still meet theirs.  The op was never executed, so the
         idempotent retry path is always safe. *)
      Obs.Recorder.emit ~pid ~kind:Obs.Event.Shed ~trace
        ~a:Obs.Event.shed_deadline ();
      fill cell (Rejected "shed: deadline passed")
    and next_from_backlog () =
      if ls.inflight = None && ls.mode = Up && not (Queue.is_empty ls.backlog)
      then begin
        let op, trace, op_id, deadline, cell = Queue.pop ls.backlog in
        if deadline > 0 && Prelude.Mclock.now_us () > deadline then begin
          shed_expired trace cell;
          next_from_backlog ()
        end
        else begin
          submit op trace op_id deadline cell;
          next_from_backlog ()
        end
      end
    and fire_alg_timer t ttrace =
      let st', actions = Alg.on_timer cfg ls.st ~clock:(clock ()) t in
      ls.st <- st';
      drain_applied ();
      handle_actions ~trace:ttrace actions
    and do_unfreeze () =
      ls.mode <- Up;
      ls.timers <-
        List.filter
          (fun e ->
            match e.timer with
            | Unfreeze_t | Catchup_retry_t -> false
            | A _ | Heartbeat_t | Qdrain_t | Qtick_t | Sync_t -> true)
          ls.timers;
      let replies = ls.reply_hwms in
      ls.reply_hwms <- [];
      ls.awaiting <- [];
      (* Now that every reply is absorbed, send each replier whatever this
         replica holds above that replier's high-water mark — anti-entropy
         runs both ways, so a peer that itself missed broadcasts while this
         one was down converges too. *)
      List.iter (fun (peer, after) -> push_back peer after) replies;
      let thaw = List.rev ls.deferred in
      ls.deferred <- [];
      List.iter
        (fun te ->
          match te.timer with
          | A t -> fire_alg_timer t te.ttrace
          | Unfreeze_t | Catchup_retry_t | Heartbeat_t | Qdrain_t | Qtick_t
          | Sync_t ->
              ())
        thaw;
      next_from_backlog ()
    in
    let absorb_catchup ~src entries =
      let fresh =
        List.filter
          (fun ((e : Alg.entry), _) -> not (Hashtbl.mem ls.seen e.ts))
          entries
      in
      List.iter
        (fun ((e : Alg.entry), op_id) ->
          Hashtbl.replace ls.seen e.ts ();
          register e.ts op_id;
          let st', actions =
            Alg.on_message cfg ls.st ~clock:(clock ()) ~src e
          in
          ls.st <- st';
          handle_actions ~trace:0 actions)
        fresh;
      if fresh <> [] then
        Obs.Recorder.emit ~pid ~kind:Obs.Event.Catchup ~a:(List.length fresh)
          ~b:src ()
    in
    let catchup_req () =
      Catchup_req
        { time = ls.hwm.Prelude.Stamp.time; cpid = ls.hwm.Prelude.Stamp.pid }
    in
    (* Re-ask often enough that a reply lost to a stale TCP connection (see
       [Catchup_retry_t]) is recovered well inside the unfreeze window: the
       failed first write makes the peer's link reconnect, so the retry's
       reply rides a fresh connection. *)
    (* The catch-up wait: a recovery config's explicit allowance, else (for
       the fallback's reconciliation, which has no recovery config) one
       network round plus skew. *)
    let catchup_wait_us () =
      match recovery with
      | Some rc -> rc.catchup_wait_us
      | None -> cfg.Core.Params.d + cfg.Core.Params.eps
    in
    let schedule_catchup_retry ~wait_us =
      let e =
        { due = Prelude.Mclock.now_us () + max 1 (wait_us / 4);
          tseq = ls.tseq; timer = Catchup_retry_t; ttrace = 0 }
      in
      ls.tseq <- ls.tseq + 1;
      ls.timers <- insert_timer e ls.timers
    in
    let start_catchup ~wait_us =
      ls.mode <- Catching_up;
      let peers =
        List.filter (fun p -> p <> pid) (List.init cfg.Core.Params.n Fun.id)
      in
      if peers = [] then do_unfreeze ()
      else begin
        ls.awaiting <- peers;
        ls.reply_hwms <- [];
        Transport_intf.broadcast transport ~trace:0 ~src:pid (catchup_req ());
        let e =
          { due = Prelude.Mclock.now_us () + wait_us;
            tseq = ls.tseq; timer = Unfreeze_t; ttrace = 0 }
        in
        ls.tseq <- ls.tseq + 1;
        ls.timers <- insert_timer e ls.timers;
        schedule_catchup_retry ~wait_us
      end
    in
    (* Adopted a fast-path announcement while behind: this replica joined
       the quorum era late (its log has holes below the slots it saw) or
       missed one or more eras outright.  The retained-log repair path is
       dead — no sequencer remains interested in the old era — so
       resynchronise through the recovery catch-up instead.  Waiting
       clients are bounced to a caught-up replica; op ids make the replays
       idempotent. *)
    let reconcile_via_catchup f ~epoch =
      Obs.Recorder.emit ~pid ~kind:Obs.Event.Mode_switch ~a:0 ~b:epoch ();
      f.qcfg.Quorum.Config.on_mode ~quorum:false ~epoch
        ~seq:(Quorum.Mode_controller.seq_pid f.mc);
      f.draining_until <- None;
      f.buffered <- [];
      f.must_reconcile <- false;
      cancel_clients "retry: reconciling";
      start_catchup ~wait_us:(catchup_wait_us ())
    in
    (* Quorum-protocol frames.  Epoch discipline: Forward/Propose validate
       against the mode controller's era; Qack/Qcommit/Qfill against the
       log's (retained across a switch back, so a late commit for the old
       era still applies). *)
    let handle_quorum ~src q =
      match fb with
      | None -> ()
      | Some f -> (
          match q with
          | Hb { stamp; epoch; qmode; seq; floor } ->
              (* Heartbeats are timestamped: when sync is armed they double
                 as free one-way offset samples (Lundelius–Lynch midpoint,
                 uncertainty u/2) between probe rounds. *)
              (match sy with
              | Some s ->
                  Sync.Estimator.observe_one_way s.sest ~peer:src
                    ~now:(now_rel ()) ~d:s.scfg.Sync.Config.d
                    ~u:s.scfg.Sync.Config.u ~sent:stamp ~clock:(clock ())
              | None -> ());
              let cleared =
                Quorum.Failure_detector.heard f.fd ~peer:src ~stamp
                  ~now_us:(Prelude.Mclock.now_us ())
              in
              if cleared then begin
                Obs.Recorder.emit ~pid ~kind:Obs.Event.Suspect ~a:src ~b:0 ();
                f.qcfg.Quorum.Config.on_suspect ~peer:src ~suspected:false
              end;
              let prev_epoch = Quorum.Mode_controller.epoch f.mc in
              (match
                 Quorum.Mode_controller.observe f.mc ~epoch ~quorum:qmode ~seq
                   ~floor
               with
              | Quorum.Mode_controller.Adopted ->
                  (* An epoch jump of more than one means whole eras went by
                     unseen — whatever they committed is missing here. *)
                  let jumped = epoch - prev_epoch > 1 in
                  if qmode then begin
                    if jumped then f.must_reconcile <- true;
                    enter_quorum f ~epoch ~sequencer:false
                  end
                  else if
                    jumped || f.must_reconcile
                    || not (Quorum.Log.drained f.qlog)
                  then reconcile_via_catchup f ~epoch
                  else leave_quorum f ~epoch
              | Quorum.Mode_controller.Ignored -> ());
              try_release_gate ~force:false f;
              run_decisions f
          | Forward { qid; origin; op; op_id; trace } ->
              if
                in_quorum f
                && Quorum.Mode_controller.is_sequencer f.mc
                && ls.mode = Up
              then
                sequencer_admit f
                  { q_time = 0; q_op = op; q_origin = origin; q_qid = qid;
                    q_op_id = op_id; q_trace = trace }
              else
                Transport_intf.send transport ~trace ~src:pid ~dst:origin
                  (Quorum_msg (Fnack { qid }))
          | Propose { epoch; qseq; p } ->
              if epoch = Quorum.Mode_controller.epoch f.mc && in_quorum f
              then begin
                if Quorum.Log.epoch f.qlog <> epoch then begin
                  Quorum.Log.reset f.qlog ~epoch;
                  Hashtbl.reset f.fwd_seen
                end;
                Quorum.Log.store f.qlog ~qseq p;
                register
                  (Prelude.Stamp.make ~time:p.q_time ~pid:p.q_origin)
                  p.q_op_id;
                (if p.q_origin = pid then
                   match f.pending_fwd with
                   | Some w when w.f_qid = p.q_qid -> w.f_proposed <- true
                   | _ -> ());
                Transport_intf.send transport ~trace:p.q_trace ~src:pid
                  ~dst:src (Quorum_msg (Qack { epoch; qseq }));
                (* a Qfill-refilled hole may have unblocked the prefix *)
                apply_committed f
              end
          | Qack { epoch; qseq } ->
              if
                epoch = Quorum.Log.epoch f.qlog
                && Quorum.Log.ack f.qlog ~qseq ~from:src
              then do_commit f qseq
          | Qcommit { epoch; qseq } ->
              if epoch = Quorum.Log.epoch f.qlog then begin
                Quorum.Log.commit f.qlog ~qseq;
                apply_committed f
              end
          | Fnack { qid } -> (
              match f.pending_fwd with
              | Some w when w.f_qid = qid && not w.f_proposed ->
                  w.f_nacks <- w.f_nacks + 1;
                  if w.f_nacks > 3 then begin
                    (* Routing is flapping (sequencer handover storm):
                       bounce the client rather than loop forever. *)
                    f.pending_fwd <- None;
                    match ls.inflight with
                    | Some (cell, _, _, _, _) ->
                        ls.inflight <- None;
                        fill cell (Rejected "retry: quorum reroute");
                        next_from_backlog ()
                    | None -> ()
                  end
                  else if not (in_quorum f) then begin
                    f.pending_fwd <- None;
                    dispatch_alg_invoke w.f_op w.f_trace w.f_op_id
                  end
                  else dispatch_fwd f
              | _ -> ())
          | Qfill { epoch; from_seq } ->
              if
                epoch = Quorum.Log.epoch f.qlog
                && Quorum.Mode_controller.is_sequencer f.mc
              then
                for qseq = from_seq to Quorum.Log.highest f.qlog do
                  match Quorum.Log.payload f.qlog ~qseq with
                  | Some p ->
                      Transport_intf.send transport ~trace:p.q_trace ~src:pid
                        ~dst:src (Quorum_msg (Propose { epoch; qseq; p }));
                      if Quorum.Log.committed f.qlog ~qseq then
                        Transport_intf.send transport ~trace:0 ~src:pid
                          ~dst:src (Quorum_msg (Qcommit { epoch; qseq }))
                  | None -> ()
                done)
    in
    let drain_on_stop () =
      (* Wake every client still waiting: their operations will never
         respond (the replica is gone), and a blocked client handler would
         otherwise hang teardown. *)
      (match ls.inflight with
      | None -> ()
      | Some (cell, _, _, _, _) -> fill cell Cancelled);
      ls.inflight <- None;
      Queue.iter (fun (_, _, _, _, cell) -> fill cell Cancelled) ls.backlog;
      Queue.clear ls.backlog;
      List.rev ls.records
    in
    let rec loop () =
      let deadline = match ls.timers with [] -> None | e :: _ -> Some e.due in
      match Transport_intf.recv transport ~me:pid ~deadline with
      | Some (src, Net (m, trace, op_id)) ->
          (match ls.mode with
          | Down -> ()  (* the replica is down: the message is lost *)
          | Up | Catching_up ->
              (* Under fallback, a fresh fast-path entry stamped at or below
                 this replica's own quorum-applied high-point is a healed
                 straggler from before a switch: its origin never got a
                 (gated) ack for it, and admitting it would order it into
                 already-executed history.  Keyed on the *local*
                 [last_q_applied] so a rejoining replica (whose own mark is
                 still low) keeps accepting catch-up entries. *)
              let stale_q =
                match fb with
                | Some f ->
                    (not (Hashtbl.mem ls.seen m.Alg.ts))
                    && m.Alg.ts.Prelude.Stamp.time <= f.last_q_applied
                | None -> false
              in
              if stale_q then ()
              else if dedup && Hashtbl.mem ls.seen m.Alg.ts then
                ()  (* replayed entry (push-back or duplicate): drop *)
              else begin
                if dedup then begin
                  Hashtbl.replace ls.seen m.Alg.ts ();
                  register m.Alg.ts op_id
                end;
                if Obs.Recorder.active () then
                  Obs.Recorder.emit ~pid ~kind:Obs.Event.Deliver ~trace ~a:src
                    ~b:(Transport_intf.depth transport ~me:pid) ();
                let st', actions =
                  Alg.on_message cfg ls.st ~clock:(clock ()) ~src m
                in
                ls.st <- st';
                drain_applied ();
                (* [Apply] marks the entry's hand-off to the protocol state
                   machine; Algorithm 1 may defer its execution to ts order. *)
                Obs.Recorder.emit ~pid ~kind:Obs.Event.Apply ~trace ~a:src ();
                handle_actions ~trace actions
              end);
          loop ()
      | Some (src, Catchup_req { time; cpid }) ->
          (match ls.mode with
          | Down -> ()
          | Up | Catching_up ->
              let after = Prelude.Stamp.make ~time ~pid:cpid in
              let entries = entries_after after in
              Obs.Recorder.emit ~pid ~kind:Obs.Event.Catchup
                ~a:(List.length entries) ~b:src ();
              Transport_intf.send transport ~trace:0 ~src:pid ~dst:src
                (Catchup_rep
                   {
                     entries;
                     time = ls.hwm.Prelude.Stamp.time;
                     cpid = ls.hwm.Prelude.Stamp.pid;
                   }));
          loop ()
      | Some (src, Catchup_rep { entries; time; cpid }) ->
          (match ls.mode with
          | Down -> ()
          | Up | Catching_up -> (
              absorb_catchup ~src entries;
              let rh = Prelude.Stamp.make ~time ~pid:cpid in
              match ls.mode with
              | Catching_up ->
                  ls.reply_hwms <- (src, rh) :: ls.reply_hwms;
                  ls.awaiting <- List.filter (fun p -> p <> src) ls.awaiting;
                  if ls.awaiting = [] then do_unfreeze ()
              | Up ->
                  (* Late reply after the timeout already thawed us: push
                     back immediately instead of at thaw. *)
                  push_back src rh
              | Down -> ()));
          loop ()
      | Some (src, Quorum_msg q) ->
          (match ls.mode with
          | Down -> ()
          | Up | Catching_up -> handle_quorum ~src q);
          loop ()
      | Some (src, Sync_msg sw) ->
          (match (ls.mode, sy) with
          | Down, _ | _, None -> ()  (* down replicas answer nothing *)
          | (Up | Catching_up), Some s -> (
              match sw with
              | Sping { seq; t0 } ->
                  (* Echo immediately: the responder's rx and tx readings
                     coincide (one clock read), which only tightens the
                     prober's RTT-asymmetry uncertainty. *)
                  let t_rx = clock () in
                  Transport_intf.send transport ~trace:0 ~src:pid ~dst:src
                    (Sync_msg (Spong { seq; t0; t_rx; t_tx = t_rx }))
              | Spong { seq = _; t0; t_rx; t_tx } ->
                  let t1 = clock () in
                  Sync.Estimator.observe_two_way s.sest ~peer:src
                    ~now:(now_rel ()) ~t0 ~t1 ~t_rx ~t_tx;
                  if Obs.Recorder.active () then
                    Obs.Recorder.emit ~pid ~kind:Obs.Event.Sync_probe ~a:src
                      ~b:(((t_rx - t0) + (t_tx - t1)) / 2)
                      ()));
          loop ()
      | Some (_, Invoke (op, trace, op_id, deadline, cell)) ->
          (if deadline > 0 && Prelude.Mclock.now_us () > deadline then
             shed_expired trace cell
           else
             match fb with
             | Some _ when ls.mode = Down ->
                 fill cell (Rejected "retry: replica down")
             | Some f when Quorum.Mode_controller.stalled f.mc ->
                 fill cell (Rejected "retry: minority stall")
             | _ ->
                 if ls.mode <> Up then
                   Queue.push (op, trace, op_id, deadline, cell) ls.backlog
                 else submit op trace op_id deadline cell);
          loop ()
      | Some (_, Crash_now) ->
          (match (ls.rec_mode, fb) with
          | None, None -> ()  (* crash realisation is transport isolation *)
          | _ ->
              ls.mode <- Down;
              if fb <> None then cancel_clients "retry: replica down");
          loop ()
      | Some (_, Recover_now) ->
          (match (ls.rec_mode, ls.mode) with
          | None, Down when fb <> None ->
              (* No durability layer: rejoin live and anti-entropy the gap
                 (peers answer the catch-up request with what we missed). *)
              ls.mode <- Up;
              Transport_intf.broadcast transport ~trace:0 ~src:pid
                (catchup_req ())
          | None, _ | _, Catching_up -> ()
          | Some rc, (Up | Down) ->
              start_catchup ~wait_us:rc.catchup_wait_us);
          loop ()
      | Some (_, Snap_req f) ->
          let v_applied =
            List.rev_map
              (fun ((e : Alg.entry), r) ->
                ( e,
                  r,
                  Option.value ~default:0 (Hashtbl.find_opt ls.stamp_ids e.ts)
                ))
              ls.st.Alg.applied
          in
          f
            {
              v_obj = ls.st.Alg.local_obj;
              v_hwm_time = ls.hwm.Prelude.Stamp.time;
              v_hwm_pid = ls.hwm.Prelude.Stamp.pid;
              v_applied;
            };
          loop ()
      | Some (_, Stop) -> drain_on_stop ()
      | None -> (
          (* The earliest timer is due, and (per [Mailbox.take]) no ripe
             message predates it: fire exactly one and re-merge. *)
          match ls.timers with
          | [] -> loop ()
          | e :: rest ->
              ls.timers <- rest;
              (match e.timer with
              | Unfreeze_t ->
                  if ls.mode = Catching_up then do_unfreeze ()
              | Catchup_retry_t ->
                  if ls.mode = Catching_up && ls.awaiting <> [] then begin
                    List.iter
                      (fun peer ->
                        Transport_intf.send transport ~trace:0 ~src:pid
                          ~dst:peer (catchup_req ()))
                      ls.awaiting;
                    schedule_catchup_retry ~wait_us:(catchup_wait_us ())
                  end
              | Heartbeat_t ->
                  (match fb with
                  | Some f ->
                      (if ls.mode = Up then begin
                         let epoch, qmode, seq, floor =
                           Quorum.Mode_controller.announcement f.mc
                         in
                         Transport_intf.broadcast transport ~trace:0 ~src:pid
                           (Quorum_msg
                              (Hb { stamp = clock (); epoch; qmode; seq; floor }));
                         let newly =
                           Quorum.Failure_detector.tick f.fd
                             ~now_us:(Prelude.Mclock.now_us ())
                         in
                         List.iter
                           (fun peer ->
                             Obs.Recorder.emit ~pid ~kind:Obs.Event.Suspect
                               ~a:peer ~b:1 ();
                             f.qcfg.Quorum.Config.on_suspect ~peer
                               ~suspected:true)
                           newly;
                         run_decisions f
                       end);
                      arm_timer Heartbeat_t f.qcfg.Quorum.Config.hb_us
                  | None -> ())
              | Qdrain_t ->
                  (match fb with
                  | Some f
                    when f.draining_until <> None
                         && Quorum.Mode_controller.is_sequencer f.mc
                         && in_quorum f ->
                      (* The switch barrier: every fast-path entry broadcast
                         before the era change has had 2d + ε to land.
                         Execute everything below the era's stamp base, then
                         admit the forwards buffered during the drain. *)
                      f.draining_until <- None;
                      let queued_max =
                        List.fold_left
                          (fun acc (e : Alg.entry) ->
                            max acc e.ts.Prelude.Stamp.time)
                          min_int
                          (Alg.Queue.to_sorted_list ls.st.Alg.to_execute)
                      in
                      let base =
                        1
                        + List.fold_left max
                            (clock () + cfg.Core.Params.eps)
                            [ ls.hwm.Prelude.Stamp.time; queued_max;
                              Quorum.Mode_controller.floor f.mc;
                              f.last_q_applied ]
                      in
                      let st, actions =
                        Alg.execute_through ls.st
                          ~upto:(Prelude.Stamp.make ~time:base ~pid:(-1))
                          ~inclusive:false
                      in
                      ls.st <- st;
                      drain_applied ();
                      handle_actions ~trace:0 actions;
                      f.next_time <- base;
                      let buffered = List.rev f.buffered in
                      f.buffered <- [];
                      List.iter (fun p -> sequencer_admit f p) buffered
                  | _ -> ())
              | Qtick_t ->
                  (match fb with
                  | Some f ->
                      (if ls.mode = Up && in_quorum f then begin
                         let timeout = Quorum.Config.timeout_us f.qcfg in
                         (match (f.pending_fwd, ls.inflight) with
                         | Some w, Some (cell, _, _, _, _)
                           when Prelude.Mclock.now_us () - w.f_sent_us
                                > 2 * timeout ->
                             f.pending_fwd <- None;
                             ls.inflight <- None;
                             fill cell (Rejected "retry: quorum timeout");
                             next_from_backlog ()
                         | Some w, _
                           when (not w.f_proposed)
                                && not
                                     (Quorum.Mode_controller.is_sequencer f.mc)
                           ->
                             dispatch_fwd f
                         | _ -> ());
                         if not (Quorum.Mode_controller.is_sequencer f.mc)
                         then
                           match Quorum.Log.missing f.qlog with
                           | [] -> ()
                           | missing ->
                               let from_seq =
                                 List.fold_left min max_int missing
                               in
                               Transport_intf.send transport ~trace:0 ~src:pid
                                 ~dst:(Quorum.Mode_controller.seq_pid f.mc)
                                 (Quorum_msg
                                    (Qfill
                                       {
                                         epoch = Quorum.Log.epoch f.qlog;
                                         from_seq;
                                       }))
                       end);
                      (* a switch back blocked on the drain retries here *)
                      if ls.mode = Up then run_decisions f;
                      if Sys.getenv_opt "TIMEBOUNDS_QDEBUG" <> None then
                        Printf.eprintf
                          "[qdbg %d] mode=%s up=%b epoch=%d seq=%b \
                           inflight=%b gated=%b pend=%s backlog=%d \
                           drained=%b buffered=%d draining=%b next_time=%d \
                           last_q=%d queue=%d\n\
                           %!"
                          pid
                          (if in_quorum f then "quorum" else "fast")
                          (ls.mode = Up)
                          (Quorum.Mode_controller.epoch f.mc)
                          (Quorum.Mode_controller.is_sequencer f.mc)
                          (ls.inflight <> None) (f.gated <> None)
                          (match f.pending_fwd with
                          | None -> "-"
                          | Some w ->
                              Printf.sprintf "qid=%d,prop=%b" w.f_qid
                                w.f_proposed)
                          (Queue.length ls.backlog)
                          (Quorum.Log.drained f.qlog)
                          (List.length f.buffered)
                          (f.draining_until <> None)
                          f.next_time f.last_q_applied
                          (Alg.Queue.size ls.st.Alg.to_execute);
                      arm_timer Qtick_t
                        (max 1 (Quorum.Config.timeout_us f.qcfg / 2))
                  | None -> ())
              | Sync_t ->
                  (match sy with
                  | Some s ->
                      (if ls.mode = Up then begin
                         (* Absorb the round's samples: feed the Lundelius–
                            Lynch average correction to the slewed clock,
                            shift the estimator so it isn't re-applied, and
                            publish the achieved-ε estimate before probing
                            again. *)
                         let c = Sync.Estimator.correction s.sest in
                         if c <> 0 then begin
                           Sync.Clock.adjust s.sclock ~delta:c;
                           Sync.Estimator.shift s.sest ~by:c
                         end;
                         let peers = Sync.Estimator.peers s.sest in
                         if peers > 0 then begin
                           let eps_us =
                             Sync.Estimator.achieved_eps s.sest
                               ~now:(now_rel ())
                           in
                           Obs.Recorder.emit ~pid ~kind:Obs.Event.Sync_eps
                             ~a:eps_us ~b:peers ();
                           s.scfg.Sync.Config.on_eps ~eps_us ~peers
                         end;
                         s.sseq <- s.sseq + 1;
                         Transport_intf.broadcast transport ~trace:0 ~src:pid
                           (Sync_msg (Sping { seq = s.sseq; t0 = clock () }))
                       end);
                      arm_timer Sync_t s.scfg.Sync.Config.interval_us
                  | None -> ())
              | A (Alg.Add _ as t) ->
                  (* Self-delivery of an already-broadcast entry: enqueue
                     even while frozen, keeping the local queue consistent
                     with what peers received. *)
                  fire_alg_timer t e.ttrace
              | A t ->
                  if ls.mode = Up then fire_alg_timer t e.ttrace
                  else ls.deferred <- e :: ls.deferred);
              loop ())
    in
    (match fb with
    | Some f ->
        arm_timer Heartbeat_t f.qcfg.Quorum.Config.hb_us;
        arm_timer Qtick_t (max 1 (Quorum.Config.timeout_us f.qcfg / 2))
    | None -> ());
    (match sy with
    | Some s ->
        (* First round fires early so probing (and the first correction)
           starts well before the load does. *)
        arm_timer Sync_t (max 1 (s.scfg.Sync.Config.interval_us / 8))
    | None -> ());
    loop ()

  (* ---- single node: one replica on one domain, any transport ---- *)

  type node = {
    node_pid : int;
    node_transport : event Transport_intf.t;
    node_start_us : int;
    node_join : unit -> record list;
        (** join the replica's execution vehicle (domain or thread) and
            return its records; called exactly once, from [node_stop] *)
    mutable node_stopped : bool;
  }

  let node ~params ~transport ~pid ?(offset = 0) ?start_us ?(threaded = false)
      ?recovery ?fallback ?sync () =
    let start_us =
      match start_us with Some s -> s | None -> Prelude.Mclock.now_us ()
    in
    let body () =
      run_replica ~params ?recovery ?fallback ?sync ~transport ~start_us
        ~offset pid
    in
    let join =
      if threaded then begin
        (* Systhread vehicle: many replicas share one domain's runtime
           lock, which the event loop releases whenever it blocks in
           [Mailbox.take] — the right trade for a sharded host running
           far more replicas than the ~128-domain ceiling allows. *)
        let result = ref [] in
        let t = Thread.create (fun () -> result := body ()) () in
        fun () ->
          Thread.join t;
          !result
      end
      else
        let d = Domain.spawn body in
        fun () -> Domain.join d
    in
    {
      node_pid = pid;
      node_transport = transport;
      node_start_us = start_us;
      node_join = join;
      node_stopped = false;
    }

  let invoke_on ?(trace = 0) ?(op_id = 0) ?(deadline = 0) transport ~pid op =
    let cell =
      { mutex = Mutex.create (); cond = Condition.create (); value = Pending }
    in
    Transport_intf.post transport ~src:pid ~dst:pid
      (Invoke (op, trace, op_id, deadline, cell));
    Mutex.lock cell.mutex;
    while cell.value = Pending do
      Condition.wait cell.cond cell.mutex
    done;
    let v = cell.value in
    Mutex.unlock cell.mutex;
    match v with
    | Done r -> r
    | Cancelled -> raise Stopped
    | Rejected why -> raise (Retry_later why)
    | Pending -> assert false

  let node_invoke ?trace ?op_id ?deadline node op =
    invoke_on ?trace ?op_id ?deadline node.node_transport ~pid:node.node_pid op

  let node_stop node =
    if node.node_stopped then []
    else begin
      node.node_stopped <- true;
      Transport_intf.post node.node_transport ~src:node.node_pid
        ~dst:node.node_pid Stop;
      node.node_join ()
    end

  let node_elapsed_us node = Prelude.Mclock.now_us () - node.node_start_us

  let post_crash transport ~pid =
    Transport_intf.post transport ~src:pid ~dst:pid Crash_now

  let post_recover transport ~pid =
    Transport_intf.post transport ~src:pid ~dst:pid Recover_now

  let request_snapshot transport ~pid f =
    Transport_intf.post transport ~src:pid ~dst:pid (Snap_req f)

  (* ---- in-process cluster: n nodes sharing one bus transport ---- *)

  type cluster = {
    params : Core.Params.t;
    transport : event Transport_intf.t;
    start_us : int;
    nodes : node array;
    mutable stopped : bool;
    mutable records : record list;
  }

  let start ~params ?policy ?offsets ?wrap ?recovery ?fallback ?sync () =
    let n = params.Core.Params.n in
    let offsets =
      match offsets with Some o -> Array.copy o | None -> Array.make n 0
    in
    if Array.length offsets <> n then
      invalid_arg "Replica.start: offsets length must be n";
    let start_us = Prelude.Mclock.now_us () in
    let transport =
      let bus = Transport.bus ~n () in
      let base =
        Transport.intf
          (match policy with
          | None -> bus
          | Some policy -> Transport.with_delays ~policy bus)
      in
      match wrap with
      | None -> base
      | Some (w : Transport_intf.wrapper) -> w.Transport_intf.wrap ~start_us base
    in
    {
      params;
      transport;
      start_us;
      nodes =
        Array.init n (fun pid ->
            node ~params ~transport ~pid ~offset:offsets.(pid) ~start_us
              ?recovery ?fallback ?sync ());
      stopped = false;
      records = [];
    }

  let invoke ?trace ?op_id cluster ~pid op =
    invoke_on ?trace ?op_id cluster.transport ~pid op

  let crash cluster ~pid = post_crash cluster.transport ~pid
  let recover cluster ~pid = post_recover cluster.transport ~pid

  module Client = struct
    let invoke ?trace cluster ~pid op = invoke ?trace cluster ~pid op
  end

  let stop cluster =
    if not cluster.stopped then begin
      cluster.stopped <- true;
      let records =
        Array.to_list cluster.nodes |> List.concat_map node_stop
      in
      cluster.records <-
        List.sort
          (fun (a : record) b ->
            match compare a.invoke_us b.invoke_us with
            | 0 -> compare (a.pid, a.seq) (b.pid, b.seq)
            | c -> c)
          records
    end

  let history cluster =
    if not cluster.stopped then
      invalid_arg "Replica.history: stop the cluster first";
    cluster.records

  let elapsed_us cluster = Prelude.Mclock.now_us () - cluster.start_us
  let transport_stats cluster = Transport_intf.stats cluster.transport
end
