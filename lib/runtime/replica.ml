(** See the interface for the model mapping.  One domain per replica; all
    inter-domain communication goes through the transport's mailboxes and
    the per-invocation result cells — replica state itself is only ever
    touched by its own domain.

    Recovery additions (PR 5): a replica can be {e frozen} — either [Down]
    (an injected crash: it processes nothing, realising the fault the
    process path realises with SIGKILL) or [Catching_up] (just restarted:
    it broadcasts a catch-up request carrying its high-water mark, absorbs
    replies, and thaws when every peer answered or a timeout fires).
    While frozen, [Execute]/[Respond_*] timers are deferred (nothing
    applies, so the high-water mark stays contiguous) and client invokes
    are backlogged.  Operation ids ride on every broadcast entry, so a
    replica can recognise a client's replay of an operation it already
    holds and answer idempotently. *)

module Make (D : Spec.Data_type.S) = struct
  module Alg = Core.Algorithm1.Make (D)

  exception Stopped
  exception Retry_later of string

  type record = {
    pid : int;
    seq : int;
    op : D.op;
    result : D.result;
    invoke_us : int;
    response_us : int;
  }

  (* A one-shot synchronisation cell the invoking client blocks on. *)
  type cell_state = Pending | Done of D.result | Cancelled | Rejected of string

  type cell = {
    mutex : Mutex.t;
    cond : Condition.t;
    mutable value : cell_state;
  }

  type snapshot_view = {
    v_obj : D.state;
    v_hwm_time : int;
    v_hwm_pid : int;
    v_applied : (Alg.entry * D.result * int) list;  (** oldest first *)
  }

  type recovered_state = {
    r_obj : D.state;
    r_applied : (Alg.entry * D.result * int) list;  (** oldest first *)
  }

  type recovery = {
    catchup_wait_us : int;
    on_apply : Alg.entry -> D.result -> int -> unit;
    recovered : recovered_state option;
  }

  type event =
    | Net of Alg.entry * int * int  (** entry, trace, op id (0 = none) *)
    | Catchup_req of { time : int; cpid : int }  (** asker's high-water mark *)
    | Catchup_rep of {
        entries : (Alg.entry * int) list;
        time : int;
        cpid : int;  (** replier's high-water mark *)
      }
    | Invoke of D.op * int * int * cell  (** op, trace, op id, cell *)
    | Crash_now
    | Recover_now
    | Snap_req of (snapshot_view -> unit)
    | Stop

  type wire =
    | Wire_entry of Alg.entry * int * int
    | Wire_catchup_req of { time : int; cpid : int }
    | Wire_catchup_rep of { entries : (Alg.entry * int) list; time : int; cpid : int }

  let wire_view = function
    | Net (e, trace, op_id) -> Some (Wire_entry (e, trace, op_id))
    | Catchup_req { time; cpid } -> Some (Wire_catchup_req { time; cpid })
    | Catchup_rep { entries; time; cpid } ->
        Some (Wire_catchup_rep { entries; time; cpid })
    | Invoke _ | Crash_now | Recover_now | Snap_req _ | Stop -> None

  let of_wire = function
    | Wire_entry (e, trace, op_id) -> Net (e, trace, op_id)
    | Wire_catchup_req { time; cpid } -> Catchup_req { time; cpid }
    | Wire_catchup_rep { entries; time; cpid } ->
        Catchup_rep { entries; time; cpid }

  let net ?(trace = 0) e = Net (e, trace, 0)

  let net_entry = function
    | Net (e, trace, _) -> Some (e, trace)
    | Catchup_req _ | Catchup_rep _ | Invoke _ | Crash_now | Recover_now
    | Snap_req _ | Stop ->
        None

  let class_of op = Obs.Event.class_code (D.classify op)

  let fill cell v =
    Mutex.lock cell.mutex;
    cell.value <- v;
    Condition.signal cell.cond;
    Mutex.unlock cell.mutex

  (* ---- the per-replica event loop (runs inside the replica's domain) ---- *)

  (* [Catchup_retry_t] re-asks the peers that still owe a catch-up reply:
     over TCP the first write onto a connection whose remote died is
     accepted by the kernel and lost (the error only surfaces on the next
     write), so a one-shot request/reply exchange straddling a crash can
     vanish silently — retrying until every peer answers (or the unfreeze
     timeout lapses) makes anti-entropy immune to it. *)
  type rtimer = A of Alg.timer | Unfreeze_t | Catchup_retry_t

  type timer_entry = { due : int; tseq : int; timer : rtimer; ttrace : int }

  type mode = Up | Down | Catching_up

  type id_state = Queued | Applied_id of D.result

  type loop_state = {
    pid : int;
    mutable st : Alg.state;
    mutable timers : timer_entry list;  (** sorted by [(due, tseq)] *)
    mutable tseq : int;
    mutable inflight : (cell * D.op * int * int * int) option;
        (** cell, op, invoke_us, seq, trace *)
    backlog : (D.op * int * int * cell) Queue.t;  (** op, trace, op id, cell *)
    mutable next_seq : int;
    mutable records : record list;  (** reversed *)
    (* -- recovery machinery (only exercised when [rec_mode] is [Some]) -- *)
    rec_mode : recovery option;
    mutable mode : mode;
    mutable deferred : timer_entry list;  (** newest first; replayed on thaw *)
    mutable awaiting : int list;  (** peers owing a catch-up reply *)
    mutable reply_hwms : (int * Prelude.Stamp.t) list;
        (** replier high-water marks, pushed back to at thaw *)
    seen : (Prelude.Stamp.t, unit) Hashtbl.t;
    stamp_ids : (Prelude.Stamp.t, int) Hashtbl.t;
    id_index : (int, id_state) Hashtbl.t;
    mutable hwm : Prelude.Stamp.t;  (** max applied stamp; time −1 = none *)
    mutable last_applied : (Alg.entry * D.result) list;
        (** physical-equality cursor into [st.applied] *)
  }

  let rec insert_timer e = function
    | [] -> [ e ]
    | hd :: tl ->
        if e.due < hd.due || (e.due = hd.due && e.tseq < hd.tseq) then
          e :: hd :: tl
        else hd :: insert_timer e tl

  let no_hwm = Prelude.Stamp.make ~time:(-1) ~pid:0

  let run_replica ~(params : Core.Params.t) ?recovery
      ~(transport : event Transport_intf.t) ~start_us ~offset pid =
    let cfg = params in
    let now_rel () = Prelude.Mclock.now_us () - start_us in
    let clock () = now_rel () + offset in
    let ls =
      {
        pid;
        st = Alg.init cfg ~n:cfg.n ~pid;
        timers = [];
        tseq = 0;
        inflight = None;
        backlog = Queue.create ();
        next_seq = 0;
        records = [];
        rec_mode = recovery;
        mode = Up;
        deferred = [];
        awaiting = [];
        reply_hwms = [];
        seen = Hashtbl.create 256;
        stamp_ids = Hashtbl.create 256;
        id_index = Hashtbl.create 256;
        hwm = no_hwm;
        last_applied = [];
      }
    in
    (* Seed the protocol state from the durable prefix, if any: the object,
       its applied history (so catch-up can serve it), the stamp/id tables
       (so replayed broadcasts and retried clients are recognised) and the
       high-water mark. *)
    (match recovery with
    | Some { recovered = Some rs; _ } ->
        ls.st <-
          {
            ls.st with
            Alg.local_obj = rs.r_obj;
            applied = List.rev_map (fun (e, r, _) -> (e, r)) rs.r_applied;
          };
        List.iter
          (fun ((e : Alg.entry), r, op_id) ->
            Hashtbl.replace ls.seen e.ts ();
            if op_id <> 0 then begin
              Hashtbl.replace ls.stamp_ids e.ts op_id;
              Hashtbl.replace ls.id_index op_id (Applied_id r)
            end;
            if Prelude.Stamp.( < ) ls.hwm e.ts then ls.hwm <- e.ts)
          rs.r_applied
    | _ -> ());
    ls.last_applied <- ls.st.Alg.applied;
    let dedup = Option.is_some recovery in
    let register ts op_id =
      if op_id <> 0 then begin
        Hashtbl.replace ls.stamp_ids ts op_id;
        if not (Hashtbl.mem ls.id_index op_id) then
          Hashtbl.replace ls.id_index op_id Queued
      end
    in
    (* Every mutation the algorithm applied since the last call, oldest
       first: mark it seen, resolve its op id, advance the high-water mark
       and hand it to the durability hook — before any action (a response
       in particular) from the same protocol step is released. *)
    let drain_applied () =
      match ls.rec_mode with
      | None -> ()
      | Some rc ->
          if not (ls.st.Alg.applied == ls.last_applied) then begin
            let rec fresh acc = function
              | l when l == ls.last_applied -> acc
              | [] -> acc
              | (e, r) :: tl -> fresh ((e, r) :: acc) tl
            in
            List.iter
              (fun ((e : Alg.entry), r) ->
                Hashtbl.replace ls.seen e.ts ();
                let op_id =
                  Option.value ~default:0 (Hashtbl.find_opt ls.stamp_ids e.ts)
                in
                if op_id <> 0 then
                  Hashtbl.replace ls.id_index op_id (Applied_id r);
                if Prelude.Stamp.( < ) ls.hwm e.ts then ls.hwm <- e.ts;
                rc.on_apply e r op_id)
              (fresh [] ls.st.Alg.applied);
            ls.last_applied <- ls.st.Alg.applied
          end
    in
    (* Applied and still-queued entries with a stamp above [after], in
       stamp order, each with its op id — what catch-up serves. *)
    let entries_after after =
      let keep (e : Alg.entry) = Prelude.Stamp.( < ) after e.ts in
      let applied =
        List.filter_map
          (fun ((e : Alg.entry), _) -> if keep e then Some e else None)
          ls.st.Alg.applied
      in
      let queued =
        List.filter keep (Alg.Queue.to_sorted_list ls.st.Alg.to_execute)
      in
      List.sort
        (fun (a : Alg.entry) b -> Prelude.Stamp.compare a.ts b.ts)
        (List.rev_append applied queued)
      |> List.map (fun (e : Alg.entry) ->
             (e, Option.value ~default:0 (Hashtbl.find_opt ls.stamp_ids e.ts)))
    in
    let push_back peer after =
      let missing = entries_after after in
      if missing <> [] then begin
        Obs.Recorder.emit ~pid ~kind:Obs.Event.Catchup
          ~a:(List.length missing) ~b:peer ();
        List.iter
          (fun ((e : Alg.entry), op_id) ->
            Transport_intf.send transport ~trace:0 ~src:pid ~dst:peer
              (Net (e, 0, op_id)))
          missing
      end
    in
    let respond r =
      match ls.inflight with
      | None -> ()  (* cannot happen: Algorithm 1 responds only when pending *)
      | Some (cell, op, invoke_us, seq, trace) ->
          let response_us = now_rel () in
          ls.records <-
            { pid; seq; op; result = r; invoke_us; response_us }
            :: ls.records;
          ls.inflight <- None;
          Obs.Recorder.emit ~pid ~kind:Obs.Event.Respond ~trace
            ~a:(class_of op) ~b:(response_us - invoke_us) ();
          fill cell (Done r)
    in
    (* A client replaying an operation id this replica already knows must
       not be executed twice.  Applied → answer from the recorded result;
       still queued → a pure mutator's reply is state-independent (answer
       now), anything else must wait for the first attempt (tell the
       client to retry).  Accessors have no effect and are never deduped. *)
    let dedup_check op op_id =
      if (not dedup) || op_id = 0 then None
      else
        match D.classify op with
        | Spec.Data_type.Pure_accessor -> None
        | cls -> (
            match Hashtbl.find_opt ls.id_index op_id with
            | Some (Applied_id r) -> Some (Done r)
            | Some Queued -> (
                match cls with
                | Spec.Data_type.Pure_mutator ->
                    let _, r = D.apply ls.st.Alg.local_obj op in
                    Some (Done r)
                | _ -> Some (Rejected "in flight; retry"))
            | None -> None)
    in
    let rec handle_actions ~trace actions =
      List.iter
        (fun (a : (D.result, Alg.entry, Alg.timer) Sim.Action.t) ->
          match a with
          | Sim.Action.Respond r ->
              respond r;
              (* The model allows one pending operation per process;
                 queued client calls start once the previous responds. *)
              next_from_backlog ()
          | Sim.Action.Send (dst, m) ->
              let op_id =
                Option.value ~default:0
                  (Hashtbl.find_opt ls.stamp_ids m.Alg.ts)
              in
              Transport_intf.send transport ~trace ~src:pid ~dst
                (Net (m, trace, op_id))
          | Sim.Action.Broadcast m ->
              Obs.Recorder.emit ~pid ~kind:Obs.Event.Broadcast ~trace
                ~a:(cfg.Core.Params.n - 1) ();
              let op_id =
                Option.value ~default:0
                  (Hashtbl.find_opt ls.stamp_ids m.Alg.ts)
              in
              Transport_intf.broadcast transport ~trace ~src:pid
                (Net (m, trace, op_id))
          | Sim.Action.Set_timer (delay, t) ->
              (* Timer delays are clock-time delays; clocks advance at the
                 rate of real time, so a [δ]-delay timer is due at
                 [now + δ] on the real timeline. *)
              Obs.Recorder.emit ~pid ~kind:Obs.Event.Hold_set ~trace ~a:delay ();
              let e =
                { due = Prelude.Mclock.now_us () + delay; tseq = ls.tseq;
                  timer = A t; ttrace = trace }
              in
              ls.tseq <- ls.tseq + 1;
              ls.timers <- insert_timer e ls.timers
          | Sim.Action.Cancel_timer t ->
              ls.timers <-
                List.filter
                  (fun e ->
                    match e.timer with
                    | A t' -> not (Alg.equal_timer t' t)
                    | Unfreeze_t | Catchup_retry_t -> true)
                  ls.timers)
        actions
    and start_invoke op trace op_id cell =
      let invoke_us = now_rel () in
      let seq = ls.next_seq in
      ls.next_seq <- ls.next_seq + 1;
      ls.inflight <- Some (cell, op, invoke_us, seq, trace);
      Obs.Recorder.emit ~pid ~kind:Obs.Event.Invoke ~trace ~a:(class_of op) ();
      let st', actions = Alg.on_invoke cfg ls.st ~clock:(clock ()) op in
      ls.st <- st';
      (* The broadcast below carries the op id, so every replica can tie
         the entry's stamp back to the client's operation. *)
      (if dedup then
         match ls.st.Alg.pending with
         | Alg.Waiting_mop e | Alg.Waiting_oop e ->
             Hashtbl.replace ls.seen e.ts ();
             register e.ts op_id
         | Alg.Waiting_aop _ | Alg.Idle -> ());
      handle_actions ~trace actions
    and submit op trace op_id cell =
      match dedup_check op op_id with
      | Some outcome -> fill cell outcome
      | None ->
          if ls.inflight = None then start_invoke op trace op_id cell
          else Queue.push (op, trace, op_id, cell) ls.backlog
    and next_from_backlog () =
      if ls.inflight = None && ls.mode = Up && not (Queue.is_empty ls.backlog)
      then begin
        let op, trace, op_id, cell = Queue.pop ls.backlog in
        submit op trace op_id cell;
        next_from_backlog ()
      end
    and fire_alg_timer t ttrace =
      let st', actions = Alg.on_timer cfg ls.st ~clock:(clock ()) t in
      ls.st <- st';
      drain_applied ();
      handle_actions ~trace:ttrace actions
    and do_unfreeze () =
      ls.mode <- Up;
      ls.timers <-
        List.filter
          (fun e ->
            match e.timer with
            | Unfreeze_t | Catchup_retry_t -> false
            | A _ -> true)
          ls.timers;
      let replies = ls.reply_hwms in
      ls.reply_hwms <- [];
      ls.awaiting <- [];
      (* Now that every reply is absorbed, send each replier whatever this
         replica holds above that replier's high-water mark — anti-entropy
         runs both ways, so a peer that itself missed broadcasts while this
         one was down converges too. *)
      List.iter (fun (peer, after) -> push_back peer after) replies;
      let thaw = List.rev ls.deferred in
      ls.deferred <- [];
      List.iter
        (fun te ->
          match te.timer with
          | A t -> fire_alg_timer t te.ttrace
          | Unfreeze_t | Catchup_retry_t -> ())
        thaw;
      next_from_backlog ()
    in
    let absorb_catchup ~src entries =
      let fresh =
        List.filter
          (fun ((e : Alg.entry), _) -> not (Hashtbl.mem ls.seen e.ts))
          entries
      in
      List.iter
        (fun ((e : Alg.entry), op_id) ->
          Hashtbl.replace ls.seen e.ts ();
          register e.ts op_id;
          let st', actions =
            Alg.on_message cfg ls.st ~clock:(clock ()) ~src e
          in
          ls.st <- st';
          handle_actions ~trace:0 actions)
        fresh;
      if fresh <> [] then
        Obs.Recorder.emit ~pid ~kind:Obs.Event.Catchup ~a:(List.length fresh)
          ~b:src ()
    in
    let catchup_req () =
      Catchup_req
        { time = ls.hwm.Prelude.Stamp.time; cpid = ls.hwm.Prelude.Stamp.pid }
    in
    (* Re-ask often enough that a reply lost to a stale TCP connection (see
       [Catchup_retry_t]) is recovered well inside the unfreeze window: the
       failed first write makes the peer's link reconnect, so the retry's
       reply rides a fresh connection. *)
    let catchup_retry_us rc = max 1 (rc.catchup_wait_us / 4) in
    let schedule_catchup_retry rc =
      let e =
        { due = Prelude.Mclock.now_us () + catchup_retry_us rc;
          tseq = ls.tseq; timer = Catchup_retry_t; ttrace = 0 }
      in
      ls.tseq <- ls.tseq + 1;
      ls.timers <- insert_timer e ls.timers
    in
    let start_catchup rc =
      ls.mode <- Catching_up;
      let peers =
        List.filter (fun p -> p <> pid) (List.init cfg.Core.Params.n Fun.id)
      in
      if peers = [] then do_unfreeze ()
      else begin
        ls.awaiting <- peers;
        ls.reply_hwms <- [];
        Transport_intf.broadcast transport ~trace:0 ~src:pid (catchup_req ());
        let e =
          { due = Prelude.Mclock.now_us () + rc.catchup_wait_us;
            tseq = ls.tseq; timer = Unfreeze_t; ttrace = 0 }
        in
        ls.tseq <- ls.tseq + 1;
        ls.timers <- insert_timer e ls.timers;
        schedule_catchup_retry rc
      end
    in
    let drain_on_stop () =
      (* Wake every client still waiting: their operations will never
         respond (the replica is gone), and a blocked client handler would
         otherwise hang teardown. *)
      (match ls.inflight with
      | None -> ()
      | Some (cell, _, _, _, _) -> fill cell Cancelled);
      ls.inflight <- None;
      Queue.iter (fun (_, _, _, cell) -> fill cell Cancelled) ls.backlog;
      Queue.clear ls.backlog;
      List.rev ls.records
    in
    let rec loop () =
      let deadline = match ls.timers with [] -> None | e :: _ -> Some e.due in
      match Transport_intf.recv transport ~me:pid ~deadline with
      | Some (src, Net (m, trace, op_id)) ->
          (match ls.mode with
          | Down -> ()  (* the replica is down: the message is lost *)
          | Up | Catching_up ->
              if dedup && Hashtbl.mem ls.seen m.Alg.ts then
                ()  (* replayed entry (push-back or duplicate): drop *)
              else begin
                if dedup then begin
                  Hashtbl.replace ls.seen m.Alg.ts ();
                  register m.Alg.ts op_id
                end;
                if Obs.Recorder.active () then
                  Obs.Recorder.emit ~pid ~kind:Obs.Event.Deliver ~trace ~a:src
                    ~b:(Transport_intf.depth transport ~me:pid) ();
                let st', actions =
                  Alg.on_message cfg ls.st ~clock:(clock ()) ~src m
                in
                ls.st <- st';
                drain_applied ();
                (* [Apply] marks the entry's hand-off to the protocol state
                   machine; Algorithm 1 may defer its execution to ts order. *)
                Obs.Recorder.emit ~pid ~kind:Obs.Event.Apply ~trace ~a:src ();
                handle_actions ~trace actions
              end);
          loop ()
      | Some (src, Catchup_req { time; cpid }) ->
          (match ls.mode with
          | Down -> ()
          | Up | Catching_up ->
              let after = Prelude.Stamp.make ~time ~pid:cpid in
              let entries = entries_after after in
              Obs.Recorder.emit ~pid ~kind:Obs.Event.Catchup
                ~a:(List.length entries) ~b:src ();
              Transport_intf.send transport ~trace:0 ~src:pid ~dst:src
                (Catchup_rep
                   {
                     entries;
                     time = ls.hwm.Prelude.Stamp.time;
                     cpid = ls.hwm.Prelude.Stamp.pid;
                   }));
          loop ()
      | Some (src, Catchup_rep { entries; time; cpid }) ->
          (match ls.mode with
          | Down -> ()
          | Up | Catching_up -> (
              absorb_catchup ~src entries;
              let rh = Prelude.Stamp.make ~time ~pid:cpid in
              match ls.mode with
              | Catching_up ->
                  ls.reply_hwms <- (src, rh) :: ls.reply_hwms;
                  ls.awaiting <- List.filter (fun p -> p <> src) ls.awaiting;
                  if ls.awaiting = [] then do_unfreeze ()
              | Up ->
                  (* Late reply after the timeout already thawed us: push
                     back immediately instead of at thaw. *)
                  push_back src rh
              | Down -> ()));
          loop ()
      | Some (_, Invoke (op, trace, op_id, cell)) ->
          (if ls.mode <> Up then Queue.push (op, trace, op_id, cell) ls.backlog
           else submit op trace op_id cell);
          loop ()
      | Some (_, Crash_now) ->
          (match ls.rec_mode with
          | None -> ()  (* crash realisation is transport isolation only *)
          | Some _ -> ls.mode <- Down);
          loop ()
      | Some (_, Recover_now) ->
          (match (ls.rec_mode, ls.mode) with
          | None, _ | _, Catching_up -> ()
          | Some rc, (Up | Down) -> start_catchup rc);
          loop ()
      | Some (_, Snap_req f) ->
          let v_applied =
            List.rev_map
              (fun ((e : Alg.entry), r) ->
                ( e,
                  r,
                  Option.value ~default:0 (Hashtbl.find_opt ls.stamp_ids e.ts)
                ))
              ls.st.Alg.applied
          in
          f
            {
              v_obj = ls.st.Alg.local_obj;
              v_hwm_time = ls.hwm.Prelude.Stamp.time;
              v_hwm_pid = ls.hwm.Prelude.Stamp.pid;
              v_applied;
            };
          loop ()
      | Some (_, Stop) -> drain_on_stop ()
      | None -> (
          (* The earliest timer is due, and (per [Mailbox.take]) no ripe
             message predates it: fire exactly one and re-merge. *)
          match ls.timers with
          | [] -> loop ()
          | e :: rest ->
              ls.timers <- rest;
              (match e.timer with
              | Unfreeze_t ->
                  if ls.mode = Catching_up then do_unfreeze ()
              | Catchup_retry_t ->
                  (match ls.rec_mode with
                  | Some rc when ls.mode = Catching_up && ls.awaiting <> [] ->
                      List.iter
                        (fun peer ->
                          Transport_intf.send transport ~trace:0 ~src:pid
                            ~dst:peer (catchup_req ()))
                        ls.awaiting;
                      schedule_catchup_retry rc
                  | _ -> ())
              | A (Alg.Add _ as t) ->
                  (* Self-delivery of an already-broadcast entry: enqueue
                     even while frozen, keeping the local queue consistent
                     with what peers received. *)
                  fire_alg_timer t e.ttrace
              | A t ->
                  if ls.mode = Up then fire_alg_timer t e.ttrace
                  else ls.deferred <- e :: ls.deferred);
              loop ())
    in
    loop ()

  (* ---- single node: one replica on one domain, any transport ---- *)

  type node = {
    node_pid : int;
    node_transport : event Transport_intf.t;
    node_start_us : int;
    node_join : unit -> record list;
        (** join the replica's execution vehicle (domain or thread) and
            return its records; called exactly once, from [node_stop] *)
    mutable node_stopped : bool;
  }

  let node ~params ~transport ~pid ?(offset = 0) ?start_us ?(threaded = false)
      ?recovery () =
    let start_us =
      match start_us with Some s -> s | None -> Prelude.Mclock.now_us ()
    in
    let body () = run_replica ~params ?recovery ~transport ~start_us ~offset pid in
    let join =
      if threaded then begin
        (* Systhread vehicle: many replicas share one domain's runtime
           lock, which the event loop releases whenever it blocks in
           [Mailbox.take] — the right trade for a sharded host running
           far more replicas than the ~128-domain ceiling allows. *)
        let result = ref [] in
        let t = Thread.create (fun () -> result := body ()) () in
        fun () ->
          Thread.join t;
          !result
      end
      else
        let d = Domain.spawn body in
        fun () -> Domain.join d
    in
    {
      node_pid = pid;
      node_transport = transport;
      node_start_us = start_us;
      node_join = join;
      node_stopped = false;
    }

  let invoke_on ?(trace = 0) ?(op_id = 0) transport ~pid op =
    let cell =
      { mutex = Mutex.create (); cond = Condition.create (); value = Pending }
    in
    Transport_intf.post transport ~src:pid ~dst:pid
      (Invoke (op, trace, op_id, cell));
    Mutex.lock cell.mutex;
    while cell.value = Pending do
      Condition.wait cell.cond cell.mutex
    done;
    let v = cell.value in
    Mutex.unlock cell.mutex;
    match v with
    | Done r -> r
    | Cancelled -> raise Stopped
    | Rejected why -> raise (Retry_later why)
    | Pending -> assert false

  let node_invoke ?trace ?op_id node op =
    invoke_on ?trace ?op_id node.node_transport ~pid:node.node_pid op

  let node_stop node =
    if node.node_stopped then []
    else begin
      node.node_stopped <- true;
      Transport_intf.post node.node_transport ~src:node.node_pid
        ~dst:node.node_pid Stop;
      node.node_join ()
    end

  let node_elapsed_us node = Prelude.Mclock.now_us () - node.node_start_us

  let post_crash transport ~pid =
    Transport_intf.post transport ~src:pid ~dst:pid Crash_now

  let post_recover transport ~pid =
    Transport_intf.post transport ~src:pid ~dst:pid Recover_now

  let request_snapshot transport ~pid f =
    Transport_intf.post transport ~src:pid ~dst:pid (Snap_req f)

  (* ---- in-process cluster: n nodes sharing one bus transport ---- *)

  type cluster = {
    params : Core.Params.t;
    transport : event Transport_intf.t;
    start_us : int;
    nodes : node array;
    mutable stopped : bool;
    mutable records : record list;
  }

  let start ~params ?policy ?offsets ?wrap ?recovery () =
    let n = params.Core.Params.n in
    let offsets =
      match offsets with Some o -> Array.copy o | None -> Array.make n 0
    in
    if Array.length offsets <> n then
      invalid_arg "Replica.start: offsets length must be n";
    let start_us = Prelude.Mclock.now_us () in
    let transport =
      let bus = Transport.bus ~n () in
      let base =
        Transport.intf
          (match policy with
          | None -> bus
          | Some policy -> Transport.with_delays ~policy bus)
      in
      match wrap with
      | None -> base
      | Some (w : Transport_intf.wrapper) -> w.Transport_intf.wrap ~start_us base
    in
    {
      params;
      transport;
      start_us;
      nodes =
        Array.init n (fun pid ->
            node ~params ~transport ~pid ~offset:offsets.(pid) ~start_us
              ?recovery ());
      stopped = false;
      records = [];
    }

  let invoke ?trace ?op_id cluster ~pid op =
    invoke_on ?trace ?op_id cluster.transport ~pid op

  let crash cluster ~pid = post_crash cluster.transport ~pid
  let recover cluster ~pid = post_recover cluster.transport ~pid

  module Client = struct
    let invoke ?trace cluster ~pid op = invoke ?trace cluster ~pid op
  end

  let stop cluster =
    if not cluster.stopped then begin
      cluster.stopped <- true;
      let records =
        Array.to_list cluster.nodes |> List.concat_map node_stop
      in
      cluster.records <-
        List.sort
          (fun (a : record) b ->
            match compare a.invoke_us b.invoke_us with
            | 0 -> compare (a.pid, a.seq) (b.pid, b.seq)
            | c -> c)
          records
    end

  let history cluster =
    if not cluster.stopped then
      invalid_arg "Replica.history: stop the cluster first";
    cluster.records

  let elapsed_us cluster = Prelude.Mclock.now_us () - cluster.start_us
  let transport_stats cluster = Transport_intf.stats cluster.transport
end
