(** See the interface.  Both implementations share the mailbox array; the
    delay wrapper only replaces the routing function, so stacking wrappers
    composes and [recv]/[post] always reach the same mailboxes. *)

type 'msg route = src:int -> dst:int -> 'msg -> unit

type 'msg t = {
  n : int;
  epoch : int;  (** µs origin for the policy's [send_time] *)
  boxes : (int * 'msg) Mailbox.t array;
  route : 'msg route;
  sent_ctr : int Atomic.t;
  dropped_ctr : int Atomic.t;
}

type stats = Transport_intf.stats = {
  sent : int;
  dropped : int;
  link : Transport_intf.link_stats option;
}

let bus ~n () =
  let boxes = Array.init n (fun _ -> Mailbox.create ()) in
  {
    n;
    epoch = Prelude.Mclock.now_us ();
    boxes;
    route =
      (fun ~src ~dst msg ->
        Mailbox.put boxes.(dst) ~deliver_at:(Prelude.Mclock.now_us ()) (src, msg));
    sent_ctr = Atomic.make 0;
    dropped_ctr = Atomic.make 0;
  }

let with_delays ~policy t =
  (* One lock serialises the policy: delay policies are built on the
     sequential [Prelude.Rng] and on per-link index counters, neither of
     which is domain-safe on its own. *)
  let lock = Mutex.create () in
  let indices = Array.make_matrix t.n t.n 0 in
  let route ~src ~dst msg =
    Mutex.lock lock;
    let index = indices.(src).(dst) in
    indices.(src).(dst) <- index + 1;
    let now = Prelude.Mclock.now_us () in
    let delay = policy ~src ~dst ~send_time:(now - t.epoch) ~index in
    Mutex.unlock lock;
    if delay < 0 then Atomic.incr t.dropped_ctr
    else Mailbox.put t.boxes.(dst) ~deliver_at:(now + delay) (src, msg)
  in
  { t with route }

let n t = t.n

let send ?(trace = 0) t ~src ~dst msg =
  Atomic.incr t.sent_ctr;
  Obs.Recorder.emit ~pid:src ~kind:Obs.Event.Send ~trace ~a:dst ();
  t.route ~src ~dst msg

let broadcast t ~src msg =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst msg
  done

let post t ~src ~dst msg =
  Mailbox.put t.boxes.(dst) ~deliver_at:(Prelude.Mclock.now_us ()) (src, msg)

let recv t ~me ~deadline = Mailbox.take t.boxes.(me) ~deadline

let stats t =
  { sent = Atomic.get t.sent_ctr; dropped = Atomic.get t.dropped_ctr; link = None }

let intf t =
  {
    Transport_intf.n = t.n;
    send = (fun ~src ~dst ~trace msg -> send ~trace t ~src ~dst msg);
    post = (fun ~src ~dst msg -> post t ~src ~dst msg);
    recv = (fun ~me ~deadline -> recv t ~me ~deadline);
    depth = (fun ~me -> Mailbox.length t.boxes.(me));
    stats = (fun () -> stats t);
    close = (fun () -> ());
  }
