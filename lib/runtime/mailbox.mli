(** Blocking, delivery-time-ordered mailbox — the primitive under both the
    in-process transport and each replica's event loop.

    Every item carries a [deliver_at] time (microseconds, {!Prelude.Mclock}
    timeline).  {!take} only surfaces items whose delivery time has passed,
    which is how the delay-injecting transport turns a sampled message delay
    into an actual one: the message sits *in the receiver's mailbox* until
    it is ripe.  Items ripen in ([deliver_at], insertion) order, so two
    messages on the same link never reorder.

    OCaml's [Condition] has no timed wait, so deadline waits are a hybrid:
    indefinite waits block on the condition variable (woken by {!put});
    bounded waits sleep-poll in ≤ [poll_quantum_us] slices.  The quantum
    (100 µs) bounds how late a ripe item can be noticed — callers should
    budget for it in their timing headroom (see [Loadgen]'s [slack]). *)

type 'a t

val poll_quantum_us : int

val create : unit -> 'a t

val put : 'a t -> deliver_at:int -> 'a -> unit
(** Insert an item that becomes visible to {!take} once
    [Prelude.Mclock.now_us () >= deliver_at], waking any blocked taker. *)

val take : 'a t -> deadline:int option -> 'a option
(** Block until an item is ripe, then remove and return the earliest one —
    except that an item is only returned if its [deliver_at] is at or
    before [deadline], and [None] is returned as soon as the deadline
    itself has passed.  Thus a caller multiplexing the mailbox with its own
    timer wheel processes mailbox items and timer firings in global
    chronological order even when it is running late.  [deadline:None]
    waits indefinitely. *)

val length : 'a t -> int
