(** Log-bucketed latency histograms for the live runtime.

    Values are non-negative integers (microseconds by convention).  Buckets
    are log-linear, HdrHistogram-style: exact below 16, then 16 sub-buckets
    per power of two, so any recorded quantile is within ~6 % of the true
    value while the whole structure is one fixed 1040-slot array — O(1)
    record, no allocation, cheap {!merge} across worker domains. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** Record one sample; negative samples are clamped to 0. *)

val count : t -> int
val max_value : t -> int
(** Largest recorded sample, exact ([0] when empty). *)

val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] for [p ∈ [0, 100]]: an upper bound on the value at
    rank ⌈p/100·count⌉, exact to the bucket width (~6 %); the true maximum
    is returned for the last bucket.  [0] when empty. *)

val merge : t -> t -> t
(** New histogram with the samples of both (inputs unchanged). *)

val merge_into : into:t -> t -> unit
(** Accumulate [src]'s samples into [into] without allocating — the
    round-merge path of [Loadgen] and [Net.Cluster]. *)

val bucket_of : int -> int
(** Bucket index a value falls into (exposed for tests). *)

val bucket_bounds : int -> int * int
(** Inclusive [(lo, hi)] value range of a bucket index (exposed for
    tests); [bucket_of v] always satisfies [lo <= v <= hi]. *)

val pp : Format.formatter -> t -> unit
(** One-line [n=… mean=… p50=… p90=… p99=… max=…] summary (µs). *)
