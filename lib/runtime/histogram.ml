(** Log-linear buckets: values below 16 get exact unit buckets; above, each
    power-of-two octave is split into 16 sub-buckets, giving ≤ 1/16 ≈ 6 %
    relative error.  63-bit ints need 16 + 16·59 slots; 1024 is ample. *)

let buckets = 1024

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable max : int;
}

let create () = { counts = Array.make buckets 0; n = 0; sum = 0; max = 0 }

let msb v =
  (* Position of the highest set bit; [v >= 1]. *)
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_of v =
  let v = max 0 v in
  if v < 16 then v
  else
    let k = msb v in
    (16 * (k - 3)) + ((v lsr (k - 4)) land 15)

let bucket_bounds idx =
  if idx < 16 then (idx, idx)
  else
    let octave = (idx / 16) + 3 and sub = idx mod 16 in
    let lo = (16 + sub) lsl (octave - 4) in
    (lo, lo + (1 lsl (octave - 4)) - 1)

let add t v =
  let v = max 0 v in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v > t.max then t.max <- v

let count t = t.n
let max_value t = t.max
let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n

let percentile t p =
  if t.n = 0 then 0
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.n)))
    in
    let rank = Stdlib.min rank t.n in
    let cum = ref 0 and result = ref t.max in
    (try
       for i = 0 to buckets - 1 do
         cum := !cum + t.counts.(i);
         if !cum >= rank then begin
           result := Stdlib.min (snd (bucket_bounds i)) t.max;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let merge a b =
  {
    counts = Array.init buckets (fun i -> a.counts.(i) + b.counts.(i));
    n = a.n + b.n;
    sum = a.sum + b.sum;
    max = Stdlib.max a.max b.max;
  }

let merge_into ~into src =
  for i = 0 to buckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.n <- into.n + src.n;
  into.sum <- into.sum + src.sum;
  if src.max > into.max then into.max <- src.max

let pp fmt t =
  Format.fprintf fmt
    "n=%-5d mean=%7.0fµs p50=%6dµs p90=%6dµs p99=%6dµs max=%6dµs" t.n (mean t)
    (percentile t 50.) (percentile t 90.) (percentile t 99.) t.max
