(** The Lundelius–Lynch clock synchronization algorithm — the substrate the
    paper's Chapter V assumes ("clocks synchronized to within the optimal
    ε"; reference [6] of the thesis).

    Every process broadcasts its clock reading; a receiver estimates the
    sender's offset by assuming the message took the midpoint delay
    d − u/2, so each pairwise estimate errs by at most u/2 in either
    direction.  Each process then shifts its clock by the average of the
    estimated offsets (counting itself as 0).  The residual worst-case skew
    is (1 − 1/n)·u — exactly the optimal ε the upper bounds of Chapter V
    are stated with — and an adversary choosing extreme delays can force it.

    Integer arithmetic: estimates average with truncating division, so
    measured skews may exceed the bound by at most 1 tick; tests use [u]
    divisible by [2·n] and adversaries that keep the averages integral. *)

type config = { d : int; u : int }

(* The two formulas below are the whole algorithm; the simulator protocol
   and the live runtime's [Sync] subsystem both call them, so there is
   exactly one implementation to audit against the paper. *)

let midpoint_estimate ~d ~u ~sent ~clock = sent + (d - (u / 2)) - clock

let average_correction ~n ~estimates =
  List.fold_left ( + ) 0 estimates / n

module Protocol = struct
  type nonrec config = config

  type state = {
    pid : int;
    n : int;
    estimates : (int * int) list;  (** (source pid, estimated c_src − c_self) *)
    pending : bool;
  }

  type op = Start
  type result = Adjustment of int
  type msg = Clock_reading of Prelude.Ticks.t
  type timer = unit

  let name = "lundelius-lynch"
  let init (_ : config) ~n ~pid = { pid; n; estimates = []; pending = false }
  let equal_timer () () = true

  let finish st =
    if st.pending && List.length st.estimates = st.n - 1 then
      (* Average of the estimated offsets to every process, self included
         as 0. *)
      let adj =
        average_correction ~n:st.n ~estimates:(List.map snd st.estimates)
      in
      ({ st with pending = false }, [ Sim.Action.Respond (Adjustment adj) ])
    else (st, [])

  let on_invoke (_ : config) st ~clock Start =
    let st = { st with pending = true } in
    if st.n = 1 then ({ st with pending = false }, [ Sim.Action.Respond (Adjustment 0) ])
    else
      let st, acts = finish st in
      (st, Sim.Action.Broadcast (Clock_reading clock) :: acts)

  let on_message (cfg : config) st ~clock ~src (Clock_reading sent) =
    (* If the message took exactly d − u/2, the sender's clock now reads
       sent + (d − u/2); the difference to our clock estimates its offset. *)
    let estimate = midpoint_estimate ~d:cfg.d ~u:cfg.u ~sent ~clock in
    finish { st with estimates = (src, estimate) :: st.estimates }

  let on_timer (_ : config) st ~clock:_ () = (st, [])
end

module Engine = Sim.Engine.Make (Protocol)

(** Run one synchronization round.  Returns the per-process adjustments. *)
let synchronize ~n ~d ~u ~offsets ~delay : int array =
  let script = List.init n (fun pid -> Sim.Workload.at pid Protocol.Start 0) in
  let out =
    Engine.run ~config:{ d; u } ~n ~offsets ~delay
      ~check_delays:(d, u) script
  in
  let adjustments = Array.make n 0 in
  List.iter
    (fun (r : (Protocol.op, Protocol.result) Sim.Trace.op_record) ->
      match r.result with
      | Some (Protocol.Adjustment a) -> adjustments.(r.pid) <- a
      | None -> failwith "clock sync did not complete")
    out.trace.ops;
  adjustments

let skew offsets =
  Array.fold_left max offsets.(0) offsets - Array.fold_left min offsets.(0) offsets

(** Skew of the corrected clocks after one round. *)
let achieved_skew ~n ~d ~u ~offsets ~delay =
  let adj = synchronize ~n ~d ~u ~offsets ~delay in
  skew (Array.init n (fun i -> offsets.(i) + adj.(i)))

(** The optimum (1 − 1/n)·u, which is also the ε Algorithm 1 is meant to
    run with. *)
let optimal_skew ~n ~u = u - (u / n)

(** An adversary forcing the worst case: all messages *into* [victim] are
    slow (delay d) and all messages out of it are fast (d − u), so everyone
    under-estimates the victim's clock maximally while the victim
    over-estimates everyone else's. *)
let adversarial_delay ~d ~u ~victim : Sim.Delay.t =
 fun ~src ~dst ~send_time:_ ~index:_ ->
  if dst = victim then d else if src = victim then d - u else d - (u / 2)
