(** The Lundelius–Lynch clock synchronization algorithm — the substrate
    behind the paper's "clocks synchronized to within the optimal ε"
    premise (Chapter V; thesis reference [6]).

    One round: every process broadcasts its clock; receivers estimate each
    sender's offset assuming the midpoint delay d − u/2 (error ≤ u/2
    either way) and shift their clock by the average estimate.  Residual
    worst-case skew: (1 − 1/n)·u, tight.

    Integer arithmetic: averages truncate, so measured skews may exceed the
    real-valued bound by a tick per estimate. *)

type config = { d : int; u : int }

val midpoint_estimate : d:int -> u:int -> sent:int -> clock:int -> int
(** [midpoint_estimate ~d ~u ~sent ~clock]: if a reading [sent] arrives
    when the local clock reads [clock] and the message is assumed to have
    taken the midpoint delay d − u/2, the sender's clock leads ours by
    this much.  The per-pair error is at most u/2 in either direction.
    Shared by {!Protocol} and the live runtime's [Sync.Estimator]. *)

val average_correction : n:int -> estimates:int list -> int
(** The Lundelius–Lynch correction: the average of the per-peer offset
    estimates with self counted as 0, i.e. [sum estimates / n] for the
    n−1 estimates of an n-process round (truncating division).  Shared by
    {!Protocol} and the live runtime's [Sync.Estimator]. *)

module Protocol : sig
  type op = Start
  type result = Adjustment of int

  include
    Sim.Protocol.S
      with type config = config
       and type op := op
       and type result := result
end

module Engine : module type of Sim.Engine.Make (Protocol)

val synchronize :
  n:int -> d:int -> u:int -> offsets:int array -> delay:Sim.Delay.t -> int array
(** Run one round; per-process clock adjustments. *)

val skew : int array -> int
(** Max − min of an offset vector. *)

val achieved_skew :
  n:int -> d:int -> u:int -> offsets:int array -> delay:Sim.Delay.t -> int
(** Skew of the corrected clocks after one round. *)

val optimal_skew : n:int -> u:int -> int
(** (1 − 1/n)·u — also the ε Algorithm 1 is meant to run with. *)

val adversarial_delay : d:int -> u:int -> victim:int -> Sim.Delay.t
(** Delays forcing the worst case: slow into [victim], fast out of it. *)
