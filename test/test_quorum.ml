(* The adaptive quorum fallback's own contract:

   - the failure detector grants boot grace, suspects only after
     [suspect_after] silent heartbeat intervals, and clears on any frame;
   - the mode controller's epoch discipline is "strictly higher wins":
     adoption is exactly once per era, floors are monotone, and the
     decision table matches DESIGN.md §13;
   - the ordered-commit log never drops or duplicates an acknowledged
     operation, however stores, acks and commits interleave (qcheck);
   - end to end, a permanent crash and a healed minority partition both
     leave the in-process cluster linearizable under [~fallback], with the
     mode switches the availability report expects. *)

let kv = Runtime.Workloads.kv_map

let plan_of spec ~seed =
  match Fault.Fault_plan.compile ~seed ~spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile %S: %s" spec e

(* ---- failure detector ---- *)

let test_fd_boot_grace_and_suspicion () =
  let module FD = Quorum.Failure_detector in
  let hb = 1_000 and after = 10 in
  let fd = FD.make ~n:3 ~me:0 ~hb_us:hb ~suspect_after:after ~now_us:0 in
  let timeout = hb * after in
  Alcotest.(check (list int)) "boot grace: no suspicion at one timeout" []
    (FD.tick fd ~now_us:timeout);
  Alcotest.(check bool) "all alive through the grace" true (FD.all_alive fd);
  (* peer 1 beats after the grace, peer 2 stays silent *)
  ignore (FD.heard fd ~peer:1 ~stamp:500 ~now_us:(timeout + hb));
  (match FD.tick fd ~now_us:(2 * timeout) with
  | [ 2 ] -> ()
  | l -> Alcotest.failf "expected [2] suspected, got %d pids" (List.length l));
  Alcotest.(check bool) "peer 2 suspected" true (FD.suspected fd 2);
  Alcotest.(check bool) "suspects_any" true (FD.suspects_any fd);
  Alcotest.(check int) "alive counts me and peer 1" 2 (FD.alive fd);
  Alcotest.(check int) "lowest alive is me" 0 (FD.lowest_alive fd);
  (* a frame clears the suspicion, exactly once *)
  Alcotest.(check bool) "heard clears" true
    (FD.heard fd ~peer:2 ~stamp:77 ~now_us:(2 * timeout));
  Alcotest.(check bool) "second frame is not a clear" false
    (FD.heard fd ~peer:2 ~stamp:78 ~now_us:(2 * timeout));
  Alcotest.(check bool) "no suspicion left" false (FD.suspects_any fd);
  (* frames from self are ignored *)
  Alcotest.(check bool) "self frames ignored" false
    (FD.heard fd ~peer:0 ~stamp:1 ~now_us:0)

let test_fd_knowledge_horizon () =
  let module FD = Quorum.Failure_detector in
  let fd = FD.make ~n:3 ~me:0 ~hb_us:1_000 ~suspect_after:5 ~now_us:0 in
  Alcotest.(check int) "no frames yet: horizon at min_int" min_int
    (FD.min_heard_stamp fd);
  ignore (FD.heard fd ~peer:1 ~stamp:300 ~now_us:10);
  ignore (FD.heard fd ~peer:2 ~stamp:120 ~now_us:10);
  Alcotest.(check int) "horizon is the slowest peer" 120
    (FD.min_heard_stamp fd);
  (* stamps are monotone per peer: an out-of-order frame cannot regress *)
  ignore (FD.heard fd ~peer:2 ~stamp:80 ~now_us:11);
  Alcotest.(check int) "horizon never regresses" 120 (FD.min_heard_stamp fd);
  ignore (FD.heard fd ~peer:2 ~stamp:400 ~now_us:12);
  Alcotest.(check int) "horizon follows the laggard" 300
    (FD.min_heard_stamp fd);
  (* n = 1: the gate is vacuous *)
  let solo = FD.make ~n:1 ~me:0 ~hb_us:1_000 ~suspect_after:5 ~now_us:0 in
  Alcotest.(check int) "solo horizon is max_int" max_int
    (FD.min_heard_stamp solo)

(* ---- mode controller ---- *)

let test_mc_epoch_discipline () =
  let module MC = Quorum.Mode_controller in
  let mc = MC.make ~n:3 ~me:1 in
  Alcotest.(check bool) "starts fast, epoch 0" true
    (MC.mode mc = MC.Fast && MC.epoch mc = 0);
  (* equal epochs are stale *)
  Alcotest.(check bool) "equal epoch ignored" true
    (MC.observe mc ~epoch:0 ~quorum:true ~seq:0 ~floor:min_int = MC.Ignored);
  (* strictly higher adopts: mode, sequencer and floor follow *)
  Alcotest.(check bool) "higher epoch adopted" true
    (MC.observe mc ~epoch:2 ~quorum:true ~seq:0 ~floor:41 = MC.Adopted);
  Alcotest.(check bool) "quorum mode, seq 0, floor 41" true
    (MC.mode mc = MC.Quorum && MC.seq_pid mc = 0 && MC.floor mc = 41);
  (* lower epochs are stale; floors only ever ratchet up *)
  Alcotest.(check bool) "lower epoch ignored" true
    (MC.observe mc ~epoch:1 ~quorum:false ~seq:2 ~floor:99 = MC.Ignored);
  Alcotest.(check bool) "floor kept" true (MC.floor mc = 41);
  Alcotest.(check bool) "back to fast on the next era" true
    (MC.observe mc ~epoch:3 ~quorum:false ~seq:0 ~floor:55 = MC.Adopted);
  Alcotest.(check bool) "fast again, floor 55" true
    (MC.mode mc = MC.Fast && MC.floor mc = 55);
  (* initiating always beats every epoch ever seen *)
  let e = MC.initiate_quorum mc in
  Alcotest.(check int) "initiate_quorum bumps past max seen" 4 e;
  Alcotest.(check bool) "sequencer is me" true (MC.is_sequencer mc);
  let e' = MC.initiate_fast mc ~floor:70 in
  Alcotest.(check int) "initiate_fast bumps again" 5 e';
  Alcotest.(check bool) "fast, floor 70" true
    (MC.mode mc = MC.Fast && MC.floor mc = 70);
  let epoch, q, seq, floor = MC.announcement mc in
  Alcotest.(check bool) "announcement mirrors state" true
    (epoch = 5 && (not q) && seq = 1 && floor = 70)

let test_mc_decisions () =
  let module MC = Quorum.Mode_controller in
  let mc = MC.make ~n:3 ~me:0 in
  let consider ?(alive = 3) ?(all = true) ?(susp = false) ?(lowest = 0) () =
    MC.consider mc ~alive ~all_alive:all ~suspects_any:susp ~lowest
  in
  Alcotest.(check bool) "healthy fast path: no decision" true
    (consider () = None);
  Alcotest.(check bool) "suspicion + lowest alive: initiate" true
    (consider ~alive:2 ~all:false ~susp:true () = Some MC.Initiate_quorum);
  Alcotest.(check bool) "suspicion but not lowest: wait for announcement"
    true
    (consider ~alive:2 ~all:false ~susp:true ~lowest:1 () = None);
  ignore (MC.initiate_quorum mc);
  Alcotest.(check bool) "quorum holds while a peer is out" true
    (consider ~alive:2 ~all:false ~susp:true () = None);
  Alcotest.(check bool) "all back + sequencer: end the era" true
    (consider () = Some MC.Initiate_fast);
  (* below majority: stall once, then hold *)
  Alcotest.(check bool) "minority stalls" true
    (consider ~alive:1 ~all:false ~susp:true () = Some MC.Stall);
  MC.stall mc;
  Alcotest.(check bool) "stall is edge-triggered" true
    (consider ~alive:1 ~all:false ~susp:true () = None);
  Alcotest.(check bool) "majority back in quorum mode: unstall" true
    (consider ~alive:2 ~all:false ~susp:true () = Some MC.Unstall);
  MC.unstall mc;
  (* resuming the *fast* path from a stall needs every replica back *)
  ignore (MC.observe mc ~epoch:99 ~quorum:false ~seq:1 ~floor:10);
  MC.stall mc;
  Alcotest.(check bool) "fast-path unstall waits for all replicas" true
    (consider ~alive:2 ~all:false () = None);
  Alcotest.(check bool) "fast-path unstall once every replica is back" true
    (consider ~alive:3 ~all:true () = Some MC.Unstall)

(* ---- ordered-commit log (qcheck) ---- *)

(* However stores and commits interleave (commit-before-store included),
   draining [applyable] after every event yields each sequence number
   exactly once, in order, never before its payload arrived. *)
let log_no_drop_no_dup =
  QCheck.Test.make ~count:500 ~name:"log yields each qseq once, in order"
    QCheck.(pair (int_range 1 15) int)
    (fun (k, seed) ->
      let log = Quorum.Log.create ~n:3 ~epoch:1 in
      let events =
        List.concat_map (fun q -> [ `Store q; `Commit q ]) (List.init k Fun.id)
      in
      let rng = Random.State.make [| seed |] in
      let shuffled =
        List.map (fun e -> (Random.State.bits rng, e)) events
        |> List.sort compare |> List.map snd
      in
      let collected = ref [] in
      let drain () =
        List.iter
          (fun (q, p) ->
            if q <> p then QCheck.Test.fail_report "payload/qseq mismatch";
            collected := q :: !collected)
          (Quorum.Log.applyable log)
      in
      List.iter
        (fun e ->
          (match e with
          | `Store q -> Quorum.Log.store log ~qseq:q q
          | `Commit q -> Quorum.Log.commit log ~qseq:q);
          drain ())
        shuffled;
      drain ();
      List.rev !collected = List.init k Fun.id
      && Quorum.Log.drained log
      && Quorum.Log.missing log = [])

(* The sequencer side: however (possibly duplicated) acks arrive, the
   majority threshold fires exactly once per slot — the commit broadcast
   is never repeated and never skipped. *)
let log_majority_fires_once =
  QCheck.Test.make ~count:500 ~name:"majority threshold fires exactly once"
    QCheck.(pair (int_range 1 10) int)
    (fun (k, seed) ->
      let log = Quorum.Log.create ~n:5 ~epoch:1 in
      for q = 0 to k - 1 do
        ignore (Quorum.Log.append log ~me:0 q)
      done;
      let rng = Random.State.make [| seed |] in
      let acks =
        List.concat_map
          (fun q -> List.map (fun p -> (q, p)) [ 1; 2; 3; 4; 1; 2 ])
          (List.init k Fun.id)
        |> List.map (fun e -> (Random.State.bits rng, e))
        |> List.sort compare |> List.map snd
      in
      let commits = Array.make k 0 in
      List.iter
        (fun (q, p) ->
          if Quorum.Log.ack log ~qseq:q ~from:p then begin
            Quorum.Log.commit log ~qseq:q;
            commits.(q) <- commits.(q) + 1
          end)
        acks;
      Array.for_all (fun c -> c = 1) commits
      && List.map snd (Quorum.Log.applyable log) = List.init k Fun.id)

(* ---- end to end: in-process chaos under the fallback ---- *)

let fallback_cfg =
  (* a tight detector so the tests spend milliseconds, not seconds, in
     the pre-switch outage *)
  { Quorum.Config.default with hb_us = 2_000; suspect_after = 25 }

let quorum_entries r =
  List.filter (fun (_, q, _) -> q)
    r.Fault.Chaos_run.run.Runtime.Loadgen.mode_switches

let test_permanent_kill_linearizable () =
  (* One replica of three dies for good mid-load.  Without the fallback
     this plan cannot finish (the kill is forever); with it the surviving
     majority must switch to quorum mode within the detector timeout and
     the full history must verify — LINEARIZABLE, not excused. *)
  let kill_at = 60_000 in
  let plan = plan_of "crash(2)@60ms" ~seed:2 in
  let r =
    Fault.Chaos_run.run ~workload:kv ~n:3 ~d:2000 ~u:500
      ~fallback:fallback_cfg ~plan ~ops:200 ~seed:3 ()
  in
  Alcotest.(check bool) "linearizable under a permanent kill" true
    (Runtime.Loadgen.is_linearizable r.Fault.Chaos_run.run);
  Alcotest.(check bool) "run passes" true (Fault.Chaos_run.ok r);
  match quorum_entries r with
  | (t, _, _) :: _ ->
      Alcotest.(check bool) "switched after the kill, not before" true
        (t >= kill_at)
  | [] -> Alcotest.fail "no switch into quorum mode recorded"

let test_minority_partition_heals_linearizable () =
  (* A minority partition isolates one replica for 200 ms.  The majority
     side degrades to quorum mode and keeps serving; once the partition
     heals, the sequencer drains the era and the cluster re-enters the
     fast path.  The whole history must verify. *)
  let plan = plan_of "partition(0,1|2)@60ms-260ms" ~seed:5 in
  let r =
    Fault.Chaos_run.run ~workload:kv ~n:3 ~d:2000 ~u:500
      ~fallback:fallback_cfg ~plan ~ops:250 ~seed:9 ()
  in
  Alcotest.(check bool) "linearizable across the partition" true
    (Runtime.Loadgen.is_linearizable r.Fault.Chaos_run.run);
  Alcotest.(check bool) "run passes" true (Fault.Chaos_run.ok r);
  Alcotest.(check bool) "entered quorum mode" true (quorum_entries r <> []);
  match
    List.rev r.Fault.Chaos_run.run.Runtime.Loadgen.mode_switches
  with
  | (_, q, _) :: _ ->
      Alcotest.(check bool) "fast path re-entered after the heal" false q
  | [] -> Alcotest.fail "no mode switches recorded"

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "quorum"
    [
      ( "failure-detector",
        [
          Alcotest.test_case "boot grace and suspicion" `Quick
            test_fd_boot_grace_and_suspicion;
          Alcotest.test_case "knowledge horizon" `Quick
            test_fd_knowledge_horizon;
        ] );
      ( "mode-controller",
        [
          Alcotest.test_case "epoch discipline" `Quick
            test_mc_epoch_discipline;
          Alcotest.test_case "decision table" `Quick test_mc_decisions;
        ] );
      ("log", qsuite [ log_no_drop_no_dup; log_majority_fires_once ]);
      ( "fallback",
        [
          Alcotest.test_case "permanent kill stays linearizable" `Quick
            test_permanent_kill_linearizable;
          Alcotest.test_case "minority partition heals" `Quick
            test_minority_partition_heals_linearizable;
        ] );
    ]
