(* Tests for the observability subsystem: the event binary codec
   (roundtrip + truncation), the lock-free recorder under concurrent
   multi-domain writers (nothing lost without accounting), the trace-file
   sink (byte-for-byte reparse, append-across-restart, corrupt magic),
   span assembly, bound attribution with excusal windows, the strict JSON
   validator behind the Chrome export, and an end-to-end traced live run. *)

let ev ?(t = 0) ?(pid = 0) ?(trace = 0) ?(a = 0) ?(b = 0) kind =
  { Obs.Event.t_us = t; pid; kind; trace; a; b }

let all_kinds =
  [
    Obs.Event.Invoke; Obs.Event.Hold_set; Obs.Event.Broadcast; Obs.Event.Send;
    Obs.Event.Recv; Obs.Event.Deliver; Obs.Event.Apply; Obs.Event.Respond;
    Obs.Event.Mbox_depth; Obs.Event.Fault; Obs.Event.Drops;
    Obs.Event.Shed; Obs.Event.Queue_depth;
  ]

(* ---- event binary codec ---- *)

let event_gen =
  QCheck.Gen.(
    let* kind = oneofl all_kinds in
    let* t_us = frequency [ (4, big_nat); (1, map (fun n -> -n) big_nat) ] in
    let* pid = int_range (-1) 64 in
    let* trace = frequency [ (1, return 0); (4, int_bound ((1 lsl 56) - 1)) ] in
    let* a = int_bound 1_000_000 in
    let* b = int_bound 1_000_000 in
    return { Obs.Event.t_us; pid; kind; trace; a; b })

let event_arb = QCheck.make ~print:(Format.asprintf "%a" Obs.Event.pp) event_gen

let event_roundtrip =
  QCheck.Test.make ~count:500 ~name:"event encode/decode roundtrip"
    (QCheck.list_of_size QCheck.Gen.(1 -- 40) event_arb)
    (fun events ->
      let buf = Buffer.create 256 in
      List.iter (Obs.Event.encode buf) events;
      let s = Buffer.contents buf in
      let rec decode_all pos acc =
        match Obs.Event.decode s ~pos with
        | Some (e, next) -> decode_all next (e :: acc)
        | None -> (List.rev acc, pos)
      in
      let decoded, final = decode_all 0 [] in
      final = String.length s
      && List.length decoded = List.length events
      && List.for_all2 Obs.Event.equal events decoded)

let event_truncation =
  QCheck.Test.make ~count:300 ~name:"truncated events decode to None"
    QCheck.(pair event_arb pos_int)
    (fun (e, cut) ->
      let buf = Buffer.create 32 in
      Obs.Event.encode buf e;
      let s = Buffer.contents buf in
      let keep = cut mod String.length s in
      match Obs.Event.decode (String.sub s 0 keep) ~pos:0 with
      | None -> true
      | Some _ -> false)

(* ---- recorder under concurrent writers ---- *)

let sum_drops evs =
  List.fold_left
    (fun acc (e : Obs.Event.t) ->
      if e.kind = Obs.Event.Drops then acc + e.a else acc)
    0 evs

let test_recorder_multidomain () =
  let sink, contents = Obs.Recorder.memory_sink () in
  let r = Obs.Recorder.start ~capacity:1024 ~epoch_us:0 ~sink () in
  let producers = 4 and per = 5_000 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              ignore
                (Obs.Recorder.push r
                   (ev Obs.Event.Send ~t:i ~pid:p ~trace:((p * per) + i) ~a:p
                      ~b:i))
            done))
  in
  List.iter Domain.join doms;
  Obs.Recorder.stop r;
  let recorded, dropped = Obs.Recorder.stats r in
  let evs = contents () in
  let payload =
    List.filter (fun (e : Obs.Event.t) -> e.kind <> Obs.Event.Drops) evs
  in
  Alcotest.(check int)
    "every push is either recorded or counted dropped"
    (producers * per) (recorded + dropped);
  Alcotest.(check int) "sink saw exactly the recorded events" recorded
    (List.length payload);
  Alcotest.(check int) "Drops accounting events sum to the drop counter"
    dropped (sum_drops evs);
  (* No duplication, no invention: trace ids are unique and were pushed. *)
  let seen = Hashtbl.create 1024 in
  List.iter
    (fun (e : Obs.Event.t) ->
      if Hashtbl.mem seen e.trace then
        Alcotest.failf "trace %d drained twice" e.trace;
      if e.trace < 1 || e.trace > producers * per then
        Alcotest.failf "trace %d was never pushed" e.trace;
      Hashtbl.add seen e.trace ())
    payload

let test_recorder_overload_drops () =
  (* A tiny ring and a deliberately slow sink: producers must overrun it,
     and the overrun must be dropped-and-counted, never blocking. *)
  let drained = Atomic.make 0 in
  let sink _ =
    Atomic.incr drained;
    Thread.delay 0.0002
  in
  let r = Obs.Recorder.start ~capacity:4 ~epoch_us:0 ~sink () in
  let producers = 2 and per = 400 in
  let t0 = Prelude.Mclock.now_us () in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              ignore (Obs.Recorder.push r (ev Obs.Event.Send ~t:i ~pid:p))
            done))
  in
  List.iter Domain.join doms;
  let push_wall = Prelude.Mclock.now_us () - t0 in
  Obs.Recorder.stop r;
  let recorded, dropped = Obs.Recorder.stats r in
  Alcotest.(check int) "accounting closed" (producers * per)
    (recorded + dropped);
  Alcotest.(check bool) "overload produced counted drops" true (dropped > 0);
  (* Draining 800 events through this sink takes ≥ 160 ms; if producers
     had blocked on the full ring they'd have taken that long too. *)
  Alcotest.(check bool) "producers never blocked on the slow sink" true
    (push_wall < 100_000);
  (* The sink sees the recorded events plus the Drops accounting records. *)
  Alcotest.(check bool) "slow sink saw every recorded event" true
    (Atomic.get drained >= recorded)

(* ---- trace-file sink ---- *)

let test_file_sink_roundtrip () =
  let path = Filename.temp_file "timebounds" ".trace" in
  let batch1 =
    List.init 100 (fun i ->
        ev Obs.Event.Deliver ~t:(i * 3) ~pid:1 ~trace:(i + 1) ~a:2 ~b:i)
  in
  let batch2 =
    List.init 50 (fun i -> ev Obs.Event.Respond ~t:(1000 + i) ~pid:1 ~a:0 ~b:i)
  in
  let sink, _flush, close = Obs.Recorder.file_sink path in
  List.iter sink batch1;
  close ();
  (* A restarted replica appends to the same file — one magic, two lives. *)
  let sink2, _flush2, close2 = Obs.Recorder.file_sink path in
  List.iter sink2 batch2;
  close2 ();
  let back = Obs.Recorder.read_file path in
  Alcotest.(check int) "all events reparsed"
    (List.length batch1 + List.length batch2)
    (List.length back);
  Alcotest.(check bool) "byte-for-byte identical events" true
    (List.for_all2 Obs.Event.equal (batch1 @ batch2) back);
  (* A truncated tail (replica killed mid-write) ends the list cleanly. *)
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  let cut = String.sub bytes 0 (String.length bytes - 1) in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc cut);
  let partial = Obs.Recorder.read_file path in
  Alcotest.(check int) "truncated tail drops exactly the last event"
    (List.length batch1 + List.length batch2 - 1)
    (List.length partial);
  Sys.remove path;
  (* Not a trace file at all: loud failure, not garbage events. *)
  let bogus = Filename.temp_file "timebounds" ".trace" in
  Out_channel.with_open_bin bogus (fun oc ->
      Out_channel.output_string oc "definitely not a trace");
  (match Obs.Recorder.read_file bogus with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "bad magic must raise");
  Sys.remove bogus

(* ---- span assembly ---- *)

let test_span_assembly () =
  let tr = 42 in
  let events =
    [
      ev Obs.Event.Invoke ~t:0 ~pid:0 ~trace:tr ~a:Obs.Event.class_mutator;
      ev Obs.Event.Hold_set ~t:5 ~pid:0 ~trace:tr ~a:500;
      ev Obs.Event.Broadcast ~t:10 ~pid:0 ~trace:tr ~a:2;
      ev Obs.Event.Send ~t:12 ~pid:0 ~trace:tr ~a:1;
      ev Obs.Event.Send ~t:14 ~pid:0 ~trace:tr ~a:2;
      ev Obs.Event.Recv ~t:300 ~pid:1 ~trace:tr ~a:0;
      ev Obs.Event.Deliver ~t:350 ~pid:1 ~trace:tr ~a:0 ~b:3;
      ev Obs.Event.Apply ~t:360 ~pid:1 ~trace:tr ~a:0;
      ev Obs.Event.Recv ~t:400 ~pid:2 ~trace:tr ~a:0;
      ev Obs.Event.Deliver ~t:420 ~pid:2 ~trace:tr ~a:0;
      ev Obs.Event.Respond ~t:600 ~pid:0 ~trace:tr ~a:Obs.Event.class_mutator
        ~b:600;
      (* noise: untraced ambient sample plus a foreign incomplete trace *)
      ev Obs.Event.Mbox_depth ~t:100 ~pid:1 ~a:7;
      ev Obs.Event.Send ~t:50 ~pid:2 ~trace:77 ~a:0;
    ]
  in
  match Obs.Span.assemble events with
  | [ s ] ->
      Alcotest.(check int) "trace" tr s.Obs.Span.trace;
      Alcotest.(check int) "origin" 0 s.Obs.Span.origin;
      Alcotest.(check int) "class" Obs.Event.class_mutator s.Obs.Span.cls;
      Alcotest.(check bool) "complete" true (Obs.Span.complete s);
      Alcotest.(check (option int)) "latency" (Some 600) s.Obs.Span.latency_us;
      Alcotest.(check int) "hold" 500 s.Obs.Span.hold_us;
      (match s.Obs.Span.legs with
      | [ l1; l2 ] ->
          Alcotest.(check int) "leg 1 dst" 1 l1.Obs.Span.dst;
          Alcotest.(check (option int)) "leg 1 wire" (Some 288)
            (Obs.Span.wire_us l1);
          Alcotest.(check (option int)) "leg 1 remote queue" (Some 50)
            (Obs.Span.remote_queue_us l1);
          Alcotest.(check (option int)) "leg 1 apply" (Some 360)
            l1.Obs.Span.apply_us;
          Alcotest.(check int) "leg 2 dst" 2 l2.Obs.Span.dst;
          Alcotest.(check (option int)) "leg 2 wire" (Some 386)
            (Obs.Span.wire_us l2)
      | legs -> Alcotest.failf "expected 2 legs, got %d" (List.length legs))
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

(* ---- bound attribution ---- *)

let attribution_params = Core.Params.make ~n:3 ~d:1000 ~u:300 ~eps:200 ~x:0 ()

let span_events ~trace ~t0 ~latency ~cls =
  [
    ev Obs.Event.Invoke ~t:t0 ~pid:0 ~trace ~a:cls;
    ev Obs.Event.Respond ~t:(t0 + latency) ~pid:0 ~trace ~a:cls ~b:latency;
  ]

let verdict_of report trace =
  match
    List.find_opt
      (fun (c : Obs.Analyze.checked) -> c.span.Obs.Span.trace = trace)
      report.Obs.Analyze.spans
  with
  | Some c -> c.Obs.Analyze.verdict
  | None -> Alcotest.failf "trace %d missing from report" trace

let test_bound_attribution () =
  (* MOP bound here is ε + X = 200 µs; AOP and OOP are d + ε = 1200 µs. *)
  let events =
    span_events ~trace:1 ~t0:0 ~latency:150 ~cls:Obs.Event.class_mutator
    @ span_events ~trace:2 ~t0:5_000 ~latency:500 ~cls:Obs.Event.class_mutator
    @ span_events ~trace:3 ~t0:20_000 ~latency:900
        ~cls:Obs.Event.class_accessor
    @ [ ev Obs.Event.Invoke ~t:30_000 ~pid:1 ~trace:4 ~a:Obs.Event.class_other ]
  in
  let report = Obs.Analyze.check ~params:attribution_params events in
  Alcotest.(check int) "four spans" 4 report.Obs.Analyze.total;
  (match verdict_of report 1 with
  | Obs.Analyze.Within -> ()
  | _ -> Alcotest.fail "150 µs mutator is within ε + X");
  (match verdict_of report 2 with
  | Obs.Analyze.Violated over -> Alcotest.(check int) "overshoot" 300 over
  | _ -> Alcotest.fail "500 µs mutator violates ε + X = 200");
  (match verdict_of report 3 with
  | Obs.Analyze.Within -> ()
  | _ -> Alcotest.fail "900 µs accessor is within d + ε − X");
  (match verdict_of report 4 with
  | Obs.Analyze.Incomplete -> ()
  | _ -> Alcotest.fail "no response means Incomplete");
  Alcotest.(check int) "one unexcused violation" 1
    report.Obs.Analyze.violations;
  Alcotest.(check int) "one incomplete" 1 report.Obs.Analyze.incomplete;
  (* Grace absorbs the overshoot... *)
  let lenient =
    Obs.Analyze.check ~params:attribution_params ~grace_us:300 events
  in
  Alcotest.(check int) "grace absorbs the overshoot" 0
    lenient.Obs.Analyze.violations;
  (* ...and an assumption-violation window overlapping the span excuses it
     instead of counting it. *)
  let excused =
    Obs.Analyze.check ~params:attribution_params
      ~windows:[ ("spike", 4_900, 5_200) ]
      events
  in
  (match verdict_of excused 2 with
  | Obs.Analyze.Excused w -> Alcotest.(check string) "window label" "spike" w
  | _ -> Alcotest.fail "overlapping window must excuse the violation");
  Alcotest.(check int) "excused, not violated" 0
    excused.Obs.Analyze.violations;
  Alcotest.(check int) "excused counted" 1 excused.Obs.Analyze.excused;
  (* A window that does not overlap excuses nothing. *)
  let disjoint =
    Obs.Analyze.check ~params:attribution_params
      ~windows:[ ("spike", 100_000, 200_000) ]
      events
  in
  Alcotest.(check int) "disjoint window excuses nothing" 1
    disjoint.Obs.Analyze.violations

(* ---- overload: shed excusal, counters, exports ---- *)

let test_shed_excusal_and_exports () =
  (* A span whose trace carries a [Shed] event completed only after a
     refusal round-trip plus client backoff, so the analyzer excuses it
     from the bound check — but counts every shed by reason and every
     lane high-water mark, so nothing disappears from the report. *)
  let events =
    span_events ~trace:1 ~t0:0 ~latency:150 ~cls:Obs.Event.class_mutator
    (* trace 2: shed at admission, replayed, finished way over ε + X *)
    @ [
        ev Obs.Event.Shed ~t:5_100 ~pid:1 ~trace:2
          ~a:Obs.Event.shed_admission;
      ]
    @ span_events ~trace:2 ~t0:5_000 ~latency:5_000
        ~cls:Obs.Event.class_mutator
    (* an untraced deadline shed still counts by reason *)
    @ [
        ev Obs.Event.Shed ~t:6_000 ~pid:2 ~a:Obs.Event.shed_deadline;
        ev Obs.Event.Queue_depth ~t:100 ~pid:0 ~a:Obs.Event.lane_data ~b:5;
        ev Obs.Event.Queue_depth ~t:200 ~pid:0 ~a:Obs.Event.lane_data ~b:9;
        ev Obs.Event.Queue_depth ~t:300 ~pid:1 ~a:Obs.Event.lane_ctrl ~b:2;
      ]
  in
  let report = Obs.Analyze.check ~params:attribution_params events in
  (match verdict_of report 1 with
  | Obs.Analyze.Within -> ()
  | _ -> Alcotest.fail "unshed trace is checked normally");
  (match verdict_of report 2 with
  | Obs.Analyze.Excused label ->
      Alcotest.(check string) "excused as shed" "shed" label
  | _ -> Alcotest.fail "shed trace must be excused, not violated");
  Alcotest.(check int) "no unexcused violations" 0
    report.Obs.Analyze.violations;
  Alcotest.(check int) "one shed span" 1 report.Obs.Analyze.shed_spans;
  Alcotest.(check (list (pair string int)))
    "sheds by reason"
    [ ("deadline", 1); ("admission", 1) ]
    report.Obs.Analyze.sheds;
  Alcotest.(check (list (pair string int)))
    "lane high-water marks"
    [ ("ctrl", 2); ("data", 9) ]
    report.Obs.Analyze.lane_hwm;
  (* both exports carry the new counters and stay well-formed *)
  let chrome = Obs.Export.chrome ~report ~events in
  (match Obs.Json.validate chrome with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome export invalid: %s" e);
  let contains_sub hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i =
      i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "chrome has shed instants" true
    (contains_sub chrome "shed:admission");
  Alcotest.(check bool) "chrome has lane counters" true
    (contains_sub chrome "lane:data");
  let prom = Obs.Export.prometheus ~report () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " exported") true
        (contains_sub prom needle))
    [
      "timebounds_shed_total{reason=\"deadline\"} 1";
      "timebounds_shed_total{reason=\"admission\"} 1";
      "timebounds_queue_depth{lane=\"ctrl\"} 2";
      "timebounds_queue_depth{lane=\"data\"} 9";
    ];
  (* a shed-free report still exports the counter, at zero *)
  let clean =
    Obs.Analyze.check ~params:attribution_params
      (span_events ~trace:9 ~t0:0 ~latency:100 ~cls:Obs.Event.class_mutator)
  in
  Alcotest.(check bool) "zero line when nothing shed" true
    (contains_sub (Obs.Export.prometheus ~report:clean ()) "timebounds_shed_total 0")

(* ---- JSON validator ---- *)

let test_json_validator () =
  let ok s =
    match Obs.Json.validate s with
    | Ok () -> ()
    | Error e -> Alcotest.failf "%S should validate: %s" s e
  in
  let bad s =
    match Obs.Json.validate s with
    | Ok () -> Alcotest.failf "%S should be rejected" s
    | Error _ -> ()
  in
  ok {|{}|};
  ok {|[]|};
  ok {|{"a":[1,-2.5e-3,"xA\n",true,false,null],"b":{"c":[[]]}}|};
  ok {| [ 0 , 1.5 , "\"\\\/" ] |};
  bad {||};
  bad {|{"a":1,}|};
  bad {|[1 2]|};
  bad {|{a:1}|};
  bad {|"unterminated|};
  bad {|[NaN]|};
  bad {|01|};
  bad {|1.|};
  bad {|{} trailing|};
  bad "[\"ctrl\x01char\"]"

(* ---- end-to-end: a traced live run ---- *)

let test_traced_live_run () =
  let module Gen = Runtime.Loadgen.Make (Runtime.Workloads.Register_live) in
  let sink, contents = Obs.Recorder.memory_sink () in
  let r = Obs.Recorder.start ~epoch_us:(Prelude.Mclock.now_us ()) ~sink () in
  Obs.Recorder.install r;
  let ops = 24 in
  let run = Gen.run ~n:3 ~d:2000 ~u:500 ~ops ~seed:3 () in
  Obs.Recorder.uninstall ();
  Obs.Recorder.stop r;
  Alcotest.(check bool) "run linearizable" true
    (Runtime.Loadgen.is_linearizable run);
  let events = contents () in
  (* Generous grace: this asserts the plumbing (every op traced, spans
     complete, exports well-formed), not the timing of a loaded CI box. *)
  let report =
    Obs.Analyze.check ~params:run.Runtime.Loadgen.params ~grace_us:60_000_000
      events
  in
  Alcotest.(check int) "every operation became a span" ops
    report.Obs.Analyze.total;
  Alcotest.(check int) "all spans complete" 0 report.Obs.Analyze.incomplete;
  Alcotest.(check int) "nothing violates with generous grace" 0
    report.Obs.Analyze.violations;
  Alcotest.(check bool) "some class stats" true
    (report.Obs.Analyze.classes <> []);
  (* Mutator spans fan out to both peers in a 3-replica cluster. *)
  let mutator_with_legs =
    List.exists
      (fun (c : Obs.Analyze.checked) ->
        c.span.Obs.Span.cls = Obs.Event.class_mutator
        && List.length c.span.Obs.Span.legs = 2)
      report.Obs.Analyze.spans
  in
  Alcotest.(check bool) "a mutator span has both wire legs" true
    mutator_with_legs;
  let chrome = Obs.Export.chrome ~report ~events in
  (match Obs.Json.validate chrome with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome export invalid: %s" e);
  let prom =
    Obs.Export.prometheus ~report ~recorder:(Obs.Recorder.stats r) ()
  in
  let contains_sub hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prometheus has ops counter" true
    (contains_sub prom "timebounds_ops_total");
  Alcotest.(check bool) "prometheus has bound gauge" true
    (contains_sub prom "timebounds_bound_us")

(* ---- trace ids ---- *)

let test_trace_ids () =
  let a = Obs.Trace_id.fresh ~origin:3 in
  let b = Obs.Trace_id.fresh ~origin:3 in
  let c = Obs.Trace_id.fresh ~origin:9 in
  Alcotest.(check bool) "fresh ids are distinct" true (a <> b && b <> c);
  Alcotest.(check int) "origin recovered" 3 (Obs.Trace_id.origin a);
  Alcotest.(check int) "origin recovered" 9 (Obs.Trace_id.origin c);
  Alcotest.(check bool) "never the null id" true
    (a <> Obs.Trace_id.none && b <> Obs.Trace_id.none)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "obs"
    [
      ("event-codec", qsuite [ event_roundtrip; event_truncation ]);
      ( "recorder",
        [
          Alcotest.test_case "multi-domain writers, full accounting" `Quick
            test_recorder_multidomain;
          Alcotest.test_case "overload drops are counted, never block" `Quick
            test_recorder_overload_drops;
          Alcotest.test_case "file sink roundtrip + append + corruption"
            `Quick test_file_sink_roundtrip;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "span assembly" `Quick test_span_assembly;
          Alcotest.test_case "bound attribution + excusal" `Quick
            test_bound_attribution;
          Alcotest.test_case "shed excusal, counters, exports" `Quick
            test_shed_excusal_and_exports;
          Alcotest.test_case "trace ids" `Quick test_trace_ids;
        ] );
      ("json", [ Alcotest.test_case "validator" `Quick test_json_validator ]);
      ( "e2e",
        [
          Alcotest.test_case "traced live run" `Quick test_traced_live_run;
        ] );
    ]
