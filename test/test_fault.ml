(* The chaos layer's own contract:

   - the plan parser is total and the compiled decision function is pure
     (same seed + coordinates ⇒ same fault), which is what makes seeded
     chaos runs reproducible bit-for-bit;
   - a no-fault [Chaos_transport] is observationally identical to the
     transport it wraps;
   - injected assumption violations are *excused* by the monitor, never
     reported as genuine safety bugs — and a linearizable run under faults
     is reported as "safety held while assumptions held". *)

let plan_of spec ~seed =
  match Fault.Fault_plan.compile ~seed ~spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "compile %S: %s" spec e

(* ---- parsing ---- *)

let parse_total =
  QCheck.Test.make ~count:2000 ~name:"parse never raises"
    QCheck.(string_of_size Gen.(0 -- 80))
    (fun s ->
      match Fault.Fault_plan.parse s with Ok _ | Error _ -> true)

let test_parse_grammar () =
  let ok spec =
    match Fault.Fault_plan.parse spec with
    | Ok rules -> rules
    | Error e -> Alcotest.failf "parse %S: %s" spec e
  in
  let err spec =
    match Fault.Fault_plan.parse spec with
    | Ok _ -> Alcotest.failf "parse %S should fail" spec
    | Error _ -> ()
  in
  (match ok "drop(30)/0>1@0.2s-600ms; spike(3ms); crash(1)@50000" with
  | [ r0; r1; r2 ] ->
      Alcotest.(check bool)
        "drop kind" true
        (r0.Fault.Fault_plan.kind = Fault.Fault_plan.Drop 30);
      Alcotest.(check bool)
        "drop link" true
        (r0.Fault.Fault_plan.link
        = { Fault.Fault_plan.from_ = Some 0; to_ = Some 1 });
      Alcotest.(check int) "window from (s suffix)" 200_000
        r0.Fault.Fault_plan.from_us;
      Alcotest.(check int) "window until (ms suffix)" 600_000
        r0.Fault.Fault_plan.until_us;
      Alcotest.(check bool)
        "spike µs" true
        (r1.Fault.Fault_plan.kind = Fault.Fault_plan.Delay_spike 3_000);
      Alcotest.(check int) "whole-run window" 0 r1.Fault.Fault_plan.from_us;
      Alcotest.(check bool)
        "crash pid" true
        (r2.Fault.Fault_plan.kind = Fault.Fault_plan.Crash 1);
      Alcotest.(check int) "bare-µs time" 50_000 r2.Fault.Fault_plan.from_us
  | rules -> Alcotest.failf "expected 3 rules, got %d" (List.length rules));
  (match ok "partition(0|1,2)" with
  | [ r ] ->
      Alcotest.(check bool)
        "partition groups" true
        (r.Fault.Fault_plan.kind = Fault.Fault_plan.Partition ([ 0 ], [ 1; 2 ]))
  | _ -> Alcotest.fail "partition parse");
  Alcotest.(check bool) "empty spec is empty plan" true (ok "" = []);
  err "drop(130)" (* percent out of range *);
  err "explode(3)" (* unknown fault *);
  err "drop(10)@3s-1s" (* window ends before start *);
  err "partition(0,1|1,2)" (* overlapping groups *);
  err "drop(10)x" (* trailing junk *);
  err "skew(1)" (* missing offset *)

let test_crash_pairing () =
  let p = plan_of "crash(1)@0.4s;restart(1)@0.9s;crash(2)@0.1s" ~seed:1 in
  Alcotest.(check (list (triple int int int)))
    "crash schedule (sorted, open crash = max_int)"
    [ (2, 100_000, max_int); (1, 400_000, 900_000) ]
    (Fault.Fault_plan.crash_schedule p);
  (* the compiled crash rule is capped at its restart, so [decide] stops
     isolating pid 1 once it is back *)
  let d_at t =
    Fault.Fault_plan.decide p ~now_us:t ~src:0 ~dst:1 ~index:0
  in
  Alcotest.(check bool) "before crash: delivered" true
    ((d_at 100_000).Fault.Fault_plan.drop = None);
  Alcotest.(check bool) "during outage: isolated" true
    ((d_at 500_000).Fault.Fault_plan.drop <> None);
  Alcotest.(check bool) "after restart: delivered" true
    ((d_at 950_000).Fault.Fault_plan.drop = None)

let test_windows_and_skews () =
  let p = plan_of "spike(2ms)@0.1s-0.2s;skew(2,5ms);restart(0)@1s" ~seed:3 in
  (match Fault.Fault_plan.windows p with
  | [ (_, f, u); (_, sf, su) ] ->
      (* spike window stretched by the injected maximum *)
      Alcotest.(check int) "spike from" 100_000 f;
      Alcotest.(check int) "spike until + extra" 202_000 u;
      Alcotest.(check int) "skew whole-run from" 0 sf;
      Alcotest.(check bool) "skew open-ended" true (su = max_int)
  | w -> Alcotest.failf "expected 2 windows (restart has none), got %d"
           (List.length w));
  Alcotest.(check (array int))
    "skews vector" [| 0; 0; 5_000 |]
    (Fault.Fault_plan.skews p ~n:3)

(* ---- decision purity / reproducibility ---- *)

let decide_pure =
  QCheck.Test.make ~count:500
    ~name:"decide is a pure function of (seed, rule, link, index)"
    QCheck.(quad small_nat small_nat (int_bound 5) (int_bound 1000))
    (fun (seed, now, src, index) ->
      let spec = "drop(50);jitter(2ms);dup(30);spike(500us)@0-1s" in
      let p1 = plan_of spec ~seed in
      let p2 = plan_of spec ~seed in
      let d1 = Fault.Fault_plan.decide p1 ~now_us:now ~src ~dst:(src + 1) ~index in
      let d2 = Fault.Fault_plan.decide p2 ~now_us:now ~src ~dst:(src + 1) ~index in
      d1 = d2)

let decide_seed_sensitivity () =
  (* different seeds must give different fault sequences (sanity: the seed
     actually reaches the hash) *)
  let outcomes seed =
    let p = plan_of "drop(50)" ~seed in
    List.init 64 (fun i ->
        (Fault.Fault_plan.decide p ~now_us:0 ~src:0 ~dst:1 ~index:i)
          .Fault.Fault_plan.drop
        <> None)
  in
  Alcotest.(check bool)
    "seeds 1 and 2 disagree somewhere" true
    (outcomes 1 <> outcomes 2)

(* ---- chaos transport ---- *)

(* A minimal in-process transport: n mailboxes, synchronous delivery. *)
let toy_transport n =
  let boxes = Array.init n (fun _ -> Runtime.Mailbox.create ()) in
  let sent = Atomic.make 0 in
  let deliver ~src ~dst msg =
    Runtime.Mailbox.put boxes.(dst)
      ~deliver_at:(Prelude.Mclock.now_us ())
      (src, msg)
  in
  {
    Runtime.Transport_intf.n;
    send =
      (fun ~src ~dst ~trace:_ msg ->
        Atomic.incr sent;
        deliver ~src ~dst msg);
    post = deliver;
    recv = (fun ~me ~deadline -> Runtime.Mailbox.take boxes.(me) ~deadline);
    depth = (fun ~me -> Runtime.Mailbox.length boxes.(me));
    stats =
      (fun () ->
        {
          Runtime.Transport_intf.sent = Atomic.get sent;
          dropped = 0;
          link = None;
        });
    close = (fun () -> ());
  }

let drain t ~me =
  let rec go acc =
    match
      Runtime.Transport_intf.recv t ~me
        ~deadline:(Some (Prelude.Mclock.now_us ()))
    with
    | Some item -> go (item :: acc)
    | None -> List.rev acc
  in
  go []

(* Wrapping with a plan that injects nothing must not change what any
   endpoint receives — for the empty plan (the wrapper short-circuits) and
   for a non-empty plan none of whose rules fire (the full chaos path). *)
let no_fault_transparent =
  QCheck.Test.make ~count:60
    ~name:"no-fault chaos transport is observationally identical"
    QCheck.(pair (int_bound 1000) (list_of_size Gen.(1 -- 40) small_nat))
    (fun (seed, payloads) ->
      let n = 3 in
      let run plan =
        let chaos = Fault.Chaos_transport.create plan in
        let inner = toy_transport n in
        let t =
          (Fault.Chaos_transport.wrapper chaos).Runtime.Transport_intf.wrap
            ~start_us:(Prelude.Mclock.now_us ())
            inner
        in
        List.iteri
          (fun i p ->
            let src = i mod n in
            Runtime.Transport_intf.send t ~src ~dst:((src + 1) mod n) p)
          payloads;
        let got = List.init n (fun me -> drain t ~me) in
        Runtime.Transport_intf.close t;
        got
      in
      let bare = run (Fault.Fault_plan.empty ~seed) in
      let inert = run (plan_of "drop(0);dup(0);spike(0us);jitter(0ms)" ~seed) in
      bare = inert)

let test_chaos_transport_drops_and_logs () =
  let plan = plan_of "drop(100)/0>1" ~seed:9 in
  let chaos = Fault.Chaos_transport.create plan in
  let inner = toy_transport 3 in
  let t =
    (Fault.Chaos_transport.wrapper chaos).Runtime.Transport_intf.wrap
      ~start_us:(Prelude.Mclock.now_us ())
      inner
  in
  for _ = 1 to 5 do
    Runtime.Transport_intf.send t ~src:0 ~dst:1 42
  done;
  Runtime.Transport_intf.send t ~src:0 ~dst:2 43;
  Alcotest.(check (list (pair int int))) "0>1 fully dropped" [] (drain t ~me:1);
  Alcotest.(check (list (pair int int)))
    "0>2 untouched"
    [ (0, 43) ]
    (drain t ~me:2);
  let drops, dups, delays = Fault.Chaos_transport.injected chaos in
  Alcotest.(check (triple int int int)) "injection counters" (5, 0, 0)
    (drops, dups, delays);
  let s = Runtime.Transport_intf.stats t in
  Alcotest.(check int) "drops visible in stats" 5
    s.Runtime.Transport_intf.dropped;
  Alcotest.(check int) "sent includes dropped" 6 s.Runtime.Transport_intf.sent;
  Alcotest.(check int) "log has one event per fault" 5
    (List.length (Fault.Chaos_transport.events chaos));
  Runtime.Transport_intf.close t

(* ---- end-to-end chaos runs (in-process cluster) ---- *)

let kv = Runtime.Workloads.kv_map

let test_partition_heals_never_genuine () =
  (* A mid-run partition loses protocol messages for good (Algorithm 1 has
     no retransmission), so the verdict may be VIOLATION — but the monitor
     must file it as excused chaos fallout, never as a genuine bug. *)
  let plan = plan_of "partition(0|1,2)@10ms-250ms" ~seed:5 in
  let r =
    Fault.Chaos_run.run ~workload:kv ~n:3 ~d:2000 ~u:500 ~mix:(60, 30, 10)
      ~plan ~ops:200 ~seed:11 ()
  in
  let drops, _, _ = r.Fault.Chaos_run.injected in
  Alcotest.(check bool) "partition actually dropped messages" true (drops > 0);
  Alcotest.(check bool) "violations declared" true
    (r.Fault.Chaos_run.violations <> []);
  (match r.Fault.Chaos_run.assessment with
  | Fault.Assumption_monitor.Genuine _ ->
      Alcotest.fail "partition fallout misfiled as a genuine violation"
  | _ -> ());
  Alcotest.(check bool) "chaos harness passes the run" true
    (Fault.Chaos_run.ok r)

let test_crash_restart_in_process () =
  let plan = plan_of "crash(1)@60ms;restart(1)@200ms" ~seed:2 in
  let r =
    Fault.Chaos_run.run ~workload:kv ~n:3 ~d:2000 ~u:500 ~plan ~ops:200
      ~seed:3 ()
  in
  (* the crashed replica is isolated for the window, so messages died *)
  let drops, _, _ = r.Fault.Chaos_run.injected in
  Alcotest.(check bool) "outage dropped messages" true (drops > 0);
  (match r.Fault.Chaos_run.assessment with
  | Fault.Assumption_monitor.Genuine _ ->
      Alcotest.fail "crash fallout misfiled as genuine"
  | _ -> ());
  Alcotest.(check bool) "run passes" true (Fault.Chaos_run.ok r)

let test_fault_free_chaos_is_linearizable () =
  (* Under an inert plan the chaos harness must agree with a plain live
     run: linearizable, no violations, "assumptions held". *)
  let plan = plan_of "drop(0)" ~seed:1 in
  let r =
    Fault.Chaos_run.run ~workload:kv ~n:3 ~d:2000 ~u:500 ~plan ~ops:150
      ~seed:7 ()
  in
  Alcotest.(check bool) "linearizable" true
    (Runtime.Loadgen.is_linearizable r.Fault.Chaos_run.run);
  Alcotest.(check bool) "no violation windows" true
    (r.Fault.Chaos_run.violations = []);
  match r.Fault.Chaos_run.assessment with
  | Fault.Assumption_monitor.Safety_held { faulted = false } -> ()
  | a ->
      Alcotest.failf "expected clean Safety_held, got %s"
        (Format.asprintf "%a" Fault.Assumption_monitor.pp_assessment a)

let test_crash_recovery_linearizable () =
  (* Same plan as the isolation test, but with the durability machinery
     on: the crashed replica freezes instead of losing state, catches up
     from its peers at restart, and clients replay timed-out operations
     under their op ids.  The run must now end LINEARIZABLE — checked,
     not excused. *)
  let plan = plan_of "crash(1)@60ms;restart(1)@200ms" ~seed:2 in
  let r =
    Fault.Chaos_run.run ~workload:kv ~n:3 ~d:2000 ~u:500 ~plan ~recovery:true
      ~ops:200 ~seed:3 ()
  in
  Alcotest.(check bool) "linearizable with recovery enabled" true
    (Runtime.Loadgen.is_linearizable r.Fault.Chaos_run.run);
  (match r.Fault.Chaos_run.assessment with
  | Fault.Assumption_monitor.Safety_held _ -> ()
  | a ->
      Alcotest.failf "expected Safety_held, got %s"
        (Format.asprintf "%a" Fault.Assumption_monitor.pp_assessment a));
  Alcotest.(check bool) "run passes" true (Fault.Chaos_run.ok r)

let test_seeded_runs_reproduce () =
  (* The acceptance bar: same seed ⇒ the same injected-fault log, down to
     the per-link message indices.  One worker keeps the per-link send
     sequence deterministic; the canonical log excludes wall-clock times. *)
  let go () =
    let plan = plan_of "drop(30);dup(20)" ~seed:21 in
    let r =
      Fault.Chaos_run.run ~workload:kv ~n:3 ~d:2000 ~u:500 ~workers:1
        ~mix:(100, 0, 0) ~plan ~ops:80 ~seed:13 ()
    in
    r.Fault.Chaos_run.canonical
  in
  let a = go () and b = go () in
  Alcotest.(check bool) "faults were injected" true (a <> []);
  Alcotest.(check (list string)) "canonical fault logs identical" a b

(* ---- flood (overload) ---- *)

let test_flood_parse_and_decide () =
  (match Fault.Fault_plan.parse "flood(10)@0.2s-0.6s" with
  | Ok [ r ] ->
      Alcotest.(check bool)
        "flood kind" true
        (r.Fault.Fault_plan.kind = Fault.Fault_plan.Flood 10);
      Alcotest.(check int) "window from" 200_000 r.Fault.Fault_plan.from_us;
      Alcotest.(check int) "window until" 600_000 r.Fault.Fault_plan.until_us
  | Ok rules -> Alcotest.failf "expected 1 rule, got %d" (List.length rules)
  | Error e -> Alcotest.failf "parse flood: %s" e);
  let err spec =
    match Fault.Fault_plan.parse spec with
    | Ok _ -> Alcotest.failf "parse %S should fail" spec
    | Error _ -> ()
  in
  err "flood(0)" (* factor below 1 *);
  err "flood(x)" (* not a number *);
  err "flood()" (* missing factor *);
  (* decide: ×K copies inside the window, untouched outside — and
     deterministic (no per-message randomness to keep seeds relevant) *)
  let p = plan_of "flood(8)@0.1s-0.3s" ~seed:4 in
  let copies_at t =
    (Fault.Fault_plan.decide p ~now_us:t ~src:0 ~dst:1 ~index:0)
      .Fault.Fault_plan.copies
  in
  Alcotest.(check int) "before window: 1 copy" 1 (copies_at 50_000);
  Alcotest.(check int) "inside window: K copies" 8 (copies_at 200_000);
  Alcotest.(check int) "after window: 1 copy" 1 (copies_at 400_000);
  (* the monitor files the whole flood window as an assumption violation *)
  let params = Core.Params.make ~n:3 ~d:7000 ~u:6000 ~eps:400 ~x:0 () in
  let windows =
    Fault.Assumption_monitor.violations ~plan:p ~params ~net_d:2000
      ~offsets:[| 0; 0; 0 |] ()
  in
  Alcotest.(check int) "flood window is a violation window" 1
    (List.length windows)

let fallback_cfg =
  (* same tight detector as test_quorum: milliseconds, not seconds *)
  { Quorum.Config.default with hb_us = 2_000; suspect_after = 25 }

let test_flood_no_false_suspicions () =
  (* ISSUE acceptance: a 3-replica cluster under ×8 message amplification
     with the failure detector armed must keep heartbeats flowing — zero
     false suspicions, zero mode switches — because control frames are
     never queued behind the data flood.  The in-process transport has no
     lanes, but the mailbox path and the detector cadence must still
     absorb the amplification.  Sheds (if any) are retried by the
     idempotent clients, so the run must stay linearizable or excused. *)
  let sink, contents = Obs.Recorder.memory_sink () in
  let rec_ = Obs.Recorder.start ~epoch_us:(Prelude.Mclock.now_us ()) ~sink () in
  Obs.Recorder.install rec_;
  let plan = plan_of "flood(8)@30ms-200ms" ~seed:6 in
  let r =
    Fault.Chaos_run.run ~workload:kv ~n:3 ~d:2000 ~u:500
      ~fallback:fallback_cfg ~plan ~ops:200 ~seed:17 ()
  in
  Obs.Recorder.uninstall ();
  Obs.Recorder.stop rec_;
  let _, dups, _ = r.Fault.Chaos_run.injected in
  Alcotest.(check bool) "flood actually amplified traffic" true (dups > 0);
  let false_suspicions =
    List.length
      (List.filter
         (fun (e : Obs.Event.t) -> e.kind = Obs.Event.Suspect && e.b = 1)
         (contents ()))
  in
  Alcotest.(check int) "zero false suspicions under flood" 0 false_suspicions;
  Alcotest.(check (list (triple int bool int)))
    "no mode switches (fast path held)" []
    r.Fault.Chaos_run.run.Runtime.Loadgen.mode_switches;
  (match r.Fault.Chaos_run.assessment with
  | Fault.Assumption_monitor.Genuine _ ->
      Alcotest.fail "flood fallout misfiled as genuine"
  | _ -> ());
  Alcotest.(check bool) "run passes" true (Fault.Chaos_run.ok r)

(* ---- assumption monitor ---- *)

let test_assess_correlation () =
  let w label f u =
    { Fault.Assumption_monitor.label; v_from_us = f; v_until_us = u }
  in
  let violations = [ w "spike#0" 100_000 200_000 ] in
  let cuts = [ 50_000; 150_000; 300_000 ] in
  let assess segment =
    Fault.Assumption_monitor.assess ~violations ~cuts
      ~verdict:(Runtime.Loadgen.Violation { segment; reason = "r" })
  in
  (* segment 0 ends at 50 ms, before the window opens: a real bug *)
  (match assess 0 with
  | Fault.Assumption_monitor.Genuine { segment = 0; _ } -> ()
  | a ->
      Alcotest.failf "segment 0 should be genuine, got %s"
        (Format.asprintf "%a" Fault.Assumption_monitor.pp_assessment a));
  (* segment 1 ends at 150 ms, inside the tainted suffix *)
  (match assess 1 with
  | Fault.Assumption_monitor.Excused _ -> ()
  | _ -> Alcotest.fail "segment 1 should be excused");
  (* segment 3 (past the last cut) is tainted too: no resynchronisation *)
  (match assess 3 with
  | Fault.Assumption_monitor.Excused _ -> ()
  | _ -> Alcotest.fail "trailing segment should be excused");
  (match
     Fault.Assumption_monitor.assess ~violations:[] ~cuts
       ~verdict:(Runtime.Loadgen.Violation { segment = 1; reason = "r" })
   with
  | Fault.Assumption_monitor.Genuine _ -> ()
  | _ -> Alcotest.fail "violation with no faults must be genuine");
  match
    Fault.Assumption_monitor.assess ~violations ~cuts
      ~verdict:(Runtime.Loadgen.Linearizable 4)
  with
  | Fault.Assumption_monitor.Safety_held { faulted = true } -> ()
  | _ -> Alcotest.fail "linearizable under faults = safety held while faulted"

let test_violation_windows_respect_slack () =
  (* a spike smaller than the slack keeps delays within the assumed d:
     no violation window; a larger one crosses it *)
  let params = Core.Params.make ~n:3 ~d:7000 ~u:6000 ~eps:400 ~x:0 () in
  let offsets = [| 0; 100; 300 |] in
  let windows spec =
    Fault.Assumption_monitor.violations ~plan:(plan_of spec ~seed:1) ~params
      ~net_d:2000 ~offsets ()
  in
  Alcotest.(check int) "3ms spike absorbed by slack" 0
    (List.length (windows "spike(3ms)"));
  Alcotest.(check int) "8ms spike violates" 1
    (List.length (windows "spike(8ms)"));
  (* skew beyond ε is detected from the effective offsets *)
  let skewed =
    Fault.Assumption_monitor.violations ~plan:(plan_of "skew(2,5ms)" ~seed:1)
      ~params ~net_d:2000
      ~offsets:[| 0; 100; 5300 |]
      ()
  in
  Alcotest.(check int) "offset spread past ε violates" 1 (List.length skewed)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        qsuite [ parse_total; decide_pure ]
        @ [
            Alcotest.test_case "grammar" `Quick test_parse_grammar;
            Alcotest.test_case "crash/restart pairing" `Quick
              test_crash_pairing;
            Alcotest.test_case "windows and skews" `Quick
              test_windows_and_skews;
            Alcotest.test_case "seed sensitivity" `Quick
              decide_seed_sensitivity;
          ] );
      ( "transport",
        qsuite [ no_fault_transparent ]
        @ [
            Alcotest.test_case "drops are injected and logged" `Quick
              test_chaos_transport_drops_and_logs;
          ] );
      ( "monitor",
        [
          Alcotest.test_case "verdict correlation" `Quick
            test_assess_correlation;
          Alcotest.test_case "violation windows respect slack" `Quick
            test_violation_windows_respect_slack;
        ] );
      ( "chaos-run",
        [
          Alcotest.test_case "fault-free plan stays linearizable" `Quick
            test_fault_free_chaos_is_linearizable;
          Alcotest.test_case "partition heals, never genuine" `Quick
            test_partition_heals_never_genuine;
          Alcotest.test_case "crash/restart isolation" `Quick
            test_crash_restart_in_process;
          Alcotest.test_case "crash/restart with recovery linearizes" `Quick
            test_crash_recovery_linearizable;
          Alcotest.test_case "seeded runs reproduce bit-for-bit" `Quick
            test_seeded_runs_reproduce;
        ] );
      ( "flood",
        [
          Alcotest.test_case "parse, decide, violation window" `Quick
            test_flood_parse_and_decide;
          Alcotest.test_case "no false suspicions under x8 flood" `Quick
            test_flood_no_false_suspicions;
        ] );
    ]
