(* Tests for the live runtime: histogram bucketing/percentile/merge math,
   the delivery-ordered mailbox, workload sampler classification, and full
   live executions — Algorithm 1 replicas on real domains for three sample
   data types, with the post-hoc segmented linearizability verdict.

   Live timing parameters are deliberately slack-heavy: on a loaded CI
   machine a domain can lose the CPU for milliseconds, and the assertions
   here must hold under any scheduling, not just a quiet one. *)

(* ---- histogram ---- *)

let test_hist_buckets () =
  (* exact unit buckets below 16 *)
  for v = 0 to 15 do
    Alcotest.(check (pair int int))
      (Printf.sprintf "bucket of %d is exact" v)
      (v, v)
      (Runtime.Histogram.bucket_bounds (Runtime.Histogram.bucket_of v))
  done;
  (* every value lies inside its bucket's bounds, and bounds tile without
     overlap: the next bucket starts right after this one ends *)
  List.iter
    (fun v ->
      let lo, hi = Runtime.Histogram.bucket_bounds (Runtime.Histogram.bucket_of v) in
      Alcotest.(check bool)
        (Printf.sprintf "%d in [%d, %d]" v lo hi)
        true
        (lo <= v && v <= hi);
      (* ~6 % relative width *)
      Alcotest.(check bool)
        (Printf.sprintf "bucket of %d is narrow" v)
        true
        (hi - lo <= max 1 (v / 8)))
    [ 16; 17; 31; 32; 100; 500; 511; 512; 1000; 123_456; 1_000_000; 987_654_321 ];
  let rec check_tiling idx =
    if idx < 200 then begin
      let _, hi = Runtime.Histogram.bucket_bounds idx in
      let lo', _ = Runtime.Histogram.bucket_bounds (idx + 1) in
      Alcotest.(check int) (Printf.sprintf "bucket %d tiles" idx) (hi + 1) lo';
      check_tiling (idx + 1)
    end
  in
  check_tiling 0

let test_hist_percentiles () =
  let h = Runtime.Histogram.create () in
  for v = 1 to 1000 do
    Runtime.Histogram.add h v
  done;
  Alcotest.(check int) "count" 1000 (Runtime.Histogram.count h);
  Alcotest.(check int) "max exact" 1000 (Runtime.Histogram.max_value h);
  let p50 = Runtime.Histogram.percentile h 50. in
  Alcotest.(check bool) "p50 within bucket width of 500" true
    (500 <= p50 && p50 <= 532);
  let p99 = Runtime.Histogram.percentile h 99. in
  Alcotest.(check bool) "p99 within bucket width of 990" true
    (990 <= p99 && p99 <= 1000);
  Alcotest.(check int) "p100 = max" 1000 (Runtime.Histogram.percentile h 100.);
  Alcotest.(check (float 1.)) "mean" 500.5 (Runtime.Histogram.mean h);
  (* empty histogram is all zeroes *)
  let e = Runtime.Histogram.create () in
  Alcotest.(check int) "empty p99" 0 (Runtime.Histogram.percentile e 99.)

let test_hist_merge () =
  let a = Runtime.Histogram.create () and b = Runtime.Histogram.create () in
  for v = 1 to 500 do
    Runtime.Histogram.add a v
  done;
  for v = 501 to 1000 do
    Runtime.Histogram.add b v
  done;
  let m = Runtime.Histogram.merge a b in
  let whole = Runtime.Histogram.create () in
  for v = 1 to 1000 do
    Runtime.Histogram.add whole v
  done;
  Alcotest.(check int) "merged count" 1000 (Runtime.Histogram.count m);
  Alcotest.(check int) "merged max" 1000 (Runtime.Histogram.max_value m);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "merge ≡ whole at p%.0f" p)
        (Runtime.Histogram.percentile whole p)
        (Runtime.Histogram.percentile m p))
    [ 10.; 50.; 90.; 99. ];
  (* inputs unchanged *)
  Alcotest.(check int) "a untouched" 500 (Runtime.Histogram.count a)

(* Merged quantiles must equal the quantiles of the concatenated samples,
   to within the histogram's bucket error — the property [Loadgen] and
   [Net.Cluster] rely on when they accumulate per-worker histograms with
   [merge_into].  The rank convention matches [percentile]:
   rank = ⌈p/100·n⌉ (at least 1), and the reported value always lands in
   the same bucket as the exact rank-th sample. *)
let hist_merge_quantiles =
  let sample = QCheck.Gen.(frequency [ (3, int_bound 2000); (1, int_bound 5_000_000) ]) in
  QCheck.Test.make ~count:200
    ~name:"merged quantiles = concatenated-sample quantiles (bucket error)"
    QCheck.(
      pair
        (make Gen.(list_size (1 -- 200) sample))
        (make Gen.(list_size (1 -- 200) sample)))
    (fun (xs, ys) ->
      let h1 = Runtime.Histogram.create ()
      and h2 = Runtime.Histogram.create () in
      List.iter (Runtime.Histogram.add h1) xs;
      List.iter (Runtime.Histogram.add h2) ys;
      let merged = Runtime.Histogram.merge h1 h2 in
      let accum = Runtime.Histogram.create () in
      Runtime.Histogram.merge_into ~into:accum h1;
      Runtime.Histogram.merge_into ~into:accum h2;
      let all = List.sort compare (xs @ ys) in
      let n = List.length all in
      let exact p =
        let rank =
          Stdlib.min n
            (Stdlib.max 1 (int_of_float (ceil (p /. 100. *. float_of_int n))))
        in
        List.nth all (rank - 1)
      in
      Runtime.Histogram.count merged = n
      && Runtime.Histogram.count accum = n
      && Runtime.Histogram.max_value merged = List.nth all (n - 1)
      && List.for_all
           (fun p ->
             let q = Runtime.Histogram.percentile merged p in
             (* merge and merge_into agree exactly... *)
             q = Runtime.Histogram.percentile accum p
             (* ...and land in the exact quantile's bucket *)
             && Runtime.Histogram.bucket_of q
                = Runtime.Histogram.bucket_of (exact p))
           [ 1.; 25.; 50.; 90.; 99.; 100. ])

(* ---- mailbox ---- *)

let test_mailbox_order_and_deadline () =
  let box = Runtime.Mailbox.create () in
  let now = Prelude.Mclock.now_us () in
  (* two ripe items: surfaced in deliver_at order, not insertion order *)
  Runtime.Mailbox.put box ~deliver_at:(now - 10) "second";
  Runtime.Mailbox.put box ~deliver_at:(now - 20) "first";
  Alcotest.(check (option string))
    "earliest ripe first" (Some "first")
    (Runtime.Mailbox.take box ~deadline:None);
  Alcotest.(check (option string))
    "then the next" (Some "second")
    (Runtime.Mailbox.take box ~deadline:None);
  (* an unripe item is not surfaced before a deadline that precedes it *)
  let now = Prelude.Mclock.now_us () in
  Runtime.Mailbox.put box ~deliver_at:(now + 500_000) "late";
  Alcotest.(check (option string))
    "deadline fires before unripe item" None
    (Runtime.Mailbox.take box ~deadline:(Some (now + 2_000)));
  (* a ripe item with deliver_at after the deadline yields to the deadline *)
  let now = Prelude.Mclock.now_us () in
  Runtime.Mailbox.put box ~deliver_at:(now - 1) "after-deadline";
  Alcotest.(check (option string))
    "chronological merge with timers" None
    (Runtime.Mailbox.take box ~deadline:(Some (now - 100)));
  Alcotest.(check (option string))
    "…but surfaced once the deadline is later" (Some "after-deadline")
    (Runtime.Mailbox.take box ~deadline:None)

(* ---- workload samplers agree with the data type's classification ---- *)

let test_samplers_classify () =
  List.iter
    (fun (module L : Runtime.Workloads.LIVE) ->
      let rng = Prelude.Rng.make 42 in
      for _ = 1 to 20 do
        Alcotest.(check bool)
          (L.label ^ " mutator sampler") true
          (L.D.classify (L.sample_mutator rng) = Spec.Data_type.Pure_mutator);
        Alcotest.(check bool)
          (L.label ^ " accessor sampler") true
          (L.D.classify (L.sample_accessor rng) = Spec.Data_type.Pure_accessor);
        Alcotest.(check bool)
          (L.label ^ " other sampler") true
          (L.D.classify (L.sample_other rng) = Spec.Data_type.Other)
      done)
    Runtime.Workloads.all

(* ---- live executions ---- *)

(* Slack-heavy timing so the verdict is stable under CI load; see the
   module comment.  36 ops keeps each run in one quiescent segment and the
   whole suite under a few seconds. *)
let live_run (module L : Runtime.Workloads.LIVE) =
  let module Gen = Runtime.Loadgen.Make (L) in
  Gen.run ~n:3 ~d:3000 ~u:1000 ~slack:25_000 ~round:36 ~ops:36
    ~mix:(40, 40, 20) ~seed:5 ()

let test_live (module L : Runtime.Workloads.LIVE) () =
  let r = live_run (module L) in
  (match r.Runtime.Loadgen.verdict with
  | Runtime.Loadgen.Linearizable segments ->
      Alcotest.(check bool) "at least one segment" true (segments >= 1)
  | Runtime.Loadgen.Violation { reason; _ } ->
      Alcotest.failf "%s live run not linearizable: %s" L.label reason
  | Runtime.Loadgen.Unchecked reason ->
      Alcotest.failf "%s live run unchecked: %s" L.label reason);
  let total =
    List.fold_left
      (fun acc (c : Runtime.Loadgen.class_report) ->
        acc + Runtime.Histogram.count c.hist)
      0 r.Runtime.Loadgen.classes
  in
  Alcotest.(check int) "every op measured exactly once" 36 total;
  (* At X = 0 mutators respond in ≈ ε and accessors in ≈ d + slack + ε: a
     ~40× gap that no scheduling jitter plausibly closes. *)
  let p50 name =
    let c =
      List.find
        (fun (c : Runtime.Loadgen.class_report) ->
          String.equal c.class_name name)
        r.Runtime.Loadgen.classes
    in
    Runtime.Histogram.percentile c.hist 50.
  in
  Alcotest.(check bool) "mutators far faster than accessors at X=0" true
    (p50 "MOP" < p50 "AOP")

let test_live_loss_is_detected () =
  (* Algorithm 1 responds on local timers, so even heavy loss must not hang
     the closed loop: the run completes and the drops are visible in the
     transport stats.  (The verdict is near-certainly a Violation — a lost
     mutator makes some accessor read stale state — but that is left to the
     CLI's --loss demonstration rather than asserted, to keep CI immune to
     the rare lucky schedule.) *)
  let module Gen = Runtime.Loadgen.Make (Runtime.Workloads.Register_live) in
  let r =
    Gen.run ~n:3 ~d:3000 ~u:1000 ~slack:25_000 ~round:36 ~ops:36
      ~mix:(60, 40, 0) ~loss:60 ~seed:3 ()
  in
  Alcotest.(check bool) "messages were dropped" true
    (r.Runtime.Loadgen.net.Runtime.Transport.dropped > 0)

let () =
  Alcotest.run "runtime"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucketing" `Quick test_hist_buckets;
          Alcotest.test_case "percentiles" `Quick test_hist_percentiles;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          QCheck_alcotest.to_alcotest ~long:false hist_merge_quantiles;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "ordering & deadlines" `Quick
            test_mailbox_order_and_deadline;
        ] );
      ( "workloads",
        [ Alcotest.test_case "samplers classify" `Quick test_samplers_classify ] );
      ( "live",
        [
          Alcotest.test_case "register linearizable" `Quick
            (test_live Runtime.Workloads.register);
          Alcotest.test_case "kv map linearizable" `Quick
            (test_live Runtime.Workloads.kv_map);
          Alcotest.test_case "fifo queue linearizable" `Quick
            (test_live Runtime.Workloads.fifo_queue);
          Alcotest.test_case "loss leaves a trace" `Quick
            test_live_loss_is_detected;
        ] );
    ]
