(* The live clock-synchronization subsystem (DESIGN.md §14):

   - the two-way estimator recovers the exact peer offset under symmetric
     delays and errs by at most its self-priced uncertainty (half the
     measured RTT) under asymmetric ones;
   - a stored sample only yields to a candidate that beats its
     age-widened error bound, and a cut-off peer's contribution to the
     achieved ε widens with staleness — the partition rule;
   - the slewed clock never steps backward and never exceeds its slew
     rate, whatever correction/advance sequences it sees (qcheck);
   - end to end, three bus replicas skewed ±2 ms converge to an achieved
     ε below the configured bound within a handful of rounds, zero
     faults;
   - the analyzer interpolates per-pid measured-ε timelines between sync
     rounds and substitutes them into the paper's bound formulas. *)

(* ---- two-way estimator ---- *)

let test_two_way_symmetric () =
  let est = Sync.Estimator.create ~n:2 ~me:0 () in
  (* peer clock runs 500 µs ahead; both legs take 200 µs *)
  Sync.Estimator.observe_two_way est ~peer:1 ~now:1400 ~t0:1000 ~t1:1400
    ~t_rx:1700 ~t_tx:1700;
  (match (Sync.Estimator.view est ~now:1400).(1) with
  | Some (offset, unc, _age) ->
      Alcotest.(check int) "symmetric delays recover the exact offset" 500
        offset;
      Alcotest.(check int) "uncertainty is half the measured RTT" 200 unc
  | None -> Alcotest.fail "no sample stored");
  Alcotest.(check int) "one peer sampled" 1 (Sync.Estimator.peers est);
  Alcotest.(check int) "achieved eps = |offset| + uncertainty" 700
    (Sync.Estimator.achieved_eps est ~now:1400)

let test_two_way_asymmetric () =
  let est = Sync.Estimator.create ~n:2 ~me:0 () in
  (* same 500 µs offset, but 300 µs out / 100 µs back: the midpoint errs
     by half the asymmetry (100), within the priced uncertainty (200) *)
  Sync.Estimator.observe_two_way est ~peer:1 ~now:1400 ~t0:1000 ~t1:1400
    ~t_rx:1800 ~t_tx:1800;
  match (Sync.Estimator.view est ~now:1400).(1) with
  | Some (offset, unc, _) ->
      Alcotest.(check int) "midpoint estimate" 600 offset;
      Alcotest.(check bool) "error bounded by the priced uncertainty" true
        (abs (offset - 500) <= unc)
  | None -> Alcotest.fail "no sample stored"

let test_one_way_midpoint () =
  let est = Sync.Estimator.create ~n:2 ~me:0 () in
  let d = 1000 and u = 400 and sent = 5000 and clock = 5600 in
  Sync.Estimator.observe_one_way est ~peer:1 ~now:0 ~d ~u ~sent ~clock;
  match (Sync.Estimator.view est ~now:0).(1) with
  | Some (offset, unc, _) ->
      Alcotest.(check int) "Lundelius-Lynch midpoint sample"
        (Clocksync.Lundelius_lynch.midpoint_estimate ~d ~u ~sent ~clock)
        offset;
      Alcotest.(check int) "uncertainty u/2" 200 unc
  | None -> Alcotest.fail "no sample stored"

(* ---- replacement under staleness: the partition-widening rule ---- *)

let test_staleness_widening () =
  let est = Sync.Estimator.create ~n:3 ~me:0 () in
  (* a tight two-way sample for peer 1: offset 0, uncertainty 50 *)
  Sync.Estimator.observe_two_way est ~peer:1 ~now:0 ~t0:0 ~t1:100 ~t_rx:50
    ~t_tx:50;
  Alcotest.(check int) "fresh bound" 50 (Sync.Estimator.achieved_eps est ~now:0);
  (* a coarser one-way sample (uncertainty 300) does not displace it *)
  Sync.Estimator.observe_one_way est ~peer:1 ~now:1000 ~d:600 ~u:600 ~sent:0
    ~clock:300;
  (match (Sync.Estimator.view est ~now:1000).(1) with
  | Some (_, unc, _) ->
      Alcotest.(check int) "tight sample survives a coarse candidate" 50 unc
  | None -> Alcotest.fail "sample lost");
  (* one second of silence — a cut-off peer under a partition — widens the
     stored bound by drift_ppm (250 µs/s), inflating the achieved ε *)
  Alcotest.(check int) "stale bound widens by drift" 300
    (Sync.Estimator.achieved_eps est ~now:1_000_000);
  (* ...at which point a 250 µs-uncertainty sample is an improvement *)
  Sync.Estimator.observe_one_way est ~peer:1 ~now:1_000_000 ~d:500 ~u:500
    ~sent:0 ~clock:250;
  match (Sync.Estimator.view est ~now:1_000_000).(1) with
  | Some (_, unc, age) ->
      Alcotest.(check int) "stale sample displaced" 250 unc;
      Alcotest.(check int) "fresh again" 0 age
  | None -> Alcotest.fail "sample lost"

let test_correction_and_shift () =
  let est = Sync.Estimator.create ~n:2 ~me:0 () in
  Sync.Estimator.observe_two_way est ~peer:1 ~now:1400 ~t0:1000 ~t1:1400
    ~t_rx:1700 ~t_tx:1700;
  (* n = 2, estimates {self = 0, peer = 500}: the Lundelius-Lynch average
     meets the peer halfway *)
  Alcotest.(check int) "correction is the LL average" 250
    (Sync.Estimator.correction est);
  Sync.Estimator.shift est ~by:250;
  Alcotest.(check int) "absorbed correction shifts the stored offsets" 125
    (Sync.Estimator.correction est)

(* ---- slewed clock (qcheck) ---- *)

let clock_monotone_rate_bounded =
  QCheck.Test.make ~count:300
    ~name:"slewed clock is monotone and rate-bounded"
    QCheck.(list (pair (int_range (-5_000) 5_000) (int_range 0 2_000)))
    (fun steps ->
      let clk = Sync.Clock.create () in
      let now = ref 0 in
      let last = ref (Sync.Clock.read clk ~now:0) in
      List.for_all
        (fun (delta, dt) ->
          Sync.Clock.adjust clk ~delta;
          now := !now + dt;
          let r = Sync.Clock.read clk ~now:!now in
          let budget = dt * Sync.Clock.default_slew_ppm / 1_000_000 in
          let ok = r >= !last && r - !last <= dt + budget + 1 in
          last := r;
          ok)
        steps)

let clock_absorbs_correction =
  (* any single correction is fully absorbed once enough raw time passes,
     and pending returns to 0 *)
  QCheck.Test.make ~count:300 ~name:"corrections are eventually absorbed"
    QCheck.(int_range (-10_000) 10_000)
    (fun delta ->
      let clk = Sync.Clock.create () in
      ignore (Sync.Clock.read clk ~now:0);
      Sync.Clock.adjust clk ~delta;
      (* 10% slew: |delta| µs absorb within 10|delta| µs of raw time (steps
         big enough that the per-read budget doesn't round down to 0) *)
      let t = ref 0 in
      for _ = 1 to 4 do
        t := !t + ((10 * abs delta) + 10);
        ignore (Sync.Clock.read clk ~now:!t)
      done;
      Sync.Clock.pending clk = 0 && Sync.Clock.applied clk = delta)

(* ---- end to end: three skewed replicas on one bus ---- *)

let test_convergence_below_configured () =
  let n = 3 in
  let configured_eps = 4_000 in
  let params = Core.Params.make ~n ~d:2_000 ~u:500 ~eps:configured_eps ~x:0 () in
  let interval_us = 10_000 in
  let lock = Mutex.create () in
  let history = Array.make n [] in
  let sync_for pid =
    Sync.Config.make ~interval_us ~d:2_000 ~u:500
      ~on_eps:(fun ~eps_us ~peers:_ ->
        Mutex.lock lock;
        history.(pid) <- eps_us :: history.(pid);
        Mutex.unlock lock)
      ()
  in
  let module R = Runtime.Replica.Make (Spec.Register) in
  let bus = Runtime.Transport.bus ~n () in
  let transport = Runtime.Transport.intf bus in
  let start_us = Prelude.Mclock.now_us () in
  let offsets = [| 2_000; 0; -2_000 |] in
  let nodes =
    Array.init n (fun pid ->
        R.node ~params ~transport ~pid ~offset:offsets.(pid) ~start_us
          ~sync:(sync_for pid) ())
  in
  let rounds_done () =
    Mutex.lock lock;
    let k =
      Array.fold_left (fun k h -> min k (List.length h)) max_int history
    in
    Mutex.unlock lock;
    k
  in
  let deadline = Prelude.Mclock.now_us () + 5_000_000 in
  while rounds_done () < 8 && Prelude.Mclock.now_us () < deadline do
    Prelude.Mclock.sleep_us 2_000
  done;
  Array.iter (fun node -> ignore (R.node_stop node)) nodes;
  Alcotest.(check bool) "every replica published at least 8 rounds" true
    (rounds_done () >= 8);
  Array.iteri
    (fun pid h ->
      match h with
      | final :: _ ->
          if final >= configured_eps then
            Alcotest.failf
              "replica %d: final achieved eps %dus not below configured %dus"
              pid final configured_eps
      | [] -> Alcotest.failf "replica %d published no rounds" pid)
    history

(* ---- analyzer: measured-eps timelines ---- *)

let ev ?(pid = 0) ?(a = 0) ?(b = 0) ~t_us kind =
  { Obs.Event.t_us; pid; kind; trace = 0; a; b }

let test_measured_eps_interpolation () =
  let events =
    [
      ev ~t_us:1_000 ~pid:1 ~a:400 ~b:2 Obs.Event.Sync_eps;
      ev ~t_us:3_000 ~pid:1 ~a:800 ~b:2 Obs.Event.Sync_eps;
      ev ~t_us:2_000 ~pid:0 ~a:0 Obs.Event.Invoke;
    ]
  in
  let tl = Obs.Analyze.sync_eps_timelines events in
  Alcotest.(check (option int)) "linear between rounds" (Some 600)
    (Obs.Analyze.measured_eps_at tl ~pid:1 ~t_us:2_000);
  Alcotest.(check (option int)) "clamped before the first round" (Some 400)
    (Obs.Analyze.measured_eps_at tl ~pid:1 ~t_us:0);
  Alcotest.(check (option int)) "clamped after the last round" (Some 800)
    (Obs.Analyze.measured_eps_at tl ~pid:1 ~t_us:99_000);
  Alcotest.(check (option int)) "pid without rounds falls back" None
    (Obs.Analyze.measured_eps_at tl ~pid:0 ~t_us:2_000)

let test_bound_with_measured_eps () =
  let p = Core.Params.make ~n:3 ~d:2_000 ~u:500 ~eps:400 ~x:100 () in
  List.iter
    (fun cls ->
      Alcotest.(check int)
        (Printf.sprintf "class %s: measured eps substitutes for configured"
           (Obs.Event.class_name cls))
        (Obs.Analyze.bound_us p cls - 400 + 250)
        (Obs.Analyze.bound_with_eps p cls 250))
    [ Obs.Event.class_mutator; Obs.Event.class_accessor; Obs.Event.class_other ]

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "sync"
    [
      ( "estimator",
        [
          Alcotest.test_case "two-way, symmetric delays" `Quick
            test_two_way_symmetric;
          Alcotest.test_case "two-way, asymmetric delays" `Quick
            test_two_way_asymmetric;
          Alcotest.test_case "one-way midpoint sample" `Quick
            test_one_way_midpoint;
          Alcotest.test_case "staleness widening (partition rule)" `Quick
            test_staleness_widening;
          Alcotest.test_case "correction and shift" `Quick
            test_correction_and_shift;
        ] );
      ( "clock",
        qsuite [ clock_monotone_rate_bounded; clock_absorbs_correction ] );
      ( "convergence",
        [
          Alcotest.test_case "skewed bus replicas beat the configured eps"
            `Quick test_convergence_below_configured;
        ] );
      ( "analyzer",
        [
          Alcotest.test_case "measured-eps interpolation" `Quick
            test_measured_eps_interpolation;
          Alcotest.test_case "bound substitution" `Quick
            test_bound_with_measured_eps;
        ] );
    ]
