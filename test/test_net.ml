(* Tests for the networked runtime: codec frame/message roundtrips for
   every registered wire object, corrupt-frame behaviour (truncations and
   bit flips must fail cleanly, never raise), and the TCP transport end to
   end — in-process replica stacks on ephemeral loopback ports, plus
   reconnect-with-backoff after a peer comes up late. *)

let rng_of seed = Prelude.Rng.make seed

(* ---- generic frame layer ---- *)

let frame_roundtrip =
  QCheck.Test.make ~count:200 ~name:"frame encode/decode roundtrip"
    QCheck.(pair (int_bound 255) (string_of_size Gen.(0 -- 2048)))
    (fun (kind, payload) ->
      let s = Net.Codec.encode_frame ~kind ~payload in
      match Net.Codec.decode_frame s with
      | Net.Codec.Got (f, next) ->
          f.Net.Codec.kind = kind
          && String.equal f.Net.Codec.payload payload
          && next = String.length s
      | _ -> false)

let frame_trailing_bytes =
  QCheck.Test.make ~count:100 ~name:"frame decode leaves trailing bytes"
    QCheck.(pair (string_of_size Gen.(0 -- 64)) (string_of_size Gen.(1 -- 64)))
    (fun (payload, garbage) ->
      let s = Net.Codec.encode_frame ~kind:3 ~payload ^ garbage in
      match Net.Codec.decode_frame s with
      | Net.Codec.Got (f, next) ->
          String.equal f.Net.Codec.payload payload
          && next = String.length s - String.length garbage
      | _ -> false)

let frame_truncation =
  QCheck.Test.make ~count:300 ~name:"truncated frames never parse, never raise"
    QCheck.(pair (string_of_size Gen.(0 -- 256)) pos_int)
    (fun (payload, cut) ->
      let s = Net.Codec.encode_frame ~kind:1 ~payload in
      let keep = cut mod String.length s in
      let truncated = String.sub s 0 keep in
      match Net.Codec.decode_frame truncated with
      | Net.Codec.Need_more _ -> true
      | Net.Codec.Got _ | Net.Codec.Corrupt _ -> false)

let frame_bit_flip =
  QCheck.Test.make ~count:500 ~name:"single bit flips are always detected"
    QCheck.(pair (string_of_size Gen.(0 -- 128)) (pair pos_int pos_int))
    (fun (payload, (byte_choice, bit_choice)) ->
      let s = Net.Codec.encode_frame ~kind:2 ~payload in
      let i = byte_choice mod String.length s in
      let bit = bit_choice mod 8 in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      match Net.Codec.decode_frame (Bytes.to_string b) with
      | Net.Codec.Got _ -> false (* a flip must never yield a valid frame *)
      | Net.Codec.Corrupt _ -> true
      | Net.Codec.Need_more _ ->
          (* legal only if the flip grew the length field or broke the
             magic in a way that starves the reader — never for payload *)
          i < Net.Codec.header_len)

(* ---- wire version mismatch ---- *)

(* Re-stamp a well-formed frame with another version byte, recomputing the
   CRC so the frame is exactly what an older/newer peer would send — only
   the version check can reject it, not the checksum. *)
let forge_version frame ~version =
  let b = Bytes.of_string frame in
  Bytes.set b 2 (Char.chr version);
  let payload_len = Bytes.length b - Net.Codec.header_len in
  let covered =
    Bytes.sub_string b 2 6
    ^ Bytes.sub_string b Net.Codec.header_len payload_len
  in
  let crc = Net.Codec.crc32 covered ~pos:0 ~len:(String.length covered) in
  Bytes.set b 8 (Char.chr ((crc lsr 24) land 0xff));
  Bytes.set b 9 (Char.chr ((crc lsr 16) land 0xff));
  Bytes.set b 10 (Char.chr ((crc lsr 8) land 0xff));
  Bytes.set b 11 (Char.chr (crc land 0xff));
  Bytes.to_string b

let test_version_rejected_by_decoder () =
  let good = Net.Codec.encode_frame ~kind:3 ~payload:"payload" in
  (* sanity: the forge helper preserves validity at the current version *)
  (match Net.Codec.decode_frame (forge_version good ~version:Net.Codec.version) with
  | Net.Codec.Got _ -> ()
  | _ -> Alcotest.fail "forge_version broke a current-version frame");
  List.iter
    (fun v ->
      match Net.Codec.decode_frame (forge_version good ~version:v) with
      | Net.Codec.Corrupt msg ->
          Alcotest.(check string)
            (Printf.sprintf "version %d names itself" v)
            (Printf.sprintf "unsupported version %d" v)
            msg
      | Net.Codec.Got _ | Net.Codec.Need_more _ ->
          Alcotest.failf "version %d frame must be Corrupt" v)
    [ 1; 2; 3; 4; 5; 6; 8; 255 ]

(* An old (v1) peer connecting to a live replica stack: the handshake must
   be rejected cleanly — connection closed, replica healthy for current
   clients afterwards. *)
let test_version_rejected_by_handshake () =
  let module S = Net.Serve.Make (Net.Wire.Kv_wired) in
  let module Cl = Net.Client.Make (Net.Wire.Kv_wired) in
  let module C = Net.Codec.Make (Net.Wire.Kv_codec) in
  let listener = Net.Tcp_transport.listen ~host:"127.0.0.1" ~port:0 in
  let port = listener.Net.Tcp_transport.port in
  let addrs = [| ("127.0.0.1", port) |] in
  let params = Core.Params.make ~n:1 ~d:7000 ~u:5500 ~eps:0 ~x:0 () in
  let handle =
    S.start ~listener
      {
        Net.Serve.pid = 0;
        addrs;
        params;
        offset = 0;
        start_us = None;
        trace = None;
        durable = None;
        fsync = Durable.Wal.Never;
        snapshot_every = 0;
        fallback = None;
        sync = None;
        log = (fun _ -> ());
      }
  in
  let hello =
    C.encode
      (C.Hello
         { Net.Codec.pid = 0; n = 1; d = 7000; u = 5500; eps = 0; x = 0;
           obj_tag = Net.Wire.Kv_codec.obj_tag; shards = 0 })
  in
  let old = forge_version hello ~version:1 in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let b = Bytes.of_string old in
  ignore (Unix.write fd b 0 (Bytes.length b));
  let buf = Bytes.create 256 in
  let closed =
    match Unix.read fd buf 0 256 with
    | 0 -> true
    | _ -> false (* the replica must not answer an unsupported version *)
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> true
  in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Alcotest.(check bool) "v1 handshake closed without a reply" true closed;
  (match Cl.connect ~host:"127.0.0.1" ~port () with
  | Ok conn ->
      (match Cl.invoke conn (Spec.Kv_map.Put (1, 2)) with
      | Ok Spec.Kv_map.Ack -> ()
      | Ok r ->
          Alcotest.failf "put after rejected peer: unexpected %s"
            (Format.asprintf "%a" Spec.Kv_map.pp_result r)
      | Error e -> Alcotest.failf "put after rejected peer: %s" e);
      Cl.close conn
  | Error e -> Alcotest.failf "current client must still connect: %s" e);
  ignore (S.stop handle)

(* ---- per-object message roundtrips ---- *)

let msg_roundtrip_tests () =
  List.map
    (fun (module W : Net.Wire.WIRED) ->
      let name = Printf.sprintf "%s messages roundtrip" W.L.label in
      (* Draw (op, result) pairs by actually running sampled ops against
         the sequential spec, so results are representative
         (Found/Absent/Value/…). *)
      let sampled_pairs seed k =
        let rng = rng_of seed in
        let rec go state n acc =
          if n = 0 then acc
          else
            let op =
              match Prelude.Rng.int rng 3 with
              | 0 -> W.L.sample_mutator rng
              | 1 -> W.L.sample_accessor rng
              | _ -> W.L.sample_other rng
            in
            let state', result = W.L.D.apply state op in
            go state' (n - 1) ((op, result) :: acc)
        in
        go W.L.D.initial k []
      in
      QCheck.Test.make ~count:50 ~name QCheck.small_int (fun seed ->
          let module C = Net.Codec.Make (W.C) in
          let roundtrip m =
            match C.decode (C.encode m) with
            | Net.Codec.Got (m', _) -> C.equal_msg m m'
            | _ -> false
          in
          (* Trace ids span the whole 56-bit ⟨origin, counter⟩ layout, so
             the varint length varies across the samples. *)
          let trace = seed * 2654435761 land ((1 lsl 56) - 1) in
          (* Shard ids span small and multi-byte varints. *)
          let shard = seed * 37 mod 1024 in
          List.for_all
            (fun (op, result) ->
              roundtrip
                (C.Invoke
                   {
                     op;
                     trace;
                     op_id = seed * 31;
                     shard;
                     deadline = seed * 7919;
                   })
              && roundtrip
                   (C.Invoke
                      { op; trace = 0; op_id = 0; shard = 0; deadline = 0 })
              && roundtrip (C.Result { result; shard })
              && roundtrip
                   (C.Shed
                      {
                        reason =
                          Printf.sprintf "shed: deadline unmeetable (%d)" seed;
                        shard;
                      })
              && roundtrip
                   (C.Entry
                      {
                        op;
                        time = seed * 7919;
                        pid = seed mod 16;
                        trace;
                        op_id = seed * 13;
                        shard;
                      })
              && roundtrip
                   (C.Catchup_req
                      { time = seed * 7919; cpid = seed mod 16; shard })
              && roundtrip
                   (C.Catchup_rep
                      {
                        entries =
                          [ (op, seed * 7919, seed mod 16, seed * 17) ];
                        time = (seed * 7919) - 1;
                        cpid = (seed + 1) mod 16;
                        shard;
                      })
              && roundtrip
                   (C.Catchup_rep
                      { entries = []; time = -1; cpid = 0; shard = 0 }))
            (sampled_pairs seed 20)
          && roundtrip
               (C.Hello
                  {
                    Net.Codec.pid = seed mod 8;
                    n = 3 + (seed mod 5);
                    d = 7000;
                    u = 5500;
                    eps = 334;
                    x = seed mod 100;
                    obj_tag = W.C.obj_tag;
                    shards = shard;
                  })
          && roundtrip C.Stats_req
          && roundtrip
               (C.Stats
                  {
                    Runtime.Transport_intf.sent = seed;
                    dropped = seed / 2;
                    link =
                      Some
                        {
                          Runtime.Transport_intf.reconnects = 1;
                          bytes_out = seed * 3;
                          bytes_in = seed * 5;
                          disconnected_us = seed * 7;
                          queue_hwm = seed mod 4096;
                          ctrl_hwm = seed mod 64;
                          lane_shed = seed mod 17;
                        };
                  })
          && roundtrip (C.Error_msg "boom")
          && roundtrip (C.Ping { seq = seed; t0 = seed * 7919; shard })
          && roundtrip
               (C.Pong
                  {
                    seq = seed;
                    t0 = seed * 7919;
                    t_rx = (seed * 7919) + 3;
                    t_tx = (seed * 7919) + 5;
                    shard;
                  })
          && roundtrip
               (* a corrected clock can briefly sit behind the epoch, so
                  negative timestamps must survive the varint *)
               (C.Pong
                  { seq = 0; t0 = -(seed * 3); t_rx = -1; t_tx = 0; shard = 0 })))
    Net.Wire.all

let msg_corrupt_payloads =
  QCheck.Test.make ~count:300 ~name:"corrupt payloads error out, never raise"
    QCheck.(pair (int_bound 8) (string_of_size Gen.(0 -- 64)))
    (fun (kind, payload) ->
      let module C = Net.Codec.Make (Net.Wire.Kv_codec) in
      match C.decode_payload { Net.Codec.kind; payload } with
      | Ok _ | Error _ -> true)

(* ---- TCP transport + serve stacks, in process ---- *)

let kv_params =
  Core.Params.make ~n:3 ~d:7000 ~u:5500
    ~eps:(Core.Params.optimal_eps ~n:3 ~u:5500)
    ~x:0 ()

let test_tcp_cluster_in_process () =
  let module S = Net.Serve.Make (Net.Wire.Kv_wired) in
  let module Cl = Net.Client.Make (Net.Wire.Kv_wired) in
  let n = 3 in
  let listeners =
    Array.init n (fun _ -> Net.Tcp_transport.listen ~host:"127.0.0.1" ~port:0)
  in
  let addrs =
    Array.map (fun (l : Net.Tcp_transport.listener) -> ("127.0.0.1", l.port)) listeners
  in
  let start_us = Some (Prelude.Mclock.now_us ()) in
  let handles =
    Array.init n (fun pid ->
        S.start ~listener:listeners.(pid)
          {
            Net.Serve.pid;
            addrs;
            params = kv_params;
            offset = pid * 100;
            start_us;
            trace = None;
            durable = None;
            fsync = Durable.Wal.Never;
            snapshot_every = 0;
            fallback = None;
            sync = None;
            log = (fun _ -> ());
          })
  in
  let conns =
    Array.map
      (fun (_, port) ->
        match Cl.connect ~host:"127.0.0.1" ~port () with
        | Ok c -> c
        | Error e -> Alcotest.failf "client connect: %s" e)
      addrs
  in
  (* Sequential invocations through different replicas must read their
     own writes: a put acked on replica 0 is visible to a get invoked on
     replica 2 only after it responds — which linearizability (and the
     execute-hold of Algorithm 1) guarantees for non-overlapping ops. *)
  let put k v =
    match Cl.invoke conns.(k mod n) (Spec.Kv_map.Put (k, v)) with
    | Ok Spec.Kv_map.Ack -> ()
    | Ok r -> Alcotest.failf "put: unexpected %s" (Format.asprintf "%a" Spec.Kv_map.pp_result r)
    | Error e -> Alcotest.failf "put: %s" e
  in
  let get k =
    match Cl.invoke conns.((k + 1) mod n) (Spec.Kv_map.Get k) with
    | Ok r -> r
    | Error e -> Alcotest.failf "get: %s" e
  in
  for k = 0 to 5 do
    put k (k * 11)
  done;
  for k = 0 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "get %d sees put" k)
      true
      (get k = Spec.Kv_map.Found (k * 11))
  done;
  (* Transport stats flowed: every replica broadcast its puts. *)
  Array.iteri
    (fun i conn ->
      match Cl.stats conn with
      | Ok s ->
          Alcotest.(check bool)
            (Printf.sprintf "replica %d sent messages" i)
            true
            (s.Runtime.Transport_intf.sent > 0);
          Alcotest.(check bool)
            (Printf.sprintf "replica %d moved bytes" i)
            true
            (match s.Runtime.Transport_intf.link with
            | Some l -> l.Runtime.Transport_intf.bytes_out > 0
            | None -> false)
      | Error e -> Alcotest.failf "stats: %s" e)
    conns;
  Array.iter Cl.close conns;
  Array.iter
    (fun h ->
      let records, _stats = S.stop h in
      Alcotest.(check bool) "replica recorded ops" true (records <> []))
    handles

let test_tcp_reconnect_backoff () =
  let module C = Net.Codec.Make (Net.Wire.Register_codec) in
  let hello pid =
    C.encode
      (C.Hello
         { Net.Codec.pid; n = 2; d = 7000; u = 5500; eps = 0; x = 0;
           obj_tag = Net.Wire.Register_codec.obj_tag; shards = 0 })
  in
  let classify frame =
    match C.decode_payload frame with
    | Ok (C.Hello h) -> Net.Tcp_transport.Peer h.Net.Codec.pid
    | Ok _ -> Net.Tcp_transport.Client
    | Error e -> Net.Tcp_transport.Reject e
  in
  let decode_peer ~src:_ frame =
    match C.decode_payload frame with Ok m -> Some m | Error _ -> None
  in
  let mk ~me ~listener ~addrs =
    Net.Tcp_transport.create ~me ~addrs ~listener ~hello:(hello me)
      ~classify_hello:classify ~decode_peer ~encode_peer:C.encode
      ~backoff_min_us:5_000 ~backoff_max_us:40_000
      ~log:(fun _ -> ())
      ()
  in
  (* Reserve a port for peer 1, then close it so connects fail until the
     peer actually starts: transport 0's writer must retry with backoff
     and deliver the queued frame once peer 1 appears. *)
  let l0 = Net.Tcp_transport.listen ~host:"127.0.0.1" ~port:0 in
  let l1_probe = Net.Tcp_transport.listen ~host:"127.0.0.1" ~port:0 in
  let port1 = l1_probe.Net.Tcp_transport.port in
  Unix.close l1_probe.Net.Tcp_transport.listen_fd;
  let addrs = [| ("127.0.0.1", l0.Net.Tcp_transport.port); ("127.0.0.1", port1) |] in
  let t0 = mk ~me:0 ~listener:l0 ~addrs in
  let entry =
    C.Entry
      { op = Spec.Register.Write 42; time = 1; pid = 0; trace = 7; op_id = 9;
        shard = 0 }
  in
  Runtime.Transport_intf.send t0 ~src:0 ~dst:1 entry;
  Prelude.Mclock.sleep_us 150_000 (* let several connect attempts fail *);
  let l1 = Net.Tcp_transport.listen ~host:"127.0.0.1" ~port:port1 in
  let t1 = mk ~me:1 ~listener:l1 ~addrs in
  let got =
    Runtime.Transport_intf.recv t1 ~me:1
      ~deadline:(Some (Prelude.Mclock.now_us () + 5_000_000))
  in
  (match got with
  | Some (src, m) ->
      Alcotest.(check int) "frame src" 0 src;
      Alcotest.(check bool) "frame survives reconnect" true (C.equal_msg m entry)
  | None -> Alcotest.fail "queued frame not delivered after peer came up");
  let stats = Runtime.Transport_intf.stats t0 in
  (match stats.Runtime.Transport_intf.link with
  | Some l ->
      Alcotest.(check bool) "reconnects counted" true
        (l.Runtime.Transport_intf.reconnects >= 1);
      (* the ~150 ms the writer spent retrying is attributed to the link *)
      Alcotest.(check bool) "disconnected time counted" true
        (l.Runtime.Transport_intf.disconnected_us > 50_000);
      Alcotest.(check bool) "queue high-water mark seen" true
        (l.Runtime.Transport_intf.queue_hwm >= 1)
  | None -> Alcotest.fail "tcp transport must report link stats");
  Runtime.Transport_intf.close t0;
  Runtime.Transport_intf.close t1

(* ---- durable restart over TCP ---- *)

(* One replica stack with a durable directory: mutate, stop, restart on
   the same directory — the WAL must bring the object back, and a client
   replaying an op id must get the recorded result without a re-apply. *)
let test_tcp_durable_restart_recovers () =
  let module S = Net.Serve.Make (Net.Wire.Kv_wired) in
  let module Cl = Net.Client.Make (Net.Wire.Kv_wired) in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tb-net-durable-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  cleanup ();
  Fun.protect ~finally:cleanup @@ fun () ->
  let params = Core.Params.make ~n:1 ~d:7000 ~u:5500 ~eps:0 ~x:0 () in
  let recovered_line = ref false in
  let cfg port =
    {
      Net.Serve.pid = 0;
      addrs = [| ("127.0.0.1", port) |];
      params;
      offset = 0;
      start_us = None;
      trace = None;
      durable = Some dir;
      fsync = Durable.Wal.Always;
      snapshot_every = 0;
      fallback = None;
      sync = None;
      log =
        (fun s ->
          let has_sub sub =
            let ls = String.length sub and le = String.length s in
            let rec go i =
              i + ls <= le && (String.sub s i ls = sub || go (i + 1))
            in
            go 0
          in
          if has_sub "recovered" then recovered_line := true);
    }
  in
  let invoke ?op_id conn op =
    match Cl.invoke ?op_id conn op with
    | Ok r -> r
    | Error e -> Alcotest.failf "invoke: %s" e
  in
  let l1 = Net.Tcp_transport.listen ~host:"127.0.0.1" ~port:0 in
  let port = l1.Net.Tcp_transport.port in
  let h1 = S.start ~listener:l1 (cfg port) in
  (match Cl.connect ~host:"127.0.0.1" ~port () with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok conn ->
      Alcotest.(check bool) "put 1" true
        (invoke ~op_id:1 conn (Spec.Kv_map.Put (1, 10)) = Spec.Kv_map.Ack);
      Alcotest.(check bool) "put 2" true
        (invoke ~op_id:2 conn (Spec.Kv_map.Put (2, 20)) = Spec.Kv_map.Ack);
      (* a replay of op id 2 is answered from the dedup table, not
         re-applied: key 2 must keep the original value *)
      Alcotest.(check bool) "replayed op id answered" true
        (invoke ~op_id:2 conn (Spec.Kv_map.Put (2, 999)) = Spec.Kv_map.Ack);
      Alcotest.(check bool) "replay did not re-apply" true
        (invoke conn (Spec.Kv_map.Get 2) = Spec.Kv_map.Found 20);
      Cl.close conn);
  (* let every mutation reach its Execute timer and hence the WAL *)
  Prelude.Mclock.sleep_us 100_000;
  ignore (S.stop h1);
  Alcotest.(check bool) "first boot is genesis, no recovery line" false
    !recovered_line;
  (* restart on the same directory (and port): state must come back *)
  let l2 = Net.Tcp_transport.listen ~host:"127.0.0.1" ~port in
  let h2 = S.start ~listener:l2 (cfg port) in
  Alcotest.(check bool) "restart logs recovery" true !recovered_line;
  (match Cl.connect ~host:"127.0.0.1" ~port () with
  | Error e -> Alcotest.failf "reconnect: %s" e
  | Ok conn ->
      Alcotest.(check bool) "key 1 recovered" true
        (invoke conn (Spec.Kv_map.Get 1) = Spec.Kv_map.Found 10);
      Alcotest.(check bool) "key 2 recovered" true
        (invoke conn (Spec.Kv_map.Get 2) = Spec.Kv_map.Found 20);
      (* dedup state is durable too: a replay from before the crash is
         still recognised after the restart *)
      Alcotest.(check bool) "pre-crash op id recognised" true
        (invoke ~op_id:1 conn (Spec.Kv_map.Put (1, 777)) = Spec.Kv_map.Ack);
      Alcotest.(check bool) "pre-crash replay not re-applied" true
        (invoke conn (Spec.Kv_map.Get 1) = Spec.Kv_map.Found 10);
      Cl.close conn);
  ignore (S.stop h2)

let test_client_retry_classification () =
  let module Cl = Net.Client.Make (Net.Wire.Kv_wired) in
  List.iter
    (fun e ->
      Alcotest.(check bool) (e ^ " is retryable") true (Cl.retryable e))
    [
      "timeout waiting for reply";
      "connection lost";
      "connection closed by replica";
      "replica error: retry: operation 7 in flight";
      "shed: inflight budget full (64/64)";
      "shed: deadline passed";
    ];
  Alcotest.(check bool) "semantic errors are not retryable" false
    (Cl.retryable "replica error: unknown op")

(* ---- overload protection: lanes + admission ---- *)

(* Random pushes/pops against the two-lane queue.  Frames are (id, bytes);
   the checks are the queue's contract, not a re-implementation of its
   shed policy:
   - a data frame is never served while control frames are queued;
   - within each lane, popped ids are strictly increasing (FIFO survives
     even shedding, which only ever removes the *oldest* data frames);
   - the data lane never exceeds its frame or byte bound;
   - conservation — every pushed frame is popped, still queued, or
     counted shed; control is never shed. *)
let lanes_priority_and_bounds =
  QCheck.Test.make ~count:400
    ~name:"lanes: ctrl never behind data, bounds hold, sheds counted"
    QCheck.(list_of_size Gen.(1 -- 150) (pair bool (int_bound 3)))
    (fun ops ->
      let max_frames = 6 and max_bytes = 900 in
      let q =
        Net.Lanes.create ~max_data_frames:max_frames ~max_data_bytes:max_bytes
          ~size_of:snd ()
      in
      let next = ref 0 in
      let pushed_ctrl = ref 0 and pushed_data = ref 0 in
      let popped_ctrl = ref 0 and popped_data = ref 0 in
      let last_ctrl = ref (-1) and last_data = ref (-1) in
      let ok = ref true in
      let ensure c = if not c then ok := false in
      List.iter
        (fun (ctrl, code) ->
          (if code = 2 then
             match Net.Lanes.peek q with
             | None -> ensure (Net.Lanes.is_empty q)
             | Some (lane, (id, _)) ->
                 (match lane with
                 | Net.Lanes.Ctrl ->
                     ensure (id > !last_ctrl);
                     last_ctrl := id;
                     incr popped_ctrl
                 | Net.Lanes.Data ->
                     ensure (Net.Lanes.ctrl_length q = 0);
                     ensure (id > !last_data);
                     last_data := id;
                     incr popped_data);
                 Net.Lanes.drop q lane
           else begin
             let id = !next in
             incr next;
             (* code 3 = a frame bigger than the whole byte budget: it
                must be shed itself, not empty the lane *)
             let size = match code with 0 -> 64 | 1 -> 300 | _ -> 1200 in
             let lane = if ctrl then Net.Lanes.Ctrl else Net.Lanes.Data in
             let shed = Net.Lanes.push q lane (id, size) in
             if ctrl then begin
               ensure (shed = 0);
               incr pushed_ctrl
             end
             else incr pushed_data
           end);
          ensure (Net.Lanes.data_length q <= max_frames);
          ensure (Net.Lanes.data_bytes q <= max_bytes))
        ops;
      ensure (!pushed_ctrl = !popped_ctrl + Net.Lanes.ctrl_length q);
      ensure
        (!pushed_data
        = !popped_data + Net.Lanes.data_length q + Net.Lanes.shed q);
      !ok)

let test_admission_control () =
  let a = Net.Admission.create ~budget:2 () in
  let now = 1_000_000 in
  let is_shed reason =
    String.length reason >= 4 && String.sub reason 0 4 = "shed"
  in
  (* a fresh estimator admits even a tight deadline: it has no basis to
     refuse, and learns from the first completions instead of guessing *)
  (match Net.Admission.try_admit a ~now_us:now ~deadline_us:(now + 10) with
  | Net.Admission.Admitted -> ()
  | Net.Admission.Shed r -> Alcotest.failf "fresh estimator shed: %s" r);
  (match Net.Admission.try_admit a ~now_us:now ~deadline_us:0 with
  | Net.Admission.Admitted -> ()
  | Net.Admission.Shed r -> Alcotest.failf "budget not full yet: %s" r);
  (* budget full: refuse, with the retryable "shed" prefix *)
  (match Net.Admission.try_admit a ~now_us:now ~deadline_us:0 with
  | Net.Admission.Shed reason ->
      Alcotest.(check bool) "budget reason carries shed prefix" true
        (is_shed reason)
  | Net.Admission.Admitted -> Alcotest.fail "budget overrun");
  (* completions release slots and teach the EWMA *)
  Net.Admission.finish a ~elapsed_us:50_000;
  Net.Admission.finish a ~elapsed_us:50_000;
  Alcotest.(check int) "slots released" 0 (Net.Admission.inflight a);
  Alcotest.(check bool) "ewma learned" true (Net.Admission.ewma_us a > 10_000);
  (* a learned estimator refuses a deadline it cannot meet... *)
  (match Net.Admission.try_admit a ~now_us:now ~deadline_us:(now + 1_000) with
  | Net.Admission.Shed reason ->
      Alcotest.(check bool) "deadline reason carries shed prefix" true
        (is_shed reason)
  | Net.Admission.Admitted -> Alcotest.fail "unmeetable deadline admitted");
  (* ...but still admits a comfortable one, and deadline 0 = none *)
  (match
     Net.Admission.try_admit a ~now_us:now ~deadline_us:(now + 10_000_000)
   with
  | Net.Admission.Admitted -> Net.Admission.finish a ~elapsed_us:40_000
  | Net.Admission.Shed r -> Alcotest.failf "meetable deadline shed: %s" r);
  let t = Net.Admission.totals a in
  Alcotest.(check int) "admissions counted" 3 t.Net.Admission.admitted;
  Alcotest.(check int) "budget sheds counted" 1 t.Net.Admission.shed_budget;
  Alcotest.(check int) "deadline sheds counted" 1 t.Net.Admission.shed_deadline

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "net"
    [
      ( "codec",
        qsuite
          ([ frame_roundtrip; frame_trailing_bytes; frame_truncation;
             frame_bit_flip; msg_corrupt_payloads ]
          @ msg_roundtrip_tests ())
        @ [
            Alcotest.test_case "other wire versions rejected" `Quick
              test_version_rejected_by_decoder;
            Alcotest.test_case "v1 peer fails the handshake cleanly" `Quick
              test_version_rejected_by_handshake;
          ] );
      ( "tcp",
        [
          Alcotest.test_case "in-process 3-replica cluster" `Quick
            test_tcp_cluster_in_process;
          Alcotest.test_case "reconnect with backoff" `Quick
            test_tcp_reconnect_backoff;
        ] );
      ( "durable",
        [
          Alcotest.test_case "restart recovers from the durable dir" `Quick
            test_tcp_durable_restart_recovers;
          Alcotest.test_case "retryable error classification" `Quick
            test_client_retry_classification;
        ] );
      ( "overload",
        qsuite [ lanes_priority_and_bounds ]
        @ [
            Alcotest.test_case "admission budget and deadlines" `Quick
              test_admission_control;
          ] );
    ]
