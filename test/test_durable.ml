(* Durability layer: WAL corruption discipline, snapshot atomicity, store
   rotation/GC/identity, and the typed persistence formats above them.

   The central property is longest-clean-prefix: however the on-disk bytes
   are damaged — truncation at any offset, a single flipped bit anywhere —
   the WAL reader returns a prefix of the records that were appended and
   never raises.  That is what makes crash recovery total. *)

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tb-durable-%d-%d" (Unix.getpid ()) !counter)
    in
    dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let with_dir f =
  let dir = tmp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ---- WAL: encode/decode and the corruption qcheck suite ---- *)

let encode_all records =
  let b = Buffer.create 256 in
  List.iter (Durable.Wal.encode_record b) records;
  Buffer.contents b

let is_prefix shorter longer =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> String.equal x y && go (xs, ys)
  in
  go (shorter, longer)

let records_gen =
  QCheck.Gen.(list_size (1 -- 12) (string_size (0 -- 40) ~gen:char))

let records_arb = QCheck.make ~print:(fun l -> String.concat "|" l) records_gen

let wal_roundtrip =
  QCheck.Test.make ~count:100 ~name:"wal: clean log reads back exactly"
    records_arb (fun records ->
      Durable.Wal.of_string (encode_all records) = records)

(* Truncate at EVERY byte offset: the reader must return a prefix of the
   original records at each cut, never raise.  A cut inside record k's
   encoding loses k and everything after; a cut between records loses
   only the suffix. *)
let wal_truncation =
  QCheck.Test.make ~count:60
    ~name:"wal: truncation at any offset yields a clean prefix" records_arb
    (fun records ->
      let blob = encode_all records in
      let ok = ref true in
      for cut = 0 to String.length blob do
        let got = Durable.Wal.of_string (String.sub blob 0 cut) in
        if not (is_prefix got records) then ok := false
      done;
      !ok)

(* Flip every single bit of the encoding in turn.  CRC-32 detects all
   1-bit errors in a payload; flips in the length or CRC fields break
   framing; all paths must degrade to a clean prefix. *)
let wal_bit_flips =
  QCheck.Test.make ~count:25
    ~name:"wal: any single-bit flip yields a clean prefix" records_arb
    (fun records ->
      let blob = encode_all records in
      let ok = ref true in
      for byte = 0 to String.length blob - 1 do
        for bit = 0 to 7 do
          let b = Bytes.of_string blob in
          Bytes.set b byte
            (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
          let got = Durable.Wal.of_string (Bytes.to_string b) in
          if not (is_prefix got records) then ok := false
        done
      done;
      !ok)

let test_wal_file_roundtrip_all_policies () =
  List.iter
    (fun fsync ->
      with_dir (fun dir ->
          Unix.mkdir dir 0o755;
          let path = Filename.concat dir "w.log" in
          let w = Durable.Wal.create ~path ~fsync in
          List.iter (Durable.Wal.append w) [ "a"; ""; "ccc" ];
          Alcotest.(check int)
            "records_written counts appends" 3
            (Durable.Wal.records_written w);
          Durable.Wal.close w;
          Alcotest.(check (list string))
            (Printf.sprintf "file roundtrip under %s"
               (Durable.Wal.fsync_to_string fsync))
            [ "a"; ""; "ccc" ]
            (Durable.Wal.read_file path)))
    [ Durable.Wal.Always; Durable.Wal.Interval 5_000; Durable.Wal.Never ]

let test_wal_missing_file_is_empty () =
  Alcotest.(check (list string))
    "missing file reads as empty log" []
    (Durable.Wal.read_file "/nonexistent/definitely/absent.log")

let test_fsync_of_string () =
  let ok s exp =
    match Durable.Wal.fsync_of_string s with
    | Ok f -> Alcotest.(check string) s exp (Durable.Wal.fsync_to_string f)
    | Error e -> Alcotest.failf "%s must parse, got %s" s e
  in
  ok "always" "always";
  ok "never" "never";
  ok "interval:250" "interval:250";
  (match Durable.Wal.fsync_of_string "sometimes" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk policy must be rejected")

(* ---- snapshots ---- *)

let test_snapshot_roundtrip () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "s.snap" in
      Durable.Snapshot.write ~path "the checkpoint";
      (match Durable.Snapshot.read path with
      | Some p -> Alcotest.(check string) "payload survives" "the checkpoint" p
      | None -> Alcotest.fail "fresh snapshot must read back");
      (* overwrite is atomic: the new payload replaces the old *)
      Durable.Snapshot.write ~path "v2";
      match Durable.Snapshot.read path with
      | Some p -> Alcotest.(check string) "overwrite wins" "v2" p
      | None -> Alcotest.fail "overwritten snapshot must read back")

let snapshot_corruption =
  QCheck.Test.make ~count:40
    ~name:"snapshot: any single-byte corruption reads as absent"
    QCheck.(string_of_size Gen.(1 -- 80))
    (fun payload ->
      with_dir (fun dir ->
          Unix.mkdir dir 0o755;
          let path = Filename.concat dir "s.snap" in
          Durable.Snapshot.write ~path payload;
          let blob =
            In_channel.with_open_bin path (fun ic ->
                really_input_string ic (in_channel_length ic))
          in
          let ok = ref true in
          for byte = 0 to String.length blob - 1 do
            let b = Bytes.of_string blob in
            Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor 0x40));
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_bytes oc b);
            if Durable.Snapshot.read path <> None then ok := false
          done;
          (* truncations too *)
          for cut = 0 to String.length blob - 1 do
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc (String.sub blob 0 cut));
            if Durable.Snapshot.read path <> None then ok := false
          done;
          !ok))

(* ---- store: identity, rotation, GC, recovery ---- *)

let meta = "timebounds replica=1 obj=3 n=3"

let open_store dir =
  match Durable.Store.open_ ~dir ~meta ~fsync:Durable.Wal.Always with
  | Ok (t, view) -> (t, view)
  | Error e -> Alcotest.failf "store open: %s" e

let test_store_fresh_then_restart () =
  with_dir (fun dir ->
      let t, view = open_store dir in
      Alcotest.(check bool) "first open is fresh" true
        view.Durable.Store.r_fresh;
      Alcotest.(check (list string)) "fresh store has no records" []
        view.Durable.Store.r_records;
      List.iter (Durable.Store.append t) [ "r0"; "r1"; "r2" ];
      Durable.Store.close t;
      let t2, view2 = open_store dir in
      Alcotest.(check bool) "reopen is a restart" false
        view2.Durable.Store.r_fresh;
      Alcotest.(check (list string))
        "appends survive close/reopen in order" [ "r0"; "r1"; "r2" ]
        view2.Durable.Store.r_records;
      Durable.Store.close t2)

let test_store_meta_mismatch_refused () =
  with_dir (fun dir ->
      let t, _ = open_store dir in
      Durable.Store.close t;
      match
        Durable.Store.open_ ~dir ~meta:"timebounds replica=2 obj=3 n=3"
          ~fsync:Durable.Wal.Always
      with
      | Error _ -> ()
      | Ok (t, _) ->
          Durable.Store.close t;
          Alcotest.fail "a different identity must refuse to open")

let test_store_rotation_and_gc () =
  with_dir (fun dir ->
      let t, _ = open_store dir in
      List.iter (Durable.Store.append t) [ "a"; "b" ];
      Durable.Store.snapshot t "snap covering a,b";
      Alcotest.(check int) "rotation bumps the generation" 1
        (Durable.Store.generation t);
      Alcotest.(check int) "rotation resets the cadence counter" 0
        (Durable.Store.records_since_snapshot t);
      List.iter (Durable.Store.append t) [ "c" ];
      Durable.Store.close t;
      (* old generation files are gone *)
      let files = Array.to_list (Sys.readdir dir) in
      Alcotest.(check bool) "wal-0 GC'd" false (List.mem "wal-0.log" files);
      let t2, view = open_store dir in
      (match view.Durable.Store.r_snapshot with
      | Some p ->
          Alcotest.(check string) "snapshot recovered" "snap covering a,b" p
      | None -> Alcotest.fail "snapshot must be recovered");
      Alcotest.(check (list string))
        "only the post-snapshot tail replays" [ "c" ]
        view.Durable.Store.r_records;
      Durable.Store.close t2)

let test_store_inspect () =
  with_dir (fun dir ->
      (match Durable.Store.inspect ~dir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "inspect of a non-durable dir must fail");
      let t, _ = open_store dir in
      Durable.Store.append t "x";
      Durable.Store.close t;
      match Durable.Store.inspect ~dir with
      | Ok (m, view) ->
          Alcotest.(check string) "META round-trips" meta m;
          Alcotest.(check (list string)) "records visible" [ "x" ]
            view.Durable.Store.r_records
      | Error e -> Alcotest.failf "inspect: %s" e)

(* A torn final append (crash mid-write) must cost only the torn record. *)
let test_store_torn_tail () =
  with_dir (fun dir ->
      let t, _ = open_store dir in
      List.iter (Durable.Store.append t) [ "keep-1"; "keep-2" ];
      Durable.Store.close t;
      let wal = Filename.concat dir "wal-0.log" in
      let blob =
        In_channel.with_open_bin wal (fun ic ->
            really_input_string ic (in_channel_length ic))
      in
      Out_channel.with_open_bin wal (fun oc ->
          Out_channel.output_string oc blob;
          (* a torn append: length header promising more than is there *)
          Out_channel.output_string oc "\x20partial");
      let t2, view = open_store dir in
      Alcotest.(check (list string))
        "clean prefix survives the torn tail" [ "keep-1"; "keep-2" ]
        view.Durable.Store.r_records;
      Durable.Store.close t2)

(* ---- typed layer: Persist records and snapshots ---- *)

module P = Net.Persist.Make (Net.Wire.Kv_codec)

let test_persist_record_roundtrip () =
  let a =
    {
      P.op = Spec.Kv_map.Put (3, 44);
      time = 12_345;
      pid = 2;
      op_id = 99;
      result = Spec.Kv_map.Ack;
    }
  in
  (match P.decode_record (P.encode_record a) with
  | Some a' -> Alcotest.(check bool) "record round-trips" true (a = a')
  | None -> Alcotest.fail "clean record must decode");
  Alcotest.(check bool) "corrupt record decodes to None" true
    (P.decode_record "garbage \xff\xfe" = None);
  Alcotest.(check bool) "trailing bytes rejected" true
    (P.decode_record (P.encode_record a ^ "x") = None)

let test_persist_snapshot_and_replay () =
  let mk op time op_id =
    let result = snd (Spec.Kv_map.apply Spec.Kv_map.initial op) in
    { P.op; time; pid = 0; op_id; result }
  in
  let r1 = mk (Spec.Kv_map.Put (1, 10)) 100 7 in
  let r2 = mk (Spec.Kv_map.Put (2, 20)) 200 8 in
  let snap = P.replay P.empty_snapshot [ P.encode_record r1 ] in
  Alcotest.(check int) "hwm follows replay" 100 snap.P.s_hwm_time;
  (* records at or below the base hwm are skipped; later ones apply *)
  let snap2 =
    P.replay snap [ P.encode_record r1; P.encode_record r2; "corrupt" ]
  in
  Alcotest.(check int) "replay advances past the base" 200 snap2.P.s_hwm_time;
  Alcotest.(check int) "duplicate below hwm skipped, corrupt tail stops" 2
    (List.length snap2.P.s_applied);
  let encoded = P.encode_snapshot snap2 in
  match P.decode_snapshot encoded with
  | Some s ->
      Alcotest.(check bool) "snapshot round-trips" true (s = snap2);
      Alcotest.(check bool) "another object's payload rejected" true
        (let module PR = Net.Persist.Make (Net.Wire.Register_codec) in
         PR.decode_snapshot encoded = None)
  | None -> Alcotest.fail "clean snapshot must decode"

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "durable"
    [
      ( "wal",
        qsuite [ wal_roundtrip; wal_truncation; wal_bit_flips ]
        @ [
            Alcotest.test_case "file roundtrip, all fsync policies" `Quick
              test_wal_file_roundtrip_all_policies;
            Alcotest.test_case "missing file is the empty log" `Quick
              test_wal_missing_file_is_empty;
            Alcotest.test_case "fsync policy parsing" `Quick
              test_fsync_of_string;
          ] );
      ( "snapshot",
        qsuite [ snapshot_corruption ]
        @ [
            Alcotest.test_case "write/read/overwrite" `Quick
              test_snapshot_roundtrip;
          ] );
      ( "store",
        [
          Alcotest.test_case "fresh boot vs restart" `Quick
            test_store_fresh_then_restart;
          Alcotest.test_case "identity mismatch refused" `Quick
            test_store_meta_mismatch_refused;
          Alcotest.test_case "rotation, checkpoint, GC" `Quick
            test_store_rotation_and_gc;
          Alcotest.test_case "offline inspect" `Quick test_store_inspect;
          Alcotest.test_case "torn tail costs only the tail" `Quick
            test_store_torn_tail;
        ] );
      ( "persist",
        [
          Alcotest.test_case "typed record roundtrip" `Quick
            test_persist_record_roundtrip;
          Alcotest.test_case "snapshot encode/decode + replay" `Quick
            test_persist_snapshot_and_replay;
        ] );
    ]
