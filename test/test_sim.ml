(* Tests for the discrete-event engine: the Chapter III system model.
   Uses a purpose-built echo protocol to exercise delivery, timers, clock
   offsets, scripting semantics and the engine's guard rails. *)

(* A toy protocol: Ping sends a message to a target and responds when the
   echo returns; Timed responds when its timer fires; Cancelling sets two
   timers and cancels one.  Enough to observe every engine mechanism
   directly. *)
module Echo = struct
  type config = unit
  type state = { pid : int }
  type op = Ping of int | Timed of int | Cancelling of int | Forever
  type result = Done of Prelude.Ticks.t  (** clock time at response *)
  type msg = Request | Reply
  type timer = Tick of int | Loop

  let name = "echo"
  let init () ~n:_ ~pid = { pid }

  let equal_timer a b =
    match (a, b) with Tick x, Tick y -> x = y | Loop, Loop -> true | _ -> false

  let on_invoke () st ~clock:_ = function
    | Ping target -> (st, [ Sim.Action.Send (target, Request) ])
    | Timed delay -> (st, [ Sim.Action.Set_timer (delay, Tick delay) ])
    | Cancelling delay ->
        (* set two timers, cancel one: only the other fires *)
        ( st,
          [
            Sim.Action.Set_timer (delay, Tick delay);
            Sim.Action.Set_timer (delay * 2, Tick (delay * 2));
            Sim.Action.Cancel_timer (Tick delay);
          ] )
    | Forever -> (st, [ Sim.Action.Set_timer (1, Loop) ])

  let on_message () st ~clock ~src = function
    | Request -> (st, [ Sim.Action.Send (src, Reply) ])
    | Reply -> (st, [ Sim.Action.Respond (Done clock) ])

  let on_timer () st ~clock = function
    | Tick _ -> (st, [ Sim.Action.Respond (Done clock) ])
    | Loop -> (st, [ Sim.Action.Set_timer (1, Loop) ])
end

module E = Sim.Engine.Make (Echo)

let run ?check_delays ?view_ends ?(offsets = [| 0; 0; 0 |])
    ?(delay = Sim.Delay.constant 100) script =
  E.run ~config:() ~n:3 ~offsets ~delay ?check_delays ?view_ends script

let response trace i =
  match Sim.Trace.find_op trace ~index:i with
  | Some r -> (r.response_real, r.result)
  | None -> Alcotest.failf "op %d missing" i

let test_round_trip () =
  let out = run [ Sim.Workload.at 0 (Echo.Ping 1) 0 ] in
  let resp, _ = response out.trace 0 in
  Alcotest.(check (option int)) "round trip = 2×delay" (Some 200) resp;
  Alcotest.(check int) "two messages recorded" 2 (List.length out.trace.messages);
  Alcotest.(check bool) "all delivered" true
    (List.for_all (fun (m : _ Sim.Trace.message_record) -> m.delivered) out.trace.messages)

let test_timer_fires_at_clock_delay () =
  (* A clock offset must not change the real-time delay of a timer (clocks
     run at real-time rate). *)
  let out = run ~offsets:[| 500; 0; 0 |] [ Sim.Workload.at 0 (Echo.Timed 250) 0 ] in
  let resp, result = response out.trace 0 in
  Alcotest.(check (option int)) "fires 250 real later" (Some 250) resp;
  Alcotest.(check bool) "clock = real + offset" true (result = Some (Echo.Done 750))

let test_timer_cancellation () =
  let out = run [ Sim.Workload.at 0 (Echo.Cancelling 100) 0 ] in
  let resp, _ = response out.trace 0 in
  Alcotest.(check (option int)) "only the uncancelled timer fires" (Some 200) resp

let test_clock_times_recorded () =
  let out = run ~offsets:[| -300; 0; 0 |] [ Sim.Workload.at 0 (Echo.Timed 100) 1000 ] in
  match Sim.Trace.find_op out.trace ~index:0 with
  | Some r ->
      Alcotest.(check int) "invoke clock = invoke real + offset" 700 r.invoke_clock;
      Alcotest.(check (option int)) "response clock" (Some 800) r.response_clock
  | None -> Alcotest.fail "op missing"

let test_script_sequencing () =
  (* p0's second op must wait for the first response even though its
     not_before has long passed — one pending operation per process. *)
  let out =
    run [ Sim.Workload.at 0 (Echo.Timed 500) 0; Sim.Workload.at 0 (Echo.Timed 100) 10 ]
  in
  match out.trace.ops with
  | [ _; b ] ->
      Alcotest.(check int) "second invoked at first response" 500 b.invoke_real;
      Alcotest.(check (option int)) "second responds 100 later" (Some 600) b.response_real
  | _ -> Alcotest.fail "expected two ops"

let test_not_before_respected () =
  let out = run [ Sim.Workload.at 1 (Echo.Timed 10) 4242 ] in
  match out.trace.ops with
  | [ a ] -> Alcotest.(check int) "waits for not_before" 4242 a.invoke_real
  | _ -> Alcotest.fail "expected one op"

let test_determinism () =
  let script =
    [
      Sim.Workload.at 0 (Echo.Ping 1) 0;
      Sim.Workload.at 1 (Echo.Ping 2) 3;
      Sim.Workload.at 2 (Echo.Timed 77) 1;
    ]
  in
  let rng () = Sim.Delay.random (Prelude.Rng.make 5) ~d:100 ~u:40 in
  let t1 = (run ~delay:(rng ()) script).trace and t2 = (run ~delay:(rng ()) script).trace in
  List.iter2
    (fun (a : _ Sim.Trace.op_record) (b : _ Sim.Trace.op_record) ->
      Alcotest.(check (option int)) "same responses" a.response_real b.response_real)
    t1.ops t2.ops

let test_view_ends_drop_events () =
  (* Cut p0's view before its timer fires: the op never responds. *)
  let out = run ~view_ends:[| 200; 1000; 1000 |] [ Sim.Workload.at 0 (Echo.Timed 300) 0 ] in
  Alcotest.(check int) "one pending op" 1 (List.length (Sim.Trace.pending out.trace))

let test_inadmissible_delay_rejected () =
  Alcotest.check_raises "check_delays raises"
    (Sim.Engine.Protocol_error "inadmissible delay 100 ∉ [160,200] on p0→p1#0")
    (fun () -> ignore (run ~check_delays:(200, 40) [ Sim.Workload.at 0 (Echo.Ping 1) 0 ]))

let test_per_pair_indices () =
  let out = run [ Sim.Workload.at 0 (Echo.Ping 1) 0; Sim.Workload.at 0 (Echo.Ping 1) 500 ] in
  let indices =
    List.filter_map
      (fun (m : _ Sim.Trace.message_record) ->
        if m.src = 0 && m.dst = 1 then Some m.pair_index else None)
      out.trace.messages
  in
  Alcotest.(check (list int)) "0→1 indices count up" [ 0; 1 ] indices

let test_latency_helpers () =
  let out = run [ Sim.Workload.at 0 (Echo.Timed 321) 7 ] in
  Alcotest.(check int) "max_latency" 321 (Sim.Trace.max_latency out.trace);
  Alcotest.(check int) "completed" 1 (List.length (Sim.Trace.completed out.trace))

let test_delay_policies () =
  let m = [| [| 0; 11 |]; [| 22; 0 |] |] in
  Alcotest.(check int) "matrix" 11
    (Sim.Delay.matrix m ~src:0 ~dst:1 ~send_time:0 ~index:0);
  Alcotest.(check int) "override hit" 99
    (Sim.Delay.override (Sim.Delay.matrix m) [ (0, 1, 0, 99) ] ~src:0 ~dst:1
       ~send_time:0 ~index:0);
  Alcotest.(check int) "override miss" 22
    (Sim.Delay.override (Sim.Delay.matrix m) [ (0, 1, 0, 99) ] ~src:1 ~dst:0
       ~send_time:0 ~index:0);
  Alcotest.(check int) "extremes slow" 200
    (Sim.Delay.extremes ~d:200 ~u:50 ~slow_to:1 ~src:0 ~dst:1 ~send_time:0 ~index:0);
  Alcotest.(check int) "extremes fast" 150
    (Sim.Delay.extremes ~d:200 ~u:50 ~slow_to:1 ~src:1 ~dst:0 ~send_time:0 ~index:0)

let test_stop_after () =
  let out =
    E.run ~config:() ~n:3 ~offsets:[| 0; 0; 0 |] ~delay:(Sim.Delay.constant 100)
      ~stop_after:150 [ Sim.Workload.at 0 (Echo.Timed 100) 0; Sim.Workload.at 1 (Echo.Timed 100) 400 ]
  in
  Alcotest.(check int) "op within horizon completed" 1
    (List.length (Sim.Trace.completed out.trace));
  Alcotest.(check bool) "end_time within horizon" true (out.trace.end_time <= 150)

let test_event_budget () =
  (* a self-perpetuating timer must hit the runaway guard, not hang *)
  Alcotest.(check bool) "runaway protocol detected" true
    (try
       ignore
         (E.run ~config:() ~n:3 ~offsets:[| 0; 0; 0 |] ~delay:(Sim.Delay.constant 100)
            ~max_events:500 [ Sim.Workload.at 0 Echo.Forever 0 ]);
       false
     with Sim.Engine.Protocol_error _ -> true)

let test_workload_helpers () =
  let invs = Sim.Workload.seq 2 100 [ Echo.Timed 1; Echo.Timed 2; Echo.Timed 3 ] in
  Alcotest.(check int) "seq length" 3 (List.length invs);
  List.iter
    (fun (i : _ Sim.Workload.invocation) ->
      Alcotest.(check int) "seq pid" 2 i.pid;
      Alcotest.(check int) "seq not_before" 100 i.not_before)
    invs;
  let shifted = Sim.Workload.shift_pid invs ~pid:2 ~x:50 in
  List.iter
    (fun (i : _ Sim.Workload.invocation) ->
      Alcotest.(check int) "shifted not_before" 150 i.not_before)
    shifted;
  let untouched = Sim.Workload.shift_pid invs ~pid:1 ~x:50 in
  List.iter
    (fun (i : _ Sim.Workload.invocation) ->
      Alcotest.(check int) "other pids untouched" 100 i.not_before)
    untouched

(* ---- drifting clocks (the future-work extension) ---- *)

let test_clock_read () =
  let c = Sim.Clock.perfect 100 in
  Alcotest.(check int) "perfect clock" 600 (Sim.Clock.read c ~real:500);
  let fast = Sim.Clock.with_drift ~offset:0 ~num:1 ~den:4 in
  Alcotest.(check int) "rate 1.25" 1250 (Sim.Clock.read fast ~real:1000);
  let slow = Sim.Clock.with_drift ~offset:50 ~num:(-1) ~den:4 in
  Alcotest.(check int) "rate 0.75 + offset" 800 (Sim.Clock.read slow ~real:1000);
  Alcotest.check_raises "rate must stay positive"
    (Invalid_argument "Clock.with_drift: rate must stay positive") (fun () ->
      ignore (Sim.Clock.with_drift ~offset:0 ~num:(-5) ~den:4))

let test_clock_inverse () =
  let check_roundtrip c target now =
    let t = Sim.Clock.real_of_clock c ~now ~target in
    Alcotest.(check bool) "reaches target" true (Sim.Clock.read c ~real:t >= target);
    if t > now then
      Alcotest.(check bool) "minimal" true (Sim.Clock.read c ~real:(t - 1) < target)
  in
  check_roundtrip (Sim.Clock.perfect 0) 750 0;
  check_roundtrip (Sim.Clock.with_drift ~offset:0 ~num:1 ~den:4) 750 0;
  check_roundtrip (Sim.Clock.with_drift ~offset:13 ~num:(-1) ~den:7) 750 100;
  (* perfect clocks invert exactly *)
  Alcotest.(check int) "exact for perfect" 650
    (Sim.Clock.real_of_clock (Sim.Clock.perfect 100) ~now:0 ~target:750)

let test_drifting_timer () =
  (* A timer of 500 clock ticks on a rate-1.25 clock fires after 400 real
     ticks. *)
  let clocks = [| Sim.Clock.with_drift ~offset:0 ~num:1 ~den:4; Sim.Clock.perfect 0; Sim.Clock.perfect 0 |] in
  let out =
    E.run ~config:() ~n:3 ~offsets:[| 0; 0; 0 |] ~clocks
      ~delay:(Sim.Delay.constant 100)
      [ Sim.Workload.at 0 (Echo.Timed 500) 0 ]
  in
  match Sim.Trace.find_op out.trace ~index:0 with
  | Some r -> Alcotest.(check (option int)) "fires at 400 real" (Some 400) r.response_real
  | None -> Alcotest.fail "op missing"

let test_diagram () =
  let out =
    run [ Sim.Workload.at 0 (Echo.Timed 100) 0; Sim.Workload.at 1 (Echo.Timed 50) 120 ]
  in
  let pp_op fmt = function
    | Echo.Timed d -> Format.fprintf fmt "timed(%d)" d
    | Echo.Ping t -> Format.fprintf fmt "ping(%d)" t
    | Echo.Cancelling d -> Format.fprintf fmt "cancel(%d)" d
    | Echo.Forever -> Format.pp_print_string fmt "forever"
  in
  let pp_result fmt (Echo.Done t) = Format.fprintf fmt "%d" t in
  let lines = Sim.Diagram.render ~width:60 ~pp_op ~pp_result out.trace in
  (* one row per process plus the axis *)
  Alcotest.(check int) "rows" 4 (List.length lines);
  let p0 = List.nth lines 0 in
  Alcotest.(check bool) "p0 row labelled" true
    (String.length p0 > 4 && String.sub p0 0 3 = "p0 ");
  let has_bracket s = String.contains s '[' in
  Alcotest.(check bool) "p0 interval drawn" true (has_bracket p0);
  Alcotest.(check bool) "p1 interval drawn" true (has_bracket (List.nth lines 1));
  Alcotest.(check bool) "idle p2 has no interval" false (has_bracket (List.nth lines 2));
  Alcotest.(check (list string)) "empty trace"
    [ "(empty trace)" ]
    (Sim.Diagram.render ~pp_op ~pp_result
       { n = 2; offsets = [| 0; 0 |]; ops = []; messages = []; end_time = 0 })

(* ---- message loss and the reliable wrapper ---- *)

let test_lost_message_not_delivered () =
  let delay = Sim.Delay.drop_first (Sim.Delay.constant 100) ~from:0 ~to_:1 ~count:1 in
  let out = run ~delay [ Sim.Workload.at 0 (Echo.Ping 1) 0 ] in
  Alcotest.(check int) "op never completes" 1 (List.length (Sim.Trace.pending out.trace));
  let lost =
    List.filter (fun (m : _ Sim.Trace.message_record) -> not m.delivered) out.trace.messages
  in
  Alcotest.(check int) "one undelivered message" 1 (List.length lost)

module Rel = Sim.Reliable.Make (Echo)
module RE = Sim.Engine.Make (Rel)

let rel_cfg : Rel.config = { inner = (); retransmit_every = 150; max_retries = 6 }

let test_reliable_recovers () =
  (* Drop the first 2 frames p0→p1; the ping still completes. *)
  let delay = Sim.Delay.drop_first (Sim.Delay.constant 100) ~from:0 ~to_:1 ~count:2 in
  let out =
    RE.run ~config:rel_cfg ~n:3 ~offsets:[| 0; 0; 0 |] ~delay
      [ Sim.Workload.at 0 (Echo.Ping 1) 0 ]
  in
  match Sim.Trace.find_op out.trace ~index:0 with
  | Some r ->
      (* 2 retransmit periods + request + reply *)
      Alcotest.(check (option int)) "completes at 2·150 + 200" (Some 500) r.response_real
  | None -> Alcotest.fail "op missing"

let test_reliable_dedupes () =
  (* No losses: duplicates can still arise from retransmits racing acks;
     the inner protocol must see each message exactly once.  Slow acks
     (delay d = 200 > retransmit period 150) force a duplicate data
     frame. *)
  let delay : Sim.Delay.t = fun ~src:_ ~dst:_ ~send_time:_ ~index:_ -> 200 in
  let out =
    RE.run ~config:rel_cfg ~n:3 ~offsets:[| 0; 0; 0 |] ~delay
      [ Sim.Workload.at 0 (Echo.Ping 1) 0 ]
  in
  (match Sim.Trace.find_op out.trace ~index:0 with
  | Some r ->
      Alcotest.(check (option int)) "ping completed once, round trip 400" (Some 400)
        r.response_real
  | None -> Alcotest.fail "op missing");
  (* more frames than logical messages were sent *)
  Alcotest.(check bool) "retransmission happened" true
    (List.length out.trace.messages > 4)

let test_reliable_gives_up () =
  let delay = Sim.Delay.drop_first (Sim.Delay.constant 100) ~from:0 ~to_:1 ~count:100 in
  Alcotest.(check bool) "budget exhaustion fails loudly" true
    (try
       ignore
         (RE.run ~config:rel_cfg ~n:3 ~offsets:[| 0; 0; 0 |] ~delay
            [ Sim.Workload.at 0 (Echo.Ping 1) 0 ]);
       false
     with Failure msg -> String.length msg > 0)

(* The model's message guarantees (Ch. III.A): every received message was
   sent, received at most once, and — absent loss — eventually received. *)
let message_conservation_prop =
  QCheck.Test.make ~name:"messages delivered exactly once, none invented" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Prelude.Rng.make (seed + 17) in
      let script =
        List.concat_map
          (fun pid -> Sim.Workload.seq pid (Prelude.Rng.int rng 50) [ Echo.Ping ((pid + 1) mod 3) ])
          [ 0; 1; 2 ]
      in
      let out = run ~delay:(Sim.Delay.random rng ~d:100 ~u:40) script in
      (* every recorded message was delivered (reliable network, finite
         run), and the per-pair indices are unique: no duplication *)
      List.for_all (fun (m : _ Sim.Trace.message_record) -> m.delivered) out.trace.messages
      &&
      let keys =
        List.map (fun (m : _ Sim.Trace.message_record) -> (m.src, m.dst, m.pair_index))
          out.trace.messages
      in
      List.length keys = List.length (List.sort_uniq compare keys))

(* -- Delay-policy properties: every generated delay is admissible or a
   loss marker, and seeded policies are reproducible draw by draw. -- *)

(* Drive a policy through a deterministic scan of links and indices,
   collecting every delay it assigns. *)
let scan_policy policy =
  List.concat_map
    (fun i ->
      List.concat_map
        (fun src ->
          List.filter_map
            (fun dst ->
              if src = dst then None
              else Some (policy ~src ~dst ~send_time:(i * 13) ~index:i))
            [ 0; 1; 2 ])
        [ 0; 1; 2 ])
    (List.init 20 Fun.id)

let random_in_window_prop =
  QCheck.Test.make ~name:"random delays always lie in [d − u, d]" ~count:100
    QCheck.(pair small_int (pair (int_range 1 5000) (int_range 0 5000)))
    (fun (seed, (d, u)) ->
      let u = min u d in
      let policy = Sim.Delay.random (Prelude.Rng.make seed) ~d ~u in
      List.for_all (fun delay -> d - u <= delay && delay <= d) (scan_policy policy))

let lossy_in_window_or_dropped_prop =
  QCheck.Test.make
    ~name:"lossy delays are in [d − u, d] or the loss marker" ~count:100
    QCheck.(pair small_int (int_range 0 100))
    (fun (seed, percent) ->
      let rng = Prelude.Rng.make (seed + 3) in
      let d = 1000 and u = 400 in
      let policy = Sim.Delay.lossy (Sim.Delay.random rng ~d ~u) ~rng ~percent in
      List.for_all
        (fun delay -> delay = Sim.Delay.dropped || (d - u <= delay && delay <= d))
        (scan_policy policy))

let seeded_reproducible_prop =
  QCheck.Test.make ~name:"equal seeds give identical delay streams" ~count:100
    QCheck.(pair small_int (int_range 0 60))
    (fun (seed, percent) ->
      let make () =
        let rng = Prelude.Rng.make seed in
        Sim.Delay.lossy (Sim.Delay.random rng ~d:900 ~u:300) ~rng ~percent
      in
      scan_policy (make ()) = scan_policy (make ()))

let lossy_bounded_streak_prop =
  QCheck.Test.make
    ~name:"lossy_bounded never drops more than max_consecutive in a row"
    ~count:50
    QCheck.(pair small_int (int_range 1 4))
    (fun (seed, max_consecutive) ->
      let rng = Prelude.Rng.make (seed + 21) in
      let policy =
        Sim.Delay.lossy_bounded (Sim.Delay.constant 10) ~rng ~percent:90
          ~max_consecutive
      in
      let worst = ref 0 and streak = ref 0 in
      for i = 0 to 199 do
        if policy ~src:0 ~dst:1 ~send_time:i ~index:i < 0 then begin
          incr streak;
          worst := max !worst !streak
        end
        else streak := 0
      done;
      !worst <= max_consecutive)

let lossy_budget_prop =
  QCheck.Test.make ~name:"lossy_budget drops at most its budget per link" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Prelude.Rng.make (seed + 9) in
      let policy =
        Sim.Delay.lossy_budget (Sim.Delay.constant 10) ~rng ~percent:80 ~budget:3
      in
      let drops = ref 0 in
      for i = 0 to 49 do
        if policy ~src:0 ~dst:1 ~send_time:i ~index:i < 0 then incr drops
      done;
      !drops <= 3)

let () =
  Alcotest.run "sim"
    [
      ( "delivery",
        [
          Alcotest.test_case "round trip" `Quick test_round_trip;
          Alcotest.test_case "pair indices" `Quick test_per_pair_indices;
          Alcotest.test_case "inadmissible rejected" `Quick test_inadmissible_delay_rejected;
          Alcotest.test_case "delay policies" `Quick test_delay_policies;
        ] );
      ( "timers",
        [
          Alcotest.test_case "fire at clock delay" `Quick test_timer_fires_at_clock_delay;
          Alcotest.test_case "cancellation" `Quick test_timer_cancellation;
        ] );
      ("clocks", [ Alcotest.test_case "clock times recorded" `Quick test_clock_times_recorded ]);
      ( "scripts",
        [
          Alcotest.test_case "sequencing" `Quick test_script_sequencing;
          Alcotest.test_case "not_before" `Quick test_not_before_respected;
        ] );
      ( "engine",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "view ends" `Quick test_view_ends_drop_events;
          Alcotest.test_case "latency helpers" `Quick test_latency_helpers;
          Alcotest.test_case "stop_after" `Quick test_stop_after;
          Alcotest.test_case "event budget" `Quick test_event_budget;
          Alcotest.test_case "workload helpers" `Quick test_workload_helpers;
        ] );
      ("diagram", [ Alcotest.test_case "render" `Quick test_diagram ]);
      ( "drift",
        [
          Alcotest.test_case "clock read" `Quick test_clock_read;
          Alcotest.test_case "clock inverse" `Quick test_clock_inverse;
          Alcotest.test_case "drifting timer" `Quick test_drifting_timer;
        ] );
      ( "loss & reliable",
        Alcotest.test_case "lost message" `Quick test_lost_message_not_delivered
        :: Alcotest.test_case "reliable recovers" `Quick test_reliable_recovers
        :: Alcotest.test_case "reliable dedupes" `Quick test_reliable_dedupes
        :: Alcotest.test_case "reliable gives up" `Quick test_reliable_gives_up
        :: List.map QCheck_alcotest.to_alcotest
             [ lossy_budget_prop; message_conservation_prop ] );
      ( "delay policies (properties)",
        List.map QCheck_alcotest.to_alcotest
          [
            random_in_window_prop;
            lossy_in_window_or_dropped_prop;
            seeded_reproducible_prop;
            lossy_bounded_streak_prop;
          ] );
    ]
