(* Sharded namespace: ring balance and minimal-remap properties (the two
   qcheck contracts Ring.mli promises), directory determinism, per-shard
   fault-plan projection, zipfian sampler shape, and an in-process
   multi-shard host cluster — many Algorithm 1 instances multiplexed over
   one set of TCP links, driven across shards and verified to read their
   own writes. *)

let fair_bound ~members ~keys =
  (* 2× the fair share, plus a small absolute floor so tiny key counts
     don't flap on rounding. *)
  (2 * keys / members) + 8

(* Balance: with the default 64 vnodes, no member owns more than ~2× its
   fair share of uniformly drawn keys, for any seed and member count. *)
let balance_prop =
  QCheck.Test.make ~name:"ring balance within 2x of fair at 64 vnodes"
    ~count:40
    QCheck.(pair small_int (int_range 2 16))
    (fun (seed, members) ->
      let ring =
        Shard.Ring.make ~seed ~members:(List.init members Fun.id) ()
      in
      let keys = 20_000 in
      let census = Shard.Ring.spread ring ~keys in
      let bound = fair_bound ~members ~keys in
      Array.for_all (fun (_, owned) -> owned <= bound) census)

(* Minimal remapping, join side: adding a member moves a key only if it
   now routes to the new member — nothing reshuffles between survivors. *)
let add_remap_prop =
  QCheck.Test.make ~name:"adding a member only moves keys to it" ~count:40
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, members) ->
      let before =
        Shard.Ring.make ~seed ~members:(List.init members Fun.id) ()
      in
      let after = Shard.Ring.add before members in
      List.for_all
        (fun key ->
          let b = Shard.Ring.route before key in
          let a = Shard.Ring.route after key in
          a = b || a = members)
        (List.init 2_000 (fun i -> (i * 2654435761) lxor seed)))

(* Minimal remapping, leave side: removing a member moves only the keys it
   owned; every other key keeps its owner. *)
let remove_remap_prop =
  QCheck.Test.make ~name:"removing a member only moves its own keys"
    ~count:40
    QCheck.(pair small_int (int_range 3 12))
    (fun (seed, members) ->
      let before =
        Shard.Ring.make ~seed ~members:(List.init members Fun.id) ()
      in
      let victim = seed mod members in
      let after = Shard.Ring.remove before victim in
      List.for_all
        (fun key ->
          let b = Shard.Ring.route before key in
          let a = Shard.Ring.route after key in
          if b = victim then a <> victim else a = b)
        (List.init 2_000 (fun i -> (i * 40503) lxor (seed * 7))))

(* Construction-order independence: the ring is a pure function of
   (seed, vnodes, member set), so a shuffled member list builds the same
   routing table — what lets every process rebuild it locally. *)
let order_independent_prop =
  QCheck.Test.make ~name:"ring independent of member construction order"
    ~count:30
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, members) ->
      let ids = List.init members Fun.id in
      let shuffled =
        List.sort (fun a b -> compare ((a * 31) mod 17) ((b * 31) mod 17)) ids
      in
      let r1 = Shard.Ring.make ~seed ~members:ids () in
      let r2 = Shard.Ring.make ~seed ~members:shuffled () in
      List.for_all
        (fun key -> Shard.Ring.route r1 key = Shard.Ring.route r2 key)
        (List.init 500 (fun i -> i * 7919)))

let test_ring_validation () =
  Alcotest.check_raises "empty members" (Invalid_argument "Ring.make: members must be non-empty")
    (fun () -> ignore (Shard.Ring.make ~seed:1 ~members:[] ()));
  let r = Shard.Ring.make ~seed:1 ~members:[ 0; 1 ] () in
  Alcotest.(check (list int)) "members ascending" [ 0; 1 ] (Shard.Ring.members r);
  (match Shard.Ring.remove r 0 with
  | r' -> (
      Alcotest.(check (list int)) "removed" [ 1 ] (Shard.Ring.members r');
      match Shard.Ring.remove r' 1 with
      | _ -> Alcotest.fail "removing the last member must raise"
      | exception Invalid_argument _ -> ()));
  match Shard.Ring.add r 1 with
  | _ -> Alcotest.fail "duplicate add must raise"
  | exception Invalid_argument _ -> ()

(* ---- directory ---- *)

let test_directory_pure () =
  let mk () = Shard.Directory.make ~vnodes:32 ~seed:99 ~shards:16 ~n:5 () in
  let d1 = mk () and d2 = mk () in
  for key = 0 to 999 do
    let l1 = Shard.Directory.locate d1 ~key and l2 = Shard.Directory.locate d2 ~key in
    Alcotest.(check bool) "same location from same three integers" true (l1 = l2);
    Alcotest.(check bool) "shard in range" true
      (l1.Shard.Directory.shard >= 0 && l1.Shard.Directory.shard < 16);
    Alcotest.(check bool) "home in range" true
      (l1.Shard.Directory.home >= 0 && l1.Shard.Directory.home < 5);
    Alcotest.(check (list int)) "fully replicated" [ 0; 1; 2; 3; 4 ]
      l1.Shard.Directory.replicas
  done;
  (* Homes spread over the replica set rather than all landing on 0. *)
  let homes = Hashtbl.create 8 in
  for shard = 0 to 15 do
    Hashtbl.replace homes (Shard.Directory.home_of d1 ~shard) ()
  done;
  Alcotest.(check bool) "homes use several replicas" true (Hashtbl.length homes >= 2)

(* ---- per-shard fault-plan projection ---- *)

let test_plan_shard_scope () =
  match Fault.Fault_plan.compile ~seed:5 ~spec:"drop(50)%2@0.1s-0.5s;spike(2ms)" with
  | Error e -> Alcotest.failf "compile: %s" e
  | Ok plan ->
      let p2 = Fault.Fault_plan.for_shard plan 2 in
      let p0 = Fault.Fault_plan.for_shard plan 0 in
      Alcotest.(check int) "shard 2 keeps both rules" 2
        (List.length (Fault.Fault_plan.rules p2));
      Alcotest.(check int) "shard 0 keeps only the unscoped rule" 1
        (List.length (Fault.Fault_plan.rules p0));
      (* Same rule id in both projections: the id is the decision salt, so
         a rule behaves identically wherever it applies. *)
      let ids p =
        List.map (fun (r : Fault.Fault_plan.rule) -> r.Fault.Fault_plan.id)
          (Fault.Fault_plan.rules p)
      in
      Alcotest.(check bool) "unscoped rule keeps its id" true
        (List.for_all (fun id -> List.mem id (ids p2)) (ids p0))

let test_plan_shard_parse_errors () =
  (match Fault.Fault_plan.compile ~seed:1 ~spec:"drop(10)%x" with
  | Ok _ -> Alcotest.fail "bad shard scope must be rejected"
  | Error _ -> ());
  match Fault.Fault_plan.compile ~seed:1 ~spec:"drop(10)%-1" with
  | Ok _ -> Alcotest.fail "negative shard scope must be rejected"
  | Error _ -> ()

(* ---- zipfian sampler ---- *)

let test_zipf_shape () =
  let n = 1000 in
  let z = Runtime.Workloads.Zipf.make ~n ~theta:0.99 in
  let rng = Prelude.Rng.make 11 in
  let counts = Array.make n 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let k = Runtime.Workloads.Zipf.sample z rng in
    Alcotest.(check bool) "sample in range" true (k >= 0 && k < n);
    counts.(k) <- counts.(k) + 1
  done;
  (* Rank 0 must dominate the tail decisively under theta = 0.99. *)
  let tail = Array.fold_left ( + ) 0 (Array.sub counts (n / 2) (n / 2)) in
  Alcotest.(check bool) "head rank beats the entire upper-half tail" true
    (counts.(0) > tail);
  (* theta = 0 degenerates to uniform: no rank wildly over fair share. *)
  let u = Runtime.Workloads.Zipf.make ~n:10 ~theta:0. in
  let ucounts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Runtime.Workloads.Zipf.sample u rng in
    ucounts.(k) <- ucounts.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "uniform-ish at theta 0" true (c < 2_000))
    ucounts

(* ---- in-process multi-shard host cluster ---- *)

let test_host_cluster_in_process () =
  let module H = Shard.Host.Make (Net.Wire.Kv_wired) in
  let module Cl = Net.Client.Make (Net.Wire.Kv_wired) in
  let n = 3 and shards = 4 in
  let params =
    Core.Params.make ~n ~d:7000 ~u:5500
      ~eps:(Core.Params.optimal_eps ~n:3 ~u:5500)
      ~x:0 ()
  in
  let listeners =
    Array.init n (fun _ -> Net.Tcp_transport.listen ~host:"127.0.0.1" ~port:0)
  in
  let addrs =
    Array.map
      (fun (l : Net.Tcp_transport.listener) -> ("127.0.0.1", l.port))
      listeners
  in
  let start_us = Some (Prelude.Mclock.now_us ()) in
  let handles =
    Array.init n (fun pid ->
        H.start ~listener:listeners.(pid)
          {
            Shard.Host.pid;
            shards;
            addrs;
            params;
            offset = pid * 100;
            start_us;
            trace = None;
            durable = None;
            fsync = Durable.Wal.Never;
            snapshot_every = 0;
            chaos = None;
            fallback = None;
            log = (fun _ -> ());
          })
  in
  let conns =
    Array.map
      (fun (_, port) ->
        match Cl.connect ~host:"127.0.0.1" ~port () with
        | Ok c -> c
        | Error e -> Alcotest.failf "client connect: %s" e)
      addrs
  in
  let dir = Shard.Directory.make ~vnodes:16 ~seed:42 ~shards ~n () in
  (* Route every key through the directory, write on its home replica,
     read it back through a *different* replica of the same shard:
     sequential cross-replica read-your-writes, per shard instance. *)
  let seen = Hashtbl.create 8 in
  for key = 0 to 23 do
    let loc = Shard.Directory.locate dir ~key in
    Hashtbl.replace seen loc.Shard.Directory.shard ();
    (match
       Cl.invoke ~shard:loc.Shard.Directory.shard
         conns.(loc.Shard.Directory.home)
         (Spec.Kv_map.Put (key, key * 13))
     with
    | Ok Spec.Kv_map.Ack -> ()
    | Ok r ->
        Alcotest.failf "put: unexpected %s"
          (Format.asprintf "%a" Spec.Kv_map.pp_result r)
    | Error e -> Alcotest.failf "put: %s" e);
    match
      Cl.invoke ~shard:loc.Shard.Directory.shard
        conns.((loc.Shard.Directory.home + 1) mod n)
        (Spec.Kv_map.Get key)
    with
    | Ok r ->
        Alcotest.(check bool)
          (Printf.sprintf "get %d (shard %d) sees put" key
             loc.Shard.Directory.shard)
          true
          (r = Spec.Kv_map.Found (key * 13))
    | Error e -> Alcotest.failf "get: %s" e
  done;
  Alcotest.(check bool) "keys actually spread over several shards" true
    (Hashtbl.length seen >= 2);
  (* Out-of-range shard tags must be refused, not crash the host. *)
  (match Cl.invoke ~shard:shards conns.(0) (Spec.Kv_map.Get 0) with
  | Ok _ -> Alcotest.fail "invoke with shard out of range must fail"
  | Error _ -> ());
  Array.iter Cl.close conns;
  Array.iter
    (fun h ->
      let records, stats = H.stop h in
      Alcotest.(check bool) "host recorded ops on some shard" true
        (Array.exists (fun per_shard -> per_shard <> []) records);
      Alcotest.(check bool) "host transport sent messages" true
        (stats.Runtime.Transport_intf.sent > 0))
    handles

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "shard"
    [
      ( "ring",
        qsuite
          [
            balance_prop;
            add_remap_prop;
            remove_remap_prop;
            order_independent_prop;
          ]
        @ [ Alcotest.test_case "validation" `Quick test_ring_validation ] );
      ( "directory",
        [
          Alcotest.test_case "pure resolution, full replication" `Quick
            test_directory_pure;
        ] );
      ( "fault-scope",
        [
          Alcotest.test_case "%shard projection" `Quick test_plan_shard_scope;
          Alcotest.test_case "%shard parse errors" `Quick
            test_plan_shard_parse_errors;
        ] );
      ( "zipf",
        [ Alcotest.test_case "skewed head, uniform at 0" `Quick test_zipf_shape ] );
      ( "host",
        [
          Alcotest.test_case "in-process 3-replica 4-shard cluster" `Quick
            test_host_cluster_in_process;
        ] );
    ]
