(** Benchmark harness: one Bechamel test per reproduced table/figure.

    Two things happen here:

    1. every experiment of the registry (Tables I–IV, Figures 1/3/4-5,
       Theorems C.1/D.1/E.1, the clock-sync substrate, the X trade-off and
       the baseline comparison) is run once and its report — the rows/series
       the paper publishes — is printed;
    2. each experiment is then benchmarked under Bechamel (wall-clock per
       full run-family execution), demonstrating that regenerating the
       paper's entire evaluation costs milliseconds of simulated-adversary
       time.

    Latency numbers inside the reports are *simulated ticks* — exact by
    construction — so "paper vs measured" is about shape identity, not
    wall-clock. *)

open Bechamel
open Toolkit

let reports () =
  List.map
    (fun (e : Experiments.Registry.entry) -> e.run ())
    (Experiments.Registry.all ())

let tests =
  List.map
    (fun (e : Experiments.Registry.entry) ->
      Test.make ~name:e.id (Staged.stage (fun () -> ignore (e.run ()))))
    (Experiments.Registry.all ())

(* Raw engine throughput: one full 5-process, 15-operation simulated run of
   Algorithm 1 per iteration, per data type — how much simulated work a
   host-second buys. *)
module Throughput (D : Spec.Data_type.SAMPLED) = struct
  module Alg = Core.Algorithm1.Make (D)
  module Engine = Sim.Engine.Make (Alg)

  let n = 5
  let params = Core.Params.make ~n ~d:1200 ~u:400 ~eps:320 ~x:0 ()

  let script =
    List.concat_map
      (fun pid ->
        List.mapi
          (fun i op -> Sim.Workload.at pid op ((pid * 150) + (i * 2000)))
          (List.filteri (fun i _ -> i < 3) D.sample_ops))
      [ 0; 1; 2; 3; 4 ]

  let test =
    Test.make
      ~name:("engine-" ^ D.name)
      (Staged.stage (fun () ->
           ignore
             (Engine.run ~config:params ~n ~offsets:[| 0; 80; 160; 240; 320 |]
                ~delay:(Sim.Delay.constant 1000) script)))
end

module T_reg = Throughput (Spec.Register)
module T_queue = Throughput (Spec.Fifo_queue)
module T_stack = Throughput (Spec.Lifo_stack)
module T_tree = Throughput (Spec.Rooted_tree)
module T_bst = Throughput (Spec.Bst)
module T_kv = Throughput (Spec.Kv_map)

(* Linearizability-checker cost on a highly concurrent history: 18 mutually
   overlapping register operations — the memoized Wing–Gong search must stay
   polynomial-ish in practice. *)
module Lin_bench = struct
  module L = Linearize.Make (Spec.Register)

  let history : L.entry list =
    List.init 18 (fun i ->
        let pid = i mod 6 in
        let base = 100 * (i / 6) in
        {
          L.pid;
          op = (if i mod 3 = 0 then Spec.Register.Write i
                else if i mod 3 = 1 then Spec.Register.Rmw i
                else Spec.Register.Read);
          result =
            (if i mod 3 = 0 then Spec.Register.Ack else Spec.Register.Value 0);
          invoke = base;
          response = base + 5000 (* everything overlaps *);
        })

  let test =
    Test.make ~name:"wing-gong-18-concurrent"
      (Staged.stage (fun () -> ignore (L.check history)))
end

let throughput_tests =
  [
    T_reg.test;
    T_queue.test;
    T_stack.test;
    T_tree.test;
    T_bst.test;
    T_kv.test;
    Lin_bench.test;
  ]

(* Live-runtime group: Algorithm 1 on real domains (wall-clock, not
   simulated ticks).  One full closed-loop run — cluster spawn, 48 ops
   through the delay-injecting transport, post-hoc linearizability check —
   per iteration, plus the histogram hot path on its own. *)
module Live_bench = struct
  module Gen = Runtime.Loadgen.Make (Runtime.Workloads.Register_live)

  let run_test =
    Test.make ~name:"live-register-n3-48ops"
      (Staged.stage (fun () ->
           ignore
             (Gen.run ~n:3 ~d:300 ~u:100 ~slack:2000 ~round:48 ~ops:48 ~seed:7
                ())))

  let hist_test =
    Test.make ~name:"histogram-add-10k"
      (Staged.stage (fun () ->
           let h = Runtime.Histogram.create () in
           for i = 1 to 10_000 do
             Runtime.Histogram.add h (i * 17 mod 100_000)
           done;
           ignore (Runtime.Histogram.percentile h 99.)))
end

let runtime_tests = [ Live_bench.run_test; Live_bench.hist_test ]

(* Wire-codec group: cost of putting Algorithm 1 entries on the wire.  The
   TCP transport encodes every broadcast entry once per peer and CRCs the
   whole frame, so encode+decode throughput bounds the message rate a
   replica can sustain before the codec — not the network — is the
   bottleneck. *)
module Codec_bench = struct
  module C = Net.Codec.Make (Net.Wire.Kv_codec)

  let entries =
    List.init 64 (fun i ->
        C.Entry
          {
            op = Spec.Kv_map.Put (i mod 16, i * 17);
            time = i * 997;
            pid = i mod 5;
            trace = i * 1_048_583;
            op_id = i + 1;
            shard = i mod 8;
          })

  let blob = String.concat "" (List.map C.encode entries)

  let encode_test =
    Test.make ~name:"codec-encode-64-entries"
      (Staged.stage (fun () -> List.iter (fun m -> ignore (C.encode m)) entries))

  let decode_test =
    Test.make ~name:"codec-decode-64-entries"
      (Staged.stage (fun () ->
           let rec go pos =
             if pos < String.length blob then
               match C.decode ~pos blob with
               | Net.Codec.Got (_, next) -> go next
               | Net.Codec.Need_more _ | Net.Codec.Corrupt _ ->
                   failwith "codec bench: blob must decode cleanly"
           in
           go 0))

  let crc_test =
    let payload = String.make 4096 '\x5a' in
    Test.make ~name:"crc32-4k"
      (Staged.stage (fun () ->
           ignore (Net.Codec.crc32 payload ~pos:0 ~len:(String.length payload))))
end

let codec_tests = [ Codec_bench.encode_test; Codec_bench.decode_test; Codec_bench.crc_test ]

(* Fault group: what the chaos layer costs.  [Fault_plan.decide] sits on
   every send of a chaos-wrapped transport, so its throughput bounds the
   message rate a faulted cluster can sustain; the full chaos run prices a
   complete faulted experiment — cluster, injected drops/delays, post-hoc
   linearizability check and assumption-monitor correlation. *)
module Fault_bench = struct
  let plan =
    match
      Fault.Fault_plan.compile ~seed:41 ~spec:"drop(10);jitter(300us);dup(5)"
    with
    | Ok p -> p
    | Error e -> failwith e

  let decide_test =
    Test.make ~name:"fault-decide-10k"
      (Staged.stage (fun () ->
           for i = 1 to 10_000 do
             ignore
               (Fault.Fault_plan.decide plan ~now_us:(i * 50) ~src:(i mod 3)
                  ~dst:((i + 1) mod 3) ~index:i)
           done))

  let compile_test =
    Test.make ~name:"fault-compile-plan"
      (Staged.stage (fun () ->
           ignore
             (Fault.Fault_plan.compile ~seed:41
                ~spec:
                  "drop(30)/0>1@0.2s-0.6s;spike(3ms);crash(1)@0.4s;restart(1)@0.9s")))

  let chaos_run_test =
    Test.make ~name:"chaos-register-n3-48ops"
      (Staged.stage (fun () ->
           ignore
             (Fault.Chaos_run.run ~workload:Runtime.Workloads.register ~n:3
                ~d:300 ~u:100 ~slack:2000 ~round:48 ~plan ~ops:48 ~seed:7 ())))
end

let fault_tests =
  [ Fault_bench.decide_test; Fault_bench.compile_test; Fault_bench.chaos_run_test ]

(* Obs group: what tracing costs.  [recorder-emit-10k] prices the hot path
   (one CAS + two stores per event, drainer running); the encode/decode
   pair prices the binary trace format; and the traced/untraced live-run
   pair measures the end-to-end overhead of recording a full closed-loop
   run — the delta is the number EXPERIMENTS.md quotes. *)
module Obs_bench = struct
  module Gen = Runtime.Loadgen.Make (Runtime.Workloads.Register_live)

  let emit_test =
    Test.make ~name:"recorder-emit-10k"
      (Staged.stage (fun () ->
           let r = Obs.Recorder.start ~epoch_us:0 ~sink:(fun _ -> ()) () in
           Obs.Recorder.install r;
           for i = 1 to 10_000 do
             Obs.Recorder.emit ~pid:(i mod 3) ~kind:Obs.Event.Send ~trace:i
               ~a:(i mod 5) ()
           done;
           Obs.Recorder.uninstall ();
           Obs.Recorder.stop r))

  let events =
    List.init 1_000 (fun i ->
        {
          Obs.Event.t_us = i * 137;
          pid = i mod 3;
          kind = (if i mod 2 = 0 then Obs.Event.Send else Obs.Event.Deliver);
          trace = i * 524_309;
          a = i mod 7;
          b = i mod 11;
        })

  let blob =
    let b = Buffer.create 4096 in
    List.iter (Obs.Event.encode b) events;
    Buffer.contents b

  let encode_test =
    Test.make ~name:"event-encode-1k"
      (Staged.stage (fun () ->
           let b = Buffer.create 4096 in
           List.iter (Obs.Event.encode b) events))

  let decode_test =
    Test.make ~name:"event-decode-1k"
      (Staged.stage (fun () ->
           let rec go pos =
             match Obs.Event.decode blob ~pos with
             | Some (_, next) -> go next
             | None -> ()
           in
           go 0))

  let live_untraced =
    Test.make ~name:"live-untraced-48ops"
      (Staged.stage (fun () ->
           ignore
             (Gen.run ~n:3 ~d:300 ~u:100 ~slack:2000 ~round:48 ~ops:48 ~seed:7
                ())))

  let live_traced =
    Test.make ~name:"live-traced-48ops"
      (Staged.stage (fun () ->
           let sink, _ = Obs.Recorder.memory_sink () in
           let r =
             Obs.Recorder.start ~epoch_us:(Prelude.Mclock.now_us ()) ~sink ()
           in
           Obs.Recorder.install r;
           ignore
             (Gen.run ~n:3 ~d:300 ~u:100 ~slack:2000 ~round:48 ~ops:48 ~seed:7
                ());
           Obs.Recorder.uninstall ();
           Obs.Recorder.stop r))
end

let obs_tests =
  [
    Obs_bench.emit_test;
    Obs_bench.encode_test;
    Obs_bench.decode_test;
    Obs_bench.live_untraced;
    Obs_bench.live_traced;
  ]

(* Durable group: what crash recovery costs.  The append trio prices the
   fsync policy choice — [always] sits on every mutation's apply path, so
   its per-record cost is the headline durability tax EXPERIMENTS.md
   quotes; [interval]/[never] show what the bounded-loss settings buy
   back.  Replay and snapshot-write price the two halves of recovery
   time. *)
module Durable_bench = struct
  let records = List.init 256 (fun i -> Printf.sprintf "record-%d-%s" i (String.make (i mod 32) 'x'))

  let dir = Filename.get_temp_dir_name ()

  let append_test name fsync =
    Test.make ~name
      (Staged.stage (fun () ->
           let path =
             Filename.concat dir
               (Printf.sprintf "tb-bench-wal-%d.log" (Unix.getpid ()))
           in
           let w = Durable.Wal.create ~path ~fsync in
           List.iter (Durable.Wal.append w) records;
           Durable.Wal.close w;
           try Sys.remove path with Sys_error _ -> ()))

  let blob =
    let b = Buffer.create 8192 in
    List.iter (Durable.Wal.encode_record b) records;
    Buffer.contents b

  let replay_test =
    Test.make ~name:"wal-replay-256"
      (Staged.stage (fun () -> ignore (Durable.Wal.of_string blob)))

  let snapshot_test =
    Test.make ~name:"snapshot-write-8k"
      (Staged.stage
         (let payload = String.make 8192 '\x42' in
          fun () ->
            let path =
              Filename.concat dir
                (Printf.sprintf "tb-bench-snap-%d.snap" (Unix.getpid ()))
            in
            Durable.Snapshot.write ~path payload;
            try Sys.remove path with Sys_error _ -> ()))
end

let durable_tests =
  [
    Durable_bench.append_test "wal-append-256-fsync-always" Durable.Wal.Always;
    Durable_bench.append_test "wal-append-256-fsync-interval"
      (Durable.Wal.Interval 5_000);
    Durable_bench.append_test "wal-append-256-fsync-never" Durable.Wal.Never;
    Durable_bench.replay_test;
    Durable_bench.snapshot_test;
  ]

(* Shard group: the sharded namespace's hot paths.  [ring-route] and
   [directory-locate] sit on every client invocation of a sharded cluster
   (pure hashing + binary search — no directory service round-trip), and
   [zipf-sample] on every loadgen draw; their throughput bounds the op
   rate one client domain can source.  The aggregate/per-shard numbers a
   `timebounds shards` run reports come from a cluster of these plus the
   usual replica machinery. *)
module Shard_bench = struct
  let ring =
    Shard.Ring.make ~vnodes:64 ~seed:42 ~members:(List.init 64 Fun.id) ()

  let dir = Shard.Directory.make ~vnodes:64 ~seed:42 ~shards:64 ~n:5 ()
  let zipf = Runtime.Workloads.Zipf.make ~n:1_000_000 ~theta:0.99

  let route_test =
    Test.make ~name:"ring-route-10k"
      (Staged.stage (fun () ->
           for i = 1 to 10_000 do
             ignore (Shard.Ring.route ring (i * 2654435761))
           done))

  let locate_test =
    Test.make ~name:"directory-locate-10k"
      (Staged.stage (fun () ->
           for i = 1 to 10_000 do
             ignore (Shard.Directory.locate dir ~key:(i * 40503))
           done))

  let zipf_test =
    Test.make ~name:"zipf-sample-10k"
      (Staged.stage (fun () ->
           let rng = Prelude.Rng.make 7 in
           for _ = 1 to 10_000 do
             ignore (Runtime.Workloads.Zipf.sample zipf rng)
           done))

  let rebuild_test =
    Test.make ~name:"ring-add-member-64x64"
      (Staged.stage (fun () -> ignore (Shard.Ring.add ring 64)))
end

let shard_tests =
  [
    Shard_bench.route_test;
    Shard_bench.locate_test;
    Shard_bench.zipf_test;
    Shard_bench.rebuild_test;
  ]

(* Quorum group: what the adaptive fallback costs.  The failure detector
   and mode controller sit on every heartbeat, the ordered-commit log on
   every degraded-mode operation; the live pair prices the two regimes
   EXPERIMENTS.md quotes — the same closed-loop run with the fallback
   armed but nobody dead (fast path, response gate up) vs pinned in
   quorum mode by a permanent kill. *)
module Quorum_bench = struct
  let fd_test =
    Test.make ~name:"fd-heard-tick-10k"
      (Staged.stage (fun () ->
           let fd =
             Quorum.Failure_detector.make ~n:5 ~me:0 ~hb_us:1_000
               ~suspect_after:10 ~now_us:0
           in
           for i = 1 to 10_000 do
             ignore
               (Quorum.Failure_detector.heard fd ~peer:(1 + (i mod 4))
                  ~stamp:i ~now_us:(i * 10));
             ignore (Quorum.Failure_detector.tick fd ~now_us:(i * 10))
           done))

  let mc_test =
    Test.make ~name:"mode-era-cycle-10k"
      (Staged.stage (fun () ->
           let mc = Quorum.Mode_controller.make ~n:3 ~me:0 in
           for i = 1 to 10_000 do
             ignore (Quorum.Mode_controller.initiate_quorum mc);
             ignore (Quorum.Mode_controller.initiate_fast mc ~floor:i);
             ignore
               (Quorum.Mode_controller.observe mc
                  ~epoch:(Quorum.Mode_controller.epoch mc)
                  ~quorum:false ~seq:0 ~floor:i)
           done))

  let log_test =
    Test.make ~name:"log-commit-drain-1k"
      (Staged.stage (fun () ->
           let log = Quorum.Log.create ~n:3 ~epoch:1 in
           for i = 0 to 999 do
             let qseq = Quorum.Log.append log ~me:0 i in
             if Quorum.Log.ack log ~qseq ~from:1 then
               Quorum.Log.commit log ~qseq;
             ignore (Quorum.Log.applyable log)
           done))

  let fallback =
    { Quorum.Config.default with hb_us = 2_000; suspect_after = 15 }

  let inert =
    match Fault.Fault_plan.compile ~seed:11 ~spec:"drop(0)" with
    | Ok p -> p
    | Error e -> failwith e

  let kill =
    match Fault.Fault_plan.compile ~seed:11 ~spec:"crash(2)@1ms" with
    | Ok p -> p
    | Error e -> failwith e

  let live_fast =
    Test.make ~name:"fallback-fast-path-48ops"
      (Staged.stage (fun () ->
           ignore
             (Fault.Chaos_run.run ~workload:Runtime.Workloads.register ~n:3
                ~d:300 ~u:100 ~slack:2000 ~round:48 ~fallback ~plan:inert
                ~ops:48 ~seed:7 ())))

  let live_quorum =
    Test.make ~name:"fallback-quorum-mode-48ops"
      (Staged.stage (fun () ->
           ignore
             (Fault.Chaos_run.run ~workload:Runtime.Workloads.register ~n:3
                ~d:300 ~u:100 ~slack:2000 ~round:48 ~fallback ~plan:kill
                ~ops:48 ~seed:7 ())))
end

let quorum_tests =
  [
    Quorum_bench.fd_test;
    Quorum_bench.mc_test;
    Quorum_bench.log_test;
    Quorum_bench.live_fast;
    Quorum_bench.live_quorum;
  ]

(* Sync group: what earning ε over the wire costs.  The estimator sits on
   every heartbeat piggyback and probe echo, the slewed clock under every
   timestamp the replica draws, and the probe frames ride the same codec
   hot path as entries; [sync-live-3x10rounds] prices a full in-process
   convergence — three ±2 ms-skewed bus replicas, ten probe rounds. *)
module Sync_bench = struct
  module C = Net.Codec.Make (Net.Wire.Kv_codec)

  let probe_codec_test =
    let pong =
      C.Pong { seq = 7; t0 = 123_456; t_rx = 123_956; t_tx = 123_970; shard = 0 }
    in
    Test.make ~name:"sync-probe-roundtrip"
      (Staged.stage (fun () ->
           match C.decode (C.encode pong) with
           | Net.Codec.Got _ -> ()
           | Net.Codec.Need_more _ | Net.Codec.Corrupt _ ->
               failwith "sync bench: pong frame must roundtrip"))

  let estimator_test =
    Test.make ~name:"estimator-observe-round-1k"
      (Staged.stage (fun () ->
           let est = Sync.Estimator.create ~n:5 ~me:0 () in
           for i = 1 to 1_000 do
             let now = i * 100 in
             Sync.Estimator.observe_two_way est ~peer:(1 + (i mod 4)) ~now
               ~t0:(now - 400) ~t1:now ~t_rx:(now - 150) ~t_tx:(now - 140);
             ignore (Sync.Estimator.correction est);
             ignore (Sync.Estimator.achieved_eps est ~now)
           done))

  let clock_test =
    Test.make ~name:"clock-read-slew-10k"
      (Staged.stage (fun () ->
           let clk = Sync.Clock.create () in
           for i = 1 to 10_000 do
             if i mod 100 = 0 then
               Sync.Clock.adjust clk ~delta:((i mod 7) - 3);
             ignore (Sync.Clock.read clk ~now:(i * 13))
           done))

  let live_test =
    Test.make ~name:"sync-live-3x10rounds"
      (Staged.stage (fun () ->
           let n = 3 in
           let params =
             Core.Params.make ~n ~d:2_000 ~u:500 ~eps:4_000 ~x:0 ()
           in
           let lock = Mutex.create () in
           let counts = Array.make n 0 in
           let sync_for pid =
             Sync.Config.make ~interval_us:2_000 ~d:2_000 ~u:500
               ~on_eps:(fun ~eps_us:_ ~peers:_ ->
                 Mutex.lock lock;
                 counts.(pid) <- counts.(pid) + 1;
                 Mutex.unlock lock)
               ()
           in
           let module R = Runtime.Replica.Make (Spec.Register) in
           let bus = Runtime.Transport.bus ~n () in
           let transport = Runtime.Transport.intf bus in
           let start_us = Prelude.Mclock.now_us () in
           let offsets = [| 2_000; 0; -2_000 |] in
           let nodes =
             Array.init n (fun pid ->
                 R.node ~params ~transport ~pid ~offset:offsets.(pid)
                   ~start_us ~sync:(sync_for pid) ())
           in
           let enough () =
             Mutex.lock lock;
             let k = Array.fold_left min max_int counts in
             Mutex.unlock lock;
             k >= 10
           in
           let deadline = Prelude.Mclock.now_us () + 1_000_000 in
           while (not (enough ())) && Prelude.Mclock.now_us () < deadline do
             Prelude.Mclock.sleep_us 1_000
           done;
           Array.iter (fun node -> ignore (R.node_stop node)) nodes))
end

let sync_tests =
  [
    Sync_bench.probe_codec_test;
    Sync_bench.estimator_test;
    Sync_bench.clock_test;
    Sync_bench.live_test;
  ]

let groups =
  [
    ("experiments", tests);
    ("throughput", throughput_tests);
    ("runtime", runtime_tests);
    ("codec", codec_tests);
    ("fault", fault_tests);
    ("obs", obs_tests);
    ("durable", durable_tests);
    ("shard", shard_tests);
    ("quorum", quorum_tests);
    ("sync", sync_tests);
  ]

let benchmark_group (name, group_tests) =
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name group_tests)
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  Analyze.all ols Instance.monotonic_clock raw

(* Machine-readable results, one BENCH_<group>.json per group so CI can
   diff a single subsystem's numbers without parsing the whole log. *)
let rows_of_results results =
  Hashtbl.fold
    (fun name ols acc ->
      let est =
        match Analyze.OLS.estimates ols with Some [ e ] -> Some e | _ -> None
      in
      let r2 = Analyze.OLS.r_square ols in
      (name, est, r2) :: acc)
    results []
  |> List.sort compare

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_bench_json group results =
  let rows = rows_of_results results in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"group\": \"%s\", \"unit\": \"ns/run\", \"results\": ["
       (json_escape group));
  List.iteri
    (fun i (name, est, r2) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"name\": \"%s\", \"ns_per_run\": %s, \"r2\": %s}"
           (json_escape name)
           (match est with
           | Some e when Float.is_finite e -> Printf.sprintf "%.1f" e
           | _ -> "null")
           (match r2 with
           | Some r when Float.is_finite r -> Printf.sprintf "%.4f" r
           | _ -> "null")))
    rows;
  Buffer.add_string b "]}";
  let json = Buffer.contents b in
  let path = Printf.sprintf "BENCH_%s.json" group in
  match Obs.Json.validate json with
  | Ok () ->
      Out_channel.with_open_bin path (fun oc -> output_string oc json);
      Format.printf "  wrote %s@." path;
      true
  | Error e ->
      Format.eprintf "internal error: %s would not be valid JSON: %s@." path e;
      false

(* ---- regression gate (--check) ---- *)

(* The committed BENCH_<group>.json files are the baseline; [--check]
   re-runs the selected groups and fails on any test that got more than
   [--tolerance] percent slower (default 25%).  Faster is never a
   failure, and a test with no baseline entry (or a group with no
   baseline file) is reported as new, not failed — adding a bench must
   not require committing its numbers in the same change. *)

let find_sub s sub from =
  let ls = String.length sub and n = String.length s in
  let rec go i =
    if i + ls > n then None
    else if String.sub s i ls = sub then Some i
    else go (i + 1)
  in
  go from

(* Extract (name, ns_per_run) pairs from the fixed shape
   [write_bench_json] emits; entries whose estimate was null are
   skipped.  Bench names contain no JSON escapes, so a plain scan to the
   closing quote is exact. *)
let baseline_rows s =
  let n = String.length s in
  let rec go pos acc =
    match find_sub s "\"name\": \"" pos with
    | None -> List.rev acc
    | Some i -> (
        let start = i + 9 in
        match String.index_from_opt s start '"' with
        | None -> List.rev acc
        | Some stop -> (
            let name = String.sub s start (stop - start) in
            match find_sub s "\"ns_per_run\": " stop with
            | None -> List.rev acc
            | Some j ->
                let vstart = j + 14 in
                let vend = ref vstart in
                while
                  !vend < n
                  && (match s.[!vend] with
                     | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
                     | _ -> false)
                do
                  incr vend
                done;
                let acc =
                  if !vend = vstart then acc (* null estimate *)
                  else
                    match
                      float_of_string_opt
                        (String.sub s vstart (!vend - vstart))
                    with
                    | Some v -> (name, v) :: acc
                    | None -> acc
                in
                go (max (!vend) (stop + 1)) acc))
  in
  go 0 []

let check_group ~tolerance group results =
  let path = Printf.sprintf "BENCH_%s.json" group in
  if not (Sys.file_exists path) then begin
    Format.printf "  [%s] no baseline (%s missing) — group skipped@." group
      path;
    true
  end
  else begin
    let baseline =
      baseline_rows (In_channel.with_open_bin path In_channel.input_all)
    in
    let ok = ref true in
    List.iter
      (fun (name, est, _) ->
        match (est, List.assoc_opt name baseline) with
        | Some now, Some base when base > 0.0 ->
            let delta = ((now /. base) -. 1.0) *. 100.0 in
            let regressed = delta > tolerance in
            if regressed then ok := false;
            Format.printf "  %-9s %-36s %12.1f -> %12.1f ns/run (%+.1f%%)@."
              (if regressed then "REGRESSED" else "ok")
              name base now delta
        | Some _, Some _ | Some _, None ->
            Format.printf "  %-9s %-36s (no baseline entry)@." "new" name
        | None, _ ->
            Format.printf "  %-9s %-36s (no estimate)@." "?" name)
      (rows_of_results results);
    if not !ok then
      Format.printf "  [%s] REGRESSION past the %.0f%% tolerance@." group
        tolerance;
    !ok
  end

let usage () =
  Format.eprintf
    "usage: bench [--check] [--tolerance PCT] [group ...]@.groups: %s@."
    (String.concat ", " (List.map fst groups));
  exit 2

let () =
  (* With group names on the command line, run only those benchmark groups
     (and skip the paper-experiment sweep) — what CI uses to price a
     single subsystem without paying for the whole artifact run. *)
  let check_mode = ref false and tolerance = ref 25.0 in
  let rec parse_args args acc =
    match args with
    | [] -> List.rev acc
    | "--check" :: rest ->
        check_mode := true;
        parse_args rest acc
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some t when t > 0.0 ->
            tolerance := t;
            parse_args rest acc
        | _ ->
            Format.eprintf "--tolerance wants a positive percentage, got %S@."
              v;
            usage ())
    | "--tolerance" :: [] -> usage ()
    | ("--help" | "-h") :: _ -> usage ()
    | w :: rest -> parse_args rest (w :: acc)
  in
  let wanted = parse_args (List.tl (Array.to_list Sys.argv)) [] in
  List.iter
    (fun w ->
      if not (List.mem_assoc w groups) then begin
        Format.eprintf "unknown bench group %S (have: %s)@." w
          (String.concat ", " (List.map fst groups));
        exit 2
      end)
    wanted;
  let selected =
    if wanted = [] then groups
    else List.filter (fun (g, _) -> List.mem g wanted) groups
  in
  if !check_mode then begin
    (* Regression gate: benchmark the selected groups and compare against
       the committed baselines; never rewrites them. *)
    Format.printf "=== Bench regression check (tolerance %.0f%%) ===@."
      !tolerance;
    let all_ok =
      List.fold_left
        (fun acc ((group, _) as g) ->
          let results = benchmark_group g in
          check_group ~tolerance:!tolerance group results && acc)
        true selected
    in
    if not all_ok then exit 1;
    Format.printf "=== No regressions past tolerance ===@.";
    exit 0
  end;
  let bad =
    if wanted <> [] then []
    else begin
      Format.printf "=== Paper artifacts (Tables I-IV, Figures 1-17) ===@.@.";
      let rs = reports () in
      List.iter (fun r -> Format.printf "%a@." Experiments.Report.pp r) rs;
      let bad = List.filter (fun (r : Experiments.Report.t) -> not r.ok) rs in
      Format.printf "=== Experiment verdicts: %d/%d OK%s ===@.@."
        (List.length rs - List.length bad)
        (List.length rs)
        (if bad = [] then ""
         else
           " (MISMATCH: "
           ^ String.concat ", "
               (List.map (fun (r : Experiments.Report.t) -> r.id) bad)
           ^ ")");
      bad
    end
  in
  Format.printf "=== Wall-clock cost per experiment (Bechamel OLS) ===@.";
  let json_ok = ref true in
  List.iter
    (fun ((group, _) as g) ->
      let results = benchmark_group g in
      List.iter
        (fun (name, est, r2) ->
          match est with
          | Some est ->
              Format.printf "  %-36s %10.3f ms/run (r²=%s)@." name (est /. 1e6)
                (match r2 with
                | Some r2 -> Printf.sprintf "%.3f" r2
                | None -> "n/a")
          | None -> Format.printf "  %-36s (no estimate)@." name)
        (rows_of_results results);
      if not (write_bench_json group results) then json_ok := false)
    selected;
  if bad <> [] || not !json_ok then exit 1
