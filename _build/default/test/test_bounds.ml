(* Tests for the closed-form bound formulas of Tables I-IV. *)

let params ?(n = 5) ?(d = 1200) ?(u = 400) ?eps ?(x = 0) () =
  let eps = match eps with Some e -> e | None -> Core.Params.optimal_eps ~n ~u in
  Core.Params.make ~n ~d ~u ~eps ~x ()

let find table op =
  match List.find_opt (fun (r : Bounds.Formulas.row) -> r.operation = op) table.Bounds.Formulas.rows with
  | Some r -> r
  | None -> Alcotest.failf "row %s missing" op

let test_slack () =
  Alcotest.(check int) "m = min{ε,u,d/3}" 320 (Core.Params.slack (params ()));
  Alcotest.(check int) "u smallest" 100
    (Core.Params.slack (params ~u:100 ~eps:900 ~d:1200 ()));
  Alcotest.(check int) "d/3 smallest" 400
    (Core.Params.slack (params ~d:1200 ~u:500 ~eps:450 ()))

let test_register_rows () =
  let p = params () in
  let rmw = find Bounds.Formulas.register "read-modify-write" in
  Alcotest.(check int) "rmw prev LB = d" 1200 (rmw.previous_lower.eval p);
  Alcotest.(check int) "rmw LB = d+m" 1520 ((Option.get rmw.lower).eval p);
  Alcotest.(check int) "rmw UB = d+ε" 1520 (rmw.upper.eval p);
  let w = find Bounds.Formulas.register "write" in
  Alcotest.(check int) "write prev LB = u/2" 200 (w.previous_lower.eval p);
  Alcotest.(check int) "write LB = (1−1/n)u" 320 ((Option.get w.lower).eval p);
  Alcotest.(check int) "write UB = ε+X" 320 (w.upper.eval p);
  let r = find Bounds.Formulas.register "read" in
  Alcotest.(check bool) "read LB blank" true (r.lower = None);
  Alcotest.(check int) "read UB = d+ε−X at X=d+ε−u is u" 400
    (r.upper.eval (params ~x:(1200 + 320 - 400) ()));
  let wr = find Bounds.Formulas.register "write + read" in
  Alcotest.(check int) "write+read LB = d" 1200 ((Option.get wr.lower).eval p);
  Alcotest.(check int) "write+read UB = d+2ε" 1840 (wr.upper.eval p)

let test_pair_rows_use_d_plus_m () =
  let p = params () in
  List.iter
    (fun (table, op) ->
      let row = find table op in
      Alcotest.(check int)
        (op ^ " LB = d+m")
        1520
        ((Option.get row.lower).eval p);
      Alcotest.(check int) (op ^ " UB = d+2ε") 1840 (row.upper.eval p))
    [
      (Bounds.Formulas.queue, "enqueue + peek");
      (Bounds.Formulas.stack, "push + peek");
      (Bounds.Formulas.tree, "insert + depth");
      (Bounds.Formulas.tree, "delete + depth");
    ]

let test_mutator_rows_match_register () =
  let p = params () in
  List.iter
    (fun (table, op) ->
      let row = find table op in
      Alcotest.(check int) (op ^ " LB") 320 ((Option.get row.lower).eval p);
      Alcotest.(check int) (op ^ " UB = ε at X=0") 320 (row.upper.eval p))
    [
      (Bounds.Formulas.queue, "enqueue");
      (Bounds.Formulas.stack, "push");
      (Bounds.Formulas.tree, "insert");
      (Bounds.Formulas.tree, "delete");
    ]

(* At X = 0 and optimal ε with ε ≤ min(u, d/3), every lower bound the
   thesis claims tight indeed meets its upper bound. *)
let tightness_prop =
  QCheck.Test.make ~name:"upper ≥ lower everywhere; tight rows meet" ~count:100
    QCheck.(pair (int_range 2 10) (pair (int_range 600 5000) (int_range 10 400)))
    (fun (n, (d, u_raw)) ->
      let u = min u_raw d in
      let eps = Core.Params.optimal_eps ~n ~u in
      let p = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
      List.for_all
        (fun (t : Bounds.Formulas.table) ->
          List.for_all
            (fun (r : Bounds.Formulas.row) ->
              match r.lower with
              | None -> true
              | Some l ->
                  l.eval p <= r.upper.eval p
                  && l.eval p >= r.previous_lower.eval p)
            t.rows)
        Bounds.Formulas.all_tables)

let test_all_tables_listed () =
  Alcotest.(check (list string)) "ids"
    [ "table1"; "table2"; "table3"; "table4" ]
    (List.map (fun (t : Bounds.Formulas.table) -> t.id) Bounds.Formulas.all_tables)

let test_params_validation () =
  Alcotest.check_raises "X out of range"
    (Invalid_argument "Params.make: need 0 ≤ X ≤ d + ε − u") (fun () ->
      ignore (Core.Params.make ~n:3 ~d:100 ~u:50 ~eps:10 ~x:100 ()));
  Alcotest.check_raises "u > d"
    (Invalid_argument "Params.make: need 0 ≤ u ≤ d") (fun () ->
      ignore (Core.Params.make ~n:3 ~d:100 ~u:200 ~eps:10 ()))

let test_fast_variants () =
  let p = params () in
  let f = Core.Params.faster_oop p ~oop_latency:900 in
  Alcotest.(check int) "oop latency = add+execute" 900
    (f.timing.add_wait + f.timing.execute_wait);
  let m = Core.Params.faster_mutator p ~latency:77 in
  Alcotest.(check int) "mutator wait" 77 m.timing.mutator_wait;
  let a = Core.Params.faster_accessor p ~latency:99 in
  Alcotest.(check int) "accessor wait" 99 a.timing.accessor_wait

(* ---- derived tables: the classifier must reproduce Chapter VI ---- *)

module D_reg = Bounds.Derive.Make (Spec.Register)
module D_queue = Bounds.Derive.Make (Spec.Fifo_queue)
module D_stack = Bounds.Derive.Make (Spec.Lifo_stack)
module D_stack_obs = Bounds.Derive.Make (Spec.Lifo_stack_obs)
module D_bst = Bounds.Derive.Make (Spec.Bst)
module D_tree = Bounds.Derive.Make (Spec.Rooted_tree)

let check_row rows subject ~lower ~upper find =
  match find rows subject with
  | None -> Alcotest.failf "derived row %s missing" subject
  | Some (r : Bounds.Derive.derived_row) ->
      let p = params () in
      Alcotest.(check (option int))
        (subject ^ " derived lower")
        lower
        (Option.map (fun (f : Bounds.Formulas.formula) -> f.eval p) r.lower);
      Alcotest.(check int) (subject ^ " derived upper") upper (r.upper.eval p)

let test_derive_register () =
  let rows = D_reg.derive () in
  (* at n=5 d=1200 u=400 ε=320 X=0: m=320 *)
  check_row rows "rmw" ~lower:(Some 1520) ~upper:1520 D_reg.find;
  check_row rows "write" ~lower:(Some 320) ~upper:320 D_reg.find;
  check_row rows "read" ~lower:None ~upper:1520 D_reg.find;
  (* write overwrites ⇒ E.1 fails ⇒ pair bound only d *)
  check_row rows "write + read" ~lower:(Some 1200) ~upper:1840 D_reg.find;
  (* increment: self-commuting pure mutator, no improved LB *)
  check_row rows "add" ~lower:None ~upper:320 D_reg.find

let test_derive_queue () =
  let rows = D_queue.derive () in
  check_row rows "dequeue" ~lower:(Some 1520) ~upper:1520 D_queue.find;
  check_row rows "enqueue" ~lower:(Some 320) ~upper:320 D_queue.find;
  (* enqueue does NOT overwrite ⇒ E.1 applies ⇒ d + m *)
  check_row rows "enqueue + peek" ~lower:(Some 1520) ~upper:1840 D_queue.find

let test_derive_stack_peek_caveat () =
  (* With a strictly top-only peek, hypothesis A of Thm E.1 fails (after
     push(v) and after push(v'); push(v) the top is the same v), so only
     the d bound is derivable — the thesis' Table III row needs an
     accessor that observes more, cf. Lifo_stack_obs. *)
  let rows = D_stack.derive () in
  check_row rows "pop" ~lower:(Some 1520) ~upper:1520 D_stack.find;
  check_row rows "push + peek" ~lower:(Some 1200) ~upper:1840 D_stack.find;
  let rows_obs = D_stack_obs.derive () in
  check_row rows_obs "push + observe" ~lower:(Some 1520) ~upper:1840 D_stack_obs.find

let test_derive_trees () =
  (* BST insert order is observable through node depth: E.1 applies to the
     pair; the insert itself is last-permuting only at k = 2 (with three
     inserts, two different-last permutations can coincide), so Thm D.1
     gives u/2 rather than (1 − 1/n)u. *)
  let rows = D_bst.derive () in
  check_row rows "insert" ~lower:(Some 200) ~upper:320 D_bst.find;
  check_row rows "insert + depth" ~lower:(Some 1520) ~upper:1840 D_bst.find;
  (* successor-promotion deletes leave no order trace in our sample
     universe, so no E.1 witness is found: the derived bound stays d.  The
     thesis' Table IV claims d+m for delete+depth — it needs a delete whose
     order is observable; see EXPERIMENTS.md. *)
  check_row rows "delete + depth" ~lower:(Some 1200) ~upper:1840 D_bst.find;
  (* The rooted tree DOES satisfy E.1 for insert+depth — through racing
     inserts of the same node under different parents (first one wins). *)
  let rows_rt = D_tree.derive () in
  check_row rows_rt "insert + depth" ~lower:(Some 1520) ~upper:1840 D_tree.find;
  check_row rows_rt "delete + depth" ~lower:(Some 1200) ~upper:1840 D_tree.find

module D_pq = Bounds.Derive.Make (Spec.Priority_queue)

let test_derive_priority_queue () =
  let rows = D_pq.derive () in
  (* extraction is strongly-INSC → Thm C.1's d+m *)
  check_row rows "extract_min" ~lower:(Some 1520) ~upper:1520 D_pq.find;
  (* commuting inserts: no permuting bound at any k *)
  check_row rows "insert" ~lower:None ~upper:320 D_pq.find;
  (* and the ⟨insert, min⟩ pair cannot satisfy both A and B of Thm E.1:
     A needs op2 < op1 to change the minimum, B needs op1 < op2 — so only
     the d bound is derivable. *)
  check_row rows "insert + min" ~lower:(Some 1200) ~upper:1840 D_pq.find

let test_e1_hypotheses_direct () =
  Alcotest.(check bool) "enqueue/peek satisfies A,B,C" true
    (D_queue.e1_hypotheses "enqueue" "peek");
  Alcotest.(check bool) "push/top-peek does not" false
    (D_stack.e1_hypotheses "push" "peek");
  Alcotest.(check bool) "write/read does not (overwriter)" false
    (D_reg.e1_hypotheses "write" "read");
  Alcotest.(check bool) "bst insert/depth does" true
    (D_bst.e1_hypotheses "insert" "depth")

let () =
  Alcotest.run "bounds"
    [
      ( "formulas",
        [
          Alcotest.test_case "slack" `Quick test_slack;
          Alcotest.test_case "register rows" `Quick test_register_rows;
          Alcotest.test_case "pair rows" `Quick test_pair_rows_use_d_plus_m;
          Alcotest.test_case "mutator rows" `Quick test_mutator_rows_match_register;
          Alcotest.test_case "tables listed" `Quick test_all_tables_listed;
        ] );
      ( "params",
        [
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "fast variants" `Quick test_fast_variants;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ tightness_prop ]);
      ( "derive",
        [
          Alcotest.test_case "register" `Quick test_derive_register;
          Alcotest.test_case "queue" `Quick test_derive_queue;
          Alcotest.test_case "stack peek caveat" `Quick test_derive_stack_peek_caveat;
          Alcotest.test_case "trees" `Quick test_derive_trees;
          Alcotest.test_case "priority queue" `Quick test_derive_priority_queue;
          Alcotest.test_case "E.1 hypotheses" `Quick test_e1_hypotheses_direct;
        ] );
    ]
