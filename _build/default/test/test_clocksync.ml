(* Tests for the Lundelius–Lynch clock-synchronization substrate. *)

module LL = Clocksync.Lundelius_lynch

let d = 1200
let u = 400

let test_optimal_skew_formula () =
  Alcotest.(check int) "n=2" 200 (LL.optimal_skew ~n:2 ~u);
  Alcotest.(check int) "n=4" 300 (LL.optimal_skew ~n:4 ~u);
  Alcotest.(check int) "n=5" 320 (LL.optimal_skew ~n:5 ~u);
  Alcotest.(check int) "n matches Params" (Core.Params.optimal_eps ~n:8 ~u)
    (LL.optimal_skew ~n:8 ~u)

let test_skew_helper () =
  Alcotest.(check int) "skew" 700 (LL.skew [| -200; 500; 0 |])

let test_midpoint_exact () =
  (* With every delay exactly d − u/2, estimates are exact: skew goes to 0
     whatever the initial offsets (up to integer division of the average). *)
  let offsets = [| 0; 900; -300; 600 |] in
  let s =
    LL.achieved_skew ~n:4 ~d ~u ~offsets ~delay:(Sim.Delay.constant (d - (u / 2)))
  in
  Alcotest.(check bool) "near-perfect sync" true (s <= 1)

let test_hand_computed_n2 () =
  (* Worked example from the adversary analysis: delays 0→1 = d−u,
     1→0 = d; estimates err by ±u/2, adjustments ±u/4, final skew u/2. *)
  let adj =
    LL.synchronize ~n:2 ~d ~u ~offsets:[| 0; 0 |]
      ~delay:(LL.adversarial_delay ~d ~u ~victim:0)
  in
  Alcotest.(check int) "p0 adjustment" (-u / 4) adj.(0);
  Alcotest.(check int) "p1 adjustment" (u / 4) adj.(1);
  Alcotest.(check int) "residual skew u/2" (u / 2)
    (LL.skew [| adj.(0); adj.(1) |])

let test_single_process () =
  let adj = LL.synchronize ~n:1 ~d ~u ~offsets:[| 1234 |] ~delay:(Sim.Delay.constant d) in
  Alcotest.(check int) "n=1 adjusts nothing" 0 adj.(0)

let test_symmetric_network_no_adjustment () =
  (* Perfectly aligned clocks and symmetric midpoint delays: every estimate
     is exactly zero, so nobody moves. *)
  let adj =
    LL.synchronize ~n:4 ~d ~u ~offsets:[| 0; 0; 0; 0 |]
      ~delay:(Sim.Delay.constant (d - (u / 2)))
  in
  Array.iter (fun a -> Alcotest.(check int) "no adjustment" 0 a) adj

let test_message_complexity () =
  (* One round costs exactly n(n−1) messages: everyone broadcasts once. *)
  let n = 5 in
  let script = List.init n (fun pid -> Sim.Workload.at pid LL.Protocol.Start 0) in
  let out =
    LL.Engine.run ~config:{ d; u } ~n ~offsets:(Array.make n 0)
      ~delay:(Sim.Delay.constant d) script
  in
  Alcotest.(check int) "n(n−1) messages" (n * (n - 1)) (List.length out.trace.messages)

let skew_bound_prop =
  QCheck.Test.make ~name:"one round always reaches (1−1/n)u (+rounding)" ~count:60
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, n) ->
      let rng = Prelude.Rng.make (seed + 3) in
      let offsets = Array.init n (fun _ -> Prelude.Rng.int_in rng ~lo:(-10_000) ~hi:10_000) in
      let s = LL.achieved_skew ~n ~d ~u ~offsets ~delay:(Sim.Delay.random rng ~d ~u) in
      s <= LL.optimal_skew ~n ~u + n)

let second_round_stable_prop =
  QCheck.Test.make ~name:"a second round keeps clocks within the bound" ~count:30
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, n) ->
      let rng = Prelude.Rng.make (seed + 13) in
      let offsets = Array.init n (fun _ -> Prelude.Rng.int_in rng ~lo:(-5_000) ~hi:5_000) in
      let adj = LL.synchronize ~n ~d ~u ~offsets ~delay:(Sim.Delay.random rng ~d ~u) in
      let once = Array.init n (fun i -> offsets.(i) + adj.(i)) in
      let s = LL.achieved_skew ~n ~d ~u ~offsets:once ~delay:(Sim.Delay.random rng ~d ~u) in
      s <= LL.optimal_skew ~n ~u + n)

let () =
  Alcotest.run "clocksync"
    [
      ( "formulas",
        [
          Alcotest.test_case "optimal skew" `Quick test_optimal_skew_formula;
          Alcotest.test_case "skew helper" `Quick test_skew_helper;
        ] );
      ( "algorithm",
        [
          Alcotest.test_case "midpoint delays sync exactly" `Quick test_midpoint_exact;
          Alcotest.test_case "hand-computed n=2 adversary" `Quick test_hand_computed_n2;
          Alcotest.test_case "single process" `Quick test_single_process;
          Alcotest.test_case "symmetric network" `Quick test_symmetric_network_no_adjustment;
          Alcotest.test_case "message complexity" `Quick test_message_complexity;
        ] );
      ( "bounds",
        List.map QCheck_alcotest.to_alcotest [ skew_bound_prop; second_round_stable_prop ] );
    ]
