(* Tests for the core implementations: Algorithm 1, the centralized and
   total-order-broadcast baselines.  Covers the exact latency identities of
   Chapter V.D, replica convergence, linearizability under scripted and
   randomized adversarial schedules, and the OOP execution path. *)

let ticks = Alcotest.int

module Reg_alg = Core.Algorithm1.Make (Spec.Register)
module Reg_engine = Sim.Engine.Make (Reg_alg)
module Reg_lin = Linearize.Make (Spec.Register)
module Queue_alg = Core.Algorithm1.Make (Spec.Fifo_queue)
module Queue_engine = Sim.Engine.Make (Queue_alg)
module Queue_lin = Linearize.Make (Spec.Fifo_queue)
module Stack_alg = Core.Algorithm1.Make (Spec.Lifo_stack)
module Stack_engine = Sim.Engine.Make (Stack_alg)
module Stack_lin = Linearize.Make (Spec.Lifo_stack)
module Reg_central = Core.Centralized.Make (Spec.Register)
module Central_engine = Sim.Engine.Make (Reg_central)
module Reg_tob = Core.Total_order.Make (Spec.Register)
module Tob_engine = Sim.Engine.Make (Reg_tob)

let params ?(n = 3) ?(d = 1000) ?(u = 300) ?(eps = 200) ?(x = 100) () =
  Core.Params.make ~n ~d ~u ~eps ~x ()

let offsets0 n = Array.make n 0

let latency_of trace index =
  match Sim.Trace.find_op trace ~index with
  | Some r -> (
      match Sim.Trace.latency r with
      | Some l -> l
      | None -> Alcotest.failf "operation %d never responded" index)
  | None -> Alcotest.failf "operation %d not found" index

let check_linearizable name verdict =
  match verdict with
  | Reg_lin.Linearizable _ -> ()
  | Reg_lin.Not_linearizable why -> Alcotest.failf "%s: %s" name why

(* -- exact latency identities (Theorems D.1 / D.2 of Chapter V.D) -- *)

let test_mutator_latency () =
  let p = params () in
  let script = [ Sim.Workload.at 0 (Spec.Register.Write 5) 0 ] in
  let out =
    Reg_engine.run ~config:p ~n:3 ~offsets:(offsets0 3)
      ~delay:(Sim.Delay.constant 1000) script
  in
  (* |MOP| = ε + X exactly (Observation C.5). *)
  Alcotest.check ticks "write latency = ε + X" 300 (latency_of out.trace 0)

let test_accessor_latency () =
  let p = params () in
  let script = [ Sim.Workload.at 0 Spec.Register.Read 0 ] in
  let out =
    Reg_engine.run ~config:p ~n:3 ~offsets:(offsets0 3)
      ~delay:(Sim.Delay.constant 1000) script
  in
  (* |AOP| = d + ε − X exactly (Lemma C.7). *)
  Alcotest.check ticks "read latency = d + ε − X" 1100 (latency_of out.trace 0);
  Alcotest.check
    (Alcotest.option (Alcotest.testable Spec.Register.pp_result Spec.Register.equal_result))
    "read returns initial value"
    (Some (Spec.Register.Value 0))
    (Sim.Trace.result_of out.trace ~index:0)

let test_oop_latency_bound () =
  let p = params () in
  (* RMW from every process, staggered; all must respond within d + ε
     (Lemma C.6) and return linearizable values. *)
  let script =
    [
      Sim.Workload.at 0 (Spec.Register.Rmw 10) 0;
      Sim.Workload.at 1 (Spec.Register.Rmw 20) 100;
      Sim.Workload.at 2 (Spec.Register.Rmw 30) 200;
    ]
  in
  let out =
    Reg_engine.run ~config:p ~n:3 ~offsets:[| 0; 150; -50 |]
      ~delay:(Sim.Delay.constant 900) script
  in
  List.iter
    (fun r ->
      match Sim.Trace.latency r with
      | Some l ->
          if l > 1200 then
            Alcotest.failf "rmw latency %d exceeds d + ε = 1200" l
      | None -> Alcotest.fail "rmw never responded")
    out.trace.ops;
  check_linearizable "staggered rmw" (Reg_lin.check_trace out.trace)

let test_mutator_accessor_sum () =
  (* |MOP| + |AOP| = d + 2ε regardless of X (Theorem D.1 of Ch. V). *)
  List.iter
    (fun x ->
      let p = params ~x () in
      let script =
        [
          Sim.Workload.at 0 (Spec.Register.Write 1) 0;
          Sim.Workload.at 1 Spec.Register.Read 5000;
        ]
      in
      let out =
        Reg_engine.run ~config:p ~n:3 ~offsets:(offsets0 3)
          ~delay:(Sim.Delay.constant 800) script
      in
      let sum = latency_of out.trace 0 + latency_of out.trace 1 in
      Alcotest.check ticks
        (Printf.sprintf "X=%d: |write| + |read| = d + 2ε" x)
        1400 sum)
    [ 0; 100; 500 ]

(* -- sequential behaviour through the full stack -- *)

let test_sequential_register () =
  let p = params () in
  let script =
    Sim.Workload.seq 0 0
      [ Spec.Register.Write 1; Spec.Register.Read; Spec.Register.Rmw 9; Spec.Register.Read ]
  in
  let out =
    Reg_engine.run ~config:p ~n:3 ~offsets:(offsets0 3)
      ~delay:(Sim.Delay.constant 1000) script
  in
  let result i = Sim.Trace.result_of out.trace ~index:i in
  let value = Alcotest.option (Alcotest.testable Spec.Register.pp_result Spec.Register.equal_result) in
  Alcotest.check value "read sees write" (Some (Spec.Register.Value 1)) (result 1);
  Alcotest.check value "rmw returns pre-state" (Some (Spec.Register.Value 1)) (result 2);
  Alcotest.check value "read sees rmw" (Some (Spec.Register.Value 9)) (result 3)

let test_sequential_queue_fifo () =
  let p = params () in
  let script =
    Sim.Workload.seq 0 0 [ Spec.Fifo_queue.Enqueue 1; Spec.Fifo_queue.Enqueue 2 ]
    @ Sim.Workload.seq 1 10_000 [ Spec.Fifo_queue.Dequeue; Spec.Fifo_queue.Dequeue; Spec.Fifo_queue.Dequeue ]
  in
  let out =
    Queue_engine.run ~config:p ~n:3 ~offsets:(offsets0 3)
      ~delay:(Sim.Delay.constant 1000) script
  in
  let value = Alcotest.option (Alcotest.testable Spec.Fifo_queue.pp_result Spec.Fifo_queue.equal_result) in
  Alcotest.check value "first dequeue" (Some (Spec.Fifo_queue.Value 1))
    (Sim.Trace.result_of out.trace ~index:2);
  Alcotest.check value "second dequeue" (Some (Spec.Fifo_queue.Value 2))
    (Sim.Trace.result_of out.trace ~index:3);
  Alcotest.check value "third dequeue empty" (Some Spec.Fifo_queue.Empty)
    (Sim.Trace.result_of out.trace ~index:4)

(* -- replica convergence: all copies execute mutators in timestamp order -- *)

let test_replica_convergence () =
  let p = params ~n:4 () in
  let rng = Prelude.Rng.make 42 in
  let script =
    List.concat_map
      (fun pid ->
        Sim.Workload.seq pid
          (Prelude.Rng.int rng 500)
          [ Spec.Register.Write ((10 * pid) + 1); Spec.Register.Write ((10 * pid) + 2) ])
      [ 0; 1; 2; 3 ]
  in
  let out =
    Reg_engine.run ~config:p ~n:4 ~offsets:[| 0; 200; -100; 50 |]
      ~delay:(Sim.Delay.random (Prelude.Rng.make 7) ~d:1000 ~u:300)
      script
  in
  let states =
    Array.to_list out.final_states
    |> List.map (fun (s : Reg_alg.state) -> s.local_obj)
  in
  match states with
  | first :: rest ->
      List.iteri
        (fun i s ->
          if not (Spec.Register.equal_state first s) then
            Alcotest.failf "replica %d diverged: %d vs %d" (i + 1) first s)
        rest
  | [] -> Alcotest.fail "no replicas"

(* -- randomized adversarial linearizability (property tests) -- *)

let random_script rng n ops_per_proc mk_op =
  List.concat_map
    (fun pid ->
      Sim.Workload.seq pid (Prelude.Rng.int rng 2000) (List.init ops_per_proc (fun i -> mk_op rng pid i)))
    (List.init n Fun.id)

let random_offsets rng n eps =
  Array.init n (fun i -> if i = 0 then 0 else Prelude.Rng.int_in rng ~lo:0 ~hi:eps)

let lin_register_random =
  QCheck.Test.make ~name:"algorithm1 register linearizable under random schedules"
    ~count:60
    QCheck.(small_int)
    (fun seed ->
      let rng = Prelude.Rng.make (seed + 1) in
      let n = 3 in
      let p = params ~n () in
      let mk_op rng _pid _i =
        match Prelude.Rng.int rng 4 with
        | 0 -> Spec.Register.Write (Prelude.Rng.int rng 10)
        | 1 -> Spec.Register.Read
        | 2 -> Spec.Register.Rmw (Prelude.Rng.int rng 10)
        | _ -> Spec.Register.Add 1
      in
      let script = random_script rng n 3 mk_op in
      let out =
        Reg_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
          ~delay:(Sim.Delay.random rng ~d:1000 ~u:300)
          script
      in
      Reg_lin.(is_linearizable (check_trace out.trace)))

let lin_queue_random =
  QCheck.Test.make ~name:"algorithm1 queue linearizable under random schedules"
    ~count:60 QCheck.small_int (fun seed ->
      let rng = Prelude.Rng.make (seed + 1000) in
      let n = 3 in
      let p = params ~n () in
      let mk_op rng pid i =
        match Prelude.Rng.int rng 3 with
        | 0 -> Spec.Fifo_queue.Enqueue ((10 * pid) + i)
        | 1 -> Spec.Fifo_queue.Dequeue
        | _ -> Spec.Fifo_queue.Peek
      in
      let script = random_script rng n 3 mk_op in
      let out =
        Queue_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
          ~delay:(Sim.Delay.random rng ~d:1000 ~u:300)
          script
      in
      Queue_lin.(is_linearizable (check_trace out.trace)))

let lin_stack_random =
  QCheck.Test.make ~name:"algorithm1 stack linearizable under random schedules"
    ~count:60 QCheck.small_int (fun seed ->
      let rng = Prelude.Rng.make (seed + 2000) in
      let n = 4 in
      let p = params ~n () in
      let mk_op rng pid i =
        match Prelude.Rng.int rng 3 with
        | 0 -> Spec.Lifo_stack.Push ((10 * pid) + i)
        | 1 -> Spec.Lifo_stack.Pop
        | _ -> Spec.Lifo_stack.Peek
      in
      let script = random_script rng n 2 mk_op in
      let out =
        Stack_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
          ~delay:(Sim.Delay.random rng ~d:900 ~u:200)
          script
      in
      Stack_lin.(is_linearizable (check_trace out.trace)))

(* -- baselines -- *)

let test_centralized_latency () =
  let p = params () in
  let script =
    [ Sim.Workload.at 1 (Spec.Register.Write 3) 0; Sim.Workload.at 2 Spec.Register.Read 10_000 ]
  in
  let out =
    Central_engine.run ~config:p ~n:3 ~offsets:(offsets0 3)
      ~delay:(Sim.Delay.constant 1000) script
  in
  Alcotest.check ticks "non-coordinator op = 2d" 2000 (latency_of out.trace 0);
  Alcotest.check ticks "read also 2d" 2000 (latency_of out.trace 1);
  Alcotest.check
    (Alcotest.option (Alcotest.testable Spec.Register.pp_result Spec.Register.equal_result))
    "read sees the write"
    (Some (Spec.Register.Value 3))
    (Sim.Trace.result_of out.trace ~index:1)

let test_centralized_linearizable =
  QCheck.Test.make ~name:"centralized linearizable under random schedules"
    ~count:40 QCheck.small_int (fun seed ->
      let rng = Prelude.Rng.make (seed + 31) in
      let n = 3 in
      let p = params ~n () in
      let mk_op rng _ _ =
        match Prelude.Rng.int rng 3 with
        | 0 -> Spec.Register.Write (Prelude.Rng.int rng 5)
        | 1 -> Spec.Register.Read
        | _ -> Spec.Register.Rmw (Prelude.Rng.int rng 5)
      in
      let script = random_script rng n 3 mk_op in
      let out =
        Central_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
          ~delay:(Sim.Delay.random rng ~d:1000 ~u:300)
          script
      in
      Reg_lin.(is_linearizable (check_trace out.trace)))

let test_tob_uniform_latency () =
  let p = params () in
  let script =
    [ Sim.Workload.at 0 (Spec.Register.Write 1) 0; Sim.Workload.at 1 Spec.Register.Read 10_000 ]
  in
  let out =
    Tob_engine.run ~config:p ~n:3 ~offsets:(offsets0 3)
      ~delay:(Sim.Delay.constant 1000) script
  in
  (* Under TOB every op — the pure mutator included — pays d + ε. *)
  Alcotest.check ticks "write costs d + ε under TOB" 1200 (latency_of out.trace 0);
  Alcotest.check ticks "read costs d + ε under TOB" 1200 (latency_of out.trace 1)

(* -- remaining object types through the full stack -- *)

module Set_alg = Core.Algorithm1.Make (Spec.Int_set)
module Set_engine = Sim.Engine.Make (Set_alg)
module Set_lin = Linearize.Make (Spec.Int_set)
module Tree_alg = Core.Algorithm1.Make (Spec.Rooted_tree)
module Tree_engine = Sim.Engine.Make (Tree_alg)
module Tree_lin = Linearize.Make (Spec.Rooted_tree)
module Kv_alg = Core.Algorithm1.Make (Spec.Kv_map)
module Kv_engine = Sim.Engine.Make (Kv_alg)
module Kv_lin = Linearize.Make (Spec.Kv_map)
module Bst_alg = Core.Algorithm1.Make (Spec.Bst)
module Bst_engine = Sim.Engine.Make (Bst_alg)
module Bst_lin = Linearize.Make (Spec.Bst)
module Log_alg = Core.Algorithm1.Make (Spec.Append_log)
module Log_engine = Sim.Engine.Make (Log_alg)
module Log_lin = Linearize.Make (Spec.Append_log)

let lin_set_random =
  QCheck.Test.make ~name:"algorithm1 set linearizable" ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Prelude.Rng.make (seed + 3000) in
      let n = 3 in
      let p = params ~n () in
      let mk_op rng _ _ =
        match Prelude.Rng.int rng 4 with
        | 0 -> Spec.Int_set.Insert (Prelude.Rng.int rng 4)
        | 1 -> Spec.Int_set.Delete (Prelude.Rng.int rng 4)
        | 2 -> Spec.Int_set.Contains (Prelude.Rng.int rng 4)
        | _ -> Spec.Int_set.Size
      in
      let script = random_script rng n 3 mk_op in
      let out =
        Set_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
          ~delay:(Sim.Delay.random rng ~d:1000 ~u:300) script
      in
      Set_lin.(is_linearizable (check_trace out.trace)))

let lin_tree_random =
  QCheck.Test.make ~name:"algorithm1 rooted tree linearizable" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Prelude.Rng.make (seed + 4000) in
      let n = 3 in
      let p = params ~n () in
      let mk_op rng _ _ =
        match Prelude.Rng.int rng 4 with
        | 0 -> Spec.Rooted_tree.Insert (Prelude.Rng.int rng 3, 1 + Prelude.Rng.int rng 4)
        | 1 -> Spec.Rooted_tree.Delete (1 + Prelude.Rng.int rng 4)
        | 2 -> Spec.Rooted_tree.Search (Prelude.Rng.int rng 5)
        | _ -> Spec.Rooted_tree.Depth
      in
      let script = random_script rng n 3 mk_op in
      let out =
        Tree_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
          ~delay:(Sim.Delay.random rng ~d:1000 ~u:300) script
      in
      Tree_lin.(is_linearizable (check_trace out.trace)))

let lin_kv_random =
  QCheck.Test.make ~name:"algorithm1 kv map (incl. swap OOP) linearizable" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Prelude.Rng.make (seed + 5000) in
      let n = 3 in
      let p = params ~n () in
      let mk_op rng _ _ =
        match Prelude.Rng.int rng 4 with
        | 0 -> Spec.Kv_map.Put (Prelude.Rng.int rng 3, Prelude.Rng.int rng 9)
        | 1 -> Spec.Kv_map.Del (Prelude.Rng.int rng 3)
        | 2 -> Spec.Kv_map.Get (Prelude.Rng.int rng 3)
        | _ -> Spec.Kv_map.Swap (Prelude.Rng.int rng 3, Prelude.Rng.int rng 9)
      in
      let script = random_script rng n 3 mk_op in
      let out =
        Kv_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
          ~delay:(Sim.Delay.random rng ~d:1000 ~u:300) script
      in
      Kv_lin.(is_linearizable (check_trace out.trace)))

let lin_bst_random =
  QCheck.Test.make ~name:"algorithm1 bst linearizable" ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Prelude.Rng.make (seed + 6000) in
      let n = 3 in
      let p = params ~n () in
      let mk_op rng _ _ =
        match Prelude.Rng.int rng 4 with
        | 0 -> Spec.Bst.Insert (Prelude.Rng.int rng 8)
        | 1 -> Spec.Bst.Delete (Prelude.Rng.int rng 8)
        | 2 -> Spec.Bst.Search (Prelude.Rng.int rng 8)
        | _ -> Spec.Bst.Depth (Prelude.Rng.int rng 8)
      in
      let script = random_script rng n 3 mk_op in
      let out =
        Bst_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
          ~delay:(Sim.Delay.random rng ~d:1000 ~u:300) script
      in
      Bst_lin.(is_linearizable (check_trace out.trace)))

module Pq_alg = Core.Algorithm1.Make (Spec.Priority_queue)
module Pq_engine = Sim.Engine.Make (Pq_alg)
module Pq_lin = Linearize.Make (Spec.Priority_queue)
module Arr_alg = Core.Algorithm1.Make (Spec.Update_array)
module Arr_engine = Sim.Engine.Make (Arr_alg)
module Arr_lin = Linearize.Make (Spec.Update_array)

let lin_pqueue_random =
  QCheck.Test.make ~name:"algorithm1 priority queue linearizable" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Prelude.Rng.make (seed + 7000) in
      let n = 3 in
      let p = params ~n () in
      let mk_op rng _ _ =
        match Prelude.Rng.int rng 3 with
        | 0 -> Spec.Priority_queue.Insert (Prelude.Rng.int rng 9)
        | 1 -> Spec.Priority_queue.Extract_min
        | _ -> Spec.Priority_queue.Min
      in
      let script = random_script rng n 3 mk_op in
      let out =
        Pq_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
          ~delay:(Sim.Delay.random rng ~d:1000 ~u:300) script
      in
      Pq_lin.(is_linearizable (check_trace out.trace)))

let lin_update_array_random =
  QCheck.Test.make ~name:"algorithm1 UpdateNext array linearizable" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Prelude.Rng.make (seed + 8000) in
      let n = 3 in
      let p = params ~n () in
      let mk_op rng _ _ =
        match Prelude.Rng.int rng 3 with
        | 0 -> Spec.Update_array.Update_next (1 + Prelude.Rng.int rng 2, Prelude.Rng.int rng 5)
        | 1 -> Spec.Update_array.Get 1
        | _ -> Spec.Update_array.Get 2
      in
      let script = random_script rng n 3 mk_op in
      let out =
        Arr_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
          ~delay:(Sim.Delay.random rng ~d:1000 ~u:300) script
      in
      Arr_lin.(is_linearizable (check_trace out.trace)))

let test_log_order () =
  (* Appends from three processes; a late read_all must equal some
     interleaving consistent with timestamps — validated by the checker
     plus FIFO-per-process. *)
  let p = params ~n:4 () in
  let script =
    Sim.Workload.seq 0 0 [ Spec.Append_log.Append 1; Spec.Append_log.Append 2 ]
    @ Sim.Workload.seq 1 50 [ Spec.Append_log.Append 11 ]
    @ Sim.Workload.seq 2 100 [ Spec.Append_log.Append 21 ]
    @ [ Sim.Workload.at 3 Spec.Append_log.Read_all 10_000 ]
  in
  let out =
    Log_engine.run ~config:p ~n:4 ~offsets:[| 0; 100; 200; 0 |]
      ~delay:(Sim.Delay.random (Prelude.Rng.make 17) ~d:1000 ~u:300) script
  in
  (match Sim.Trace.result_of out.trace ~index:4 with
  | Some (Spec.Append_log.All entries) ->
      Alcotest.(check int) "all four appends present" 4 (List.length entries);
      let pos x = Option.get (List.find_index (Int.equal x) entries) in
      Alcotest.(check bool) "per-process order kept" true (pos 1 < pos 2)
  | _ -> Alcotest.fail "read_all missing");
  Alcotest.(check bool) "linearizable" true
    Log_lin.(is_linearizable (check_trace out.trace))

(* -- boundary parameters -- *)

let test_x_extremes () =
  (* X = d + ε − u: reads at their fastest (u), writes at their slowest. *)
  let d = 1000 and u = 300 and eps = 200 in
  let p = Core.Params.make ~n:3 ~d ~u ~eps ~x:(d + eps - u) () in
  let script =
    [ Sim.Workload.at 0 (Spec.Register.Write 1) 0; Sim.Workload.at 1 Spec.Register.Read 5000 ]
  in
  let out =
    Reg_engine.run ~config:p ~n:3 ~offsets:(offsets0 3)
      ~delay:(Sim.Delay.constant d) script
  in
  Alcotest.check ticks "write = ε + X = d + 2ε − u" (d + (2 * eps) - u) (latency_of out.trace 0);
  Alcotest.check ticks "read = u" u (latency_of out.trace 1);
  check_linearizable "x extreme" (Reg_lin.check_trace out.trace)

let test_zero_uncertainty () =
  (* u = 0 forces every delay to be exactly d; ε may be 0 too and mutators
     respond instantly at X = 0. *)
  let p = Core.Params.make ~n:3 ~d:1000 ~u:0 ~eps:0 ~x:0 () in
  let script =
    [
      Sim.Workload.at 0 (Spec.Register.Write 1) 0;
      Sim.Workload.at 1 (Spec.Register.Rmw 2) 100;
      Sim.Workload.at 2 Spec.Register.Read 5000;
    ]
  in
  let out =
    Reg_engine.run ~config:p ~n:3 ~offsets:(offsets0 3)
      ~delay:(Sim.Delay.constant 1000) ~check_delays:(1000, 0) script
  in
  Alcotest.check ticks "write instant at ε = X = 0" 0 (latency_of out.trace 0);
  Alcotest.check ticks "rmw = d" 1000 (latency_of out.trace 1);
  check_linearizable "u=0" (Reg_lin.check_trace out.trace)

let test_larger_history_stress () =
  (* 36 operations across 6 processes — exercises the checker's
     memoization as much as the protocol. *)
  let n = 6 in
  let p = params ~n () in
  let rng = Prelude.Rng.make 123 in
  let mk_op rng pid i =
    match Prelude.Rng.int rng 3 with
    | 0 -> Spec.Register.Write ((10 * pid) + i)
    | 1 -> Spec.Register.Read
    | _ -> Spec.Register.Rmw ((100 * pid) + i)
  in
  let script = random_script rng n 6 mk_op in
  let out =
    Reg_engine.run ~config:p ~n ~offsets:(random_offsets rng n 200)
      ~delay:(Sim.Delay.random rng ~d:1000 ~u:300) script
  in
  Alcotest.(check int) "36 ops completed" 36 (List.length (Sim.Trace.completed out.trace));
  check_linearizable "stress" (Reg_lin.check_trace out.trace)

(* -- the three Chapter III assumptions the lower bounds require of the
   algorithm class: Algorithm 1 must satisfy them for the Chapter IV
   adversaries (which quantify over that class) to apply to it -- *)

let test_bounded_time_operations () =
  (* Assumption 1: a bound B_op covers every operation in every admissible
     run.  For Algorithm 1, B_op = d + ε. *)
  let d = 1000 and u = 300 and eps = 200 in
  let p = Core.Params.make ~n:3 ~d ~u ~eps ~x:0 () in
  List.iter
    (fun seed ->
      let rng = Prelude.Rng.make seed in
      let script =
        random_script rng 3 3 (fun rng _ i ->
            match Prelude.Rng.int rng 3 with
            | 0 -> Spec.Register.Write i
            | 1 -> Spec.Register.Read
            | _ -> Spec.Register.Rmw i)
      in
      let out =
        Reg_engine.run ~config:p ~n:3 ~offsets:(random_offsets rng 3 eps)
          ~delay:(Sim.Delay.random rng ~d ~u) ~check_delays:(d, u) script
      in
      List.iter
        (fun r ->
          match Sim.Trace.latency r with
          | Some l ->
              if l > d + eps then Alcotest.failf "latency %d beyond B_op = d+ε" l
          | None -> Alcotest.fail "operation never completed")
        out.trace.ops)
    [ 1; 2; 3; 4; 5 ]

let test_bounded_quiescence () =
  (* Assumption 2: the system goes quiescent within B_q of the last
     response.  The last event the engine processes (straggler deliveries
     and already-set execute timers) must land within d + u + ε. *)
  let d = 1000 and u = 300 and eps = 200 in
  let p = Core.Params.make ~n:3 ~d ~u ~eps ~x:0 () in
  let script =
    [
      Sim.Workload.at 0 (Spec.Register.Write 1) 0;
      Sim.Workload.at 1 (Spec.Register.Rmw 2) 100;
      Sim.Workload.at 2 Spec.Register.Read 200;
    ]
  in
  let out =
    Reg_engine.run ~config:p ~n:3 ~offsets:[| 0; eps; 0 |]
      ~delay:(Sim.Delay.constant d) script
  in
  let last_response =
    List.fold_left
      (fun acc r -> match r.Sim.Trace.response_real with Some t -> max acc t | None -> acc)
      0 out.trace.ops
  in
  Alcotest.(check bool) "quiescent within B_q = d + u + ε" true
    (out.trace.end_time <= last_response + d + u + eps)

let test_history_obliviousness () =
  (* Assumption 3: after one process runs the same operation sequence (and
     nobody else does anything), every process's final state is the same
     regardless of message delays and clock offsets. *)
  let d = 1000 and u = 300 and eps = 200 in
  let p = Core.Params.make ~n:3 ~d ~u ~eps ~x:0 () in
  let script =
    Sim.Workload.seq 0 0
      [ Spec.Register.Write 4; Spec.Register.Rmw 9; Spec.Register.Read; Spec.Register.Add 2 ]
  in
  let run ~offsets ~delay = Reg_engine.run ~config:p ~n:3 ~offsets ~delay script in
  let reference = run ~offsets:[| 0; 0; 0 |] ~delay:(Sim.Delay.constant d) in
  List.iter
    (fun (offsets, delay) ->
      let out = run ~offsets ~delay in
      Array.iteri
        (fun i (s : Reg_alg.state) ->
          let r : Reg_alg.state = reference.final_states.(i) in
          if not (Spec.Register.equal_state s.local_obj r.local_obj) then
            Alcotest.failf "replica %d state differs across histories" i;
          if not (Reg_alg.Queue.is_empty s.to_execute) then
            Alcotest.failf "replica %d not quiescent" i)
        out.final_states)
    [
      ([| 0; eps; -0 |], Sim.Delay.constant (d - u));
      ([| 0; 0; eps |], Sim.Delay.random (Prelude.Rng.make 3) ~d ~u);
      ([| 0; eps / 2; eps |], Sim.Delay.extremes ~d ~u ~slow_to:1);
    ]

(* -- soak: thousands of operations through the full stack -- *)

let test_soak () =
  let n = 8 in
  let d = 1000 and u = 400 in
  let eps = Core.Params.optimal_eps ~n ~u in
  let p = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
  let rng = Prelude.Rng.make 2025 in
  let ops_per_proc = 250 in
  let script =
    List.concat_map
      (fun pid ->
        Sim.Workload.seq pid
          (Prelude.Rng.int rng 1000)
          (List.init ops_per_proc (fun i ->
               match i mod 4 with
               | 0 -> Spec.Register.Write ((pid * 1000) + i)
               | 1 -> Spec.Register.Read
               | 2 -> Spec.Register.Rmw ((pid * 1000) + i)
               | _ -> Spec.Register.Add 1)))
      (List.init n Fun.id)
  in
  let out =
    Reg_engine.run ~config:p ~n
      ~offsets:(Array.init n (fun i -> i * eps / (n - 1)))
      ~delay:(Sim.Delay.random rng ~d ~u) ~check_delays:(d, u)
      ~max_events:5_000_000 script
  in
  Alcotest.(check int) "all 2000 operations completed" (n * ops_per_proc)
    (List.length (Sim.Trace.completed out.trace));
  (* the latency envelope holds over the whole run *)
  List.iter
    (fun r ->
      match (Spec.Register.classify r.Sim.Trace.op, Sim.Trace.latency r) with
      | Spec.Data_type.Pure_mutator, Some l ->
          if l <> eps then Alcotest.failf "mutator latency %d ≠ ε" l
      | Spec.Data_type.Pure_accessor, Some l ->
          if l <> d + eps then Alcotest.failf "accessor latency %d ≠ d+ε" l
      | Spec.Data_type.Other, Some l ->
          if l > d + eps then Alcotest.failf "oop latency %d > d+ε" l
      | _, None -> Alcotest.fail "incomplete op")
    out.trace.ops;
  (* replicas converge *)
  let states =
    Array.to_list out.final_states |> List.map (fun (s : Reg_alg.state) -> s.local_obj)
  in
  (match states with
  | first :: rest ->
      List.iter
        (fun s -> if s <> first then Alcotest.fail "replicas diverged after soak")
        rest
  | [] -> ());
  (* and no replica is left with queued work *)
  Array.iter
    (fun (s : Reg_alg.state) ->
      if not (Reg_alg.Queue.is_empty s.to_execute) then
        Alcotest.fail "To_Execute not drained")
    out.final_states

let () =
  Alcotest.run "core"
    [
      ( "latency-identities",
        [
          Alcotest.test_case "mutator ε+X" `Quick test_mutator_latency;
          Alcotest.test_case "accessor d+ε−X" `Quick test_accessor_latency;
          Alcotest.test_case "oop ≤ d+ε" `Quick test_oop_latency_bound;
          Alcotest.test_case "write+read sum d+2ε" `Quick test_mutator_accessor_sum;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "register" `Quick test_sequential_register;
          Alcotest.test_case "queue FIFO" `Quick test_sequential_queue_fifo;
        ] );
      ( "replication",
        [ Alcotest.test_case "replica convergence" `Quick test_replica_convergence ] );
      ( "linearizability",
        List.map QCheck_alcotest.to_alcotest
          [
            lin_register_random;
            lin_queue_random;
            lin_stack_random;
            lin_set_random;
            lin_tree_random;
            lin_kv_random;
            lin_bst_random;
            lin_pqueue_random;
            lin_update_array_random;
          ] );
      ( "more-objects",
        [ Alcotest.test_case "append log order" `Quick test_log_order ] );
      ( "model-assumptions",
        [
          Alcotest.test_case "bounded-time operations" `Quick test_bounded_time_operations;
          Alcotest.test_case "bounded quiescence" `Quick test_bounded_quiescence;
          Alcotest.test_case "history-obliviousness" `Quick test_history_obliviousness;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "X at maximum" `Quick test_x_extremes;
          Alcotest.test_case "u = 0" `Quick test_zero_uncertainty;
          Alcotest.test_case "36-op stress" `Quick test_larger_history_stress;
          Alcotest.test_case "2000-op soak" `Slow test_soak;
        ] );
      ( "baselines",
        Alcotest.test_case "centralized 2d" `Quick test_centralized_latency
        :: Alcotest.test_case "tob uniform d+ε" `Quick test_tob_uniform_latency
        :: List.map QCheck_alcotest.to_alcotest [ test_centralized_linearizable ] );
    ]
