(* Tests for the Chapter IV run machinery: configurations, admissibility,
   the standard time shift (formula 4.1 and its indistinguishability
   consequence), chopping (Lemma B.1) and extension. *)

module HReg = Experiments.Harness.Make (Spec.Register)

let mk ?(n = 3) ?(d = 1000) ?(u = 300) ?(eps = 200) ?offsets ?delays ?(script = []) () :
    Spec.Register.op Runs.Config.t =
  Runs.Config.make ~n ~d ~u ~eps ?offsets ?delays ~script ()

let test_admissibility () =
  let c = mk () in
  Alcotest.(check bool) "uniform d admissible" true (Runs.Config.is_admissible c);
  let c2 = mk ~offsets:[| 0; 201; 0 |] () in
  Alcotest.(check bool) "skew beyond ε rejected" false (Runs.Config.is_admissible c2);
  let delays = Array.make_matrix 3 3 1000 in
  delays.(0).(1) <- 699;
  let c3 = mk ~delays () in
  Alcotest.(check bool) "slow link rejected" false (Runs.Config.is_admissible c3);
  Alcotest.(check (list (pair int int))) "invalid pair reported" [ (0, 1) ]
    (Runs.Config.invalid_delays c3);
  delays.(0).(1) <- 1001;
  Alcotest.(check (list (pair int int))) "too-fast pair reported" [ (0, 1) ]
    (Runs.Config.invalid_delays (mk ~delays ()))

let test_skew () =
  Alcotest.(check int) "skew" 250 (Runs.Config.skew (mk ~offsets:[| -50; 200; 0 |] ()))

(* Formula (4.1): d'_{i,j} = d_{i,j} − x_i + x_j, offsets c_i − x_i,
   invocations of p_i move x_i later. *)
let shift_formula_prop =
  QCheck.Test.make ~name:"shift follows formula 4.1" ~count:200
    QCheck.(triple (int_bound 500) (int_bound 500) (int_bound 500))
    (fun (x0, x1, x2) ->
      let script = [ Sim.Workload.at 1 Spec.Register.Read 1000 ] in
      let c = mk ~script () in
      let s = Runs.Config.shift c ~x:[| x0; x1; x2 |] in
      let x = [| x0; x1; x2 |] in
      let delays_ok = ref true in
      for i = 0 to 2 do
        for j = 0 to 2 do
          if i <> j && s.delays.(i).(j) <> c.delays.(i).(j) - x.(i) + x.(j) then
            delays_ok := false
        done
      done;
      let offsets_ok =
        Array.for_all2 (fun a b -> a = b) s.offsets
          (Array.init 3 (fun i -> c.offsets.(i) - x.(i)))
      in
      let script_ok =
        match s.script with
        | [ inv ] -> inv.not_before = 1000 + x1
        | _ -> false
      in
      !delays_ok && offsets_ok && script_ok)

let shift_roundtrip_prop =
  QCheck.Test.make ~name:"shift by x then −x is the identity" ~count:100
    QCheck.(triple small_int small_int small_int)
    (fun (x0, x1, x2) ->
      let c = mk ~script:[ Sim.Workload.at 0 Spec.Register.Read 5000 ] () in
      let x = [| x0; x1; x2 |] in
      let back = Runs.Config.shift (Runs.Config.shift c ~x) ~x:(Array.map (fun v -> -v) x) in
      back.delays = c.delays && back.offsets = c.offsets
      && List.for_all2
           (fun (a : _ Sim.Workload.invocation) (b : _ Sim.Workload.invocation) ->
             a.not_before = b.not_before)
           back.script c.script)

(* The standard-shift indistinguishability (Claims B.1/B.3 in execution
   form): running the deterministic protocol on a shifted configuration
   yields identical results and identical *clock* times for every
   operation. *)
let shift_indistinguishable_prop =
  QCheck.Test.make ~name:"shifted runs are locally indistinguishable" ~count:50
    QCheck.(pair small_int (triple (int_bound 150) (int_bound 150) (int_bound 150)))
    (fun (seed, (x0, x1, x2)) ->
      let rng = Prelude.Rng.make (seed + 1) in
      let script =
        [
          Sim.Workload.at 0 (Spec.Register.Write (Prelude.Rng.int rng 50)) 1000;
          Sim.Workload.at 1 (Spec.Register.Rmw 7) 1200;
          Sim.Workload.at 2 Spec.Register.Read 1500;
        ]
      in
      let delays =
        Array.init 3 (fun _ -> Array.init 3 (fun _ -> Prelude.Rng.int_in rng ~lo:700 ~hi:1000))
      in
      let c = mk ~delays ~script () in
      let s = Runs.Config.shift c ~x:[| x0; x1; x2 |] in
      let params = Core.Params.make ~n:3 ~d:1000 ~u:300 ~eps:200 ~x:0 () in
      let run cfg = HReg.execute ~check_lin:false ~params cfg in
      let a = run c and b = run s in
      List.for_all2
        (fun (ra : _ Sim.Trace.op_record) (rb : _ Sim.Trace.op_record) ->
          ra.result = rb.result
          && ra.invoke_clock = rb.invoke_clock
          && ra.response_clock = rb.response_clock)
        a.outcome.trace.ops b.outcome.trace.ops)

let test_floyd_warshall () =
  let w = [| [| 0; 4; 10 |]; [| 9; 0; 3 |]; [| 1; 9; 0 |] |] in
  let d = Runs.Paths.floyd_warshall w in
  Alcotest.(check int) "direct" 4 d.(0).(1);
  Alcotest.(check int) "via 1" 7 d.(0).(2);
  Alcotest.(check int) "via 2 then 0 beats direct" 4 d.(1).(0);
  Alcotest.(check int) "self" 0 d.(0).(0)

(* Lemma B.1 on a hand-checked instance (the Fig. 4/5 scenario). *)
let test_chop_cut_points () =
  let d = 1000 and u = 400 in
  let delays = Array.make_matrix 2 2 d in
  delays.(0).(1) <- d + u;
  let cfg =
    Runs.Config.make ~n:2 ~d ~u ~eps:400 ~delays
      ~script:[ Sim.Workload.at 0 (Spec.Register.Write 1) 0 ]
      ()
  in
  let params =
    Core.Params.faster_mutator (Core.Params.make ~n:2 ~d ~u ~eps:400 ~x:0 ()) ~latency:100
  in
  let module H2 = Experiments.Harness.Make (Spec.Register) in
  let probe = H2.execute ~check_lin:false ~params cfg in
  match Runs.Chop.cut_points cfg ~trace:probe.outcome.trace ~invalid:(0, 1) ~delta:(d - u) with
  | None -> Alcotest.fail "expected a cut"
  | Some cut ->
      Alcotest.(check int) "ts = first send" 0 cut.first_send;
      Alcotest.(check int) "t* = ts + min(d+u, δ)" 600 cut.t_star;
      Alcotest.(check int) "V_1 ends at t*" 600 cut.view_ends.(1);
      Alcotest.(check int) "V_0 ends at t* + D_{1,0}" 1600 cut.view_ends.(0)

let test_chop_delta_validation () =
  let cfg = mk () in
  Alcotest.check_raises "δ below range"
    (Invalid_argument "Chop.cut_points: δ must lie in [d − u, d]") (fun () ->
      ignore
        (Runs.Chop.cut_points cfg
           ~trace:
             { n = 3; offsets = [| 0; 0; 0 |]; ops = []; messages = []; end_time = 0 }
           ~invalid:(0, 1) ~delta:100))

let test_extended_delays () =
  let delays = Array.make_matrix 2 2 1000 in
  delays.(0).(1) <- 1400;
  let cfg = Runs.Config.make ~n:2 ~d:1000 ~u:400 ~eps:400 ~delays ~script:[] () in
  let ext = Runs.Chop.extended_delays cfg ~invalid:(0, 1) ~delta':900 in
  Alcotest.(check int) "overridden" 900 ext.(0).(1);
  Alcotest.(check int) "others kept" 1000 ext.(1).(0);
  Alcotest.(check int) "original untouched" 1400 cfg.delays.(0).(1)

(* The whole modified-shift pipeline as a property: shift p1 by a random
   amount beyond u (making 0→1 invalid), chop, extend with a random
   admissible δ′ — the chopped prefix must agree with the complete
   extension on every response that falls inside the kept views
   (Lemma B.1 + the extension argument). *)
let chop_extend_agreement_prop =
  QCheck.Test.make ~name:"chop prefix agrees with any admissible extension" ~count:60
    QCheck.(triple (int_range 1 400) (int_range 0 400) (int_range 0 400))
    (fun (a, s_off, delta_off) ->
      let d = 1000 and u = 400 and eps = 500 in
      (* base 0→1 delay d − u + a; shift p1 by s so that 0→1 becomes
         invalid (> d) while 1→0 (= d − s ≥ d − u) stays admissible: the
         exactly-one-invalid-delay regime of Lemma B.1. *)
      let s = u - a + 1 + (s_off mod a) in
      let delays = Array.make_matrix 2 2 d in
      delays.(0).(1) <- d - u + a;
      let base =
        Runs.Config.make ~n:2 ~d ~u ~eps ~delays
          ~script:
            [
              Sim.Workload.at 0 (Spec.Register.Write 3) 0;
              Sim.Workload.at 1 (Spec.Register.Write 4) 0;
            ]
          ()
      in
      let shifted = Runs.Config.shift base ~x:[| 0; s |] in
      match Runs.Config.invalid_delays shifted with
      | [ (0, 1) ] -> (
          let params =
            Core.Params.faster_mutator
              (Core.Params.make ~n:2 ~d ~u ~eps ~x:0 ())
              ~latency:150
          in
          let probe = HReg.execute ~check_lin:false ~params shifted in
          let delta = d - u in
          match
            Runs.Chop.cut_points shifted ~trace:probe.outcome.trace ~invalid:(0, 1)
              ~delta
          with
          | None -> false
          | Some cut ->
              let chopped =
                HReg.execute ~check_lin:false ~view_ends:cut.view_ends ~params shifted
              in
              let delta' = min d (delta + delta_off) in
              let extended =
                {
                  shifted with
                  delays = Runs.Chop.extended_delays shifted ~invalid:(0, 1) ~delta';
                }
              in
              let complete = HReg.execute ~check_lin:false ~params extended in
              List.for_all2
                (fun (c : _ Sim.Trace.op_record) (e : _ Sim.Trace.op_record) ->
                  c.result = None
                  || (c.result = e.result && c.response_real = e.response_real))
                chopped.outcome.trace.ops complete.outcome.trace.ops)
      | _ -> false)

let () =
  Alcotest.run "runs"
    [
      ( "config",
        [
          Alcotest.test_case "admissibility" `Quick test_admissibility;
          Alcotest.test_case "skew" `Quick test_skew;
        ] );
      ( "shift",
        List.map QCheck_alcotest.to_alcotest
          [ shift_formula_prop; shift_roundtrip_prop; shift_indistinguishable_prop ] );
      ( "chop",
        [
          Alcotest.test_case "floyd-warshall" `Quick test_floyd_warshall;
          Alcotest.test_case "cut points" `Quick test_chop_cut_points;
          Alcotest.test_case "delta validation" `Quick test_chop_delta_validation;
          Alcotest.test_case "extended delays" `Quick test_extended_delays;
        ] );
      ( "modified-shift pipeline",
        List.map QCheck_alcotest.to_alcotest [ chop_extend_agreement_prop ] );
    ]
