test/test_runs.ml: Alcotest Array Core Experiments List Prelude QCheck QCheck_alcotest Runs Sim Spec
