test/test_bounds.ml: Alcotest Bounds Core List Option QCheck QCheck_alcotest Spec
