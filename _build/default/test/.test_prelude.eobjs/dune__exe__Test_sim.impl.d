test/test_sim.ml: Alcotest Format List Prelude QCheck QCheck_alcotest Sim String
