test/test_runs.mli:
