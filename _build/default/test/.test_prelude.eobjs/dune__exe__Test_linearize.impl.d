test/test_linearize.ml: Alcotest Core Linearize List Prelude QCheck QCheck_alcotest Sim Spec
