test/test_core.ml: Alcotest Array Core Fun Int Linearize List Option Prelude Printf QCheck QCheck_alcotest Sim Spec
