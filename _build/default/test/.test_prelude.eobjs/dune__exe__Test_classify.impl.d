test/test_classify.ml: Alcotest Classify List Spec String
