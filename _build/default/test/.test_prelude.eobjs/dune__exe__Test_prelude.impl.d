test/test_prelude.ml: Alcotest Gen Int List Prelude QCheck QCheck_alcotest
