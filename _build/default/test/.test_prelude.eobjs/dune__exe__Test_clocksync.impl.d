test/test_clocksync.ml: Alcotest Array Clocksync Core List Prelude QCheck QCheck_alcotest Sim
