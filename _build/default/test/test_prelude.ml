(* Unit and property tests for the prelude: time, timestamps, the leftist
   heap, the deterministic PRNG, and the enumeration helpers. *)

module H = Prelude.Heap.Make (Int)

let test_ticks () =
  Alcotest.(check int) "add" 30 Prelude.Ticks.(10 + 20);
  Alcotest.(check int) "sub" (-10) Prelude.Ticks.(10 - 20);
  Alcotest.(check bool) "lt" true Prelude.Ticks.(3 < 4);
  Alcotest.(check bool) "ge" true Prelude.Ticks.(4 >= 4);
  Alcotest.(check bool) "infinity dominates" true
    Prelude.Ticks.(1_000_000_000 < Prelude.Ticks.infinity);
  Alcotest.(check string) "pp" "42t" (Prelude.Ticks.to_string 42)

let stamp t pid = Prelude.Stamp.make ~time:t ~pid

let test_stamp_order () =
  Alcotest.(check bool) "time dominates" true Prelude.Stamp.(stamp 1 9 < stamp 2 0);
  Alcotest.(check bool) "pid breaks ties" true Prelude.Stamp.(stamp 5 1 < stamp 5 2);
  Alcotest.(check bool) "equal" true (Prelude.Stamp.equal (stamp 5 1) (stamp 5 1));
  Alcotest.(check bool) "le reflexive" true Prelude.Stamp.(stamp 5 1 <= stamp 5 1)

let test_heap_basics () =
  let h = H.of_list [ 5; 3; 8; 1; 9; 2 ] in
  Alcotest.(check int) "size" 6 (H.size h);
  Alcotest.(check (option int)) "min" (Some 1) (H.find_min h);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 8; 9 ] (H.to_sorted_list h);
  Alcotest.(check bool) "empty" true (H.is_empty H.empty);
  Alcotest.(check (option int)) "empty min" None (H.find_min H.empty)

let test_heap_pop_while () =
  let h = H.of_list [ 5; 3; 8; 1 ] in
  let popped, rest = H.pop_while (fun x -> x < 5) h in
  Alcotest.(check (list int)) "popped ascending" [ 1; 3 ] popped;
  Alcotest.(check (list int)) "rest" [ 5; 8 ] (H.to_sorted_list rest);
  let all, empty = H.pop_while (fun _ -> true) h in
  Alcotest.(check (list int)) "pop all" [ 1; 3; 5; 8 ] all;
  Alcotest.(check bool) "emptied" true (H.is_empty empty)

let heap_sorted_prop =
  QCheck.Test.make ~name:"heap to_sorted_list sorts any list" ~count:200
    QCheck.(list int)
    (fun xs -> H.to_sorted_list (H.of_list xs) = List.sort compare xs)

let heap_delete_min_prop =
  QCheck.Test.make ~name:"heap delete_min returns the minimum" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) int)
    (fun xs ->
      match H.delete_min (H.of_list xs) with
      | Some (m, rest) ->
          m = List.fold_left min (List.hd xs) xs && H.size rest = List.length xs - 1
      | None -> false)

let test_rng_determinism () =
  let a = Prelude.Rng.make 42 and b = Prelude.Rng.make 42 in
  let xs g = List.init 20 (fun _ -> Prelude.Rng.int g 1000) in
  Alcotest.(check (list int)) "same seed, same stream" (xs a) (xs b)

let rng_bounds_prop =
  QCheck.Test.make ~name:"rng int_in stays in range" ~count:500
    QCheck.(pair small_int (pair small_int small_nat))
    (fun (seed, (lo, width)) ->
      let g = Prelude.Rng.make seed in
      let v = Prelude.Rng.int_in g ~lo ~hi:(lo + width) in
      v >= lo && v <= lo + width)

let shuffle_perm_prop =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list int))
    (fun (seed, xs) ->
      let g = Prelude.Rng.make seed in
      List.sort compare (Prelude.Rng.shuffle g xs) = List.sort compare xs)

let test_permutations () =
  let p = Prelude.Combinatorics.permutations [ 1; 2; 3 ] in
  Alcotest.(check int) "3! perms" 6 (List.length p);
  Alcotest.(check int) "all distinct" 6 (List.length (List.sort_uniq compare p));
  List.iter
    (fun perm ->
      Alcotest.(check (list int)) "is permutation" [ 1; 2; 3 ] (List.sort compare perm))
    p;
  Alcotest.(check (list (list int))) "empty" [ [] ] (Prelude.Combinatorics.permutations [])

let test_combinations () =
  let c = Prelude.Combinatorics.combinations 2 [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "C(4,2)" 6 (List.length c);
  Alcotest.(check bool) "contains [1;3]" true (List.mem [ 1; 3 ] c);
  Alcotest.(check (list (list int))) "k=0" [ [] ] (Prelude.Combinatorics.combinations 0 [ 1 ]);
  Alcotest.(check (list (list int))) "k too big" [] (Prelude.Combinatorics.combinations 3 [ 1; 2 ])

let test_ordered_pairs () =
  Alcotest.(check int) "cartesian size" 6
    (List.length (Prelude.Combinatorics.ordered_pairs [ 1; 2 ] [ 'a'; 'b'; 'c' ]))

let () =
  Alcotest.run "prelude"
    [
      ("ticks", [ Alcotest.test_case "arithmetic" `Quick test_ticks ]);
      ("stamp", [ Alcotest.test_case "ordering" `Quick test_stamp_order ]);
      ( "heap",
        Alcotest.test_case "basics" `Quick test_heap_basics
        :: Alcotest.test_case "pop_while" `Quick test_heap_pop_while
        :: List.map QCheck_alcotest.to_alcotest [ heap_sorted_prop; heap_delete_min_prop ] );
      ( "rng",
        Alcotest.test_case "determinism" `Quick test_rng_determinism
        :: List.map QCheck_alcotest.to_alcotest [ rng_bounds_prop; shuffle_perm_prop ] );
      ( "combinatorics",
        [
          Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "combinations" `Quick test_combinations;
          Alcotest.test_case "ordered pairs" `Quick test_ordered_pairs;
        ] );
    ]
