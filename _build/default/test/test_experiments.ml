(* Integration tests: every registered experiment (table/figure/theorem
   reproduction) must report OK — i.e., every outcome the paper predicts
   holds on the executed runs. *)

let experiment_case (e : Experiments.Registry.entry) =
  Alcotest.test_case e.id `Quick (fun () ->
      let r = e.run () in
      if not r.ok then
        Alcotest.failf "experiment %s mismatched:\n%s" r.id
          (String.concat "\n" r.lines))

let test_registry_complete () =
  let ids = List.map (fun (e : Experiments.Registry.entry) -> e.id) (Experiments.Registry.all ()) in
  List.iter
    (fun id ->
      if not (List.mem id ids) then Alcotest.failf "experiment %s not registered" id)
    [
      "fig1"; "fig3"; "fig4-5"; "thm_c1"; "thm_d1"; "thm_e1"; "tables"; "tradeoff";
      "baselines"; "clocksync"; "ablation"; "drift"; "lossy"; "scaling"; "sweep"; "sc"; "mix"; "thresholds";
    ];
  Alcotest.(check bool) "find works" true (Experiments.Registry.find "fig1" <> None);
  Alcotest.(check bool) "unknown id" true (Experiments.Registry.find "nope" = None)

let () =
  Alcotest.run "experiments"
    [
      ("registry", [ Alcotest.test_case "complete" `Quick test_registry_complete ]);
      ("reproductions", List.map experiment_case (Experiments.Registry.all ()));
    ]
