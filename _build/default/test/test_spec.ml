(* Tests for the sequential specifications: the object laws each data type
   must satisfy, the derived Run operations (replay, instance legality,
   commit), and the canonical-state property backing the paper's
   "equivalent" relation (Definition C.2). *)

open Spec

(* ---- register ---- *)

module R_run = Data_type.Run (Register)

let test_register_laws () =
  let open Register in
  let s, r = apply 0 (Write 5) in
  Alcotest.(check bool) "write sets" true (s = 5 && r = Ack);
  let _, r = apply 5 Read in
  Alcotest.(check bool) "read returns" true (r = Value 5);
  let s, r = apply 5 (Rmw 9) in
  Alcotest.(check bool) "rmw returns old, writes new" true (s = 9 && r = Value 5);
  let s, r = apply 5 (Add 3) in
  Alcotest.(check bool) "add increments silently" true (s = 8 && r = Ack)

let test_register_replay () =
  let open Register in
  Alcotest.(check int) "replay" 9 (R_run.replay [ Write 5; Add 1; Rmw 9 ]);
  Alcotest.(check bool) "instance legality" true
    (R_run.instance_legal 5 (Data_type.Instance.make Read (Value 5)));
  Alcotest.(check bool) "illegal instance" false
    (R_run.instance_legal 5 (Data_type.Instance.make Read (Value 6)))

let test_register_commit () =
  let open Register in
  let committed = R_run.commit 0 [ Write 3; Read; Rmw 7; Read ] in
  let results = List.map (fun (i : _ Data_type.Instance.t) -> i.result) committed in
  Alcotest.(check bool) "committed results" true
    (results = [ Ack; Value 3; Value 3; Value 7 ])

(* ---- queue ---- *)

module Q_run = Data_type.Run (Fifo_queue)

let test_queue_fifo () =
  let open Fifo_queue in
  let s = Q_run.replay [ Enqueue 1; Enqueue 2; Enqueue 3 ] in
  Alcotest.(check bool) "order" true (s = [ 1; 2; 3 ]);
  let s, r = apply s Dequeue in
  Alcotest.(check bool) "dequeue head" true (s = [ 2; 3 ] && r = Value 1);
  let _, r = apply s Peek in
  Alcotest.(check bool) "peek head non-destructive" true (r = Value 2);
  let s, r = apply [] Dequeue in
  Alcotest.(check bool) "empty dequeue" true (s = [] && r = Empty);
  let _, r = apply [] Peek in
  Alcotest.(check bool) "empty peek" true (r = Empty)

(* ---- stack ---- *)

module S_run = Data_type.Run (Lifo_stack)

let test_stack_lifo () =
  let open Lifo_stack in
  let s = S_run.replay [ Push 1; Push 2; Push 3 ] in
  Alcotest.(check bool) "top first" true (s = [ 3; 2; 1 ]);
  let s, r = apply s Pop in
  Alcotest.(check bool) "pop top" true (s = [ 2; 1 ] && r = Value 3);
  let _, r = apply s Peek in
  Alcotest.(check bool) "peek top" true (r = Value 2);
  let _, r = apply [] Pop in
  Alcotest.(check bool) "empty pop" true (r = Empty)

(* ---- set ---- *)

let test_set_laws () =
  let open Int_set in
  let s, _ = apply initial (Insert 5) in
  let s, _ = apply s (Insert 5) in
  let _, r = apply s Size in
  Alcotest.(check bool) "insert idempotent" true (r = Count 1);
  let _, r = apply s (Contains 5) in
  Alcotest.(check bool) "contains" true (r = Bool true);
  let s, _ = apply s (Delete 5) in
  let _, r = apply s (Contains 5) in
  Alcotest.(check bool) "deleted" true (r = Bool false);
  (* insert order never matters: eventually self-commuting *)
  let ab = List.fold_left (fun s op -> fst (apply s op)) initial [ Insert 1; Insert 2 ] in
  let ba = List.fold_left (fun s op -> fst (apply s op)) initial [ Insert 2; Insert 1 ] in
  Alcotest.(check bool) "insert commutes" true (equal_state ab ba)

(* ---- tree ---- *)

module T_run = Data_type.Run (Rooted_tree)

let test_tree_laws () =
  let open Rooted_tree in
  let s = T_run.replay [ Insert (0, 1); Insert (1, 2); Insert (2, 3); Insert (0, 4) ] in
  let _, r = apply s Depth in
  Alcotest.(check bool) "depth of chain 0-1-2-3" true (r = Count 3);
  let _, r = apply s (Search 3) in
  Alcotest.(check bool) "search found" true (r = Bool true);
  (* deleting an inner node removes its whole subtree *)
  let s', _ = apply s (Delete 1) in
  let _, r = apply s' (Search 3) in
  Alcotest.(check bool) "subtree removed" true (r = Bool false);
  let _, r = apply s' (Search 4) in
  Alcotest.(check bool) "sibling kept" true (r = Bool true);
  let _, r = apply s' Depth in
  Alcotest.(check bool) "depth shrinks" true (r = Count 1);
  (* inserting under a missing parent and deleting the root are no-ops *)
  let s'', _ = apply s' (Insert (99, 7)) in
  Alcotest.(check bool) "no orphan insert" true (equal_state s' s'');
  let s'', _ = apply s' (Delete 0) in
  Alcotest.(check bool) "root protected" true (equal_state s' s'');
  (* duplicate node ids are ignored *)
  let s'', _ = apply s' (Insert (0, 4)) in
  Alcotest.(check bool) "no duplicate node" true (equal_state s' s'')

(* ---- UpdateNext array: the Chapter II.B case analysis ---- *)

let test_update_array_cases () =
  let open Update_array in
  (* update_next(1,b): returns first element, writes second *)
  let s, r = apply (3, 4) (Update_next (1, 9)) in
  Alcotest.(check bool) "i=1 writes next" true (s = (3, 9) && r = Value 3);
  (* i=2 is the last element: modifies nothing *)
  let s, r = apply (3, 4) (Update_next (2, 9)) in
  Alcotest.(check bool) "i=2 modifies nothing" true (s = (3, 4) && r = Value 4);
  let _, r = apply (3, 4) (Get 1) in
  Alcotest.(check bool) "get 1" true (r = Value 3);
  let _, r = apply (3, 4) (Get 2) in
  Alcotest.(check bool) "get 2" true (r = Value 4)

(* ---- log ---- *)

let test_log_laws () =
  let open Append_log in
  let module L = Data_type.Run (Append_log) in
  let s = L.replay [ Append 1; Append 2; Append 3 ] in
  let _, r = apply s Read_all in
  Alcotest.(check bool) "append order preserved" true (r = All [ 1; 2; 3 ]);
  let _, r = apply s Length in
  Alcotest.(check bool) "length" true (r = Count 3)

(* ---- kv map ---- *)

let test_kv_laws () =
  let open Kv_map in
  let module K = Data_type.Run (Kv_map) in
  let s = K.replay [ Put (1, 10); Put (2, 20); Put (1, 11) ] in
  let _, r = apply s (Get 1) in
  Alcotest.(check bool) "last put wins" true (r = Found 11);
  let s, r = apply s (Swap (1, 12)) in
  Alcotest.(check bool) "swap returns old" true (r = Found 11);
  let _, r = apply s (Get 1) in
  Alcotest.(check bool) "swap wrote" true (r = Found 12);
  let s, _ = apply s (Del 1) in
  let _, r = apply s (Get 1) in
  Alcotest.(check bool) "deleted" true (r = Absent);
  let _, r = apply s (Swap (7, 1)) in
  Alcotest.(check bool) "swap on absent key" true (r = Absent)

(* ---- bst ---- *)

let test_bst_laws () =
  let open Bst in
  let module B = Data_type.Run (Bst) in
  let s = B.replay [ Insert 4; Insert 2; Insert 6; Insert 5 ] in
  let _, r = apply s (Search 5) in
  Alcotest.(check bool) "search finds" true (r = Bool true);
  let _, r = apply s (Depth 5) in
  Alcotest.(check bool) "5 at depth 2 (4→6→5)" true (r = Level 2);
  let _, r = apply s (Depth 4) in
  Alcotest.(check bool) "root at depth 0" true (r = Level 0);
  let _, r = apply s (Depth 9) in
  Alcotest.(check bool) "absent node" true (r = Absent);
  (* delete an inner node: successor promotion keeps the rest *)
  let s', _ = apply s (Delete 4) in
  let _, r = apply s' (Search 4) in
  Alcotest.(check bool) "deleted" true (r = Bool false);
  List.iter
    (fun v ->
      let _, r = apply s' (Search v) in
      Alcotest.(check bool) (Printf.sprintf "%d survives" v) true (r = Bool true))
    [ 2; 5; 6 ];
  (* insertion order shapes the tree: 5-then-6 ≠ 6-then-5 under root 4 *)
  let a = B.replay [ Insert 4; Insert 5; Insert 6 ]
  and b = B.replay [ Insert 4; Insert 6; Insert 5 ] in
  Alcotest.(check bool) "order observable" false (equal_state a b)

(* ---- priority queue ---- *)

let test_priority_queue_laws () =
  let open Priority_queue in
  let module P = Data_type.Run (Priority_queue) in
  let s = P.replay [ Insert 5; Insert 1; Insert 3 ] in
  let _, r = apply s Min in
  Alcotest.(check bool) "min" true (r = Value 1);
  let s, r = apply s Extract_min in
  Alcotest.(check bool) "extract min" true (r = Value 1);
  let _, r = apply s Min in
  Alcotest.(check bool) "next min" true (r = Value 3);
  let _, r = apply initial Extract_min in
  Alcotest.(check bool) "empty extract" true (r = Empty);
  (* inserts commute *)
  let a = P.replay [ Insert 2; Insert 7 ] and b = P.replay [ Insert 7; Insert 2 ] in
  Alcotest.(check bool) "insert order invisible" true (equal_state a b)

(* ---- generic properties over every spec ---- *)

let determinism (type s o r)
    (module D : Data_type.SAMPLED with type state = s and type op = o and type result = r)
    =
  QCheck.Test.make
    ~name:(D.name ^ ": replay is deterministic and total")
    ~count:100
    QCheck.(pair small_int (small_list small_int))
    (fun (seed, picks) ->
      let module Run = Data_type.Run (D) in
      let rng = Prelude.Rng.make seed in
      ignore rng;
      let ops =
        List.map (fun i -> List.nth D.sample_ops (abs i mod List.length D.sample_ops)) picks
      in
      let s1 = Run.replay ops and s2 = Run.replay ops in
      D.equal_state s1 s2)

(* Canonical states: equal states give equal results on every probe — the
   soundness direction of using state equality for Definition C.2. *)
let canonical_state (type s o r)
    (module D : Data_type.SAMPLED with type state = s and type op = o and type result = r)
    =
  QCheck.Test.make
    ~name:(D.name ^ ": equal states are observationally equal")
    ~count:100
    QCheck.(pair (small_list small_int) (small_list small_int))
    (fun (p1, p2) ->
      let module Run = Data_type.Run (D) in
      let pick i = List.nth D.sample_ops (abs i mod List.length D.sample_ops) in
      let s1 = Run.replay (List.map pick p1) and s2 = Run.replay (List.map pick p2) in
      (not (D.equal_state s1 s2))
      || List.for_all
           (fun op -> D.equal_result (snd (D.apply s1 op)) (snd (D.apply s2 op)))
           D.sample_ops)

let generic_props =
  List.concat_map
    (fun (p1, p2) -> [ p1; p2 ])
    [
      (determinism (module Register), canonical_state (module Register));
      (determinism (module Fifo_queue), canonical_state (module Fifo_queue));
      (determinism (module Lifo_stack), canonical_state (module Lifo_stack));
      (determinism (module Int_set), canonical_state (module Int_set));
      (determinism (module Rooted_tree), canonical_state (module Rooted_tree));
      (determinism (module Update_array), canonical_state (module Update_array));
      (determinism (module Append_log), canonical_state (module Append_log));
      (determinism (module Kv_map), canonical_state (module Kv_map));
      (determinism (module Lifo_stack_obs), canonical_state (module Lifo_stack_obs));
      (determinism (module Bst), canonical_state (module Bst));
      (determinism (module Priority_queue), canonical_state (module Priority_queue));
    ]

let test_run_instances () =
  let open Register in
  let mk op result = Data_type.Instance.make op result in
  Alcotest.(check bool) "legal sequence accepted" true
    (R_run.sequence_legal 0 [ mk (Write 1) Ack; mk Read (Value 1) ]);
  Alcotest.(check bool) "illegal tail rejected" false
    (R_run.sequence_legal 0 [ mk (Write 1) Ack; mk Read (Value 2) ])

let () =
  Alcotest.run "spec"
    [
      ( "register",
        [
          Alcotest.test_case "laws" `Quick test_register_laws;
          Alcotest.test_case "replay" `Quick test_register_replay;
          Alcotest.test_case "commit" `Quick test_register_commit;
        ] );
      ("queue", [ Alcotest.test_case "fifo" `Quick test_queue_fifo ]);
      ("stack", [ Alcotest.test_case "lifo" `Quick test_stack_lifo ]);
      ("set", [ Alcotest.test_case "laws" `Quick test_set_laws ]);
      ("tree", [ Alcotest.test_case "laws" `Quick test_tree_laws ]);
      ("update-array", [ Alcotest.test_case "cases" `Quick test_update_array_cases ]);
      ("log", [ Alcotest.test_case "laws" `Quick test_log_laws ]);
      ("kv", [ Alcotest.test_case "laws" `Quick test_kv_laws ]);
      ("bst", [ Alcotest.test_case "laws" `Quick test_bst_laws ]);
      ("priority-queue", [ Alcotest.test_case "laws" `Quick test_priority_queue_laws ]);
      ("run", [ Alcotest.test_case "instances" `Quick test_run_instances ]);
      ("generic", List.map QCheck_alcotest.to_alcotest generic_props);
    ]
