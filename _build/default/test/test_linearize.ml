(* Tests for the linearizability checker: known-good and known-bad
   histories, program-order handling, witness validity, and the
   trace-to-history glue. *)

module L = Linearize.Make (Spec.Register)
module LQ = Linearize.Make (Spec.Fifo_queue)

let e ?(pid = 0) op result invoke response : L.entry = { pid; op; result; invoke; response }

let eq ?(pid = 0) op result invoke response : LQ.entry = { pid; op; result; invoke; response }

let lin = function L.Linearizable _ -> true | L.Not_linearizable _ -> false
let linq = function LQ.Linearizable _ -> true | LQ.Not_linearizable _ -> false

let test_empty_and_sequential () =
  Alcotest.(check bool) "empty history" true (lin (L.check []));
  Alcotest.(check bool) "sequential reads/writes" true
    (lin
       (L.check
          [
            e (Spec.Register.Write 1) Spec.Register.Ack 0 10;
            e Spec.Register.Read (Spec.Register.Value 1) 20 30;
            e (Spec.Register.Write 2) Spec.Register.Ack 40 50;
            e Spec.Register.Read (Spec.Register.Value 2) 60 70;
          ]))

let test_stale_read_rejected () =
  Alcotest.(check bool) "read of overwritten value" false
    (lin
       (L.check
          [
            e (Spec.Register.Write 1) Spec.Register.Ack 0 10;
            e ~pid:1 (Spec.Register.Write 2) Spec.Register.Ack 20 30;
            e ~pid:2 Spec.Register.Read (Spec.Register.Value 1) 40 50;
          ]))

let test_concurrent_flexibility () =
  (* Overlapping writes may linearize in either order; the read constrains
     which one. *)
  Alcotest.(check bool) "concurrent write chooses order" true
    (lin
       (L.check
          [
            e (Spec.Register.Write 1) Spec.Register.Ack 0 100;
            e ~pid:1 (Spec.Register.Write 2) Spec.Register.Ack 0 100;
            e ~pid:2 Spec.Register.Read (Spec.Register.Value 1) 200 300;
          ]))

let test_both_rmw_zero_rejected () =
  (* The Theorem C.1 contradiction: two rmw's both returning the initial
     value while ordered or overlapping. *)
  Alcotest.(check bool) "two rmw claiming to be first" false
    (lin
       (L.check
          [
            e (Spec.Register.Rmw 1) (Spec.Register.Value 0) 0 100;
            e ~pid:1 (Spec.Register.Rmw 2) (Spec.Register.Value 0) 50 150;
          ]))

let test_duplicate_dequeue_rejected () =
  Alcotest.(check bool) "element dequeued twice" false
    (linq
       (LQ.check
          [
            eq (Spec.Fifo_queue.Enqueue 9) Spec.Fifo_queue.Ack 0 10;
            eq ~pid:1 Spec.Fifo_queue.Dequeue (Spec.Fifo_queue.Value 9) 20 120;
            eq ~pid:2 Spec.Fifo_queue.Dequeue (Spec.Fifo_queue.Value 9) 30 130;
          ]))

let test_program_order_enforced () =
  (* Same process, touching times (response = next invocation): program
     order must still hold, so a read *after* the write cannot miss it. *)
  Alcotest.(check bool) "program order binds" false
    (lin
       (L.check
          [
            e (Spec.Register.Write 5) Spec.Register.Ack 0 100;
            e Spec.Register.Read (Spec.Register.Value 0) 100 200;
          ]))

let test_cross_process_touching_concurrent () =
  (* Different processes with touching times are concurrent (strict <):
     the read at invocation = other's response may still return the old
     value. *)
  Alcotest.(check bool) "touching across processes is overlap" true
    (lin
       (L.check
          [
            e (Spec.Register.Write 5) Spec.Register.Ack 0 100;
            e ~pid:1 Spec.Register.Read (Spec.Register.Value 0) 100 200;
          ]))

let test_witness_is_valid () =
  let history =
    [
      e (Spec.Register.Write 1) Spec.Register.Ack 0 100;
      e ~pid:1 (Spec.Register.Rmw 2) (Spec.Register.Value 1) 50 250;
      e ~pid:2 Spec.Register.Read (Spec.Register.Value 2) 300 400;
    ]
  in
  match L.check history with
  | L.Not_linearizable why -> Alcotest.fail why
  | L.Linearizable witness ->
      Alcotest.(check int) "witness covers all ops" (List.length history)
        (List.length witness);
      (* replaying the witness is legal *)
      let legal =
        List.fold_left
          (fun (s, ok) (w : L.entry) ->
            let s', r = Spec.Register.apply s w.op in
            (s', ok && Spec.Register.equal_result r w.result))
          (Spec.Register.initial, true)
          witness
        |> snd
      in
      Alcotest.(check bool) "witness legal" true legal;
      (* and it respects strict real-time precedence *)
      let rec respects = function
        | [] | [ _ ] -> true
        | (a : L.entry) :: rest ->
            List.for_all (fun (b : L.entry) -> not (b.response < a.invoke)) rest
            && respects rest
      in
      Alcotest.(check bool) "witness respects precedence" true (respects witness)

let test_too_many_ops () =
  let entries =
    List.init 63 (fun i -> e (Spec.Register.Write i) Spec.Register.Ack (i * 10) ((i * 10) + 5))
  in
  Alcotest.check_raises "62-op limit"
    (Invalid_argument "Linearize.check: histories are limited to 62 operations")
    (fun () -> ignore (L.check entries))

(* of_trace glue: run a real simulation and convert. *)
module Alg = Core.Algorithm1.Make (Spec.Register)
module E = Sim.Engine.Make (Alg)

let test_of_trace () =
  let params = Core.Params.make ~n:3 ~d:1000 ~u:300 ~eps:200 ~x:0 () in
  let out =
    E.run ~config:params ~n:3 ~offsets:[| 0; 0; 0 |] ~delay:(Sim.Delay.constant 1000)
      [ Sim.Workload.at 0 (Spec.Register.Write 3) 0; Sim.Workload.at 1 Spec.Register.Read 2000 ]
  in
  let entries = L.of_trace out.trace in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  Alcotest.(check bool) "verdict" true (lin (L.check entries))

(* Property: Algorithm 1 histories always produce witnesses the validity
   checker accepts (redundant cross-check of checker and protocol). *)
let witness_validity_prop =
  QCheck.Test.make ~name:"checker witnesses are always valid" ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Prelude.Rng.make (seed + 77) in
      let params = Core.Params.make ~n:3 ~d:1000 ~u:300 ~eps:200 ~x:0 () in
      let script =
        List.concat_map
          (fun pid ->
            Sim.Workload.seq pid
              (Prelude.Rng.int rng 1500)
              [
                (if Prelude.Rng.bool rng then Spec.Register.Write (Prelude.Rng.int rng 9)
                 else Spec.Register.Rmw (Prelude.Rng.int rng 9));
                Spec.Register.Read;
              ])
          [ 0; 1; 2 ]
      in
      let out =
        E.run ~config:params ~n:3 ~offsets:[| 0; 100; 200 |]
          ~delay:(Sim.Delay.random rng ~d:1000 ~u:300)
          script
      in
      match L.check_trace out.trace with
      | L.Not_linearizable _ -> false
      | L.Linearizable witness ->
          List.fold_left
            (fun (s, ok) (w : L.entry) ->
              let s', r = Spec.Register.apply s w.op in
              (s', ok && Spec.Register.equal_result r w.result))
            (Spec.Register.initial, true)
            witness
          |> snd)

(* ---- sequential consistency (the weaker condition of Ch. I) ---- *)

let test_sequential_consistency () =
  let stale_cross_process =
    [
      e (Spec.Register.Write 1) Spec.Register.Ack 0 10;
      e ~pid:1 (Spec.Register.Write 2) Spec.Register.Ack 20 30;
      e ~pid:2 Spec.Register.Read (Spec.Register.Value 1) 40 50;
    ]
  in
  Alcotest.(check bool) "stale cross-process read violates linearizability" false
    (lin (L.check stale_cross_process));
  Alcotest.(check bool) "…but is sequentially consistent" true
    (lin (L.check_sequentially_consistent stale_cross_process));
  (* program order still binds under SC *)
  let backwards =
    [
      e (Spec.Register.Write 1) Spec.Register.Ack 0 10;
      e (Spec.Register.Write 2) Spec.Register.Ack 20 30;
      e ~pid:1 Spec.Register.Read (Spec.Register.Value 2) 40 50;
      e ~pid:1 Spec.Register.Read (Spec.Register.Value 1) 60 70;
    ]
  in
  Alcotest.(check bool) "same-process backwards reads rejected by SC" false
    (lin (L.check_sequentially_consistent backwards));
  (* SC is implied by linearizability *)
  let fine =
    [
      e (Spec.Register.Write 1) Spec.Register.Ack 0 10;
      e ~pid:1 Spec.Register.Read (Spec.Register.Value 1) 20 30;
    ]
  in
  Alcotest.(check bool) "linearizable history" true (lin (L.check fine));
  Alcotest.(check bool) "is also SC" true (lin (L.check_sequentially_consistent fine))

(* ---- brute-force cross-validation ----
   A reference checker that simply enumerates every permutation of the
   history and tests (a) legality by replay and (b) the precedence partial
   order directly.  The memoized Wing–Gong search must agree on random
   small histories, including non-linearizable ones. *)

let reference_check (entries : L.entry list) =
  let indexed = List.mapi (fun i e -> (i, e)) entries in
  let precedes (ia, a) (ib, b) =
    if a.L.pid = b.L.pid then ia < ib else a.L.response < b.L.invoke
  in
  let respects perm =
    let rec go = function
      | [] -> true
      | x :: rest -> List.for_all (fun y -> not (precedes y x)) rest && go rest
    in
    go perm
  in
  let legal perm =
    List.fold_left
      (fun acc (_, (e : L.entry)) ->
        match acc with
        | None -> None
        | Some s ->
            let s', r = Spec.Register.apply s e.op in
            if Spec.Register.equal_result r e.result then Some s' else None)
      (Some Spec.Register.initial) perm
    <> None
  in
  List.exists
    (fun perm -> respects perm && legal perm)
    (Prelude.Combinatorics.permutations indexed)

(* Random histories: 3 processes, sequential per process, arbitrary
   (possibly wrong) results — roughly half the generated histories are
   non-linearizable. *)
let random_history rng =
  let entries = ref [] in
  List.iter
    (fun pid ->
      let t = ref (Prelude.Rng.int rng 300) in
      for _ = 1 to 1 + Prelude.Rng.int rng 2 do
        let op =
          match Prelude.Rng.int rng 3 with
          | 0 -> Spec.Register.Write (Prelude.Rng.int rng 3)
          | 1 -> Spec.Register.Read
          | _ -> Spec.Register.Rmw (Prelude.Rng.int rng 3)
        in
        let result =
          match op with
          | Spec.Register.Write _ -> Spec.Register.Ack
          | _ -> Spec.Register.Value (Prelude.Rng.int rng 4)
        in
        let invoke = !t in
        let response = invoke + 1 + Prelude.Rng.int rng 400 in
        t := response + Prelude.Rng.int rng 200;
        entries := { L.pid; op; result; invoke; response } :: !entries
      done)
    [ 0; 1; 2 ];
  List.rev !entries

let checker_matches_reference =
  QCheck.Test.make ~name:"Wing–Gong agrees with brute-force enumeration" ~count:300
    QCheck.small_int (fun seed ->
      let rng = Prelude.Rng.make (seed + 42) in
      let history = random_history rng in
      lin (L.check history) = reference_check history)

let () =
  Alcotest.run "linearize"
    [
      ( "verdicts",
        [
          Alcotest.test_case "empty & sequential" `Quick test_empty_and_sequential;
          Alcotest.test_case "stale read rejected" `Quick test_stale_read_rejected;
          Alcotest.test_case "concurrent flexibility" `Quick test_concurrent_flexibility;
          Alcotest.test_case "double-first rmw rejected" `Quick test_both_rmw_zero_rejected;
          Alcotest.test_case "duplicate dequeue rejected" `Quick test_duplicate_dequeue_rejected;
        ] );
      ( "precedence",
        [
          Alcotest.test_case "program order" `Quick test_program_order_enforced;
          Alcotest.test_case "cross-process touch" `Quick test_cross_process_touching_concurrent;
        ] );
      ( "witness",
        Alcotest.test_case "validity" `Quick test_witness_is_valid
        :: Alcotest.test_case "62-op limit" `Quick test_too_many_ops
        :: Alcotest.test_case "of_trace" `Quick test_of_trace
        :: List.map QCheck_alcotest.to_alcotest [ witness_validity_prop ] );
      ( "sequential-consistency",
        [ Alcotest.test_case "separation" `Quick test_sequential_consistency ] );
      ( "cross-validation",
        List.map QCheck_alcotest.to_alcotest [ checker_matches_reference ] );
    ]
