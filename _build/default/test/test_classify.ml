(* Tests for the Chapter II classification checkers.  Every claim the paper
   makes about a concrete operation type is checked against the executable
   definitions — including the separating example (UpdateNext is immediately
   non-self-commuting but NOT strongly so, Chapter II.B) and the
   write-is-last-but-not-any-permuting distinction (Chapter II.C). *)

module C_reg = Classify.Checkers.Make (Spec.Register)
module C_q = Classify.Checkers.Make (Spec.Fifo_queue)
module C_st = Classify.Checkers.Make (Spec.Lifo_stack)
module C_set = Classify.Checkers.Make (Spec.Int_set)
module C_tree = Classify.Checkers.Make (Spec.Rooted_tree)
module C_arr = Classify.Checkers.Make (Spec.Update_array)
module C_log = Classify.Checkers.Make (Spec.Append_log)
module C_kv = Classify.Checkers.Make (Spec.Kv_map)
module C_pq = Classify.Checkers.Make (Spec.Priority_queue)

let some what = Alcotest.(check bool) what true
let none what = Alcotest.(check bool) what false

(* ---- register ---- *)

let test_register_rmw () =
  some "rmw imm non-self-commuting" (C_reg.immediately_non_self_commuting "rmw" <> None);
  some "rmw STRONGLY imm non-self-commuting"
    (C_reg.strongly_immediately_non_self_commuting "rmw" <> None);
  some "rmw is mutator" (C_reg.is_mutator "rmw" <> None);
  some "rmw is accessor" (C_reg.is_accessor "rmw" <> None);
  none "rmw not pure mutator" (C_reg.is_pure_mutator "rmw");
  none "rmw not pure accessor" (C_reg.is_pure_accessor "rmw")

let test_register_write () =
  some "write pure mutator" (C_reg.is_pure_mutator "write");
  some "write eventually non-self-commuting"
    (C_reg.eventually_non_self_commuting "write" <> None);
  (* The write example of Chapter I.C: overwrites the whole state. *)
  some "write is an overwriter" (C_reg.is_overwriter "write");
  none "write has no non-overwriter witness" (C_reg.is_non_overwriter "write" <> None);
  (* write commutes immediately with itself (no return values to clash) *)
  some "write immediately self-commuting" (C_reg.immediately_self_commuting "write");
  (* Chapter II.C: write is last-permuting but NOT any-permuting. *)
  some "write eventually non-self-LAST-permuting (k=3)"
    (C_reg.eventually_non_self_last_permuting ~k:3 "write" <> None);
  none "write NOT eventually non-self-ANY-permuting (k=3)"
    (C_reg.eventually_non_self_any_permuting ~k:3 "write" <> None)

let test_register_read () =
  some "read pure accessor" (C_reg.is_pure_accessor "read");
  some "read/write immediately non-commuting"
    (C_reg.immediately_non_commuting "read" "write" <> None);
  some "read immediately self-commuting" (C_reg.immediately_self_commuting "read");
  some "read eventually self-commuting" (C_reg.eventually_self_commuting "read")

let test_register_add () =
  (* increment: the Chapter II.D example of a commuting non-overwriter *)
  some "add pure mutator" (C_reg.is_pure_mutator "add");
  some "add eventually self-commuting" (C_reg.eventually_self_commuting "add");
  some "add is a NON-overwriter" (C_reg.is_non_overwriter "add" <> None);
  none "add not an overwriter" (C_reg.is_overwriter "add")

(* ---- the separating example: UpdateNext ---- *)

let test_update_next_separation () =
  some "update_next IS immediately non-self-commuting"
    (C_arr.immediately_non_self_commuting "update_next" <> None);
  none "update_next is NOT strongly immediately non-self-commuting"
    (C_arr.strongly_immediately_non_self_commuting "update_next" <> None)

(* ---- queue ---- *)

let test_queue () =
  some "dequeue strongly imm non-self-commuting"
    (C_q.strongly_immediately_non_self_commuting "dequeue" <> None);
  some "enqueue pure mutator" (C_q.is_pure_mutator "enqueue");
  some "peek pure accessor" (C_q.is_pure_accessor "peek");
  some "enqueue non-overwriter" (C_q.is_non_overwriter "enqueue" <> None);
  some "enqueue/peek immediately non-commuting"
    (C_q.immediately_non_commuting "enqueue" "peek" <> None);
  some "enqueue any-permuting (k=3)"
    (C_q.eventually_non_self_any_permuting ~k:3 "enqueue" <> None);
  some "enqueue last-permuting (k=3)"
    (C_q.eventually_non_self_last_permuting ~k:3 "enqueue" <> None)

(* ---- stack ---- *)

let test_stack () =
  some "pop strongly imm non-self-commuting"
    (C_st.strongly_immediately_non_self_commuting "pop" <> None);
  some "push pure mutator" (C_st.is_pure_mutator "push");
  some "push non-overwriter" (C_st.is_non_overwriter "push" <> None);
  some "push any-permuting (k=3)"
    (C_st.eventually_non_self_any_permuting ~k:3 "push" <> None)

(* ---- set: eventually self-commuting mutators (Chapter II.C) ---- *)

let test_set () =
  some "insert pure mutator" (C_set.is_pure_mutator "insert");
  some "insert eventually self-commuting" (C_set.eventually_self_commuting "insert");
  some "delete eventually self-commuting" (C_set.eventually_self_commuting "delete");
  some "contains pure accessor" (C_set.is_pure_accessor "contains");
  some "insert/contains immediately non-commuting"
    (C_set.immediately_non_commuting "insert" "contains" <> None)

(* ---- tree (Chapter VI.C: no operation is both mutator and accessor) ---- *)

let test_tree () =
  some "insert pure mutator" (C_tree.is_pure_mutator "insert");
  some "delete pure mutator" (C_tree.is_pure_mutator "delete");
  some "search pure accessor" (C_tree.is_pure_accessor "search");
  some "depth pure accessor" (C_tree.is_pure_accessor "depth");
  some "insert non-overwriter" (C_tree.is_non_overwriter "insert" <> None)

(* ---- log and kv ---- *)

let test_log () =
  some "append any-permuting (k=3)"
    (C_log.eventually_non_self_any_permuting ~k:3 "append" <> None);
  some "append pure mutator" (C_log.is_pure_mutator "append")

let test_kv () =
  some "swap strongly imm non-self-commuting"
    (C_kv.strongly_immediately_non_self_commuting "swap" <> None);
  some "put pure mutator" (C_kv.is_pure_mutator "put");
  some "get pure accessor" (C_kv.is_pure_accessor "get")

(* ---- priority queue: commuting inserts, strongly-INSC extraction ---- *)

let test_priority_queue () =
  some "extract_min strongly imm non-self-commuting"
    (C_pq.strongly_immediately_non_self_commuting "extract_min" <> None);
  some "insert pure mutator" (C_pq.is_pure_mutator "insert");
  (* unlike write/push/enqueue, pq-inserts of distinct values commute *)
  some "insert eventually self-commuting" (C_pq.eventually_self_commuting "insert");
  none "insert not last-permuting even at k=2"
    (C_pq.eventually_non_self_last_permuting ~k:2 "insert" <> None);
  some "min pure accessor" (C_pq.is_pure_accessor "min");
  some "insert/min immediately non-commuting"
    (C_pq.immediately_non_commuting "insert" "min" <> None)

(* ---- commutativity graphs (Kosa's extension, §I.B) ---- *)

module G_reg = Classify.Commutativity_graph.Build (Spec.Register)
module G_set = Classify.Commutativity_graph.Build (Spec.Int_set)

let test_commutativity_graph () =
  let g = G_reg.build () in
  Alcotest.(check int) "register has 4 nodes" 4 (List.length g.nodes);
  let edge a b =
    List.exists
      (fun (e : Classify.Commutativity_graph.edge) ->
        (e.a = a && e.b = b) || (e.a = b && e.b = a))
      g.edges
  in
  Alcotest.(check bool) "read–write edge" true (edge "read" "write");
  Alcotest.(check bool) "write–rmw edge" true (edge "write" "rmw");
  Alcotest.(check bool) "write–add commute (no edge)" false (edge "write" "add");
  let rmw = List.find (fun (n : Classify.Commutativity_graph.node) -> n.op_ty = "rmw") g.nodes in
  Alcotest.(check bool) "rmw self-loop" true rmw.strongly_insc;
  (* set: insert/delete of the same element do not commute with contains *)
  let gs = G_set.build () in
  Alcotest.(check bool) "set graph nonempty" true (gs.edges <> []);
  (* DOT output is well-formed enough to contain every node *)
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  let dot = Classify.Commutativity_graph.to_dot g in
  List.iter
    (fun (n : Classify.Commutativity_graph.node) ->
      Alcotest.(check bool) ("dot mentions " ^ n.op_ty) true (contains dot n.op_ty))
    g.nodes

(* ---- the permutation verdict machinery directly ---- *)

let test_permuting_at () =
  let open Spec.Register in
  let instances =
    List.map
      (fun v -> Spec.Data_type.Instance.make (Write v) Ack)
      [ 1; 2; 3 ]
  in
  let last = C_reg.non_self_last_permuting_at ~prefix:[] ~instances in
  Alcotest.(check bool) "3 writes: last-permuting holds" true last.holds;
  Alcotest.(check int) "all 6 permutations legal" 6 (List.length last.legal_permutations);
  let any = C_reg.non_self_any_permuting_at ~prefix:[] ~instances in
  Alcotest.(check bool) "3 writes: any-permuting fails" false any.holds

let test_summaries () =
  let s = C_reg.summarize "rmw" in
  Alcotest.(check bool) "summary consistent" true
    (s.mutator && s.accessor && s.strongly_imm_non_self_commuting
   && (not s.pure_mutator) && not s.pure_accessor);
  let s = C_reg.summarize "read" in
  Alcotest.(check bool) "read summary" true
    (s.pure_accessor && (not s.mutator) && not s.ev_non_self_commuting)

let () =
  Alcotest.run "classify"
    [
      ( "register",
        [
          Alcotest.test_case "rmw" `Quick test_register_rmw;
          Alcotest.test_case "write" `Quick test_register_write;
          Alcotest.test_case "read" `Quick test_register_read;
          Alcotest.test_case "add" `Quick test_register_add;
        ] );
      ( "update-next",
        [ Alcotest.test_case "INSC but not strongly" `Quick test_update_next_separation ] );
      ("queue", [ Alcotest.test_case "ops" `Quick test_queue ]);
      ("stack", [ Alcotest.test_case "ops" `Quick test_stack ]);
      ("set", [ Alcotest.test_case "ops" `Quick test_set ]);
      ("tree", [ Alcotest.test_case "ops" `Quick test_tree ]);
      ("log", [ Alcotest.test_case "ops" `Quick test_log ]);
      ("priority-queue", [ Alcotest.test_case "ops" `Quick test_priority_queue ]);
      ("graph", [ Alcotest.test_case "commutativity graph" `Quick test_commutativity_graph ]);
      ("kv", [ Alcotest.test_case "ops" `Quick test_kv ]);
      ( "machinery",
        [
          Alcotest.test_case "permuting verdicts" `Quick test_permuting_at;
          Alcotest.test_case "summaries" `Quick test_summaries;
        ] );
    ]
