examples/quickstart.mli:
