examples/clock_sync_demo.ml: Array Clocksync Core Format Linearize List Prelude Sim Spec String
