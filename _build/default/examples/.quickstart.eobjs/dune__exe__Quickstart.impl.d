examples/quickstart.ml: Core Format Linearize List Prelude Sim Spec
