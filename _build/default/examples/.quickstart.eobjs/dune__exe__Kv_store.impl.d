examples/kv_store.ml: Core Format Linearize List Prelude Sim Spec
