examples/clock_sync_demo.mli:
