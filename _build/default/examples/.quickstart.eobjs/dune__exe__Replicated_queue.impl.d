examples/replicated_queue.ml: Core Format Int Linearize List Prelude Sim Spec String
