examples/lossy_network.ml: Core Format Linearize List Sim Spec
