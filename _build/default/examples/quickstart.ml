(* Quickstart: a linearizable shared register over a 3-process partially
   synchronous system, using the paper's Algorithm 1.

     dune exec examples/quickstart.exe

   System bounds: message delays in [d − u, d] = [700, 1000] ticks, clock
   skew ≤ ε = 200.  With the trade-off parameter X = 0, writes respond in
   ε + X = 200 ticks and reads in d + ε − X = 1200 ticks — both well under
   the folklore 2d = 2000 of a centralized implementation. *)

module Alg = Core.Algorithm1.Make (Spec.Register)
module Engine = Sim.Engine.Make (Alg)
module Lin = Linearize.Make (Spec.Register)

let () =
  let n = 3 and d = 1000 and u = 300 and eps = 200 in
  let params = Core.Params.make ~n ~d ~u ~eps ~x:0 () in

  (* The application layer: p0 writes, p1 reads concurrently, p2 does a
     read-modify-write. *)
  let script =
    [
      Sim.Workload.at 0 (Spec.Register.Write 42) 0;
      Sim.Workload.at 1 Spec.Register.Read 100;
      Sim.Workload.at 2 (Spec.Register.Rmw 7) 1500;
      Sim.Workload.at 1 Spec.Register.Read 3500;
    ]
  in

  (* The message-passing layer: an adversary picks delays in [d−u, d] and
     clock offsets within ε. *)
  let rng = Prelude.Rng.make 2024 in
  let outcome =
    Engine.run ~config:params ~n ~offsets:[| 0; 150; -50 |]
      ~delay:(Sim.Delay.random rng ~d ~u)
      ~check_delays:(d, u) script
  in

  Format.printf "History:@.";
  List.iter
    (fun r ->
      Format.printf "  %a@."
        (Sim.Trace.pp_op_record Spec.Register.pp_op Spec.Register.pp_result)
        r)
    outcome.trace.ops;
  List.iter (Format.printf "  %s@.")
    (Sim.Diagram.render ~pp_op:Spec.Register.pp_op
       ~pp_result:Spec.Register.pp_result outcome.trace);

  (match Lin.check_trace outcome.trace with
  | Lin.Linearizable witness ->
      Format.printf "Linearizable; witness order:@.";
      List.iter (fun e -> Format.printf "  %a@." Lin.pp_entry e) witness
  | Lin.Not_linearizable why -> Format.printf "VIOLATION: %s@." why);

  Format.printf "Latencies: write=%d (= ε+X), reads=%d (= d+ε−X), rmw≤%d (≤ d+ε)@."
    (Sim.Trace.max_latency ~f:(fun r -> Spec.Register.classify r.op = Spec.Data_type.Pure_mutator) outcome.trace)
    (Sim.Trace.max_latency ~f:(fun r -> Spec.Register.classify r.op = Spec.Data_type.Pure_accessor) outcome.trace)
    (Sim.Trace.max_latency ~f:(fun r -> Spec.Register.classify r.op = Spec.Data_type.Other) outcome.trace)
