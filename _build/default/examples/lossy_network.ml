(* Running a shared object over a *lossy* network.

     dune exec examples/lossy_network.exe

   The paper's model assumes reliable links.  This example shows what
   happens without them — a single dropped broadcast makes a reader miss a
   write — and how the [Sim.Reliable] retransmission layer restores the
   model's guarantees at a quantifiable latency cost: with retransmit
   period r and at most L losses per link, Algorithm 1 configured for
   d_eff = d + L·r behaves exactly as the paper promises. *)

module Plain = Core.Algorithm1.Make (Spec.Kv_map)
module Plain_engine = Sim.Engine.Make (Plain)
module Wrapped = Sim.Reliable.Make (Plain)
module Wrapped_engine = Sim.Engine.Make (Wrapped)
module Lin = Linearize.Make (Spec.Kv_map)

let n = 3
let d = 1000
let u = 400
let eps = 200
let r = 250 (* retransmit period *)
let losses = 2 (* adversary budget per link *)

let script =
  [
    Sim.Workload.at 0 (Spec.Kv_map.Put (1, 42)) 0;
    Sim.Workload.at 1 (Spec.Kv_map.Get 1) 6_000;
    Sim.Workload.at 2 (Spec.Kv_map.Swap (1, 7)) 6_200;
  ]

let offsets = [| 0; eps; eps / 2 |]

let verdict trace =
  match Lin.check_trace trace with
  | Lin.Linearizable _ -> "linearizable ✓"
  | Lin.Not_linearizable _ -> "VIOLATION ✗"

let () =
  (* The bare protocol loses p0's broadcast to p1. *)
  let params = Core.Params.make ~n ~d ~u ~eps ~x:0 () in
  let delay = Sim.Delay.drop_first (Sim.Delay.constant (d - u)) ~from:0 ~to_:1 ~count:1 in
  let bare = Plain_engine.run ~config:params ~n ~offsets ~delay script in
  Format.printf "bare Algorithm 1, one lost message:@.";
  List.iter
    (fun rec_ ->
      Format.printf "  %a@." (Sim.Trace.pp_op_record Spec.Kv_map.pp_op Spec.Kv_map.pp_result) rec_)
    bare.trace.ops;
  Format.printf "  → %s (p1's get missed the put)@.@." (verdict bare.trace);

  (* The wrapped protocol retransmits through the same loss. *)
  let d_eff = d + (losses * r) and u_eff = u + (losses * r) in
  let eff = Core.Params.make ~n ~d:d_eff ~u:u_eff ~eps ~x:0 () in
  let cfg : Wrapped.config = { inner = eff; retransmit_every = r; max_retries = 8 } in
  let delay =
    Sim.Delay.drop_first (Sim.Delay.constant (d - u)) ~from:0 ~to_:1 ~count:losses
  in
  let out = Wrapped_engine.run ~config:cfg ~n ~offsets ~delay script in
  Format.printf "reliable(Algorithm 1) with r=%d, L=%d ⇒ d_eff=%d, u_eff=%d:@." r losses
    d_eff u_eff;
  List.iter
    (fun rec_ ->
      Format.printf "  %a@." (Sim.Trace.pp_op_record Spec.Kv_map.pp_op Spec.Kv_map.pp_result) rec_)
    out.trace.ops;
  Format.printf "  → %s; %d frames carried %d logical messages@." (verdict out.trace)
    (List.length out.trace.messages)
    (List.length bare.trace.messages)
