(* Producer/consumer over a linearizable replicated FIFO queue.

     dune exec examples/replicated_queue.exe

   Two producers enqueue jobs while two consumers dequeue them, all through
   Algorithm 1 on a 4-process system.  Because enqueue is a pure mutator it
   responds in ε + X ticks — producers run far ahead of the d+ε
   dissemination — yet the consumers' dequeues (OOPs, executed in global
   timestamp order) see a single consistent FIFO: no job is lost,
   duplicated, or reordered against the linearization.  The example checks
   all of that at the end. *)

module Alg = Core.Algorithm1.Make (Spec.Fifo_queue)
module Engine = Sim.Engine.Make (Alg)
module Lin = Linearize.Make (Spec.Fifo_queue)

let () =
  let n = 4 and d = 1000 and u = 400 in
  let eps = Core.Params.optimal_eps ~n ~u in
  let params = Core.Params.make ~n ~d ~u ~eps ~x:0 () in

  (* Producers p0, p1 enqueue 4 jobs each; consumers p2, p3 dequeue 5 times
     each (some will find the queue empty). *)
  let producer pid base start =
    Sim.Workload.seq pid start
      (List.init 4 (fun i -> Spec.Fifo_queue.Enqueue (base + i)))
  in
  let consumer pid start =
    Sim.Workload.seq pid start (List.init 5 (fun _ -> Spec.Fifo_queue.Dequeue))
  in
  let script =
    producer 0 100 0 @ producer 1 200 250 @ consumer 2 500 @ consumer 3 900
  in
  let rng = Prelude.Rng.make 7 in
  let outcome =
    Engine.run ~config:params ~n ~offsets:[| 0; eps; eps / 2; 0 |]
      ~delay:(Sim.Delay.random rng ~d ~u) ~check_delays:(d, u) script
  in

  let dequeued =
    List.filter_map
      (fun (r : (Spec.Fifo_queue.op, Spec.Fifo_queue.result) Sim.Trace.op_record) ->
        match (r.op, r.result) with
        | Spec.Fifo_queue.Dequeue, Some (Spec.Fifo_queue.Value v) -> Some v
        | _ -> None)
      outcome.trace.ops
  in
  Format.printf "Jobs consumed (in response order): %s@."
    (String.concat " " (List.map string_of_int dequeued));

  let produced =
    List.filter_map
      (fun (r : (Spec.Fifo_queue.op, _) Sim.Trace.op_record) ->
        match r.op with Spec.Fifo_queue.Enqueue v -> Some v | _ -> None)
      outcome.trace.ops
  in
  let missing = List.filter (fun v -> not (List.mem v dequeued)) produced in
  let duplicated =
    List.filter (fun v -> List.length (List.filter (Int.equal v) dequeued) > 1) dequeued
  in
  Format.printf "produced %d jobs, consumed %d; lost: %s; duplicated: %s@."
    (List.length produced) (List.length dequeued)
    (if missing = [] then "none" else String.concat "," (List.map string_of_int missing))
    (if duplicated = [] then "none" else String.concat "," (List.map string_of_int duplicated));

  (match Lin.check_trace outcome.trace with
  | Lin.Linearizable _ -> Format.printf "history is linearizable ✓@."
  | Lin.Not_linearizable why -> Format.printf "VIOLATION: %s@." why);

  Format.printf "worst enqueue latency %d (= ε+X = %d); worst dequeue latency %d (≤ d+ε = %d)@."
    (Sim.Trace.max_latency
       ~f:(fun r -> match r.op with Spec.Fifo_queue.Enqueue _ -> true | _ -> false)
       outcome.trace)
    (eps + 0)
    (Sim.Trace.max_latency
       ~f:(fun r -> r.op = Spec.Fifo_queue.Dequeue)
       outcome.trace)
    (d + eps)
