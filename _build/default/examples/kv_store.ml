(* A replicated key-value store on an arbitrary data type, comparing
   Algorithm 1 against the folklore 2d centralized implementation.

     dune exec examples/kv_store.exe

   The same workload — puts, gets, deletes and atomic swaps from 4 clients —
   runs under both implementations.  Algorithm 1 answers puts in ε + X and
   everything else within d + ε; the centralized baseline pays 2d for every
   operation.  Both histories are checked linearizable. *)

module D = Spec.Kv_map
module Alg = Core.Algorithm1.Make (D)
module Alg_engine = Sim.Engine.Make (Alg)
module Central = Core.Centralized.Make (D)
module Central_engine = Sim.Engine.Make (Central)
module Lin = Linearize.Make (D)

let n = 5
let d = 1200
let u = 400
let eps = Core.Params.optimal_eps ~n ~u
let params = Core.Params.make ~n ~d ~u ~eps ~x:0 ()

(* Clients p1..p4 (p0 is the centralized coordinator in the baseline, so it
   takes no client operations — a fair comparison). *)
let script =
  let open D in
  List.concat
    [
      Sim.Workload.seq 1 0 [ Put (1, 10); Get 1; Swap (1, 11) ];
      Sim.Workload.seq 2 200 [ Put (2, 20); Get 2; Del 2 ];
      Sim.Workload.seq 3 400 [ Get 1; Put (3, 30); Swap (3, 31) ];
      Sim.Workload.seq 4 600 [ Put (1, 12); Get 3; Get 1 ];
    ]

let class_latency trace kind =
  Sim.Trace.max_latency ~f:(fun r -> D.classify r.op = kind) trace

let report name (trace : (D.op, D.result, 'm) Sim.Trace.t) =
  let lin =
    match Lin.check_trace trace with
    | Lin.Linearizable _ -> "linearizable ✓"
    | Lin.Not_linearizable _ -> "VIOLATION ✗"
  in
  Format.printf "%-12s puts %4d | gets %4d | swaps %4d  (%s)@." name
    (class_latency trace Spec.Data_type.Pure_mutator)
    (class_latency trace Spec.Data_type.Pure_accessor)
    (class_latency trace Spec.Data_type.Other)
    lin

let () =
  let rng = Prelude.Rng.make 41 in
  let offsets = [| 0; eps; 0; eps / 2; eps |] in
  let a =
    Alg_engine.run ~config:params ~n ~offsets
      ~delay:(Sim.Delay.random rng ~d ~u) ~check_delays:(d, u) script
  in
  let c =
    Central_engine.run ~config:params ~n ~offsets
      ~delay:(Sim.Delay.random (Prelude.Rng.make 42) ~d ~u) ~check_delays:(d, u)
      script
  in
  Format.printf "KV store, %d client ops, d=%d u=%d ε=%d X=0 (worst-case latencies in ticks)@."
    (List.length script) d u eps;
  report "algorithm 1" a.trace;
  report "centralized" c.trace;
  Format.printf
    "@.puts are %dx faster under Algorithm 1; reads/swaps beat 2d by %d ticks.@."
    (class_latency c.trace Spec.Data_type.Pure_mutator
    / max 1 (class_latency a.trace Spec.Data_type.Pure_mutator))
    ((2 * d) - (d + eps))
