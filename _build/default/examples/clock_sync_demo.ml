(* Bootstrapping the ε that Algorithm 1 assumes: run Lundelius–Lynch clock
   synchronization over badly skewed clocks, then run Algorithm 1 on the
   synchronized clocks with ε = (1 − 1/n)·u, the optimal bound.

     dune exec examples/clock_sync_demo.exe *)

module Alg = Core.Algorithm1.Make (Spec.Register)
module Engine = Sim.Engine.Make (Alg)
module Lin = Linearize.Make (Spec.Register)

let () =
  let n = 4 and d = 1000 and u = 400 in
  let raw_offsets = [| 0; 3_700; -2_100; 950 |] in
  Format.printf "raw clock offsets: [%s], skew %d@."
    (String.concat ";" (Array.to_list (Array.map string_of_int raw_offsets)))
    (Clocksync.Lundelius_lynch.skew raw_offsets);

  (* One synchronization round. *)
  let adjustments =
    Clocksync.Lundelius_lynch.synchronize ~n ~d ~u ~offsets:raw_offsets
      ~delay:(Sim.Delay.random (Prelude.Rng.make 5) ~d ~u)
  in
  let synced = Array.init n (fun i -> raw_offsets.(i) + adjustments.(i)) in
  let achieved = Clocksync.Lundelius_lynch.skew synced in
  let eps = Clocksync.Lundelius_lynch.optimal_skew ~n ~u in
  Format.printf "after Lundelius–Lynch: [%s], skew %d ≤ (1−1/n)u = %d@."
    (String.concat ";" (Array.to_list (Array.map string_of_int synced)))
    achieved eps;

  (* Now run the shared object on the synchronized clocks. *)
  let params = Core.Params.make ~n ~d ~u ~eps:(max achieved eps) ~x:0 () in
  let script =
    [
      Sim.Workload.at 0 (Spec.Register.Write 1) 0;
      Sim.Workload.at 1 (Spec.Register.Rmw 2) 300;
      Sim.Workload.at 2 Spec.Register.Read 2_000;
      Sim.Workload.at 3 (Spec.Register.Write 3) 2_100;
      Sim.Workload.at 2 Spec.Register.Read 4_000;
    ]
  in
  let outcome =
    Engine.run ~config:params ~n ~offsets:synced
      ~delay:(Sim.Delay.random (Prelude.Rng.make 6) ~d ~u) ~check_delays:(d, u)
      script
  in
  List.iter
    (fun r ->
      Format.printf "  %a@."
        (Sim.Trace.pp_op_record Spec.Register.pp_op Spec.Register.pp_result)
        r)
    outcome.trace.ops;
  match Lin.check_trace outcome.trace with
  | Lin.Linearizable _ ->
      Format.printf "linearizable on synchronized clocks ✓@."
  | Lin.Not_linearizable why -> Format.printf "VIOLATION: %s@." why
