(** Deterministic splittable PRNG (splitmix64).

    Every randomized component of the simulator (delay policies, workload
    generators, adversarial schedule search) draws from one of these, so any
    run is reproducible from its integer seed. *)

type t

val make : int -> t
(** Create a generator from a seed. *)

val split : t -> t * t
(** Two independent generators derived from one. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Advances the generator state. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]]. *)

val bool : t -> bool
val float : t -> float -> float
val pick : t -> 'a list -> 'a
val shuffle : t -> 'a list -> 'a list
