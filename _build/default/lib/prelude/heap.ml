module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) = struct
  type elt = Ord.t

  (* Leftist heap: the rank (length of the rightmost spine) of the left child
     is always at least that of the right child, giving O(log n) merge. *)
  type t = Leaf | Node of { rank : int; v : elt; l : t; r : t; n : int }

  let empty = Leaf
  let is_empty = function Leaf -> true | Node _ -> false
  let rank = function Leaf -> 0 | Node { rank; _ } -> rank
  let size = function Leaf -> 0 | Node { n; _ } -> n

  let node v l r =
    let n = 1 + size l + size r in
    if rank l >= rank r then Node { rank = rank r + 1; v; l; r; n }
    else Node { rank = rank l + 1; v; l = r; r = l; n }

  let rec merge a b =
    match (a, b) with
    | Leaf, h | h, Leaf -> h
    | Node na, Node nb ->
        if Ord.compare na.v nb.v <= 0 then node na.v na.l (merge na.r b)
        else node nb.v nb.l (merge a nb.r)

  let insert x h = merge (node x Leaf Leaf) h
  let find_min = function Leaf -> None | Node { v; _ } -> Some v

  let delete_min = function
    | Leaf -> None
    | Node { v; l; r; _ } -> Some (v, merge l r)

  let pop_while p h =
    let rec go acc h =
      match h with
      | Leaf -> (List.rev acc, h)
      | Node { v; l; r; _ } ->
          if p v then go (v :: acc) (merge l r) else (List.rev acc, h)
    in
    go [] h

  let of_list xs = List.fold_left (fun h x -> insert x h) empty xs

  let to_sorted_list h =
    let rec go acc h =
      match delete_min h with
      | None -> List.rev acc
      | Some (x, h') -> go (x :: acc) h'
    in
    go [] h

  let rec fold f acc = function
    | Leaf -> acc
    | Node { v; l; r; _ } -> fold f (fold f (f acc v) l) r
end
