type t = int

let zero = 0

(* Large enough to dominate any schedule, small enough that adding two of
   them never overflows a 63-bit integer. *)
let infinity = max_int / 4

let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let ( * ) = Stdlib.( * )
let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let equal = Int.equal
let ( < ) (a : int) b = Stdlib.( < ) a b
let ( <= ) (a : int) b = Stdlib.( <= ) a b
let ( > ) (a : int) b = Stdlib.( > ) a b
let ( >= ) (a : int) b = Stdlib.( >= ) a b
let of_int x = x
let to_int x = x
let pp fmt t = Format.fprintf fmt "%dt" t
let to_string t = string_of_int t ^ "t"
