lib/prelude/ticks.ml: Format Int Stdlib
