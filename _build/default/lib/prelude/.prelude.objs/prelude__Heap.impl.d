lib/prelude/heap.ml: List
