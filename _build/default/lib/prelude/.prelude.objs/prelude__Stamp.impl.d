lib/prelude/stamp.ml: Format Int Ticks
