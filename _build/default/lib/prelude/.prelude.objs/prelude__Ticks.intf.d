lib/prelude/ticks.mli: Format
