lib/prelude/heap.mli:
