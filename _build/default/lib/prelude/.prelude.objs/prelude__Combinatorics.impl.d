lib/prelude/combinatorics.ml: List
