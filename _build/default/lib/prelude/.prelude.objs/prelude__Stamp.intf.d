lib/prelude/stamp.mli: Format Ticks
