lib/prelude/rng.mli:
