lib/prelude/combinatorics.mli:
