type t = { time : Ticks.t; pid : int }

let make ~time ~pid = { time; pid }

let compare a b =
  match Ticks.compare a.time b.time with
  | 0 -> Int.compare a.pid b.pid
  | c -> c

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let pp fmt { time; pid } = Format.fprintf fmt "⟨%a,p%d⟩" Ticks.pp time pid
