let rec insert_everywhere x = function
  | [] -> [ [ x ] ]
  | y :: rest as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x rest)

let rec permutations = function
  | [] -> [ [] ]
  | x :: rest -> List.concat_map (insert_everywhere x) (permutations rest)

let rec combinations k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (combinations (k - 1) rest)
        @ combinations k rest

let ordered_pairs xs ys =
  List.concat_map (fun x -> List.map (fun y -> (x, y)) ys) xs
