(** Small enumeration helpers used by the classification checkers, which
    search bounded universes of operation sequences for witnesses of the
    paper's algebraic properties. *)

val permutations : 'a list -> 'a list list
(** All permutations.  Intended for short lists (the paper's [k] concurrent
    operations, k ≤ 6 in our experiments). *)

val combinations : int -> 'a list -> 'a list list
(** All subsets of size [k], order-preserving. *)

val ordered_pairs : 'a list -> 'b list -> ('a * 'b) list
(** Cartesian product. *)
