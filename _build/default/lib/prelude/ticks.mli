(** Integer simulated time.

    All times in the simulator are integer "ticks" (think microseconds).
    Using integers keeps the bound arithmetic of the paper exact: experiments
    choose [d], [u] and the clock-skew bound so that quantities such as
    [d / 3], [u / k] and [(1 - 1/n) * u] are themselves integers, so every
    comparison against a theoretical bound is free of rounding concerns. *)

type t = int

val zero : t

val infinity : t
(** A time later than any event the simulator will ever schedule. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : int -> t -> t

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val of_int : int -> t
val to_int : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
