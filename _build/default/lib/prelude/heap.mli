(** Persistent leftist min-heap.

    Used both by the simulator's event queue and by each replica's
    [To_Execute] priority queue in Algorithm 1 (keyed by operation
    timestamp). *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (Ord : ORDERED) : sig
  type elt = Ord.t
  type t

  val empty : t
  val is_empty : t -> bool
  val size : t -> int
  val insert : elt -> t -> t

  val find_min : t -> elt option
  (** Smallest element, without removing it. *)

  val delete_min : t -> (elt * t) option
  (** Smallest element and the heap without it. *)

  val pop_while : (elt -> bool) -> t -> elt list * t
  (** [pop_while p h] removes the minimal elements of [h] as long as they
      satisfy [p], returning them in ascending order. *)

  val of_list : elt list -> t
  val to_sorted_list : t -> elt list
  val fold : ('a -> elt -> 'a) -> 'a -> t -> 'a
end
