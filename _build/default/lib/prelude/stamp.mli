(** Operation timestamps: [⟨clock_time, process id⟩], ordered
    lexicographically.  This is exactly the timestamp format of Chapter V of
    the paper: the local clock time at invocation, tie-broken by the invoking
    process id, which makes every timestamp in the system unique (no process
    has two pending operations at once). *)

type t = { time : Ticks.t; pid : int }

val make : time:Ticks.t -> pid:int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val pp : Format.formatter -> t -> unit
