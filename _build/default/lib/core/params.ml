(** System and protocol parameters shared by every implementation.

    [d], [u], [eps] are the partially-synchronous system bounds; [x] is
    Algorithm 1's trade-off parameter X ∈ [0, d + ε − u] regulating pure
    accessor versus pure mutator response time (Chapter V.A.2).

    [timing] holds the four concrete waiting periods of the pseudocode.
    [standard] derives them exactly as the paper prescribes; the
    lower-bound experiments build deliberately *shortened* timings
    ([with_speedup], [faster_oop], …) to produce implementations that
    respond below the proven bounds — the adversary constructions of
    Chapter IV then exhibit their linearizability violations. *)

type timing = {
  add_wait : int;  (** timer before adding one's own mutator to To_Execute: d − u *)
  execute_wait : int;  (** hold time in To_Execute before executing: u + ε *)
  mutator_wait : int;  (** pure mutator response delay: ε + X *)
  accessor_wait : int;  (** pure accessor response delay: d + ε − X *)
  accessor_ts_back : int;  (** accessor timestamps pretend invocation X earlier *)
}

type t = { n : int; d : int; u : int; eps : int; x : int; timing : timing }

let standard_timing ~d ~u ~eps ~x =
  {
    add_wait = d - u;
    execute_wait = u + eps;
    mutator_wait = eps + x;
    accessor_wait = d + eps - x;
    accessor_ts_back = x;
  }

let make ~n ~d ~u ~eps ?(x = 0) () =
  if u < 0 || u > d then invalid_arg "Params.make: need 0 ≤ u ≤ d";
  if x < 0 || x > d + eps - u then
    invalid_arg "Params.make: need 0 ≤ X ≤ d + ε − u";
  { n; d; u; eps; x; timing = standard_timing ~d ~u ~eps ~x }

(** Optimal clock skew achievable by synchronization: (1 − 1/n)·u
    (Lundelius–Lynch).  [u] must be divisible by [n] for exactness. *)
let optimal_eps ~n ~u = u - (u / n)

(** The additive slack min{ε, u, d/3} appearing in Theorems C.1 and E.1. *)
let slack t = min t.eps (min t.u (t.d / 3))

(* -- deliberately too-fast variants (for the lower-bound adversaries) -- *)

(** Shrink the accessor/OOP waiting so that "other" operations respond in
    [oop_latency] instead of d + ε.  Used against Theorem C.1. *)
let faster_oop t ~oop_latency =
  let wait = max 0 (oop_latency - t.timing.execute_wait) in
  { t with timing = { t.timing with add_wait = wait } }

(** Make pure mutators respond after [latency] instead of ε + X.  Used
    against Theorem D.1. *)
let faster_mutator t ~latency =
  { t with timing = { t.timing with mutator_wait = latency } }

(** Make pure accessors respond after [latency] instead of d + ε − X.  Used
    against Theorem E.1 (together with [faster_mutator]). *)
let faster_accessor t ~latency =
  { t with timing = { t.timing with accessor_wait = latency } }

(* -- ablation knobs: remove one waiting period at a time to show each is
   load-bearing (see the [ablation] experiment) -- *)

(** Ablate the u + ε hold in [To_Execute]: operations execute the moment
    they are received/added.  Replicas then apply mutators in arrival
    order, which delay uncertainty and skew can decouple from timestamp
    order. *)
let without_hold t = { t with timing = { t.timing with execute_wait = 0 } }

(** Ablate the d − u self-delivery delay: the invoker adds its own
    operation to [To_Execute] immediately, racing ahead of remote
    operations with smaller timestamps. *)
let without_self_delay t = { t with timing = { t.timing with add_wait = 0 } }

(** Ablate the accessor's back-dated timestamp (keep its wait): a pure
    accessor may then order itself before a mutator that already responded
    to its caller. *)
let without_backdating t =
  { t with timing = { t.timing with accessor_ts_back = 0 } }

let pp fmt t =
  Format.fprintf fmt "n=%d d=%d u=%d ε=%d X=%d" t.n t.d t.u t.eps t.x
