(** Total-order-broadcast baseline (Chapter I.A.3's alternative): every
    operation — accessors included — is timestamped, broadcast and executed
    in timestamp order, responding only once the invoker's own copy executes
    it.  Equivalently, Algorithm 1 with every operation treated as an OOP.
    Every operation therefore costs up to d + ε, so the per-class speedups
    of Algorithm 1 (ε + X for mutators, d + ε − X for accessors) vanish.

    This is the *best case* for a TOB-based scheme in this model; the paper
    notes (citing Attiya–Welch) that a TOB built on point-to-point messages
    is no faster than the centralized scheme, so comparing against this
    idealized version only understates Algorithm 1's advantage. *)

open Spec

module Uniform (D : Data_type.S) = struct
  include D

  (* Treat every operation as "other": timestamp, broadcast, execute in
     order, respond on execution. *)
  let classify (_ : op) = Data_type.Other
end

module Make (D : Data_type.S) = struct
  include Algorithm1.Make (Uniform (D))

  let name = "total-order-broadcast"
end
