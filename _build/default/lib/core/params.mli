(** System and protocol parameters shared by every implementation.

    [d], [u], [eps] are the partially synchronous system bounds; [x] is
    Algorithm 1's trade-off parameter X ∈ [0, d + ε − u] regulating pure
    accessor versus pure mutator response time (Chapter V.A.2).  [timing]
    holds the four concrete waiting periods of the pseudocode — derived
    from the bounds by {!standard_timing}, or deliberately weakened by the
    [faster_*] / [without_*] constructors that the lower-bound and ablation
    experiments feed to the adversary. *)

type timing = {
  add_wait : int;  (** before adding one's own mutator to To_Execute: d − u *)
  execute_wait : int;  (** hold in To_Execute before executing: u + ε *)
  mutator_wait : int;  (** pure mutator response delay: ε + X *)
  accessor_wait : int;  (** pure accessor response delay: d + ε − X *)
  accessor_ts_back : int;  (** accessors timestamp X earlier than invoked *)
}

type t = { n : int; d : int; u : int; eps : int; x : int; timing : timing }

val standard_timing : d:int -> u:int -> eps:int -> x:int -> timing

val make : n:int -> d:int -> u:int -> eps:int -> ?x:int -> unit -> t
(** Standard parameters; raises [Invalid_argument] unless 0 ≤ u ≤ d and
    0 ≤ X ≤ d + ε − u.  [x] defaults to 0 (fastest mutators). *)

val optimal_eps : n:int -> u:int -> int
(** The optimal synchronized skew (1 − 1/n)·u (Lundelius–Lynch). *)

val slack : t -> int
(** m = min\{ε, u, d/3\}, the additive slack of Theorems C.1 and E.1. *)

(** {2 Deliberately too-fast variants (lower-bound adversaries)} *)

val faster_oop : t -> oop_latency:int -> t
(** OOPs respond in [oop_latency] instead of d + ε (vs Theorem C.1). *)

val faster_mutator : t -> latency:int -> t
(** Pure mutators respond in [latency] instead of ε + X (vs Theorem D.1). *)

val faster_accessor : t -> latency:int -> t
(** Pure accessors respond in [latency] instead of d + ε − X (vs Theorem
    E.1, combined with {!faster_mutator}). *)

(** {2 Ablation knobs (each wait shown load-bearing by the [ablation]
    experiment)} *)

val without_hold : t -> t
(** Execute queued operations immediately (drop the u + ε hold). *)

val without_self_delay : t -> t
(** Add one's own operations to To_Execute immediately (drop d − u). *)

val without_backdating : t -> t
(** Do not back-date accessor timestamps by X. *)

val pp : Format.formatter -> t -> unit
