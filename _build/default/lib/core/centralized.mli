(** The folklore centralized implementation (Chapter I.A.3): a designated
    coordinator (process 0) holds the object; every operation is shipped to
    it and the result shipped back — up to 2d per operation.  This is the
    baseline Algorithm 1's sub-2d latencies are measured against. *)

open Spec

module Make (D : Data_type.S) : sig
  val coordinator : int

  include
    Sim.Protocol.S
      with type config = Params.t
       and type op = D.op
       and type result = D.result
end
