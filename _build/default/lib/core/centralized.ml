(** The folklore centralized implementation (Chapter I.A.3): a designated
    coordinator (process 0) holds the object; every operation is shipped to
    it and the result shipped back, costing up to 2d per operation.
    Linearization point: the coordinator's application of the operation.
    This is the baseline Algorithm 1 is measured against. *)

open Spec

module Make (D : Data_type.S) = struct
  type config = Params.t

  let coordinator = 0

  type state = { pid : int; obj : D.state (* used by the coordinator only *) }
  type op = D.op
  type result = D.result
  type msg = Request of D.op | Reply of D.result
  type timer = unit

  let name = "centralized"
  let init (_ : config) ~n:_ ~pid = { pid; obj = D.initial }
  let equal_timer () () = true

  let on_invoke (_ : config) st ~clock:_ op =
    if st.pid = coordinator then
      let obj', r = D.apply st.obj op in
      ({ st with obj = obj' }, [ Sim.Action.Respond r ])
    else (st, [ Sim.Action.Send (coordinator, Request op) ])

  let on_message (_ : config) st ~clock:_ ~src msg =
    match msg with
    | Request op ->
        let obj', r = D.apply st.obj op in
        ({ st with obj = obj' }, [ Sim.Action.Send (src, Reply r) ])
    | Reply r -> (st, [ Sim.Action.Respond r ])

  let on_timer (_ : config) st ~clock:_ () = (st, [])
end
