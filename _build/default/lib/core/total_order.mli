(** Total-order-broadcast baseline (Chapter I.A.3's alternative): every
    operation — pure accessors and mutators included — is timestamped,
    broadcast and executed in timestamp order, responding only when the
    invoker's own copy executes it, i.e. Algorithm 1 with every operation
    treated as an OOP.  Every operation costs up to d + ε, so the per-class
    speedups of Algorithm 1 vanish.  This is the *best case* for a
    TOB-based scheme in this model. *)

open Spec

module Uniform (D : Data_type.S) : sig
  include Data_type.S with type state = D.state and type op = D.op and type result = D.result
end

module Make (D : Data_type.S) : sig
  include
    Sim.Protocol.S
      with type config = Params.t
       and type op = D.op
       and type result = D.result
end
