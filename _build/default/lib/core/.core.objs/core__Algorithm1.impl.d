lib/core/algorithm1.ml: Data_type List Params Prelude Sim Spec
