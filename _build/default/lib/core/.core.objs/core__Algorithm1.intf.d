lib/core/algorithm1.mli: Data_type Params Prelude Sim Spec
