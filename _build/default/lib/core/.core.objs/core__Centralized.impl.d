lib/core/centralized.ml: Data_type Params Sim Spec
