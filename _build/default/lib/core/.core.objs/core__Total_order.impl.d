lib/core/total_order.ml: Algorithm1 Data_type Spec
