lib/core/total_order.mli: Data_type Params Sim Spec
