lib/core/centralized.mli: Data_type Params Sim Spec
