(** LIFO stack (Chapter VI.B).  [Push] is an eventually
    non-self-any-permuting, non-overwriting pure mutator; [Pop] is strongly
    immediately non-self-commuting; [Peek] returns the top. *)

type state = int list
(** Stack contents, top first. *)

type op = Push of int | Pop | Peek
type result = Value of int | Empty | Ack

val name : string
val initial : state
val apply : state -> op -> state * result
val classify : op -> Data_type.kind
val equal_state : state -> state -> bool
val compare_state : state -> state -> int
val equal_result : result -> result -> bool
val equal_op : op -> op -> bool
val pp_state : Format.formatter -> state -> unit
val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> result -> unit
val op_type : op -> string
val op_types : string list
val sample_prefixes : op list list
val sample_ops : op list
