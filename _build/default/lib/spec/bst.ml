(** Unbalanced binary search tree.

    The tree data type whose operations satisfy *all* the hypotheses the
    thesis uses for Table IV: BST insertion is immediately self-commuting
    (inserts always succeed and return nothing) yet eventually
    non-self-commuting (the final shape depends on insertion order), a
    non-overwriter, and the node-resolved [Depth v] accessor can detect the
    order — exactly the assumptions A/B/C of Theorem E.1.  Contrast with
    {!Rooted_tree}, whose explicit-parent insert loses hypothesis A or C
    (commuting effective inserts); see EXPERIMENTS.md. *)

type tree = Leaf | Node of { v : int; l : tree; r : tree }
type state = tree
type op = Insert of int | Delete of int | Search of int | Depth of int
type result = Bool of bool | Level of int | Absent | Ack

let name = "bst"
let initial = Leaf

let rec insert v = function
  | Leaf -> Node { v; l = Leaf; r = Leaf }
  | Node n when v < n.v -> Node { n with l = insert v n.l }
  | Node n when v > n.v -> Node { n with r = insert v n.r }
  | t -> t

let rec min_value = function
  | Leaf -> None
  | Node { v; l = Leaf; _ } -> Some v
  | Node { l; _ } -> min_value l

let rec delete v = function
  | Leaf -> Leaf
  | Node n when v < n.v -> Node { n with l = delete v n.l }
  | Node n when v > n.v -> Node { n with r = delete v n.r }
  | Node { l; r = Leaf; _ } -> l
  | Node { l = Leaf; r; _ } -> r
  | Node { l; r; _ } -> (
      (* replace with in-order successor *)
      match min_value r with
      | Some s -> Node { v = s; l; r = delete s r }
      | None -> l)

let rec search v = function
  | Leaf -> false
  | Node n when v < n.v -> search v n.l
  | Node n when v > n.v -> search v n.r
  | Node _ -> true

let rec depth_of v = function
  | Leaf -> None
  | Node n when v < n.v -> Option.map (( + ) 1) (depth_of v n.l)
  | Node n when v > n.v -> Option.map (( + ) 1) (depth_of v n.r)
  | Node _ -> Some 0

let apply s = function
  | Insert v -> (insert v s, Ack)
  | Delete v -> (delete v s, Ack)
  | Search v -> (s, Bool (search v s))
  | Depth v -> (s, (match depth_of v s with Some d -> Level d | None -> Absent))

let classify = function
  | Insert _ | Delete _ -> Data_type.Pure_mutator
  | Search _ | Depth _ -> Data_type.Pure_accessor

let equal_state (a : state) b = a = b
let compare_state (a : state) b = compare a b
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b

let rec pp_state fmt = function
  | Leaf -> Format.pp_print_string fmt "·"
  | Node { v; l = Leaf; r = Leaf } -> Format.pp_print_int fmt v
  | Node { v; l; r } -> Format.fprintf fmt "(%a %d %a)" pp_state l v pp_state r

let pp_op fmt = function
  | Insert v -> Format.fprintf fmt "insert(%d)" v
  | Delete v -> Format.fprintf fmt "delete(%d)" v
  | Search v -> Format.fprintf fmt "search(%d)" v
  | Depth v -> Format.fprintf fmt "depth(%d)" v

let pp_result fmt = function
  | Bool b -> Format.pp_print_bool fmt b
  | Level d -> Format.pp_print_int fmt d
  | Absent -> Format.pp_print_string fmt "⊥"
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Search _ -> "search"
  | Depth _ -> "depth"

let op_types = [ "insert"; "delete"; "search"; "depth" ]

let sample_prefixes =
  [ []; [ Insert 4 ]; [ Insert 4; Insert 2 ]; [ Insert 4; Insert 6; Insert 5 ] ]

let sample_ops =
  [ Insert 3; Insert 5; Insert 6; Delete 4; Delete 5; Search 5; Search 3; Depth 5; Depth 6 ]
