(** The [UpdateNext] integer array of size 2 from Chapter II.B.

    [Update_next (i, b)] returns the [i]-th element (1-indexed) and updates
    the [(i+1)]-th element with [b]; if [i] addresses the last element it
    modifies nothing.  The paper uses this type as the separating example:
    it is immediately non-self-commuting but **not strongly** immediately
    non-self-commuting, so Theorem C.1 does not apply to it. *)

type state = int * int
type op = Update_next of int * int | Get of int
type result = Value of int | Ack

let name = "update-array"
let initial = (0, 0)

let apply ((x, y) as s) = function
  | Update_next (1, b) -> ((x, b), Value x)
  | Update_next (_, _) -> (s, Value y) (* index 2: last element, no write *)
  | Get 1 -> (s, Value x)
  | Get _ -> (s, Value y)

let classify = function
  | Update_next _ -> Data_type.Other
  | Get _ -> Data_type.Pure_accessor

let equal_state (a : state) b = a = b
let compare_state (a : state) b = compare a b
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b
let pp_state fmt (x, y) = Format.fprintf fmt "[%d,%d]" x y

let pp_op fmt = function
  | Update_next (i, b) -> Format.fprintf fmt "update_next(%d,%d)" i b
  | Get i -> Format.fprintf fmt "get(%d)" i

let pp_result fmt = function
  | Value v -> Format.pp_print_int fmt v
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function Update_next _ -> "update_next" | Get _ -> "get"
let op_types = [ "update_next"; "get" ]

let sample_prefixes = [ []; [ Update_next (1, 5) ] ]

let sample_ops =
  [ Update_next (1, 1); Update_next (1, 2); Update_next (2, 1); Update_next (2, 2); Get 1; Get 2 ]
