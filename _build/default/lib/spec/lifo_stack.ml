(** LIFO stack (Chapter VI.B).

    - [Push v] — pure mutator, eventually non-self-any-permuting,
      non-overwriter;
    - [Pop] — removes and returns the top: strongly immediately
      non-self-commuting;
    - [Peek] — returns the top without removing it: pure accessor. *)

type state = int list
(** Stack contents, top first. *)

type op = Push of int | Pop | Peek
type result = Value of int | Empty | Ack

let name = "stack"
let initial = []

let apply s = function
  | Push v -> (v :: s, Ack)
  | Pop -> ( match s with [] -> ([], Empty) | x :: rest -> (rest, Value x))
  | Peek -> ( match s with [] -> (s, Empty) | x :: _ -> (s, Value x))

let classify = function
  | Push _ -> Data_type.Pure_mutator
  | Pop -> Data_type.Other
  | Peek -> Data_type.Pure_accessor

let equal_state (a : state) b = a = b
let compare_state (a : state) b = compare a b
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b

let pp_state fmt s =
  Format.fprintf fmt "[%a⟩"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ";")
       Format.pp_print_int)
    s

let pp_op fmt = function
  | Push v -> Format.fprintf fmt "push(%d)" v
  | Pop -> Format.pp_print_string fmt "pop"
  | Peek -> Format.pp_print_string fmt "peek"

let pp_result fmt = function
  | Value v -> Format.pp_print_int fmt v
  | Empty -> Format.pp_print_string fmt "empty"
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function Push _ -> "push" | Pop -> "pop" | Peek -> "peek"
let op_types = [ "push"; "pop"; "peek" ]

let sample_prefixes =
  [ []; [ Push 7 ]; [ Push 7; Push 8 ]; [ Push 7; Pop ] ]

let sample_ops = [ Push 1; Push 2; Push 3; Pop; Peek ]
