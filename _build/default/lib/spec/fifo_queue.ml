(** FIFO queue (Chapter VI.B).

    - [Enqueue v] — pure mutator; eventually non-self-any-permuting
      (different interleavings of enqueues are distinguishable by later
      dequeues) and a non-overwriter;
    - [Dequeue] — removes and returns the head: strongly immediately
      non-self-commuting (Chapter II.B);
    - [Peek] — returns the head without removing it: pure accessor. *)

type state = int list
(** Queue contents, head first. *)

type op = Enqueue of int | Dequeue | Peek
type result = Value of int | Empty | Ack

let name = "queue"
let initial = []

let apply s = function
  | Enqueue v -> (s @ [ v ], Ack)
  | Dequeue -> ( match s with [] -> ([], Empty) | x :: rest -> (rest, Value x))
  | Peek -> ( match s with [] -> (s, Empty) | x :: _ -> (s, Value x))

let classify = function
  | Enqueue _ -> Data_type.Pure_mutator
  | Dequeue -> Data_type.Other
  | Peek -> Data_type.Pure_accessor

let equal_state (a : state) b = a = b
let compare_state (a : state) b = compare a b
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b

let pp_state fmt s =
  Format.fprintf fmt "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ";")
       Format.pp_print_int)
    s

let pp_op fmt = function
  | Enqueue v -> Format.fprintf fmt "enqueue(%d)" v
  | Dequeue -> Format.pp_print_string fmt "dequeue"
  | Peek -> Format.pp_print_string fmt "peek"

let pp_result fmt = function
  | Value v -> Format.pp_print_int fmt v
  | Empty -> Format.pp_print_string fmt "empty"
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function
  | Enqueue _ -> "enqueue"
  | Dequeue -> "dequeue"
  | Peek -> "peek"

let op_types = [ "enqueue"; "dequeue"; "peek" ]

let sample_prefixes =
  [ []; [ Enqueue 7 ]; [ Enqueue 7; Enqueue 8 ]; [ Enqueue 7; Dequeue ] ]

let sample_ops = [ Enqueue 1; Enqueue 2; Enqueue 3; Dequeue; Peek ]
