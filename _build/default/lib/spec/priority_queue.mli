(** Min-priority queue (the classic Weihl/Kosa example): [Insert]s
    commute (no Theorem D.1 bound), [Extract_min] is strongly immediately
    non-self-commuting (Theorem C.1's d + m applies), [Min] is a pure
    accessor. *)

type state = int list
(** Sorted multiset, smallest first. *)

type op = Insert of int | Extract_min | Min
type result = Value of int | Empty | Ack

val name : string
val initial : state
val apply : state -> op -> state * result
val classify : op -> Data_type.kind
val equal_state : state -> state -> bool
val compare_state : state -> state -> int
val equal_result : result -> result -> bool
val equal_op : op -> op -> bool
val pp_state : Format.formatter -> state -> unit
val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> result -> unit
val op_type : op -> string
val op_types : string list
val sample_prefixes : op list list
val sample_ops : op list
