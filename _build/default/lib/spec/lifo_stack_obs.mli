(** Stack with a contents-returning pure accessor [Observe]: the variant
    under which Theorem E.1's hypothesis A holds for push (a top-only peek
    cannot distinguish [push v] from [push v'; push v]); see
    EXPERIMENTS.md. *)

type state = int list
type op = Push of int | Pop | Observe
type result = Value of int | Empty | Contents of int list | Ack

val name : string
val initial : state
val apply : state -> op -> state * result
val classify : op -> Data_type.kind
val equal_state : state -> state -> bool
val compare_state : state -> state -> int
val equal_result : result -> result -> bool
val equal_op : op -> op -> bool
val pp_state : Format.formatter -> state -> unit
val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> result -> unit
val op_type : op -> string
val op_types : string list
val sample_prefixes : op list list
val sample_ops : op list
