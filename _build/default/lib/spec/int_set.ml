(** Integer set.

    The Chapter II.C example of *eventually self-commuting* mutators: the
    order in which inserts (or deletes) of distinct elements are applied
    never matters, so pairs ⟨insert, contains⟩ fall outside the
    non-overwriting hypothesis of Theorem E.1 (lower bound only [d]). *)

module S = Set.Make (Int)

type state = S.t
type op = Insert of int | Delete of int | Contains of int | Size
type result = Bool of bool | Count of int | Ack

let name = "set"
let initial = S.empty

let apply s = function
  | Insert v -> (S.add v s, Ack)
  | Delete v -> (S.remove v s, Ack)
  | Contains v -> (s, Bool (S.mem v s))
  | Size -> (s, Count (S.cardinal s))

let classify = function
  | Insert _ | Delete _ -> Data_type.Pure_mutator
  | Contains _ | Size -> Data_type.Pure_accessor

let equal_state = S.equal
let compare_state = S.compare
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b

let pp_state fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       Format.pp_print_int)
    (S.elements s)

let pp_op fmt = function
  | Insert v -> Format.fprintf fmt "insert(%d)" v
  | Delete v -> Format.fprintf fmt "delete(%d)" v
  | Contains v -> Format.fprintf fmt "contains(%d)" v
  | Size -> Format.pp_print_string fmt "size"

let pp_result fmt = function
  | Bool b -> Format.pp_print_bool fmt b
  | Count n -> Format.pp_print_int fmt n
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Contains _ -> "contains"
  | Size -> "size"

let op_types = [ "insert"; "delete"; "contains"; "size" ]

let sample_prefixes = [ []; [ Insert 1 ]; [ Insert 1; Insert 2 ]; [ Insert 1; Delete 1 ] ]
let sample_ops = [ Insert 1; Insert 2; Delete 1; Delete 2; Contains 1; Contains 2; Size ]
