(** Key-value map — the "arbitrary data type" of the examples.

    - [Put (k, v)] — pure mutator (per-key overwriter);
    - [Del k] — pure mutator;
    - [Get k] — pure accessor;
    - [Swap (k, v)] — writes [v] under [k] and returns the previous binding:
      an OOP, strongly immediately non-self-commuting like
      read-modify-write. *)

module M = Map.Make (Int)

type state = int M.t
type op = Put of int * int | Del of int | Get of int | Swap of int * int
type result = Found of int | Absent | Ack

let name = "kv-map"
let initial = M.empty

let lookup k s = match M.find_opt k s with Some v -> Found v | None -> Absent

let apply s = function
  | Put (k, v) -> (M.add k v s, Ack)
  | Del k -> (M.remove k s, Ack)
  | Get k -> (s, lookup k s)
  | Swap (k, v) -> (M.add k v s, lookup k s)

let classify = function
  | Put _ | Del _ -> Data_type.Pure_mutator
  | Get _ -> Data_type.Pure_accessor
  | Swap _ -> Data_type.Other

let equal_state = M.equal Int.equal
let compare_state = M.compare Int.compare
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b

let pp_state fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       (fun f (k, v) -> Format.fprintf f "%d↦%d" k v))
    (M.bindings s)

let pp_op fmt = function
  | Put (k, v) -> Format.fprintf fmt "put(%d,%d)" k v
  | Del k -> Format.fprintf fmt "del(%d)" k
  | Get k -> Format.fprintf fmt "get(%d)" k
  | Swap (k, v) -> Format.fprintf fmt "swap(%d,%d)" k v

let pp_result fmt = function
  | Found v -> Format.pp_print_int fmt v
  | Absent -> Format.pp_print_string fmt "⊥"
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function
  | Put _ -> "put"
  | Del _ -> "del"
  | Get _ -> "get"
  | Swap _ -> "swap"

let op_types = [ "put"; "del"; "get"; "swap" ]
let sample_prefixes = [ []; [ Put (1, 5) ]; [ Put (1, 5); Put (2, 6) ]; [ Put (1, 5); Del 1 ] ]
let sample_ops = [ Put (1, 7); Put (1, 8); Put (2, 7); Del 1; Get 1; Get 2; Swap (1, 9); Swap (1, 10) ]
