(** Stack with a contents-returning pure accessor.

    Theorem E.1's hypothesis A fails for a strictly top-only peek: after
    [push v] and after [push v'; push v] the top is the same [v], so no peek
    instance can be legal after one and illegal after the other.  The
    thesis nevertheless lists push + peek in Table III; we read its "peek"
    as an accessor that observes enough of the stack to distinguish the two
    — realized here as [Observe], which returns the whole contents.  See
    EXPERIMENTS.md for the discussion. *)

type state = int list
type op = Push of int | Pop | Observe
type result = Value of int | Empty | Contents of int list | Ack

let name = "stack-obs"
let initial = []

let apply s = function
  | Push v -> (v :: s, Ack)
  | Pop -> ( match s with [] -> ([], Empty) | x :: rest -> (rest, Value x))
  | Observe -> (s, Contents s)

let classify = function
  | Push _ -> Data_type.Pure_mutator
  | Pop -> Data_type.Other
  | Observe -> Data_type.Pure_accessor

let equal_state (a : state) b = a = b
let compare_state (a : state) b = compare a b
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b

let pp_int_list fmt s =
  Format.fprintf fmt "[%a⟩"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ";")
       Format.pp_print_int)
    s

let pp_state = pp_int_list

let pp_op fmt = function
  | Push v -> Format.fprintf fmt "push(%d)" v
  | Pop -> Format.pp_print_string fmt "pop"
  | Observe -> Format.pp_print_string fmt "observe"

let pp_result fmt = function
  | Value v -> Format.pp_print_int fmt v
  | Empty -> Format.pp_print_string fmt "empty"
  | Contents s -> pp_int_list fmt s
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function Push _ -> "push" | Pop -> "pop" | Observe -> "observe"
let op_types = [ "push"; "pop"; "observe" ]
let sample_prefixes = [ []; [ Push 7 ]; [ Push 7; Push 8 ] ]
let sample_ops = [ Push 1; Push 2; Push 3; Pop; Observe ]
