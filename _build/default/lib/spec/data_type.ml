(** Sequential specifications of deterministic shared objects.

    A data type in the sense of Chapter II of the paper: a set of operations,
    each an invocation/response pair, together with the set of legal
    operation sequences.  We only model *deterministic, total* objects
    (Definition A.1): from any reachable state, applying an operation yields
    exactly one new state and one result.  Legality of an *instance*
    [OP(arg, ret)] after a sequence ρ is then decidable by replaying ρ and
    comparing the produced return value with [ret]. *)

(** Classification used by the implementation layer (Chapter V): pure
    accessors return information without modifying the object; pure mutators
    modify without returning information; everything else is [Other]
    ("OOP" in the paper's terminology). *)
type kind = Pure_accessor | Pure_mutator | Other

let pp_kind fmt = function
  | Pure_accessor -> Format.pp_print_string fmt "pure-accessor"
  | Pure_mutator -> Format.pp_print_string fmt "pure-mutator"
  | Other -> Format.pp_print_string fmt "other"

module type S = sig
  type state
  type op
  type result

  val name : string

  val initial : state

  val apply : state -> op -> state * result
  (** Deterministic, total transition function: the sequential
      specification. *)

  val classify : op -> kind

  val equal_state : state -> state -> bool
  val compare_state : state -> state -> int
  val equal_result : result -> result -> bool
  val equal_op : op -> op -> bool

  val pp_state : Format.formatter -> state -> unit
  val pp_op : Format.formatter -> op -> unit
  val pp_result : Format.formatter -> result -> unit
end

(** A specification extended with finite sample universes, used by the
    classification checkers ([Classify]) to search for witnesses of the
    algebraic properties of Chapter II. *)
module type SAMPLED = sig
  include S

  val op_type : op -> string
  (** The operation *type* (e.g. ["write"], ["read"]) of an instance; the
      paper's properties quantify over operation types. *)

  val op_types : string list

  val sample_prefixes : op list list
  (** Candidate prefixes ρ to probe. *)

  val sample_ops : op list
  (** Candidate operation instances (arguments; results come from replay). *)
end

(** An operation instance [OP(arg, ret)]: an operation together with the
    return value it is committed to. *)
module Instance = struct
  type ('op, 'r) t = { op : 'op; result : 'r }

  let make op result = { op; result }

  let pp pp_op pp_result fmt { op; result } =
    Format.fprintf fmt "%a→%a" pp_op op pp_result result
end

(** Derived operations over any specification. *)
module Run (D : S) = struct
  (** State reached by a sequence of operations from the initial state. *)
  let replay ops =
    List.fold_left (fun s op -> fst (D.apply s op)) D.initial ops

  (** Result the object would return for [op] after the prefix leading to
      [state]: by determinism (Definition A.1) this is the unique legal
      return value. *)
  let result_after state op = snd (D.apply state op)

  (** Is instance [i] legal immediately after [state]?  For a deterministic
      total object this holds iff the replayed result matches. *)
  let instance_legal state (i : (D.op, D.result) Instance.t) =
    D.equal_result (snd (D.apply state i.op)) i.result

  (** Run a sequence of instances from [state].  Returns the final state if
      every instance is legal in turn, [None] as soon as one is not. *)
  let run_instances state instances =
    let rec go s = function
      | [] -> Some s
      | (i : (D.op, D.result) Instance.t) :: rest ->
          let s', r = D.apply s i.op in
          if D.equal_result r i.result then go s' rest else None
    in
    go state instances

  let sequence_legal state instances = run_instances state instances <> None

  (** Two states are equivalent in the sense of Definition C.2 (each "looks
      like" the other).  Our specifications keep canonical states — the state
      value determines exactly the set of legal continuations — so
      equivalence coincides with state equality.  [Test_spec] probes this
      with random continuations. *)
  let equivalent = D.equal_state

  (** Turn a list of bare operations into committed instances by replaying
      them from [state]: each gets the (unique) legal return value. *)
  let commit state ops =
    let rec go s acc = function
      | [] -> List.rev acc
      | op :: rest ->
          let s', r = D.apply s op in
          go s' (Instance.make op r :: acc) rest
    in
    go state [] ops
end
