(** Append-only log: [Append] is an eventually non-self-any-permuting
    pure mutator (like push/enqueue); [Read_all]/[Length] are pure
    accessors. *)

type state = int list
(** Log entries, oldest first. *)

type op = Append of int | Read_all | Length
type result = All of int list | Count of int | Ack

val name : string
val initial : state
val apply : state -> op -> state * result
val classify : op -> Data_type.kind
val equal_state : state -> state -> bool
val compare_state : state -> state -> int
val equal_result : result -> result -> bool
val equal_op : op -> op -> bool
val pp_state : Format.formatter -> state -> unit
val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> result -> unit
val op_type : op -> string
val op_types : string list
val sample_prefixes : op list list
val sample_ops : op list
