(** Integer set — the Chapter II.C example of *eventually self-commuting*
    mutators (insertion order never matters). *)

module S : Set.S with type elt = int

type state = S.t
type op = Insert of int | Delete of int | Contains of int | Size
type result = Bool of bool | Count of int | Ack

val name : string
val initial : state
val apply : state -> op -> state * result
val classify : op -> Data_type.kind
val equal_state : state -> state -> bool
val compare_state : state -> state -> int
val equal_result : result -> result -> bool
val equal_op : op -> op -> bool
val pp_state : Format.formatter -> state -> unit
val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> result -> unit
val op_type : op -> string
val op_types : string list
val sample_prefixes : op list list
val sample_ops : op list
