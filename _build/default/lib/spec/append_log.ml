(** Append-only log.

    [Append v] is a pure mutator that is eventually non-self-any-permuting —
    like push/enqueue, any two distinct interleavings of appends are
    distinguishable by a later [Read_all].  Used by tests as an additional
    arbitrary data type exercising Algorithm 1, and by the k-permutation
    experiments of Theorem D.1. *)

type state = int list
(** Log entries, oldest first. *)

type op = Append of int | Read_all | Length
type result = All of int list | Count of int | Ack

let name = "log"
let initial = []

let apply s = function
  | Append v -> (s @ [ v ], Ack)
  | Read_all -> (s, All s)
  | Length -> (s, Count (List.length s))

let classify = function
  | Append _ -> Data_type.Pure_mutator
  | Read_all | Length -> Data_type.Pure_accessor

let equal_state (a : state) b = a = b
let compare_state (a : state) b = compare a b
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b

let pp_state fmt s =
  Format.fprintf fmt "⟦%a⟧"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ";")
       Format.pp_print_int)
    s

let pp_op fmt = function
  | Append v -> Format.fprintf fmt "append(%d)" v
  | Read_all -> Format.pp_print_string fmt "read_all"
  | Length -> Format.pp_print_string fmt "length"

let pp_result fmt = function
  | All s ->
      Format.fprintf fmt "⟦%a⟧"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ";")
           Format.pp_print_int)
        s
  | Count n -> Format.pp_print_int fmt n
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function
  | Append _ -> "append"
  | Read_all -> "read_all"
  | Length -> "length"

let op_types = [ "append"; "read_all"; "length" ]
let sample_prefixes = [ []; [ Append 9 ]; [ Append 9; Append 8 ] ]
let sample_ops = [ Append 1; Append 2; Append 3; Read_all; Length ]
