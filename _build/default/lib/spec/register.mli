(** Read/Write/Read-Modify-Write register (Chapter VI.A).  [Read] is a
    pure accessor; [Write v] a pure mutator that overwrites the whole
    state; [Rmw v] reads the current value and writes [v] (strongly
    immediately non-self-commuting); [Add k] is the Chapter II increment —
    a self-commuting, non-overwriting pure mutator. *)

type state = int
type op = Read | Write of int | Rmw of int | Add of int
type result = Value of int | Ack

val name : string
val initial : state
val apply : state -> op -> state * result
val classify : op -> Data_type.kind
val equal_state : state -> state -> bool
val compare_state : state -> state -> int
val equal_result : result -> result -> bool
val equal_op : op -> op -> bool
val pp_state : Format.formatter -> state -> unit
val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> result -> unit
val op_type : op -> string
val op_types : string list
val sample_prefixes : op list list
val sample_ops : op list
