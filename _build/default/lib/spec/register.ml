(** Read/Write/Read-Modify-Write register (Chapter VI.A).

    Operations:
    - [Read] — pure accessor;
    - [Write v] — pure mutator, overwrites the whole state;
    - [Rmw v] — reads the current value and writes [v]; immediately
      non-self-commuting (in fact strongly so, cf. Chapter II.B);
    - [Add k] — increment by [k], returns nothing: the Chapter II example of
      a mutator that commutes with itself yet is a *non-overwriter*. *)

type state = int
type op = Read | Write of int | Rmw of int | Add of int
type result = Value of int | Ack

let name = "register"
let initial = 0

let apply s = function
  | Read -> (s, Value s)
  | Write v -> (v, Ack)
  | Rmw v -> (v, Value s)
  | Add k -> (s + k, Ack)

let classify = function
  | Read -> Data_type.Pure_accessor
  | Write _ | Add _ -> Data_type.Pure_mutator
  | Rmw _ -> Data_type.Other

let equal_state = Int.equal
let compare_state = Int.compare
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b
let pp_state = Format.pp_print_int

let pp_op fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write v -> Format.fprintf fmt "write(%d)" v
  | Rmw v -> Format.fprintf fmt "rmw(%d)" v
  | Add k -> Format.fprintf fmt "add(%d)" k

let pp_result fmt = function
  | Value v -> Format.pp_print_int fmt v
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function
  | Read -> "read"
  | Write _ -> "write"
  | Rmw _ -> "rmw"
  | Add _ -> "add"

let op_types = [ "read"; "write"; "rmw"; "add" ]

let sample_prefixes =
  [ []; [ Write 0 ]; [ Write 1 ]; [ Write 0; Write 1 ]; [ Write 5; Add 2 ] ]

let sample_ops =
  [ Read; Write 1; Write 2; Write 3; Rmw 1; Rmw 2; Add 1; Add 2 ]
