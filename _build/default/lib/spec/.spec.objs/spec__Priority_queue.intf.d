lib/spec/priority_queue.mli: Data_type Format
