lib/spec/bst.mli: Data_type Format
