lib/spec/update_array.ml: Data_type Format
