lib/spec/update_array.mli: Data_type Format
