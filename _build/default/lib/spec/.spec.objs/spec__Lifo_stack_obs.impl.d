lib/spec/lifo_stack_obs.ml: Data_type Format
