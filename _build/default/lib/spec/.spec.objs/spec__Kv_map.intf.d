lib/spec/kv_map.mli: Data_type Format Map
