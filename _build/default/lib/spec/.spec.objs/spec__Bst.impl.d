lib/spec/bst.ml: Data_type Format Option
