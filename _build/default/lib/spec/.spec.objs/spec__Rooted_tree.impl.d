lib/spec/rooted_tree.ml: Data_type Format Int List Map
