lib/spec/append_log.ml: Data_type Format List
