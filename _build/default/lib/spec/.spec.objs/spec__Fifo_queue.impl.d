lib/spec/fifo_queue.ml: Data_type Format
