lib/spec/lifo_stack.mli: Data_type Format
