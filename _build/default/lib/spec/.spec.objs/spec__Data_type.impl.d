lib/spec/data_type.ml: Format List
