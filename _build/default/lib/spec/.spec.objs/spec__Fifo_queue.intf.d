lib/spec/fifo_queue.mli: Data_type Format
