lib/spec/lifo_stack.ml: Data_type Format
