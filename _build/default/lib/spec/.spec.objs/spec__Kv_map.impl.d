lib/spec/kv_map.ml: Data_type Format Int Map
