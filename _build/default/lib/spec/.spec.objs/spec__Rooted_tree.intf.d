lib/spec/rooted_tree.mli: Data_type Format Map
