lib/spec/int_set.ml: Data_type Format Int Set
