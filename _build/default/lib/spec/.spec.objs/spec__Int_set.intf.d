lib/spec/int_set.mli: Data_type Format Set
