lib/spec/register.ml: Data_type Format Int
