lib/spec/register.mli: Data_type Format
