lib/spec/append_log.mli: Data_type Format
