lib/spec/priority_queue.ml: Data_type Format
