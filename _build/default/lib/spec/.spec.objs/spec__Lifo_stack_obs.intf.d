lib/spec/lifo_stack_obs.mli: Data_type Format
