(** Rooted tree (Chapter VI.C).

    Node 0 is the permanent root.  Operations:
    - [Insert (parent, node)] — attach [node] under [parent]; a no-op when
      [parent] is absent or [node] already present (kept total so the object
      stays deterministic): pure mutator;
    - [Delete node] — remove [node] and its whole subtree (never the root):
      pure mutator;
    - [Search node] — is [node] in the tree? pure accessor;
    - [Depth] — height of the tree (root alone = 0): pure accessor. *)

module M = Map.Make (Int)

type state = int M.t
(** Maps each non-root node to its parent.  The root 0 is implicit. *)

type op = Insert of int * int | Delete of int | Search of int | Depth
type result = Bool of bool | Count of int | Ack

let name = "tree"
let initial = M.empty

let mem node s = node = 0 || M.mem node s

let rec depth_of s node = if node = 0 then 0 else 1 + depth_of s (M.find node s)

let descendants s node =
  (* Nodes whose path to the root passes through [node]. *)
  let rec under n = n = node || (match M.find_opt n s with Some p -> under p | None -> false) in
  M.fold (fun n _ acc -> if under n then n :: acc else acc) s []

let apply s = function
  | Insert (parent, node) ->
      if mem parent s && (not (mem node s)) && node <> 0 then (M.add node parent s, Ack)
      else (s, Ack)
  | Delete node ->
      if node = 0 || not (mem node s) then (s, Ack)
      else
        let doomed = descendants s node in
        (List.fold_left (fun m n -> M.remove n m) s doomed, Ack)
  | Search node -> (s, Bool (mem node s))
  | Depth -> (s, Count (M.fold (fun n _ acc -> max acc (depth_of s n)) s 0))

let classify = function
  | Insert _ | Delete _ -> Data_type.Pure_mutator
  | Search _ | Depth -> Data_type.Pure_accessor

let equal_state = M.equal Int.equal
let compare_state = M.compare Int.compare
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b

let pp_state fmt s =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f ",")
       (fun f (n, p) -> Format.fprintf f "%d↑%d" n p))
    (M.bindings s)

let pp_op fmt = function
  | Insert (p, n) -> Format.fprintf fmt "insert(%d under %d)" n p
  | Delete n -> Format.fprintf fmt "delete(%d)" n
  | Search n -> Format.fprintf fmt "search(%d)" n
  | Depth -> Format.pp_print_string fmt "depth"

let pp_result fmt = function
  | Bool b -> Format.pp_print_bool fmt b
  | Count n -> Format.pp_print_int fmt n
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Search _ -> "search"
  | Depth -> "depth"

let op_types = [ "insert"; "delete"; "search"; "depth" ]

let sample_prefixes =
  [ []; [ Insert (0, 1) ]; [ Insert (0, 1); Insert (1, 2) ]; [ Insert (0, 1); Delete 1 ] ]

let sample_ops =
  [ Insert (0, 1); Insert (0, 2); Insert (1, 2); Insert (1, 3); Delete 1; Delete 2; Search 1; Search 2; Depth ]
