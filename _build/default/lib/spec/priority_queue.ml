(** Min-priority queue — the classic example from the commutativity-based
    concurrency-control literature the thesis builds on (Weihl [8],
    Kosa [3]).

    - [Insert v] — pure mutator; inserts of distinct values *commute* (the
      final multiset is order-independent), so unlike write/push/enqueue it
      is not even 2-last-permuting and Theorem D.1 yields no improved
      bound;
    - [Extract_min] — removes and returns the minimum: strongly immediately
      non-self-commuting (two extractions of a singleton queue cannot both
      return the element), so Theorem C.1's d + m applies;
    - [Min] — pure accessor. *)

type state = int list
(** Sorted multiset, smallest first. *)

type op = Insert of int | Extract_min | Min
type result = Value of int | Empty | Ack

let name = "priority-queue"
let initial = []

let rec place v = function
  | [] -> [ v ]
  | x :: rest when v <= x -> v :: x :: rest
  | x :: rest -> x :: place v rest

let apply s = function
  | Insert v -> (place v s, Ack)
  | Extract_min -> ( match s with [] -> ([], Empty) | x :: rest -> (rest, Value x))
  | Min -> ( match s with [] -> (s, Empty) | x :: _ -> (s, Value x))

let classify = function
  | Insert _ -> Data_type.Pure_mutator
  | Extract_min -> Data_type.Other
  | Min -> Data_type.Pure_accessor

let equal_state (a : state) b = a = b
let compare_state (a : state) b = compare a b
let equal_result (a : result) b = a = b
let equal_op (a : op) b = a = b

let pp_state fmt s =
  Format.fprintf fmt "⟨%a⟩"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f "≤")
       Format.pp_print_int)
    s

let pp_op fmt = function
  | Insert v -> Format.fprintf fmt "insert(%d)" v
  | Extract_min -> Format.pp_print_string fmt "extract_min"
  | Min -> Format.pp_print_string fmt "min"

let pp_result fmt = function
  | Value v -> Format.pp_print_int fmt v
  | Empty -> Format.pp_print_string fmt "empty"
  | Ack -> Format.pp_print_string fmt "ack"

let op_type = function
  | Insert _ -> "insert"
  | Extract_min -> "extract_min"
  | Min -> "min"

let op_types = [ "insert"; "extract_min"; "min" ]
let sample_prefixes = [ []; [ Insert 5 ]; [ Insert 5; Insert 3 ] ]
let sample_ops = [ Insert 1; Insert 2; Insert 9; Extract_min; Min ]
