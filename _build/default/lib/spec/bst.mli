(** Unbalanced binary search tree whose node-resolved [Depth v] accessor
    can observe insertion order — the tree satisfying Theorem E.1's
    hypotheses for insert + depth; see EXPERIMENTS.md. *)

type tree = Leaf | Node of { v : int; l : tree; r : tree }
type state = tree
type op = Insert of int | Delete of int | Search of int | Depth of int
type result = Bool of bool | Level of int | Absent | Ack

val name : string
val initial : state
val apply : state -> op -> state * result
val classify : op -> Data_type.kind
val equal_state : state -> state -> bool
val compare_state : state -> state -> int
val equal_result : result -> result -> bool
val equal_op : op -> op -> bool
val pp_state : Format.formatter -> state -> unit
val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> result -> unit
val op_type : op -> string
val op_types : string list
val sample_prefixes : op list list
val sample_ops : op list
