(** Rooted tree (Chapter VI.C) with explicit-parent insertion, subtree
    deletion, membership search and whole-tree depth.  Insert/delete are
    pure mutators, search/depth pure accessors. *)

module M : Map.S with type key = int

type state = int M.t
(** Maps each non-root node to its parent; the root 0 is implicit. *)

type op = Insert of int * int | Delete of int | Search of int | Depth
type result = Bool of bool | Count of int | Ack

val name : string
val initial : state
val apply : state -> op -> state * result
val classify : op -> Data_type.kind
val equal_state : state -> state -> bool
val compare_state : state -> state -> int
val equal_result : result -> result -> bool
val equal_op : op -> op -> bool
val pp_state : Format.formatter -> state -> unit
val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> result -> unit
val op_type : op -> string
val op_types : string list
val sample_prefixes : op list list
val sample_ops : op list
