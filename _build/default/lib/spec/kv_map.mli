(** Key-value map — the "arbitrary data type" of the examples.  [Put] and
    [Del] are pure mutators, [Get] a pure accessor, and [Swap] (write
    returning the previous binding) is a strongly immediately
    non-self-commuting OOP. *)

module M : Map.S with type key = int

type state = int M.t
type op = Put of int * int | Del of int | Get of int | Swap of int * int
type result = Found of int | Absent | Ack

val name : string
val initial : state
val apply : state -> op -> state * result
val classify : op -> Data_type.kind
val equal_state : state -> state -> bool
val compare_state : state -> state -> int
val equal_result : result -> result -> bool
val equal_op : op -> op -> bool
val pp_state : Format.formatter -> state -> unit
val pp_op : Format.formatter -> op -> unit
val pp_result : Format.formatter -> result -> unit
val op_type : op -> string
val op_types : string list
val sample_prefixes : op list list
val sample_ops : op list
