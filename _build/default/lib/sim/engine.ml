(** Deterministic discrete-event execution of a protocol over the partially
    synchronous system model of Chapter III:

    - each process is a state machine driven by invocations, message
      receipts and timer expirations;
    - process [i]'s clock reads [real_time + offsets.(i)] (clocks run at the
      rate of real time; only their offsets differ — the thesis' model);
      passing [~clocks] instead enables the drifting-clock extension (see
      {!Clock});
    - message delays are chosen by a {!Delay.t} policy; a *negative* delay
      models message loss (the message is recorded but never delivered) for
      protocols layered over lossy links, see {!Reliable};
    - the application layer is a script of operations per process, each
      invoked as soon as its [not_before] time has passed *and* the
      process's previous operation has responded (at most one pending
      operation per process, as the model requires).

    Ties in real time are broken by scheduling order, so runs are fully
    deterministic and reproducible. *)

exception Protocol_error of string

module Make (P : Protocol.S) = struct
  type invocation = P.op Workload.invocation

  type payload =
    | Deliver of { src : int; msg : P.msg; pair_index : int }
    | Fire of { timer_id : int }
    | Try_invoke

  type event = { time : Prelude.Ticks.t; seq : int; pid : int; payload : payload }

  module Event_heap = Prelude.Heap.Make (struct
    type t = event

    let compare a b =
      match Prelude.Ticks.compare a.time b.time with
      | 0 -> Int.compare a.seq b.seq
      | c -> c
  end)

  type outcome = {
    trace : (P.op, P.result, P.msg) Trace.t;
    final_states : P.state array;
  }

  type runtime = {
    config : P.config;
    n : int;
    offsets : int array;
    clocks : Clock.t array;
    delay : Delay.t;
    check_delays : (int * int) option;  (** (d, u) admissibility assertion *)
    view_ends : Prelude.Ticks.t array option;
        (** chopped runs: process [i] takes no step at/after [view_ends.(i)] *)
    stop_after : Prelude.Ticks.t;
    states : P.state array;
    mutable heap : Event_heap.t;
    mutable seq : int;
    scripts : invocation list array;  (** remaining script per process *)
    mutable script_cursor : int array;
    pending : (P.op, P.result) Trace.op_record option array;
    timers : (int * P.timer) list array;  (** active (id, timer) per process *)
    mutable timer_ids : int;
    pair_counts : int array array;  (** messages sent per (src,dst) pair *)
    mutable ops_rev : (P.op, P.result) Trace.op_record list;
    mutable msgs_rev : P.msg Trace.message_record list;
    mutable op_count : int;
    mutable events_processed : int;
    max_events : int;
    mutable last_time : Prelude.Ticks.t;
  }

  let schedule rt ~time ~pid payload =
    rt.seq <- rt.seq + 1;
    rt.heap <- Event_heap.insert { time; seq = rt.seq; pid; payload } rt.heap

  let send_message rt ~now ~src ~dst msg =
    let pair_index = rt.pair_counts.(src).(dst) in
    rt.pair_counts.(src).(dst) <- pair_index + 1;
    let delay = rt.delay ~src ~dst ~send_time:now ~index:pair_index in
    (match rt.check_delays with
    | Some (d, u) when delay < d - u || delay > d ->
        raise
          (Protocol_error
             (Printf.sprintf "inadmissible delay %d ∉ [%d,%d] on p%d→p%d#%d"
                delay (d - u) d src dst pair_index))
    | _ -> ());
    let record : P.msg Trace.message_record =
      { src; dst; msg; pair_index; send_real = now; delay; delivered = false }
    in
    rt.msgs_rev <- record :: rt.msgs_rev;
    (* negative delay = the adversary drops this message *)
    if delay >= 0 then
      schedule rt ~time:(Prelude.Ticks.( + ) now delay) ~pid:dst
        (Deliver { src; msg; pair_index })

  let rec apply_actions rt ~now ~pid actions =
    List.iter
      (function
        | Action.Respond result -> (
            match rt.pending.(pid) with
            | None ->
                raise
                  (Protocol_error
                     (Printf.sprintf "p%d responded with no pending operation" pid))
            | Some record ->
                record.Trace.response_real <- Some now;
                record.Trace.response_clock <-
                  Some (Clock.read rt.clocks.(pid) ~real:now);
                record.Trace.result <- Some result;
                rt.pending.(pid) <- None;
                maybe_schedule_invoke rt ~now ~pid)
        | Action.Send (dst, msg) -> send_message rt ~now ~src:pid ~dst msg
        | Action.Broadcast msg ->
            for dst = 0 to rt.n - 1 do
              if dst <> pid then send_message rt ~now ~src:pid ~dst msg
            done
        | Action.Set_timer (delay, timer) ->
            rt.timer_ids <- rt.timer_ids + 1;
            let id = rt.timer_ids in
            rt.timers.(pid) <- (id, timer) :: rt.timers.(pid);
            (* a timer set for clock-time delay δ fires when the local clock
               reaches now_clock + δ — for drift-free clocks, exactly δ real
               time later *)
            let clock = rt.clocks.(pid) in
            let fire =
              Clock.real_of_clock clock ~now
                ~target:(Clock.read clock ~real:now + delay)
            in
            schedule rt ~time:fire ~pid (Fire { timer_id = id })
        | Action.Cancel_timer timer ->
            rt.timers.(pid) <-
              List.filter (fun (_, t) -> not (P.equal_timer t timer)) rt.timers.(pid))
      actions

  and maybe_schedule_invoke rt ~now ~pid =
    let cursor = rt.script_cursor.(pid) in
    match List.nth_opt rt.scripts.(pid) cursor with
    | None -> ()
    | Some inv ->
        schedule rt ~time:(Prelude.Ticks.max now inv.not_before) ~pid Try_invoke

  let handle_event rt (ev : event) =
    let pid = ev.pid in
    let now = ev.time in
    let clock = Clock.read rt.clocks.(pid) ~real:now in
    match ev.payload with
    | Deliver { src; msg; pair_index } ->
        (match
           List.find_opt
             (fun (m : P.msg Trace.message_record) ->
               m.src = src && m.dst = pid && m.pair_index = pair_index)
             rt.msgs_rev
         with
        | Some m -> m.delivered <- true
        | None -> ());
        let state', actions = P.on_message rt.config rt.states.(pid) ~clock ~src msg in
        rt.states.(pid) <- state';
        apply_actions rt ~now ~pid actions
    | Fire { timer_id } -> (
        match List.assoc_opt timer_id rt.timers.(pid) with
        | None -> () (* cancelled *)
        | Some timer ->
            rt.timers.(pid) <- List.remove_assoc timer_id rt.timers.(pid);
            let state', actions = P.on_timer rt.config rt.states.(pid) ~clock timer in
            rt.states.(pid) <- state';
            apply_actions rt ~now ~pid actions)
    | Try_invoke -> (
        if rt.pending.(pid) <> None then () (* previous op still pending *)
        else
          let cursor = rt.script_cursor.(pid) in
          match List.nth_opt rt.scripts.(pid) cursor with
          | None -> ()
          | Some inv ->
              rt.script_cursor.(pid) <- cursor + 1;
              let record : (P.op, P.result) Trace.op_record =
                {
                  pid;
                  op = inv.op;
                  index = rt.op_count;
                  invoke_real = now;
                  invoke_clock = clock;
                  response_real = None;
                  response_clock = None;
                  result = None;
                }
              in
              rt.op_count <- rt.op_count + 1;
              rt.ops_rev <- record :: rt.ops_rev;
              rt.pending.(pid) <- Some record;
              let state', actions = P.on_invoke rt.config rt.states.(pid) ~clock inv.op in
              rt.states.(pid) <- state';
              apply_actions rt ~now ~pid actions)

  let run ~config ~n ~offsets ?clocks ~delay ?check_delays ?view_ends
      ?(stop_after = Prelude.Ticks.infinity)
      ?(max_events = 2_000_000) (script : invocation list) : outcome =
    if Array.length offsets <> n then invalid_arg "Engine.run: |offsets| <> n";
    let clocks =
      match clocks with
      | Some c ->
          if Array.length c <> n then invalid_arg "Engine.run: |clocks| <> n";
          c
      | None -> Clock.of_offsets offsets
    in
    let scripts = Array.make n [] in
    List.iter
      (fun (inv : invocation) -> scripts.(inv.pid) <- inv :: scripts.(inv.pid))
      script;
    Array.iteri (fun i s -> scripts.(i) <- List.rev s) scripts;
    let rt =
      {
        config;
        n;
        offsets;
        clocks;
        delay;
        check_delays;
        view_ends;
        stop_after;
        states = Array.init n (fun pid -> P.init config ~n ~pid);
        heap = Event_heap.empty;
        seq = 0;
        scripts;
        script_cursor = Array.make n 0;
        pending = Array.make n None;
        timers = Array.make n [];
        timer_ids = 0;
        pair_counts = Array.make_matrix n n 0;
        ops_rev = [];
        msgs_rev = [];
        op_count = 0;
        events_processed = 0;
        max_events;
        last_time = 0;
      }
    in
    for pid = 0 to n - 1 do
      maybe_schedule_invoke rt ~now:0 ~pid
    done;
    let dropped (ev : event) =
      (match rt.view_ends with
      | Some ends -> Prelude.Ticks.( >= ) ev.time ends.(ev.pid)
      | None -> false)
      || Prelude.Ticks.( > ) ev.time rt.stop_after
    in
    let rec loop () =
      match Event_heap.delete_min rt.heap with
      | None -> ()
      | Some (ev, rest) ->
          rt.heap <- rest;
          if not (dropped ev) then begin
            rt.last_time <- ev.time;
            rt.events_processed <- rt.events_processed + 1;
            if rt.events_processed > rt.max_events then
              raise (Protocol_error "event budget exhausted (runaway protocol?)");
            handle_event rt ev
          end;
          loop ()
    in
    loop ();
    {
      trace =
        {
          n;
          offsets;
          ops = List.rev rt.ops_rev;
          messages = List.rev rt.msgs_rev;
          end_time = rt.last_time;
        };
      final_states = rt.states;
    }
end
