lib/sim/protocol.ml: Action Prelude
