lib/sim/clock.ml: Array Format
