lib/sim/workload.ml: List Prelude
