lib/sim/diagram.ml: Array Bytes Char Format List Option Printf Seq String Trace
