lib/sim/reliable.ml: Action List Prelude Printf Protocol Set
