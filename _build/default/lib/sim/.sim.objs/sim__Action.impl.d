lib/sim/action.ml: Prelude
