lib/sim/reliable.mli: Prelude Protocol
