lib/sim/workload.mli: Prelude
