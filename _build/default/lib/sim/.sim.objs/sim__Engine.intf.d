lib/sim/engine.mli: Clock Delay Prelude Protocol Trace Workload
