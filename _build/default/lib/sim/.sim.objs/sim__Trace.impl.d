lib/sim/trace.ml: Format List Option Prelude
