lib/sim/trace.mli: Format Prelude
