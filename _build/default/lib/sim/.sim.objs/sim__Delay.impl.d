lib/sim/delay.ml: Array Hashtbl List Option Prelude
