lib/sim/delay.mli: Prelude
