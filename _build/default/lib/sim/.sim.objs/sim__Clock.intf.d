lib/sim/clock.mli: Format Prelude
