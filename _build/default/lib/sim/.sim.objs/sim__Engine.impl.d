lib/sim/engine.ml: Action Array Clock Delay Int List Prelude Printf Protocol Trace Workload
