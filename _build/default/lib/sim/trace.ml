(** Full record of a simulated run: every operation with its invocation and
    response times (both real and local-clock), and every message with its
    send/receive times.  Traces feed the linearizability checker, the
    latency analyses of the table experiments, and the shift machinery. *)

type ('op, 'result) op_record = {
  pid : int;
  op : 'op;
  index : int;  (** global invocation order *)
  invoke_real : Prelude.Ticks.t;
  invoke_clock : Prelude.Ticks.t;
  mutable response_real : Prelude.Ticks.t option;
  mutable response_clock : Prelude.Ticks.t option;
  mutable result : 'result option;
}

type 'msg message_record = {
  src : int;
  dst : int;
  msg : 'msg;
  pair_index : int;  (** sequence number among (src, dst) messages *)
  send_real : Prelude.Ticks.t;
  delay : Prelude.Ticks.t;
  mutable delivered : bool;
}

type ('op, 'result, 'msg) t = {
  n : int;
  offsets : int array;  (** per-process clock offsets c_i *)
  ops : ('op, 'result) op_record list;  (** in invocation order *)
  messages : 'msg message_record list;  (** in send order *)
  end_time : Prelude.Ticks.t;  (** real time of the last event processed *)
}

let completed t = List.filter (fun r -> r.result <> None) t.ops
let pending t = List.filter (fun r -> r.result = None) t.ops

(** Response-time − invocation-time, for completed operations. *)
let latency r =
  match r.response_real with
  | Some resp -> Some (Prelude.Ticks.( - ) resp r.invoke_real)
  | None -> None

(** Worst-case latency among completed operations selected by [f]. *)
let max_latency ?(f = fun _ -> true) t =
  List.fold_left
    (fun acc r ->
      match latency r with
      | Some l when f r -> Prelude.Ticks.max acc l
      | _ -> acc)
    0 t.ops

let find_op t ~index = List.find_opt (fun r -> r.index = index) t.ops

(** Result of the [index]-th (in global invocation order) operation, if it
    completed. *)
let result_of t ~index =
  Option.bind (find_op t ~index) (fun r -> r.result)

let pp_op_record pp_op pp_result fmt r =
  let pp_t fmt = function
    | Some t -> Prelude.Ticks.pp fmt t
    | None -> Format.pp_print_string fmt "⊥"
  in
  Format.fprintf fmt "p%d: %a @%a→%a = %a" r.pid pp_op r.op Prelude.Ticks.pp
    r.invoke_real pp_t r.response_real
    (fun fmt -> function
      | Some res -> pp_result fmt res
      | None -> Format.pp_print_string fmt "pending")
    r.result
