(** Reliable delivery over lossy links — the "failures in message passing
    systems" extension the thesis' conclusion leaves as future work.

    The model of Chapter III assumes reliable links.  This wrapper restores
    that assumption on top of a network that may *drop* messages (a delay
    policy returning a negative delay): every protocol message is wrapped
    in a sequence-numbered [Data] frame, retransmitted every
    [retransmit_every] ticks until the matching [Ack] arrives, and
    de-duplicated at the receiver, so the inner protocol still sees
    exactly-once delivery.

    Timing: if the adversary loses at most [L] consecutive frames per link,
    a wrapped message is delivered within d_eff = d + L·r (r = retransmit
    period), with uncertainty u_eff = u + L·r.  Running Algorithm 1
    *inside* this wrapper with parameters (d_eff, u_eff) restores all of
    the paper's guarantees over the lossy network — the [lossy] experiment
    demonstrates exactly that. *)

module Make (P : Protocol.S) = struct
  type config = {
    inner : P.config;
    retransmit_every : Prelude.Ticks.t;
    max_retries : int;
        (** give-up bound; must exceed the adversary's consecutive-loss
            budget or the wrapper fails loudly *)
  }

  type op = P.op
  type result = P.result
  type msg = Data of { seq : int; payload : P.msg } | Ack of int
  type timer = Inner of P.timer | Retransmit of { dst : int; seq : int }

  module Seq_set = Set.Make (struct
    type t = int * int

    let compare = compare
  end)

  type state = {
    pid : int;
    n : int;
    inner : P.state;
    next_seq : int;
    unacked : (int * (int * P.msg * int)) list;
        (** seq ↦ (dst, payload, tries) *)
    seen : Seq_set.t;  (** (src, seq) already delivered to the inner protocol *)
  }

  let name = "reliable(" ^ P.name ^ ")"

  let init (cfg : config) ~n ~pid =
    {
      pid;
      n;
      inner = P.init cfg.inner ~n ~pid;
      next_seq = 0;
      unacked = [];
      seen = Seq_set.empty;
    }

  let equal_timer a b =
    match (a, b) with
    | Inner x, Inner y -> P.equal_timer x y
    | Retransmit x, Retransmit y -> x.dst = y.dst && x.seq = y.seq
    | _ -> false

  let send_reliably (cfg : config) (st : state) dst payload =
    let seq = st.next_seq in
    ( { st with next_seq = seq + 1; unacked = (seq, (dst, payload, 0)) :: st.unacked },
      [
        Action.Send (dst, Data { seq; payload });
        Action.Set_timer (cfg.retransmit_every, Retransmit { dst; seq });
      ] )

  (* Lift inner actions: sends/broadcasts become reliable frames, timers
     are tagged, responses pass through. *)
  let lift (cfg : config) (st : state) inner_state actions =
    let st = { st with inner = inner_state } in
    let st, rev =
      List.fold_left
        (fun (st, acc) action ->
          match action with
          | Action.Respond r -> (st, Action.Respond r :: acc)
          | Action.Send (dst, m) ->
              let st, acts = send_reliably cfg st dst m in
              (st, List.rev_append acts acc)
          | Action.Broadcast m ->
              let rec go st acc dst =
                if dst >= st.n then (st, acc)
                else if dst = st.pid then go st acc (dst + 1)
                else
                  let st, acts = send_reliably cfg st dst m in
                  go st (List.rev_append acts acc) (dst + 1)
              in
              go st acc 0
          | Action.Set_timer (d, t) -> (st, Action.Set_timer (d, Inner t) :: acc)
          | Action.Cancel_timer t -> (st, Action.Cancel_timer (Inner t) :: acc))
        (st, []) actions
    in
    (st, List.rev rev)

  let on_invoke (cfg : config) (st : state) ~clock op =
    let inner, actions = P.on_invoke cfg.inner st.inner ~clock op in
    lift cfg st inner actions

  let on_message (cfg : config) (st : state) ~clock ~src = function
    | Ack seq ->
        ( { st with unacked = List.remove_assoc seq st.unacked },
          [ Action.Cancel_timer (Retransmit { dst = src; seq }) ] )
    | Data { seq; payload } ->
        let ack = Action.Send (src, Ack seq) in
        if Seq_set.mem (src, seq) st.seen then (st, [ ack ])
        else
          let st = { st with seen = Seq_set.add (src, seq) st.seen } in
          let inner, actions = P.on_message cfg.inner st.inner ~clock ~src payload in
          let st, lifted = lift cfg st inner actions in
          (st, ack :: lifted)

  let on_timer (cfg : config) (st : state) ~clock = function
    | Inner t ->
        let inner, actions = P.on_timer cfg.inner st.inner ~clock t in
        lift cfg st inner actions
    | Retransmit { dst; seq } -> (
        match List.assoc_opt seq st.unacked with
        | None -> (st, []) (* acked in the meantime *)
        | Some (dst', payload, tries) ->
            assert (dst = dst');
            if tries >= cfg.max_retries then
              failwith
                (Printf.sprintf
                   "Reliable: p%d exhausted %d retries for seq %d to p%d — \
                    the adversary exceeded its loss budget"
                   st.pid cfg.max_retries seq dst)
            else
              ( {
                  st with
                  unacked =
                    (seq, (dst, payload, tries + 1)) :: List.remove_assoc seq st.unacked;
                },
                [
                  Action.Send (dst, Data { seq; payload });
                  Action.Set_timer (cfg.retransmit_every, Retransmit { dst; seq });
                ] ))
end
