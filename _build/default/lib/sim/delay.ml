(** Message-delay policies.

    A policy assigns every message a delay; the admissibility condition of
    Chapter III.B.3 requires each delay to lie in [[d − u, d]].  The
    lower-bound machinery deliberately constructs *invalid* delays (the
    modified time shift), so policies themselves are unconstrained and
    admissibility is checked separately ([Engine.run ~check_delays] or
    [Runs.Config.is_admissible]). *)

type t = src:int -> dst:int -> send_time:Prelude.Ticks.t -> index:int -> Prelude.Ticks.t
(** [index] is the per-(src,dst) sequence number of the message, starting
    at 0 — the proofs of Chapter IV single out "the first message from p_i
    to p_j". *)

let constant d : t = fun ~src:_ ~dst:_ ~send_time:_ ~index:_ -> d

(** Pairwise-uniform delays from a matrix, the shape every lower-bound run
    uses: message from [i] to [j] always takes [m.(i).(j)]. *)
let matrix m : t = fun ~src ~dst ~send_time:_ ~index:_ -> m.(src).(dst)

(** Independent uniform draws in [[d − u, d]]. *)
let random rng ~d ~u : t =
 fun ~src:_ ~dst:_ ~send_time:_ ~index:_ -> Prelude.Rng.int_in rng ~lo:(d - u) ~hi:d

(** [override base rules] redirects specific messages: the first rule
    matching (src, dst, index) wins, otherwise [base] applies.  Used to
    re-extend chopped runs with a chosen delay for the offending message. *)
let override base rules : t =
 fun ~src ~dst ~send_time ~index ->
  match
    List.find_opt (fun (s, d', i, _) -> s = src && d' = dst && i = index) rules
  with
  | Some (_, _, _, delay) -> delay
  | None -> base ~src ~dst ~send_time ~index

(** Adversarial extremes: fastest possible from [src], slowest to [src] —
    handy for worst-case latency probing. *)
let extremes ~d ~u ~slow_to:victim : t =
 fun ~src:_ ~dst ~send_time:_ ~index:_ -> if dst = victim then d else d - u

(* ---- lossy networks (a negative delay = the message is dropped).  Only
   meaningful under protocols built for loss, e.g. {!Reliable}. ---- *)

let dropped = -1

(** Drop each message independently with probability [percent]/100,
    otherwise delegate to [base]. *)
let lossy base ~rng ~percent : t =
 fun ~src ~dst ~send_time ~index ->
  if Prelude.Rng.int rng 100 < percent then dropped
  else base ~src ~dst ~send_time ~index

(** Drop at most [max_consecutive] messages in a row per (src, dst) link —
    the bounded-loss adversary under which {!Reliable} gives hard delivery
    bounds (d_eff = d + L·r). *)
let lossy_bounded base ~rng ~percent ~max_consecutive : t =
  let streak : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  fun ~src ~dst ~send_time ~index ->
    let k = (src, dst) in
    let run = Option.value ~default:0 (Hashtbl.find_opt streak k) in
    if run < max_consecutive && Prelude.Rng.int rng 100 < percent then begin
      Hashtbl.replace streak k (run + 1);
      dropped
    end
    else begin
      Hashtbl.replace streak k 0;
      base ~src ~dst ~send_time ~index
    end

(** Drop randomly but at most [budget] messages per (src, dst) link in
    total.  Under {!Reliable} with [max_retries > budget], every wrapped
    message is then delivered within d + budget·r. *)
let lossy_budget base ~rng ~percent ~budget : t =
  let spent : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  fun ~src ~dst ~send_time ~index ->
    let k = (src, dst) in
    let used = Option.value ~default:0 (Hashtbl.find_opt spent k) in
    if used < budget && Prelude.Rng.int rng 100 < percent then begin
      Hashtbl.replace spent k (used + 1);
      dropped
    end
    else base ~src ~dst ~send_time ~index

(** Deterministically drop the first [count] messages on one link (frames
    count individually, so with retransmission this is "[count] consecutive
    losses"). *)
let drop_first base ~from ~to_ ~count : t =
 fun ~src ~dst ~send_time ~index ->
  if src = from && dst = to_ && index < count then dropped
  else base ~src ~dst ~send_time ~index
