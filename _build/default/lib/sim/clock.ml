(** Process clocks.

    The thesis' model (Chapter III.B.2) has drift-free clocks: process [i]
    reads [real_time + c_i].  Its conclusion lists bounded *drift* as future
    work; to explore that, a clock may also carry a rational drift rate —
    process [i] with drift [num/den] reads

      clock_i(t) = t + c_i + ⌊t·num/den⌋

    i.e. it runs at rate [1 + num/den].  [num = 0] recovers the paper's
    model exactly (and is the default everywhere).  Rates must stay
    positive: [num > −den]. *)

type t = {
  offset : int;  (** c_i *)
  drift_num : int;
  drift_den : int;  (** > 0; rate = 1 + drift_num/drift_den *)
}

let perfect offset = { offset; drift_num = 0; drift_den = 1 }

let with_drift ~offset ~num ~den =
  if den <= 0 then invalid_arg "Clock.with_drift: denominator must be positive";
  if num <= -den then invalid_arg "Clock.with_drift: rate must stay positive";
  { offset; drift_num = num; drift_den = den }

let of_offsets = Array.map perfect

(* Floor division (OCaml's / truncates toward zero). *)
let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)

(** Clock reading at real time [t]. *)
let read c ~real = real + c.offset + fdiv (real * c.drift_num) c.drift_den

(** Earliest real time ≥ [now] at which the clock reads at least
    [target].  Used to fire a timer set for clock time [target]: with the
    clock nondecreasing in real time, a short scan around the rate-scaled
    estimate finds the exact tick. *)
let real_of_clock c ~now ~target =
  let estimate =
    (* invert t + off + t·num/den ≈ target *)
    (target - c.offset) * c.drift_den / (c.drift_den + c.drift_num)
  in
  let t = ref (max now (estimate - 2)) in
  while read c ~real:!t < target do
    incr t
  done;
  !t

let is_perfect c = c.drift_num = 0

let pp fmt c =
  if is_perfect c then Format.fprintf fmt "c=%d" c.offset
  else Format.fprintf fmt "c=%d,rate=1%+d/%d" c.offset c.drift_num c.drift_den
