(** Outputs of one state-machine step (Chapter III.B.1): at most one
    operation response, messages to other processes, and timer updates.
    Timers hold a *clock-time* delay; since clocks run at the rate of real
    time, a timer set with delay [δ] fires exactly [δ] real time later. *)

type ('result, 'msg, 'timer) t =
  | Respond of 'result
      (** Complete the process's pending operation with this result. *)
  | Send of int * 'msg  (** Send to one process. *)
  | Broadcast of 'msg  (** Send to every *other* process. *)
  | Set_timer of Prelude.Ticks.t * 'timer
      (** Fire [timer] after the given delay of local clock time. *)
  | Cancel_timer of 'timer
      (** Cancel all pending timers equal to this one. *)
