(** Process clocks.

    The thesis' model (Chapter III.B.2) has drift-free clocks: process [i]
    reads [real_time + c_i].  Its conclusion lists bounded *drift* as
    future work; to explore that, a clock may also carry a rational drift
    rate — process [i] with drift [num/den] reads

      [clock_i(t) = t + c_i + ⌊t·num/den⌋],

    i.e. it runs at rate [1 + num/den].  [num = 0] recovers the paper's
    model exactly (and is the default everywhere). *)

type t = {
  offset : int;  (** c_i *)
  drift_num : int;
  drift_den : int;  (** > 0; rate = 1 + drift_num/drift_den *)
}

val perfect : int -> t
(** A drift-free clock with the given offset — the paper's model. *)

val with_drift : offset:int -> num:int -> den:int -> t
(** A drifting clock.  Raises [Invalid_argument] unless [den > 0] and
    [num > −den] (the rate must stay positive). *)

val of_offsets : int array -> t array
(** Drift-free clocks from an offset vector. *)

val read : t -> real:Prelude.Ticks.t -> Prelude.Ticks.t
(** Clock reading at the given real time. *)

val real_of_clock : t -> now:Prelude.Ticks.t -> target:Prelude.Ticks.t -> Prelude.Ticks.t
(** Earliest real time ≥ [now] at which the clock reads at least [target].
    Used by the engine to fire timers set in clock time. *)

val is_perfect : t -> bool
val pp : Format.formatter -> t -> unit
