(** Application-layer scripts (the top layer of Fig. 2 in the paper).

    Each process executes its scripted operations sequentially: an
    operation is invoked once its [not_before] real time has passed *and*
    the process's previous operation has responded — so no process ever has
    two pending operations, as the model of Chapter III requires. *)

type 'op invocation = { pid : int; op : 'op; not_before : Prelude.Ticks.t }

val at : int -> 'op -> Prelude.Ticks.t -> 'op invocation
(** [at pid op t]: invoke [op] at process [pid], no earlier than real time
    [t]. *)

val seq : int -> Prelude.Ticks.t -> 'op list -> 'op invocation list
(** [seq pid t ops] schedules [ops] back-to-back at process [pid] starting
    no earlier than [t]: each is invoked as soon as the previous responds. *)

val shift_pid : 'op invocation list -> pid:int -> x:Prelude.Ticks.t -> 'op invocation list
(** Shift every invocation of process [pid] by [x] — a single-process view
    shift as used by the time-shift machinery. *)
