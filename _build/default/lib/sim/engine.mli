(** Deterministic discrete-event execution of a protocol over the partially
    synchronous system model of Chapter III.

    - Each process is a state machine driven by operation invocations,
      message receipts and timer expirations ({!Protocol.S}).
    - Process [i]'s clock reads [real + offsets.(i)] (the thesis' model);
      passing [~clocks] enables the drifting-clock extension ({!Clock}).
    - Message delays are chosen by a {!Delay.t} policy; a negative delay
      models loss.
    - The application layer is a {!Workload} script; at most one operation
      is ever pending per process.

    Ties in real time are broken by scheduling order, so runs are fully
    deterministic and reproducible. *)

exception Protocol_error of string
(** Raised on protocol misbehaviour (responding with nothing pending, an
    inadmissible delay under [~check_delays], or a runaway event loop). *)

module Make (P : Protocol.S) : sig
  type invocation = P.op Workload.invocation

  type outcome = {
    trace : (P.op, P.result, P.msg) Trace.t;
    final_states : P.state array;  (** for replica-convergence checks *)
  }

  val run :
    config:P.config ->
    n:int ->
    offsets:int array ->
    ?clocks:Clock.t array ->
    delay:Delay.t ->
    ?check_delays:int * int ->
    ?view_ends:Prelude.Ticks.t array ->
    ?stop_after:Prelude.Ticks.t ->
    ?max_events:int ->
    invocation list ->
    outcome
  (** Execute the protocol until quiescence.

      - [check_delays:(d, u)] asserts every delay lies in [[d − u, d]];
      - [view_ends] executes a *chopped* run: process [i] takes no step at
        or after [view_ends.(i)] (Lemma B.1's prefixes);
      - [stop_after] drops all events beyond a horizon;
      - [max_events] guards against non-quiescent protocols. *)
end
