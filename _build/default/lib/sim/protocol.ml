(** A distributed object implementation: one state machine per process,
    exactly the middle layer of Fig. 2 in the paper.  Input events are
    operation invocations (from the application layer), message receipts
    (from the message-passing layer) and timer expirations; the transition
    function also sees the local clock time. *)

module type S = sig
  type config
  (** Protocol parameters — typically the system bounds [d], [u], [ε] plus
      protocol knobs such as Algorithm 1's trade-off parameter [X]. *)

  type state
  type op
  type result
  type msg
  type timer

  val name : string
  val init : config -> n:int -> pid:int -> state

  val on_invoke :
    config ->
    state ->
    clock:Prelude.Ticks.t ->
    op ->
    state * (result, msg, timer) Action.t list

  val on_message :
    config ->
    state ->
    clock:Prelude.Ticks.t ->
    src:int ->
    msg ->
    state * (result, msg, timer) Action.t list

  val on_timer :
    config ->
    state ->
    clock:Prelude.Ticks.t ->
    timer ->
    state * (result, msg, timer) Action.t list

  val equal_timer : timer -> timer -> bool
end
