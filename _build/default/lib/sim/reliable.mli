(** Reliable delivery over lossy links — the "failures in message passing
    systems" extension the thesis' conclusion leaves as future work.

    Wraps any protocol so that every message travels in a sequence-numbered
    [Data] frame, retransmitted every [retransmit_every] ticks until acked
    and de-duplicated at the receiver: the inner protocol sees exactly-once
    delivery over a network that may drop frames (negative {!Delay.t}
    delays).

    Timing: if the adversary loses at most [L] frames on a link, a wrapped
    message is delivered within [d_eff = d + L·r] with uncertainty
    [u_eff = u + L·r]; running Algorithm 1 inside the wrapper with
    parameters (d_eff, u_eff) restores all of the paper's guarantees. *)

module Make (P : Protocol.S) : sig
  type config = {
    inner : P.config;
    retransmit_every : Prelude.Ticks.t;
    max_retries : int;
        (** give-up bound; must exceed the adversary's per-link loss budget
            or the wrapper fails loudly *)
  }

  include
    Protocol.S
      with type config := config
       and type op = P.op
       and type result = P.result
end
