(** Application-layer scripts (the top layer of Fig. 2).

    Each process executes its scripted operations sequentially: an operation
    is invoked once its [not_before] real time has passed *and* the
    process's previous operation has responded — so no process ever has two
    pending operations, as the model of Chapter III requires. *)

type 'op invocation = { pid : int; op : 'op; not_before : Prelude.Ticks.t }

let at pid op not_before = { pid; op; not_before }

(** [seq pid t ops] schedules [ops] back-to-back at process [pid] starting
    no earlier than [t]: each is invoked as soon as the previous responds. *)
let seq pid t ops = List.map (fun op -> { pid; op; not_before = t }) ops

(** Shift every invocation of process [pid] by [x] (used by the time-shift
    machinery: shifting a view moves its real times). *)
let shift_pid invs ~pid ~x =
  List.map
    (fun inv ->
      if inv.pid = pid then { inv with not_before = Prelude.Ticks.( + ) inv.not_before x }
      else inv)
    invs
