(** Message-delay policies.

    A policy assigns every message a delay; the admissibility condition of
    Chapter III.B.3 requires each delay to lie in [[d − u, d]].  The
    lower-bound machinery deliberately constructs *invalid* delays (the
    modified time shift), so policies are unconstrained and admissibility
    is checked separately ([Engine.run ~check_delays],
    [Runs.Config.is_admissible]).  A *negative* delay models message loss —
    only meaningful under protocols built for lossy links, e.g.
    {!Reliable}. *)

type t = src:int -> dst:int -> send_time:Prelude.Ticks.t -> index:int -> Prelude.Ticks.t
(** [index] is the per-(src, dst) sequence number of the message, starting
    at 0 — the proofs of Chapter IV single out "the first message from p_i
    to p_j". *)

val constant : int -> t

val matrix : int array array -> t
(** Pairwise-uniform delays, the shape every lower-bound run uses. *)

val random : Prelude.Rng.t -> d:int -> u:int -> t
(** Independent uniform draws in [[d − u, d]]. *)

val override : t -> (int * int * int * int) list -> t
(** [override base rules] redirects specific messages: the first rule
    [(src, dst, index, delay)] matching wins, otherwise [base] applies.
    Used to re-extend chopped runs. *)

val extremes : d:int -> u:int -> slow_to:int -> t
(** All messages into [slow_to] take [d]; all others [d − u]. *)

val dropped : int
(** The negative sentinel delay meaning "lost". *)

val lossy : t -> rng:Prelude.Rng.t -> percent:int -> t
(** Drop each message independently with probability [percent]/100. *)

val lossy_bounded : t -> rng:Prelude.Rng.t -> percent:int -> max_consecutive:int -> t
(** Drop randomly, but never more than [max_consecutive] in a row per
    link.  Note this does *not* bound the retransmission count of any one
    frame when traffic interleaves; see {!lossy_budget}. *)

val lossy_budget : t -> rng:Prelude.Rng.t -> percent:int -> budget:int -> t
(** Drop randomly but at most [budget] messages per link in total.  Under
    {!Reliable} with [max_retries > budget] every wrapped message is then
    delivered within [d + budget·r]. *)

val drop_first : t -> from:int -> to_:int -> count:int -> t
(** Deterministically drop the first [count] messages on one link. *)
